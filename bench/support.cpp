#include "support.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <unordered_set>

#include "obs/observer.hpp"
#include "runner/experiment.hpp"

namespace coolpim::bench {

namespace {

/// Process-wide observability sink shared by every run the bench issues.
/// Output files are flushed from the destructor at normal process exit.
struct ObsState {
  std::string trace_path;
  std::string counters_path;
  std::optional<obs::SweepObserver> obs;
  /// Experiment keys already recorded; micro-phase repeats of a table-phase
  /// run are served from the result cache instead of being re-traced.
  std::unordered_set<std::uint64_t> seen;

  ObsState() {
    if (const char* t = std::getenv("COOLPIM_TRACE")) trace_path = t;
    if (const char* c = std::getenv("COOLPIM_COUNTERS")) counters_path = c;
    refresh();
  }

  void refresh() {
    if (!obs && (!trace_path.empty() || !counters_path.empty())) {
      obs.emplace(!trace_path.empty(), !counters_path.empty());
    }
  }

  ~ObsState() {
    if (!obs) return;
    if (!trace_path.empty()) {
      std::ofstream out{trace_path};
      if (out) {
        obs->write_trace(out);
        std::cerr << "Trace written to " << trace_path << "\n";
      }
    }
    if (!counters_path.empty()) {
      std::ofstream out{counters_path};
      if (out) {
        obs->write_counters_csv(out);
        std::cerr << "Counter CSV written to " << counters_path << "\n";
      }
    }
  }
};

ObsState& obs_state() {
  static ObsState state;
  return state;
}

}  // namespace

void init_observability(int* argc, char** argv) {
  auto& state = obs_state();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const bool is_trace = std::strcmp(argv[i], "--trace") == 0;
    const bool is_counters = std::strcmp(argv[i], "--counters") == 0;
    if ((is_trace || is_counters) && i + 1 < *argc) {
      (is_trace ? state.trace_path : state.counters_path) = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  state.refresh();
}

unsigned bench_scale() {
  if (const char* env = std::getenv("COOLPIM_SCALE")) {
    const int v = std::atoi(env);
    if (v >= 8 && v <= 24) return static_cast<unsigned>(v);
  }
  return 18;
}

const sys::WorkloadSet& workloads() {
  static const sys::WorkloadSet set{bench_scale(), 1};
  return set;
}

sys::RunResult run_one(const std::string& workload, sys::Scenario scenario,
                       const sys::SystemConfig& base) {
  // Routed through the runner so the micro phases of a bench binary reuse
  // the table phase's cached results for identical (workload, scenario,
  // config) triples.
  runner::RunOptions opt;
  auto& state = obs_state();
  if (state.obs) {
    sys::SystemConfig keyed = base;
    keyed.scenario = scenario;
    if (state.seen.insert(runner::experiment_key(workloads(), workload, keyed)).second) {
      opt.obs = &*state.obs;
    }
  }
  return runner::run_one(workloads(), workload, scenario, base, opt);
}

const std::vector<ScenarioRow>& scenario_matrix() {
  static const std::vector<ScenarioRow> matrix = [] {
    const std::vector<sys::Scenario> scenarios{std::begin(sys::kAllScenarios),
                                               std::end(sys::kAllScenarios)};
    runner::RunOptions opt;
    auto& state = obs_state();
    if (state.obs) {
      opt.obs = &*state.obs;
      // Mark every matrix cell as recorded so later run_one() calls on the
      // same experiments reuse the cache instead of re-tracing.
      for (const auto& w : sys::workload_names()) {
        for (const auto s : scenarios) {
          sys::SystemConfig keyed;
          keyed.scenario = s;
          state.seen.insert(runner::experiment_key(workloads(), w, keyed));
        }
      }
    }
    auto computed =
        runner::run_matrix(workloads(), sys::workload_names(), scenarios, {}, opt);
    std::vector<ScenarioRow> rows;
    rows.reserve(computed.size());
    for (auto& r : computed) {
      rows.push_back(ScenarioRow{std::move(r.workload), std::move(r.runs)});
    }
    return rows;
  }();
  return matrix;
}

}  // namespace coolpim::bench
