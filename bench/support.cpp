#include "support.hpp"

#include <cstdlib>

namespace coolpim::bench {

unsigned bench_scale() {
  if (const char* env = std::getenv("COOLPIM_SCALE")) {
    const int v = std::atoi(env);
    if (v >= 8 && v <= 24) return static_cast<unsigned>(v);
  }
  return 18;
}

const sys::WorkloadSet& workloads() {
  static const sys::WorkloadSet set{bench_scale(), 1};
  return set;
}

sys::RunResult run_one(const std::string& workload, sys::Scenario scenario,
                       const sys::SystemConfig& base) {
  sys::SystemConfig cfg = base;
  cfg.scenario = scenario;
  sys::System system{cfg};
  return system.run(workloads().profile(workload));
}

const std::vector<ScenarioRow>& scenario_matrix() {
  static const std::vector<ScenarioRow> matrix = [] {
    std::vector<ScenarioRow> rows;
    for (const auto& name : sys::workload_names()) {
      ScenarioRow row;
      row.workload = name;
      for (const auto s : sys::kAllScenarios) {
        row.runs.emplace(s, run_one(name, s));
      }
      rows.push_back(std::move(row));
    }
    return rows;
  }();
  return matrix;
}

}  // namespace coolpim::bench
