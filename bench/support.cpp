#include "support.hpp"

#include <cstdlib>
#include <iterator>

#include "runner/experiment.hpp"

namespace coolpim::bench {

unsigned bench_scale() {
  if (const char* env = std::getenv("COOLPIM_SCALE")) {
    const int v = std::atoi(env);
    if (v >= 8 && v <= 24) return static_cast<unsigned>(v);
  }
  return 18;
}

const sys::WorkloadSet& workloads() {
  static const sys::WorkloadSet set{bench_scale(), 1};
  return set;
}

sys::RunResult run_one(const std::string& workload, sys::Scenario scenario,
                       const sys::SystemConfig& base) {
  // Routed through the runner so the micro phases of a bench binary reuse
  // the table phase's cached results for identical (workload, scenario,
  // config) triples.
  return runner::run_one(workloads(), workload, scenario, base);
}

const std::vector<ScenarioRow>& scenario_matrix() {
  static const std::vector<ScenarioRow> matrix = [] {
    const std::vector<sys::Scenario> scenarios{std::begin(sys::kAllScenarios),
                                               std::end(sys::kAllScenarios)};
    auto computed =
        runner::run_matrix(workloads(), sys::workload_names(), scenarios);
    std::vector<ScenarioRow> rows;
    rows.reserve(computed.size());
    for (auto& r : computed) {
      rows.push_back(ScenarioRow{std::move(r.workload), std::move(r.runs)});
    }
    return rows;
  }();
  return matrix;
}

}  // namespace coolpim::bench
