#include "support.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <unordered_set>

#include "obs/observer.hpp"
#include "runner/experiment.hpp"

namespace coolpim::bench {

namespace {

/// Single mutable slot behind run_config(): COOLPIM_* environment at first
/// use, --flags overlaid by init_observability() before anything consumes it.
sys::RunConfig& mutable_run_config() {
  static sys::RunConfig rc = sys::RunConfig::from_env();
  return rc;
}

/// Process-wide observability sink shared by every run the bench issues.
/// Output files are flushed from the destructor at normal process exit.
struct ObsState {
  std::optional<obs::SweepObserver> obs;
  /// Experiment keys already recorded; micro-phase repeats of a table-phase
  /// run are served from the result cache instead of being re-traced.
  std::unordered_set<std::uint64_t> seen;

  ObsState() { refresh(); }

  void refresh() {
    const auto& rc = mutable_run_config();
    if (!obs && (!rc.trace_path.empty() || !rc.counters_path.empty())) {
      obs.emplace(!rc.trace_path.empty(), !rc.counters_path.empty());
    }
  }

  ~ObsState() {
    if (!obs) return;
    const auto& rc = mutable_run_config();
    if (!rc.trace_path.empty()) {
      std::ofstream out{rc.trace_path};
      if (out) {
        obs->write_trace(out);
        std::cerr << "Trace written to " << rc.trace_path << "\n";
      }
    }
    if (!rc.counters_path.empty()) {
      std::ofstream out{rc.counters_path};
      if (out) {
        obs->write_counters_csv(out);
        std::cerr << "Counter CSV written to " << rc.counters_path << "\n";
      }
    }
  }
};

ObsState& obs_state() {
  static ObsState state;
  return state;
}

/// Benches inherit the process fault environment unless the caller brought
/// its own (a bench sweeping fault rates sets them explicitly on `base`).
sys::SystemConfig with_process_faults(sys::SystemConfig base) {
  if (!base.fault.enabled()) run_config().apply_to(base);
  return base;
}

}  // namespace

const sys::RunConfig& run_config() { return mutable_run_config(); }

void init_observability(int* argc, char** argv) {
  auto& rc = mutable_run_config();
  rc = sys::RunConfig::from_args(argc, argv, rc);
  obs_state().refresh();
}

unsigned bench_scale() { return run_config().scale; }

const sys::WorkloadSet& workloads() {
  static const sys::WorkloadSet set{bench_scale(), run_config().graph_seed, false,
                                    run_config().build_options()};
  return set;
}

sys::RunResult run_one(const std::string& workload, sys::Scenario scenario,
                       const sys::SystemConfig& base) {
  // Routed through the runner so the micro phases of a bench binary reuse
  // the table phase's cached results for identical (workload, scenario,
  // config) triples.
  const sys::SystemConfig cfg = with_process_faults(base);
  runner::RunOptions opt;
  opt.jobs = run_config().jobs;
  auto& state = obs_state();
  if (state.obs) {
    sys::SystemConfig keyed = cfg;
    keyed.scenario = scenario;
    if (state.seen.insert(runner::experiment_key(workloads(), workload, keyed)).second) {
      opt.obs = &*state.obs;
    }
  }
  return runner::run_one(workloads(), workload, scenario, cfg, opt);
}

const std::vector<ScenarioRow>& scenario_matrix() {
  static const std::vector<ScenarioRow> matrix = [] {
    const std::vector<sys::Scenario> scenarios{std::begin(sys::kAllScenarios),
                                               std::end(sys::kAllScenarios)};
    const sys::SystemConfig cfg = with_process_faults({});
    runner::RunOptions opt;
    opt.jobs = run_config().jobs;
    opt.sweep_batch = run_config().sweep_batch;
    auto& state = obs_state();
    if (state.obs) {
      opt.obs = &*state.obs;
      // Mark every matrix cell as recorded so later run_one() calls on the
      // same experiments reuse the cache instead of re-tracing.
      for (const auto& w : sys::workload_names()) {
        for (const auto s : scenarios) {
          sys::SystemConfig keyed = cfg;
          keyed.scenario = s;
          state.seen.insert(runner::experiment_key(workloads(), w, keyed));
        }
      }
    }
    auto computed =
        runner::run_matrix(workloads(), sys::workload_names(), scenarios, cfg, opt);
    std::vector<ScenarioRow> rows;
    rows.reserve(computed.size());
    for (auto& r : computed) {
      rows.push_back(ScenarioRow{std::move(r.workload), std::move(r.runs)});
    }
    return rows;
  }();
  return matrix;
}

}  // namespace coolpim::bench
