// Fig. 10: speedup over the non-offloading baseline for naive offloading,
// CoolPIM (SW), CoolPIM (HW) and the ideal-thermal scenario across the ten
// GraphBIG workloads on the LDBC-like graph.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_fig10() {
  std::cout << "Building workload set (scale " << bench_scale()
            << ", override with COOLPIM_SCALE) and running 10 workloads x 6 scenarios...\n";
  const auto& matrix = scenario_matrix();

  Table t{"Fig. 10 -- Speedup over the non-offloading baseline"};
  t.header({"Workload", "Naive-Offloading", "CoolPIM (SW)", "CoolPIM (HW)", "Ideal Thermal"});
  double geo[4] = {1.0, 1.0, 1.0, 1.0};
  const sys::Scenario cols[] = {sys::Scenario::kNaiveOffloading, sys::Scenario::kCoolPimSw,
                                sys::Scenario::kCoolPimHw, sys::Scenario::kIdealThermal};
  for (const auto& row : matrix) {
    std::vector<std::string> cells{row.workload};
    for (int c = 0; c < 4; ++c) {
      const double s = row.speedup(cols[c]);
      geo[c] *= s;
      cells.push_back(Table::num(s, 2));
    }
    t.row(std::move(cells));
  }
  std::vector<std::string> gm{"geo-mean"};
  for (double& g : geo) {
    g = std::pow(g, 1.0 / static_cast<double>(matrix.size()));
    gm.push_back(Table::num(g, 2));
  }
  t.row(std::move(gm));
  t.print(std::cout);
  std::cout
      << "Paper shape: naive offloading averages ~1.0x (down to 0.82x for bfs-dwc),\n"
         "CoolPIM improves ~21% (SW) / ~25% (HW) on average and up to ~1.4x, and the\n"
         "ideal-thermal bound reaches up to ~1.61x -- thermal constraints erase the\n"
         "offloading benefit unless the source is throttled.\n";
}

void BM_SystemRun(benchmark::State& state, const char* workload, sys::Scenario scenario) {
  (void)scenario_matrix();  // ensure the shared set is built outside timing
  for (auto _ : state) {
    const auto r = run_one(workload, scenario);
    benchmark::DoNotOptimize(r.exec_time);
    state.counters["sim_exec_ms"] = r.exec_time.as_ms();
  }
}
BENCHMARK_CAPTURE(BM_SystemRun, dc_coolpim_hw, "dc", sys::Scenario::kCoolPimHw)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SystemRun, dc_naive, "dc", sys::Scenario::kNaiveOffloading)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
