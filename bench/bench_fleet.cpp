// Fleet-tier balancer comparison, emitted as BENCH_fleet.json (schema
// coolpim-bench-fleet/1).
//
// The scenario is the thermal-DoS / hot-node shape from docs/FLEET.md: a
// rack with a linear ambient gradient (the last node sits at the hot end)
// under an offered load chosen so that thermally-oblivious placement
// saturates the hot node past the 85 degC DRAM normal limit, while the
// aggregate fleet still has enough cool capacity to absorb the same load.
// Each registered balancer runs the identical open-loop Poisson stream.
//
// The offered load is derived, not hard-coded: from the mean service time and
// steady heat of the profile table, the bench targets a per-node utilization
// (kTargetUtil) that puts round-robin's hot-node steady temperature above the
// ceiling by construction -- see the comment at offered_rate() -- so the gate
// keeps passing if the synthetic profile table drifts.
//
// Gate (exit 1 on failure):
//   * thermal-aware holds EVERY node's peak at or below 85 degC,
//   * round-robin pushes at least one node past it,
//   * thermal-aware p99 latency stays within 2x of join-shortest-queue,
//   * jobs=1 and jobs=8 produce byte-identical node summaries.
//
// Flags: --out FILE (default BENCH_fleet.json), --quick (fewer nodes,
// shorter horizon).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

#include "perf_support.hpp"

using namespace coolpim;

namespace {

constexpr double kCeilingC = 85.0;   // DRAM normal limit (NodeConfig default)
constexpr double kAmbientC = 35.0;   // cool-end idle temperature
constexpr double kSpreadC = 14.0;    // rack gradient: hot end idles at 49 C
constexpr double kTargetUtil = 0.78; // per-node util under oblivious placement
constexpr double kP99FactorVsJsq = 2.0;

/// Offered arrival rate (req/s) that loads every node to kTargetUtil under a
/// balancer that splits traffic evenly.  With mean steady heat E[heat] ~ 43 C
/// the hot-end node's steady temperature under oblivious placement is
/// ambient + spread + util * E[heat] ~ 82.7 C: a few degC below the ceiling,
/// but Poisson bursts push it over -- and any util above derate_factor makes
/// one crossing permanent, because the x0.5 derate halves the hot node's
/// service rate, so it saturates and runs away toward
/// ambient + spread + E[heat] ~ 92 C.  A thermal-aware placement instead
/// equalizes temperatures across the rack (~ 76 C at this load), leaving
/// real burst headroom below the ceiling.
double offered_rate(const std::vector<fleet::ServiceProfile>& profiles, std::size_t nodes) {
  double mean_service_ms = 0.0;
  for (const auto& p : profiles) mean_service_ms += p.service_ms;
  mean_service_ms /= static_cast<double>(profiles.size());
  // util = rate_per_ms * E[service] / nodes  =>  rate
  return kTargetUtil * static_cast<double>(nodes) / mean_service_ms * 1e3;
}

fleet::FleetConfig base_config(bool quick) {
  fleet::FleetConfig cfg;
  cfg.nodes = quick ? 4 : 8;
  cfg.node.ambient_c = kAmbientC;
  // Rack-scale thermal mass: slower than the bare-stack default, so a burst
  // cannot spike a node far past its steady temperature before the balancer
  // reacts.
  cfg.node.tau_ms = 100.0;
  // A short queue bounds how much work a node is committed to once it turns
  // hot: 8 requests ~ 20 ms ~ 0.2 tau of locked-in heating (a few degC of
  // worst-case overshoot, not ten).
  cfg.node.queue_capacity = 8;
  cfg.rack_ambient_spread_c = kSpreadC;
  // Stiff thermal penalty for the gate experiment: 24 queue slots per degC
  // above the 80 C reference means a node more than ~0.3 C over it is never
  // picked while any materially cooler node admits.  Below the reference the
  // policy degenerates to join-shortest-queue (same latency); above it,
  // placement backs off well before the 85 C derate threshold, so the fleet
  // equilibrates by temperature exactly where it matters.
  cfg.balancer_cfg.temp_ref_c = 80.0;
  cfg.balancer_cfg.temp_weight = 24.0;
  cfg.balancer_cfg.warning_weight = 16.0;
  cfg.profiles = fleet::synthetic_profiles();
  // The horizon must comfortably cover the hot node's tipping time (~3 tau
  // to reach the derate threshold, then the runaway): too short and the
  // oblivious balancers look healthy simply because the run ends first.
  cfg.duration_ms = quick ? 700.0 : 1000.0;
  cfg.arrival_rate_per_s = offered_rate(cfg.profiles, cfg.nodes);
  return cfg;
}

struct BalancerRun {
  std::string name;
  fleet::FleetResult result;
  double wall_ms{0.0};
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::arg_value(argc, argv, "--out", "BENCH_fleet.json");
  const bool quick = bench::arg_flag(argc, argv, "--quick");

  const fleet::FleetConfig base = base_config(quick);
  std::cout << "Fleet sweep: " << base.nodes << " nodes, rack spread " << kSpreadC
            << " C, " << base.arrival_rate_per_s << " req/s over " << base.duration_ms
            << " ms...\n";

  // One run per registered balancer over the identical arrival stream (the
  // balancer name is part of fleet_key, but the arrival stream is seeded
  // from config fields the balancer does not touch -- same seed, same mix,
  // same rate -- so every balancer sees the same (time, class) sequence).
  std::vector<BalancerRun> runs;
  for (const std::string name :
       {"round-robin", "join-shortest-queue", "thermal-aware"}) {
    fleet::FleetConfig cfg = base;
    cfg.balancer = name;
    bench::StopWatch clock;
    BalancerRun run;
    run.name = name;
    run.result = fleet::run_fleet(cfg);
    run.wall_ms = clock.elapsed_ms();
    runs.push_back(std::move(run));
  }

  // Determinism leg: the thermal-aware run again at jobs=1 and jobs=8 must
  // produce byte-identical node summaries (the fleet sharding contract).
  fleet::FleetConfig det = base;
  det.balancer = "thermal-aware";
  det.jobs = 1;
  const std::string csv_jobs1 = fleet::run_fleet(det).node_summary_csv();
  det.jobs = 8;
  const std::string csv_jobs8 = fleet::run_fleet(det).node_summary_csv();
  const bool bit_identical = csv_jobs1 == csv_jobs8;

  const auto find = [&](const char* name) -> const BalancerRun& {
    for (const auto& r : runs) {
      if (r.name == name) return r;
    }
    std::cerr << "bench_fleet: missing run " << name << "\n";
    std::exit(1);
  };
  const BalancerRun& rr = find("round-robin");
  const BalancerRun& jsq = find("join-shortest-queue");
  const BalancerRun& ta = find("thermal-aware");

  const auto max_peak = [](const BalancerRun& r) { return r.result.max_node_peak_c; };
  const bool ta_all_below = max_peak(ta) <= kCeilingC;
  const bool rr_exceeds = max_peak(rr) > kCeilingC;
  const bool p99_ok = jsq.result.p99_latency_ms > 0.0 &&
                      ta.result.p99_latency_ms <=
                          kP99FactorVsJsq * jsq.result.p99_latency_ms;
  const bool pass = ta_all_below && rr_exceeds && p99_ok && bit_identical;

  bench::JsonWriter json;
  json.kv("schema", "coolpim-bench-fleet/1");
  json.kv("quick", quick);
  json.kv("nodes", static_cast<std::uint64_t>(base.nodes));
  json.kv("duration_ms", base.duration_ms);
  json.kv("arrival_rate_per_s", base.arrival_rate_per_s);
  json.kv("rack_spread_c", base.rack_ambient_spread_c);
  json.kv("ceiling_c", kCeilingC);
  json.begin_array("balancers");
  for (const auto& r : runs) {
    json.begin_object();
    json.kv("balancer", r.name);
    json.kv("wall_ms", r.wall_ms);
    json.kv("arrived", r.result.arrived);
    json.kv("served", r.result.served);
    json.kv("shed", r.result.shed);
    json.kv("deferrals", r.result.deferrals);
    json.kv("p50_latency_ms", r.result.p50_latency_ms);
    json.kv("p99_latency_ms", r.result.p99_latency_ms);
    json.kv("agg_op_per_ns", r.result.agg_op_per_ns());
    json.kv("max_node_peak_c", r.result.max_node_peak_c);
    json.kv("total_warnings", r.result.total_warnings);
    json.begin_array("nodes");
    for (const auto& n : r.result.nodes) {
      json.begin_object();
      json.kv("index", static_cast<std::uint64_t>(n.index));
      json.kv("served", n.served);
      json.kv("warnings", n.warnings);
      json.kv("peak_c", n.peak_c);
      json.kv("busy_ms", n.busy_ms);
      json.end();
    }
    json.end();
    json.end();
  }
  json.end();
  json.begin_object("gate");
  json.kv("thermal_aware_max_peak_c", max_peak(ta));
  json.kv("round_robin_max_peak_c", max_peak(rr));
  json.kv("jsq_p99_latency_ms", jsq.result.p99_latency_ms);
  json.kv("thermal_aware_p99_latency_ms", ta.result.p99_latency_ms);
  json.kv("thermal_aware_all_below_ceiling", ta_all_below);
  json.kv("round_robin_exceeds_ceiling", rr_exceeds);
  json.kv("p99_within_factor_of_jsq", p99_ok);
  json.kv("jobs_bit_identical", bit_identical);
  json.kv("pass", pass);
  json.end();
  json.end();
  const std::string doc = json.str();

  if (!bench::write_text_file(out, doc)) {
    std::cerr << "bench_fleet: cannot write " << out << "\n";
    return 1;
  }
  std::cout << doc;
  for (const auto& r : runs) {
    std::cout << r.name << ": max peak " << max_peak(r) << " C, p99 "
              << r.result.p99_latency_ms << " ms, served " << r.result.served << "/"
              << r.result.arrived << " (shed " << r.result.shed << ")\n";
  }
  std::cout << "Gate: TA " << max_peak(ta) << " C all-below=" << ta_all_below
            << ", RR " << max_peak(rr) << " C exceeds=" << rr_exceeds
            << ", p99 " << ta.result.p99_latency_ms << " vs JSQ "
            << jsq.result.p99_latency_ms << " ms ok=" << p99_ok
            << ", bit-identical=" << bit_identical << " -> "
            << (pass ? "PASS" : "FAIL") << "\n"
            << "Results written to " << out << "\n";
  return pass ? 0 : 1;
}
