// Ablation: HMC device design options -- row-buffer policy and address
// interleaving granularity -- measured on the event-detailed device with
// streaming and random traffic (the two extremes graph workloads mix).
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"

#include "support.hpp"
#include "hmc/device.hpp"

using namespace coolpim;

namespace {

struct TrafficResult {
  double gbps;
  double avg_latency_ns;
};

// Target a single bank so the bank -- not the link -- is the bottleneck:
// sequential row-local traffic vs random rows within that bank.
TrafficResult run_traffic(bool open_page, bool streaming, int requests = 2000) {
  sim::Simulation sim;
  hmc::HmcConfig cfg = hmc::hmc20_config();
  cfg.open_page = open_page;
  hmc::Device dev{sim, cfg};
  Rng rng{42};
  Time done;
  const std::uint64_t bank_stride = 64ull * cfg.vaults * cfg.banks_per_vault();
  for (int i = 0; i < requests; ++i) {
    // Same vault+bank throughout; the block index selects the row.
    const std::uint64_t block = streaming ? static_cast<std::uint64_t>(i)
                                          : rng.next_below(1u << 20);
    const std::uint64_t addr = block * bank_stride;
    dev.submit({hmc::TransactionType::kRead64, addr, 0},
               [&](const hmc::Response&) { done = sim.now(); });
  }
  sim.run_to_completion();
  TrafficResult out;
  out.gbps = requests * 64.0 / done.as_sec() * 1e-9;
  out.avg_latency_ns = dev.stats().summaries().at("latency_ns").mean();
  return out;
}

void print_page_policy() {
  Table t{"Ablation -- row-buffer policy, single-bank bound traffic"};
  t.header({"Traffic (one bank)", "Closed page (GB/s)", "Open page (GB/s)", "Winner"});
  for (const bool streaming : {true, false}) {
    const auto closed = run_traffic(false, streaming);
    const auto open = run_traffic(true, streaming);
    t.row({streaming ? "row-local stream" : "random rows",
           Table::num(closed.gbps, 2), Table::num(open.gbps, 2),
           open.gbps > closed.gbps * 1.02   ? "open page"
           : closed.gbps > open.gbps * 1.02 ? "closed page"
                                            : "tie"});
  }
  t.print(std::cout);
  std::cout << "Open page wins row-local streams (CAS-only hits) and ties or loses on\n"
               "random rows.  Graph analytics is dominated by random property/atomic\n"
               "accesses, which is why HMC vault controllers (and this model's default)\n"
               "run closed-page.\n";
}

void print_latency() {
  Table t{"Bank queueing: latency vs offered single-bank load (closed page)"};
  t.header({"Requests", "Avg latency (ns)"});
  for (const int reqs : {16, 64, 256, 1024}) {
    const auto r = run_traffic(false, false, reqs);
    t.row({std::to_string(reqs), Table::num(r.avg_latency_ns, 0)});
  }
  t.print(std::cout);
}

void BM_DeviceTraffic(benchmark::State& state) {
  const bool open_page = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_traffic(open_page, false, 500).gbps);
  }
}
BENCHMARK(BM_DeviceTraffic)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_page_policy();
  print_latency();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
