// Table II: typical cooling types -- thermal resistance and fan power --
// plus the fan-curve interpolation used by the cooling ablations.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "power/cooling.hpp"

using namespace coolpim;

namespace {

void print_table2() {
  Table t{"Table II -- Typical cooling types"};
  t.header({"Type", "Thermal resistance (C/W)", "Cooling power (rel.)", "Fan power (W)"});
  for (const auto& s : power::all_cooling_solutions()) {
    t.row({s.name, Table::num(s.resistance.value(), 1),
           s.fan_power_rel == 0.0 ? "0" : Table::num(s.fan_power_rel, 0) + "x",
           Table::num(s.fan_power_watts, 2)});
  }
  t.print(std::cout);

  Table fit{"Fan-curve interpolation (log-log fit through the active points)"};
  fit.header({"Sink resistance (C/W)", "Fan power (W)"});
  for (const double r : {2.0, 1.5, 1.0, 0.5, 0.27, 0.2}) {
    fit.row({Table::num(r, 2),
             Table::num(power::fan_power_for_resistance(ThermalResistance{r}), 2)});
  }
  fit.print(std::cout);
  std::cout << "Note: R <= 0.27 C/W (paper Section III-B, full-loaded PIM) already costs "
            << Table::num(power::fan_power_for_resistance(ThermalResistance{0.27}), 1)
            << " W of fan power.\n";
}

void BM_FanCurveLookup(benchmark::State& state) {
  double r = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(power::fan_power_for_resistance(ThermalResistance{r}));
    r = r >= 2.0 ? 0.2 : r + 0.01;
  }
}
BENCHMARK(BM_FanCurveLookup);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
