// Ablation: CoolPIM's *selective* source throttling vs the alternative
// policies the paper dismisses (Section III-C): doing nothing (naive, the
// device derates reactively) and blanket host-side bandwidth throttling.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_alternatives() {
  Table t{"Ablation -- throttling policy alternatives"};
  t.header({"Workload", "Policy", "Speedup", "PIM rate (op/ns)", "Peak DRAM (C)",
            "Time derated (%)"});
  for (const std::string wl : {"dc", "pagerank", "sssp-dwc"}) {
    const auto base = run_one(wl, sys::Scenario::kNonOffloading);
    for (const auto scenario :
         {sys::Scenario::kNaiveOffloading, sys::Scenario::kBwThrottle,
          sys::Scenario::kCoolPimHw}) {
      const auto r = run_one(wl, scenario);
      const double derated =
          r.exec_time > Time::zero() ? 100.0 * (r.time_above_normal / r.exec_time) : 0.0;
      t.row({wl, r.scenario, Table::num(base.exec_time / r.exec_time, 2),
             Table::num(r.avg_pim_rate_op_per_ns(), 2),
             Table::num(r.peak_dram_temp.value(), 1), Table::num(derated, 0)});
    }
  }
  t.print(std::cout);
  std::cout
      << "Naive offloading loses outright: the device derates reactively and spends\n"
         "the run in the extended range.  Blanket host-side throttling is competitive\n"
         "on uniformly bandwidth-bound kernels (every byte trimmed cools the cube),\n"
         "but it under- or over-shoots and penalizes regular traffic on mixed kernels\n"
         "(sssp-dwc), where CoolPIM's selective trimming of the hot PIM path wins.\n"
         "CoolPIM also needs no demand-side rate-control hardware: it reuses the\n"
         "existing kernel-launch path (SW) or a per-SM PCU (HW).\n";
}

void BM_BwThrottleRun(benchmark::State& state) {
  (void)workloads();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_one("dc", sys::Scenario::kBwThrottle).exec_time);
  }
}
BENCHMARK(BM_BwThrottleRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_alternatives();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
