// Extension table: energy per workload per scenario, including the cooling
// fan.  The paper motivates PIM by energy efficiency and notes that the
// extended temperature range "incurs higher energy consumption"; this bench
// quantifies both effects in one table.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_energy() {
  const auto& matrix = scenario_matrix();

  Table t{"Extension -- cube + fan energy per run, normalized to the baseline"};
  t.header({"Workload", "Baseline (mJ)", "Naive", "CoolPIM (SW)", "CoolPIM (HW)",
            "Ideal Thermal"});
  for (const auto& row : matrix) {
    const double base = row.at(sys::Scenario::kNonOffloading).total_energy_j();
    t.row({row.workload, Table::num(base * 1e3, 1),
           Table::num(row.at(sys::Scenario::kNaiveOffloading).total_energy_j() / base, 2),
           Table::num(row.at(sys::Scenario::kCoolPimSw).total_energy_j() / base, 2),
           Table::num(row.at(sys::Scenario::kCoolPimHw).total_energy_j() / base, 2),
           Table::num(row.at(sys::Scenario::kIdealThermal).total_energy_j() / base, 2)});
  }
  t.print(std::cout);
  std::cout
      << "Naive offloading's hot-phase operation erodes its energy advantage (doubled\n"
         "refresh + leakage at >85 C, paper Section I); CoolPIM keeps the savings by\n"
         "staying in the normal range while still finishing sooner than the baseline.\n";
}

void BM_EnergyExtraction(benchmark::State& state) {
  const auto& matrix = scenario_matrix();
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& row : matrix) acc += row.at(sys::Scenario::kCoolPimHw).total_energy_j();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EnergyExtraction);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_energy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
