// Table I: HMC memory transaction bandwidth requirement in FLITs, plus
// google-benchmark measurements of the event-detailed device's service rates
// per transaction type.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "hmc/device.hpp"
#include "hmc/packet.hpp"

using namespace coolpim;

namespace {

void print_table1() {
  Table t{"Table I -- HMC memory transaction bandwidth requirement in FLITs (FLIT = 128 bit)"};
  t.header({"Type", "Request", "Response", "Total bytes"});
  for (const auto type :
       {hmc::TransactionType::kRead64, hmc::TransactionType::kWrite64,
        hmc::TransactionType::kPimNoReturn, hmc::TransactionType::kPimWithReturn}) {
    const auto cost = hmc::flit_cost(type);
    t.row({std::string(hmc::to_string(type)), std::to_string(cost.request) + " FLITs",
           std::to_string(cost.response) + " FLITs", std::to_string(cost.total_bytes())});
  }
  t.print(std::cout);
  std::cout << "PIM offloading saves up to "
            << Table::num(100.0 * (1.0 - 3.0 / 6.0), 0)
            << "% of the link FLITs per update (paper Section II-B).\n";
}

void BM_DeviceTransaction(benchmark::State& state, hmc::TransactionType type) {
  for (auto _ : state) {
    sim::Simulation sim;
    hmc::Device dev{sim, hmc::hmc20_config()};
    constexpr int kOps = 1000;
    int done = 0;
    for (int i = 0; i < kOps; ++i) {
      dev.submit({type, static_cast<std::uint64_t>(i) * 64, 0},
                 [&](const hmc::Response&) { ++done; });
    }
    sim.run_to_completion();
    benchmark::DoNotOptimize(done);
    state.counters["flits_per_op"] =
        static_cast<double>(hmc::flit_cost(type).total());
    state.counters["sim_ns_per_op"] = sim.now().as_ns() / kOps;
  }
}

BENCHMARK_CAPTURE(BM_DeviceTransaction, read64, hmc::TransactionType::kRead64);
BENCHMARK_CAPTURE(BM_DeviceTransaction, write64, hmc::TransactionType::kWrite64);
BENCHMARK_CAPTURE(BM_DeviceTransaction, pim_no_return, hmc::TransactionType::kPimNoReturn);
BENCHMARK_CAPTURE(BM_DeviceTransaction, pim_with_return, hmc::TransactionType::kPimWithReturn);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
