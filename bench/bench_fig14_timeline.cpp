// Fig. 14: PIM rate variation over time for bfs-ta under naive offloading and
// the software/hardware CoolPIM controls.  The run starts just below the
// thermal-warning threshold (sustained prior offloading activity), so the
// warning arrives early in the window, as in the paper.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

sys::RunResult transient_run(sys::Scenario scenario) {
  sys::SystemConfig cfg;
  cfg.warm_start = false;          // transient experiment: fresh controller
  cfg.start_temp_override = 84.0;  // just below the warning threshold
  return run_one("bfs-ta", scenario, cfg);
}

void print_fig14() {
  std::cout << "Running the Fig. 14 transient (bfs-ta, start ~84 C, fresh controllers)...\n";
  const auto naive = transient_run(sys::Scenario::kNaiveOffloading);
  const auto sw = transient_run(sys::Scenario::kCoolPimSw);
  const auto hw = transient_run(sys::Scenario::kCoolPimHw);

  // Resample the three traces onto a common grid covering the longest run.
  const Time span = std::max({naive.exec_time, sw.exec_time, hw.exec_time});
  const std::size_t points = 24;
  const Time step = span / static_cast<std::int64_t>(points);
  const Time start = naive.pim_rate.time_at(0);

  Table t{"Fig. 14 -- PIM rate over time, bfs-ta (op/ns)"};
  t.header({"t (ms)", "Naive-Offloading", "CoolPIM (SW)", "CoolPIM (HW)"});
  auto cell = [&](const sys::RunResult& r, std::size_t i) {
    const Time when = start + step * static_cast<std::int64_t>(i);
    if (when > r.pim_rate.times().back()) return std::string{"(done)"};
    return Table::num(r.pim_rate.sample_at(when), 2);
  };
  for (std::size_t i = 0; i < points; ++i) {
    t.row({Table::num((step * static_cast<std::int64_t>(i)).as_ms(), 2), cell(naive, i),
           cell(sw, i), cell(hw, i)});
  }
  t.print(std::cout);

  auto first_warning_ms = [&](const sys::RunResult& r) {
    // The temperature trace crosses the warning threshold where throttling starts.
    for (std::size_t i = 0; i < r.dram_temp.size(); ++i) {
      if (r.dram_temp.value_at(i) > 84.5) {
        return (r.dram_temp.time_at(i) - start).as_ms();
      }
    }
    return -1.0;
  };
  std::cout << "First thermal warning: naive t=" << Table::num(first_warning_ms(naive), 2)
            << " ms (ignored); CoolPIM reacts and steps the PIM rate down, the software\n"
               "method trailing the hardware one by well under the thermal response time\n"
               "(paper Section V-B.4: sub-millisecond difference in overall control delay).\n";
  std::cout << "Exec time: naive " << Table::num(naive.exec_time.as_ms(), 2) << " ms, SW "
            << Table::num(sw.exec_time.as_ms(), 2) << " ms, HW "
            << Table::num(hw.exec_time.as_ms(), 2) << " ms.\n";
}

void BM_TransientRun(benchmark::State& state) {
  (void)workloads();
  for (auto _ : state) {
    const auto r = transient_run(sys::Scenario::kCoolPimHw);
    benchmark::DoNotOptimize(r.exec_time);
  }
}
BENCHMARK(BM_TransientRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig14();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
