// Shared infrastructure for the reproduction benches: every bench binary
// prints its paper table/figure and then runs its google-benchmark micro
// measurements, so `for b in build/bench/*; do $b; done` regenerates the
// whole evaluation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sys/run_config.hpp"
#include "sys/system.hpp"

namespace coolpim::bench {

/// The process-wide run configuration: COOLPIM_* environment at first use,
/// with any --flags overlaid by init_observability().  Every bench knob
/// (scale, jobs, observability sinks, fault environment) resolves through
/// this one sys::RunConfig.
[[nodiscard]] const sys::RunConfig& run_config();

/// Graph scale used by the full-system benches (run_config().scale, clamped
/// to the bench-supported [8, 24] range; override with COOLPIM_SCALE).
[[nodiscard]] unsigned bench_scale();

/// Lazily-built workload set shared within one bench process.
[[nodiscard]] const sys::WorkloadSet& workloads();

/// Results of one workload across all scenarios in sys::kAllScenarios.
struct ScenarioRow {
  std::string workload;
  std::map<sys::Scenario, sys::RunResult> runs;

  [[nodiscard]] const sys::RunResult& at(sys::Scenario s) const { return runs.at(s); }
  [[nodiscard]] double speedup(sys::Scenario s) const {
    return at(sys::Scenario::kNonOffloading).exec_time / at(s).exec_time;
  }
  [[nodiscard]] double normalized_consumption(sys::Scenario s) const {
    return at(s).consumption_bytes() /
           at(sys::Scenario::kNonOffloading).consumption_bytes();
  }
};

/// Run every workload under every scenario (the Fig. 10-13 matrix) across
/// the parallel runner (jobs = COOLPIM_JOBS or all cores; results are
/// bit-identical at any jobs count).  Cached for the lifetime of the process.
[[nodiscard]] const std::vector<ScenarioRow>& scenario_matrix();

/// Run a single (workload, scenario) pair with an optionally tweaked config.
/// Served from the process-wide result cache when the matrix already ran it.
[[nodiscard]] sys::RunResult run_one(const std::string& workload, sys::Scenario scenario,
                                     const sys::SystemConfig& base = {});

/// Observability for bench binaries: call first in main() to strip
/// `--trace FILE` / `--counters FILE` from argv (before
/// benchmark::Initialize swallows the argument list); the COOLPIM_TRACE /
/// COOLPIM_COUNTERS environment variables work for any bench without the
/// call.  Each *distinct* experiment the bench runs is recorded once (keyed
/// by runner::experiment_key, so google-benchmark's repeat loops reuse the
/// result cache instead of re-tracing), and the files are written when the
/// process exits.  Schema: docs/OBSERVABILITY.md.
void init_observability(int* argc, char** argv);

}  // namespace coolpim::bench
