// Micro-validation of the GPU model: occupancy vs achieved bandwidth
// (roofline) and PIM vs read/write-pair throughput, measured on the
// event-detailed warp model driving the event-detailed HMC device.
// Substantiates the epoch model's latency-hiding and FLIT-cost assumptions.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "gpu/detailed.hpp"

using namespace coolpim;

namespace {

gpu::DetailedResult run_config(std::size_t warps, hmc::TransactionType type,
                               std::uint64_t compute) {
  sim::Simulation sim;
  hmc::Device device{sim, hmc::hmc20_config()};
  gpu::DetailedGpu g{sim, gpu::GpuConfig{}, device};
  gpu::WarpTrace trace;
  trace.memory_ops = 400;
  trace.compute_per_memop = compute;
  trace.type = type;
  g.launch(std::vector<gpu::WarpTrace>(warps, trace));
  sim.run_to_completion();
  return g.result();
}

void print_occupancy_roofline() {
  Table t{"GPU micro-model -- occupancy vs achieved read bandwidth"};
  t.header({"Resident warps", "Achieved (GB/s)", "Avg latency (ns)", "Bandwidth bar"});
  double peak = 0.0;
  std::vector<std::pair<std::size_t, gpu::DetailedResult>> rows;
  for (const std::size_t warps : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    rows.emplace_back(warps, run_config(warps, hmc::TransactionType::kRead64, 2));
    peak = std::max(peak, rows.back().second.achieved_gbps);
  }
  for (const auto& [warps, r] : rows) {
    t.row({std::to_string(warps), Table::num(r.achieved_gbps, 1),
           Table::num(r.avg_latency_ns, 0), ascii_bar(r.achieved_gbps, peak, 30)});
  }
  t.print(std::cout);
  std::cout << "Latency hiding through occupancy: bandwidth grows ~linearly with warps\n"
               "until the HMC response pipe saturates, then queueing inflates latency --\n"
               "the mechanism behind the epoch model's latency-bound cap.\n";
}

void print_pim_throughput() {
  Table t{"GPU micro-model -- update throughput: PIM ops vs host RMW pairs"};
  t.header({"Path", "Updates/s (millions)", "Relative"});
  const auto pim = run_config(256, hmc::TransactionType::kPimNoReturn, 2);
  const double pim_rate = static_cast<double>(pim.memory_ops) / pim.completion.as_sec();
  // Host path: one read + one write per update -> half the transactions are
  // updates.
  const auto rw = run_config(256, hmc::TransactionType::kRead64, 2);
  const auto wr = run_config(256, hmc::TransactionType::kWrite64, 2);
  const double rw_rate = 1.0 / (pim.completion.as_sec() * 0.0 +
                                rw.completion.as_sec() / rw.memory_ops +
                                wr.completion.as_sec() / wr.memory_ops);
  t.row({"PIM (3 FLITs/update)", Table::num(pim_rate * 1e-6, 1), "1.00"});
  t.row({"host RMW (12 FLITs/update)", Table::num(rw_rate * 1e-6, 1),
         Table::num(rw_rate / pim_rate, 2)});
  t.print(std::cout);
}

void BM_DetailedWarps(benchmark::State& state) {
  const auto warps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto r = run_config(warps, hmc::TransactionType::kRead64, 2);
    benchmark::DoNotOptimize(r.achieved_gbps);
    state.counters["sim_gbps"] = r.achieved_gbps;
  }
}
BENCHMARK(BM_DetailedWarps)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_occupancy_roofline();
  print_pim_throughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
