// Table III: examples of PIM instruction mapping, plus a micro-benchmark of
// the dynamic decode translation HW-DynT performs.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "core/translate.hpp"

using namespace coolpim;

namespace {

void print_table3() {
  Table t{"Table III -- Examples of PIM instruction mapping"};
  t.header({"Type", "PIM instruction", "Non-PIM (CUDA)"});
  const hmc::PimOpcode rows[] = {
      hmc::PimOpcode::kSignedAdd8, hmc::PimOpcode::kSwap,      hmc::PimOpcode::kBitWrite,
      hmc::PimOpcode::kAnd,        hmc::PimOpcode::kOr,        hmc::PimOpcode::kCasEqual,
      hmc::PimOpcode::kCasGreater, hmc::PimOpcode::kFpAdd,     hmc::PimOpcode::kFpMin,
  };
  for (const auto op : rows) {
    t.row({std::string(hmc::to_string(hmc::classify(op))), std::string(hmc::to_string(op)),
           std::string(core::to_string(core::to_cuda(op)))});
  }
  t.print(std::cout);
}

void BM_DynamicTranslation(benchmark::State& state) {
  // HW-DynT translates PIM instructions back to CUDA atomics at decode for
  // PIM-disabled warps; the mapping must be branch-cheap.
  const hmc::PimOpcode ops[] = {hmc::PimOpcode::kSignedAdd8, hmc::PimOpcode::kCasGreater,
                                hmc::PimOpcode::kFpAdd, hmc::PimOpcode::kOr};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::to_cuda(ops[i & 3]));
    ++i;
  }
}
BENCHMARK(BM_DynamicTranslation);

void BM_OffloadMapping(benchmark::State& state) {
  const core::CudaAtomic ops[] = {core::CudaAtomic::kAtomicAdd, core::CudaAtomic::kAtomicMin,
                                  core::CudaAtomic::kAtomicCAS, core::CudaAtomic::kAtomicOr};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::to_pim(ops[i & 3]));
    ++i;
  }
}
BENCHMARK(BM_OffloadMapping);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
