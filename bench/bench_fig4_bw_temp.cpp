// Fig. 4: peak DRAM temperature vs data bandwidth (0-320 GB/s) for the four
// cooling solutions, HMC 2.0.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "hmc/config.hpp"
#include "thermal/hmc_thermal.hpp"
#include "thermal_points.hpp"

using namespace coolpim;

namespace {

void print_fig4() {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;

  // One persistent model per cooling solution: each bandwidth point
  // warm-starts the steady solve from the previous point's field, which
  // converges in a fraction of the from-ambient iteration count
  // (docs/PERFORMANCE.md).
  std::vector<thermal::HmcThermalModel> models;
  models.reserve(4);
  for (const auto type : {power::CoolingType::kPassive, power::CoolingType::kLowEndActive,
                          power::CoolingType::kCommodityServer,
                          power::CoolingType::kHighEndActive}) {
    models.emplace_back(thermal::hmc20_thermal_config(type));
  }

  Table t{"Fig. 4 -- Peak DRAM temperature (C) vs data bandwidth and cooling"};
  t.header({"BW (GB/s)", "Passive", "Low-end", "Commodity", "High-end"});
  for (double bw = 0.0; bw <= 320.0 + 1e-9; bw += 40.0) {
    std::vector<std::string> row{Table::num(bw, 0)};
    for (auto& model : models) {
      model.apply_power(power::compute_power(ep, bench::read_traffic(link, bw)));
      model.solve_steady();
      const double temp = model.peak_dram().value();
      row.push_back(temp > 105.0 ? Table::num(temp, 1) + " (>limit)" : Table::num(temp, 1));
    }
    t.row(std::move(row));
  }
  t.print(std::cout);
  std::cout
      << "Paper anchors: commodity sink reaches ~33 C idle and ~81 C at 320 GB/s;\n"
         "the HMC operating range is 0-105 C, which the passive curve exceeds early.\n";
}

void BM_Fig4Sweep(benchmark::State& state) {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;
  for (auto _ : state) {
    thermal::HmcThermalModel model{
        thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer)};
    double acc = 0.0;
    for (double bw = 0.0; bw <= 320.0; bw += 80.0) {
      model.apply_power(power::compute_power(ep, bench::read_traffic(link, bw)));
      model.solve_steady();
      acc += model.peak_dram().value();
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Fig4Sweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
