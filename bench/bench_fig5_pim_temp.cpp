// Fig. 5: thermal impact of PIM offloading -- peak DRAM temperature vs PIM
// rate with fully utilized links and a commodity-server sink.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "hmc/config.hpp"
#include "hmc/thermal_policy.hpp"
#include "thermal/hmc_thermal.hpp"
#include "thermal_points.hpp"

using namespace coolpim;

namespace {

void print_fig5() {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;
  const hmc::ThermalPolicy policy;

  Table t{"Fig. 5 -- Peak DRAM temperature vs PIM offloading rate (commodity sink)"};
  t.header({"PIM rate (op/ns)", "Internal BW (GB/s)", "Peak DRAM (C)", "Phase"});
  double budget_rate = 0.0, limit_rate = 0.0;
  // Persistent model: each PIM-rate point warm-starts the steady solve from
  // the previous point's temperature field.
  thermal::HmcThermalModel model{
      thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer)};
  for (double rate = 0.0; rate <= 6.5 + 1e-9; rate += 0.5) {
    const auto op = bench::pim_traffic(link, rate);
    model.apply_power(power::compute_power(ep, op));
    model.solve_steady();
    const double temp = model.peak_dram().value();
    if (temp <= 85.0) budget_rate = rate;
    if (temp <= 105.0) limit_rate = rate;
    t.row({Table::num(rate, 1), Table::num(op.dram_internal.as_gbps(), 0),
           Table::num(temp, 1), std::string(to_string(policy.phase(Celsius{temp})))});
  }
  t.print(std::cout);
  std::cout << "Measured thermal budget: PIM rate <= " << Table::num(budget_rate, 1)
            << " op/ns keeps DRAM below 85 C (paper: 1.3 op/ns);\n"
            << "maximum rate within the 105 C limit: " << Table::num(limit_rate, 1)
            << " op/ns (paper: 6.5 op/ns).\n";
}

void BM_Fig5Point(benchmark::State& state) {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;
  const double rate = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    thermal::HmcThermalModel model{
        thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer)};
    model.apply_power(power::compute_power(ep, bench::pim_traffic(link, rate)));
    model.solve_steady();
    benchmark::DoNotOptimize(model.peak_dram());
  }
  state.counters["op_per_ns"] = rate;
}
BENCHMARK(BM_Fig5Point)->Arg(13)->Arg(40)->Arg(65)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
