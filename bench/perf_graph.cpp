// Perf harness for the workload-profiling fast path, emitted as
// BENCH_graph.json.
//
// Three measurements:
//
//  - construction: end-to-end sys::WorkloadSet build (RMAT graph + all ten
//    GraphBIG profiling runs), serial reference path vs. the pool-parallel
//    fast path, with a field-by-field bit-equivalence check between the two
//    (the acceptance contract: parallelism must never change a profile).
//
//  - cache: the same build against a fresh COOLPIM_PROFILE_CACHE directory,
//    cold (computes + stores) then warm (every profile served from disk,
//    zero functional kernel runs), with the hit/miss counters reported.
//
//  - csr: graph::make_ldbc_like alone, serial vs. pooled counting-sort
//    build.
//
// Flags: --out FILE (default BENCH_graph.json), --quick (CI smoke: small
// scale), --scale N (override), --jobs N (parallel width, default
// COOLPIM_JOBS or all cores).
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generator.hpp"
#include "runner/pool.hpp"
#include "sys/workloads.hpp"

#include "perf_support.hpp"

using namespace coolpim;

namespace {

bool profiles_equal(const std::vector<graph::WorkloadProfile>& a,
                    const std::vector<graph::WorkloadProfile>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.name != y.name || x.driver != y.driver || x.parallelism != y.parallelism ||
        x.atomic_kind != y.atomic_kind || x.graph_vertices != y.graph_vertices ||
        x.graph_edges != y.graph_edges || x.result_checksum != y.result_checksum ||
        x.iterations.size() != y.iterations.size()) {
      return false;
    }
    for (std::size_t j = 0; j < x.iterations.size(); ++j) {
      const auto& p = x.iterations[j];
      const auto& q = y.iterations[j];
      if (p.scanned_vertices != q.scanned_vertices || p.active_vertices != q.active_vertices ||
          p.edges_processed != q.edges_processed || p.work_threads != q.work_threads ||
          p.struct_scan_bytes != q.struct_scan_bytes || p.property_reads != q.property_reads ||
          p.property_writes != q.property_writes || p.atomic_ops != q.atomic_ops ||
          p.compute_warp_instructions != q.compute_warp_instructions ||
          p.divergent_warp_ratio != q.divergent_warp_ratio) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::arg_value(argc, argv, "--out", "BENCH_graph.json");
  const bool quick = bench::arg_flag(argc, argv, "--quick");
  const unsigned scale = static_cast<unsigned>(
      std::stoi(bench::arg_value(argc, argv, "--scale", quick ? "12" : "16")));
  unsigned jobs = static_cast<unsigned>(
      std::stoi(bench::arg_value(argc, argv, "--jobs", "0")));
  if (jobs == 0) jobs = runner::Pool::default_jobs();
  const std::uint64_t seed = 1;

  // --- construction: serial reference vs. parallel fast path ---------------
  sys::WorkloadSet::BuildOptions serial_opt;
  serial_opt.serial_reference = true;
  bench::StopWatch clock;
  const sys::WorkloadSet serial_set{scale, seed, false, serial_opt};
  const double serial_ms = clock.elapsed_ms();

  sys::WorkloadSet::BuildOptions parallel_opt;
  parallel_opt.jobs = jobs;
  parallel_opt.use_cache = false;
  clock.restart();
  const sys::WorkloadSet parallel_set{scale, seed, false, parallel_opt};
  const double parallel_ms = clock.elapsed_ms();
  const bool match = profiles_equal(serial_set.all(), parallel_set.all());

  // --- cache: cold store, then warm all-hits build --------------------------
  const auto cache_dir =
      std::filesystem::temp_directory_path() /
      ("coolpim-perf-graph-" + std::to_string(static_cast<std::uint64_t>(::getpid())));
  sys::WorkloadSet::BuildOptions cache_opt;
  cache_opt.jobs = jobs;
  cache_opt.cache_dir = cache_dir.string();

  clock.restart();
  const sys::WorkloadSet cold_set{scale, seed, false, cache_opt};
  const double cold_ms = clock.elapsed_ms();

  clock.restart();
  const sys::WorkloadSet warm_set{scale, seed, false, cache_opt};
  const double warm_ms = clock.elapsed_ms();

  const auto& cold = cold_set.build_stats();
  const auto& warm = warm_set.build_stats();
  const bool warm_all_hits = warm.cache_hits == warm_set.all().size() &&
                             warm.profiles_computed == 0 &&
                             profiles_equal(warm_set.all(), serial_set.all());
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);

  // --- csr: graph build alone, serial vs. pooled ----------------------------
  clock.restart();
  const auto g_serial = graph::make_ldbc_like(scale, seed);
  const double csr_serial_ms = clock.elapsed_ms();
  runner::Pool pool{jobs};
  clock.restart();
  const auto g_parallel = graph::make_ldbc_like(scale, seed, &pool);
  const double csr_parallel_ms = clock.elapsed_ms();
  const bool csr_match = g_serial.row_ptr() == g_parallel.row_ptr() &&
                         g_serial.col_idx() == g_parallel.col_idx();

  bench::JsonWriter json;
  json.kv("schema", "coolpim-bench-graph/1");
  json.kv("quick", quick);
  json.kv("scale", static_cast<std::uint64_t>(scale));
  json.kv("jobs", static_cast<std::uint64_t>(jobs));
  json.begin_object("construction");
  json.kv("workloads", static_cast<std::uint64_t>(serial_set.all().size()));
  json.kv("serial_ms", serial_ms);
  json.kv("parallel_ms", parallel_ms);
  json.kv("speedup", parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
  json.kv("profiles_bit_identical", match);
  json.end();
  json.begin_object("cache");
  json.kv("cold_ms", cold_ms);
  json.kv("warm_ms", warm_ms);
  json.kv("warm_speedup_vs_serial", warm_ms > 0.0 ? serial_ms / warm_ms : 0.0);
  json.kv("cold_hits", cold.cache_hits);
  json.kv("cold_misses", cold.cache_misses);
  json.kv("cold_computed", cold.profiles_computed);
  json.kv("cold_stored", cold.cache_stored);
  json.kv("warm_hits", warm.cache_hits);
  json.kv("warm_misses", warm.cache_misses);
  json.kv("warm_computed", warm.profiles_computed);
  json.kv("warm_all_hits", warm_all_hits);
  json.end();
  json.begin_object("csr");
  json.kv("serial_ms", csr_serial_ms);
  json.kv("parallel_ms", csr_parallel_ms);
  json.kv("speedup", csr_parallel_ms > 0.0 ? csr_serial_ms / csr_parallel_ms : 0.0);
  json.kv("bit_identical", csr_match);
  json.end();
  const std::string doc = json.str();

  if (!bench::write_text_file(out, doc)) {
    std::cerr << "perf_graph: cannot write " << out << "\n";
    return 1;
  }
  std::cout << doc;
  std::cout << "Construction (scale " << scale << ", jobs " << jobs << "): serial "
            << serial_ms << " ms, parallel " << parallel_ms << " ms ("
            << (parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0) << "x, bit-identical: "
            << (match ? "yes" : "NO") << ")\n"
            << "Cache: cold " << cold_ms << " ms, warm " << warm_ms << " ms (all hits: "
            << (warm_all_hits ? "yes" : "NO") << ")\n"
            << "CSR build: serial " << csr_serial_ms << " ms, parallel " << csr_parallel_ms
            << " ms (bit-identical: " << (csr_match ? "yes" : "NO") << ")\n"
            << "Results written to " << out << "\n";
  // The equivalence checks are the whole point; fail loudly if they break.
  return (match && warm_all_hits && csr_match) ? 0 : 1;
}
