// Fig. 3: heat map at full bandwidth with a commodity-server sink -- the
// 3D per-layer peaks and the 2D logic-layer map with vault-center hot spots.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "hmc/config.hpp"
#include "thermal/hmc_thermal.hpp"
#include "thermal_points.hpp"

using namespace coolpim;

namespace {

void print_fig3() {
  const hmc::LinkModel link{hmc::hmc20_config()};
  thermal::HmcThermalModel model{
      thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer)};
  model.apply_power(
      power::compute_power(power::EnergyParams{}, bench::read_traffic(link, 320.0)));
  model.solve_steady();

  Table layers{"Fig. 3 (left) -- per-layer temperatures, full BW + commodity sink"};
  layers.header({"Layer", "Peak (C)", "Mean (C)"});
  const auto& stack = model.stack();
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    layers.row({stack.spec().layers[l].name, Table::num(stack.layer_peak(l).value(), 1),
                Table::num(stack.layer_mean(l).value(), 1)});
  }
  layers.row({"heat sink", Table::num(stack.sink_temp().value(), 1),
              Table::num(stack.sink_temp().value(), 1)});
  layers.print(std::cout);

  // 2D logic-layer heat map rendered as intensity characters.
  const auto field = model.logic_heatmap();
  const auto& grid = model.config().floorplan.grid;
  const double lo = *std::min_element(field.begin(), field.end());
  const double hi = *std::max_element(field.begin(), field.end());
  std::cout << "\nFig. 3 (right) -- logic-layer heat map (" << Table::num(lo, 1) << " C = '.', "
            << Table::num(hi, 1) << " C = '@'):\n";
  const char* shades = ".:-=+*#%@";
  for (std::size_t y = 0; y < grid.ny; ++y) {
    std::cout << "  ";
    for (std::size_t x = 0; x < grid.nx; ++x) {
      const double t = field[grid.index(x, y)];
      const int idx = static_cast<int>((t - lo) / (hi - lo + 1e-9) * 8.999);
      std::cout << shades[idx];
    }
    std::cout << '\n';
  }
  std::cout << "Hot spots appear at the vault centers of the logic die (paper Fig. 3); the\n"
               "lowest DRAM die and the logic layer reach the highest temperatures.\n";
}

void BM_HeatmapExtraction(benchmark::State& state) {
  const hmc::LinkModel link{hmc::hmc20_config()};
  thermal::HmcThermalModel model{
      thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer)};
  model.apply_power(
      power::compute_power(power::EnergyParams{}, bench::read_traffic(link, 320.0)));
  model.solve_steady();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.logic_heatmap());
  }
}
BENCHMARK(BM_HeatmapExtraction);

// Steady re-solves across the Fig. 3 bandwidth sweep: warm starts retain the
// previous point's field, cold starts re-converge from ambient every point.
// The iteration-count gap is tracked by bench/perf_thermal.cpp as well.
void BM_Fig3SteadySweep(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;
  thermal::HmcThermalModel model{
      thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer)};
  std::size_t iters = 0;
  for (auto _ : state) {
    for (double bw = 0.0; bw <= 320.0; bw += 40.0) {
      model.apply_power(power::compute_power(ep, bench::read_traffic(link, bw)));
      iters += model.solve_steady(warm ? thermal::SteadyStart::kWarmScaled
                                       : thermal::SteadyStart::kCold);
    }
  }
  state.counters["iters_per_sweep"] =
      benchmark::Counter(static_cast<double>(iters) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Fig3SteadySweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
