// Shared infrastructure for the perf-benchmark harness (perf_thermal,
// perf_sim): a monotonic stopwatch and a minimal JSON emitter for the
// BENCH_*.json result files validated by tools/check_bench.py.
//
// Unlike the figure benches, the perf binaries do not use google-benchmark:
// they time whole kernel passes with std::chrono so the measured quantity
// (ns/cell-substep, events/sec, end-to-end wall time) maps one-to-one onto
// a JSON field with no statistical post-processing in between.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace coolpim::bench {

/// Wall-clock stopwatch on the monotonic clock.
class StopWatch {
 public:
  StopWatch() : start_{std::chrono::steady_clock::now()} {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed_sec() * 1e3; }
  [[nodiscard]] double elapsed_ns() const { return elapsed_sec() * 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal streaming JSON writer -- enough for the flat BENCH_*.json schema.
/// Keys are emitted in call order; numbers are finite (non-finite values are
/// serialized as null so the validator can flag them).
class JsonWriter {
 public:
  JsonWriter() { open('{'); }

  void begin_object(const std::string& key) {
    prefix(key);
    open('{');
  }
  void begin_array(const std::string& key) {
    prefix(key);
    open('[');
  }
  void begin_object() {  // anonymous, for array elements
    element();
    open('{');
  }
  void end() {
    const char c = stack_.back();
    stack_.pop_back();
    out_ << (c == '{' ? '}' : ']');
  }

  void kv(const std::string& key, double v) {
    prefix(key);
    number(v);
  }
  void kv(const std::string& key, std::uint64_t v) {
    prefix(key);
    out_ << v;
  }
  void kv(const std::string& key, int v) {
    prefix(key);
    out_ << v;
  }
  void kv(const std::string& key, bool v) {
    prefix(key);
    out_ << (v ? "true" : "false");
  }
  void kv(const std::string& key, const std::string& v) {
    prefix(key);
    quote(v);
  }
  void kv(const std::string& key, const char* v) { kv(key, std::string{v}); }

  /// Close any open containers (including the root) and return the document.
  [[nodiscard]] std::string str() {
    while (!stack_.empty()) end();
    out_ << '\n';
    return out_.str();
  }

 private:
  void open(char c) {
    stack_.push_back(c);
    first_.push_back(true);
    out_ << c;
  }
  void element() {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
  }
  void prefix(const std::string& key) {
    element();
    if (stack_.back() == '{') {
      quote(key);
      out_ << ':';
    }
  }
  void number(double v) {
    if (!std::isfinite(v)) {
      out_ << "null";
      return;
    }
    std::ostringstream tmp;
    tmp.precision(9);
    tmp << v;
    out_ << tmp.str();
  }
  void quote(const std::string& s) {
    out_ << '"';
    for (const char c : s) {
      if (c == '"' || c == '\\') out_ << '\\';
      out_ << c;
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<char> stack_;
  std::vector<bool> first_;

  // element() mutates first_.back(); std::vector<bool> references make that
  // awkward to read but are well-defined here (single-threaded, no aliasing).
};

/// Write `content` to `path`; returns false (and prints nothing) on failure.
inline bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out{path};
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

/// Tiny argv helper: returns the value following `flag`, or `fallback`.
inline std::string arg_value(int argc, char** argv, const char* flag,
                             const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// True if `flag` appears in argv.
inline bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace coolpim::bench
