// Perf harness for the simulation kernel, emitted as BENCH_sim.json.
//
// Three measurements:
//
//  - queue: raw event throughput through sim::Simulation / sim::EventQueue.
//    A fan of self-rescheduling one-shot chains with co-prime periods keeps
//    the 4-ary heap populated and exercises schedule+pop per event.  The
//    hop functor captures one pointer, so every event stays in EventAction's
//    inline buffer -- zero heap allocations per event.
//
//  - periodic: the schedule_periodic re-arm path (shared state + inline
//    re-arm functor), as used by every component tick in the full system.
//
//  - end_to_end: Fig. 13-style wall time -- full sys::System runs (GPU ->
//    HMC -> power -> thermal -> throttle loop) for representative workloads
//    under the paper's scenarios, timed per run.
//
// Flags: --out FILE (default BENCH_sim.json), --quick (CI smoke: fewer
// events, tiny graph scale), --scale N (graph scale override).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sys/system.hpp"

#include "perf_support.hpp"

using namespace coolpim;

namespace {

struct QueueResult {
  std::uint64_t events;
  double wall_ms;
  double events_per_sec;
  double ns_per_event;
};

/// Self-rescheduling hop: one pointer capture, inline in EventAction.
struct Chain {
  sim::Simulation* sim;
  std::uint64_t remaining;
  Time period;
};

struct Hop {
  Chain* chain;
  void operator()() const {
    if (chain->remaining == 0) return;
    --chain->remaining;
    chain->sim->schedule_in(chain->period, Hop{chain});
  }
};

QueueResult measure_queue(std::uint64_t total_events) {
  constexpr std::uint64_t kChains = 64;
  sim::Simulation sim;
  std::vector<Chain> chains;
  chains.reserve(kChains);
  for (std::uint64_t i = 0; i < kChains; ++i) {
    // Co-prime-ish periods interleave the chains in the heap.
    chains.push_back(Chain{&sim, total_events / kChains, Time::ns(100.0 + 7.0 * i)});
  }
  bench::StopWatch clock;
  for (auto& c : chains) sim.schedule_in(c.period, Hop{&c});
  sim.run_to_completion();
  QueueResult r{};
  r.events = sim.events_processed();
  r.wall_ms = clock.elapsed_ms();
  r.events_per_sec = static_cast<double>(r.events) / (r.wall_ms * 1e-3);
  r.ns_per_event = r.wall_ms * 1e6 / static_cast<double>(r.events);
  return r;
}

QueueResult measure_periodic(std::uint64_t total_events) {
  constexpr std::uint64_t kTasks = 16;
  sim::Simulation sim;
  bench::StopWatch clock;
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    auto remaining = total_events / kTasks;
    sim.schedule_periodic(Time::ns(100.0 + 7.0 * i),
                          [remaining]() mutable { return --remaining > 0; });
  }
  sim.run_to_completion();
  QueueResult r{};
  r.events = sim.events_processed();
  r.wall_ms = clock.elapsed_ms();
  r.events_per_sec = static_cast<double>(r.events) / (r.wall_ms * 1e-3);
  r.ns_per_event = r.wall_ms * 1e6 / static_cast<double>(r.events);
  return r;
}

struct EndToEndRun {
  std::string workload;
  std::string scenario;
  double wall_ms;
  double sim_time_ms;
  double peak_dram_c;
};

struct EndToEndResult {
  unsigned scale;
  double workload_build_ms;
  std::vector<EndToEndRun> runs;
  double total_wall_ms{0.0};
};

EndToEndResult measure_end_to_end(unsigned scale, std::size_t n_workloads) {
  EndToEndResult r{};
  r.scale = scale;

  bench::StopWatch build_clock;
  const sys::WorkloadSet set{scale, 1};
  r.workload_build_ms = build_clock.elapsed_ms();

  const auto& names = sys::workload_names();
  const sys::Scenario scenarios[] = {sys::Scenario::kNonOffloading,
                                     sys::Scenario::kNaiveOffloading,
                                     sys::Scenario::kCoolPimHw};
  for (std::size_t w = 0; w < names.size() && w < n_workloads; ++w) {
    for (const auto scenario : scenarios) {
      sys::SystemConfig cfg;
      cfg.scenario = scenario;
      bench::StopWatch clock;
      sys::System system{cfg};
      const auto result = system.run(set.profile(names[w]));
      EndToEndRun run;
      run.workload = names[w];
      run.scenario = std::string{sys::to_string(scenario)};
      run.wall_ms = clock.elapsed_ms();
      run.sim_time_ms = result.exec_time.as_ms();
      run.peak_dram_c = result.peak_dram_temp.value();
      r.total_wall_ms += run.wall_ms;
      r.runs.push_back(std::move(run));
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::arg_value(argc, argv, "--out", "BENCH_sim.json");
  const bool quick = bench::arg_flag(argc, argv, "--quick");
  const unsigned scale = static_cast<unsigned>(
      std::stoi(bench::arg_value(argc, argv, "--scale", quick ? "10" : "16")));
  const std::uint64_t queue_events = quick ? 100'000 : 2'000'000;
  const std::size_t n_workloads = quick ? 1 : 2;

  const QueueResult q = measure_queue(queue_events);
  const QueueResult p = measure_periodic(queue_events / 4);
  const EndToEndResult e = measure_end_to_end(scale, n_workloads);

  bench::JsonWriter json;
  json.kv("schema", "coolpim-bench-sim/1");
  json.kv("quick", quick);
  json.begin_object("queue");
  json.kv("events", q.events);
  json.kv("wall_ms", q.wall_ms);
  json.kv("events_per_sec", q.events_per_sec);
  json.kv("ns_per_event", q.ns_per_event);
  json.end();
  json.begin_object("periodic");
  json.kv("events", p.events);
  json.kv("wall_ms", p.wall_ms);
  json.kv("events_per_sec", p.events_per_sec);
  json.kv("ns_per_event", p.ns_per_event);
  json.end();
  json.begin_object("end_to_end");
  json.kv("scale", static_cast<std::uint64_t>(e.scale));
  json.kv("workload_build_ms", e.workload_build_ms);
  json.kv("total_wall_ms", e.total_wall_ms);
  json.begin_array("runs");
  for (const auto& run : e.runs) {
    json.begin_object();
    json.kv("workload", run.workload);
    json.kv("scenario", run.scenario);
    json.kv("wall_ms", run.wall_ms);
    json.kv("sim_time_ms", run.sim_time_ms);
    json.kv("peak_dram_c", run.peak_dram_c);
    json.end();
  }
  json.end();
  json.end();
  const std::string doc = json.str();

  if (!bench::write_text_file(out, doc)) {
    std::cerr << "perf_sim: cannot write " << out << "\n";
    return 1;
  }
  std::cout << doc;
  std::cout << "Queue:     " << q.events_per_sec / 1e6 << " M events/s (" << q.ns_per_event
            << " ns/event)\n"
            << "Periodic:  " << p.events_per_sec / 1e6 << " M events/s\n"
            << "End-to-end (scale " << e.scale << "): " << e.total_wall_ms << " ms over "
            << e.runs.size() << " runs\n"
            << "Results written to " << out << "\n";
  return 0;
}
