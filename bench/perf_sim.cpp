// Perf harness for the simulation kernel, emitted as BENCH_sim.json.
//
// Three measurements:
//
//  - queue: raw event throughput through sim::Simulation / sim::EventQueue.
//    A fan of self-rescheduling one-shot chains with co-prime periods keeps
//    the 4-ary heap populated and exercises schedule+pop per event.  The
//    hop functor captures one pointer, so every event stays in EventAction's
//    inline buffer -- zero heap allocations per event.
//
//  - periodic: the schedule_periodic re-arm path (shared state + inline
//    re-arm functor), as used by every component tick in the full system.
//
//  - end_to_end: Fig. 13-style wall time -- full sys::System runs (GPU ->
//    HMC -> power -> thermal -> throttle loop) for representative workloads
//    under the paper's scenarios, timed per run.
//
//  - backend (gated): the hmc::Backend fidelity tiers (DESIGN.md section
//    15).  Cross-validates the analytic epoch-throughput tier against the
//    instruction-level pim-vault tier on every GraphBIG micro-kernel
//    (pim::cross_validate, tolerance pim::kXvalTolerance) and times the
//    per-epoch serve cost of all three tiers, so the tier-cost ratio --
//    the reason epoch-throughput is the default -- stays visible in CI
//    artifacts.  A kernel outside tolerance fails the binary (exit 1).
//
//  - sweep_batch (gated): the lock-step batched sweep executor
//    (runner::run_lockstep, docs/PERFORMANCE.md section 8) on the
//    fig-10-shaped scenario matrix.  Re-checks RunResult bit-identity
//    against the scalar runner in-run, and gates the lane-batching factor:
//    thermal-sweep wall-clock at batch 8 must be >= 2x better than
//    lane-at-a-time (batch 1) execution of the same lock-step path.  A
//    failed gate fails the binary (exit 1); --quick skips the speedup
//    assertion (smoke machines are too noisy) but still enforces identity.
//
// Flags: --out FILE (default BENCH_sim.json), --quick (CI smoke: fewer
// events, tiny graph scale), --scale N (graph scale override).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "hmc/backend.hpp"
#include "pim/programs.hpp"
#include "pim/xval.hpp"
#include "runner/experiment.hpp"
#include "runner/sweep_batch.hpp"
#include "sim/simulation.hpp"
#include "sys/system.hpp"

#include "perf_support.hpp"

using namespace coolpim;

namespace {

struct QueueResult {
  std::uint64_t events;
  double wall_ms;
  double events_per_sec;
  double ns_per_event;
};

/// Self-rescheduling hop: one pointer capture, inline in EventAction.
struct Chain {
  sim::Simulation* sim;
  std::uint64_t remaining;
  Time period;
};

struct Hop {
  Chain* chain;
  void operator()() const {
    if (chain->remaining == 0) return;
    --chain->remaining;
    chain->sim->schedule_in(chain->period, Hop{chain});
  }
};

QueueResult measure_queue(std::uint64_t total_events) {
  constexpr std::uint64_t kChains = 64;
  sim::Simulation sim;
  std::vector<Chain> chains;
  chains.reserve(kChains);
  for (std::uint64_t i = 0; i < kChains; ++i) {
    // Co-prime-ish periods interleave the chains in the heap.
    chains.push_back(Chain{&sim, total_events / kChains, Time::ns(100.0 + 7.0 * i)});
  }
  bench::StopWatch clock;
  for (auto& c : chains) sim.schedule_in(c.period, Hop{&c});
  sim.run_to_completion();
  QueueResult r{};
  r.events = sim.events_processed();
  r.wall_ms = clock.elapsed_ms();
  r.events_per_sec = static_cast<double>(r.events) / (r.wall_ms * 1e-3);
  r.ns_per_event = r.wall_ms * 1e6 / static_cast<double>(r.events);
  return r;
}

QueueResult measure_periodic(std::uint64_t total_events) {
  constexpr std::uint64_t kTasks = 16;
  sim::Simulation sim;
  bench::StopWatch clock;
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    auto remaining = total_events / kTasks;
    sim.schedule_periodic(Time::ns(100.0 + 7.0 * i),
                          [remaining]() mutable { return --remaining > 0; });
  }
  sim.run_to_completion();
  QueueResult r{};
  r.events = sim.events_processed();
  r.wall_ms = clock.elapsed_ms();
  r.events_per_sec = static_cast<double>(r.events) / (r.wall_ms * 1e-3);
  r.ns_per_event = r.wall_ms * 1e6 / static_cast<double>(r.events);
  return r;
}

struct EndToEndRun {
  std::string workload;
  std::string scenario;
  double wall_ms;
  double sim_time_ms;
  double peak_dram_c;
};

struct EndToEndResult {
  unsigned scale;
  double workload_build_ms;
  std::vector<EndToEndRun> runs;
  double total_wall_ms{0.0};
};

EndToEndResult measure_end_to_end(const sys::WorkloadSet& set, unsigned scale,
                                  std::size_t n_workloads, double workload_build_ms) {
  EndToEndResult r{};
  r.scale = scale;
  r.workload_build_ms = workload_build_ms;

  const auto& names = sys::workload_names();
  const sys::Scenario scenarios[] = {sys::Scenario::kNonOffloading,
                                     sys::Scenario::kNaiveOffloading,
                                     sys::Scenario::kCoolPimHw};
  for (std::size_t w = 0; w < names.size() && w < n_workloads; ++w) {
    for (const auto scenario : scenarios) {
      sys::SystemConfig cfg;
      cfg.scenario = scenario;
      bench::StopWatch clock;
      sys::System system{cfg};
      const auto result = system.run(set.profile(names[w]));
      EndToEndRun run;
      run.workload = names[w];
      run.scenario = std::string{sys::to_string(scenario)};
      run.wall_ms = clock.elapsed_ms();
      run.sim_time_ms = result.exec_time.as_ms();
      run.peak_dram_c = result.peak_dram_temp.value();
      r.total_wall_ms += run.wall_ms;
      r.runs.push_back(std::move(run));
    }
  }
  return r;
}

struct SweepBatchResult {
  std::size_t experiments;
  double scalar_wall_ms;
  double b1_wall_ms;
  double b8_wall_ms;
  runner::SweepBatchStats b1;
  runner::SweepBatchStats b8;
  double sweep_speedup;
  bool bit_identical;
  bool gate_pass;
};

/// Bit-for-bit RunResult comparison, timeseries included -- the executor's
/// contract (tests/test_sweep_batch.cpp pins the same thing offline).
bool results_identical(const sys::RunResult& a, const sys::RunResult& b) {
  bool same = a.exec_time == b.exec_time && a.link_data_bytes == b.link_data_bytes &&
              a.link_raw_bytes == b.link_raw_bytes &&
              a.dram_internal_bytes == b.dram_internal_bytes && a.pim_ops == b.pim_ops &&
              a.host_atomics == b.host_atomics && a.cube_energy_j == b.cube_energy_j &&
              a.fan_energy_j == b.fan_energy_j &&
              a.peak_dram_temp.value() == b.peak_dram_temp.value() &&
              a.thermal_warnings == b.thermal_warnings && a.shut_down == b.shut_down &&
              a.time_above_normal == b.time_above_normal;
  for (const auto& [ta, tb] :
       {std::pair{&a.pim_rate, &b.pim_rate}, std::pair{&a.dram_temp, &b.dram_temp},
        std::pair{&a.link_bw, &b.link_bw}}) {
    same = same && ta->times() == tb->times() && ta->values() == tb->values();
  }
  return same;
}

/// The lock-step batched sweep executor on the fig-10-shaped matrix
/// (docs/PERFORMANCE.md section 8): scalar runner for the identity baseline,
/// then run_lockstep at batch 1 and batch 8 (jobs = 1 so all timing is one
/// thread's work).  The gated quantity is the thermal-sweep wall-clock --
/// the portion the executor actually batches; end-to-end walls are reported
/// alongside for context.
SweepBatchResult measure_sweep_batch(const sys::WorkloadSet& set, std::size_t n_workloads,
                                     bool quick) {
  const auto& names = sys::workload_names();
  const sys::Scenario scenarios[] = {sys::Scenario::kNonOffloading,
                                     sys::Scenario::kNaiveOffloading,
                                     sys::Scenario::kCoolPimSw,
                                     sys::Scenario::kCoolPimHw,
                                     sys::Scenario::kIdealThermal,
                                     sys::Scenario::kBwThrottle};
  std::vector<runner::SweepBatchTask> tasks;
  for (std::size_t w = 0; w < names.size() && w < n_workloads; ++w) {
    for (const auto scenario : scenarios) {
      runner::SweepBatchTask t;
      t.profile = &set.profile(names[w]);
      t.config.scenario = scenario;
      tasks.push_back(t);
    }
  }

  SweepBatchResult r{};
  r.experiments = tasks.size();

  bench::StopWatch scalar_clock;
  std::vector<sys::RunResult> scalar;
  scalar.reserve(tasks.size());
  for (const auto& t : tasks) {
    sys::System system{t.config};
    scalar.push_back(system.run(*t.profile));
  }
  r.scalar_wall_ms = scalar_clock.elapsed_ms();

  bench::StopWatch b1_clock;
  const auto lane_at_a_time = runner::run_lockstep(tasks, 1, 1, &r.b1);
  r.b1_wall_ms = b1_clock.elapsed_ms();

  bench::StopWatch b8_clock;
  const auto batched = runner::run_lockstep(tasks, 8, 1, &r.b8);
  r.b8_wall_ms = b8_clock.elapsed_ms();

  r.bit_identical = true;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    r.bit_identical = r.bit_identical && results_identical(scalar[i], batched[i]) &&
                      results_identical(scalar[i], lane_at_a_time[i]);
  }
  r.sweep_speedup = r.b1.sweep_wall_ms / r.b8.sweep_wall_ms;
  r.gate_pass = r.bit_identical && (quick || r.sweep_speedup >= 2.0);
  return r;
}

struct BackendXvalRow {
  std::string kernel;
  pim::XvalPoint point;
  bool pass;
};

struct BackendResult {
  unsigned xval_epochs;
  std::vector<BackendXvalRow> xval;
  double epoch_throughput_ns_per_epoch;
  double event_detailed_ns_per_epoch;
  double pim_vault_ns_per_epoch;
  bool gate_pass;
};

/// Wall time per served epoch of one fidelity tier under saturating mixed
/// demand -- the cost a full run pays every ~10 us of simulated time.
double backend_ns_per_epoch(hmc::BackendKind kind, unsigned epochs) {
  hmc::BackendBuild build;
  build.kind = kind;
  const auto backend = hmc::make_backend(build);
  const Time epoch = Time::us(10.0);
  hmc::EpochDemand demand;
  demand.reads = 4e9 * epoch.as_sec();
  demand.writes = 2e9 * epoch.as_sec();
  demand.pim_ops = 6e9 * epoch.as_sec();
  demand.pim_return_fraction = 0.25;
  bench::StopWatch clock;
  for (unsigned i = 0; i < epochs; ++i) {
    (void)backend->serve(demand, epoch, Celsius{60.0});
  }
  return clock.elapsed_ms() * 1e6 / static_cast<double>(epochs);
}

/// The fidelity-tier section: per-kernel cross-validation (the same harness
/// tools/xval_backends gates CI on) plus per-epoch serve cost of each tier.
BackendResult measure_backends(bool quick) {
  BackendResult r{};
  r.xval_epochs = quick ? 8 : 40;
  r.gate_pass = true;
  for (const auto kernel : pim::kMicroKernels) {
    BackendXvalRow row;
    row.kernel = std::string{kernel};
    row.point = pim::cross_validate(kernel, Celsius{60.0}, r.xval_epochs);
    row.pass = std::abs(row.point.ratio - 1.0) <= pim::kXvalTolerance;
    r.gate_pass = r.gate_pass && row.pass;
    r.xval.push_back(std::move(row));
  }
  const unsigned timing_epochs = quick ? 100 : 1000;
  r.epoch_throughput_ns_per_epoch =
      backend_ns_per_epoch(hmc::BackendKind::kEpochThroughput, timing_epochs);
  r.event_detailed_ns_per_epoch =
      backend_ns_per_epoch(hmc::BackendKind::kEventDetailed, timing_epochs);
  r.pim_vault_ns_per_epoch =
      backend_ns_per_epoch(hmc::BackendKind::kPimVault, timing_epochs);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::arg_value(argc, argv, "--out", "BENCH_sim.json");
  const bool quick = bench::arg_flag(argc, argv, "--quick");
  const unsigned scale = static_cast<unsigned>(
      std::stoi(bench::arg_value(argc, argv, "--scale", quick ? "10" : "16")));
  const std::uint64_t queue_events = quick ? 100'000 : 2'000'000;
  const std::size_t n_workloads = quick ? 1 : 2;

  const QueueResult q = measure_queue(queue_events);
  const QueueResult p = measure_periodic(queue_events / 4);
  bench::StopWatch build_clock;
  const sys::WorkloadSet set{scale, 1};
  const double workload_build_ms = build_clock.elapsed_ms();
  const EndToEndResult e = measure_end_to_end(set, scale, n_workloads, workload_build_ms);
  // The gate runs the full fig-10 matrix (every workload x 6 scenarios): the
  // lane-batching factor needs enough concurrent work for the retire/refill
  // tail to amortize.  Quick mode shrinks to one workload and skips the
  // speedup assertion (identity still enforced).
  const SweepBatchResult sb =
      measure_sweep_batch(set, quick ? 1 : sys::workload_names().size(), quick);
  const BackendResult be = measure_backends(quick);

  bench::JsonWriter json;
  json.kv("schema", "coolpim-bench-sim/3");
  json.kv("quick", quick);
  json.begin_object("queue");
  json.kv("events", q.events);
  json.kv("wall_ms", q.wall_ms);
  json.kv("events_per_sec", q.events_per_sec);
  json.kv("ns_per_event", q.ns_per_event);
  json.end();
  json.begin_object("periodic");
  json.kv("events", p.events);
  json.kv("wall_ms", p.wall_ms);
  json.kv("events_per_sec", p.events_per_sec);
  json.kv("ns_per_event", p.ns_per_event);
  json.end();
  json.begin_object("end_to_end");
  json.kv("scale", static_cast<std::uint64_t>(e.scale));
  json.kv("workload_build_ms", e.workload_build_ms);
  json.kv("total_wall_ms", e.total_wall_ms);
  json.begin_array("runs");
  for (const auto& run : e.runs) {
    json.begin_object();
    json.kv("workload", run.workload);
    json.kv("scenario", run.scenario);
    json.kv("wall_ms", run.wall_ms);
    json.kv("sim_time_ms", run.sim_time_ms);
    json.kv("peak_dram_c", run.peak_dram_c);
    json.end();
  }
  json.end();
  json.end();
  json.begin_object("sweep_batch");
  json.kv("experiments", static_cast<std::uint64_t>(sb.experiments));
  json.kv("scalar_wall_ms", sb.scalar_wall_ms);
  json.kv("b1_wall_ms", sb.b1_wall_ms);
  json.kv("b8_wall_ms", sb.b8_wall_ms);
  json.kv("b1_sweep_wall_ms", sb.b1.sweep_wall_ms);
  json.kv("b8_sweep_wall_ms", sb.b8.sweep_wall_ms);
  json.kv("b1_sweep_rounds", sb.b1.rounds);
  json.kv("b8_sweep_rounds", sb.b8.rounds);
  json.kv("epochs", sb.b8.epochs);
  json.kv("sweep_speedup_b8_vs_b1", sb.sweep_speedup);
  json.kv("bit_identical", sb.bit_identical);
  json.kv("gate_pass", sb.gate_pass);
  json.end();
  json.begin_object("backend");
  json.kv("xval_epochs", static_cast<std::uint64_t>(be.xval_epochs));
  json.kv("xval_tolerance", pim::kXvalTolerance);
  json.begin_array("xval");
  for (const auto& row : be.xval) {
    json.begin_object();
    json.kv("kernel", row.kernel);
    json.kv("epoch_op_per_ns", row.point.epoch_op_per_ns);
    json.kv("pim_op_per_ns", row.point.pim_op_per_ns);
    json.kv("ratio", row.point.ratio);
    json.kv("pass", row.pass);
    json.end();
  }
  json.end();
  json.kv("epoch_throughput_ns_per_epoch", be.epoch_throughput_ns_per_epoch);
  json.kv("event_detailed_ns_per_epoch", be.event_detailed_ns_per_epoch);
  json.kv("pim_vault_ns_per_epoch", be.pim_vault_ns_per_epoch);
  json.kv("gate_pass", be.gate_pass);
  json.end();
  const std::string doc = json.str();

  if (!bench::write_text_file(out, doc)) {
    std::cerr << "perf_sim: cannot write " << out << "\n";
    return 1;
  }
  std::cout << doc;
  std::cout << "Queue:     " << q.events_per_sec / 1e6 << " M events/s (" << q.ns_per_event
            << " ns/event)\n"
            << "Periodic:  " << p.events_per_sec / 1e6 << " M events/s\n"
            << "End-to-end (scale " << e.scale << "): " << e.total_wall_ms << " ms over "
            << e.runs.size() << " runs\n"
            << "Sweep batch: " << sb.experiments << " experiments, thermal sweep "
            << sb.b1.sweep_wall_ms << " ms at batch 1 vs " << sb.b8.sweep_wall_ms
            << " ms at batch 8 (" << sb.sweep_speedup
            << "x, bit-identical=" << (sb.bit_identical ? "yes" : "NO")
            << "); scalar/b8 total " << sb.scalar_wall_ms << "/" << sb.b8_wall_ms << " ms\n"
            << "Backend:   serve cost " << be.epoch_throughput_ns_per_epoch << " / "
            << be.event_detailed_ns_per_epoch << " / " << be.pim_vault_ns_per_epoch
            << " ns per epoch (epoch-throughput / event-detailed / pim-vault); xval "
            << (be.gate_pass ? "within" : "OUTSIDE") << " tolerance "
            << pim::kXvalTolerance << " on " << be.xval.size() << " kernels\n"
            << "Results written to " << out << "\n";
  if (!sb.gate_pass) {
    std::cerr << "perf_sim: sweep_batch gate FAILED (bit_identical="
              << (sb.bit_identical ? "yes" : "no") << ", sweep speedup " << sb.sweep_speedup
              << "x, need >= 2x at batch 8)\n";
    return 1;
  }
  if (!be.gate_pass) {
    for (const auto& row : be.xval) {
      if (!row.pass) {
        std::cerr << "perf_sim: backend xval FAILED for " << row.kernel << " (ratio "
                  << row.point.ratio << ", tolerance " << pim::kXvalTolerance << ")\n";
      }
    }
    return 1;
  }
  return 0;
}
