// Fig. 13: peak DRAM temperature per workload under naive offloading and the
// two CoolPIM mechanisms.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_fig13() {
  const auto& matrix = scenario_matrix();

  Table t{"Fig. 13 -- Peak DRAM temperature (C)"};
  t.header({"Workload", "Naive-Offloading", "CoolPIM (SW)", "CoolPIM (HW)",
            "Naive time derated (%)"});
  for (const auto& row : matrix) {
    const auto& naive = row.at(sys::Scenario::kNaiveOffloading);
    const double derated_pct = naive.exec_time > Time::zero()
                                   ? 100.0 * (naive.time_above_normal / naive.exec_time)
                                   : 0.0;
    t.row({row.workload, Table::num(naive.peak_dram_temp.value(), 1),
           Table::num(row.at(sys::Scenario::kCoolPimSw).peak_dram_temp.value(), 1),
           Table::num(row.at(sys::Scenario::kCoolPimHw).peak_dram_temp.value(), 1),
           Table::num(derated_pct, 0)});
  }
  t.print(std::cout);
  std::cout
      << "Naive offloading pushes the hot workloads past the 85 C normal limit (paper:\n"
         "most exceed 90 C, bfs-dwc/twc reach ~95 C) and spends most of the run derated;\n"
         "CoolPIM keeps every workload at or below ~85 C.\n";
}

void BM_TempExtraction(benchmark::State& state) {
  const auto& matrix = scenario_matrix();
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& row : matrix) {
      acc += row.at(sys::Scenario::kNaiveOffloading).peak_dram_temp.value();
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TempExtraction);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig13();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
