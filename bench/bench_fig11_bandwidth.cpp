// Fig. 11: off-chip bandwidth consumption (total link traffic) normalized to
// the non-offloading baseline.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_fig11() {
  const auto& matrix = scenario_matrix();

  Table t{"Fig. 11 -- Bandwidth consumption normalized to the non-offloading baseline"};
  t.header({"Workload", "Non-Offloading", "Naive-Offloading", "CoolPIM (SW)", "CoolPIM (HW)"});
  for (const auto& row : matrix) {
    t.row({row.workload, "1.00",
           Table::num(row.normalized_consumption(sys::Scenario::kNaiveOffloading), 2),
           Table::num(row.normalized_consumption(sys::Scenario::kCoolPimSw), 2),
           Table::num(row.normalized_consumption(sys::Scenario::kCoolPimHw), 2)});
  }
  t.print(std::cout);
  std::cout
      << "Paper's counterintuitive result reproduced: naive offloading saves the MOST\n"
         "bandwidth (down to ~0.61x) yet gains little or loses performance, because the\n"
         "savings trigger the thermal derating; CoolPIM deliberately consumes more\n"
         "bandwidth (~0.79x) but runs faster by staying in the normal phase.\n";
}

void BM_ConsumptionAccounting(benchmark::State& state) {
  const auto& matrix = scenario_matrix();
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& row : matrix) {
      acc += row.normalized_consumption(sys::Scenario::kCoolPimHw);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ConsumptionAccounting);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
