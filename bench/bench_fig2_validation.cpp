// Fig. 2: thermal model validation -- measured surface temperature vs die
// temperature estimated from the surface vs die temperature from the model,
// for the low-end and high-end module heat sinks at full HMC 1.1 load.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "hmc/config.hpp"
#include "thermal/hmc_thermal.hpp"
#include "thermal_points.hpp"

using namespace coolpim;

namespace {

void print_fig2() {
  const hmc::LinkModel link{hmc::hmc11_config()};
  const auto op = bench::read_traffic(link, 60.0);
  const auto pb = power::compute_power(power::EnergyParams{}, op);

  Table t{"Fig. 2 -- Thermal model validation (HMC 1.1, busy)"};
  t.header({"Cooling", "Surface measured (paper, C)", "Die estimated (C)", "Die modeled (C)",
            "Error (C)"});
  struct Case {
    power::CoolingType type;
    double paper_surface;
  };
  for (const auto& c : {Case{power::CoolingType::kLowEndActive, 60.5},
                        Case{power::CoolingType::kHighEndActive, 47.3}}) {
    // "Die estimated": paper's rule of thumb applied to the measured surface.
    const Celsius estimated = thermal::HmcThermalModel::estimate_die_from_surface(
        Celsius{c.paper_surface}, pb.total());
    thermal::HmcThermalModel model{thermal::hmc11_thermal_config(c.type, 30.0)};
    model.apply_power(pb);
    model.solve_steady();
    const double modeled = model.peak_dram().value();
    t.row({power::prototype_cooling(c.type).name, Table::num(c.paper_surface, 1),
           Table::num(estimated.value(), 1), Table::num(modeled, 1),
           Table::num(std::abs(modeled - estimated.value()), 1)});
  }
  t.print(std::cout);
  std::cout << "The modeled die temperature tracks the estimate derived from the thermal-\n"
               "camera measurement (paper: \"a reasonable error compared to the real system\").\n";
}

void BM_ValidationSolve(benchmark::State& state) {
  const hmc::LinkModel link{hmc::hmc11_config()};
  const auto pb =
      power::compute_power(power::EnergyParams{}, bench::read_traffic(link, 60.0));
  for (auto _ : state) {
    thermal::HmcThermalModel model{
        thermal::hmc11_thermal_config(power::CoolingType::kLowEndActive, 30.0)};
    model.apply_power(pb);
    model.solve_steady();
    benchmark::DoNotOptimize(model.peak_dram());
  }
}
BENCHMARK(BM_ValidationSolve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
