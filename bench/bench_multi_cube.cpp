// Extension: CoolPIM on multi-cube systems (the prototype platform carries
// up to six modules).  Sweeps cube count and hub-traffic skew.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"
#include "sys/multi_cube.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

sys::MultiCubeResult run_cubes(std::size_t cubes, double skew, sys::Scenario scenario,
                               const std::string& workload = "dc") {
  sys::MultiCubeConfig cfg;
  cfg.cubes = cubes;
  cfg.atomic_skew = skew;
  cfg.base.scenario = scenario;
  sys::MultiCubeSystem system{cfg};
  return system.run(workloads().profile(workload));
}

void print_scaling() {
  Table t{"Extension -- cube-count scaling (dc, balanced striping)"};
  t.header({"Cubes", "Naive exec (ms)", "CoolPIM (HW) exec (ms)", "Ideal exec (ms)",
            "Naive peak (C)"});
  for (const std::size_t n : {1u, 2u, 4u}) {
    const double balanced = 1.0 / static_cast<double>(n);
    const auto naive = run_cubes(n, balanced, sys::Scenario::kNaiveOffloading);
    const auto hw = run_cubes(n, balanced, sys::Scenario::kCoolPimHw);
    const auto ideal = run_cubes(n, balanced, sys::Scenario::kIdealThermal);
    t.row({std::to_string(n), Table::num(naive.aggregate.exec_time.as_ms(), 2),
           Table::num(hw.aggregate.exec_time.as_ms(), 2),
           Table::num(ideal.aggregate.exec_time.as_ms(), 2),
           Table::num(naive.aggregate.peak_dram_temp.value(), 1)});
  }
  t.print(std::cout);
  std::cout << "Striping across cubes divides the per-cube load: with enough cubes even\n"
               "naive offloading stays inside the normal range and CoolPIM's throttle\n"
               "never engages -- thermal headroom can be bought with more stacks.\n";
}

void print_skew() {
  // pagerank runs long enough for the feedback loop to settle in-run.
  Table t{"Extension -- hub-traffic skew on 2 cubes (pagerank)"};
  t.header({"Skew (cube 0 share)", "Scenario", "Exec (ms)", "Hottest cube (C)",
            "Coolest cube (C)"});
  for (const double skew : {0.50, 0.70, 0.90}) {
    for (const auto scenario :
         {sys::Scenario::kNaiveOffloading, sys::Scenario::kCoolPimHw}) {
      const auto r = run_cubes(2, skew, scenario, "pagerank");
      double lo = 1e9, hi = -1e9;
      for (const auto& temp : r.final_dram_temps) {
        lo = std::min(lo, temp.value());
        hi = std::max(hi, temp.value());
      }
      t.row({Table::num(skew, 2), r.aggregate.scenario,
             Table::num(r.aggregate.exec_time.as_ms(), 2), Table::num(hi, 1),
             Table::num(lo, 1)});
    }
  }
  t.print(std::cout);
  std::cout << "Power-law hubs concentrate PIM heat on one cube; the whole GPU slows to\n"
               "that cube's pace.  CoolPIM reacts to the hottest cube's warnings -- the\n"
               "per-response ERRSTAT transport makes that per-cube feedback free.\n";
}

void BM_MultiCubeRun(benchmark::State& state) {
  (void)workloads();
  const auto cubes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_cubes(cubes, 1.0 / static_cast<double>(cubes), sys::Scenario::kCoolPimHw)
            .aggregate.exec_time);
  }
}
BENCHMARK(BM_MultiCubeRun)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_scaling();
  print_skew();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
