// Ablation: control factor (CF) and HW-DynT delayed-update window.
//
// Paper Section IV-B: "A larger CF value allows for a fast cooldown of HMC;
// however, it also increases the chance of under-tuning the PTP size"; and
// Section IV-C motivates the delayed PCU updates by the over-reduction risk.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_cf_sweep() {
  Table sw{"Ablation -- SW-DynT control factor (dc workload)"};
  sw.header({"CF (blocks)", "Speedup vs baseline", "Avg PIM rate (op/ns)", "Peak DRAM (C)"});
  const auto base = run_one("dc", sys::Scenario::kNonOffloading);
  for (const std::uint32_t cf : {1u, 2u, 4u, 8u, 16u, 32u}) {
    sys::SystemConfig cfg;
    cfg.sw_control_factor = cf;
    const auto r = run_one("dc", sys::Scenario::kCoolPimSw, cfg);
    sw.row({std::to_string(cf), Table::num(base.exec_time / r.exec_time, 2),
            Table::num(r.avg_pim_rate_op_per_ns(), 2),
            Table::num(r.peak_dram_temp.value(), 1)});
  }
  sw.print(std::cout);

  Table hw{"Ablation -- HW-DynT control factor (dc workload)"};
  hw.header({"CF (warps)", "Speedup vs baseline", "Avg PIM rate (op/ns)", "Peak DRAM (C)"});
  for (const std::uint32_t cf : {1u, 2u, 4u, 8u, 16u, 32u}) {
    sys::SystemConfig cfg;
    cfg.hw_control_factor = cf;
    const auto r = run_one("dc", sys::Scenario::kCoolPimHw, cfg);
    hw.row({std::to_string(cf), Table::num(base.exec_time / r.exec_time, 2),
            Table::num(r.avg_pim_rate_op_per_ns(), 2),
            Table::num(r.peak_dram_temp.value(), 1)});
  }
  hw.print(std::cout);
  std::cout << "Small CF converges slowly (time spent hot); large CF over-throttles\n"
               "(under-tuned PIM rate) -- the trade-off the paper describes.\n";
}

void BM_CoolPimSwRun(benchmark::State& state) {
  (void)workloads();
  sys::SystemConfig cfg;
  cfg.sw_control_factor = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_one("dc", sys::Scenario::kCoolPimSw, cfg).exec_time);
  }
}
BENCHMARK(BM_CoolPimSwRun)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_cf_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
