// Fig. 12: average PIM offloading rate per workload, naive vs CoolPIM.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_fig12() {
  const auto& matrix = scenario_matrix();

  Table t{"Fig. 12 -- Average PIM offloading rate (op/ns)"};
  t.header({"Workload", "Naive-Offloading", "CoolPIM (SW)", "CoolPIM (HW)", "budget"});
  for (const auto& row : matrix) {
    t.row({row.workload,
           Table::num(row.at(sys::Scenario::kNaiveOffloading).avg_pim_rate_op_per_ns(), 2),
           Table::num(row.at(sys::Scenario::kCoolPimSw).avg_pim_rate_op_per_ns(), 2),
           Table::num(row.at(sys::Scenario::kCoolPimHw).avg_pim_rate_op_per_ns(), 2),
           "1.30"});
  }
  t.print(std::cout);
  std::cout
      << "CoolPIM's source throttling keeps every workload at or below the ~1.3 op/ns\n"
         "thermal budget, while naive offloading pushes far past it (paper Fig. 12).\n";
}

void BM_PimRateExtraction(benchmark::State& state) {
  const auto& matrix = scenario_matrix();
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& row : matrix) {
      acc += row.at(sys::Scenario::kCoolPimHw).avg_pim_rate_op_per_ns();
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PimRateExtraction);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
