// Fig. 1: thermal evaluation of the real HMC 1.1 prototype (AC-510 module)
// across heat sinks and load, reproduced with the calibrated module model.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "hmc/config.hpp"
#include "hmc/thermal_policy.hpp"
#include "thermal/hmc_thermal.hpp"
#include "thermal_points.hpp"

using namespace coolpim;

namespace {

struct Fig1Case {
  power::CoolingType type;
  const char* state;
  double data_gbps;
  double fpga_watts;
  double paper_surface_c;  // thermal-camera reading from the paper
};

constexpr Fig1Case kCases[] = {
    {power::CoolingType::kHighEndActive, "idle", 0.0, 20.0, 40.5},
    {power::CoolingType::kHighEndActive, "busy", 60.0, 30.0, 47.3},
    {power::CoolingType::kLowEndActive, "idle", 0.0, 20.0, 45.3},
    {power::CoolingType::kLowEndActive, "busy", 60.0, 30.0, 60.5},
    {power::CoolingType::kPassive, "idle", 0.0, 20.0, 71.1},
    {power::CoolingType::kPassive, "busy", 60.0, 30.0, 85.4},
};

void print_fig1() {
  const hmc::LinkModel link{hmc::hmc11_config()};
  hmc::ThermalPolicy prototype_policy;
  prototype_policy.conservative_shutdown = true;  // HMC 1.1 stops when hot

  Table t{"Fig. 1 -- HMC 1.1 prototype surface temperature (thermal camera vs model)"};
  t.header({"Heat sink", "State", "Paper (C)", "Model surface (C)", "Model die (C)", "Note"});
  for (const auto& c : kCases) {
    thermal::HmcThermalModel model{thermal::hmc11_thermal_config(c.type, c.fpga_watts)};
    model.apply_power(
        power::compute_power(power::EnergyParams{}, bench::read_traffic(link, c.data_gbps)));
    model.solve_steady();
    const bool shutdown =
        prototype_policy.phase(model.peak_dram()) == hmc::ThermalPhase::kShutdown;
    t.row({power::prototype_cooling(c.type).name, c.state, Table::num(c.paper_surface_c, 1),
           Table::num(model.surface().value(), 1), Table::num(model.peak_dram().value(), 1),
           shutdown ? "SHUTDOWN (conservative policy)" : ""});
  }
  t.print(std::cout);
  std::cout << "Paper observation reproduced: with a passive heat sink the prototype cannot\n"
               "operate at full bandwidth -- the die crosses the conservative ~95 C shutdown.\n";
}

void BM_PrototypeSteadySolve(benchmark::State& state) {
  const hmc::LinkModel link{hmc::hmc11_config()};
  const auto op = bench::read_traffic(link, 60.0);
  for (auto _ : state) {
    thermal::HmcThermalModel model{
        thermal::hmc11_thermal_config(power::CoolingType::kPassive, 30.0)};
    model.apply_power(power::compute_power(power::EnergyParams{}, op));
    model.solve_steady();
    benchmark::DoNotOptimize(model.peak_dram());
  }
}
BENCHMARK(BM_PrototypeSteadySolve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_fig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
