// Policy-zoo Pareto sweep, emitted as BENCH_pareto.json (schema
// coolpim-bench-pareto/1).
//
// The zoo's reason to exist is a better throughput / temperature trade-off:
// each registered policy (control/registry.hpp) runs every GraphBIG scenario
// next to the Non-Offloading baseline, and the JSON records the three Pareto
// axes per run -- throughput (speedup over non-offloading), peak DRAM
// temperature, and delivered warning count -- plus per-policy aggregates
// (geomean speedup, hottest peak, total warnings).
//
// The bench gates (exit 1) on the predictive-policy acceptance contract:
// the MPC policy holds peak DRAM at or below the 85 C normal limit on every
// swept scenario while matching or beating the reactive SW-DynT geomean
// speedup.
//
// Flags: --out FILE (default BENCH_pareto.json), --quick (the three
// hottest workloads instead of the full suite -- dc and pagerank, where
// the reactive controllers run at the warning edge, plus sssp-dwc),
// --scale N (graph scale, default 16 to match the golden matrix).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "control/registry.hpp"
#include "runner/experiment.hpp"
#include "sys/system.hpp"

#include "perf_support.hpp"

using namespace coolpim;

namespace {

struct ParetoRun {
  std::string workload;
  std::string policy;    // registry cli name ("baseline" for non-offloading)
  std::string scenario;  // display name from the run result
  double exec_ms{0.0};
  double speedup{1.0};
  double peak_dram_c{0.0};
  std::uint64_t warnings{0};
};

struct PolicyAggregate {
  std::string policy;
  double geomean_speedup{1.0};
  double max_peak_dram_c{0.0};
  std::uint64_t total_warnings{0};
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::arg_value(argc, argv, "--out", "BENCH_pareto.json");
  const bool quick = bench::arg_flag(argc, argv, "--quick");
  const unsigned scale = static_cast<unsigned>(
      std::stoi(bench::arg_value(argc, argv, "--scale", "16")));

  const std::vector<std::string> workloads =
      quick ? std::vector<std::string>{"dc", "pagerank", "sssp-dwc"} : sys::workload_names();

  std::cout << "Pareto sweep: " << workloads.size() << " workloads x "
            << std::size(control::kRegisteredPolicies)
            << " policies (+ baseline) at scale " << scale << "...\n";
  bench::StopWatch build_clock;
  const sys::WorkloadSet set{scale, 1};
  const double build_ms = build_clock.elapsed_ms();

  // One baseline plus one run per registered policy, per workload.  The
  // runner derives every run's seed from its (workload, config) key, so the
  // sweep is bit-identical at any COOLPIM_JOBS value.
  std::vector<runner::Experiment> experiments;
  std::vector<std::string> policy_of;  // parallel to `experiments`
  for (const auto& w : workloads) {
    runner::Experiment base;
    base.workload = w;
    base.config.scenario = sys::Scenario::kNonOffloading;
    experiments.push_back(std::move(base));
    policy_of.emplace_back("baseline");
    for (const control::PolicyInfo& info : control::kRegisteredPolicies) {
      runner::Experiment e;
      e.workload = w;
      e.config.scenario = info.scenario;
      experiments.push_back(std::move(e));
      policy_of.emplace_back(info.cli_name);
    }
  }
  bench::StopWatch sweep_clock;
  const auto results = runner::run_sweep(set, experiments);
  const double sweep_ms = sweep_clock.elapsed_ms();

  // Baseline execution time per workload, then the per-run Pareto points.
  std::map<std::string, double> baseline_ms;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (policy_of[i] == "baseline") {
      baseline_ms[experiments[i].workload] = results[i].exec_time.as_ms();
    }
  }
  std::vector<ParetoRun> runs;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    ParetoRun p;
    p.workload = experiments[i].workload;
    p.policy = policy_of[i];
    p.scenario = r.scenario;
    p.exec_ms = r.exec_time.as_ms();
    p.speedup = p.exec_ms > 0.0 ? baseline_ms.at(p.workload) / p.exec_ms : 1.0;
    p.peak_dram_c = r.peak_dram_temp.value();
    p.warnings = r.thermal_warnings;
    runs.push_back(std::move(p));
  }

  // Per-policy aggregates across the workload suite.
  std::vector<PolicyAggregate> aggregates;
  for (const control::PolicyInfo& info : control::kRegisteredPolicies) {
    PolicyAggregate agg;
    agg.policy = info.cli_name;
    double log_sum = 0.0;
    std::size_t n = 0;
    for (const auto& r : runs) {
      if (r.policy != agg.policy) continue;
      log_sum += std::log(r.speedup);
      ++n;
      agg.max_peak_dram_c = std::max(agg.max_peak_dram_c, r.peak_dram_c);
      agg.total_warnings += r.warnings;
    }
    agg.geomean_speedup = n > 0 ? std::exp(log_sum / static_cast<double>(n)) : 1.0;
    aggregates.push_back(std::move(agg));
  }
  auto find_agg = [&](const char* policy) -> const PolicyAggregate& {
    for (const auto& a : aggregates) {
      if (a.policy == policy) return a;
    }
    std::cerr << "bench_pareto: policy '" << policy << "' missing from registry\n";
    std::exit(1);
  };

  // Acceptance gate: predictive throttling must dominate the reactive
  // controller it replaces -- never hotter than the warning ceiling, never
  // slower in aggregate.
  const double threshold_c = sys::SystemConfig{}.policy.normal_limit.value();
  const PolicyAggregate& mpc = find_agg("mpc");
  const PolicyAggregate& reactive = find_agg("sw-dynt");
  const bool peak_ok = mpc.max_peak_dram_c <= threshold_c;
  const bool throughput_ok = mpc.geomean_speedup >= reactive.geomean_speedup;
  const bool pass = peak_ok && throughput_ok;

  bench::JsonWriter json;
  json.kv("schema", "coolpim-bench-pareto/1");
  json.kv("quick", quick);
  json.kv("scale", static_cast<std::uint64_t>(scale));
  json.kv("threshold_c", threshold_c);
  json.kv("workload_build_ms", build_ms);
  json.kv("sweep_wall_ms", sweep_ms);
  json.begin_array("runs");
  for (const auto& r : runs) {
    json.begin_object();
    json.kv("workload", r.workload);
    json.kv("policy", r.policy);
    json.kv("scenario", r.scenario);
    json.kv("exec_ms", r.exec_ms);
    json.kv("speedup", r.speedup);
    json.kv("peak_dram_c", r.peak_dram_c);
    json.kv("warnings", r.warnings);
    json.end();
  }
  json.end();
  json.begin_array("policies");
  for (const auto& a : aggregates) {
    json.begin_object();
    json.kv("policy", a.policy);
    json.kv("geomean_speedup", a.geomean_speedup);
    json.kv("max_peak_dram_c", a.max_peak_dram_c);
    json.kv("total_warnings", a.total_warnings);
    json.end();
  }
  json.end();
  json.begin_object("gate");
  json.kv("mpc_max_peak_dram_c", mpc.max_peak_dram_c);
  json.kv("mpc_geomean_speedup", mpc.geomean_speedup);
  json.kv("reactive_geomean_speedup", reactive.geomean_speedup);
  json.kv("peak_under_threshold", peak_ok);
  json.kv("throughput_at_least_reactive", throughput_ok);
  json.kv("pass", pass);
  json.end();
  json.end();
  const std::string doc = json.str();

  if (!bench::write_text_file(out, doc)) {
    std::cerr << "bench_pareto: cannot write " << out << "\n";
    return 1;
  }
  std::cout << doc;
  for (const auto& a : aggregates) {
    std::cout << a.policy << ": geomean speedup " << a.geomean_speedup << ", max peak "
              << a.max_peak_dram_c << " C, " << a.total_warnings << " warnings\n";
  }
  std::cout << "Gate: MPC peak " << mpc.max_peak_dram_c << " C vs " << threshold_c
            << " C, geomean " << mpc.geomean_speedup << " vs reactive "
            << reactive.geomean_speedup << " -> " << (pass ? "PASS" : "FAIL") << "\n"
            << "Results written to " << out << "\n";
  return pass ? 0 : 1;
}
