// Extension: the six scenarios on the cc / tc workloads (GraphBIG members
// beyond the paper's evaluation set), demonstrating that CoolPIM generalizes
// past the original ten kernels.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"

#include "support.hpp"
#include "sys/system.hpp"

using namespace coolpim;

namespace {

// Triangle counting is intersection-heavy on RMAT hubs, so the extension
// bench runs at a smaller scale than the main matrix.
const sys::WorkloadSet& extended_set() {
  static const sys::WorkloadSet set{14, 1, /*include_extended=*/true};
  return set;
}

void print_extended() {
  Table t{"Extension -- scenarios on cc / tc (scale 14 LDBC-like graph)"};
  t.header({"Workload", "Scenario", "Exec (ms)", "Speedup", "PIM rate (op/ns)",
            "Peak DRAM (C)"});
  for (const auto& name : sys::extended_workload_names()) {
    double base_ms = 0.0;
    for (const auto scenario : sys::kAllScenarios) {
      sys::SystemConfig cfg;
      cfg.scenario = scenario;
      sys::System system{cfg};
      const auto r = system.run(extended_set().profile(name));
      if (scenario == sys::Scenario::kNonOffloading) base_ms = r.exec_time.as_ms();
      t.row({name, r.scenario, Table::num(r.exec_time.as_ms(), 2),
             Table::num(base_ms / r.exec_time.as_ms(), 2),
             Table::num(r.avg_pim_rate_op_per_ns(), 2),
             Table::num(r.peak_dram_temp.value(), 1)});
    }
  }
  t.print(std::cout);
  std::cout << "cc behaves like the paper's atomic-heavy kernels (throttling pays off);\n"
               "tc is compute/intersection-bound, so offloading matters less -- the same\n"
               "workload-dependence the paper reports for kcore and sssp-dtc.\n";
}

void BM_ExtendedRun(benchmark::State& state) {
  (void)extended_set();
  for (auto _ : state) {
    sys::SystemConfig cfg;
    cfg.scenario = sys::Scenario::kCoolPimHw;
    sys::System system{cfg};
    benchmark::DoNotOptimize(system.run(extended_set().profile("cc")).exec_time);
  }
}
BENCHMARK(BM_ExtendedRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_extended();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
