// Perf harness for the thermal hot path (docs/PERFORMANCE.md).
//
// Two measurements, emitted as BENCH_thermal.json:
//
//  - transient: ns per cell-substep of the branch-free flat-stencil sweep
//    (StackModel::step) against the retained guarded reference sweep
//    (step_reference), on the HMC 2.0 commodity-sink stack at full read
//    bandwidth -- the Fig. 3 / Fig. 13 operating point.  Both kernels are
//    bit-identical by contract; the harness cross-checks the final fields.
//
//  - steady: solver iterations and wall time for the Fig. 3/4 bandwidth
//    sweep (Table 2's four cooling solutions x bandwidth 0..320 GB/s),
//    re-solved cold (from ambient, SteadyStart::kCold) versus warm-started
//    (SteadyStart::kWarmScaled, extrapolating from the solve history).
//
// Flags: --out FILE (default BENCH_thermal.json), --quick (CI smoke: short
// timed windows, same schema).  No thresholds are enforced here; the JSON is
// schema-checked by tools/check_bench.py and ratios are judged by humans.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <limits>
#include <string>

#include "hmc/config.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "thermal/hmc_thermal.hpp"
#include "thermal/stack_model.hpp"

#include "perf_support.hpp"
#include "thermal_points.hpp"

using namespace coolpim;

namespace {

/// The operating point both measurements run at: full regular-read bandwidth
/// into an HMC 2.0 cube under the commodity-server sink.
thermal::HmcThermalModel make_model(power::CoolingType cooling, double bw_gbps) {
  const hmc::LinkModel link{hmc::hmc20_config()};
  thermal::HmcThermalModel model{thermal::hmc20_thermal_config(cooling)};
  model.apply_power(
      power::compute_power(power::EnergyParams{}, bench::read_traffic(link, bw_gbps)));
  return model;
}

struct TransientResult {
  double fast_ns_per_cell_substep;
  double reference_ns_per_cell_substep;
  double speedup;
  std::uint64_t nodes;
  std::uint64_t substeps_per_step;
  std::uint64_t fast_steps;
  std::uint64_t reference_steps;
  bool bit_identical;
};

/// Time `step` calls over `windows` wall-clock windows of `window_sec` each
/// and return the best (minimum) ns per cell-substep -- the minimum filters
/// scheduler noise out of the per-kernel number.  *steps_out accumulates the
/// total steps taken so the caller can re-synchronize two models.
template <typename StepFn>
double time_steps(StepFn step, int windows, double window_sec, std::uint64_t cells_per_step,
                  std::uint64_t* steps_out) {
  // One untimed call warms caches and (for the reference kernel) the heap.
  step();
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t total_steps = 0;
  for (int w = 0; w < windows; ++w) {
    std::uint64_t steps = 0;
    bench::StopWatch clock;
    do {
      for (int i = 0; i < 8; ++i) step();
      steps += 8;
    } while (clock.elapsed_sec() < window_sec);
    best = std::min(best,
                    clock.elapsed_ns() / (static_cast<double>(steps) * static_cast<double>(cells_per_step)));
    total_steps += steps;
  }
  *steps_out = total_steps;
  return best;
}

TransientResult measure_transient(bool quick) {
  const int windows = quick ? 3 : 7;
  const double window_sec = quick ? 0.02 : 0.12;
  // The system driver advances the thermal model in 10 us epochs; measure
  // the same call it makes.
  const Time dt = Time::us(10.0);

  auto fast = make_model(power::CoolingType::kCommodityServer, 320.0);
  auto ref = make_model(power::CoolingType::kCommodityServer, 320.0);
  fast.solve_steady();
  ref.solve_steady();

  TransientResult r{};
  r.nodes = fast.stack().node_count();
  r.substeps_per_step = fast.stack().substeps_for(dt);
  const std::uint64_t cells = r.nodes * r.substeps_per_step;

  // Interleave the two kernels' timing windows so machine noise (frequency
  // scaling, co-tenants) hits both measurements alike; each side keeps its
  // best window.
  thermal::StackModel& fast_stack = fast.stack();
  thermal::StackModel& ref_stack = ref.stack();
  r.fast_ns_per_cell_substep = std::numeric_limits<double>::infinity();
  r.reference_ns_per_cell_substep = std::numeric_limits<double>::infinity();
  for (int w = 0; w < windows; ++w) {
    std::uint64_t steps = 0;
    r.fast_ns_per_cell_substep =
        std::min(r.fast_ns_per_cell_substep,
                 time_steps([&] { fast_stack.step(dt); }, 1, window_sec, cells, &steps));
    r.fast_steps += steps;
    r.reference_ns_per_cell_substep = std::min(
        r.reference_ns_per_cell_substep,
        time_steps([&] { ref_stack.step_reference(dt); }, 1, window_sec, cells, &steps));
    r.reference_steps += steps;
  }
  r.speedup = r.reference_ns_per_cell_substep / r.fast_ns_per_cell_substep;

  // Bit-identity cross-check: advance both models to the same step count and
  // require exactly equal peak temperatures.
  for (std::uint64_t s = r.fast_steps; s < r.reference_steps; ++s) fast_stack.step(dt);
  for (std::uint64_t s = r.reference_steps; s < r.fast_steps; ++s) ref_stack.step_reference(dt);
  r.bit_identical = fast.peak_dram().value() == ref.peak_dram().value() &&
                    fast.peak_logic().value() == ref.peak_logic().value();
  return r;
}

struct SteadyResult {
  std::uint64_t points;
  std::uint64_t cold_iterations;
  std::uint64_t warm_iterations;
  double iteration_reduction;
  double cold_ms;
  double warm_ms;
};

/// One full Fig. 3/4-style sweep: Table 2's four cooling solutions, each
/// swept over bandwidth 0..320 GB/s in 40 GB/s steps with a persistent model
/// per cooling type.  Returns total solver iterations; adds wall ms to *ms.
std::uint64_t steady_sweep(thermal::SteadyStart start, std::uint64_t* points, double* ms) {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;
  std::uint64_t iters = 0;
  std::uint64_t n = 0;
  bench::StopWatch clock;
  for (const auto cooling :
       {power::CoolingType::kPassive, power::CoolingType::kLowEndActive,
        power::CoolingType::kCommodityServer, power::CoolingType::kHighEndActive}) {
    thermal::HmcThermalModel model{thermal::hmc20_thermal_config(cooling)};
    for (double bw = 0.0; bw <= 320.0 + 1e-9; bw += 40.0) {
      model.apply_power(power::compute_power(ep, bench::read_traffic(link, bw)));
      iters += model.solve_steady(start);
      ++n;
    }
  }
  *ms += clock.elapsed_ms();
  *points = n;
  return iters;
}

SteadyResult measure_steady(bool quick) {
  const int reps = quick ? 1 : 3;
  SteadyResult r{};
  double cold_ms = 0.0, warm_ms = 0.0;
  for (int i = 0; i < reps; ++i) {
    r.cold_iterations = steady_sweep(thermal::SteadyStart::kCold, &r.points, &cold_ms);
    r.warm_iterations = steady_sweep(thermal::SteadyStart::kWarmScaled, &r.points, &warm_ms);
  }
  r.cold_ms = cold_ms / reps;
  r.warm_ms = warm_ms / reps;
  r.iteration_reduction =
      static_cast<double>(r.cold_iterations) / static_cast<double>(r.warm_iterations);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::arg_value(argc, argv, "--out", "BENCH_thermal.json");
  const bool quick = bench::arg_flag(argc, argv, "--quick");

  const TransientResult t = measure_transient(quick);
  const SteadyResult s = measure_steady(quick);

  bench::JsonWriter json;
  json.kv("schema", "coolpim-bench-thermal/1");
  json.kv("quick", quick);
  json.begin_object("transient");
  json.kv("nodes", t.nodes);
  json.kv("substeps_per_step", t.substeps_per_step);
  json.kv("fast_steps_timed", t.fast_steps);
  json.kv("reference_steps_timed", t.reference_steps);
  json.kv("fast_ns_per_cell_substep", t.fast_ns_per_cell_substep);
  json.kv("reference_ns_per_cell_substep", t.reference_ns_per_cell_substep);
  json.kv("speedup", t.speedup);
  json.kv("bit_identical", t.bit_identical);
  json.end();
  json.begin_object("steady");
  json.kv("points_per_sweep", s.points);
  json.kv("cold_iterations", s.cold_iterations);
  json.kv("warm_iterations", s.warm_iterations);
  json.kv("iteration_reduction", s.iteration_reduction);
  json.kv("cold_ms", s.cold_ms);
  json.kv("warm_ms", s.warm_ms);
  json.end();
  const std::string doc = json.str();

  if (!bench::write_text_file(out, doc)) {
    std::cerr << "perf_thermal: cannot write " << out << "\n";
    return 1;
  }
  std::cout << doc;
  std::cout << "Transient sweep: " << t.fast_ns_per_cell_substep << " ns/cell-substep fast vs "
            << t.reference_ns_per_cell_substep << " reference (" << t.speedup
            << "x, bit-identical=" << (t.bit_identical ? "yes" : "NO") << ")\n"
            << "Steady sweep:    " << s.warm_iterations << " iters warm-started vs "
            << s.cold_iterations << " cold (" << s.iteration_reduction << "x fewer)\n"
            << "Results written to " << out << "\n";
  return t.bit_identical ? 0 : 2;
}
