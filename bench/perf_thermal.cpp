// Perf harness for the thermal hot path (docs/PERFORMANCE.md).
//
// Two measurements, emitted as BENCH_thermal.json:
//
//  - transient: ns per cell-substep of the branch-free flat-stencil sweep
//    (StackModel::step) against the retained guarded reference sweep
//    (step_reference), on the HMC 2.0 commodity-sink stack at full read
//    bandwidth -- the Fig. 3 / Fig. 13 operating point.  Both kernels are
//    bit-identical by contract; the harness cross-checks the final fields.
//
//  - steady: solver iterations and wall time for the Fig. 3/4 bandwidth
//    sweep (Table 2's four cooling solutions x bandwidth 0..320 GB/s),
//    re-solved cold (from ambient, SteadyStart::kCold) versus warm-started
//    (SteadyStart::kWarmScaled, extrapolating from the solve history).
//
// Flags: --out FILE (default BENCH_thermal.json), --quick (CI smoke: short
// timed windows, same schema).  No thresholds are enforced here; the JSON is
// schema-checked by tools/check_bench.py and ratios are judged by humans.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "hmc/config.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "thermal/batch_stack_model.hpp"
#include "thermal/hmc_thermal.hpp"
#include "thermal/stack_model.hpp"

#include "perf_support.hpp"
#include "thermal_points.hpp"

using namespace coolpim;

namespace {

/// The operating point both measurements run at: full regular-read bandwidth
/// into an HMC 2.0 cube under the commodity-server sink.
thermal::HmcThermalModel make_model(power::CoolingType cooling, double bw_gbps) {
  const hmc::LinkModel link{hmc::hmc20_config()};
  thermal::HmcThermalModel model{thermal::hmc20_thermal_config(cooling)};
  model.apply_power(
      power::compute_power(power::EnergyParams{}, bench::read_traffic(link, bw_gbps)));
  return model;
}

struct TransientResult {
  double fast_ns_per_cell_substep;
  double reference_ns_per_cell_substep;
  double speedup;
  std::uint64_t nodes;
  std::uint64_t substeps_per_step;
  std::uint64_t fast_steps;
  std::uint64_t reference_steps;
  bool bit_identical;
};

/// Time `step` calls over `windows` wall-clock windows of `window_sec` each
/// and return the best (minimum) ns per cell-substep -- the minimum filters
/// scheduler noise out of the per-kernel number.  *steps_out accumulates the
/// total steps taken so the caller can re-synchronize two models.
template <typename StepFn>
double time_steps(StepFn step, int windows, double window_sec, std::uint64_t cells_per_step,
                  std::uint64_t* steps_out) {
  // One untimed call warms caches and (for the reference kernel) the heap.
  step();
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t total_steps = 0;
  for (int w = 0; w < windows; ++w) {
    std::uint64_t steps = 0;
    bench::StopWatch clock;
    do {
      for (int i = 0; i < 8; ++i) step();
      steps += 8;
    } while (clock.elapsed_sec() < window_sec);
    best = std::min(best,
                    clock.elapsed_ns() / (static_cast<double>(steps) * static_cast<double>(cells_per_step)));
    total_steps += steps;
  }
  *steps_out = total_steps;
  return best;
}

TransientResult measure_transient(bool quick) {
  const int windows = quick ? 3 : 7;
  const double window_sec = quick ? 0.02 : 0.12;
  // The system driver advances the thermal model in 10 us epochs; measure
  // the same call it makes.
  const Time dt = Time::us(10.0);

  auto fast = make_model(power::CoolingType::kCommodityServer, 320.0);
  auto ref = make_model(power::CoolingType::kCommodityServer, 320.0);
  fast.solve_steady();
  ref.solve_steady();

  TransientResult r{};
  r.nodes = fast.stack().node_count();
  r.substeps_per_step = fast.stack().substeps_for(dt);
  const std::uint64_t cells = r.nodes * r.substeps_per_step;

  // Interleave the two kernels' timing windows so machine noise (frequency
  // scaling, co-tenants) hits both measurements alike; each side keeps its
  // best window.
  thermal::StackModel& fast_stack = fast.stack();
  thermal::StackModel& ref_stack = ref.stack();
  r.fast_ns_per_cell_substep = std::numeric_limits<double>::infinity();
  r.reference_ns_per_cell_substep = std::numeric_limits<double>::infinity();
  for (int w = 0; w < windows; ++w) {
    std::uint64_t steps = 0;
    r.fast_ns_per_cell_substep =
        std::min(r.fast_ns_per_cell_substep,
                 time_steps([&] { fast_stack.step(dt); }, 1, window_sec, cells, &steps));
    r.fast_steps += steps;
    r.reference_ns_per_cell_substep = std::min(
        r.reference_ns_per_cell_substep,
        time_steps([&] { ref_stack.step_reference(dt); }, 1, window_sec, cells, &steps));
    r.reference_steps += steps;
  }
  r.speedup = r.reference_ns_per_cell_substep / r.fast_ns_per_cell_substep;

  // Bit-identity cross-check: advance both models to the same step count and
  // require exactly equal peak temperatures.
  for (std::uint64_t s = r.fast_steps; s < r.reference_steps; ++s) fast_stack.step(dt);
  for (std::uint64_t s = r.reference_steps; s < r.fast_steps; ++s) ref_stack.step_reference(dt);
  r.bit_identical = fast.peak_dram().value() == ref.peak_dram().value() &&
                    fast.peak_logic().value() == ref.peak_logic().value();
  return r;
}

struct SteadyResult {
  std::uint64_t points;
  std::uint64_t cold_iterations;
  std::uint64_t warm_iterations;
  double iteration_reduction;
  double cold_ms;
  double warm_ms;
};

/// One full Fig. 3/4-style sweep: Table 2's four cooling solutions, each
/// swept over bandwidth 0..320 GB/s in 40 GB/s steps with a persistent model
/// per cooling type.  Returns total solver iterations; adds wall ms to *ms.
std::uint64_t steady_sweep(thermal::SteadyStart start, std::uint64_t* points, double* ms) {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;
  std::uint64_t iters = 0;
  std::uint64_t n = 0;
  bench::StopWatch clock;
  for (const auto cooling :
       {power::CoolingType::kPassive, power::CoolingType::kLowEndActive,
        power::CoolingType::kCommodityServer, power::CoolingType::kHighEndActive}) {
    thermal::HmcThermalModel model{thermal::hmc20_thermal_config(cooling)};
    for (double bw = 0.0; bw <= 320.0 + 1e-9; bw += 40.0) {
      model.apply_power(power::compute_power(ep, bench::read_traffic(link, bw)));
      iters += model.solve_steady(start);
      ++n;
    }
  }
  *ms += clock.elapsed_ms();
  *points = n;
  return iters;
}

SteadyResult measure_steady(bool quick) {
  const int reps = quick ? 1 : 3;
  SteadyResult r{};
  double cold_ms = 0.0, warm_ms = 0.0;
  for (int i = 0; i < reps; ++i) {
    r.cold_iterations = steady_sweep(thermal::SteadyStart::kCold, &r.points, &cold_ms);
    r.warm_iterations = steady_sweep(thermal::SteadyStart::kWarmScaled, &r.points, &warm_ms);
  }
  r.cold_ms = cold_ms / reps;
  r.warm_ms = warm_ms / reps;
  r.iteration_reduction =
      static_cast<double>(r.cold_iterations) / static_cast<double>(r.warm_iterations);
  return r;
}

// ---- Batched sweeps: lane-cell-substep throughput at batch 1 vs 8 vs 64 on
// the same HMC 2.0 stack, plus an in-run per-lane bit-identity gate against
// the scalar reference kernel.

struct BatchWidthResult {
  std::uint64_t lanes;
  double ns_per_lane_cell_substep;
  double cells_substeps_per_sec;
};

struct BatchResult {
  std::uint64_t nodes;
  std::uint64_t substeps_per_step;
  BatchWidthResult widths[3];
  double speedup_64_vs_1;
  bool bit_identical;
};

BatchResult measure_batch(bool quick) {
  const int windows = quick ? 3 : 7;
  const double window_sec = quick ? 0.02 : 0.12;
  const Time dt = Time::us(10.0);

  auto probe = make_model(power::CoolingType::kCommodityServer, 320.0);
  const thermal::StackSpec spec = probe.stack().spec();

  BatchResult r{};
  r.nodes = probe.stack().node_count();
  r.substeps_per_step = probe.stack().substeps_for(dt);

  const std::size_t kWidths[3] = {1, 8, 64};
  for (int i = 0; i < 3; ++i) {
    const std::size_t lanes = kWidths[i];
    thermal::BatchStackModel batch{spec, lanes};
    // Distinct per-lane state (ambient gradient + power spread) so no lane
    // is a trivially shared cache line.
    for (std::size_t v = 0; v < lanes; ++v) {
      batch.set_lane_ambient(v, Celsius{25.0 + 0.1 * static_cast<double>(v)});
      batch.set_layer_power_uniform(v, 0, 8.0 + 0.05 * static_cast<double>(v));
      batch.set_layer_power_uniform(v, batch.layer_count() - 1, 2.0);
    }
    batch.reset_to_ambient();
    const std::uint64_t work = r.nodes * r.substeps_per_step * lanes;
    std::uint64_t steps = 0;
    r.widths[i].lanes = lanes;
    r.widths[i].ns_per_lane_cell_substep =
        time_steps([&] { batch.step(dt); }, windows, window_sec, work, &steps);
    r.widths[i].cells_substeps_per_sec = 1e9 / r.widths[i].ns_per_lane_cell_substep;
  }
  r.speedup_64_vs_1 =
      r.widths[0].ns_per_lane_cell_substep / r.widths[2].ns_per_lane_cell_substep;

  // In-run gate: every lane of a mixed-power batch must equal a scalar
  // StackModel driven through the retained reference sweep, exactly.
  const std::size_t check_lanes = 4;
  thermal::BatchStackModel batch{spec, check_lanes};
  std::vector<thermal::StackModel> scalars;
  for (std::size_t v = 0; v < check_lanes; ++v) {
    thermal::StackSpec lane_spec = spec;
    lane_spec.ambient = Celsius{25.0 + 2.0 * static_cast<double>(v)};
    scalars.emplace_back(lane_spec);
    batch.set_lane_ambient(v, lane_spec.ambient);
    const double logic_w = 6.0 + 1.5 * static_cast<double>(v);
    const thermal::PowerMap logic = thermal::uniform_power(spec.floorplan, logic_w);
    batch.set_layer_power(v, 0, logic);
    scalars[v].set_layer_power(0, logic);
  }
  batch.reset_to_ambient();
  for (auto& s : scalars) s.reset_to_ambient();
  r.bit_identical = true;
  for (int s = 0; s < 16; ++s) {
    batch.step(dt);
    for (auto& sc : scalars) sc.step_reference(dt);
  }
  for (std::size_t v = 0; v < check_lanes; ++v) {
    for (std::size_t l = 0; l < batch.layer_count(); ++l) {
      for (std::size_t c = 0; c < batch.cells_per_layer(); ++c) {
        if (batch.cell_temp(v, l, c).value() != scalars[v].cell_temp(l, c).value()) {
          r.bit_identical = false;
        }
      }
    }
    if (batch.sink_temp(v).value() != scalars[v].sink_temp().value()) r.bit_identical = false;
  }
  return r;
}

// ---- Tall stack: 16-high HBM geometry where the explicit stable dt
// collapses; the ADI kernel takes 32x-larger substeps and must stay within
// the documented tolerance of the explicit reference advanced over the same
// horizon (DESIGN.md section 13).

struct TallStackResult {
  std::uint64_t layers;
  std::uint64_t nodes;
  double explicit_stable_dt_us;
  std::uint64_t explicit_substeps_per_step;
  std::uint64_t adi_substeps_per_step;
  double explicit_ms;
  double adi_ms;
  double speedup;
  double max_abs_error_k;
  double tolerance_k;
  bool within_tolerance;
};

TallStackResult measure_tall_stack(bool quick) {
  thermal::StackSpec spec = thermal::hbm_stack_spec(16, 12, 10);
  // Interval-simulation heat-capacity scaling (as HmcThermalConfig): settle
  // fast enough to bench while preserving the geometry and stencil.
  for (auto& l : spec.layers) l.volumetric_heat_capacity *= 0.05;
  spec.sink_heat_capacity *= 0.05;

  thermal::BatchOptions adi_opt;
  adi_opt.kernel = thermal::TransientKernel::kAdi;
  thermal::BatchStackModel adi{spec, 1, adi_opt};
  thermal::BatchStackModel explicit_ref{spec, 1};

  const Time dt = Time::sec(adi.stable_step().as_sec() * 32.0);
  for (auto* m : {&adi, &explicit_ref}) {
    m->set_layer_power_uniform(0, 0, 10.0);
    m->set_layer_power_uniform(0, 16, 2.0);
    m->reset_to_ambient();
  }

  TallStackResult r{};
  r.layers = adi.layer_count();
  r.nodes = adi.node_count();
  r.explicit_stable_dt_us = explicit_ref.stable_step().as_sec() * 1e6;
  r.explicit_substeps_per_step = explicit_ref.substeps_for(dt);
  r.adi_substeps_per_step = adi.substeps_for(dt);

  const int steps = quick ? 40 : 120;
  double max_err = 0.0;
  double max_rise = 0.0;
  bench::StopWatch adi_clock;
  for (int s = 0; s < steps; ++s) adi.step(dt);
  r.adi_ms = adi_clock.elapsed_ms();
  bench::StopWatch ex_clock;
  for (int s = 0; s < steps; ++s) explicit_ref.step(dt);
  r.explicit_ms = ex_clock.elapsed_ms();
  for (std::size_t l = 0; l < adi.layer_count(); ++l) {
    const double want = explicit_ref.layer_peak(0, l).value();
    max_rise = std::max(max_rise, want - spec.ambient.value());
    max_err = std::max(max_err, std::abs(adi.layer_peak(0, l).value() - want));
  }
  r.speedup = r.explicit_ms / r.adi_ms;
  r.max_abs_error_k = max_err;
  // DESIGN.md section 13: 2% of the explicit temperature rise at this dt.
  r.tolerance_k = 0.02 * max_rise;
  r.within_tolerance = max_err <= r.tolerance_k;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::arg_value(argc, argv, "--out", "BENCH_thermal.json");
  const bool quick = bench::arg_flag(argc, argv, "--quick");

  const TransientResult t = measure_transient(quick);
  const SteadyResult s = measure_steady(quick);
  const BatchResult b = measure_batch(quick);
  const TallStackResult tall = measure_tall_stack(quick);

  bench::JsonWriter json;
  json.kv("schema", "coolpim-bench-thermal/2");
  json.kv("quick", quick);
  json.begin_object("transient");
  json.kv("nodes", t.nodes);
  json.kv("substeps_per_step", t.substeps_per_step);
  json.kv("fast_steps_timed", t.fast_steps);
  json.kv("reference_steps_timed", t.reference_steps);
  json.kv("fast_ns_per_cell_substep", t.fast_ns_per_cell_substep);
  json.kv("reference_ns_per_cell_substep", t.reference_ns_per_cell_substep);
  json.kv("speedup", t.speedup);
  json.kv("bit_identical", t.bit_identical);
  json.end();
  json.begin_object("steady");
  json.kv("points_per_sweep", s.points);
  json.kv("cold_iterations", s.cold_iterations);
  json.kv("warm_iterations", s.warm_iterations);
  json.kv("iteration_reduction", s.iteration_reduction);
  json.kv("cold_ms", s.cold_ms);
  json.kv("warm_ms", s.warm_ms);
  json.end();
  json.begin_object("batch");
  json.kv("nodes", b.nodes);
  json.kv("substeps_per_step", b.substeps_per_step);
  json.kv("b1_ns_per_lane_cell_substep", b.widths[0].ns_per_lane_cell_substep);
  json.kv("b1_cells_substeps_per_sec", b.widths[0].cells_substeps_per_sec);
  json.kv("b8_ns_per_lane_cell_substep", b.widths[1].ns_per_lane_cell_substep);
  json.kv("b8_cells_substeps_per_sec", b.widths[1].cells_substeps_per_sec);
  json.kv("b64_ns_per_lane_cell_substep", b.widths[2].ns_per_lane_cell_substep);
  json.kv("b64_cells_substeps_per_sec", b.widths[2].cells_substeps_per_sec);
  json.kv("speedup_b64_vs_b1", b.speedup_64_vs_1);
  json.kv("bit_identical", b.bit_identical);
  json.end();
  json.begin_object("tall_stack");
  json.kv("layers", tall.layers);
  json.kv("nodes", tall.nodes);
  json.kv("explicit_stable_dt_us", tall.explicit_stable_dt_us);
  json.kv("explicit_substeps_per_step", tall.explicit_substeps_per_step);
  json.kv("adi_substeps_per_step", tall.adi_substeps_per_step);
  json.kv("explicit_ms", tall.explicit_ms);
  json.kv("adi_ms", tall.adi_ms);
  json.kv("speedup", tall.speedup);
  json.kv("max_abs_error_k", tall.max_abs_error_k);
  json.kv("tolerance_k", tall.tolerance_k);
  json.kv("within_tolerance", tall.within_tolerance);
  json.end();
  const std::string doc = json.str();

  if (!bench::write_text_file(out, doc)) {
    std::cerr << "perf_thermal: cannot write " << out << "\n";
    return 1;
  }
  std::cout << doc;
  std::cout << "Transient sweep: " << t.fast_ns_per_cell_substep << " ns/cell-substep fast vs "
            << t.reference_ns_per_cell_substep << " reference (" << t.speedup
            << "x, bit-identical=" << (t.bit_identical ? "yes" : "NO") << ")\n"
            << "Steady sweep:    " << s.warm_iterations << " iters warm-started vs "
            << s.cold_iterations << " cold (" << s.iteration_reduction << "x fewer)\n"
            << "Batched sweep:   " << b.widths[2].cells_substeps_per_sec / 1e6
            << " M cells*substeps/s at batch 64 vs " << b.widths[0].cells_substeps_per_sec / 1e6
            << " at batch 1 (" << b.speedup_64_vs_1
            << "x, bit-identical=" << (b.bit_identical ? "yes" : "NO") << ")\n"
            << "Tall stack:      ADI " << tall.adi_ms << " ms vs explicit " << tall.explicit_ms
            << " ms (" << tall.speedup << "x, max err " << tall.max_abs_error_k << " K, tol "
            << tall.tolerance_k << " K, within=" << (tall.within_tolerance ? "yes" : "NO")
            << ")\n"
            << "Results written to " << out << "\n";
  return (t.bit_identical && b.bit_identical && tall.within_tolerance) ? 0 : 2;
}
