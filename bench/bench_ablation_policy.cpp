// Ablations on the policy knobs DESIGN.md calls out: Eq. 1 initialization
// margin, warning-threshold placement, target PIM rate, and the epoch-length
// sensitivity of the full-system model.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_margin_sweep() {
  Table t{"Ablation -- Eq. 1 PTP initialization margin (dc, CoolPIM SW)"};
  t.header({"Margin (blocks)", "Speedup vs baseline", "Avg PIM rate (op/ns)", "Peak DRAM (C)"});
  const auto base = run_one("dc", sys::Scenario::kNonOffloading);
  for (const std::uint32_t margin : {0u, 2u, 4u, 8u, 16u, 64u}) {
    sys::SystemConfig cfg;
    cfg.eq1_margin_blocks = margin;
    const auto r = run_one("dc", sys::Scenario::kCoolPimSw, cfg);
    t.row({std::to_string(margin), Table::num(base.exec_time / r.exec_time, 2),
           Table::num(r.avg_pim_rate_op_per_ns(), 2), Table::num(r.peak_dram_temp.value(), 1)});
  }
  t.print(std::cout);
  std::cout << "The paper adds a margin of 4 blocks so the down-only feedback never starts\n"
               "over-throttled; a huge margin relies entirely on feedback.\n";
}

void print_target_sweep() {
  Table t{"Ablation -- target PIM rate / warning placement (dc, CoolPIM HW)"};
  t.header({"Warning threshold (C)", "Speedup vs baseline", "Avg PIM rate", "Peak DRAM (C)",
            "Time derated (%)"});
  const auto base = run_one("dc", sys::Scenario::kNonOffloading);
  for (const double threshold : {80.0, 82.5, 84.5, 85.0}) {
    sys::SystemConfig cfg;
    cfg.policy.warning_threshold = Celsius{threshold};
    const auto r = run_one("dc", sys::Scenario::kCoolPimHw, cfg);
    const double derated = r.exec_time > Time::zero()
                               ? 100.0 * (r.time_above_normal / r.exec_time)
                               : 0.0;
    t.row({Table::num(threshold, 1), Table::num(base.exec_time / r.exec_time, 2),
           Table::num(r.avg_pim_rate_op_per_ns(), 2), Table::num(r.peak_dram_temp.value(), 1),
           Table::num(derated, 0)});
  }
  t.print(std::cout);
  std::cout << "Warning too early wastes PIM headroom; too late lets the device derate\n"
               "before throttling bites -- the threshold sits just below 85 C.\n";
}

void print_epoch_sweep() {
  Table t{"Ablation -- epoch-length sensitivity of the full-system model (dc, HW)"};
  t.header({"Epoch (us)", "Speedup vs baseline", "Peak DRAM (C)"});
  const auto base = run_one("dc", sys::Scenario::kNonOffloading);
  for (const double epoch_us : {5.0, 10.0, 20.0, 50.0}) {
    sys::SystemConfig cfg;
    cfg.epoch = Time::us(epoch_us);
    const auto r = run_one("dc", sys::Scenario::kCoolPimHw, cfg);
    t.row({Table::num(epoch_us, 0), Table::num(base.exec_time / r.exec_time, 2),
           Table::num(r.peak_dram_temp.value(), 1)});
  }
  t.print(std::cout);
  std::cout << "Results are stable across epoch lengths, validating the 10 us default.\n";
}

void BM_PolicyRun(benchmark::State& state) {
  (void)workloads();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_one("dc", sys::Scenario::kCoolPimHw).exec_time);
  }
}
BENCHMARK(BM_PolicyRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_margin_sweep();
  print_target_sweep();
  print_epoch_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
