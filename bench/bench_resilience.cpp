// Resilience sweep for the thermal-warning control loop, emitted as
// BENCH_resilience.json (schema coolpim-bench-resilience/1).
//
// The question the paper's controllers never face: what happens when the
// warning channel itself degrades?  This bench sweeps the deterministic
// fault layer (fault::FaultPlan) over both CoolPIM mechanisms on pagerank:
//
//  - drop sweep: warning-drop probability from 0 to 1.  At 0 the run is the
//    golden fault-free result; at 1 the controller is blind and only the
//    fail-safe watchdog (fault::Watchdog) stands between the stack and the
//    naive-offloading thermal profile (~89 C, derated service).
//  - noise sweep: Gaussian sensor noise at a fixed zero drop rate, checking
//    that a jittery temperature register does not destabilize throttling.
//
// The bench gates (exit 1) on the resilience contract: every drop-sweep run
// holds peak DRAM at or below the 85 C normal limit, and at full drop the
// watchdog actually engaged on both controllers.
//
// Flags: --out FILE (default BENCH_resilience.json), --quick (fewer sweep
// points), --scale N (graph scale override, default 16 to match the golden
// matrix).  Fault knobs are set explicitly per run -- the COOLPIM_FAULT_*
// process environment is deliberately not inherited here.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "runner/experiment.hpp"
#include "sys/system.hpp"

#include "perf_support.hpp"

using namespace coolpim;

namespace {

constexpr const char* kWorkload = "pagerank";

struct SweepRun {
  std::string scenario;
  double drop_rate{0.0};
  double noise_sigma_c{0.0};
  double peak_dram_c{0.0};
  double exec_ms{0.0};
  std::uint64_t warnings_delivered{0};
  std::uint64_t warnings_dropped{0};
  std::uint64_t watchdog_engagements{0};
};

SweepRun to_run(const sys::RunResult& r, const sys::SystemConfig& cfg) {
  SweepRun out;
  out.scenario = r.scenario;
  out.drop_rate = cfg.fault.warning_drop_rate;
  out.noise_sigma_c = cfg.fault.sensor_noise_sigma_c;
  out.peak_dram_c = r.peak_dram_temp.value();
  out.exec_ms = r.exec_time.as_ms();
  out.warnings_delivered = r.thermal_warnings;
  out.warnings_dropped = r.faults.warnings_dropped;
  out.watchdog_engagements = r.faults.watchdog_engagements;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::arg_value(argc, argv, "--out", "BENCH_resilience.json");
  const bool quick = bench::arg_flag(argc, argv, "--quick");
  const unsigned scale = static_cast<unsigned>(
      std::stoi(bench::arg_value(argc, argv, "--scale", "16")));

  const std::vector<double> drops = quick
                                        ? std::vector<double>{0.0, 0.5, 1.0}
                                        : std::vector<double>{0.0, 0.1, 0.25, 0.5,
                                                              0.75, 0.9, 1.0};
  const std::vector<double> noises =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.5, 1.0};
  const sys::Scenario scenarios[] = {sys::Scenario::kCoolPimSw, sys::Scenario::kCoolPimHw};

  std::cout << "Resilience sweep: " << kWorkload << " at scale " << scale << ", "
            << drops.size() << " drop rates x 2 controllers (+ " << noises.size()
            << " noise points)...\n";
  bench::StopWatch build_clock;
  const sys::WorkloadSet set{scale, 1};
  const double build_ms = build_clock.elapsed_ms();

  // One experiment per sweep cell; the parallel runner derives each run's
  // seed from its (workload, config) key, fault config included, so the
  // sweep is bit-identical at any COOLPIM_JOBS value.
  std::vector<runner::Experiment> experiments;
  for (const auto scenario : scenarios) {
    for (const double drop : drops) {
      runner::Experiment e;
      e.workload = kWorkload;
      e.config.scenario = scenario;
      e.config.fault.warning_drop_rate = drop;
      if (drop > 0.0) e.config.fault.force_enable = true;  // watchdog armed at 0 too
      experiments.push_back(std::move(e));
    }
    for (const double sigma : noises) {
      runner::Experiment e;
      e.workload = kWorkload;
      e.config.scenario = scenario;
      e.config.fault.sensor_noise_sigma_c = sigma;
      experiments.push_back(std::move(e));
    }
  }
  bench::StopWatch sweep_clock;
  const auto results = runner::run_sweep(set, experiments);
  const double sweep_ms = sweep_clock.elapsed_ms();

  std::vector<SweepRun> drop_runs, noise_runs;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& cfg = experiments[i].config;
    (cfg.fault.sensor_noise_sigma_c > 0.0 ? noise_runs : drop_runs)
        .push_back(to_run(results[i], cfg));
  }

  // Resilience gate (threshold = the HMC normal limit the policy warns at).
  const double threshold_c = sys::SystemConfig{}.policy.normal_limit.value();
  double max_peak = 0.0;
  bool all_below = true;
  bool engaged_at_full_drop = true;
  for (const auto& r : drop_runs) {
    max_peak = std::max(max_peak, r.peak_dram_c);
    if (r.peak_dram_c > threshold_c) all_below = false;
    if (r.drop_rate >= 1.0 && r.watchdog_engagements == 0) engaged_at_full_drop = false;
  }
  for (const auto& r : noise_runs) {
    max_peak = std::max(max_peak, r.peak_dram_c);
    if (r.peak_dram_c > threshold_c) all_below = false;
  }
  const bool pass = all_below && engaged_at_full_drop;

  bench::JsonWriter json;
  json.kv("schema", "coolpim-bench-resilience/1");
  json.kv("quick", quick);
  json.kv("scale", static_cast<std::uint64_t>(scale));
  json.kv("workload", std::string{kWorkload});
  json.kv("threshold_c", threshold_c);
  json.kv("workload_build_ms", build_ms);
  json.kv("sweep_wall_ms", sweep_ms);
  auto emit = [&](const char* key, const std::vector<SweepRun>& runs) {
    json.begin_array(key);
    for (const auto& r : runs) {
      json.begin_object();
      json.kv("scenario", r.scenario);
      json.kv("drop_rate", r.drop_rate);
      json.kv("noise_sigma_c", r.noise_sigma_c);
      json.kv("peak_dram_c", r.peak_dram_c);
      json.kv("exec_ms", r.exec_ms);
      json.kv("warnings_delivered", r.warnings_delivered);
      json.kv("warnings_dropped", r.warnings_dropped);
      json.kv("watchdog_engagements", r.watchdog_engagements);
      json.end();
    }
    json.end();
  };
  emit("drop_sweep", drop_runs);
  emit("noise_sweep", noise_runs);
  json.begin_object("gate");
  json.kv("max_peak_dram_c", max_peak);
  json.kv("all_below_threshold", all_below);
  json.kv("watchdog_engaged_at_full_drop", engaged_at_full_drop);
  json.kv("pass", pass);
  json.end();
  json.end();
  const std::string doc = json.str();

  if (!bench::write_text_file(out, doc)) {
    std::cerr << "bench_resilience: cannot write " << out << "\n";
    return 1;
  }
  std::cout << doc;
  for (const auto& r : drop_runs) {
    std::cout << r.scenario << " drop=" << r.drop_rate << ": peak " << r.peak_dram_c
              << " C, " << r.warnings_delivered << " warnings, "
              << r.watchdog_engagements << " watchdog engagements\n";
  }
  std::cout << "Gate: max peak " << max_peak << " C vs limit " << threshold_c << " -> "
            << (pass ? "PASS" : "FAIL") << "\n"
            << "Results written to " << out << "\n";
  return pass ? 0 : 1;
}
