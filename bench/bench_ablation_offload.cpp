// Ablation: offload coherence policy (GraphPIM uncacheable region vs
// PEI-style coherent writeback) and host-atomic coalescing sensitivity.
//
// Paper Section II-B: "the cache-bypassing policy can bring an additional
// performance benefit because of avoiding the unnecessary cache-checking
// overhead" -- here quantified as the coherence traffic PEI adds per offload.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace coolpim;
using namespace coolpim::bench;

namespace {

void print_offload_policy() {
  Table t{"Ablation -- offload coherence policy (CoolPIM HW)"};
  t.header({"Workload", "GraphPIM (uncacheable) speedup", "PEI (coherent) speedup",
            "PEI extra traffic (%)"});
  for (const std::string wl : {"dc", "pagerank", "sssp-dwc"}) {
    const auto base = run_one(wl, sys::Scenario::kNonOffloading);
    sys::SystemConfig pei_cfg;
    pei_cfg.gpu.offload_policy = gpu::OffloadPolicy::kCoherentWriteback;
    const auto graphpim = run_one(wl, sys::Scenario::kCoolPimHw);
    const auto pei = run_one(wl, sys::Scenario::kCoolPimHw, pei_cfg);
    t.row({wl, Table::num(base.exec_time / graphpim.exec_time, 2),
           Table::num(base.exec_time / pei.exec_time, 2),
           Table::num(100.0 * (pei.consumption_bytes() / graphpim.consumption_bytes() - 1.0),
                      1)});
  }
  t.print(std::cout);
  std::cout << "GraphPIM's uncacheable PIM region avoids per-offload coherence traffic,\n"
               "which is why the paper adopts it for the offload target data.\n";
}

void print_coalescing() {
  Table t{"Ablation -- host-atomic coalescing factor (dc baseline exec)"};
  t.header({"Coalescing factor", "Baseline exec (ms)", "Ideal-offload speedup"});
  for (const double f : {0.5, 0.7, 0.9, 1.0}) {
    sys::SystemConfig cfg;
    cfg.gpu.host_atomic_coalescing = f;
    const auto base = run_one("dc", sys::Scenario::kNonOffloading, cfg);
    const auto ideal = run_one("dc", sys::Scenario::kIdealThermal, cfg);
    t.row({Table::num(f, 1), Table::num(base.exec_time.as_ms(), 2),
           Table::num(base.exec_time / ideal.exec_time, 2)});
  }
  t.print(std::cout);
  std::cout << "The more the baseline's RMWs coalesce at the L2 atomic units, the smaller\n"
               "the bandwidth gap PIM offloading can exploit.\n";
}

void BM_PeiRun(benchmark::State& state) {
  (void)workloads();
  sys::SystemConfig cfg;
  cfg.gpu.offload_policy = gpu::OffloadPolicy::kCoherentWriteback;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_one("dc", sys::Scenario::kCoolPimHw, cfg).exec_time);
  }
}
BENCHMARK(BM_PeiRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coolpim::bench::init_observability(&argc, argv);
  print_offload_policy();
  print_coalescing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
