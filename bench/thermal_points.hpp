// Shared operating-point builders for the thermal benches (Figs. 1-5).
#pragma once

#include "hmc/link_model.hpp"
#include "power/energy_model.hpp"

namespace coolpim::bench {

/// Pure regular read traffic at a given data bandwidth.
inline power::OperatingPoint read_traffic(const hmc::LinkModel& link, double data_gbps) {
  hmc::TransactionMix mix;
  mix.reads_per_sec = data_gbps * 1e9 / 64.0;
  power::OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  return op;
}

/// The Fig. 5 scenario: links fully utilized by PIM ops plus regular reads.
inline power::OperatingPoint pim_traffic(const hmc::LinkModel& link, double op_per_ns) {
  hmc::TransactionMix mix;
  mix.pim_per_sec = op_per_ns * 1e9;
  mix.reads_per_sec =
      link.regular_bandwidth_with_pim(mix.pim_per_sec).as_bytes_per_sec() / 64.0;
  power::OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  op.pim_ops_per_sec = mix.pim_per_sec;
  return op;
}

}  // namespace coolpim::bench
