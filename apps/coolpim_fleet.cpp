// coolpim_fleet -- command-line front end for the fleet tier (docs/FLEET.md).
//
// Drives N GPU+HMC nodes under an open-loop Poisson (or trace-replay)
// request stream and prints per-node and fleet-level results.  Shared knobs
// (--fleet-nodes, --arrival-rate, --balancer, --scale, --jobs, --policy,
// --trace/--counters, the --fault-* family is ignored at this tier) resolve
// through sys::RunConfig; `coolpim_fleet --help` lists everything.
// App-specific options:
//     --duration-ms X     fleet clock horizon (default 1000)
//     --rack-spread-c X   linear rack ambient gradient, degC (default 10)
//     --queue-cap N       per-node queue capacity (default 32)
//     --synthetic         built-in service profiles (skip workload profiling)
//     --arrival-trace F   replay arrivals from CSV `time_ms,workload`
//     --mark-every N      counter-mark cadence in epochs (default 50)
//
// Without --synthetic, service profiles are measured: each request class is
// one single-node run of {pagerank, dc, bfs-ta, sssp-dtc} under the node
// policy (--policy, default hw-dynt), through the parallel runner's
// key/seed/cache path.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fleet/fleet.hpp"
#include "obs/observer.hpp"
#include "runner/experiment.hpp"
#include "sys/run_config.hpp"
#include "sys/system.hpp"

using namespace coolpim;

namespace {

constexpr double kIdleC = 35.0;  // profile heat reference (docs/FLEET.md)

struct CliOptions {
  sys::RunConfig rc;
  double duration_ms{1000.0};
  double rack_spread_c{10.0};
  std::size_t queue_cap{32};
  bool synthetic{false};
  std::string arrival_trace;
  std::uint32_t mark_every{50};
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr << "usage: coolpim_fleet [--duration-ms X] [--rack-spread-c X] [--queue-cap N]\n"
               "                     [--synthetic] [--arrival-trace FILE] [--mark-every N]\n"
               "                     [shared run flags]\n"
               "shared run flags (CLI > COOLPIM_* env > default):\n"
            << sys::RunConfig::flags_help();
  std::exit(msg ? 2 : 0);
}

CliOptions parse(int argc, char** argv, sys::RunConfig rc) {
  CliOptions opt;
  opt.rc = std::move(rc);
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage();
    else if (arg == "--duration-ms") opt.duration_ms = std::atof(need_value(i).c_str());
    else if (arg == "--rack-spread-c") opt.rack_spread_c = std::atof(need_value(i).c_str());
    else if (arg == "--queue-cap") opt.queue_cap = static_cast<std::size_t>(std::atoll(need_value(i).c_str()));
    else if (arg == "--synthetic") opt.synthetic = true;
    else if (arg == "--arrival-trace") opt.arrival_trace = need_value(i);
    else if (arg == "--mark-every") opt.mark_every = static_cast<std::uint32_t>(std::atoi(need_value(i).c_str()));
    else usage(("unknown option: " + arg).c_str());
  }
  if (opt.duration_ms <= 0.0) usage("duration-ms must be positive");
  if (opt.queue_cap == 0) usage("queue-cap must be positive");
  return opt;
}

std::vector<fleet::ServiceProfile> measured_profiles(const CliOptions& opt) {
  const std::vector<std::string> classes{"pagerank", "dc", "bfs-ta", "sssp-dtc"};
  std::cout << "Profiling request classes at scale " << opt.rc.scale << " under policy "
            << (opt.rc.policy.empty() ? "hw-dynt" : opt.rc.policy) << "...\n";
  const sys::WorkloadSet set{opt.rc.scale, opt.rc.graph_seed, /*include_extended=*/false,
                             opt.rc.build_options()};
  std::vector<runner::Experiment> experiments;
  for (const auto& w : classes) {
    runner::Experiment e;
    e.workload = w;
    e.config.scenario = sys::Scenario::kCoolPimHw;
    opt.rc.apply_to(e.config);
    experiments.push_back(std::move(e));
  }
  runner::RunOptions run_opt;
  run_opt.jobs = opt.rc.jobs;
  run_opt.sweep_batch = opt.rc.sweep_batch;
  return fleet::profiles_from_runs(runner::run_sweep(set, experiments, run_opt), kIdleC);
}

}  // namespace

int main(int argc, char** argv) {
  sys::RunConfig rc;
  try {
    rc = sys::RunConfig::resolve(&argc, argv);
  } catch (const ConfigError& e) {
    usage(e.what());
  }
  const CliOptions opt = parse(argc, argv, std::move(rc));

  fleet::FleetConfig cfg;
  cfg.nodes = opt.rc.fleet_nodes;
  cfg.node.ambient_c = kIdleC;
  cfg.node.queue_capacity = opt.queue_cap;
  cfg.rack_ambient_spread_c = opt.rack_spread_c;
  cfg.balancer = opt.rc.balancer;
  cfg.arrival_rate_per_s = opt.rc.arrival_rate;
  cfg.duration_ms = opt.duration_ms;
  cfg.trace_path = opt.arrival_trace;
  cfg.jobs = opt.rc.jobs;
  cfg.counter_mark_every = opt.mark_every;
  cfg.profiles = opt.synthetic ? fleet::synthetic_profiles() : measured_profiles(opt);
  if (opt.rc.stack_layers > 0) {
    // Grid fidelity: every node is one lane of a batched 3-D stack solve
    // (docs/PERFORMANCE.md section 7).  16-high and taller uses the ADI
    // kernel -- that is the geometry the explicit stable dt collapses on.
    cfg.thermal = fleet::ThermalFidelity::kGrid;
    cfg.grid.dram_dies = opt.rc.stack_layers;
    cfg.grid.use_adi = opt.rc.stack_layers >= 16;
  }

  obs::RunObserver observer;
  const bool observing = !opt.rc.trace_path.empty() || !opt.rc.counters_path.empty();
  if (observing) cfg.observer = &observer;

  fleet::FleetResult result;
  try {
    result = fleet::run_fleet(cfg);
  } catch (const ConfigError& e) {
    usage(e.what());
  }

  Table nodes{"Fleet nodes (" + cfg.balancer + ", " +
              std::to_string(static_cast<unsigned>(cfg.arrival_rate_per_s)) + " req/s)"};
  nodes.header({"Node", "Served", "Warnings", "Peak DRAM (C)", "Final (C)", "Busy (%)"});
  for (const auto& n : result.nodes) {
    nodes.row({std::to_string(n.index), std::to_string(n.served), std::to_string(n.warnings),
               Table::num(n.peak_c, 1), Table::num(n.final_c, 1),
               Table::num(100.0 * n.busy_ms / result.duration_ms, 1)});
  }
  nodes.print(std::cout);

  Table totals{"Fleet totals"};
  totals.header({"Arrived", "Served", "Shed", "Deferrals", "In-flight", "p50 (ms)", "p99 (ms)",
                 "Agg op/ns", "Max peak (C)"});
  totals.row({std::to_string(result.arrived), std::to_string(result.served),
              std::to_string(result.shed), std::to_string(result.deferrals),
              std::to_string(result.in_flight), Table::num(result.p50_latency_ms, 2),
              Table::num(result.p99_latency_ms, 2), Table::num(result.agg_op_per_ns(), 2),
              Table::num(result.max_node_peak_c, 1)});
  totals.print(std::cout);

  if (!opt.rc.trace_path.empty()) {
    std::ofstream out{opt.rc.trace_path};
    if (!out) {
      std::cerr << "error: cannot open " << opt.rc.trace_path << " for writing\n";
      return 1;
    }
    obs::write_chrome_trace(out, {{0, "fleet", &observer.trace_buffer}});
    std::cout << "Trace written to " << opt.rc.trace_path << "\n";
  }
  if (!opt.rc.counters_path.empty()) {
    std::ofstream out{opt.rc.counters_path};
    if (!out) {
      std::cerr << "error: cannot open " << opt.rc.counters_path << " for writing\n";
      return 1;
    }
    out << "t_ms,kind,counter,value\n";
    for (const auto& mark : observer.counters.marks()) {
      for (const auto& [name, value] : mark.values) {
        const auto slash = name.find('/');
        out << mark.when.as_ms() << ',' << name.substr(0, slash) << ','
            << name.substr(slash + 1) << ',' << value << '\n';
      }
    }
    std::cout << "Counter CSV written to " << opt.rc.counters_path << "\n";
  }
  return 0;
}
