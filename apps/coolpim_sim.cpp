// coolpim_sim -- command-line front end for the full-system simulator.
//
// Shared run knobs (scale, jobs, seed, observability sinks, the --fault-*
// fault environment) resolve through sys::RunConfig with precedence
// CLI > COOLPIM_* environment > default; `coolpim_sim --help` lists them.
// App-specific options:
//     --workload NAME     dc|kcore|pagerank|bfs-ta|bfs-dwc|bfs-ttc|bfs-twc|
//                         sssp-dtc|sssp-dwc|sssp-twc|cc|tc|all   (default dc)
//     --scenario NAME     baseline|naive|coolpim-sw|coolpim-hw|ideal|
//                         bw-throttle|mpc|policy-table|all
//                         (or pick one policy for every run with --policy)
//     --cooling NAME      passive|low-end|commodity|high-end (default commodity)
//     --cf N              control factor (blocks for SW, warps for HW)
//     --target RATE       PIM-rate budget in op/ns      (default 1.3)
//     --pei               PEI-style coherent offloading instead of GraphPIM
//     --timeline          print the PIM-rate/temperature time series
//     --seed N            graph seed (alias for --graph-seed)
//     --csv FILE          write the summary table as CSV
//
// Tracing is strictly read-only: summary/timeline/CSV output is byte-for-byte
// identical with or without --trace/--counters, at any --jobs value.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <iterator>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <fstream>

#include "common/table.hpp"
#include "obs/observer.hpp"
#include "runner/experiment.hpp"
#include "sys/report.hpp"
#include "sys/run_config.hpp"
#include "sys/system.hpp"

using namespace coolpim;

namespace {

struct CliOptions {
  /// Shared knobs (scale, jobs, graph seed, trace/counters, fault layer).
  sys::RunConfig rc;
  std::vector<std::string> workloads{"dc"};
  std::vector<sys::Scenario> scenarios{std::begin(sys::kAllScenarios),
                                       std::end(sys::kAllScenarios)};
  power::CoolingType cooling{power::CoolingType::kCommodityServer};
  std::optional<std::uint32_t> control_factor;
  double target{1.3};
  bool pei{false};
  bool timeline{false};
  std::string csv_path;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: coolpim_sim [--workload NAME|all]\n"
      "                   [--scenario baseline|naive|coolpim-sw|coolpim-hw|ideal|\n"
      "                               bw-throttle|mpc|policy-table|all]\n"
      "                   [--cooling passive|low-end|commodity|high-end] [--cf N]\n"
      "                   [--target OP_PER_NS] [--pei] [--timeline] [--seed N]\n"
      "                   [--csv FILE] [shared run flags]\n"
      "shared run flags (CLI > COOLPIM_* env > default):\n"
      << sys::RunConfig::flags_help();
  std::exit(msg ? 2 : 0);
}

std::vector<sys::Scenario> parse_scenarios(const std::string& s) {
  if (s == "all") return {std::begin(sys::kAllScenarios), std::end(sys::kAllScenarios)};
  if (s == "baseline") return {sys::Scenario::kNonOffloading};
  if (s == "naive") return {sys::Scenario::kNaiveOffloading};
  if (s == "coolpim-sw") return {sys::Scenario::kCoolPimSw};
  if (s == "coolpim-hw") return {sys::Scenario::kCoolPimHw};
  if (s == "ideal") return {sys::Scenario::kIdealThermal};
  if (s == "bw-throttle") return {sys::Scenario::kBwThrottle};
  if (s == "mpc") return {sys::Scenario::kMpc};
  if (s == "policy-table") return {sys::Scenario::kPolicyTable};
  usage(("unknown scenario: " + s).c_str());
}

power::CoolingType parse_cooling(const std::string& s) {
  if (s == "passive") return power::CoolingType::kPassive;
  if (s == "low-end") return power::CoolingType::kLowEndActive;
  if (s == "commodity") return power::CoolingType::kCommodityServer;
  if (s == "high-end") return power::CoolingType::kHighEndActive;
  usage(("unknown cooling: " + s).c_str());
}

CliOptions parse(int argc, char** argv, sys::RunConfig rc) {
  CliOptions opt;
  opt.rc = std::move(rc);
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage();
    else if (arg == "--workload") {
      const std::string v = need_value(i);
      if (v == "all") {
        opt.workloads = sys::workload_names();
      } else {
        opt.workloads = {v};
      }
    } else if (arg == "--scenario") {
      opt.scenarios = parse_scenarios(need_value(i));
    } else if (arg == "--seed") {
      // Historical alias for --graph-seed.
      opt.rc.graph_seed = static_cast<std::uint64_t>(std::atoll(need_value(i).c_str()));
    } else if (arg == "--cooling") {
      opt.cooling = parse_cooling(need_value(i));
    } else if (arg == "--cf") {
      opt.control_factor = static_cast<std::uint32_t>(std::atoi(need_value(i).c_str()));
    } else if (arg == "--target") {
      opt.target = std::atof(need_value(i).c_str());
      if (opt.target <= 0.0) usage("target must be positive");
    } else if (arg == "--pei") {
      opt.pei = true;
    } else if (arg == "--timeline") {
      opt.timeline = true;
    } else if (arg == "--csv") {
      opt.csv_path = need_value(i);
    } else {
      usage(("unknown option: " + arg).c_str());
    }
  }
  return opt;
}

void print_timeline(const sys::RunResult& r) {
  if (r.pim_rate.empty()) return;
  Table t{"Timeline: " + r.workload + " / " + r.scenario};
  t.header({"t (ms)", "PIM rate (op/ns)", "Peak DRAM (C)", "Link data (GB/s)"});
  const std::size_t points = 20;
  const Time start = r.pim_rate.time_at(0);
  const Time step = r.exec_time / static_cast<std::int64_t>(points);
  for (std::size_t i = 0; i < points; ++i) {
    const Time when = start + step * static_cast<std::int64_t>(i);
    if (when > r.pim_rate.times().back()) break;
    t.row({Table::num((step * static_cast<std::int64_t>(i)).as_ms(), 2),
           Table::num(r.pim_rate.sample_at(when), 2),
           Table::num(r.dram_temp.sample_at(when), 1),
           Table::num(r.link_bw.sample_at(when), 0)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  // Shared knobs first: --scale/--jobs/--trace/... are stripped from argv
  // before the app-specific parse sees the remainder.
  sys::RunConfig rc;
  try {
    rc = sys::RunConfig::resolve(&argc, argv);
  } catch (const ConfigError& e) {
    usage(e.what());
  }
  const CliOptions opt = parse(argc, argv, std::move(rc));

  // cc/tc need the extended registry.
  bool extended = false;
  for (const auto& w : opt.workloads) extended |= (w == "cc" || w == "tc");
  std::cout << "Building LDBC-like graph (scale " << opt.rc.scale << ", seed "
            << opt.rc.graph_seed << ") and workload profiles...\n";
  // Same jobs knob as the sweep; results are identical at any value.
  const sys::WorkloadSet set{opt.rc.scale, opt.rc.graph_seed, extended,
                             opt.rc.build_options()};
  if (set.build_stats().cache_hits > 0) {
    std::cout << "Profiles served from COOLPIM_PROFILE_CACHE ("
              << set.build_stats().cache_hits << " workloads).\n";
  }

  // Every (workload, scenario) pair is an independent task for the parallel
  // runner; results come back in submission order regardless of jobs.
  std::vector<runner::Experiment> experiments;
  for (const auto& workload : opt.workloads) {
    for (const auto scenario : opt.scenarios) {
      runner::Experiment e;
      e.workload = workload;
      e.config.scenario = scenario;
      e.config.cooling = opt.cooling;
      e.config.target_rate_op_per_ns = opt.target;
      opt.rc.apply_to(e.config);
      if (opt.control_factor) {
        e.config.sw_control_factor = *opt.control_factor;
        e.config.hw_control_factor = *opt.control_factor;
      }
      if (opt.pei) e.config.gpu.offload_policy = gpu::OffloadPolicy::kCoherentWriteback;
      experiments.push_back(std::move(e));
    }
  }
  runner::RunOptions run_opt;
  run_opt.jobs = opt.rc.jobs;
  run_opt.sweep_batch = opt.rc.sweep_batch;
  std::optional<obs::SweepObserver> observer;
  if (!opt.rc.trace_path.empty() || !opt.rc.counters_path.empty()) {
    observer.emplace(!opt.rc.trace_path.empty(), !opt.rc.counters_path.empty());
    run_opt.obs = &*observer;
  }
  const std::vector<sys::RunResult> runs = runner::run_sweep(set, experiments, run_opt);

  Table summary{"coolpim_sim results"};
  summary.header({"Workload", "Scenario", "Exec (ms)", "BW (GB/s)", "PIM rate",
                  "Peak DRAM (C)", "Warnings", "Energy (mJ)"});
  for (const auto& r : runs) {
    summary.row({r.workload, r.scenario, Table::num(r.exec_time.as_ms(), 2),
                 Table::num(r.avg_link_data_gbps(), 1),
                 Table::num(r.avg_pim_rate_op_per_ns(), 2),
                 Table::num(r.peak_dram_temp.value(), 1),
                 std::to_string(r.thermal_warnings),
                 Table::num(r.total_energy_j() * 1e3, 1)});
  }
  summary.print(std::cout);

  if (opt.timeline) {
    for (const auto& r : runs) print_timeline(r);
  }
  if (!opt.csv_path.empty()) {
    std::ofstream out{opt.csv_path};
    if (!out) {
      std::cerr << "error: cannot open " << opt.csv_path << " for writing\n";
      return 1;
    }
    sys::write_summary_csv(out, runs);
    std::cout << "Summary CSV written to " << opt.csv_path << "\n";
  }
  if (!opt.rc.trace_path.empty()) {
    std::ofstream out{opt.rc.trace_path};
    if (!out) {
      std::cerr << "error: cannot open " << opt.rc.trace_path << " for writing\n";
      return 1;
    }
    observer->write_trace(out);
    std::cout << "Trace written to " << opt.rc.trace_path
              << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
  }
  if (!opt.rc.counters_path.empty()) {
    std::ofstream out{opt.rc.counters_path};
    if (!out) {
      std::cerr << "error: cannot open " << opt.rc.counters_path << " for writing\n";
      return 1;
    }
    observer->write_counters_csv(out);
    std::cout << "Counter CSV written to " << opt.rc.counters_path << "\n";
  }
  return 0;
}
