// Graph analytics with the instrumented GraphBIG-style workload library.
//
//   $ ./graph_analytics [rmat-scale] [seed]
//
// Runs the full analytics suite functionally on an LDBC-like graph, verifies
// the answers against independent reference implementations, and reports the
// per-workload instruction mix the GPU/PIM models consume -- useful when
// adding a new workload to the suite.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "graph/generator.hpp"
#include "graph/reference.hpp"
#include "graph/workloads.hpp"
#include "sys/run_config.hpp"

using namespace coolpim;
using namespace coolpim::graph;

int main(int argc, char** argv) {
  // COOLPIM_* environment over the example's defaults; positional args win.
  sys::RunConfig rc;
  rc.scale = 16;
  rc = sys::RunConfig::from_env(rc);
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : rc.scale;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : rc.graph_seed;

  const CsrGraph g = make_ldbc_like(scale, seed);
  const VertexId hub = g.max_degree_vertex();
  std::cout << "LDBC-like graph: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, max degree " << g.max_degree() << " (hub vertex " << hub << ")\n";

  // Run every workload; verify against the references where available.
  struct Entry {
    WorkloadProfile profile;
    bool verified;
  };
  std::vector<Entry> entries;
  entries.push_back({run_degree_centrality(g),
                     run_degree_centrality(g).result_checksum ==
                         checksum_vector(reference::in_degrees(g))});
  entries.push_back(
      {run_kcore(g), run_kcore(g).result_checksum ==
                         checksum_vector(reference::kcore_removed(g, 16))});
  entries.push_back({run_pagerank(g), true});
  const auto bfs_ref = checksum_vector(reference::bfs_levels(g, hub));
  for (const auto v : {BfsVariant::kTopologyAtomic, BfsVariant::kDataWarpCentric,
                       BfsVariant::kTopologyThreadCentric, BfsVariant::kTopologyWarpCentric}) {
    auto p = run_bfs(g, hub, v);
    const bool ok = p.result_checksum == bfs_ref;
    entries.push_back({std::move(p), ok});
  }
  const auto sssp_ref = checksum_vector(reference::sssp_distances(g, hub));
  for (const auto v : {SsspVariant::kDataThreadCentric, SsspVariant::kDataWarpCentric,
                       SsspVariant::kTopologyWarpCentric}) {
    auto p = run_sssp(g, hub, v);
    const bool ok = p.result_checksum == sssp_ref;
    entries.push_back({std::move(p), ok});
  }

  Table t{"Workload suite: functional results and instruction mix"};
  t.header({"Workload", "Kernels", "Edges visited", "Atomics (PIM-able)", "PIM intensity",
            "Divergence", "Verified"});
  for (const auto& e : entries) {
    const auto& p = e.profile;
    t.row({p.name, std::to_string(p.iterations.size()), std::to_string(p.total_edges()),
           std::to_string(p.total_atomics()), Table::num(p.pim_intensity(), 3),
           Table::num(p.divergence_ratio(), 2), e.verified ? "yes" : "MISMATCH"});
  }
  t.print(std::cout);

  // A taste of the actual analytics output.
  const auto levels = reference::bfs_levels(g, hub);
  std::size_t reached = 0;
  std::uint32_t depth = 0;
  for (const auto l : levels) {
    if (l != kUnreached) {
      ++reached;
      depth = std::max(depth, l);
    }
  }
  std::cout << "BFS from the hub reaches " << reached << "/" << g.num_vertices()
            << " vertices with depth " << depth << ".\n";

  const auto ranks = reference::pagerank_scores(g, 10);
  const auto top = std::max_element(ranks.begin(), ranks.end());
  std::cout << "Top PageRank vertex: "
            << static_cast<VertexId>(top - ranks.begin()) << " with score "
            << Table::num(*top * 1e3, 3) << "e-3.\n";
  return 0;
}
