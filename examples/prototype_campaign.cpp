// Re-enactment of the paper's HMC 1.1 prototype measurement campaign
// (Section III-A): ramp the bandwidth on the AC-510 module under a chosen
// heat sink, watch the stack heat transiently, and observe the conservative
// shutdown -- including the tens-of-seconds recovery the authors measured.
//
//   $ ./prototype_campaign [passive|low-end|high-end|all]
//
// `all` replays the campaign for every sink concurrently on the work-stealing
// pool (each replay owns its thermal model, so they are independent tasks)
// and prints the reports in sink order.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "hmc/config.hpp"
#include "hmc/link_model.hpp"
#include "hmc/thermal_policy.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "runner/pool.hpp"
#include "thermal/hmc_thermal.hpp"

using namespace coolpim;

namespace {

void run_campaign(power::CoolingType sink, std::ostream& out) {
  const hmc::LinkModel link{hmc::hmc11_config()};
  const power::EnergyParams energy;
  hmc::ThermalPolicy policy;
  policy.conservative_shutdown = true;  // HMC 1.1 stops rather than derates

  // The campaign: idle warm-up, then step the FPGA traffic generator up by
  // 10 GB/s every 200 ms until the 60 GB/s peak or a shutdown.
  // The FPGA traffic generator runs hot for the whole campaign.
  thermal::HmcThermalModel model{thermal::hmc11_thermal_config(sink, 30.0)};
  model.apply_power(power::compute_power(energy, power::OperatingPoint{}));
  model.solve_steady();  // module idles long before the test starts

  out << "HMC 1.1 prototype bandwidth ramp, " << power::prototype_cooling(sink).name
      << " (conservative shutdown ~" << policy.conservative_shutdown_temp.value()
      << " C die)\n";

  Table t{"Campaign log"};
  t.header({"t (ms)", "Offered BW (GB/s)", "Surface (C)", "Die (C)", "Event"});
  bool shut_down = false;
  bool warned = false;
  double bw = 0.0;
  Time now = Time::zero();
  const Time step = Time::ms(10);
  // Ramp for 1.2 s, then hold the peak until the stack settles (or stops).
  for (int i = 0; i <= 3000 && !shut_down; ++i) {
    bw = std::min(60.0, static_cast<double>(i / 20) * 10.0);  // step every 200 ms
    hmc::TransactionMix mix;
    mix.reads_per_sec = bw * 1e9 / 64.0;
    power::OperatingPoint op;
    op.link_raw = link.raw_link_bandwidth(mix);
    op.dram_internal = link.internal_dram_bandwidth(mix);
    model.apply_power(power::compute_power(energy, op));
    model.step(step);
    now += step;

    std::string event;
    if (policy.phase(model.peak_dram()) == hmc::ThermalPhase::kShutdown) {
      event = "SHUTDOWN (data lost)";
      shut_down = true;
    } else if (!warned && policy.warning(model.peak_dram())) {
      event = "first ERRSTAT thermal warning";
      warned = true;
    }
    const bool ramping = i <= 120;
    if ((ramping && i % 20 == 0) || (!ramping && i % 200 == 0) || !event.empty()) {
      t.row({Table::num(now.as_ms(), 0), Table::num(bw, 0),
             Table::num(model.surface().value(), 1), Table::num(model.peak_dram().value(), 1),
             event});
    }
  }
  t.print(out);

  if (shut_down) {
    // Recovery: the module cools with no traffic; the paper measured tens of
    // seconds before the link retrains and the (lost) contents reload.
    model.apply_power(power::compute_power(energy, power::OperatingPoint{}));
    // "Cool again" = back near the module's idle temperature (the FPGA next
    // to it keeps running, so it never reaches ambient).
    thermal::HmcThermalModel idle_ref{thermal::hmc11_thermal_config(sink, 30.0)};
    idle_ref.apply_power(power::compute_power(energy, power::OperatingPoint{}));
    idle_ref.solve_steady();
    const double resume_temp = idle_ref.peak_dram().value() + 3.0;
    Time cooled = Time::zero();
    while (model.peak_dram().value() > resume_temp && cooled < Time::sec(120)) {
      model.step(Time::ms(100));
      cooled += Time::ms(100);
    }
    out << "Shutdown at " << Table::num(now.as_ms(), 0) << " ms with " << bw
        << " GB/s offered.  The dies cool back to ~" << Table::num(resume_temp, 0)
        << " C within " << Table::num(std::max(cooled.as_sec(), 0.1), 1)
        << " s, but recovery = cool-down + link retraining + reloading the LOST\n"
           "cube contents -- tens of seconds end to end (paper Section III-A.2),\n"
           "far longer than any GPU kernel.  This is why reactive policies cannot\n"
           "substitute for source throttling on the prototype.\n";
  } else {
    out << "Ramp completed without shutdown: peak die "
        << Table::num(model.peak_dram().value(), 1) << " C at " << bw << " GB/s.\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string sink_name = argc > 1 ? argv[1] : "passive";
  if (sink_name == "all") {
    const std::vector<power::CoolingType> sinks{power::CoolingType::kPassive,
                                                power::CoolingType::kLowEndActive,
                                                power::CoolingType::kHighEndActive};
    std::vector<std::ostringstream> reports(sinks.size());
    runner::Pool pool;
    pool.parallel_for(sinks.size(), [&](std::size_t i) { run_campaign(sinks[i], reports[i]); });
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (i > 0) std::cout << "\n";
      std::cout << reports[i].str();
    }
    return 0;
  }

  power::CoolingType sink = power::CoolingType::kPassive;
  if (sink_name == "low-end") sink = power::CoolingType::kLowEndActive;
  else if (sink_name == "high-end") sink = power::CoolingType::kHighEndActive;
  else if (sink_name != "passive") {
    std::cerr << "usage: prototype_campaign [passive|low-end|high-end|all]\n";
    return 2;
  }
  run_campaign(sink, std::cout);
  return 0;
}
