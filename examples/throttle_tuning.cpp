// Tuning the CoolPIM feedback loop: watch the PIM rate and DRAM temperature
// evolve under different controllers and control factors.
//
//   $ ./throttle_tuning [workload] [rmat-scale]
//
// Prints a side-by-side transient timeline (like the paper's Fig. 14) and a
// control-factor comparison, so a deployment can pick CF for its kernels.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "runner/experiment.hpp"
#include "sys/run_config.hpp"
#include "sys/system.hpp"

using namespace coolpim;

namespace {

runner::Experiment transient(const std::string& workload, sys::Scenario scenario,
                             std::uint32_t cf) {
  runner::Experiment e;
  e.workload = workload;
  e.config.scenario = scenario;
  e.config.warm_start = false;
  e.config.start_temp_override = 84.0;  // the device is already near the limit
  e.config.sw_control_factor = cf;
  e.config.hw_control_factor = cf;
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  // COOLPIM_* environment over the example's defaults; positional args win.
  sys::RunConfig rc;
  rc.scale = 17;
  rc = sys::RunConfig::from_env(rc);
  const std::string workload = argc > 1 ? argv[1] : "pagerank";
  const unsigned scale = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : rc.scale;

  std::cout << "Throttle tuning on '" << workload << "' (scale " << scale << ")\n";
  const sys::WorkloadSet set{scale, rc.graph_seed, false, rc.build_options()};

  // Transient timeline: naive vs both CoolPIM mechanisms, run concurrently.
  const auto transients = runner::run_sweep(
      set, {transient(workload, sys::Scenario::kNaiveOffloading, 4),
            transient(workload, sys::Scenario::kCoolPimSw, 4),
            transient(workload, sys::Scenario::kCoolPimHw, 4)});
  const auto& naive = transients[0];
  const auto& sw = transients[1];
  const auto& hw = transients[2];

  const Time span = std::max({naive.exec_time, sw.exec_time, hw.exec_time});
  const std::size_t points = 16;
  const Time step = span / static_cast<std::int64_t>(points);
  const Time start = naive.pim_rate.time_at(0);
  Table timeline{"Transient: PIM rate (op/ns) and naive DRAM temperature over time"};
  timeline.header({"t (ms)", "naive rate", "naive T (C)", "SW rate", "HW rate"});
  auto sample = [&](const TimeSeries& ts, std::size_t i) {
    const Time when = start + step * static_cast<std::int64_t>(i);
    if (when > ts.times().back()) return std::string{"-"};
    return Table::num(ts.sample_at(when), 2);
  };
  for (std::size_t i = 0; i < points; ++i) {
    timeline.row({Table::num((step * static_cast<std::int64_t>(i)).as_ms(), 2),
                  sample(naive.pim_rate, i), sample(naive.dram_temp, i),
                  sample(sw.pim_rate, i), sample(hw.pim_rate, i)});
  }
  timeline.print(std::cout);

  // Control-factor comparison (sustained behaviour, warm start): one task
  // per CF, swept in parallel.
  const std::vector<std::uint32_t> cfs{2, 4, 8, 16};
  std::vector<runner::Experiment> cf_tasks;
  for (const std::uint32_t cf : cfs) {
    runner::Experiment e;
    e.workload = workload;
    e.config.scenario = sys::Scenario::kCoolPimHw;
    e.config.hw_control_factor = cf;
    cf_tasks.push_back(std::move(e));
  }
  const auto cf_runs = runner::run_sweep(set, cf_tasks);

  Table cf_table{"Control factor sweep (sustained, HW-DynT)"};
  cf_table.header({"CF (warps)", "Exec (ms)", "PIM rate (op/ns)", "Peak DRAM (C)"});
  for (std::size_t i = 0; i < cfs.size(); ++i) {
    const auto& r = cf_runs[i];
    cf_table.row({std::to_string(cfs[i]), Table::num(r.exec_time.as_ms(), 2),
                  Table::num(r.avg_pim_rate_op_per_ns(), 2),
                  Table::num(r.peak_dram_temp.value(), 1)});
  }
  cf_table.print(std::cout);

  std::cout << "Pick the smallest CF that still converges within your kernels' runtime:\n"
               "larger steps cool down faster but risk settling below the thermal budget\n"
               "(lost offloading benefit); smaller steps track the budget tighter.\n";
  return 0;
}
