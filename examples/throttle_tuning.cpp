// Tuning the CoolPIM feedback loop: watch the PIM rate and DRAM temperature
// evolve under different controllers and control factors.
//
//   $ ./throttle_tuning [workload] [rmat-scale]
//
// Prints a side-by-side transient timeline (like the paper's Fig. 14) and a
// control-factor comparison, so a deployment can pick CF for its kernels.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sys/system.hpp"

using namespace coolpim;

namespace {

sys::RunResult transient(const sys::WorkloadSet& set, const std::string& workload,
                         sys::Scenario scenario, std::uint32_t cf) {
  sys::SystemConfig cfg;
  cfg.scenario = scenario;
  cfg.warm_start = false;
  cfg.start_temp_override = 84.0;  // the device is already near the limit
  cfg.sw_control_factor = cf;
  cfg.hw_control_factor = cf;
  sys::System system{cfg};
  return system.run(set.profile(workload));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "pagerank";
  const unsigned scale = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 17;

  std::cout << "Throttle tuning on '" << workload << "' (scale " << scale << ")\n";
  const sys::WorkloadSet set{scale};

  // Transient timeline: naive vs both CoolPIM mechanisms.
  const auto naive = transient(set, workload, sys::Scenario::kNaiveOffloading, 4);
  const auto sw = transient(set, workload, sys::Scenario::kCoolPimSw, 4);
  const auto hw = transient(set, workload, sys::Scenario::kCoolPimHw, 4);

  const Time span = std::max({naive.exec_time, sw.exec_time, hw.exec_time});
  const std::size_t points = 16;
  const Time step = span / static_cast<std::int64_t>(points);
  const Time start = naive.pim_rate.time_at(0);
  Table timeline{"Transient: PIM rate (op/ns) and naive DRAM temperature over time"};
  timeline.header({"t (ms)", "naive rate", "naive T (C)", "SW rate", "HW rate"});
  auto sample = [&](const TimeSeries& ts, std::size_t i) {
    const Time when = start + step * static_cast<std::int64_t>(i);
    if (when > ts.times().back()) return std::string{"-"};
    return Table::num(ts.sample_at(when), 2);
  };
  for (std::size_t i = 0; i < points; ++i) {
    timeline.row({Table::num((step * static_cast<std::int64_t>(i)).as_ms(), 2),
                  sample(naive.pim_rate, i), sample(naive.dram_temp, i),
                  sample(sw.pim_rate, i), sample(hw.pim_rate, i)});
  }
  timeline.print(std::cout);

  // Control-factor comparison (sustained behaviour, warm start).
  Table cf_table{"Control factor sweep (sustained, HW-DynT)"};
  cf_table.header({"CF (warps)", "Exec (ms)", "PIM rate (op/ns)", "Peak DRAM (C)"});
  for (const std::uint32_t cf : {2u, 4u, 8u, 16u}) {
    sys::SystemConfig cfg;
    cfg.scenario = sys::Scenario::kCoolPimHw;
    cfg.hw_control_factor = cf;
    sys::System system{cfg};
    const auto r = system.run(set.profile(workload));
    cf_table.row({std::to_string(cf), Table::num(r.exec_time.as_ms(), 2),
                  Table::num(r.avg_pim_rate_op_per_ns(), 2),
                  Table::num(r.peak_dram_temp.value(), 1)});
  }
  cf_table.print(std::cout);

  std::cout << "Pick the smallest CF that still converges within your kernels' runtime:\n"
               "larger steps cool down faster but risk settling below the thermal budget\n"
               "(lost offloading benefit); smaller steps track the budget tighter.\n";
  return 0;
}
