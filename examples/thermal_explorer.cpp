// Thermal what-if explorer for 3D-stacked memory designs.
//
//   $ ./thermal_explorer [data-GB/s] [pim-op-per-ns]
//
// Answers the system designer's questions: how hot does an HMC 2.0 cube run
// at a given load under each cooling solution, what does the cooling cost in
// fan power, and what is the largest PIM rate each sink sustains inside the
// normal DRAM range?
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "hmc/config.hpp"
#include "hmc/link_model.hpp"
#include "hmc/thermal_policy.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "runner/pool.hpp"
#include "thermal/hmc_thermal.hpp"

using namespace coolpim;

namespace {

power::OperatingPoint operating_point(const hmc::LinkModel& link, double data_gbps,
                                      double pim_rate) {
  hmc::TransactionMix mix;
  mix.pim_per_sec = pim_rate * 1e9;
  mix.reads_per_sec = data_gbps * 1e9 / 64.0;
  power::OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  op.pim_ops_per_sec = mix.pim_per_sec;
  return op;
}

}  // namespace

int main(int argc, char** argv) {
  const double data_gbps = argc > 1 ? std::atof(argv[1]) : 200.0;
  const double pim_rate = argc > 2 ? std::atof(argv[2]) : 1.0;

  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams energy;
  const hmc::ThermalPolicy policy;
  const auto op = operating_point(link, data_gbps, pim_rate);

  if (!link.feasible({data_gbps * 1e9 / 64.0, 0.0, pim_rate * 1e9, 0.0})) {
    std::cout << "Requested load exceeds the link FLIT budget; results show the\n"
                 "temperature IF the cube could serve it.\n";
  }

  const auto pb = power::compute_power(energy, op);
  std::cout << "Operating point: " << Table::num(data_gbps, 0) << " GB/s regular data + "
            << Table::num(pim_rate, 2) << " PIM op/ns\n"
            << "Cube power: " << Table::num(pb.total().value(), 1) << " W (logic "
            << Table::num(pb.logic_total().value(), 1) << " W incl. "
            << Table::num(pb.fu.value(), 2) << " W of PIM FUs, DRAM "
            << Table::num(pb.dram_total().value(), 1) << " W), internal DRAM traffic "
            << Table::num(op.dram_internal.as_gbps(), 0) << " GB/s\n";

  // Each heat sink's steady solve and PIM-budget bisection is independent:
  // fan them out across the pool and print the rows in sink order.
  const auto& sinks = power::all_cooling_solutions();
  std::vector<std::vector<std::string>> point_rows(sinks.size());
  std::vector<std::vector<std::string>> budget_rows(sinks.size());
  runner::Pool pool;
  pool.parallel_for(sinks.size(), [&](std::size_t i) {
    const auto& sink = sinks[i];
    thermal::HmcThermalModel model{thermal::hmc20_thermal_config(sink.type)};
    model.apply_power(pb);
    model.solve_steady();
    const Celsius temp = model.peak_dram();
    point_rows[i] = {sink.name, Table::num(sink.resistance.value(), 1),
                     Table::num(sink.fan_power_watts, 2), Table::num(temp.value(), 1),
                     std::string(to_string(policy.phase(temp)))};

    // Largest sustainable PIM rate (bisection against the 85 C limit).
    double lo = 0.0, hi = 10.0;
    for (int step = 0; step < 24; ++step) {
      const double mid = 0.5 * (lo + hi);
      hmc::TransactionMix mix;
      mix.pim_per_sec = mid * 1e9;
      mix.reads_per_sec =
          link.regular_bandwidth_with_pim(mix.pim_per_sec).as_bytes_per_sec() / 64.0;
      power::OperatingPoint probe;
      probe.link_raw = link.raw_link_bandwidth(mix);
      probe.dram_internal = link.internal_dram_bandwidth(mix);
      probe.pim_ops_per_sec = mix.pim_per_sec;
      thermal::HmcThermalModel probe_model{thermal::hmc20_thermal_config(sink.type)};
      probe_model.apply_power(power::compute_power(energy, probe));
      probe_model.solve_steady();
      (probe_model.peak_dram().value() < 85.0 ? lo : hi) = mid;
    }
    budget_rows[i] = {sink.name, lo <= 0.0 ? "none (over 85 C even without PIM)"
                                           : Table::num(lo, 2)};
  });

  Table t{"Cooling solutions at this operating point"};
  t.header({"Heat sink", "R (C/W)", "Fan power (W)", "Peak DRAM (C)", "Phase"});
  for (auto& row : point_rows) t.row(std::move(row));
  t.print(std::cout);

  Table budget{"PIM-rate budget within the normal DRAM range (links otherwise full)"};
  budget.header({"Heat sink", "Max PIM rate (op/ns) below 85 C"});
  for (auto& row : budget_rows) budget.row(std::move(row));
  budget.print(std::cout);
  return 0;
}
