// Quickstart: simulate a PIM-offloaded graph workload on a GPU + HMC 2.0
// system and see why thermal-aware source throttling (CoolPIM) matters.
//
//   $ ./quickstart [rmat-scale]
//
// Builds an LDBC-like social graph, profiles the PageRank GPU kernels, and
// runs them under four system configurations.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sys/run_config.hpp"
#include "sys/system.hpp"

using namespace coolpim;

int main(int argc, char** argv) {
  // COOLPIM_* environment over the example's defaults; the positional
  // argument still wins over both.
  sys::RunConfig rc;
  rc.scale = 17;
  rc = sys::RunConfig::from_env(rc);
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : rc.scale;

  std::cout << "CoolPIM quickstart: PageRank on a 2^" << scale
            << "-vertex LDBC-like graph, GPU + HMC 2.0, commodity-server cooling\n";
  const sys::WorkloadSet workloads{scale};
  const auto& pagerank = workloads.profile("pagerank");
  std::cout << "Workload: " << pagerank.iterations.size() << " kernel launches, "
            << pagerank.total_atomics() << " offloadable atomics, PIM intensity "
            << Table::num(pagerank.pim_intensity(), 3) << ", divergent-warp ratio "
            << Table::num(pagerank.divergence_ratio(), 2) << "\n";

  Table t{"PageRank under four system configurations"};
  t.header({"Configuration", "Exec (ms)", "Speedup", "PIM rate (op/ns)", "Peak DRAM (C)",
            "Thermal warnings"});
  double baseline_ms = 0.0;
  for (const auto scenario :
       {sys::Scenario::kNonOffloading, sys::Scenario::kNaiveOffloading,
        sys::Scenario::kCoolPimSw, sys::Scenario::kCoolPimHw}) {
    sys::SystemConfig cfg;
    cfg.scenario = scenario;
    rc.apply_to(cfg);
    sys::System system{cfg};
    const auto r = system.run(pagerank);
    if (scenario == sys::Scenario::kNonOffloading) baseline_ms = r.exec_time.as_ms();
    t.row({r.scenario, Table::num(r.exec_time.as_ms(), 2),
           Table::num(baseline_ms / r.exec_time.as_ms(), 2),
           Table::num(r.avg_pim_rate_op_per_ns(), 2), Table::num(r.peak_dram_temp.value(), 1),
           std::to_string(r.thermal_warnings)});
  }
  t.print(std::cout);

  std::cout << "Takeaway: offloading every atomic overheats the cube (derated service,\n"
               "little or no speedup); CoolPIM throttles the offloading rate at the source\n"
               "and keeps the DRAM in its normal range -- and ends up faster.\n";
  return 0;
}
