// Cross-validation harness for the hmc::Backend fidelity tiers.
//
// For each PIM micro-kernel (pim/programs.hpp) the harness drives the
// analytic epoch-throughput backend and the instruction-level pim-vault
// backend with the same saturating pure-PIM demand and compares the served
// op/ns rates.  The two tiers model the same cube from opposite ends --
// aggregate internal-bandwidth budgeting vs per-instruction bank timing --
// so their saturated rates must agree within a documented tolerance
// (EXPERIMENTS.md, cross-validation table).  Exit 1 on any violation; CI
// runs this binary, and tests/test_backends.cpp mirrors the check tier-1.
//
// Usage: xval_backends [--epochs N]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hmc/backend.hpp"
#include "pim/programs.hpp"
#include "pim/xval.hpp"

using namespace coolpim;

int main(int argc, char** argv) {
  unsigned epochs = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      epochs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: xval_backends [--epochs N]\n");
      return 2;
    }
  }

  std::printf("cross-validation: epoch-throughput vs pim-vault, %u epochs/point\n", epochs);
  std::printf("tolerance: |pim/epoch - 1| <= %.2f (EXPERIMENTS.md)\n\n", pim::kXvalTolerance);
  std::printf("%-10s %6s %16s %14s %8s %6s\n", "kernel", "temp_c", "epoch_op_per_ns",
              "pim_op_per_ns", "ratio", "pass");

  bool ok = true;
  for (const std::string_view kernel : pim::kMicroKernels) {
    for (const double temp_c : {60.0, 90.0}) {
      const pim::XvalPoint p = pim::cross_validate(kernel, Celsius{temp_c}, epochs);
      const bool pass = std::fabs(p.ratio - 1.0) <= pim::kXvalTolerance;
      ok = ok && pass;
      std::printf("%-10s %6.0f %16.3f %14.3f %8.3f %6s\n", std::string{kernel}.c_str(),
                  temp_c, p.epoch_op_per_ns, p.pim_op_per_ns, p.ratio,
                  pass ? "ok" : "FAIL");
    }
  }

  if (!ok) {
    std::fprintf(stderr, "\ncross-validation FAILED: a backend drifted past the "
                         "documented tolerance\n");
    return 1;
  }
  std::printf("\nall kernels within tolerance\n");
  return 0;
}
