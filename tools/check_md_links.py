#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve to files.

Scans the given markdown files (default: every tracked *.md plus docs/) for
inline links and images `[text](target)`, skips external URLs and pure
anchors, and verifies each relative target exists on disk. Exits non-zero
listing every broken link. Stdlib only; run from anywhere:

    python3 tools/check_md_links.py [FILE.md ...]
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Inline links/images. Deliberately simple: no reference-style links in this
# repo, and nested parens in URLs don't occur in relative paths.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def md_files():
    found = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("**/*.md"))
    return [p for p in found if p.is_file()]


def check_file(path):
    broken = []
    text = path.read_text(encoding="utf-8")
    in_code = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("<"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main(argv):
    files = [Path(a).resolve() for a in argv[1:]] or md_files()
    failures = 0
    for path in files:
        for lineno, target in check_file(path):
            print(f"{path.relative_to(REPO)}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken markdown link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
