#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans the given markdown files (default: every tracked *.md plus docs/) for
inline links and images `[text](target)`, skips external URLs, and verifies:

  * each relative target exists on disk,
  * each fragment (`file.md#section` or same-file `#section`) matches a
    heading anchor in the target file, using GitHub's slug rules
    (lowercase, punctuation stripped, spaces to hyphens, duplicate slugs
    suffixed -1, -2, ...).

Exits non-zero listing every broken link or anchor. Stdlib only; run from
anywhere:

    python3 tools/check_md_links.py [FILE.md ...]
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Inline links/images. Deliberately simple: no reference-style links in this
# repo, and nested parens in URLs don't occur in relative paths.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def md_files():
    found = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("**/*.md"))
    return [p for p in found if p.is_file()]


def slugify(heading):
    """GitHub-style anchor slug for a heading line (backticks dropped,
    non-alphanumerics stripped, spaces and hyphens kept as hyphens)."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path, cache={}):
    """All anchor slugs defined in a markdown file (with -N dedup suffixes)."""
    if path in cache:
        return cache[path]
    anchors = set()
    counts = {}
    in_code = False
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        cache[path] = anchors
        return anchors
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = slugify(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = anchors
    return anchors


def check_file(path):
    broken = []
    text = path.read_text(encoding="utf-8")
    in_code = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("<"):
                continue
            rel, _, fragment = target.partition("#")
            resolved = (path.parent / rel).resolve() if rel else path
            if not resolved.exists():
                broken.append((lineno, target, "missing file"))
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_anchors(resolved):
                    broken.append((lineno, target, "missing anchor"))
    return broken


def main(argv):
    files = [Path(a).resolve() for a in argv[1:]] or md_files()
    failures = 0
    for path in files:
        for lineno, target, why in check_file(path):
            print(f"{path.relative_to(REPO)}:{lineno}: {why} -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken markdown link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
