// Development tool: prints the thermal model's outputs at the paper's anchor
// operating points so the calibrated constants in HmcThermalConfig and
// EnergyParams can be tuned.  Not part of the shipped experiment set.
#include <cstdio>

#include "hmc/config.hpp"
#include "hmc/link_model.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "thermal/hmc_thermal.hpp"

using namespace coolpim;

namespace {

power::OperatingPoint op_for_bandwidth(const hmc::LinkModel& link, double data_gbps) {
  // Pure read traffic at the requested data bandwidth.
  hmc::TransactionMix mix{};
  mix.reads_per_sec = data_gbps * 1e9 / 64.0;
  power::OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  op.pim_ops_per_sec = 0.0;
  return op;
}

power::OperatingPoint op_for_pim(const hmc::LinkModel& link, double pim_per_ns) {
  // Fig. 5 scenario: links fully utilized by PIM ops + regular reads.
  const double pim_per_sec = pim_per_ns * 1e9;
  hmc::TransactionMix mix{};
  mix.pim_per_sec = pim_per_sec;
  mix.reads_per_sec = link.regular_bandwidth_with_pim(pim_per_sec).as_bytes_per_sec() / 64.0;
  power::OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  op.pim_ops_per_sec = pim_per_sec;
  return op;
}

double peak_dram_at(thermal::HmcThermalModel& model, const power::EnergyParams& ep,
                    const power::OperatingPoint& op) {
  model.apply_power(power::compute_power(ep, op));
  model.solve_steady();
  return model.peak_dram().value();
}

}  // namespace

int main() {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;

  std::printf("== HMC 2.0, commodity sink ==\n");
  thermal::HmcThermalModel m20{
      thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer)};

  const auto idle = op_for_bandwidth(link, 0.0);
  std::printf("idle:            peak DRAM %.1f C   (paper: 33)\n", peak_dram_at(m20, ep, idle));
  const auto full = op_for_bandwidth(link, 320.0);
  auto pb = power::compute_power(ep, full);
  std::printf("320 GB/s:        peak DRAM %.1f C   (paper: 81)   [P=%.1f W logic %.1f dram %.1f]\n",
              peak_dram_at(m20, ep, full), pb.total().value(), pb.logic_total().value(),
              pb.dram_total().value());

  for (const double r : {1.3, 3.0, 5.0, 6.5}) {
    const auto op = op_for_pim(link, r);
    pb = power::compute_power(ep, op);
    std::printf("PIM %.1f op/ns:   peak DRAM %.1f C   (paper: %s)  [P=%.1f W, internal %.0f GB/s]\n",
                r, peak_dram_at(m20, ep, op), r == 1.3 ? "85" : (r == 6.5 ? "105" : "-"),
                pb.total().value(), op.dram_internal.as_gbps());
  }

  std::printf("\n== HMC 2.0, other sinks at 320 GB/s ==\n");
  for (const auto type : {power::CoolingType::kPassive, power::CoolingType::kLowEndActive,
                          power::CoolingType::kHighEndActive}) {
    thermal::HmcThermalModel m{thermal::hmc20_thermal_config(type)};
    std::printf("%-24s peak DRAM %.1f C\n", power::cooling(type).name.c_str(),
                peak_dram_at(m, ep, op_for_bandwidth(link, 320.0)));
  }

  std::printf("\n== HMC 1.1 module (FPGA co-heater) ==\n");
  const hmc::LinkModel link11{hmc::hmc11_config()};
  struct Case { power::CoolingType type; double bw; const char* label; const char* paper; };
  const Case cases[] = {
      {power::CoolingType::kPassive, 0.0, "passive idle", "71.1 surf"},
      {power::CoolingType::kPassive, 60.0, "passive busy", "85.4 surf (shutdown)"},
      {power::CoolingType::kLowEndActive, 0.0, "low-end idle", "45.3 surf"},
      {power::CoolingType::kLowEndActive, 60.0, "low-end busy", "60.5 surf"},
      {power::CoolingType::kHighEndActive, 0.0, "high-end idle", "40.5 surf"},
      {power::CoolingType::kHighEndActive, 60.0, "high-end busy", "47.3 surf"},
  };
  for (const auto& c : cases) {
    const double fpga_w = c.bw > 0.0 ? 30.0 : 20.0;  // FPGA works harder when driving traffic
    thermal::HmcThermalModel m{thermal::hmc11_thermal_config(c.type, fpga_w)};
    const auto op = op_for_bandwidth(link11, c.bw);
    m.apply_power(power::compute_power(ep, op));
    m.solve_steady();
    std::printf("%-16s surface %.1f C  die %.1f C   (paper: %s)\n", c.label,
                m.surface().value(), m.peak_dram().value(), c.paper);
  }
  return 0;
}
