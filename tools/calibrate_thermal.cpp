// Development tool: prints the thermal model's outputs at the paper's anchor
// operating points so the calibrated constants in HmcThermalConfig and
// EnergyParams can be tuned.  Not part of the shipped experiment set.
#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "hmc/config.hpp"
#include "hmc/link_model.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "thermal/batch_stack_model.hpp"
#include "thermal/hmc_thermal.hpp"

using namespace coolpim;

namespace {

power::OperatingPoint op_for_bandwidth(const hmc::LinkModel& link, double data_gbps) {
  // Pure read traffic at the requested data bandwidth.
  hmc::TransactionMix mix{};
  mix.reads_per_sec = data_gbps * 1e9 / 64.0;
  power::OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  op.pim_ops_per_sec = 0.0;
  return op;
}

power::OperatingPoint op_for_pim(const hmc::LinkModel& link, double pim_per_ns) {
  // Fig. 5 scenario: links fully utilized by PIM ops + regular reads.
  const double pim_per_sec = pim_per_ns * 1e9;
  hmc::TransactionMix mix{};
  mix.pim_per_sec = pim_per_sec;
  mix.reads_per_sec = link.regular_bandwidth_with_pim(pim_per_sec).as_bytes_per_sec() / 64.0;
  power::OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  op.pim_ops_per_sec = pim_per_sec;
  return op;
}

double peak_dram_at(thermal::HmcThermalModel& model, const power::EnergyParams& ep,
                    const power::OperatingPoint& op) {
  model.apply_power(power::compute_power(ep, op));
  model.solve_steady();
  return model.peak_dram().value();
}

}  // namespace

int main() {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;

  std::printf("== HMC 2.0, commodity sink ==\n");
  thermal::HmcThermalModel m20{
      thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer)};

  const auto idle = op_for_bandwidth(link, 0.0);
  std::printf("idle:            peak DRAM %.1f C   (paper: 33)\n", peak_dram_at(m20, ep, idle));
  const auto full = op_for_bandwidth(link, 320.0);
  auto pb = power::compute_power(ep, full);
  std::printf("320 GB/s:        peak DRAM %.1f C   (paper: 81)   [P=%.1f W logic %.1f dram %.1f]\n",
              peak_dram_at(m20, ep, full), pb.total().value(), pb.logic_total().value(),
              pb.dram_total().value());

  for (const double r : {1.3, 3.0, 5.0, 6.5}) {
    const auto op = op_for_pim(link, r);
    pb = power::compute_power(ep, op);
    std::printf("PIM %.1f op/ns:   peak DRAM %.1f C   (paper: %s)  [P=%.1f W, internal %.0f GB/s]\n",
                r, peak_dram_at(m20, ep, op), r == 1.3 ? "85" : (r == 6.5 ? "105" : "-"),
                pb.total().value(), op.dram_internal.as_gbps());
  }

  std::printf("\n== HMC 2.0, other sinks at 320 GB/s ==\n");
  for (const auto type : {power::CoolingType::kPassive, power::CoolingType::kLowEndActive,
                          power::CoolingType::kHighEndActive}) {
    thermal::HmcThermalModel m{thermal::hmc20_thermal_config(type)};
    std::printf("%-24s peak DRAM %.1f C\n", power::cooling(type).name.c_str(),
                peak_dram_at(m, ep, op_for_bandwidth(link, 320.0)));
  }

  std::printf("\n== HMC 1.1 module (FPGA co-heater) ==\n");
  const hmc::LinkModel link11{hmc::hmc11_config()};
  struct Case { power::CoolingType type; double bw; const char* label; const char* paper; };
  const Case cases[] = {
      {power::CoolingType::kPassive, 0.0, "passive idle", "71.1 surf"},
      {power::CoolingType::kPassive, 60.0, "passive busy", "85.4 surf (shutdown)"},
      {power::CoolingType::kLowEndActive, 0.0, "low-end idle", "45.3 surf"},
      {power::CoolingType::kLowEndActive, 60.0, "low-end busy", "60.5 surf"},
      {power::CoolingType::kHighEndActive, 0.0, "high-end idle", "40.5 surf"},
      {power::CoolingType::kHighEndActive, 60.0, "high-end busy", "47.3 surf"},
  };
  for (const auto& c : cases) {
    const double fpga_w = c.bw > 0.0 ? 30.0 : 20.0;  // FPGA works harder when driving traffic
    thermal::HmcThermalModel m{thermal::hmc11_thermal_config(c.type, fpga_w)};
    const auto op = op_for_bandwidth(link11, c.bw);
    m.apply_power(power::compute_power(ep, op));
    m.solve_steady();
    std::printf("%-16s surface %.1f C  die %.1f C   (paper: %s)\n", c.label,
                m.surface().value(), m.peak_dram().value(), c.paper);
  }

  // Batched transient-settle cross-check: all anchor operating points march
  // as lanes of one BatchStackModel until equilibrium; the settled peak DRAM
  // must land on the scalar steady-state solve at every point (the batched
  // solver and the Gauss-Seidel solver agree on the same network).
  std::printf("\n== Batched transient settle vs steady (BatchStackModel) ==\n");
  {
    const thermal::HmcThermalConfig tc =
        thermal::hmc20_thermal_config(power::CoolingType::kCommodityServer);
    thermal::HmcThermalModel probe{tc};
    struct BatchCase { const char* label; power::OperatingPoint op; };
    const BatchCase lanes[] = {
        {"idle", op_for_bandwidth(link, 0.0)},
        {"320 GB/s", op_for_bandwidth(link, 320.0)},
        {"PIM 1.3 op/ns", op_for_pim(link, 1.3)},
        {"PIM 6.5 op/ns", op_for_pim(link, 6.5)},
    };
    const std::size_t n_lanes = std::size(lanes);
    thermal::BatchStackModel batch{probe.stack().spec(), n_lanes};
    for (std::size_t v = 0; v < n_lanes; ++v) {
      const power::PowerBreakdown pwr = power::compute_power(ep, lanes[v].op);
      thermal::PowerMap logic =
          thermal::uniform_power(tc.floorplan, pwr.logic_background.value());
      logic.add(thermal::vault_centered_power(tc.floorplan, pwr.logic_dynamic.value(),
                                              tc.vault_spread_cells));
      logic.add(thermal::vault_centered_power(tc.floorplan, pwr.fu.value(), 1));
      batch.set_layer_power(v, 0, logic);
      const double per_die =
          (pwr.dram_dynamic.value() + pwr.dram_background.value()) /
          static_cast<double>(tc.dram_dies);
      const thermal::PowerMap dram = thermal::uniform_power(tc.floorplan, per_die);
      for (std::size_t l = 1; l <= tc.dram_dies; ++l) batch.set_layer_power(v, l, dram);
    }
    batch.reset_to_ambient();
    const std::size_t top = batch.layer_count() - 1;
    // March all lanes together (tau ~1 ms) until the hottest lane stops moving.
    double prev_peak = -1e300;
    for (int i = 0; i < 200; ++i) {
      batch.step(Time::ms(1.0));
      double peak = -1e300;
      for (std::size_t v = 0; v < n_lanes; ++v) {
        peak = std::max(peak, batch.peak_over_layers(v, 1, top).value());
      }
      if (std::abs(peak - prev_peak) < 1e-4) break;
      prev_peak = peak;
    }
    for (std::size_t v = 0; v < n_lanes; ++v) {
      thermal::HmcThermalModel scalar{tc};
      scalar.apply_power(power::compute_power(ep, lanes[v].op));
      scalar.solve_steady();
      const double settled = batch.peak_over_layers(v, 1, top).value();
      const double steady = scalar.peak_dram().value();
      std::printf("%-16s settled %.2f C  steady %.2f C  |diff| %.3f C%s\n", lanes[v].label,
                  settled, steady, std::abs(settled - steady),
                  std::abs(settled - steady) < 0.1 ? "" : "   <-- DISAGREE");
    }
  }
  // Fleet grid-mode derate constant: GridThermalConfig::watts_per_c converts
  // the RC load signal (degC of heat_weighted_ms / epoch_ms) into logic-die
  // watts, so the grid's steady peak-DRAM response lands on the RC model's
  // steady target (ambient + load_c).  The fit is just the reciprocal of the
  // grid's junction-to-ambient resistance, measured the same way the fleet
  // reads the stack: inject 1 W uniform on the logic die, solve steady, take
  // the peak over the DRAM layers.  heat_capacity_scale compresses the time
  // constant only -- the steady response, and hence this fit, is unaffected.
  std::printf("\n== Fleet grid watts_per_c fit (hbm_stack_spec; docs/FLEET.md) ==\n");
  {
    struct GridCase { std::size_t dies, nx, ny; };
    const GridCase grids[] = {{8, 8, 8}, {16, 8, 8}, {8, 16, 16}};
    for (const auto& g : grids) {
      const thermal::StackSpec spec = thermal::hbm_stack_spec(g.dies, g.nx, g.ny);
      thermal::StackModel m{spec};
      m.set_layer_power(0, thermal::uniform_power(spec.floorplan, 1.0));
      m.solve_steady();
      const std::size_t top = m.layer_count() - 1;
      const double r_ja = m.peak_over_layers(1, top).value() - spec.ambient.value();
      const double fit = 1.0 / r_ja;
      // Linearity cross-check: the RC network is linear in power, so a
      // 20 degC load signal through the fitted constant must come back as a
      // 20 degC peak-DRAM rise (up to solver tolerance).
      const double load_c = 20.0;
      m.set_layer_power(0, thermal::uniform_power(spec.floorplan, fit * load_c));
      m.solve_steady();
      const double rise = m.peak_over_layers(1, top).value() - spec.ambient.value();
      std::printf(
          "%2zu dies %2zux%-2zu  R_ja %.4f C/W  watts_per_c %.4f%s  "
          "check: %.0f C load -> %.2f C rise\n",
          g.dies, g.nx, g.ny, r_ja, fit,
          (g.dies == 8 && g.nx == 8 && g.ny == 8) ? "  (shipped default 0.9)" : "",
          load_c, rise);
    }
  }
  return 0;
}
