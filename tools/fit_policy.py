#!/usr/bin/env python3
"""Fit a temperature -> admitted-PIM-fraction policy table offline.

The imitation-learning path to the policy-table controller
(src/control/policy_table.hpp): run the simulator's reactive controllers over
the workload suite with a timeseries sink, then distill what they converged to
into a lookup table the TablePolicy replays directly.

Input is one or more timeseries CSVs as written by sys::write_timeseries_csv
(`coolpim_sim --timeline-csv` / bench sinks), columns:

    workload, scenario, t_ms, pim_rate_op_per_ns, peak_dram_c, link_data_gbps

For every (workload, scenario) trace, the admitted fraction of each sample is
its PIM rate normalized by the trace's own near-peak rate (95th percentile, so
a startup transient does not inflate the reference).  Samples land in uniform
temperature bins; each bin's allowance is the median admitted fraction seen at
that temperature, clamped to [floor, 1].  Empty interior bins inherit their
left neighbor, and the final curve is forced monotone non-increasing -- a
hotter stack must never be granted more offload than a cooler one.

The output is the loader's format (control::load_policy_table): '#' comments,
then uniformly spaced "temp_c,allow" rows.  The checked-in
tools/policy_table_default.csv carries the same curve as the compiled-in
default table.

Usage:
    python3 tools/fit_policy.py [--t-min C] [--t-max C] [--bins N]
        [--floor F] [--out FILE] timeseries.csv [...]
"""

import argparse
import csv
import statistics
import sys


def percentile(values, p):
    ordered = sorted(values)
    if not ordered:
        raise ValueError("no values")
    idx = min(len(ordered) - 1, int(p * (len(ordered) - 1) + 0.5))
    return ordered[idx]


def read_samples(paths):
    """Yield (peak_dram_c, admitted_fraction) over every trace in `paths`."""
    for path in paths:
        traces = {}
        with open(path, newline="", encoding="utf-8") as f:
            reader = csv.DictReader(f)
            required = {"workload", "scenario", "peak_dram_c", "pim_rate_op_per_ns"}
            missing = required - set(reader.fieldnames or [])
            if missing:
                sys.exit(f"fit_policy: {path}: missing columns {sorted(missing)}")
            for row in reader:
                key = (row["workload"], row["scenario"])
                traces.setdefault(key, []).append(
                    (float(row["peak_dram_c"]), float(row["pim_rate_op_per_ns"]))
                )
        for key, rows in traces.items():
            rates = [rate for _, rate in rows]
            reference = percentile(rates, 0.95)
            if reference <= 0.0:
                continue  # a trace that never offloaded teaches nothing
            for temp, rate in rows:
                yield temp, min(1.0, rate / reference)


def fit_table(samples, t_min, t_max, bins, floor):
    width = (t_max - t_min) / bins
    by_bin = [[] for _ in range(bins)]
    for temp, frac in samples:
        idx = int((temp - t_min) / width)
        if 0 <= idx < bins:
            by_bin[idx].append(frac)

    allow = []
    previous = 1.0
    for fractions in by_bin:
        if fractions:
            value = statistics.median(fractions)
        else:
            value = previous  # empty bin: inherit the cooler neighbor
        value = max(floor, min(1.0, value))
        value = min(value, previous)  # monotone non-increasing in temperature
        allow.append(value)
        previous = value
    return width, allow


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("csvs", nargs="+", help="timeseries CSVs to distill")
    ap.add_argument("--t-min", type=float, default=79.0)
    ap.add_argument("--t-max", type=float, default=87.0)
    ap.add_argument("--bins", type=int, default=8)
    ap.add_argument("--floor", type=float, default=0.05)
    ap.add_argument("--out", default="policy_table.csv")
    args = ap.parse_args()
    if args.bins < 1 or args.t_max <= args.t_min:
        sys.exit("fit_policy: need bins >= 1 and t_max > t_min")
    if not 0.0 < args.floor <= 1.0:
        sys.exit("fit_policy: floor must be in (0, 1]")

    samples = list(read_samples(args.csvs))
    if not samples:
        sys.exit("fit_policy: no usable samples in the input traces")
    width, allow = fit_table(samples, args.t_min, args.t_max, args.bins, args.floor)

    with open(args.out, "w", encoding="utf-8") as f:
        f.write("# temperature -> admitted PIM fraction, fitted by tools/fit_policy.py\n")
        f.write(f"# {len(samples)} samples from: {', '.join(args.csvs)}\n")
        f.write("# temp_c,allow\n")
        for i, value in enumerate(allow):
            f.write(f"{args.t_min + i * width:.6g},{value:.6g}\n")
    print(f"fit_policy: wrote {args.bins} bins [{args.t_min}, {args.t_max}) C to {args.out}")


if __name__ == "__main__":
    main()
