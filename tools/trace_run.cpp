// Development tool: trace one run.
//
// Prints the per-epoch temperature/PIM-rate timeline and, when given output
// paths, records the run through the obs subsystem:
//
//   trace_run [scale] [workload] [scenario-idx] [trace.json] [counters.csv]
//
// The trace JSON loads in chrome://tracing / Perfetto; both schemas are
// documented in docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/observer.hpp"
#include "sys/system.hpp"

using namespace coolpim;

int main(int argc, char** argv) {
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 18;
  const std::string wl_name = argc > 2 ? argv[2] : "dc";
  const int scen_idx = argc > 3 ? std::atoi(argv[3]) : 1;  // naive
  const std::string trace_path = argc > 4 ? argv[4] : "";
  const std::string counters_path = argc > 5 ? argv[5] : "";

  sys::WorkloadSet set{scale};
  sys::SystemConfig cfg;
  cfg.scenario = sys::kAllScenarios[scen_idx];
  obs::RunObserver observer;
  if (!trace_path.empty() || !counters_path.empty()) cfg.observer = &observer;
  sys::System system{cfg};
  const auto r = system.run(set.profile(wl_name));

  std::printf("start=%.1fC peak=%.1fC exec=%.2fms warn=%llu\n", r.start_dram_temp.value(),
              r.peak_dram_temp.value(), r.exec_time.as_ms(),
              static_cast<unsigned long long>(r.thermal_warnings));
  for (std::size_t i = 0; i < r.dram_temp.size(); i += 10) {
    std::printf("t=%7.3fms  T=%5.1fC  pim=%4.2f op/ns  bw=%6.1f GB/s\n",
                r.dram_temp.time_at(i).as_ms(), r.dram_temp.value_at(i),
                r.pim_rate.value_at(i), r.link_bw.value_at(i));
  }

  if (!trace_path.empty()) {
    std::ofstream out{trace_path};
    obs::TraceTrack track{0, r.workload + " / " + r.scenario, &observer.trace_buffer};
    obs::write_chrome_trace(out, {track});
    std::printf("trace: %s (%zu events)\n", trace_path.c_str(), observer.trace_buffer.size());
  }
  if (!counters_path.empty()) {
    std::ofstream out{counters_path};
    for (const auto& [name, value] : observer.counters.snapshot()) {
      out << name << "," << value << "\n";
    }
    std::printf("counters: %s\n", counters_path.c_str());
  }
  return 0;
}
