// Development tool: trace per-epoch temperature/PIM-rate of one run.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sys/system.hpp"

using namespace coolpim;

int main(int argc, char** argv) {
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 18;
  const std::string wl_name = argc > 2 ? argv[2] : "dc";
  const int scen_idx = argc > 3 ? std::atoi(argv[3]) : 1;  // naive

  sys::WorkloadSet set{scale};
  sys::SystemConfig cfg;
  cfg.scenario = sys::kAllScenarios[scen_idx];
  sys::System system{cfg};
  const auto r = system.run(set.profile(wl_name));

  std::printf("start=%.1fC peak=%.1fC exec=%.2fms warn=%llu\n", r.start_dram_temp.value(),
              r.peak_dram_temp.value(), r.exec_time.as_ms(),
              static_cast<unsigned long long>(r.thermal_warnings));
  for (std::size_t i = 0; i < r.dram_temp.size(); i += 10) {
    std::printf("t=%7.3fms  T=%5.1fC  pim=%4.2f op/ns  bw=%6.1f GB/s\n",
                r.dram_temp.time_at(i).as_ms(), r.dram_temp.value_at(i),
                r.pim_rate.value_at(i), r.link_bw.value_at(i));
  }
  return 0;
}
