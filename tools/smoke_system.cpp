// Development smoke test: run a few workloads through all six scenarios and
// print Fig. 10/12/13-style numbers for calibration.
#include <cstdio>
#include <cstdlib>

#include "sys/system.hpp"

using namespace coolpim;

int main(int argc, char** argv) {
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  std::printf("building workload set at scale %u...\n", scale);
  sys::WorkloadSet set{scale};
  std::printf("graph: %u vertices, %llu edges\n", set.graph().num_vertices(),
              static_cast<unsigned long long>(set.graph().num_edges()));

  for (const auto& name : sys::workload_names()) {
    const auto& wl = set.profile(name);
    std::printf("\n%-9s iters=%zu atomics=%llu intensity=%.3f div=%.2f\n", name.c_str(),
                wl.iterations.size(), static_cast<unsigned long long>(wl.total_atomics()),
                wl.pim_intensity(), wl.divergence_ratio());
    double base_ms = 0.0, base_bytes = 0.0;
    for (const auto scen : sys::kAllScenarios) {
      sys::SystemConfig cfg;
      cfg.scenario = scen;
      sys::System system{cfg};
      sys::RunResult r;
      try {
        r = system.run(wl);
      } catch (const std::exception& e) {
        std::printf("  %-18s EXCEPTION: %s\n", std::string(to_string(scen)).c_str(), e.what());
        continue;
      }
      if (scen == sys::Scenario::kNonOffloading) {
        base_ms = r.exec_time.as_ms();
        base_bytes = r.consumption_bytes();
      }
      std::printf(
          "  %-18s exec %7.2f ms  speedup %5.2f  bw %6.1f GB/s  norm-bw %4.2f  "
          "pim %4.2f op/ns  peak %5.1f C  warn %llu%s\n",
          r.scenario.c_str(), r.exec_time.as_ms(),
          base_ms > 0 ? base_ms / r.exec_time.as_ms() : 1.0, r.avg_link_data_gbps(),
          base_bytes > 0 ? r.consumption_bytes() / base_bytes : 1.0,
          r.avg_pim_rate_op_per_ns(), r.peak_dram_temp.value(),
          static_cast<unsigned long long>(r.thermal_warnings), r.shut_down ? "  SHUTDOWN" : "");
    }
  }
  return 0;
}
