#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace.

Checks, with only the stdlib:
  * the file parses as JSON with the expected top-level shape,
  * begin/end spans nest correctly per (pid, tid) track,
  * every event carries the required fields for its phase,
  * (optionally) a set of categories is present: pass them as extra args.

Usage:
    python3 tools/check_trace.py trace.json [expected-category ...]
"""

import json
import sys
from collections import defaultdict

REQUIRED = {
    "B": ("ts", "cat", "name"),
    "E": ("ts",),
    "X": ("ts", "dur", "cat", "name"),
    "i": ("ts", "cat", "name"),
    "C": ("ts", "cat", "name", "args"),
    "M": ("name", "args"),
}


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        fail(f"usage: {argv[0]} trace.json [expected-category ...]")
    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is empty")

    open_spans = defaultdict(list)
    categories = set()
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in REQUIRED:
            fail(f"event {i}: unknown phase {ph!r}")
        for field in REQUIRED[ph]:
            if field not in e:
                fail(f"event {i} ({ph} {e.get('name', '?')}): missing {field!r}")
        if e.get("cat"):
            categories.add(e["cat"])
        track = (e.get("pid", 0), e.get("tid", 0))
        if ph == "B":
            open_spans[track].append((e["name"], e["ts"]))
        elif ph == "E":
            if not open_spans[track]:
                fail(f"event {i}: E with no open span on track {track}")
            name, begin_ts = open_spans[track].pop()
            if e["ts"] < begin_ts:
                fail(f"event {i}: span {name!r} ends before it begins")

    for track, spans in open_spans.items():
        if spans:
            fail(f"track {track}: {len(spans)} span(s) never closed: {spans}")

    missing = [c for c in argv[2:] if c not in categories]
    if missing:
        fail(f"missing categories {missing}; present: {sorted(categories)}")

    print(
        f"ok: {len(events)} events, categories: {', '.join(sorted(categories))}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
