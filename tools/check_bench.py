#!/usr/bin/env python3
"""Validate BENCH_*.json files emitted by the perf harness.

Schema check by default -- no performance thresholds.  CI runs the perf
binaries at --quick scale and uploads the JSONs as artifacts; this script
guards the contract that downstream tooling (and humans diffing artifacts
across PRs) relies on: the schema tag, the required keys, their types, and
that every number is finite and non-negative.

With --baseline-dir DIR (the repo commits bench/baselines/), each file is
additionally compared against the committed baseline of the same schema:
every throughput-style metric (higher-is-better rates and speedups) that
regressed by more than --regress-pct (default 20) is reported.  Regressions
WARN by default -- perf varies across machines, so the baselines make
BENCH_*.json trajectories actionable without gating CI on hardware -- and
fail the run only under --strict.

Usage:
    python3 tools/check_bench.py BENCH_thermal.json [BENCH_sim.json ...]
    python3 tools/check_bench.py --baseline-dir bench/baselines BENCH_sim.json
"""

import argparse
import glob
import json
import math
import os
import sys

NUM = (int, float)

# schema tag -> {key path: expected type(s)}.  A trailing "[]" walks every
# element of an array.
SCHEMAS = {
    "coolpim-bench-thermal/2": {
        "quick": bool,
        "transient.nodes": NUM,
        "transient.substeps_per_step": NUM,
        "transient.fast_steps_timed": NUM,
        "transient.reference_steps_timed": NUM,
        "transient.fast_ns_per_cell_substep": NUM,
        "transient.reference_ns_per_cell_substep": NUM,
        "transient.speedup": NUM,
        "transient.bit_identical": bool,
        "steady.points_per_sweep": NUM,
        "steady.cold_iterations": NUM,
        "steady.warm_iterations": NUM,
        "steady.iteration_reduction": NUM,
        "steady.cold_ms": NUM,
        "steady.warm_ms": NUM,
        "batch.nodes": NUM,
        "batch.substeps_per_step": NUM,
        "batch.b1_ns_per_lane_cell_substep": NUM,
        "batch.b1_cells_substeps_per_sec": NUM,
        "batch.b8_ns_per_lane_cell_substep": NUM,
        "batch.b8_cells_substeps_per_sec": NUM,
        "batch.b64_ns_per_lane_cell_substep": NUM,
        "batch.b64_cells_substeps_per_sec": NUM,
        "batch.speedup_b64_vs_b1": NUM,
        "batch.bit_identical": bool,
        "tall_stack.layers": NUM,
        "tall_stack.nodes": NUM,
        "tall_stack.explicit_stable_dt_us": NUM,
        "tall_stack.explicit_substeps_per_step": NUM,
        "tall_stack.adi_substeps_per_step": NUM,
        "tall_stack.explicit_ms": NUM,
        "tall_stack.adi_ms": NUM,
        "tall_stack.speedup": NUM,
        "tall_stack.max_abs_error_k": NUM,
        "tall_stack.tolerance_k": NUM,
        "tall_stack.within_tolerance": bool,
    },
    "coolpim-bench-graph/1": {
        "quick": bool,
        "scale": NUM,
        "jobs": NUM,
        "construction.workloads": NUM,
        "construction.serial_ms": NUM,
        "construction.parallel_ms": NUM,
        "construction.speedup": NUM,
        "construction.profiles_bit_identical": bool,
        "cache.cold_ms": NUM,
        "cache.warm_ms": NUM,
        "cache.warm_speedup_vs_serial": NUM,
        "cache.cold_hits": NUM,
        "cache.cold_misses": NUM,
        "cache.cold_computed": NUM,
        "cache.cold_stored": bool,
        "cache.warm_hits": NUM,
        "cache.warm_misses": NUM,
        "cache.warm_computed": NUM,
        "cache.warm_all_hits": bool,
        "csr.serial_ms": NUM,
        "csr.parallel_ms": NUM,
        "csr.speedup": NUM,
        "csr.bit_identical": bool,
    },
    "coolpim-bench-resilience/1": {
        "quick": bool,
        "scale": NUM,
        "workload": str,
        "threshold_c": NUM,
        "workload_build_ms": NUM,
        "sweep_wall_ms": NUM,
        "drop_sweep[].scenario": str,
        "drop_sweep[].drop_rate": NUM,
        "drop_sweep[].noise_sigma_c": NUM,
        "drop_sweep[].peak_dram_c": NUM,
        "drop_sweep[].exec_ms": NUM,
        "drop_sweep[].warnings_delivered": NUM,
        "drop_sweep[].warnings_dropped": NUM,
        "drop_sweep[].watchdog_engagements": NUM,
        "noise_sweep[].scenario": str,
        "noise_sweep[].noise_sigma_c": NUM,
        "noise_sweep[].peak_dram_c": NUM,
        "gate.max_peak_dram_c": NUM,
        "gate.all_below_threshold": bool,
        "gate.watchdog_engaged_at_full_drop": bool,
        "gate.pass": bool,
    },
    "coolpim-bench-pareto/1": {
        "quick": bool,
        "scale": NUM,
        "threshold_c": NUM,
        "workload_build_ms": NUM,
        "sweep_wall_ms": NUM,
        "runs[].workload": str,
        "runs[].policy": str,
        "runs[].scenario": str,
        "runs[].exec_ms": NUM,
        "runs[].speedup": NUM,
        "runs[].peak_dram_c": NUM,
        "runs[].warnings": NUM,
        "policies[].policy": str,
        "policies[].geomean_speedup": NUM,
        "policies[].max_peak_dram_c": NUM,
        "policies[].total_warnings": NUM,
        "gate.mpc_max_peak_dram_c": NUM,
        "gate.mpc_geomean_speedup": NUM,
        "gate.reactive_geomean_speedup": NUM,
        "gate.peak_under_threshold": bool,
        "gate.throughput_at_least_reactive": bool,
        "gate.pass": bool,
    },
    "coolpim-bench-fleet/1": {
        "quick": bool,
        "nodes": NUM,
        "duration_ms": NUM,
        "arrival_rate_per_s": NUM,
        "rack_spread_c": NUM,
        "ceiling_c": NUM,
        "balancers[].balancer": str,
        "balancers[].wall_ms": NUM,
        "balancers[].arrived": NUM,
        "balancers[].served": NUM,
        "balancers[].shed": NUM,
        "balancers[].deferrals": NUM,
        "balancers[].p50_latency_ms": NUM,
        "balancers[].p99_latency_ms": NUM,
        "balancers[].agg_op_per_ns": NUM,
        "balancers[].max_node_peak_c": NUM,
        "balancers[].total_warnings": NUM,
        "balancers[].nodes[].index": NUM,
        "balancers[].nodes[].served": NUM,
        "balancers[].nodes[].warnings": NUM,
        "balancers[].nodes[].peak_c": NUM,
        "balancers[].nodes[].busy_ms": NUM,
        "gate.thermal_aware_max_peak_c": NUM,
        "gate.round_robin_max_peak_c": NUM,
        "gate.jsq_p99_latency_ms": NUM,
        "gate.thermal_aware_p99_latency_ms": NUM,
        "gate.thermal_aware_all_below_ceiling": bool,
        "gate.round_robin_exceeds_ceiling": bool,
        "gate.p99_within_factor_of_jsq": bool,
        "gate.jobs_bit_identical": bool,
        "gate.pass": bool,
    },
    "coolpim-bench-sim/3": {
        "quick": bool,
        "queue.events": NUM,
        "queue.wall_ms": NUM,
        "queue.events_per_sec": NUM,
        "queue.ns_per_event": NUM,
        "periodic.events": NUM,
        "periodic.wall_ms": NUM,
        "periodic.events_per_sec": NUM,
        "periodic.ns_per_event": NUM,
        "end_to_end.scale": NUM,
        "end_to_end.workload_build_ms": NUM,
        "end_to_end.total_wall_ms": NUM,
        "end_to_end.runs[].workload": str,
        "end_to_end.runs[].scenario": str,
        "end_to_end.runs[].wall_ms": NUM,
        "end_to_end.runs[].sim_time_ms": NUM,
        "end_to_end.runs[].peak_dram_c": NUM,
        "sweep_batch.experiments": NUM,
        "sweep_batch.scalar_wall_ms": NUM,
        "sweep_batch.b1_wall_ms": NUM,
        "sweep_batch.b8_wall_ms": NUM,
        "sweep_batch.b1_sweep_wall_ms": NUM,
        "sweep_batch.b8_sweep_wall_ms": NUM,
        "sweep_batch.b1_sweep_rounds": NUM,
        "sweep_batch.b8_sweep_rounds": NUM,
        "sweep_batch.epochs": NUM,
        "sweep_batch.sweep_speedup_b8_vs_b1": NUM,
        "sweep_batch.bit_identical": bool,
        "sweep_batch.gate_pass": bool,
        "backend.xval_epochs": NUM,
        "backend.xval_tolerance": NUM,
        "backend.xval[].kernel": str,
        "backend.xval[].epoch_op_per_ns": NUM,
        "backend.xval[].pim_op_per_ns": NUM,
        "backend.xval[].ratio": NUM,
        "backend.xval[].pass": bool,
        "backend.epoch_throughput_ns_per_epoch": NUM,
        "backend.event_detailed_ns_per_epoch": NUM,
        "backend.pim_vault_ns_per_epoch": NUM,
        "backend.gate_pass": bool,
    },
}

# Baseline comparison (--baseline-dir): throughput-style metrics where HIGHER
# is better.  A current value more than --regress-pct below the committed
# baseline's is a regression.  Wall-clock keys are deliberately absent --
# they swing with machine load and scale flags; rates and speedup ratios are
# the stable signal.
THROUGHPUT_KEYS = {
    "coolpim-bench-thermal/2": [
        "transient.speedup",
        "steady.iteration_reduction",
        "batch.b1_cells_substeps_per_sec",
        "batch.b8_cells_substeps_per_sec",
        "batch.b64_cells_substeps_per_sec",
        "batch.speedup_b64_vs_b1",
        "tall_stack.speedup",
    ],
    "coolpim-bench-graph/1": [
        "construction.speedup",
        "cache.warm_speedup_vs_serial",
        "csr.speedup",
    ],
    "coolpim-bench-sim/3": [
        "queue.events_per_sec",
        "periodic.events_per_sec",
        "sweep_batch.sweep_speedup_b8_vs_b1",
    ],
}


def fail(msg):
    print(f"check_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def lookup(doc, path, where):
    """Yield (location, value) for a dotted path; "[]" fans out over arrays."""
    head, _, rest = path.partition(".")
    if head.endswith("[]"):
        arr = doc.get(head[:-2])
        if not isinstance(arr, list):
            fail(f"{where}: '{head[:-2]}' must be an array")
        if not arr:
            fail(f"{where}: array '{head[:-2]}' must not be empty")
        for i, elem in enumerate(arr):
            if not isinstance(elem, dict):
                fail(f"{where}: '{head[:-2]}[{i}]' must be an object")
            yield from lookup(elem, rest, f"{where} [{i}]")
        return
    if not isinstance(doc, dict) or head not in doc:
        fail(f"{where}: missing key '{head}'")
    if rest:
        yield from lookup(doc[head], rest, where)
    else:
        yield f"{where}:{head}", doc[head]


def check_file(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")

    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    schema = doc.get("schema")
    keys = SCHEMAS.get(schema)
    if keys is None:
        known = ", ".join(sorted(SCHEMAS))
        fail(f"{path}: unknown schema tag {schema!r} (known: {known})")

    for key, expected in keys.items():
        for where, value in lookup(doc, key, path):
            # bool is an int subclass; keep the check strict.
            if isinstance(value, bool) and expected is not bool:
                fail(f"{where}: expected a number, got a bool")
            if not isinstance(value, expected):
                fail(f"{where}: expected {expected}, got {type(value).__name__}")
            if isinstance(value, NUM) and not isinstance(value, bool):
                if not math.isfinite(value):
                    fail(f"{where}: value must be finite, got {value}")
                if value < 0:
                    fail(f"{where}: value must be non-negative, got {value}")
    print(f"check_bench: {path} OK ({schema})")
    return doc, schema


def load_baseline(baseline_dir, schema, path):
    """Find the committed baseline with the same schema tag, or None."""
    for candidate in sorted(glob.glob(os.path.join(baseline_dir, "*.json"))):
        with open(candidate, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{candidate}: baseline is not valid JSON: {e}")
        if isinstance(doc, dict) and doc.get("schema") == schema:
            return doc, candidate
    print(f"check_bench: {path}: no baseline for {schema} in {baseline_dir} (skipped)")
    return None, None


def scalar_value(doc, dotted):
    """Walk a dotted path of plain keys (no [] fan-out); None if absent."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare_to_baseline(doc, schema, path, baseline_dir, regress_pct):
    base, base_path = load_baseline(baseline_dir, schema, path)
    if base is None:
        return []
    regressions = []
    for key in THROUGHPUT_KEYS.get(schema, []):
        ref = scalar_value(base, key)
        cur = scalar_value(doc, key)
        if not isinstance(ref, NUM) or isinstance(ref, bool) or ref <= 0:
            continue
        if not isinstance(cur, NUM) or isinstance(cur, bool):
            fail(f"{path}: '{key}' present in baseline {base_path} but not here")
        drop_pct = 100.0 * (ref - cur) / ref
        if drop_pct > regress_pct:
            regressions.append((key, ref, cur, drop_pct))
    if regressions:
        for key, ref, cur, drop_pct in regressions:
            print(
                f"check_bench: WARNING {path}: {key} regressed {drop_pct:.1f}% "
                f"vs {base_path} ({ref:g} -> {cur:g})",
                file=sys.stderr,
            )
    else:
        print(f"check_bench: {path} within {regress_pct:g}% of {base_path}")
    return regressions


def main(argv):
    parser = argparse.ArgumentParser(
        description="Schema-check BENCH_*.json files; optionally compare "
        "throughput metrics against committed baselines."
    )
    parser.add_argument("files", nargs="+", metavar="BENCH_file.json")
    parser.add_argument(
        "--baseline-dir",
        help="directory of committed baseline JSONs (e.g. bench/baselines); "
        "matched to each file by schema tag",
    )
    parser.add_argument(
        "--regress-pct",
        type=float,
        default=20.0,
        help="warn when a throughput metric drops more than this percent "
        "below its baseline (default 20)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on baseline regressions instead of warning",
    )
    args = parser.parse_args(argv[1:])

    any_regressed = False
    for path in args.files:
        doc, schema = check_file(path)
        if args.baseline_dir:
            regressed = compare_to_baseline(
                doc, schema, path, args.baseline_dir, args.regress_pct
            )
            any_regressed = any_regressed or bool(regressed)
    if any_regressed and args.strict:
        fail("baseline regressions found (--strict)")


if __name__ == "__main__":
    main(sys.argv)
