// Exported counter/gauge/category name constants -- the single source of
// truth for the observability namespace.
//
// Every name the simulator emits through obs::CounterRegistry or obs::Trace
// is declared here, so emission sites, benches and tests share one vocabulary
// instead of hard-coding strings.  The catalogue arrays at the bottom are
// pinned against docs/OBSERVABILITY.md by a DocsHeaderColumnSync-style test
// (tests/test_obs.cpp): adding a name here without documenting it -- or
// documenting a name that no longer exists -- fails the build's test suite.
//
// Naming scheme: slash-separated paths whose first segment is the owning
// subsystem (the same vocabulary the trace `cat` field uses).
#pragma once

#include <string_view>

namespace coolpim::obs::names {

// ---- Trace categories (one per instrumented subsystem) ---------------------
inline constexpr std::string_view kCatSim = "sim";
inline constexpr std::string_view kCatThermal = "thermal";
inline constexpr std::string_view kCatCore = "core";
inline constexpr std::string_view kCatHmc = "hmc";
inline constexpr std::string_view kCatGpu = "gpu";
inline constexpr std::string_view kCatSys = "sys";
inline constexpr std::string_view kCatRunner = "runner";
inline constexpr std::string_view kCatFault = "fault";
inline constexpr std::string_view kCatControl = "control";
inline constexpr std::string_view kCatFleet = "fleet";
inline constexpr std::string_view kCatPim = "pim";

// ---- Counters (monotonic event tallies) ------------------------------------
// sim
inline constexpr std::string_view kSimEventsDispatched = "sim/events_dispatched";
// sys
inline constexpr std::string_view kSysEpochs = "sys/epochs";
inline constexpr std::string_view kSysShutdowns = "sys/shutdowns";
inline constexpr std::string_view kSysThermalWarningsDelivered =
    "sys/thermal_warnings_delivered";
// hmc
inline constexpr std::string_view kHmcRequests = "hmc/requests";
inline constexpr std::string_view kHmcReqFlits = "hmc/req_flits";
inline constexpr std::string_view kHmcRespFlits = "hmc/resp_flits";
inline constexpr std::string_view kHmcPayloadBytes = "hmc/payload_bytes";
inline constexpr std::string_view kHmcThermalWarnings = "hmc/thermal_warnings";
inline constexpr std::string_view kHmcServedReads = "hmc/served_reads";
inline constexpr std::string_view kHmcServedWrites = "hmc/served_writes";
inline constexpr std::string_view kHmcServedPimOps = "hmc/served_pim_ops";
// gpu
inline constexpr std::string_view kGpuKernelLaunches = "gpu/kernel_launches";
inline constexpr std::string_view kGpuBlocksRetired = "gpu/blocks_retired";
inline constexpr std::string_view kGpuPimOps = "gpu/pim_ops";
inline constexpr std::string_view kGpuHostAtomics = "gpu/host_atomics";
// thermal
inline constexpr std::string_view kThermalSteadySolves = "thermal/steady_solves";
inline constexpr std::string_view kThermalSteadyIterations = "thermal/steady_iterations";
inline constexpr std::string_view kThermalSteps = "thermal/steps";
inline constexpr std::string_view kThermalWarningCrossings = "thermal/warning_crossings";
// Batched solver (BatchStackModel): lanes advanced per step() call, explicit
// sweep passes and ADI passes performed (each pass covers every lane).
inline constexpr std::string_view kThermalBatchLanes = "thermal/batch_lanes";
inline constexpr std::string_view kThermalBatchSweeps = "thermal/batch_sweep_passes";
inline constexpr std::string_view kThermalBatchAdiSolves = "thermal/batch_adi_solves";
// runner (batched sweep executor, runner/sweep_batch.hpp): tasks completed
// through the lock-step path and thermal-step yields answered per task.  Both
// record per-run-invariant values only, so the per-task counter files stay
// byte-identical at any --jobs count.
inline constexpr std::string_view kRunnerSweepBatchTasks = "runner/sweep_batch_tasks";
inline constexpr std::string_view kRunnerSweepBatchEpochs = "runner/sweep_batch_epochs";
// graph (workload profiling)
inline constexpr std::string_view kGraphProfileCacheHits = "graph/profile_cache_hits";
inline constexpr std::string_view kGraphProfileCacheMisses = "graph/profile_cache_misses";
inline constexpr std::string_view kGraphProfilesComputed = "graph/profiles_computed";
// fault (injection layer; only emitted when the fault layer is enabled)
inline constexpr std::string_view kFaultWarningsOffered = "fault/warnings_offered";
inline constexpr std::string_view kFaultWarningsDropped = "fault/warnings_dropped";
inline constexpr std::string_view kFaultWarningsCorrupted = "fault/warnings_corrupted";
inline constexpr std::string_view kFaultWarningsDelayed = "fault/warnings_delayed";
inline constexpr std::string_view kFaultWarningsLostOutage = "fault/warnings_lost_outage";
inline constexpr std::string_view kFaultRetries = "fault/retries";
inline constexpr std::string_view kFaultRetryGiveups = "fault/retry_giveups";
inline constexpr std::string_view kFaultSpuriousWarnings = "fault/spurious_warnings";
inline constexpr std::string_view kFaultLinkOutages = "fault/link_outages";
inline constexpr std::string_view kFaultSensorStuckEpochs = "fault/sensor_stuck_epochs";
inline constexpr std::string_view kFaultWatchdogEngagements = "fault/watchdog_engagements";
inline constexpr std::string_view kFaultWatchdogDisengagements =
    "fault/watchdog_disengagements";
// control (policy zoo; emitted by predictive policies)
inline constexpr std::string_view kControlLevelChanges = "control/level_changes";
inline constexpr std::string_view kControlMpcRollouts = "control/mpc_rollouts";
inline constexpr std::string_view kControlTableClamps = "control/table_clamps";
// fleet (multi-node tier; emitted by fleet::run_fleet)
inline constexpr std::string_view kFleetRequestsArrived = "fleet/requests_arrived";
inline constexpr std::string_view kFleetRequestsServed = "fleet/requests_served";
inline constexpr std::string_view kFleetRequestsShed = "fleet/requests_shed";
inline constexpr std::string_view kFleetRequestsDeferred = "fleet/requests_deferred";
inline constexpr std::string_view kFleetNodeWarnings = "fleet/node_warnings";
// pim (instruction-level vault backend; emitted under --hmc-backend pim-vault)
inline constexpr std::string_view kPimProgramExecutions = "pim/program_executions";
inline constexpr std::string_view kPimCrfInstructions = "pim/crf_instructions";
inline constexpr std::string_view kPimBankConflicts = "pim/bank_conflicts";

// ---- Gauges (sampled instantaneous values) ---------------------------------
inline constexpr std::string_view kGpuPimFraction = "gpu/pim_fraction";
inline constexpr std::string_view kThermalPeakDramC = "thermal/peak_dram_c";
inline constexpr std::string_view kThermalPeakLogicC = "thermal/peak_logic_c";
inline constexpr std::string_view kSysPimRateGops = "sys/pim_rate_gops";
inline constexpr std::string_view kSysLinkDataGbps = "sys/link_data_gbps";
inline constexpr std::string_view kControlThrottleLevel = "control/throttle_level";
inline constexpr std::string_view kRunnerSweepBatchLanes = "runner/sweep_batch_lanes";
inline constexpr std::string_view kFleetP50LatencyMs = "fleet/p50_latency_ms";
inline constexpr std::string_view kFleetP99LatencyMs = "fleet/p99_latency_ms";
inline constexpr std::string_view kFleetMaxNodePeakC = "fleet/max_node_peak_c";
inline constexpr std::string_view kFleetAggOpPerNs = "fleet/agg_op_per_ns";

// ---- Catalogues (docs-sync anchors) ----------------------------------------
inline constexpr std::string_view kAllCategories[] = {
    kCatSim, kCatThermal, kCatCore, kCatHmc, kCatGpu, kCatSys, kCatRunner, kCatFault,
    kCatControl, kCatFleet, kCatPim,
};

inline constexpr std::string_view kAllCounters[] = {
    kSimEventsDispatched,
    kSysEpochs,
    kSysShutdowns,
    kSysThermalWarningsDelivered,
    kHmcRequests,
    kHmcReqFlits,
    kHmcRespFlits,
    kHmcPayloadBytes,
    kHmcThermalWarnings,
    kHmcServedReads,
    kHmcServedWrites,
    kHmcServedPimOps,
    kGpuKernelLaunches,
    kGpuBlocksRetired,
    kGpuPimOps,
    kGpuHostAtomics,
    kThermalSteadySolves,
    kThermalSteadyIterations,
    kThermalSteps,
    kThermalWarningCrossings,
    kThermalBatchLanes,
    kThermalBatchSweeps,
    kThermalBatchAdiSolves,
    kRunnerSweepBatchTasks,
    kRunnerSweepBatchEpochs,
    kGraphProfileCacheHits,
    kGraphProfileCacheMisses,
    kGraphProfilesComputed,
    kFaultWarningsOffered,
    kFaultWarningsDropped,
    kFaultWarningsCorrupted,
    kFaultWarningsDelayed,
    kFaultWarningsLostOutage,
    kFaultRetries,
    kFaultRetryGiveups,
    kFaultSpuriousWarnings,
    kFaultLinkOutages,
    kFaultSensorStuckEpochs,
    kFaultWatchdogEngagements,
    kFaultWatchdogDisengagements,
    kControlLevelChanges,
    kControlMpcRollouts,
    kControlTableClamps,
    kFleetRequestsArrived,
    kFleetRequestsServed,
    kFleetRequestsShed,
    kFleetRequestsDeferred,
    kFleetNodeWarnings,
    kPimProgramExecutions,
    kPimCrfInstructions,
    kPimBankConflicts,
};

inline constexpr std::string_view kAllGauges[] = {
    kGpuPimFraction,    kThermalPeakDramC,  kThermalPeakLogicC, kSysPimRateGops,
    kSysLinkDataGbps,   kControlThrottleLevel,  kRunnerSweepBatchLanes,
    kFleetP50LatencyMs, kFleetP99LatencyMs, kFleetMaxNodePeakC, kFleetAggOpPerNs,
};

}  // namespace coolpim::obs::names
