// Observation contexts: per-run and per-sweep bundles of trace + counters.
//
// A RunObserver is owned by exactly one simulation run (single-threaded, like
// Logger/StatSet).  A SweepObserver owns one RunObserver per parallel-runner
// task, allocated at *submission* time on the submitting thread, so worker
// threads never share observation state and the merged output files are a
// pure function of submission order -- byte-identical at any --jobs value.
//
// Output formats:
//  * write_trace()        -- Chrome trace_event JSON (chrome://tracing,
//                            Perfetto "Open trace file").
//  * write_counters_csv() -- long format, one row per (task, mark, entry):
//                            task,workload,scenario,t_ms,kind,counter,value
//                            with a final end-of-run snapshot per task.
// Both schemas are documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace coolpim::obs {

/// Everything one simulation run records: a trace buffer plus a counter
/// registry.  Attach to a run via sys::SystemConfig::observer.
struct RunObserver {
  TraceBuffer trace_buffer;
  CounterRegistry counters;

  [[nodiscard]] Trace trace() { return Trace{&trace_buffer}; }
};

/// Sweep-level collector handed to runner::RunOptions::obs.  Thread-safety
/// contract: add_task() is called from the submitting thread (the runner's
/// submission loop is sequential); each TaskRecord is then touched only by
/// the worker that runs the task; the write_* methods are called after the
/// sweep completes.
class SweepObserver {
 public:
  struct TaskRecord {
    std::uint32_t index{0};
    std::string workload;
    std::string scenario;
    std::uint64_t key{0};   // runner experiment key (stable task identity)
    std::uint64_t seed{0};  // RNG seed derived from the key
    bool cache_hit{false};
    Time exec_time{Time::zero()};
    RunObserver obs;
  };

  SweepObserver() = default;
  SweepObserver(bool want_trace, bool want_counters)
      : want_trace_{want_trace}, want_counters_{want_counters} {}

  [[nodiscard]] bool trace_enabled() const { return want_trace_; }
  [[nodiscard]] bool counters_enabled() const { return want_counters_; }

  /// Register the next task; the returned record stays valid for the
  /// observer's lifetime (deque storage, no reallocation of elements).
  TaskRecord* add_task(std::string workload, std::string scenario);

  [[nodiscard]] std::size_t task_count() const;

  void write_trace(std::ostream& os) const;
  void write_counters_csv(std::ostream& os) const;

 private:
  bool want_trace_{true};
  bool want_counters_{true};
  mutable std::mutex mu_;
  std::deque<TaskRecord> tasks_;
};

}  // namespace coolpim::obs
