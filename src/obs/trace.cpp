#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace coolpim::obs {

namespace {

/// Deterministic shortest-ish rendering for numeric argument values: %.9g is
/// locale-independent and stable across platforms for the magnitudes the
/// simulator produces.
std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Timestamps: simulated picoseconds -> the format's microsecond floats.
/// Fixed three decimals (nanosecond resolution) keeps the output byte-stable.
std::string format_ts(Time t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", t.as_us());
  return buf;
}

void write_args(std::ostream& os, const TraceArgs& args) {
  os << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(args[i].key) << "\":";
    if (args[i].number) os << args[i].value;
    else os << '"' << json_escape(args[i].value) << '"';
  }
  os << '}';
}

void write_event(std::ostream& os, std::uint32_t pid, const TraceEvent& e) {
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"" << json_escape(e.cat)
     << "\",\"ph\":\"" << e.phase << "\",\"ts\":" << format_ts(e.ts) << ",\"pid\":" << pid
     << ",\"tid\":0";
  if (e.phase == 'X') os << ",\"dur\":" << format_ts(e.dur);
  if (e.phase == 'i') os << ",\"s\":\"p\"";  // process-scoped instant
  os << ',';
  if (e.phase == 'C') {
    // Counter events carry their value as the single argument.
    COOLPIM_ASSERT(e.args.size() == 1);
    write_args(os, e.args);
  } else {
    write_args(os, e.args);
  }
  os << '}';
}

}  // namespace

TraceArg::TraceArg(std::string k, double v)
    : key{std::move(k)}, value{format_double(v)}, number{true} {}

TraceArg::TraceArg(std::string k, std::uint64_t v) : key{std::move(k)}, number{true} {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  value = buf;
}

TraceArg::TraceArg(std::string k, std::int64_t v) : key{std::move(k)}, number{true} {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  value = buf;
}

void TraceBuffer::begin(Time ts, std::string_view cat, std::string_view name, TraceArgs args) {
  events_.push_back(TraceEvent{'B', ts, Time::zero(), std::string{cat}, std::string{name},
                               std::move(args)});
  ++open_;
}

void TraceBuffer::end(Time ts) {
  COOLPIM_ASSERT_MSG(open_ > 0, "trace end() without a matching begin()");
  --open_;
  events_.push_back(TraceEvent{'E', ts, Time::zero(), {}, {}, {}});
}

void TraceBuffer::complete(Time ts, Time dur, std::string_view cat, std::string_view name,
                           TraceArgs args) {
  events_.push_back(TraceEvent{'X', ts, dur, std::string{cat}, std::string{name},
                               std::move(args)});
}

void TraceBuffer::instant(Time ts, std::string_view cat, std::string_view name, TraceArgs args) {
  events_.push_back(TraceEvent{'i', ts, Time::zero(), std::string{cat}, std::string{name},
                               std::move(args)});
}

void TraceBuffer::counter(Time ts, std::string_view cat, std::string_view name, double value) {
  events_.push_back(TraceEvent{'C', ts, Time::zero(), std::string{cat}, std::string{name},
                               TraceArgs{TraceArg{"value", value}}});
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceTrack>& tracks) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& track : tracks) {
    if (!first) os << ',';
    first = false;
    // Process-name metadata so chrome://tracing labels each task's track.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << track.pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(track.name) << "\"}}";
    if (!track.buffer) continue;
    for (const auto& e : track.buffer->events()) {
      os << ',';
      write_event(os, track.pid, e);
    }
  }
  os << "]}\n";
}

}  // namespace coolpim::obs
