// Hierarchical counter/gauge registry with per-epoch snapshots.
//
// Counters are monotonic event tallies ("gpu/kernel_launches"); gauges are
// sampled instantaneous values ("thermal/peak_dram_c").  Names are
// slash-separated paths whose first segment is the owning subsystem -- the
// same category vocabulary the trace schema uses (docs/OBSERVABILITY.md).
//
// Like StatSet, there is no global registry: each simulation run owns one
// CounterRegistry (via obs::RunObserver) and the sweep writer aggregates
// explicitly in task-submission order, which is what makes counter files
// byte-identical at any --jobs value.  Storage is node-based (std::map), so
// references returned by counter()/gauge() stay valid for the registry's
// lifetime and hot loops can look a name up once and keep the reference.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace coolpim::obs {

/// Monotonic event counter.
class CounterCell {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Last-written instantaneous value.
class GaugeCell {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

class CounterRegistry {
 public:
  /// Ordered (name -> value) view; counters render exactly, gauges as their
  /// last value.  Map keys are "kind/name" with counters and gauges kept
  /// apart so a name collision between the two kinds cannot alias.
  using Snapshot = std::map<std::string, double>;

  struct Mark {
    Time when;
    Snapshot values;
  };

  CounterCell& counter(std::string_view name) { return counters_[std::string{name}]; }
  GaugeCell& gauge(std::string_view name) { return gauges_[std::string{name}]; }

  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Record a timestamped snapshot of every entry (one per simulation epoch
  /// in the full-system model).
  void mark(Time now) { marks_.push_back(Mark{now, snapshot()}); }

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] const std::vector<Mark>& marks() const { return marks_; }
  [[nodiscard]] bool empty() const { return counters_.empty() && gauges_.empty(); }

 private:
  std::map<std::string, CounterCell> counters_;
  std::map<std::string, GaugeCell> gauges_;
  std::vector<Mark> marks_;
};

}  // namespace coolpim::obs
