// Deterministic structured tracing in Chrome trace_event format.
//
// The observability layer records what the simulator did -- spans (begin/end
// or complete), instant events and counter samples -- stamped with *simulated*
// time, never wall-clock time.  Two consequences:
//
//  * Determinism: a trace of a given (workload, scenario, config, seed) is a
//    pure function of the simulation, so trace files are byte-identical
//    across reruns, thread counts and machines (tested in
//    tests/test_obs_integration.cpp).
//  * Non-perturbation: recording only ever *reads* model state.  A simulation
//    produces bit-identical results with tracing on or off; the contract is
//    documented in docs/OBSERVABILITY.md and DESIGN.md section 8.
//
// Components hold an `obs::Trace` handle.  A default-constructed handle is
// the null sink: every method is an inline pointer test that the branch
// predictor learns immediately, so disabled tracing costs nothing measurable
// on the hot path.  Callers that must *build* arguments should guard with
// `if (trace.enabled())` so the argument construction is skipped too.
//
// Event names and categories form a documented schema -- see
// docs/OBSERVABILITY.md for the full catalogue (categories: sim, thermal,
// core, hmc, gpu, sys, runner).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace coolpim::obs {

/// One key/value argument attached to a trace event.  Values are stored
/// pre-rendered; `number` selects bare vs quoted JSON emission.
struct TraceArg {
  TraceArg(std::string k, std::string v) : key{std::move(k)}, value{std::move(v)} {}
  TraceArg(std::string k, std::string_view v) : key{std::move(k)}, value{v} {}
  TraceArg(std::string k, const char* v) : key{std::move(k)}, value{v} {}
  TraceArg(std::string k, double v);
  TraceArg(std::string k, std::uint64_t v);
  TraceArg(std::string k, std::int64_t v);
  TraceArg(std::string k, std::uint32_t v) : TraceArg{std::move(k), std::uint64_t{v}} {}
  TraceArg(std::string k, int v) : TraceArg{std::move(k), std::int64_t{v}} {}
  TraceArg(std::string k, bool v) : key{std::move(k)}, value{v ? "true" : "false"}, number{true} {}

  std::string key;
  std::string value;
  bool number{false};
};

using TraceArgs = std::vector<TraceArg>;

/// One event in the Chrome trace_event JSON model.  `ts`/`dur` are simulated
/// time; the writer converts to the format's microsecond floats.
struct TraceEvent {
  char phase{'i'};  // 'B' begin, 'E' end, 'X' complete, 'i' instant, 'C' counter
  Time ts{Time::zero()};
  Time dur{Time::zero()};  // 'X' only
  std::string cat;
  std::string name;
  TraceArgs args;
};

/// Ordered event collector for one simulation run.  Single-threaded by
/// design: each parallel-runner task owns its own buffer (the same ownership
/// discipline as Logger/StatSet), and the sweep writer merges buffers in
/// submission order so output is independent of scheduling.
class TraceBuffer {
 public:
  void begin(Time ts, std::string_view cat, std::string_view name, TraceArgs args = {});
  void end(Time ts);
  void complete(Time ts, Time dur, std::string_view cat, std::string_view name,
                TraceArgs args = {});
  void instant(Time ts, std::string_view cat, std::string_view name, TraceArgs args = {});
  void counter(Time ts, std::string_view cat, std::string_view name, double value);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  /// Currently-unclosed begin() spans (0 for a well-formed finished run).
  [[nodiscard]] std::size_t open_spans() const { return open_; }

 private:
  std::vector<TraceEvent> events_;
  std::size_t open_{0};
};

/// Null-safe handle components record through.  Default-constructed = sink
/// disabled; every call degenerates to one predictable branch.
class Trace {
 public:
  Trace() = default;
  explicit Trace(TraceBuffer* buf) : buf_{buf} {}

  [[nodiscard]] bool enabled() const { return buf_ != nullptr; }

  void begin(Time ts, std::string_view cat, std::string_view name, TraceArgs args = {}) const {
    if (buf_) buf_->begin(ts, cat, name, std::move(args));
  }
  void end(Time ts) const {
    if (buf_) buf_->end(ts);
  }
  void complete(Time ts, Time dur, std::string_view cat, std::string_view name,
                TraceArgs args = {}) const {
    if (buf_) buf_->complete(ts, dur, cat, name, std::move(args));
  }
  void instant(Time ts, std::string_view cat, std::string_view name, TraceArgs args = {}) const {
    if (buf_) buf_->instant(ts, cat, name, std::move(args));
  }
  void counter(Time ts, std::string_view cat, std::string_view name, double value) const {
    if (buf_) buf_->counter(ts, cat, name, value);
  }

 private:
  TraceBuffer* buf_{nullptr};
};

/// RAII begin/end span over a caller-owned clock variable: reads the clock at
/// construction and again at destruction, so the span tracks however far the
/// enclosing scope advanced simulated time.
class ScopedSpan {
 public:
  ScopedSpan(Trace trace, const Time& clock, std::string_view cat, std::string_view name,
             TraceArgs args = {})
      : trace_{trace}, clock_{&clock} {
    trace_.begin(*clock_, cat, name, std::move(args));
  }
  ~ScopedSpan() { trace_.end(*clock_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace trace_;
  const Time* clock_;
};

/// One process track of a merged trace file (pid = track id; typically one
/// per runner task).
struct TraceTrack {
  std::uint32_t pid{0};
  std::string name;  // becomes the process_name metadata event
  const TraceBuffer* buffer{nullptr};
};

/// Emit `{"traceEvents": [...]}` JSON loadable by chrome://tracing and
/// Perfetto.  Timestamps are simulated microseconds; output is byte-stable
/// for a fixed input (fixed-precision formatting, no wall-clock anywhere).
void write_chrome_trace(std::ostream& os, const std::vector<TraceTrack>& tracks);

/// JSON string escaping for event names/args (exposed for tests).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace coolpim::obs
