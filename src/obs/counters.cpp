#include "obs/counters.hpp"

namespace coolpim::obs {

std::uint64_t CounterRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(std::string{name});
  return it == counters_.end() ? 0 : it->second.value();
}

CounterRegistry::Snapshot CounterRegistry::snapshot() const {
  Snapshot out;
  for (const auto& [name, cell] : counters_) {
    out.emplace("counter/" + name, static_cast<double>(cell.value()));
  }
  for (const auto& [name, cell] : gauges_) {
    out.emplace("gauge/" + name, cell.value());
  }
  return out;
}

}  // namespace coolpim::obs
