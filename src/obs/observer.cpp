#include "obs/observer.hpp"

#include <ostream>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace coolpim::obs {

SweepObserver::TaskRecord* SweepObserver::add_task(std::string workload, std::string scenario) {
  std::lock_guard<std::mutex> lk{mu_};
  TaskRecord& rec = tasks_.emplace_back();
  rec.index = static_cast<std::uint32_t>(tasks_.size() - 1);
  rec.workload = std::move(workload);
  rec.scenario = std::move(scenario);
  return &rec;
}

std::size_t SweepObserver::task_count() const {
  std::lock_guard<std::mutex> lk{mu_};
  return tasks_.size();
}

void SweepObserver::write_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lk{mu_};
  std::vector<TraceTrack> tracks;
  tracks.reserve(tasks_.size());
  for (const auto& t : tasks_) {
    TraceTrack track;
    track.pid = t.index;
    track.name = t.workload + " / " + t.scenario;
    track.buffer = &t.obs.trace_buffer;
    tracks.push_back(track);
  }
  write_chrome_trace(os, tracks);
}

void SweepObserver::write_counters_csv(std::ostream& os) const {
  std::lock_guard<std::mutex> lk{mu_};
  CsvWriter csv{os};
  csv.row({"task", "workload", "scenario", "t_ms", "kind", "counter", "value"});
  auto emit = [&](const TaskRecord& t, Time when, const CounterRegistry::Snapshot& snap) {
    for (const auto& [key, value] : snap) {
      // Snapshot keys are "kind/name"; split back into columns.
      const auto slash = key.find('/');
      COOLPIM_ASSERT(slash != std::string::npos);
      csv.row({std::to_string(t.index), t.workload, t.scenario, CsvWriter::num(when.as_ms()),
               key.substr(0, slash), key.substr(slash + 1), CsvWriter::num(value)});
    }
  };
  for (const auto& t : tasks_) {
    for (const auto& mark : t.obs.counters.marks()) emit(t, mark.when, mark.values);
    emit(t, t.exec_time, t.obs.counters.snapshot());
  }
}

}  // namespace coolpim::obs
