#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "obs/names.hpp"
#include "runner/pool.hpp"
#include "thermal/batch_stack_model.hpp"

namespace coolpim::fleet {

namespace {

// Stream salts: distinct deterministic sub-streams of the fleet key.
constexpr std::uint64_t kArrivalSalt = 0xf1ee7a11'0a55a1edULL;
constexpr std::uint64_t kNodeSalt = 0x9e3779b97f4a7c15ULL;

/// Nearest-rank percentile over a sorted sample (q in [0, 1]).
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

}  // namespace

void FleetConfig::validate() const {
  COOLPIM_REQUIRE(nodes >= 1 && nodes <= 4096, "fleet nodes must be in [1, 4096]");
  COOLPIM_REQUIRE(!profiles.empty(), "fleet needs at least one service profile");
  COOLPIM_REQUIRE(mix.empty() || mix.size() == profiles.size(),
                  "mix weight count must match profile count");
  COOLPIM_REQUIRE(balancer_known(balancer),
                  "unknown balancer '" + balancer + "' (registered: " + balancer_names() + ")");
  COOLPIM_REQUIRE(trace_path.empty() ? arrival_rate_per_s > 0.0 : true,
                  "arrival rate must be positive");
  COOLPIM_REQUIRE(duration_ms > 0.0, "fleet duration must be positive");
  COOLPIM_REQUIRE(epoch_ms > 0.0 && epoch_ms <= duration_ms,
                  "fleet epoch must be in (0, duration]");
  COOLPIM_REQUIRE(rack_ambient_spread_c >= 0.0, "rack ambient spread must be non-negative");
  for (const auto& p : profiles) {
    COOLPIM_REQUIRE(p.service_ms > 0.0, "profile '" + p.workload + "': service time must be > 0");
    COOLPIM_REQUIRE(p.heat_c >= 0.0, "profile '" + p.workload + "': heat must be >= 0");
  }
  if (thermal == ThermalFidelity::kGrid) {
    COOLPIM_REQUIRE(grid.dram_dies >= 1 && grid.dram_dies <= 64,
                    "grid thermal: dram dies must be in [1, 64]");
    COOLPIM_REQUIRE(grid.grid_nx >= 1 && grid.grid_nx <= 64 && grid.grid_ny >= 1 &&
                        grid.grid_ny <= 64,
                    "grid thermal: grid must be in [1, 64] per axis");
    COOLPIM_REQUIRE(grid.watts_per_c > 0.0, "grid thermal: watts per degC must be positive");
    COOLPIM_REQUIRE(grid.heat_capacity_scale > 0.0,
                    "grid thermal: heat-capacity scale must be positive");
    COOLPIM_REQUIRE(grid.adi_dt_factor >= 1.0, "grid thermal: ADI dt factor must be >= 1");
  }
}

std::uint64_t fleet_key(const FleetConfig& cfg) {
  HashStream h;
  h.add(std::string_view{"fleet/1"});
  h.add(static_cast<std::uint64_t>(cfg.nodes));
  cfg.node.feed(h);
  h.add(cfg.rack_ambient_spread_c);
  h.add(static_cast<std::uint64_t>(cfg.profiles.size()));
  for (const auto& p : cfg.profiles) p.feed(h);
  h.add(static_cast<std::uint64_t>(cfg.mix.size()));
  for (const double w : cfg.mix) h.add(w);
  h.add(std::string_view{cfg.balancer});
  cfg.balancer_cfg.feed(h);
  h.add(cfg.arrival_rate_per_s);
  h.add(cfg.duration_ms);
  h.add(std::string_view{cfg.trace_path});
  h.add(cfg.epoch_ms);
  h.add(cfg.max_defer_epochs);
  h.add(cfg.seed);
  // Grid-fidelity fields enter the key only when the mode is on, so every
  // pre-existing kRc key (and its goldens) is untouched -- the same gating
  // the fault config uses.
  if (cfg.thermal == ThermalFidelity::kGrid) {
    h.add(std::string_view{"fleet/grid-thermal"});
    cfg.grid.feed(h);
  }
  // jobs, observer and counter_mark_every are deliberately excluded: they
  // must never change what the fleet computes.
  return h.digest();
}

std::string FleetResult::node_summary_csv() const {
  std::ostringstream os;
  os.precision(17);  // full double round-trip: byte-stable iff bit-identical
  os << "node,served,warnings,peak_c,final_c,busy_ms,served_pim_ops\n";
  for (const auto& n : nodes) {
    os << n.index << ',' << n.served << ',' << n.warnings << ',' << n.peak_c << ','
       << n.final_c << ',' << n.busy_ms << ',' << n.served_pim_ops << '\n';
  }
  return os.str();
}

std::vector<ServiceProfile> profiles_from_runs(const std::vector<sys::RunResult>& runs,
                                               double idle_c) {
  std::vector<ServiceProfile> out;
  out.reserve(runs.size());
  for (const auto& r : runs) {
    ServiceProfile p;
    p.workload = r.workload;
    p.service_ms = r.exec_time.as_ms();
    p.heat_c = std::max(0.0, r.peak_dram_temp.value() - idle_c);
    p.pim_ops = static_cast<double>(r.pim_ops);
    out.push_back(std::move(p));
  }
  return out;
}

FleetResult run_fleet(const FleetConfig& cfg) {
  cfg.validate();
  const std::uint64_t key = fleet_key(cfg);

  // Nodes, rack gradient baked into each ambient, per-node seeds from the key.
  std::vector<Node> nodes;
  nodes.reserve(cfg.nodes);
  std::vector<double> node_ambient_c(cfg.nodes);
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    NodeConfig nc = cfg.node;
    if (cfg.nodes > 1) {
      nc.ambient_c += cfg.rack_ambient_spread_c * static_cast<double>(i) /
                      static_cast<double>(cfg.nodes - 1);
    }
    node_ambient_c[i] = nc.ambient_c;
    const std::uint64_t node_seed = mix_seed(key ^ (kNodeSalt * (i + 1)));
    nodes.emplace_back(i, nc, cfg.profiles, node_seed);
  }

  // Grid fidelity: the whole rack is one BatchStackModel -- node i is lane i,
  // its per-lane ambient carrying the rack gradient.  serve() and the thermal
  // advance become separate phases so all lanes march through one lane-major
  // SoA sweep per epoch instead of N scalar integrations.
  std::unique_ptr<thermal::BatchStackModel> grid;
  std::size_t grid_top_layer = 0;
  std::vector<double> heat_weighted_ms;
  if (cfg.thermal == ThermalFidelity::kGrid) {
    thermal::StackSpec spec =
        thermal::hbm_stack_spec(cfg.grid.dram_dies, cfg.grid.grid_nx, cfg.grid.grid_ny);
    for (auto& layer : spec.layers) {
      layer.volumetric_heat_capacity *= cfg.grid.heat_capacity_scale;
    }
    spec.sink_heat_capacity *= cfg.grid.heat_capacity_scale;
    spec.ambient = Celsius{cfg.node.ambient_c};
    thermal::BatchOptions opt;
    opt.kernel = cfg.grid.use_adi ? thermal::TransientKernel::kAdi
                                  : thermal::TransientKernel::kExplicit;
    opt.adi_dt_factor = cfg.grid.adi_dt_factor;
    grid = std::make_unique<thermal::BatchStackModel>(spec, cfg.nodes, opt);
    for (std::size_t i = 0; i < cfg.nodes; ++i) {
      grid->set_lane_ambient(i, Celsius{node_ambient_c[i]});
    }
    grid->reset_to_ambient();
    if (cfg.observer != nullptr) grid->set_counters(&cfg.observer->counters);
    grid_top_layer = grid->layer_count() - 1;
    heat_weighted_ms.resize(cfg.nodes);
  }

  std::unique_ptr<ArrivalProcess> arrivals;
  if (!cfg.trace_path.empty()) {
    arrivals = std::make_unique<TraceArrivals>(load_trace(cfg.trace_path, cfg.profiles));
  } else {
    arrivals = std::make_unique<PoissonArrivals>(cfg.arrival_rate_per_s, cfg.duration_ms,
                                                 cfg.profiles.size(), cfg.mix,
                                                 mix_seed(key ^ kArrivalSalt));
  }

  std::unique_ptr<Balancer> balancer = make_balancer(cfg.balancer, cfg.balancer_cfg);

  const unsigned jobs = std::min<unsigned>(
      cfg.jobs > 0 ? cfg.jobs : runner::Pool::default_jobs(),
      static_cast<unsigned>(cfg.nodes));
  runner::Pool pool{jobs};

  obs::Trace trace =
      cfg.observer != nullptr ? cfg.observer->trace() : obs::Trace{};

  FleetResult result;
  std::vector<Request> deferred, still_deferred;
  std::optional<Arrival> pending = arrivals->next();
  std::uint64_t next_id = 0;

  const auto epochs =
      static_cast<std::uint64_t>(std::ceil(cfg.duration_ms / cfg.epoch_ms - 1e-9));
  std::vector<NodeView> views(cfg.nodes);

  for (std::uint64_t epoch = 0; epoch < epochs; ++epoch) {
    const double now_ms = static_cast<double>(epoch) * cfg.epoch_ms;

    // ---- Dispatch (sequential): everything that arrived before this epoch
    // boundary, deferred requests first so starvation is bounded.
    for (std::size_t i = 0; i < cfg.nodes; ++i) views[i] = nodes[i].view();
    auto place = [&](Request req) {
      const std::size_t pick = balancer->pick(views, req);
      if (pick != kDefer && nodes[pick].enqueue(req)) {
        ++views[pick].queue_len;
        views[pick].admitting = views[pick].queue_len < views[pick].queue_capacity &&
                                views[pick].temp_c < cfg.node.admission_limit_c;
        return;
      }
      ++req.defers;
      ++result.deferrals;
      if (req.defers > cfg.max_defer_epochs) {
        ++result.shed;
        trace.instant(Time::ms(now_ms), obs::names::kCatFleet, "shed",
                      {{"profile", cfg.profiles[req.profile].workload},
                       {"waited_ms", now_ms - req.arrival_ms}});
      } else {
        still_deferred.push_back(req);
      }
    };
    for (const Request& req : deferred) place(req);
    deferred.clear();
    while (pending && pending->time_ms < now_ms) {
      ++result.arrived;
      place(Request{next_id++, pending->profile, pending->time_ms, 0});
      pending = arrivals->next();
    }
    std::swap(deferred, still_deferred);

    // ---- Step (parallel): nodes are independent within an epoch, so the
    // shard over the pool is bit-identical at any jobs count.  Under grid
    // fidelity only serve() fans out; the thermal advance is one batched
    // sweep whose lane arithmetic never depends on jobs either.
    if (grid != nullptr) {
      pool.parallel_for(
          cfg.nodes,
          [&](std::size_t i) { heat_weighted_ms[i] = nodes[i].serve(now_ms, cfg.epoch_ms); },
          /*grain=*/0);
      for (std::size_t i = 0; i < cfg.nodes; ++i) {
        grid->set_layer_power_uniform(
            i, 0, cfg.grid.watts_per_c * heat_weighted_ms[i] / cfg.epoch_ms);
      }
      grid->step(Time::ms(cfg.epoch_ms));
      for (std::size_t i = 0; i < cfg.nodes; ++i) {
        // Same peak-DRAM temperature convention as the RC model: DRAM dies
        // are layers 1..top (layer 0 is logic).
        nodes[i].finish_epoch(grid->peak_over_layers(i, 1, grid_top_layer).value());
      }
    } else {
      pool.parallel_for(
          cfg.nodes, [&](std::size_t i) { nodes[i].step(now_ms, cfg.epoch_ms); },
          /*grain=*/0);
    }

    if (cfg.observer != nullptr && cfg.counter_mark_every > 0 &&
        (epoch + 1) % cfg.counter_mark_every == 0) {
      auto& c = cfg.observer->counters;
      // Refresh the running totals before the mark (node order, main thread).
      std::uint64_t served = 0, warnings = 0;
      double max_temp = 0.0;
      for (const auto& n : nodes) {
        const NodeSummary s = n.summary();
        served += s.served;
        warnings += s.warnings;
        max_temp = std::max(max_temp, s.peak_c);
      }
      namespace names = obs::names;
      c.counter(names::kFleetRequestsArrived).add(result.arrived -
                                                  c.counter_value(names::kFleetRequestsArrived));
      c.counter(names::kFleetRequestsServed)
          .add(served - c.counter_value(names::kFleetRequestsServed));
      c.counter(names::kFleetRequestsShed)
          .add(result.shed - c.counter_value(names::kFleetRequestsShed));
      c.counter(names::kFleetRequestsDeferred)
          .add(result.deferrals - c.counter_value(names::kFleetRequestsDeferred));
      c.counter(names::kFleetNodeWarnings)
          .add(warnings - c.counter_value(names::kFleetNodeWarnings));
      c.gauge(names::kFleetMaxNodePeakC).set(max_temp);
      c.mark(Time::ms(now_ms + cfg.epoch_ms));
    }
  }

  // Drain accounting: requests still queued at the horizon are neither
  // served nor shed (open-loop runs end mid-stream by construction).
  // Shed whatever is still deferred at the horizon.
  result.shed += deferred.size();
  result.duration_ms = static_cast<double>(epochs) * cfg.epoch_ms;

  std::vector<double> latencies;
  for (const Node& n : nodes) {
    const NodeSummary s = n.summary();
    result.nodes.push_back(s);
    result.served += s.served;
    result.total_warnings += s.warnings;
    result.served_pim_ops += s.served_pim_ops;
    result.max_node_peak_c = std::max(result.max_node_peak_c, s.peak_c);
    result.in_flight += n.backlog();
    for (const LatencySample& l : n.latencies()) latencies.push_back(l.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_latency_ms = percentile_sorted(latencies, 0.50);
  result.p99_latency_ms = percentile_sorted(latencies, 0.99);
  result.max_latency_ms = latencies.empty() ? 0.0 : latencies.back();

  if (cfg.observer != nullptr) {
    namespace names = obs::names;
    auto& c = cfg.observer->counters;
    c.counter(names::kFleetRequestsArrived)
        .add(result.arrived - c.counter_value(names::kFleetRequestsArrived));
    c.counter(names::kFleetRequestsServed)
        .add(result.served - c.counter_value(names::kFleetRequestsServed));
    c.counter(names::kFleetRequestsShed)
        .add(result.shed - c.counter_value(names::kFleetRequestsShed));
    c.counter(names::kFleetRequestsDeferred)
        .add(result.deferrals - c.counter_value(names::kFleetRequestsDeferred));
    c.counter(names::kFleetNodeWarnings)
        .add(result.total_warnings - c.counter_value(names::kFleetNodeWarnings));
    c.gauge(names::kFleetP50LatencyMs).set(result.p50_latency_ms);
    c.gauge(names::kFleetP99LatencyMs).set(result.p99_latency_ms);
    c.gauge(names::kFleetMaxNodePeakC).set(result.max_node_peak_c);
    c.gauge(names::kFleetAggOpPerNs).set(result.agg_op_per_ns());
    c.mark(Time::ms(result.duration_ms));
  }
  return result;
}

}  // namespace coolpim::fleet
