#include "fleet/arrivals.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace coolpim::fleet {

PoissonArrivals::PoissonArrivals(double rate_per_s, double horizon_ms, std::size_t profiles,
                                 std::vector<double> mix, std::uint64_t seed)
    : rate_per_ms_{rate_per_s / 1e3}, horizon_ms_{horizon_ms}, rng_{seed} {
  COOLPIM_REQUIRE(rate_per_s > 0.0, "arrival rate must be positive");
  COOLPIM_REQUIRE(profiles > 0, "arrival mix needs at least one profile");
  if (mix.empty()) mix.assign(profiles, 1.0);
  COOLPIM_REQUIRE(mix.size() == profiles, "mix weight count must match profile count");
  double total = 0.0;
  for (const double w : mix) {
    COOLPIM_REQUIRE(w >= 0.0, "mix weights must be non-negative");
    total += w;
  }
  COOLPIM_REQUIRE(total > 0.0, "mix weights must not all be zero");
  cumulative_.reserve(mix.size());
  double cum = 0.0;
  for (const double w : mix) {
    cum += w / total;
    cumulative_.push_back(cum);
  }
  cumulative_.back() = 1.0;  // guard against rounding in the final bucket
}

std::optional<Arrival> PoissonArrivals::next() {
  // Inverse-CDF exponential gap; 1 - u in (0, 1] keeps log() finite.
  const double gap_ms = -std::log(1.0 - rng_.next_double()) / rate_per_ms_;
  clock_ms_ += gap_ms;
  if (clock_ms_ >= horizon_ms_) return std::nullopt;
  const double u = rng_.next_double();
  std::uint32_t profile = 0;
  while (profile + 1 < cumulative_.size() && u >= cumulative_[profile]) ++profile;
  return Arrival{clock_ms_, profile};
}

TraceArrivals::TraceArrivals(std::vector<Arrival> schedule) : schedule_{std::move(schedule)} {
  for (std::size_t i = 1; i < schedule_.size(); ++i) {
    COOLPIM_REQUIRE(schedule_[i].time_ms >= schedule_[i - 1].time_ms,
                    "arrival trace must be time-sorted");
  }
}

std::optional<Arrival> TraceArrivals::next() {
  if (cursor_ >= schedule_.size()) return std::nullopt;
  return schedule_[cursor_++];
}

std::vector<Arrival> load_trace(const std::string& path,
                                const std::vector<ServiceProfile>& profiles) {
  std::ifstream in{path};
  COOLPIM_REQUIRE(in.is_open(), "cannot open arrival trace '" + path + "'");
  std::vector<Arrival> schedule;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto comma = line.find(',');
    COOLPIM_REQUIRE(comma != std::string::npos,
                    path + ":" + std::to_string(lineno) + ": expected 'time_ms,workload'");
    const std::string time_text = line.substr(0, comma);
    const std::string workload = line.substr(comma + 1);
    if (lineno == 1 && time_text == "time_ms") continue;  // optional header
    char* end = nullptr;
    const double t = std::strtod(time_text.c_str(), &end);
    COOLPIM_REQUIRE(end != time_text.c_str() && *end == '\0' && t >= 0.0,
                    path + ":" + std::to_string(lineno) + ": bad timestamp '" + time_text + "'");
    std::uint32_t profile = 0;
    bool found = false;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      if (profiles[i].workload == workload) {
        profile = static_cast<std::uint32_t>(i);
        found = true;
        break;
      }
    }
    COOLPIM_REQUIRE(found, path + ":" + std::to_string(lineno) + ": unknown workload '" +
                               workload + "'");
    schedule.push_back(Arrival{t, profile});
  }
  return schedule;
}

}  // namespace coolpim::fleet
