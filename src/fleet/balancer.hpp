// Pluggable fleet load balancers (--balancer / COOLPIM_BALANCER).
//
// A Balancer picks the node for each arriving request from the dispatch
// loop's NodeView snapshot (node state at epoch start plus same-epoch
// assignment accounting).  Returning kDefer hands the request back to
// admission control, which retries next epoch and sheds after
// FleetConfig::max_defer_epochs.
//
// Three members ship, mirroring the throttling-policy registry pattern
// (control/registry.hpp): round-robin (oblivious), join-shortest-queue
// (load-only), and thermal-aware -- JSQ with a per-degC penalty above a
// reference temperature plus a recent-ERRSTAT-warning-rate penalty, the
// fleet-level analogue of SW-DynT routing work away from a hot cube.
// All members break score ties toward the lowest node index, so placement
// is deterministic (tested in tests/test_fleet.cpp).
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "fleet/node.hpp"

namespace coolpim::fleet {

/// Sentinel pick: no admitting node acceptable; defer the request.
inline constexpr std::size_t kDefer = std::numeric_limits<std::size_t>::max();

/// Thermal-aware scoring knobs (ignored by the oblivious members).
struct BalancerConfig {
  /// Temperature above which a node starts paying a routing penalty (degC).
  double temp_ref_c{80.0};
  /// Penalty per degC above temp_ref_c, in queue-slot units.
  double temp_weight{4.0};
  /// Penalty per unit of EWMA warning rate (warnings/epoch), in queue-slot
  /// units.
  double warning_weight{8.0};

  void feed(HashStream& h) const {
    h.add(temp_ref_c);
    h.add(temp_weight);
    h.add(warning_weight);
  }
};

class Balancer {
 public:
  virtual ~Balancer() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Pick an admitting node for `req`, or kDefer.  Called once per request
  /// on the dispatch thread, in arrival order.
  [[nodiscard]] virtual std::size_t pick(const std::vector<NodeView>& nodes,
                                         const Request& req) = 0;
};

/// Registered balancer names ("round-robin", "join-shortest-queue",
/// "thermal-aware"), comma-separated for --help and error messages.
[[nodiscard]] std::string balancer_names();

/// True iff `name` is a registered balancer.
[[nodiscard]] bool balancer_known(std::string_view name);

/// Build a registered balancer; throws ConfigError on an unknown name,
/// listing the registered vocabulary.
[[nodiscard]] std::unique_ptr<Balancer> make_balancer(std::string_view name,
                                                      const BalancerConfig& cfg);

}  // namespace coolpim::fleet
