#include "fleet/node.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace coolpim::fleet {

Node::Node(std::size_t index, NodeConfig cfg, const std::vector<ServiceProfile>& profiles,
           std::uint64_t seed)
    : index_{index}, cfg_{cfg}, profiles_{&profiles}, rng_{seed}, temp_c_{cfg.ambient_c},
      peak_c_{cfg.ambient_c} {
  COOLPIM_REQUIRE(!profiles.empty(), "node needs at least one service profile");
  COOLPIM_REQUIRE(cfg.queue_capacity > 0, "node queue capacity must be positive");
  COOLPIM_REQUIRE(cfg.tau_ms > 0.0, "thermal time constant must be positive");
  COOLPIM_REQUIRE(cfg.derate_factor > 0.0 && cfg.derate_factor <= 1.0,
                  "derate factor must be in (0, 1]");
  summary_.index = index;
  summary_.peak_c = summary_.final_c = cfg.ambient_c;
}

bool Node::enqueue(const Request& req) {
  if (temp_c_ >= cfg_.admission_limit_c) return false;
  if (backlog() >= cfg_.queue_capacity) return false;
  queue_.push_back(req);
  return true;
}

void Node::start_next(double /*now_ms*/) {
  current_ = queue_.front();
  queue_.pop_front();
  in_service_ = true;
  const ServiceProfile& p = (*profiles_)[current_.profile];
  // Symmetric multiplicative jitter from this node's own stream: the draw
  // happens exactly once per request, in service order, so the sequence is a
  // pure function of (seed, arrival order) -- never of thread scheduling.
  const double jitter = cfg_.service_jitter > 0.0
                            ? 1.0 + cfg_.service_jitter * (2.0 * rng_.next_double() - 1.0)
                            : 1.0;
  service_left_ms_ = p.service_ms * jitter;
}

void Node::step(double now_ms, double dt_ms) {
  const double heat_weighted_ms = serve(now_ms, dt_ms);
  // First-order RC pull toward the load-weighted steady target.  Exact
  // exponential decay keeps the integration stable at any epoch length.
  const double target_c = cfg_.ambient_c + heat_weighted_ms / dt_ms;
  const double alpha = 1.0 - std::exp(-dt_ms / cfg_.tau_ms);
  finish_epoch(temp_c_ + alpha * (target_c - temp_c_));
}

double Node::serve(double now_ms, double dt_ms) {
  double remaining = dt_ms;
  double busy_ms = 0.0;
  double heat_weighted_ms = 0.0;  // integral of heat_c over busy time

  while (remaining > 0.0) {
    if (!in_service_) {
      if (queue_.empty()) break;
      start_next(now_ms + (dt_ms - remaining));
    }
    const ServiceProfile& p = (*profiles_)[current_.profile];
    const double speed = temp_c_ >= cfg_.derate_threshold_c ? cfg_.derate_factor : 1.0;
    const double wall_needed = service_left_ms_ / speed;
    if (wall_needed <= remaining) {
      remaining -= wall_needed;
      busy_ms += wall_needed;
      heat_weighted_ms += p.heat_c * wall_needed;
      const double completion = now_ms + dt_ms - remaining;
      latencies_.push_back(LatencySample{completion - current_.arrival_ms, current_.profile});
      ++summary_.served;
      summary_.served_pim_ops += p.pim_ops;
      in_service_ = false;
      service_left_ms_ = 0.0;
    } else {
      service_left_ms_ -= remaining * speed;
      busy_ms += remaining;
      heat_weighted_ms += p.heat_c * remaining;
      remaining = 0.0;
    }
  }

  summary_.busy_ms += busy_ms;
  return heat_weighted_ms;
}

void Node::finish_epoch(double temp_c) {
  temp_c_ = temp_c;
  peak_c_ = std::max(peak_c_, temp_c_);

  // ERRSTAT-style warning stream: one warning per epoch spent at or above
  // the derate threshold (the per-response warning rate a real cube's
  // responses would carry).
  const bool hot = temp_c_ >= cfg_.derate_threshold_c;
  if (hot) ++summary_.warnings;
  warning_rate_ += cfg_.warning_ewma_alpha * ((hot ? 1.0 : 0.0) - warning_rate_);

  summary_.peak_c = peak_c_;
  summary_.final_c = temp_c_;
}

NodeView Node::view() const {
  NodeView v;
  v.index = index_;
  v.queue_len = backlog();
  v.queue_capacity = cfg_.queue_capacity;
  v.temp_c = temp_c_;
  v.peak_c = peak_c_;
  v.warning_rate = warning_rate_;
  v.admitting = temp_c_ < cfg_.admission_limit_c && v.queue_len < v.queue_capacity;
  return v;
}

NodeSummary Node::summary() const { return summary_; }

}  // namespace coolpim::fleet
