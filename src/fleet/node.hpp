// One fleet node: a GPU+HMC system reduced to its interval behaviour.
//
// A Node owns a bounded FIFO request queue and a first-order thermal state.
// Each fleet epoch it serves queued requests at a temperature-dependent
// speed (DRAM derates above the 85 degC normal limit, exactly as the
// single-node `hmc::ThermalPolicy` does), integrates its peak-DRAM
// temperature toward `ambient + busy_fraction * heat(workload)` with time
// constant tau, and tallies ERRSTAT-style warnings while hot.  The node's
// throttling policy enters through its service profiles: they are derived
// from single-node runs *under that policy* (see fleet.hpp), so a fleet of
// hw-dynt nodes inherits HW-DynT's thermal envelope per node.
//
// Determinism contract: step() touches only this node's state, so the fleet
// loop can fan nodes out across runner::Pool with bit-identical results at
// any --jobs.  The only stochastic element -- per-request service jitter --
// draws from the node's own Rng, seeded from (fleet experiment key, node
// index) at construction.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "fleet/request.hpp"

namespace coolpim::fleet {

struct NodeConfig {
  /// Idle peak-DRAM temperature of this node (degC).  The fleet layer bakes
  /// the rack ambient gradient in here, so a hot rack position is simply a
  /// node with a higher ambient.
  double ambient_c{35.0};
  /// First-order thermal time constant (ms) of the stack's response to a
  /// change in offered load.
  double tau_ms{50.0};
  /// DRAM derate threshold (degC): at or above it, service speed multiplies
  /// by derate_factor and each epoch tallies a thermal warning.
  double derate_threshold_c{85.0};
  double derate_factor{0.5};
  /// Hard admission ceiling (degC): a node at or above it refuses new work
  /// regardless of balancer (the thermal-DoS backstop).
  double admission_limit_c{95.0};
  std::size_t queue_capacity{64};
  /// Fractional half-width of the per-request service-time jitter drawn from
  /// the node's Rng (0 = deterministic service times).
  double service_jitter{0.05};
  /// EWMA smoothing for the recent-warning-rate signal the thermal-aware
  /// balancer reads (warnings per epoch).
  double warning_ewma_alpha{0.2};

  void feed(HashStream& h) const {
    h.add(ambient_c);
    h.add(tau_ms);
    h.add(derate_threshold_c);
    h.add(derate_factor);
    h.add(admission_limit_c);
    h.add(static_cast<std::uint64_t>(queue_capacity));
    h.add(service_jitter);
    h.add(warning_ewma_alpha);
  }
};

/// Balancer-visible snapshot of one node at epoch start (plus the dispatch
/// loop's own same-epoch assignment accounting).
struct NodeView {
  std::size_t index{0};
  std::size_t queue_len{0};  // queued + in service + assigned this epoch
  std::size_t queue_capacity{0};
  double temp_c{0.0};
  double peak_c{0.0};
  double warning_rate{0.0};  // EWMA warnings/epoch
  bool admitting{false};     // below the admission ceiling with queue space
};

/// End-of-run per-node accounting (the BENCH_fleet.json `nodes[]` rows).
struct NodeSummary {
  std::size_t index{0};
  std::uint64_t served{0};
  std::uint64_t warnings{0};
  double peak_c{0.0};
  double final_c{0.0};
  double busy_ms{0.0};
  double served_pim_ops{0.0};
};

/// One completed request's latency sample.
struct LatencySample {
  double latency_ms{0.0};
  std::uint32_t profile{0};
};

class Node {
 public:
  Node(std::size_t index, NodeConfig cfg, const std::vector<ServiceProfile>& profiles,
       std::uint64_t seed);

  /// Admission check + enqueue; returns false (request not taken) on a full
  /// queue or a node at the admission ceiling.
  bool enqueue(const Request& req);

  /// Advance one fleet epoch [now_ms, now_ms + dt_ms): serve, heat, tally.
  /// Touches only this node's state (safe to run concurrently across nodes).
  /// Composed of serve() + the built-in first-order RC update + finish_epoch;
  /// the grid-fidelity fleet path (fleet.hpp ThermalFidelity::kGrid) calls
  /// the pieces itself, replacing the RC update with a BatchStackModel lane.
  void step(double now_ms, double dt_ms);

  /// Serve queued requests for one epoch and return the heat-weighted busy
  /// time (integral of profile heat_c over busy ms).  First half of step();
  /// touches only this node's state.
  double serve(double now_ms, double dt_ms);

  /// Commit this epoch's temperature (degC, peak-DRAM convention) computed
  /// by an external thermal model: updates peak tracking, the warning tally
  /// and the EWMA warning rate.  Second half of step().
  void finish_epoch(double temp_c);

  [[nodiscard]] NodeView view() const;
  [[nodiscard]] NodeSummary summary() const;
  [[nodiscard]] const std::vector<LatencySample>& latencies() const { return latencies_; }
  [[nodiscard]] double temp_c() const { return temp_c_; }
  [[nodiscard]] std::size_t backlog() const { return queue_.size() + (in_service_ ? 1 : 0); }

 private:
  void start_next(double now_ms);

  std::size_t index_;
  NodeConfig cfg_;
  const std::vector<ServiceProfile>* profiles_;
  Rng rng_;

  std::deque<Request> queue_;
  bool in_service_{false};
  Request current_{};
  double service_left_ms_{0.0};  // remaining full-speed service time

  double temp_c_;
  double peak_c_;
  double warning_rate_{0.0};

  NodeSummary summary_{};
  std::vector<LatencySample> latencies_;
};

}  // namespace coolpim::fleet
