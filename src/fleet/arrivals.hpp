// Open-loop arrival processes for the fleet tier.
//
// An ArrivalProcess yields a monotone stream of (time, request-class) pairs
// up to the configured horizon; the fleet loop drains everything that lands
// inside the current epoch.  Arrivals are *open-loop*: the generator never
// looks at queue depths or node state, so offered load is an experiment
// input, not a feedback artifact -- the property that makes saturation and
// thermal-DoS scenarios expressible (docs/FLEET.md).
//
// Determinism: PoissonArrivals draws from its own seeded Rng (seed derived
// from the fleet experiment key), so the stream is a pure function of the
// config -- identical at any --jobs value and across platforms.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fleet/request.hpp"

namespace coolpim::fleet {

/// One generated arrival: fleet-clock timestamp plus request class.
struct Arrival {
  double time_ms{0.0};
  std::uint32_t profile{0};
};

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Next arrival in nondecreasing time order, or nullopt when the stream is
  /// exhausted (past the horizon / end of trace).
  [[nodiscard]] virtual std::optional<Arrival> next() = 0;
};

/// Memoryless Poisson arrivals at `rate_per_s`, request classes drawn from a
/// weighted mix.  Inter-arrival gaps are sampled by inverse CDF from the
/// seeded Rng; the class of each request is drawn from the same stream, so
/// one seed fixes the entire (time, class) sequence.
class PoissonArrivals final : public ArrivalProcess {
 public:
  /// `mix` holds one non-negative weight per profile (normalized internally;
  /// empty = uniform over `profiles` classes).
  PoissonArrivals(double rate_per_s, double horizon_ms, std::size_t profiles,
                  std::vector<double> mix, std::uint64_t seed);

  [[nodiscard]] std::optional<Arrival> next() override;

 private:
  double rate_per_ms_;
  double horizon_ms_;
  std::vector<double> cumulative_;  // normalized cumulative mix weights
  Rng rng_;
  double clock_ms_{0.0};
};

/// Replay of an explicit arrival schedule (time-sorted).  load_trace() reads
/// the two-column CSV `time_ms,workload` and resolves workload names against
/// the profile table; unknown names and non-monotone timestamps throw.
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<Arrival> schedule);

  [[nodiscard]] std::optional<Arrival> next() override;

 private:
  std::vector<Arrival> schedule_;
  std::size_t cursor_{0};
};

/// Parse a replay trace CSV against `profiles` (see TraceArrivals).
[[nodiscard]] std::vector<Arrival> load_trace(const std::string& path,
                                              const std::vector<ServiceProfile>& profiles);

}  // namespace coolpim::fleet
