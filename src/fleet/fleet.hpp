// Fleet tier: N independent GPU+HMC nodes under open-loop traffic.
//
// run_fleet() is a CoMeT-style interval simulation on a shared clock.  Each
// fleet epoch (FleetConfig::epoch_ms):
//
//   1. Dispatch (sequential, deterministic): every arrival that landed in
//      the epoch -- deferred requests first, then new ones, in order -- is
//      placed by the configured Balancer over a NodeView snapshot; a kDefer
//      pick (or a node refusing admission) defers the request, and a request
//      deferred more than max_defer_epochs times is shed.
//   2. Step (parallel): every node advances dt independently -- service,
//      thermal integration, warning tally -- sharded across runner::Pool.
//      Nodes share no mutable state, so jobs=1 and jobs=N are bit-identical.
//   3. Observe: fleet counters/gauges update on the run's RunObserver and a
//      per-epoch counter mark is recorded every counter_mark_every epochs.
//
// Identity and seeding follow the runner contract (runner/experiment.hpp):
// fleet_key() hashes every behaviour-affecting config field; the arrival
// stream and each node's jitter Rng are seeded from (key, stream) /
// (key, node index), so a FleetConfig fully determines the run.
// docs/FLEET.md is the operator's manual for this tier.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/arrivals.hpp"
#include "fleet/balancer.hpp"
#include "fleet/node.hpp"
#include "fleet/request.hpp"
#include "hmc/fidelity_names.hpp"
#include "obs/observer.hpp"
#include "sys/metrics.hpp"

namespace coolpim::fleet {

/// How node temperatures integrate each epoch (fleet step 2).
enum class ThermalFidelity {
  /// Historical first-order RC pull toward the load-weighted target
  /// (Node::step); cheapest, and the identity baseline for all goldens.
  kRc,
  /// Full 3-D stack grids: every node is one lane of a single
  /// thermal::BatchStackModel, and the whole rack advances as one
  /// lane-major SoA batch per epoch (docs/PERFORMANCE.md section 7).
  kGrid,
};

/// Fidelity names come from the shared vocabulary header (DESIGN.md
/// section 15), like the --hmc-backend tier names.
[[nodiscard]] constexpr std::string_view to_string(ThermalFidelity f) {
  switch (f) {
    case ThermalFidelity::kRc: return hmc::fidelity::kFleetRc;
    case ThermalFidelity::kGrid: return hmc::fidelity::kFleetGrid;
  }
  return "?";
}

/// Grid-fidelity sub-config.  Read -- and hashed into fleet_key() -- only
/// when FleetConfig::thermal == ThermalFidelity::kGrid, so kRc experiment
/// keys and goldens are byte-identical to before this knob existed.
struct GridThermalConfig {
  /// Stack geometry: hbm_stack_spec(dram_dies, grid_nx, grid_ny).
  std::size_t dram_dies{8};
  std::size_t grid_nx{8};
  std::size_t grid_ny{8};
  /// Logic-die watts injected per degC of the node's RC load signal
  /// (heat_weighted_ms / epoch_ms).  ~0.9 maps the RC steady target onto the
  /// grid's junction-to-ambient resistance for the default HBM geometry.
  double watts_per_c{0.9};
  /// Heat-capacity scaling (the interval-simulation compression trick):
  /// shrinks the stack's seconds-scale thermal constant to fleet-epoch
  /// scale so transients resolve within a run.
  double heat_capacity_scale{0.045};
  /// Transient kernel: explicit Euler (per-lane bit-exact vs the scalar
  /// reference) or the unconditionally stable ADI line solver for tall
  /// stacks / fine grids.
  bool use_adi{false};
  double adi_dt_factor{32.0};

  void feed(HashStream& h) const {
    h.add(static_cast<std::uint64_t>(dram_dies));
    h.add(static_cast<std::uint64_t>(grid_nx));
    h.add(static_cast<std::uint64_t>(grid_ny));
    h.add(watts_per_c);
    h.add(heat_capacity_scale);
    h.add(static_cast<std::uint64_t>(use_adi ? 1 : 0));
    h.add(adi_dt_factor);
  }
};

struct FleetConfig {
  /// Node count (--fleet-nodes / COOLPIM_FLEET_NODES).
  std::size_t nodes{4};
  /// Template node; per-node ambients add the rack gradient below.
  NodeConfig node{};
  /// Linear rack ambient gradient: node i idles at
  /// node.ambient_c + rack_ambient_spread_c * i / (nodes - 1).  Models the
  /// hot end of a rack / a poorly-cooled chassis position.
  double rack_ambient_spread_c{0.0};

  /// Node thermal integration fidelity (default keeps the RC model and all
  /// existing keys/goldens); grid settings apply only under kGrid.
  ThermalFidelity thermal{ThermalFidelity::kRc};
  GridThermalConfig grid{};

  /// Request classes (must be non-empty) and their Poisson mix weights
  /// (empty = uniform; ignored for trace replay).
  std::vector<ServiceProfile> profiles{synthetic_profiles()};
  std::vector<double> mix{};

  /// Balancer by registered name (--balancer / COOLPIM_BALANCER).
  std::string balancer{"thermal-aware"};
  BalancerConfig balancer_cfg{};

  /// Open-loop arrival process: Poisson at arrival_rate_per_s over
  /// duration_ms, unless trace_path names a replay CSV (fleet clock then
  /// still runs to duration_ms).
  double arrival_rate_per_s{4000.0};
  double duration_ms{1000.0};
  std::string trace_path{};

  double epoch_ms{1.0};
  std::uint32_t max_defer_epochs{8};

  /// Experiment seed; arrival and per-node streams derive from
  /// fleet_key(*this) ^ seed material, never from scheduling.
  std::uint64_t seed{7};
  /// Node-stepping parallelism; 0 = runner::Pool::default_jobs().
  unsigned jobs{0};
  /// Counter-mark cadence in epochs (0 = only the end-of-run snapshot).
  std::uint32_t counter_mark_every{0};
  /// Observability sink (excluded from fleet_key, read-only: results are
  /// bit-identical with or without it).
  obs::RunObserver* observer{nullptr};

  void validate() const;
};

struct FleetResult {
  std::vector<NodeSummary> nodes;

  std::uint64_t arrived{0};
  std::uint64_t served{0};
  std::uint64_t shed{0};
  /// Defer *events* (one request deferred twice counts twice).
  std::uint64_t deferrals{0};
  /// Requests still queued/in service when the clock expired.
  std::uint64_t in_flight{0};

  double duration_ms{0.0};
  double p50_latency_ms{0.0};
  double p99_latency_ms{0.0};
  double max_latency_ms{0.0};
  double served_pim_ops{0.0};
  double max_node_peak_c{0.0};
  std::uint64_t total_warnings{0};

  [[nodiscard]] double agg_op_per_ns() const {
    return duration_ms > 0.0 ? served_pim_ops / (duration_ms * 1e6) : 0.0;
  }
  /// Canonical one-line-per-node serialization -- the object the jobs=1 vs
  /// jobs=8 bit-identity tests and bench gate compare byte-for-byte.
  [[nodiscard]] std::string node_summary_csv() const;
};

/// Stable identity hash over every behaviour-affecting field (observer and
/// jobs excluded -- they must not change results).
[[nodiscard]] std::uint64_t fleet_key(const FleetConfig& cfg);

/// Run the interval simulation to completion.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& cfg);

/// Derive service profiles from measured single-node runs: service time =
/// exec_time, heat = peak DRAM rise above `idle_c`, ops = pim_ops.  The runs
/// should all use the node policy the fleet models (docs/FLEET.md).
[[nodiscard]] std::vector<ServiceProfile> profiles_from_runs(
    const std::vector<sys::RunResult>& runs, double idle_c);

}  // namespace coolpim::fleet
