// Fleet-tier request vocabulary: what a node serves and how it is costed.
//
// The fleet tier (docs/FLEET.md) drives N GPU+HMC nodes with an open-loop
// stream of graph-query requests.  Each request references a ServiceProfile
// -- a per-workload interval summary (service time, steady thermal rise, PIM
// op count) derived either from real single-node `sys::System` runs
// (profiles_from_runs) or from the built-in synthetic table used by tests
// and --synthetic quick runs.  Nodes never re-execute the graph kernels at
// fleet scale; they integrate these interval costs on a shared clock, which
// is what makes thousand-node sweeps tractable (the CoMeT-style interval
// loop, DESIGN.md section 12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"

namespace coolpim::fleet {

/// Interval cost summary of one workload class on one node.
struct ServiceProfile {
  std::string workload;
  /// Full-speed service time of one request (ms); derated service divides
  /// the node's speed, not this constant.
  double service_ms{2.0};
  /// Steady-state peak-DRAM rise above the node's idle ambient when the node
  /// serves this workload back-to-back (degC).  Scaled by the node's busy
  /// fraction each fleet epoch.
  double heat_c{45.0};
  /// PIM operations retired per request (aggregate-throughput accounting).
  double pim_ops{1.0e6};

  void feed(HashStream& h) const {
    h.add(std::string_view{workload});
    h.add(service_ms);
    h.add(heat_c);
    h.add(pim_ops);
  }
};

/// One in-flight graph-query request.
struct Request {
  std::uint64_t id{0};
  /// Index into FleetConfig::profiles.
  std::uint32_t profile{0};
  /// Open-loop arrival timestamp (fleet clock, ms).
  double arrival_ms{0.0};
  /// Admission-control retries so far (deferred epochs).
  std::uint32_t defers{0};
};

/// Built-in synthetic profile table: four representative request classes with
/// the qualitative spread of the paper's workload mix (a PIM-hot hub-heavy
/// kernel, a mid-weight traversal, a light query, a long scan).  Used by the
/// unit tests and `--synthetic` runs so the fleet tier is exercisable without
/// building a WorkloadSet.
[[nodiscard]] inline std::vector<ServiceProfile> synthetic_profiles() {
  return {
      {"pagerank-q", /*service_ms=*/3.0, /*heat_c=*/50.0, /*pim_ops=*/3.0e6},
      {"bfs-q", /*service_ms=*/2.0, /*heat_c=*/42.0, /*pim_ops=*/1.5e6},
      {"degree-q", /*service_ms=*/1.0, /*heat_c=*/35.0, /*pim_ops=*/0.5e6},
      {"sssp-q", /*service_ms=*/4.0, /*heat_c=*/46.0, /*pim_ops=*/2.5e6},
  };
}

}  // namespace coolpim::fleet
