#include "fleet/balancer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace coolpim::fleet {

namespace {

class RoundRobin final : public Balancer {
 public:
  [[nodiscard]] std::string_view name() const override { return "round-robin"; }

  [[nodiscard]] std::size_t pick(const std::vector<NodeView>& nodes,
                                 const Request& /*req*/) override {
    // Rotate through all positions once; skip non-admitting nodes so a full
    // queue defers rather than sheds at the node boundary.
    for (std::size_t tried = 0; tried < nodes.size(); ++tried) {
      const std::size_t idx = cursor_++ % nodes.size();
      if (nodes[idx].admitting) return idx;
    }
    return kDefer;
  }

 private:
  std::size_t cursor_{0};
};

class JoinShortestQueue final : public Balancer {
 public:
  [[nodiscard]] std::string_view name() const override { return "join-shortest-queue"; }

  [[nodiscard]] std::size_t pick(const std::vector<NodeView>& nodes,
                                 const Request& /*req*/) override {
    std::size_t best = kDefer;
    std::size_t best_len = 0;
    for (const NodeView& n : nodes) {
      // Strict < keeps ties on the lowest index (views arrive index-sorted).
      if (n.admitting && (best == kDefer || n.queue_len < best_len)) {
        best = n.index;
        best_len = n.queue_len;
      }
    }
    return best;
  }
};

class ThermalAware final : public Balancer {
 public:
  explicit ThermalAware(BalancerConfig cfg) : cfg_{cfg} {}

  [[nodiscard]] std::string_view name() const override { return "thermal-aware"; }

  [[nodiscard]] std::size_t pick(const std::vector<NodeView>& nodes,
                                 const Request& /*req*/) override {
    std::size_t best = kDefer;
    double best_score = 0.0;
    for (const NodeView& n : nodes) {
      if (!n.admitting) continue;
      const double hot_c = std::max(0.0, n.temp_c - cfg_.temp_ref_c);
      const double score = static_cast<double>(n.queue_len) + cfg_.temp_weight * hot_c +
                           cfg_.warning_weight * n.warning_rate;
      if (best == kDefer || score < best_score) {  // strict <: ties go low-index
        best = n.index;
        best_score = score;
      }
    }
    return best;
  }

 private:
  BalancerConfig cfg_;
};

constexpr std::string_view kNames[] = {"round-robin", "join-shortest-queue", "thermal-aware"};

}  // namespace

std::string balancer_names() {
  std::string out;
  for (const auto n : kNames) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

bool balancer_known(std::string_view name) {
  return std::find(std::begin(kNames), std::end(kNames), name) != std::end(kNames);
}

std::unique_ptr<Balancer> make_balancer(std::string_view name, const BalancerConfig& cfg) {
  if (name == "round-robin") return std::make_unique<RoundRobin>();
  if (name == "join-shortest-queue") return std::make_unique<JoinShortestQueue>();
  if (name == "thermal-aware") return std::make_unique<ThermalAware>(cfg);
  throw ConfigError("unknown balancer '" + std::string{name} +
                    "' (registered: " + balancer_names() + ")");
}

}  // namespace coolpim::fleet
