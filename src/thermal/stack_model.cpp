#include "thermal/stack_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace coolpim::thermal {

void StackSpec::validate() const {
  floorplan.validate();
  COOLPIM_REQUIRE(!layers.empty(), "stack needs at least one layer");
  COOLPIM_REQUIRE(tim_r > 0, "TIM resistance must be positive");
  COOLPIM_REQUIRE(sink_r.value() > 0, "sink resistance must be positive");
  COOLPIM_REQUIRE(board_r > 0, "board resistance must be positive");
  COOLPIM_REQUIRE(sink_heat_capacity > 0, "sink heat capacity must be positive");
  for (const auto& l : layers) {
    COOLPIM_REQUIRE(l.thickness_m > 0 && l.conductivity > 0 && l.volumetric_heat_capacity > 0,
                    "layer properties must be positive: " + l.name);
    COOLPIM_REQUIRE(l.interface_r_above > 0, "interface resistance must be positive: " + l.name);
  }
}

StackSpec hbm_stack_spec(std::size_t dram_dies, std::size_t grid_nx, std::size_t grid_ny) {
  COOLPIM_REQUIRE(dram_dies >= 1, "HBM stack needs at least one DRAM die");
  StackSpec spec;
  spec.floorplan.die_width_m = 11.0e-3;   // HBM-class ~92 mm^2 footprint
  spec.floorplan.die_height_m = 8.4e-3;
  spec.floorplan.vaults_x = 8;
  spec.floorplan.vaults_y = 4;
  spec.floorplan.grid.nx = grid_nx;
  spec.floorplan.grid.ny = grid_ny;

  LayerSpec logic;
  logic.name = "logic";
  logic.thickness_m = 100e-6;
  logic.conductivity = 120.0;
  logic.interface_r_above = 4.5e-6;
  spec.layers.push_back(logic);
  for (std::size_t d = 0; d < dram_dies; ++d) {
    LayerSpec dram;
    dram.name = "dram" + std::to_string(d);
    dram.thickness_m = 50e-6;  // thinned core dies, tall-stack bonding
    dram.conductivity = 120.0;
    dram.interface_r_above = 4.5e-6;
    spec.layers.push_back(dram);
  }
  spec.tim_r = 5.0e-6;
  spec.sink_r = ThermalResistance{0.7};
  spec.sink_heat_capacity = 2.0;
  spec.board_r = 20.0;
  return spec;
}

StackNetwork StackNetwork::build(const StackSpec& spec) {
  const auto& fp = spec.floorplan;
  const std::size_t nx = fp.grid.nx;
  const std::size_t ny = fp.grid.ny;
  const double cw = fp.cell_width_m();
  const double ch = fp.cell_height_m();
  const double area = fp.cell_area_m2();
  const std::size_t n_layers = spec.layers.size();

  StackNetwork net;
  net.n_cells = fp.grid.cells();
  net.n_nodes = net.n_cells * n_layers;
  const std::size_t n_cells = net.n_cells;
  const std::size_t n_nodes = net.n_nodes;
  const auto node = [n_cells](std::size_t layer, std::size_t cell) {
    return layer * n_cells + cell;
  };

  net.g_east.assign(n_nodes, 0.0);
  net.g_west.assign(n_nodes, 0.0);
  net.g_north.assign(n_nodes, 0.0);
  net.g_south.assign(n_nodes, 0.0);
  net.g_up.assign(n_nodes, 0.0);
  net.g_down.assign(n_nodes, 0.0);
  net.g_sink.assign(n_nodes, 0.0);
  net.g_board.assign(n_nodes, 0.0);
  net.g_diag.assign(n_nodes, 0.0);
  net.cap.assign(n_nodes, 0.0);

  for (std::size_t l = 0; l < n_layers; ++l) {
    const auto& layer = spec.layers[l];
    const double t = layer.thickness_m;
    const double k = layer.conductivity;
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t nidx = node(l, fp.grid.index(x, y));
        net.cap[nidx] = layer.volumetric_heat_capacity * area * t;
        // Lateral conduction through the die cross-section.
        if (x + 1 < nx) net.g_east[nidx] = k * t * ch / cw;
        if (y + 1 < ny) net.g_north[nidx] = k * t * cw / ch;
        // Vertical conduction: half-die + interface + half-die above.
        if (l + 1 < n_layers) {
          const auto& above = spec.layers[l + 1];
          const double r = t / (2.0 * k) + layer.interface_r_above +
                           above.thickness_m / (2.0 * above.conductivity);
          net.g_up[nidx] = area / r;
        } else {
          // Top layer couples to the lumped sink node through half-die + TIM.
          const double r = t / (2.0 * k) + spec.tim_r;
          net.g_sink[nidx] = area / r;
        }
        if (l == 0) {
          // Bottom layer leaks into the board: bulk resistance shared by all
          // bottom cells.
          net.g_board[nidx] = 1.0 / (spec.board_r * static_cast<double>(n_cells));
        }
      }
    }
  }

  // Mirrored neighbour views: a node's west/south/down conductance is the
  // owning (west/south/lower) neighbour's east/north/up entry, zero at the
  // boundary.  These make the sweeps branch-free.
  for (std::size_t l = 0; l < n_layers; ++l) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t nidx = node(l, fp.grid.index(x, y));
        if (x > 0) net.g_west[nidx] = net.g_east[nidx - 1];
        if (y > 0) net.g_south[nidx] = net.g_north[nidx - nx];
        if (l > 0) net.g_down[nidx] = net.g_up[nidx - n_cells];
      }
    }
  }

  // Offset-padded copies for the transient sweep: with nc leading zeros, a
  // node's west/south/down conductance is the same array read at i-1 / i-nx /
  // i-nc (row-end east, column-end north and top-layer up entries are zero,
  // so the wrapped reads land on exact zeros -- the mirror arrays above hold
  // the same values).  Reading one array at two offsets instead of two
  // arrays halves the conductance cache traffic of the hot loop.
  const auto pad = [&](const std::vector<double>& src, std::vector<double>& dst) {
    dst.assign(n_cells + n_nodes, 0.0);
    std::copy(src.begin(), src.end(), dst.begin() + static_cast<std::ptrdiff_t>(n_cells));
  };
  pad(net.g_east, net.g_east_pad);
  pad(net.g_north, net.g_north_pad);
  pad(net.g_up, net.g_up_pad);

  // Accumulate per-node incident conductance for diag / stability.
  for (std::size_t i = 0; i < n_nodes; ++i) {
    net.g_diag[i] = net.g_up[i] + net.g_sink[i] + net.g_board[i] + net.g_east[i] +
                    net.g_west[i] + net.g_north[i] + net.g_south[i] + net.g_down[i];
  }

  net.g_sink_ambient = 1.0 / spec.sink_r.value();
  net.sink_g_total = net.g_sink_ambient;
  for (const auto g : net.g_sink) net.sink_g_total += g;

  // Stable explicit-Euler step: dt < min_i C_i / G_i (with safety margin).
  double dt_min = spec.sink_heat_capacity / net.sink_g_total;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    dt_min = std::min(dt_min, net.cap[i] / net.g_diag[i]);
  }
  net.stable_dt = Time::sec(0.5 * dt_min);
  COOLPIM_ASSERT(net.stable_dt > Time::zero());
  return net;
}

std::size_t StackNetwork::substeps_for(Time dt) const {
  COOLPIM_REQUIRE(dt > Time::zero(), "transient step must be positive");
  const double n = std::ceil(dt.as_sec() / stable_dt.as_sec());
  // Fail loudly on the tall-stack/fine-grid collapse: an explicit step that
  // needs millions of substeps is a hang masquerading as progress.  The ADI
  // kernel (BatchStackModel, TransientKernel::kAdi) is unconditionally
  // stable and exists for exactly this regime.
  COOLPIM_REQUIRE(n <= static_cast<double>(kMaxTransientSubsteps),
                  "explicit transient step needs " + std::to_string(n) +
                      " substeps (> kMaxTransientSubsteps); stable dt has collapsed -- "
                      "shorten the step or use the ADI kernel "
                      "(thermal::TransientKernel::kAdi)");
  return static_cast<std::size_t>(n);
}

StackModel::StackModel(StackSpec spec) : spec_{std::move(spec)} {
  spec_.validate();
  n_cells_ = spec_.floorplan.grid.cells();
  n_nodes_ = n_cells_ * spec_.layers.size();
  // Ghost-padded field: one layer-sized block of ambient cells before and
  // after the live nodes, so neighbour reads at +/-1, +/-nx and +/-n_cells
  // stay in-bounds at every boundary.
  temp_.assign(n_nodes_ + 2 * n_cells_, spec_.ambient.as_kelvin());
  scratch_.assign(n_nodes_ + 2 * n_cells_, spec_.ambient.as_kelvin());
  sink_temp_k_ = spec_.ambient.as_kelvin();
  power_w_.assign(n_nodes_, 0.0);
  stats_.resize(spec_.layers.size());
  net_ = StackNetwork::build(spec_);
}

void StackModel::set_layer_power(std::size_t layer, const PowerMap& power) {
  COOLPIM_REQUIRE(layer < spec_.layers.size(), "layer index out of range");
  COOLPIM_ASSERT(power.dims().cells() == n_cells_);
  for (std::size_t c = 0; c < n_cells_; ++c) {
    power_w_[node(layer, c)] = power.at(c);
  }
}

void StackModel::clear_power() { std::fill(power_w_.begin(), power_w_.end(), 0.0); }

std::size_t StackModel::solve_steady(double tolerance_k, std::size_t max_iters,
                                     SteadyStart start) {
  double total_watts = spec_.co_heater_watts;
  for (const double p : power_w_) total_watts += p;

  if (start == SteadyStart::kCold) {
    reset_to_ambient();
  } else if (start == SteadyStart::kWarmScaled && hist1_.watts > 0.0) {
    // Shape the initial guess from previous solves (the network is linear in
    // power, so solutions extrapolate well along a sweep).  With two history
    // points, per-node secant extrapolation in total power tracks even the
    // changing spatial shape of the power map; with one, scale the rise over
    // ambient by the total-power ratio.  Either way this only sets the
    // initial guess -- the solve below converges to the same fixed point.
    const double amb = spec_.ambient.as_kelvin();
    double* T = field();
    const double dp = hist1_.watts - hist2_.watts;
    if (hist2_.watts > 0.0 && std::abs(dp) > 1e-9 * hist1_.watts) {
      const double a = (total_watts - hist1_.watts) / dp;
      for (std::size_t i = 0; i < n_nodes_; ++i) {
        T[i] = hist1_.field[i] + a * (hist1_.field[i] - hist2_.field[i]);
      }
      sink_temp_k_ = hist1_.sink_k + a * (hist1_.sink_k - hist2_.sink_k);
    } else if (total_watts > 0.0) {
      const double k = total_watts / hist1_.watts;
      for (std::size_t i = 0; i < n_nodes_; ++i) T[i] = amb + (T[i] - amb) * k;
      sink_temp_k_ = amb + (sink_temp_k_ - amb) * k;
    }
  }

  const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(spec_.floorplan.grid.nx);
  const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(n_cells_);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(n_nodes_);
  const std::size_t n_layers = spec_.layers.size();
  const double ambient_k = spec_.ambient.as_kelvin();
  const double omega = 1.85;  // SOR over-relaxation
  double* T = field();

  std::size_t iter = 0;
  for (; iter < max_iters; ++iter) {
    double max_delta = 0.0;

    // Sink node first (Gauss-Seidel: uses the freshest neighbour values).
    {
      double num = net_.g_sink_ambient * ambient_k + spec_.co_heater_watts;
      const double* top = T + static_cast<std::ptrdiff_t>((n_layers - 1) * n_cells_);
      const double* gs = net_.g_sink.data() + static_cast<std::ptrdiff_t>((n_layers - 1) * n_cells_);
      for (std::ptrdiff_t c = 0; c < nc; ++c) {
        num += gs[c] * top[c];
      }
      const double t_new = num / net_.sink_g_total;
      max_delta = std::max(max_delta, std::abs(t_new - sink_temp_k_));
      sink_temp_k_ = t_new;
    }

    // Branch-free SOR sweep: boundary directions carry a zero conductance,
    // so their ghost reads contribute an exact +0.0 (same bits as the old
    // guarded loop that skipped them).
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const double* Ti = T + i;
      double num = power_w_[static_cast<std::size_t>(i)];
      num += net_.g_east[static_cast<std::size_t>(i)] * Ti[1];
      num += net_.g_west[static_cast<std::size_t>(i)] * Ti[-1];
      num += net_.g_north[static_cast<std::size_t>(i)] * Ti[nx];
      num += net_.g_south[static_cast<std::size_t>(i)] * Ti[-nx];
      num += net_.g_up[static_cast<std::size_t>(i)] * Ti[nc];
      num += net_.g_down[static_cast<std::size_t>(i)] * Ti[-nc];
      num += net_.g_sink[static_cast<std::size_t>(i)] * sink_temp_k_;
      num += net_.g_board[static_cast<std::size_t>(i)] * ambient_k;

      const double t_old = *Ti;
      const double t_gs = num / net_.g_diag[static_cast<std::size_t>(i)];
      const double t_new = t_old + omega * (t_gs - t_old);
      max_delta = std::max(max_delta, std::abs(t_new - t_old));
      T[i] = t_new;
    }

    if (max_delta < tolerance_k) break;
  }
  COOLPIM_ASSERT_MSG(iter < max_iters, "steady-state solve did not converge");
  mark_temps_changed();
  // Record this solution for future kWarmScaled guesses.  The swap recycles
  // the older slot's buffer, so after two solves this is allocation-free.
  std::swap(hist1_, hist2_);
  hist1_.field.assign(T, T + n);
  hist1_.sink_k = sink_temp_k_;
  hist1_.watts = total_watts;
  return iter + 1;
}

std::size_t StackModel::substeps_for(Time dt) const { return net_.substeps_for(dt); }

namespace {

// Runtime-dispatched AVX2 clones of the stencil kernels where the toolchain
// supports ifunc multiversioning (x86-64 ELF).  AVX2 widens the vectors to
// four lanes; it does not enable FMA, so every lane performs the same IEEE
// mul/add/div sequence and results stay bit-identical to the default clone.
#if defined(__x86_64__) && defined(__ELF__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define COOLPIM_STENCIL_CLONES __attribute__((target_clones("default", "avx2")))
#endif
#endif
#ifndef COOLPIM_STENCIL_CLONES
#define COOLPIM_STENCIL_CLONES
#endif

/// One explicit-Euler substep over one layer below the top one: a pure
/// elementwise map with no reduction, written as a free function with
/// __restrict parameters so GCC's dependence analysis vectorizes it (the
/// qualifier is only reliably honoured on function parameters).  The sink
/// term is omitted entirely: g_sink is zero below the top layer, and
/// skipping a `flow += 0 * (...)` is bit-exact because `flow` is never -0.0
/// at that point (power is non-negative and a round-to-nearest sum of
/// cancelling non-zeros yields +0.0), so adding the zero product could not
/// have changed it.
///
/// Vertical, board, capacitance and north/south conductances are uniform
/// over a whole row band by construction (uniform cell geometry, per-layer
/// material; the north/south links only vanish on the first/last row), so
/// they arrive as broadcast scalars -- the exact values the table-driven
/// reference loads per cell.  Only the east table remains an array: its
/// row-edge zeros sit mid-span, and reading it at i and i-1 covers the
/// west link too.  One layer is three contiguous spans: first row, interior
/// rows, last row.
COOLPIM_STENCIL_CLONES
void substep_span(const double* __restrict T, double* __restrict N,
                  const double* __restrict pw, const double* __restrict ge,
                  std::ptrdiff_t begin, std::ptrdiff_t end, std::ptrdiff_t nx,
                  std::ptrdiff_t nc, double g_n, double g_s, double g_up, double g_down,
                  double g_board, double cap, double h, double ambient_k) {
  for (std::ptrdiff_t i = begin; i < end; ++i) {
    const double t = T[i];
    double flow = pw[i];
    flow += ge[i] * (T[i + 1] - t);
    flow += ge[i - 1] * (T[i - 1] - t);
    flow += g_n * (T[i + nx] - t);
    flow += g_s * (T[i - nx] - t);
    flow += g_up * (T[i + nc] - t);
    flow += g_down * (T[i - nc] - t);
    flow += g_board * (ambient_k - t);
    N[i] = t + h * flow / cap;
  }
}

/// Top-layer substep: same stencil plus the TIM coupling into the lumped
/// sink node.  The scalar sink_flow reduction confines the only
/// vectorization-hostile statement of the sweep to these n_cells nodes.
/// Returns the accumulated heat flow into the sink.
COOLPIM_STENCIL_CLONES
double substep_top(const double* __restrict T, double* __restrict N,
                   const double* __restrict pw, const double* __restrict ge,
                   const double* __restrict gn, const double* __restrict gu,
                   const double* __restrict gsk, const double* __restrict gb,
                   const double* __restrict cap, std::ptrdiff_t nx, std::ptrdiff_t nc,
                   std::ptrdiff_t top, std::ptrdiff_t n, double h, double ambient_k,
                   double sink_t, double sink_flow) {
  for (std::ptrdiff_t i = top; i < n; ++i) {
    const double t = T[i];
    double flow = pw[i];
    flow += ge[i] * (T[i + 1] - t);
    flow += ge[i - 1] * (T[i - 1] - t);
    flow += gn[i] * (T[i + nx] - t);
    flow += gn[i - nx] * (T[i - nx] - t);
    flow += gu[i] * (T[i + nc] - t);
    flow += gu[i - nc] * (T[i - nc] - t);
    const double f = gsk[i] * (sink_t - t);
    flow += f;
    sink_flow -= f;
    flow += gb[i] * (ambient_k - t);
    N[i] = t + h * flow / cap[i];
  }
  return sink_flow;
}

}  // namespace

void StackModel::step(Time dt) {
  const double total = dt.as_sec();
  const std::size_t n_sub = substeps_for(dt);
  const double h = total / static_cast<double>(n_sub);
  const double ambient_k = spec_.ambient.as_kelvin();

  const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(spec_.floorplan.grid.nx);
  const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(spec_.floorplan.grid.ny);
  const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(n_cells_);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(n_nodes_);
  const double* pw = power_w_.data();
  const double* ge = net_.g_east_pad.data() + nc;  // ge[i-1] is the west link
  const double* gn = net_.g_north_pad.data() + nc;
  const double* gu = net_.g_up_pad.data() + nc;
  const double* gsk = net_.g_sink.data();
  const double* gb = net_.g_board.data();
  const double* cap = net_.cap.data();
  const std::ptrdiff_t top = n - nc;

  const std::size_t n_layers = spec_.layers.size();

  for (std::size_t s = 0; s < n_sub; ++s) {
    const double* T = temp_.data() + nc;
    double* N = scratch_.data() + nc;
    const double sink_t = sink_temp_k_;
    double sink_flow = net_.g_sink_ambient * (ambient_k - sink_t) + spec_.co_heater_watts;
    for (std::size_t l = 0; l + 1 < n_layers; ++l) {
      const std::ptrdiff_t base = static_cast<std::ptrdiff_t>(l) * nc;
      // Per-layer uniform conductances, read once from the tables (cell 0
      // has live north/up links whenever the grid extends that way).  The
      // down-link of layer 0 is the zero pad: its ghost-temperature term
      // contributes an exact +/-0.0, as in the fused table-driven sweep.
      const double g_n_l = gn[base];
      const double g_up_l = gu[base];
      const double g_down_l = gu[base - nc];
      const double g_board_l = gb[base];
      const double cap_l = cap[base];
      const double* Tl = T + base;
      double* Nl = N + base;
      const double* pwl = pw + base;
      const double* gel = ge + base;
      if (ny == 1) {
        substep_span(Tl, Nl, pwl, gel, 0, nc, nx, nc, 0.0, 0.0, g_up_l, g_down_l, g_board_l,
                     cap_l, h, ambient_k);
      } else {
        substep_span(Tl, Nl, pwl, gel, 0, nx, nx, nc, g_n_l, 0.0, g_up_l, g_down_l, g_board_l,
                     cap_l, h, ambient_k);
        substep_span(Tl, Nl, pwl, gel, nx, nc - nx, nx, nc, g_n_l, g_n_l, g_up_l, g_down_l,
                     g_board_l, cap_l, h, ambient_k);
        substep_span(Tl, Nl, pwl, gel, nc - nx, nc, nx, nc, 0.0, g_n_l, g_up_l, g_down_l,
                     g_board_l, cap_l, h, ambient_k);
      }
    }
    sink_flow = substep_top(T, N, pw, ge, gn, gu, gsk, gb, cap, nx, nc, top, n, h, ambient_k,
                            sink_t, sink_flow);
    sink_temp_k_ += h * sink_flow / spec_.sink_heat_capacity;
    temp_.swap(scratch_);
  }
  mark_temps_changed();
}

void StackModel::step_reference(Time dt) {
  const double total = dt.as_sec();
  const std::size_t n_sub = substeps_for(dt);
  const double h = total / static_cast<double>(n_sub);

  const auto& fp = spec_.floorplan;
  const std::size_t nx = fp.grid.nx;
  const std::size_t ny = fp.grid.ny;
  const std::size_t n_layers = spec_.layers.size();
  const double ambient_k = spec_.ambient.as_kelvin();
  double* T = field();

  std::vector<double> next(n_nodes_);
  for (std::size_t s = 0; s < n_sub; ++s) {
    double sink_flow = net_.g_sink_ambient * (ambient_k - sink_temp_k_) + spec_.co_heater_watts;
    for (std::size_t l = 0; l < n_layers; ++l) {
      for (std::size_t y = 0; y < ny; ++y) {
        for (std::size_t x = 0; x < nx; ++x) {
          const std::size_t nidx = node(l, fp.grid.index(x, y));
          const double t = T[nidx];
          double flow = power_w_[nidx];
          if (x + 1 < nx) flow += net_.g_east[nidx] * (T[nidx + 1] - t);
          if (x > 0) flow += net_.g_west[nidx] * (T[nidx - 1] - t);
          if (y + 1 < ny) flow += net_.g_north[nidx] * (T[nidx + nx] - t);
          if (y > 0) flow += net_.g_south[nidx] * (T[nidx - nx] - t);
          if (l + 1 < n_layers) flow += net_.g_up[nidx] * (T[nidx + n_cells_] - t);
          if (l > 0) flow += net_.g_down[nidx] * (T[nidx - n_cells_] - t);
          if (net_.g_sink[nidx] > 0.0) {
            const double f = net_.g_sink[nidx] * (sink_temp_k_ - t);
            flow += f;
            sink_flow -= f;
          }
          flow += net_.g_board[nidx] * (ambient_k - t);
          next[nidx] = t + h * flow / net_.cap[nidx];
        }
      }
    }
    sink_temp_k_ += h * sink_flow / spec_.sink_heat_capacity;
    std::copy(next.begin(), next.end(), T);
  }
  mark_temps_changed();
}

void StackModel::reset_to_ambient() {
  std::fill(temp_.begin(), temp_.end(), spec_.ambient.as_kelvin());
  sink_temp_k_ = spec_.ambient.as_kelvin();
  mark_temps_changed();
}

const std::vector<StackModel::LayerStat>& StackModel::stats() const {
  if (stats_dirty_) {
    const double* T = field();
    const std::size_t n_layers = spec_.layers.size();
    for (std::size_t l = 0; l < n_layers; ++l) {
      const double* base = T + static_cast<std::ptrdiff_t>(l * n_cells_);
      double peak = base[0];
      double acc = 0.0;
      for (std::size_t c = 0; c < n_cells_; ++c) {
        peak = std::max(peak, base[c]);
        acc += base[c];
      }
      stats_[l] = LayerStat{peak, acc / static_cast<double>(n_cells_)};
    }
    stats_dirty_ = false;
  }
  return stats_;
}

Celsius StackModel::cell_temp(std::size_t layer, std::size_t cell) const {
  COOLPIM_ASSERT(layer < spec_.layers.size() && cell < n_cells_);
  return Celsius::from_kelvin(field()[layer * n_cells_ + cell]);
}

Celsius StackModel::layer_peak(std::size_t layer) const {
  COOLPIM_ASSERT(layer < spec_.layers.size());
  return Celsius::from_kelvin(stats()[layer].peak_k);
}

Celsius StackModel::layer_mean(std::size_t layer) const {
  COOLPIM_ASSERT(layer < spec_.layers.size());
  return Celsius::from_kelvin(stats()[layer].mean_k);
}

Celsius StackModel::peak_over_layers(std::size_t first, std::size_t last) const {
  COOLPIM_ASSERT(first <= last && last < spec_.layers.size());
  const auto& st = stats();
  double peak = -1e9;
  for (std::size_t l = first; l <= last; ++l) {
    peak = std::max(peak, Celsius::from_kelvin(st[l].peak_k).value());
  }
  return Celsius{peak};
}

Celsius StackModel::sink_temp() const { return Celsius::from_kelvin(sink_temp_k_); }

Celsius StackModel::surface_temp() const {
  // The camera sees the package lid: close to the top-die mean, pulled a few
  // degrees toward the sink by the lid/TIM gradient.
  const double top_mean = layer_mean(spec_.layers.size() - 1).value();
  const double sink = sink_temp().value();
  return Celsius{0.7 * top_mean + 0.3 * sink};
}

std::vector<double> StackModel::layer_field(std::size_t layer) const {
  COOLPIM_ASSERT(layer < spec_.layers.size());
  std::vector<double> out(n_cells_);
  const double* T = field();
  for (std::size_t c = 0; c < n_cells_; ++c) {
    out[c] = Celsius::from_kelvin(T[layer * n_cells_ + c]).value();
  }
  return out;
}

}  // namespace coolpim::thermal
