#include "thermal/stack_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace coolpim::thermal {

void StackSpec::validate() const {
  floorplan.validate();
  COOLPIM_REQUIRE(!layers.empty(), "stack needs at least one layer");
  COOLPIM_REQUIRE(tim_r > 0, "TIM resistance must be positive");
  COOLPIM_REQUIRE(sink_r.value() > 0, "sink resistance must be positive");
  COOLPIM_REQUIRE(board_r > 0, "board resistance must be positive");
  COOLPIM_REQUIRE(sink_heat_capacity > 0, "sink heat capacity must be positive");
  for (const auto& l : layers) {
    COOLPIM_REQUIRE(l.thickness_m > 0 && l.conductivity > 0 && l.volumetric_heat_capacity > 0,
                    "layer properties must be positive: " + l.name);
    COOLPIM_REQUIRE(l.interface_r_above > 0, "interface resistance must be positive: " + l.name);
  }
}

StackModel::StackModel(StackSpec spec) : spec_{std::move(spec)} {
  spec_.validate();
  n_cells_ = spec_.floorplan.grid.cells();
  n_nodes_ = n_cells_ * spec_.layers.size();
  temp_k_.assign(n_nodes_, spec_.ambient.as_kelvin());
  sink_temp_k_ = spec_.ambient.as_kelvin();
  power_w_.assign(n_nodes_, 0.0);
  build_network();
}

void StackModel::build_network() {
  const auto& fp = spec_.floorplan;
  const std::size_t nx = fp.grid.nx;
  const std::size_t ny = fp.grid.ny;
  const double cw = fp.cell_width_m();
  const double ch = fp.cell_height_m();
  const double area = fp.cell_area_m2();
  const std::size_t n_layers = spec_.layers.size();

  g_east_.assign(n_nodes_, 0.0);
  g_north_.assign(n_nodes_, 0.0);
  g_up_.assign(n_nodes_, 0.0);
  g_sink_.assign(n_nodes_, 0.0);
  g_board_.assign(n_nodes_, 0.0);
  g_diag_.assign(n_nodes_, 0.0);
  cap_.assign(n_nodes_, 0.0);

  for (std::size_t l = 0; l < n_layers; ++l) {
    const auto& layer = spec_.layers[l];
    const double t = layer.thickness_m;
    const double k = layer.conductivity;
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t nidx = node(l, fp.grid.index(x, y));
        cap_[nidx] = layer.volumetric_heat_capacity * area * t;
        // Lateral conduction through the die cross-section.
        if (x + 1 < nx) g_east_[nidx] = k * t * ch / cw;
        if (y + 1 < ny) g_north_[nidx] = k * t * cw / ch;
        // Vertical conduction: half-die + interface + half-die above.
        if (l + 1 < n_layers) {
          const auto& above = spec_.layers[l + 1];
          const double r = t / (2.0 * k) + layer.interface_r_above +
                           above.thickness_m / (2.0 * above.conductivity);
          g_up_[nidx] = area / r;
        } else {
          // Top layer couples to the lumped sink node through half-die + TIM.
          const double r = t / (2.0 * k) + spec_.tim_r;
          g_sink_[nidx] = area / r;
        }
        if (l == 0) {
          // Bottom layer leaks into the board: bulk resistance shared by all
          // bottom cells.
          g_board_[nidx] = 1.0 / (spec_.board_r * static_cast<double>(n_cells_));
        }
      }
    }
  }

  // Accumulate per-node incident conductance for diag / stability.
  for (std::size_t l = 0; l < n_layers; ++l) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t nidx = node(l, fp.grid.index(x, y));
        double g = g_up_[nidx] + g_sink_[nidx] + g_board_[nidx];
        if (x + 1 < nx) g += g_east_[nidx];
        if (x > 0) g += g_east_[nidx - 1];
        if (y + 1 < ny) g += g_north_[nidx];
        if (y > 0) g += g_north_[nidx - nx];
        if (l > 0) g += g_up_[node(l - 1, fp.grid.index(x, y))];
        g_diag_[nidx] = g;
      }
    }
  }

  g_sink_ambient_ = 1.0 / spec_.sink_r.value();
  sink_g_total_ = g_sink_ambient_;
  for (const auto g : g_sink_) sink_g_total_ += g;

  // Stable explicit-Euler step: dt < min_i C_i / G_i (with safety margin).
  double dt_min = spec_.sink_heat_capacity / sink_g_total_;
  for (std::size_t i = 0; i < n_nodes_; ++i) {
    dt_min = std::min(dt_min, cap_[i] / g_diag_[i]);
  }
  stable_dt_ = Time::sec(0.5 * dt_min);
  COOLPIM_ASSERT(stable_dt_ > Time::zero());
}

void StackModel::set_layer_power(std::size_t layer, const PowerMap& power) {
  COOLPIM_REQUIRE(layer < spec_.layers.size(), "layer index out of range");
  COOLPIM_ASSERT(power.dims().cells() == n_cells_);
  for (std::size_t c = 0; c < n_cells_; ++c) {
    power_w_[node(layer, c)] = power.at(c);
  }
}

void StackModel::clear_power() { std::fill(power_w_.begin(), power_w_.end(), 0.0); }

std::size_t StackModel::solve_steady(double tolerance_k, std::size_t max_iters) {
  const auto& fp = spec_.floorplan;
  const std::size_t nx = fp.grid.nx;
  const std::size_t ny = fp.grid.ny;
  const std::size_t n_layers = spec_.layers.size();
  const double ambient_k = spec_.ambient.as_kelvin();
  const double omega = 1.85;  // SOR over-relaxation

  std::size_t iter = 0;
  for (; iter < max_iters; ++iter) {
    double max_delta = 0.0;

    // Sink node first (Gauss-Seidel: uses the freshest neighbour values).
    {
      double num = g_sink_ambient_ * ambient_k + spec_.co_heater_watts;
      for (std::size_t c = 0; c < n_cells_; ++c) {
        const std::size_t nidx = node(n_layers - 1, c);
        num += g_sink_[nidx] * temp_k_[nidx];
      }
      const double t_new = num / sink_g_total_;
      max_delta = std::max(max_delta, std::abs(t_new - sink_temp_k_));
      sink_temp_k_ = t_new;
    }

    for (std::size_t l = 0; l < n_layers; ++l) {
      for (std::size_t y = 0; y < ny; ++y) {
        for (std::size_t x = 0; x < nx; ++x) {
          const std::size_t nidx = node(l, fp.grid.index(x, y));
          double num = power_w_[nidx];
          if (x + 1 < nx) num += g_east_[nidx] * temp_k_[nidx + 1];
          if (x > 0) num += g_east_[nidx - 1] * temp_k_[nidx - 1];
          if (y + 1 < ny) num += g_north_[nidx] * temp_k_[nidx + nx];
          if (y > 0) num += g_north_[nidx - nx] * temp_k_[nidx - nx];
          if (l + 1 < n_layers) num += g_up_[nidx] * temp_k_[nidx + n_cells_];
          if (l > 0) num += g_up_[nidx - n_cells_] * temp_k_[nidx - n_cells_];
          num += g_sink_[nidx] * sink_temp_k_;
          num += g_board_[nidx] * ambient_k;

          const double t_gs = num / g_diag_[nidx];
          const double t_new = temp_k_[nidx] + omega * (t_gs - temp_k_[nidx]);
          max_delta = std::max(max_delta, std::abs(t_new - temp_k_[nidx]));
          temp_k_[nidx] = t_new;
        }
      }
    }

    if (max_delta < tolerance_k) break;
  }
  COOLPIM_ASSERT_MSG(iter < max_iters, "steady-state solve did not converge");
  return iter + 1;
}

void StackModel::step(Time dt) {
  COOLPIM_REQUIRE(dt > Time::zero(), "transient step must be positive");
  const auto& fp = spec_.floorplan;
  const std::size_t nx = fp.grid.nx;
  const std::size_t ny = fp.grid.ny;
  const std::size_t n_layers = spec_.layers.size();
  const double ambient_k = spec_.ambient.as_kelvin();

  const double total = dt.as_sec();
  const double h_max = stable_dt_.as_sec();
  const auto n_sub = static_cast<std::size_t>(std::ceil(total / h_max));
  const double h = total / static_cast<double>(n_sub);

  std::vector<double> next(n_nodes_);
  for (std::size_t s = 0; s < n_sub; ++s) {
    double sink_flow = g_sink_ambient_ * (ambient_k - sink_temp_k_) + spec_.co_heater_watts;
    for (std::size_t l = 0; l < n_layers; ++l) {
      for (std::size_t y = 0; y < ny; ++y) {
        for (std::size_t x = 0; x < nx; ++x) {
          const std::size_t nidx = node(l, fp.grid.index(x, y));
          const double t = temp_k_[nidx];
          double flow = power_w_[nidx];
          if (x + 1 < nx) flow += g_east_[nidx] * (temp_k_[nidx + 1] - t);
          if (x > 0) flow += g_east_[nidx - 1] * (temp_k_[nidx - 1] - t);
          if (y + 1 < ny) flow += g_north_[nidx] * (temp_k_[nidx + nx] - t);
          if (y > 0) flow += g_north_[nidx - nx] * (temp_k_[nidx - nx] - t);
          if (l + 1 < n_layers) flow += g_up_[nidx] * (temp_k_[nidx + n_cells_] - t);
          if (l > 0) flow += g_up_[nidx - n_cells_] * (temp_k_[nidx - n_cells_] - t);
          if (g_sink_[nidx] > 0.0) {
            const double f = g_sink_[nidx] * (sink_temp_k_ - t);
            flow += f;
            sink_flow -= f;
          }
          flow += g_board_[nidx] * (ambient_k - t);
          next[nidx] = t + h * flow / cap_[nidx];
        }
      }
    }
    sink_temp_k_ += h * sink_flow / spec_.sink_heat_capacity;
    temp_k_.swap(next);
  }
}

void StackModel::reset_to_ambient() {
  std::fill(temp_k_.begin(), temp_k_.end(), spec_.ambient.as_kelvin());
  sink_temp_k_ = spec_.ambient.as_kelvin();
}

Celsius StackModel::cell_temp(std::size_t layer, std::size_t cell) const {
  COOLPIM_ASSERT(layer < spec_.layers.size() && cell < n_cells_);
  return Celsius::from_kelvin(temp_k_[layer * n_cells_ + cell]);
}

Celsius StackModel::layer_peak(std::size_t layer) const {
  COOLPIM_ASSERT(layer < spec_.layers.size());
  const auto begin = temp_k_.begin() + static_cast<std::ptrdiff_t>(layer * n_cells_);
  return Celsius::from_kelvin(*std::max_element(begin, begin + static_cast<std::ptrdiff_t>(n_cells_)));
}

Celsius StackModel::layer_mean(std::size_t layer) const {
  COOLPIM_ASSERT(layer < spec_.layers.size());
  double acc = 0.0;
  for (std::size_t c = 0; c < n_cells_; ++c) acc += temp_k_[layer * n_cells_ + c];
  return Celsius::from_kelvin(acc / static_cast<double>(n_cells_));
}

Celsius StackModel::peak_over_layers(std::size_t first, std::size_t last) const {
  COOLPIM_ASSERT(first <= last && last < spec_.layers.size());
  double peak = -1e9;
  for (std::size_t l = first; l <= last; ++l) {
    peak = std::max(peak, layer_peak(l).value());
  }
  return Celsius{peak};
}

Celsius StackModel::sink_temp() const { return Celsius::from_kelvin(sink_temp_k_); }

Celsius StackModel::surface_temp() const {
  // The camera sees the package lid: close to the top-die mean, pulled a few
  // degrees toward the sink by the lid/TIM gradient.
  const double top_mean = layer_mean(spec_.layers.size() - 1).value();
  const double sink = sink_temp().value();
  return Celsius{0.7 * top_mean + 0.3 * sink};
}

std::vector<double> StackModel::layer_field(std::size_t layer) const {
  COOLPIM_ASSERT(layer < spec_.layers.size());
  std::vector<double> out(n_cells_);
  for (std::size_t c = 0; c < n_cells_; ++c) {
    out[c] = Celsius::from_kelvin(temp_k_[layer * n_cells_ + c]).value();
  }
  return out;
}

}  // namespace coolpim::thermal
