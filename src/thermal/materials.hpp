// Material properties for the compact thermal model of a 3D die stack.
//
// Values are standard silicon / underfill / TIM properties from packaging
// literature; they are the *physical* inputs of the model.  The few free
// parameters that real measurements would pin down (interface resistances,
// hotspot concentration) are calibrated in hmc_thermal.cpp against the
// paper's published anchor points (DESIGN.md section 6).
#pragma once

namespace coolpim::thermal {

/// Bulk thermal conductivity, W/(m*K).
struct Conductivity {
  static constexpr double silicon = 120.0;      // thinned die, ~50 um
  static constexpr double underfill = 1.5;      // die-attach / bond layer
  static constexpr double tim = 4.0;            // thermal interface material
  static constexpr double copper = 400.0;       // heat-sink base
};

/// Volumetric heat capacity, J/(m^3*K).
struct HeatCapacity {
  static constexpr double silicon = 1.63e6;
  static constexpr double copper = 3.45e6;
};

/// Layer geometry for a die-stacked memory cube (meters).
struct StackGeometry {
  static constexpr double die_thickness = 50e-6;        // thinned DRAM/logic die
  static constexpr double bond_thickness = 20e-6;       // inter-die bond/underfill
  static constexpr double tim_thickness = 50e-6;        // package TIM to sink
};

}  // namespace coolpim::thermal
