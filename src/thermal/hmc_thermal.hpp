// Calibrated thermal model of an HMC cube (HMC 1.1 and HMC 2.0 variants).
//
// Wires the generic StackModel to HMC floorplans and to the power model's
// PowerBreakdown: logic-die background power goes to the die edge (SerDes
// PHYs), logic dynamic power and PIM FU power concentrate at vault centers
// (vault controllers + FUs -- the paper's Fig. 3 hotspot pattern), and DRAM
// power spreads uniformly over the eight DRAM dies.
//
// Free parameters (interface resistance, TIM, spread radius) are fixed by
// the calibration anchors in DESIGN.md section 6; tests/thermal assert them.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "thermal/batch_stack_model.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/stack_model.hpp"

namespace coolpim::thermal {

struct HmcThermalConfig {
  std::size_t dram_dies{8};
  Floorplan floorplan{};                 // defaults: 68 mm^2, 8x4 vaults
  power::CoolingSolution cooling{power::cooling(power::CoolingType::kCommodityServer)};
  Celsius ambient{25.0};
  /// Heat from a co-packaged component sharing the heat sink (the AC-510
  /// module's FPGA for the HMC 1.1 prototype experiments).
  double co_heater_watts{0.0};
  /// Inter-die bond/underfill interface resistance, m^2*K/W (calibrated).
  double interface_r{4.5e-6};
  /// TIM resistance top die -> sink, m^2*K/W (calibrated).
  double tim_r{5.0e-6};
  /// Vault-center power spread radius in cells (1 = single cell).
  int vault_spread_cells{1};
  /// Transient-response calibration: scales the die heat capacity so the
  /// stack's thermal time constant matches the ~1 ms response the paper's
  /// KitFox/3D-ICE setup exhibits (Fig. 8, T_thermal).  Physically this
  /// corresponds to tracking only the dies' active regions; steady-state
  /// results are unaffected.
  double heat_capacity_scale{0.045};
  /// Heat-sink node capacitance, J/K.  3D-ICE-style boundary condition: the
  /// sink is modelled as a convective boundary, not a finned thermal mass,
  /// so the whole stack equilibrates on the millisecond scale the paper's
  /// feedback loop (Fig. 8) is built around.
  double sink_heat_capacity{0.006};
};

/// HMC 2.0 cube: 8 DRAM dies over 1 logic die, 32 vaults.
[[nodiscard]] HmcThermalConfig hmc20_thermal_config(power::CoolingType cooling);

/// HMC 1.1 cube on the AC-510 module: 4 DRAM dies, 16 vaults, FPGA sharing
/// the module heat sink.
[[nodiscard]] HmcThermalConfig hmc11_thermal_config(power::CoolingType cooling,
                                                    double fpga_watts = 20.0);

class HmcThermalModel {
 public:
  explicit HmcThermalModel(HmcThermalConfig cfg);

  /// Distribute a power breakdown onto the stack's layers.
  void apply_power(const power::PowerBreakdown& power);

  /// Steady-state solve with the currently applied power.  Returns the
  /// solver iteration count.  The temperature field persists between calls,
  /// so with the default kWarm start a parameter sweep re-converges from the
  /// previous point's solution instead of from ambient (docs/PERFORMANCE.md);
  /// pass SteadyStart::kCold to reproduce a from-scratch solve.
  std::size_t solve_steady(SteadyStart start = SteadyStart::kWarm);

  /// Advance the transient solution.
  void step(Time dt);

  /// Reset the whole stack to ambient.
  void reset();

  // ---- Lane binding (batched sweep executor, DESIGN.md section 14) --------
  //
  // A bound model keeps its transient state in one lane of a shared
  // BatchStackModel instead of in its scalar StackModel: the executor
  // advances all bound models' lanes with one SoA sweep per epoch and then
  // calls note_stepped() on each, which performs exactly the bookkeeping
  // (counters, gauges, trace events) a scalar step() would.  Every
  // temperature query routes through the lane (the batch's per-lane
  // reductions are the scalar reductions verbatim), and steady solves
  // round-trip lane -> scalar SOR -> lane, so a bound run's temperatures,
  // trace streams and results are bit-identical to an unbound one.

  /// Bind to `lane` of `batch`, importing the current scalar state (exact
  /// copies).  The batch must outlive the binding.
  void bind_lane(BatchStackModel* batch, std::size_t lane);
  /// Export the lane back into the scalar stack and detach.
  void unbind_lane();
  [[nodiscard]] bool lane_bound() const { return batch_ != nullptr; }
  /// Post-step bookkeeping for an externally advanced lane: identical
  /// counters/gauges/trace to step(dt) minus the stack_.step(dt) itself.
  void note_stepped(Time dt);

  [[nodiscard]] Celsius peak_dram() const;
  [[nodiscard]] Celsius peak_logic() const;
  [[nodiscard]] Celsius mean_dram() const;
  [[nodiscard]] Celsius surface() const { return stack_.surface_temp(); }
  /// Junction (die) estimate from a surface reading using the paper's rule of
  /// thumb: 5-10 C above surface per ~20 W dissipated.
  [[nodiscard]] static Celsius estimate_die_from_surface(Celsius surface, Watts power);

  [[nodiscard]] const StackModel& stack() const { return stack_; }
  /// Mutable stack access for benches/tests that drive the solver kernels
  /// directly (e.g. bench/perf_thermal.cpp timing step_reference()).
  [[nodiscard]] StackModel& stack() { return stack_; }
  [[nodiscard]] const HmcThermalConfig& config() const { return cfg_; }
  /// Logic-layer temperature field (for heat maps, paper Fig. 3).
  [[nodiscard]] std::vector<double> logic_heatmap() const { return stack_.layer_field(0); }

  /// Attach observability (category "thermal"): a complete-span per step()
  /// with peak temperatures, peak_dram_c/peak_logic_c counter tracks, and a
  /// `warning_crossing` instant (with per-die temperatures) whenever the
  /// peak DRAM temperature crosses `warn_limit`.  step() has no absolute-time
  /// parameter, so events are stamped with an internal clock the driver
  /// re-syncs via sync_trace_clock() each epoch.  Recording is read-only;
  /// the thermal solution is unaffected.
  void set_observer(obs::Trace trace, obs::CounterRegistry* counters, Celsius warn_limit) {
    trace_ = trace;
    counters_ = counters;
    warn_limit_ = warn_limit;
  }
  void sync_trace_clock(Time now) { clock_ = now; }

  /// The StackSpec this config compiles to (public so the batched sweep
  /// executor can size a BatchStackModel for a group of experiments).
  [[nodiscard]] static StackSpec build_stack_spec(const HmcThermalConfig& cfg);

 private:
  /// Shared tail of step()/note_stepped(): clock, reductions, counters, trace.
  void finish_step(Time dt);
  [[nodiscard]] Celsius layer_peak_at(std::size_t layer) const {
    return batch_ != nullptr ? batch_->layer_peak(lane_, layer) : stack_.layer_peak(layer);
  }

  HmcThermalConfig cfg_;
  StackModel stack_;
  BatchStackModel* batch_{nullptr};
  std::size_t lane_{0};

  obs::Trace trace_;
  obs::CounterRegistry* counters_{nullptr};
  Celsius warn_limit_{85.0};
  Time clock_{Time::zero()};
  bool above_limit_{false};
};

}  // namespace coolpim::thermal
