#include "thermal/floorplan.hpp"

#include <algorithm>
#include <numeric>

namespace coolpim::thermal {

std::size_t Floorplan::vault_center_cell(std::size_t vx, std::size_t vy) const {
  COOLPIM_ASSERT(vx < vaults_x && vy < vaults_y);
  const double fx = (static_cast<double>(vx) + 0.5) / static_cast<double>(vaults_x);
  const double fy = (static_cast<double>(vy) + 0.5) / static_cast<double>(vaults_y);
  const auto cx = std::min(grid.nx - 1, static_cast<std::size_t>(fx * static_cast<double>(grid.nx)));
  const auto cy = std::min(grid.ny - 1, static_cast<std::size_t>(fy * static_cast<double>(grid.ny)));
  return grid.index(cx, cy);
}

void Floorplan::validate() const {
  COOLPIM_REQUIRE(die_width_m > 0 && die_height_m > 0, "die dimensions must be positive");
  COOLPIM_REQUIRE(vaults_x > 0 && vaults_y > 0, "need at least one vault");
  COOLPIM_REQUIRE(grid.nx >= vaults_x && grid.ny >= vaults_y,
                  "grid must resolve individual vaults");
}

void PowerMap::add(const PowerMap& other) {
  COOLPIM_ASSERT(other.watts_.size() == watts_.size());
  for (std::size_t i = 0; i < watts_.size(); ++i) watts_[i] += other.watts_[i];
}

double PowerMap::total() const {
  return std::accumulate(watts_.begin(), watts_.end(), 0.0);
}

void PowerMap::scale(double k) {
  for (auto& w : watts_) w *= k;
}

void PowerMap::clear() { std::fill(watts_.begin(), watts_.end(), 0.0); }

PowerMap uniform_power(const Floorplan& fp, double total_watts) {
  PowerMap map{fp.grid};
  const double per_cell = total_watts / static_cast<double>(fp.grid.cells());
  for (std::size_t i = 0; i < fp.grid.cells(); ++i) map.add(i, per_cell);
  return map;
}

PowerMap vault_centered_power(const Floorplan& fp, double total_watts, int spread_cells) {
  COOLPIM_REQUIRE(spread_cells >= 1, "spread_cells must be >= 1");
  PowerMap map{fp.grid};
  const double per_vault = total_watts / static_cast<double>(fp.vault_count());
  const int radius = spread_cells - 1;
  for (std::size_t vy = 0; vy < fp.vaults_y; ++vy) {
    for (std::size_t vx = 0; vx < fp.vaults_x; ++vx) {
      const std::size_t center = fp.vault_center_cell(vx, vy);
      const auto cx = static_cast<int>(center % fp.grid.nx);
      const auto cy = static_cast<int>(center / fp.grid.nx);
      // Collect the (2r+1)^2 block clipped to the die, then share equally.
      std::vector<std::size_t> cells;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          const int x = cx + dx, y = cy + dy;
          if (x < 0 || y < 0 || x >= static_cast<int>(fp.grid.nx) ||
              y >= static_cast<int>(fp.grid.ny)) {
            continue;
          }
          cells.push_back(fp.grid.index(static_cast<std::size_t>(x), static_cast<std::size_t>(y)));
        }
      }
      for (const auto c : cells) map.add(c, per_vault / static_cast<double>(cells.size()));
    }
  }
  return map;
}

PowerMap edge_power(const Floorplan& fp, double total_watts) {
  PowerMap map{fp.grid};
  std::vector<std::size_t> edge;
  for (std::size_t y = 0; y < fp.grid.ny; ++y) {
    for (std::size_t x = 0; x < fp.grid.nx; ++x) {
      if (x == 0 || y == 0 || x == fp.grid.nx - 1 || y == fp.grid.ny - 1) {
        edge.push_back(fp.grid.index(x, y));
      }
    }
  }
  COOLPIM_ASSERT(!edge.empty());
  for (const auto c : edge) map.add(c, total_watts / static_cast<double>(edge.size()));
  return map;
}

}  // namespace coolpim::thermal
