// Batched transient solver: N independent thermal lanes over one compiled
// stencil network, advanced together by a single sweep pass per substep.
//
// Layout (docs/PERFORMANCE.md section 7, DESIGN.md section 13): temperatures
// are stored lane-major structure-of-arrays -- T[node][lane] with the lane
// index contiguous -- so the hot loops vectorize across *lanes* instead of
// across the cells of one small grid.  Every lane carries its own power map,
// ambient and lumped-sink state; the conductance tables are shared (all
// lanes solve the same StackSpec geometry), read once per node and broadcast
// over the lane vector.
//
// Contracts:
//  - kExplicit lanes are bit-identical to a scalar StackModel driven with the
//    same spec/ambient/power via step_reference(): per lane, every substep
//    performs the same IEEE mul/add/div sequence in the same order, and the
//    batch width never enters the arithmetic.  Lane order is therefore also
//    irrelevant (permutation invariance).
//  - kAdi is an unconditionally stable alternating-direction implicit kernel
//    (Lie splitting, backward-Euler line solves via the Thomas algorithm,
//    batched across lanes) for tall-stack/fine-grid geometries where the
//    explicit stable dt collapses.  It is NOT bit-identical to the explicit
//    kernel; it matches a tight-dt explicit reference within a documented
//    tolerance (DESIGN.md section 13).
//  - step() never allocates after construction (counting-allocator pinned),
//    including the ADI refactorization when the substep length changes.
//
// Lane lifecycle (the batched sweep executor, DESIGN.md section 14): lanes
// can be loaded from / stored to scalar StackModels at any time.  load_lane,
// store_lane and reset_lane touch only that lane's strided slots, so
// surviving lanes are bit-unaffected by any retire/refill order.  step_lanes
// advances each lane by its own dt (0 = idle): a lane that needs fewer
// substeps than the longest-running lane coasts through the remaining sweep
// rounds with h = 0, which adds an exact (+/-)0.0 to every positive-Kelvin
// temperature and therefore preserves its state bit-for-bit.  Mixed
// geometries (same grid dims and layer count, different materials / sink /
// TIM) are supported by per-lane conductance tables, materialized lazily on
// the first load_lane whose compiled network differs from the shared one.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "obs/counters.hpp"
#include "thermal/stack_model.hpp"

namespace coolpim::thermal {

/// Which transient integrator a BatchStackModel runs.
enum class TransientKernel {
  kExplicit,  ///< explicit Euler at the stable substep; bit-identical per lane
  kAdi,       ///< implicit ADI line solves; unconditionally stable, tolerance-bounded
};

struct BatchOptions {
  TransientKernel kernel{TransientKernel::kExplicit};
  /// ADI substep length as a multiple of the explicit stable dt.  The ADI
  /// pass is unconditionally stable, so this trades splitting error against
  /// work; 32 keeps a 16-high HBM stack within the documented tolerance of a
  /// tight-dt explicit reference while doing ~32x fewer passes.
  double adi_dt_factor{32.0};
};

class BatchStackModel {
 public:
  BatchStackModel(StackSpec spec, std::size_t lanes, BatchOptions opt = {});

  [[nodiscard]] const StackSpec& spec() const { return spec_; }
  [[nodiscard]] const BatchOptions& options() const { return opt_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] std::size_t layer_count() const { return spec_.layers.size(); }
  [[nodiscard]] std::size_t cells_per_layer() const { return net_.n_cells; }
  [[nodiscard]] std::size_t node_count() const { return net_.n_nodes; }

  /// Replace one lane's power map for one layer (watts per cell).
  void set_layer_power(std::size_t lane, std::size_t layer, const PowerMap& power);
  /// Replace one lane's power for one layer with a uniform total.
  void set_layer_power_uniform(std::size_t lane, std::size_t layer, double total_watts);
  /// Clear all power on all lanes.
  void clear_power();

  /// Per-lane ambient (default: spec.ambient).  Models e.g. a rack thermal
  /// gradient across fleet nodes sharing one geometry.  Does not touch the
  /// current temperature field.
  void set_lane_ambient(std::size_t lane, Celsius ambient);
  [[nodiscard]] Celsius lane_ambient(std::size_t lane) const;

  /// Advance every lane by `dt` with the configured kernel.
  void step(Time dt);

  // ---- Lane lifecycle (batched sweep executor) ------------------------------

  /// Import one scalar model's full thermal state -- temperatures, sink,
  /// power, ambient, and (in mixed-geometry batches) its compiled conductance
  /// network -- into one lane.  Requires matching grid dims and layer count;
  /// a source whose network differs from the shared one switches the batch
  /// into mixed-geometry mode (kExplicit only).  Touches only this lane's
  /// strided slots: other lanes' trajectories are bit-unaffected.
  void load_lane(std::size_t lane, const StackModel& src);

  /// Export one lane's temperatures, sink state and power back into a scalar
  /// model (exact copies; the scalar model continues bit-identically).
  void store_lane(std::size_t lane, StackModel& dst) const;

  /// Reset one lane (field + sink) to its own ambient, leaving other lanes
  /// untouched.
  void reset_lane(std::size_t lane);

  /// Advance lane v by dts[v] (Time::zero() = idle, lane state preserved
  /// bit-for-bit).  Each lane substeps at its own stable h; lanes that finish
  /// early coast through the remaining sweep rounds with h = 0.  kExplicit
  /// only.  Per lane this performs the exact IEEE sequence of a scalar
  /// StackModel::step(dts[v]) on the same network.
  void step_lanes(const Time* dts);

  /// step_lanes' per-lane split of one dt, exposed for callers that schedule
  /// lanes themselves: `substeps` rounds of exactly `h` seconds reproduce a
  /// scalar StackModel::step(dt) on this lane's network bit-for-bit
  /// (StackNetwork::substeps_for verbatim, on the same doubles).
  struct LaneStepPlan {
    std::size_t substeps{0};
    double h{0.0};
  };

  /// Split `dt` against `lane`'s stable step.  Throws ConfigError when dt is
  /// non-positive or the count exceeds kMaxTransientSubsteps.  kExplicit only.
  [[nodiscard]] LaneStepPlan lane_step_plan(std::size_t lane, Time dt) const;

  /// One explicit substep: lane v advances by h[v] seconds (0.0 = exact
  /// coast, the lane's state does not move a bit).  Building block for
  /// asynchronous lane scheduling (runner::run_lockstep): a caller that
  /// splits each lane's dt with lane_step_plan and feeds the resulting h for
  /// `substeps` rounds performs the exact per-lane IEEE sequence of
  /// step_lanes -- without forcing short lanes to coast while long lanes
  /// finish.  kExplicit only.
  void substep_lanes(const double* h);

  /// True once a load_lane introduced a network differing from the shared
  /// spec's (per-lane conductance tables in use).
  [[nodiscard]] bool mixed_geometry() const { return mixed_; }

  /// Stable explicit-Euler step of one lane's network (differs per lane in
  /// mixed-geometry batches).
  [[nodiscard]] Time lane_stable_step(std::size_t lane) const;

  /// Substeps one step(dt) performs.  kExplicit: the stable-dt count, throwing
  /// ConfigError past kMaxTransientSubsteps (StackNetwork::substeps_for).
  /// kAdi: ceil(dt / (stable_dt * adi_dt_factor)), minimum 1.
  [[nodiscard]] std::size_t substeps_for(Time dt) const;

  /// Reset every lane (field + sink) to its own ambient.
  void reset_to_ambient();

  [[nodiscard]] Celsius cell_temp(std::size_t lane, std::size_t layer, std::size_t cell) const;
  [[nodiscard]] Celsius layer_peak(std::size_t lane, std::size_t layer) const;
  [[nodiscard]] Celsius layer_mean(std::size_t lane, std::size_t layer) const;
  /// Peak over layers [first, last] inclusive for one lane.
  [[nodiscard]] Celsius peak_over_layers(std::size_t lane, std::size_t first,
                                         std::size_t last) const;
  [[nodiscard]] Celsius sink_temp(std::size_t lane) const;

  /// Largest stable explicit-Euler step for the shared network.
  [[nodiscard]] Time stable_step() const { return net_.stable_dt; }
  [[nodiscard]] const StackNetwork& network() const { return net_; }

  /// Attach a counter registry: thermal/batch_lanes, thermal/batch_sweep_passes
  /// and thermal/batch_adi_solves (docs/OBSERVABILITY.md).  Cell references are
  /// cached here so the hot step() path stays allocation-free.
  void set_counters(obs::CounterRegistry* counters);

 private:
  struct LaneLayerStat {
    double peak_k;
    double mean_k;
  };

  [[nodiscard]] double* field() {
    return temp_.data() + static_cast<std::ptrdiff_t>(net_.n_cells * lanes_);
  }
  [[nodiscard]] const double* field() const {
    return temp_.data() + static_cast<std::ptrdiff_t>(net_.n_cells * lanes_);
  }
  void mark_temps_changed() { stats_dirty_ = true; }
  [[nodiscard]] const std::vector<LaneLayerStat>& stats() const;

  void step_explicit(double h, std::size_t n_sub);
  void step_adi(double h, std::size_t n_sub);
  /// Recompute the per-direction Thomas factorizations for substep length h.
  /// Writes into preallocated arrays; no allocation.
  void refactor_adi(double h);
  /// One explicit sweep round with per-lane substep lengths h_lane_ (0 =
  /// coasting lane).  Shared implementation of step_explicit and step_lanes.
  void explicit_round();
  /// Switch to per-lane conductance tables, seeding every lane's slots from
  /// the shared network.  One-way; allocates once.
  void materialize_lane_tables();
  /// Copy `src` into this lane's per-lane table slots and sink parameters.
  void load_lane_network(std::size_t lane, const StackNetwork& src,
                         const StackSpec& src_spec);

  StackSpec spec_;
  BatchOptions opt_;
  std::size_t lanes_{0};
  StackNetwork net_;

  // Lane-major temperatures (Kelvin) with one n_cells*lanes ghost block of
  // per-lane ambient on either end; `scratch_` is the same-shape double-buffer
  // partner (explicit sweep) and Thomas forward-sweep store (ADI).
  std::vector<double> temp_;
  std::vector<double> scratch_;
  std::vector<double> power_w_;     // [node][lane] watts
  std::vector<double> ambient_k_;   // per lane
  std::vector<double> sink_temp_k_;  // per lane
  std::vector<double> sink_flow_;    // per-lane scratch for one substep
  std::vector<double> h_lane_;       // per-lane substep length for one round
  std::vector<double> lane_h_full_;  // per-lane h while the lane is live
  std::vector<std::size_t> lane_subs_;  // per-lane substep counts (step_lanes)

  // Per-lane sink coupling (uniform until a mixed-geometry load_lane).
  std::vector<double> lane_g_sink_ambient_;
  std::vector<double> lane_co_heater_;
  std::vector<double> lane_sink_cap_;
  std::vector<double> lane_stable_dt_s_;  // per-lane explicit stable step

  // Mixed-geometry mode: per-lane conductance/capacity tables, [node][lane]
  // with one n_cells*lanes ghost block of zeros in front of the padded
  // east/north/up views (so the west/south/down reads at node offsets -1,
  // -nx, -n_cells stay in-bounds, mirroring StackNetwork's *_pad layout).
  bool mixed_{false};
  std::vector<double> lane_ge_pad_, lane_gn_pad_, lane_gu_pad_;
  std::vector<double> lane_gsk_, lane_gb_, lane_cap_;

  // ADI factorizations, recomputed (in place) whenever the substep length
  // changes: per-layer Thomas coefficients along x and y, one shared column
  // factorization along z, per-layer cap/h, and the sink-update denominator.
  struct AdiPlan {
    double h{0.0};  // substep the plan was built for; 0 = unbuilt
    std::vector<double> cp_x, inv_x;  // [layer][x]
    std::vector<double> cp_y, inv_y;  // [layer][y]
    std::vector<double> cp_z, inv_z;  // [layer]
    std::vector<double> rc;           // [layer] cap/h
    std::vector<double> gx, gy;       // [layer] lateral link conductance
    std::vector<double> gu;           // [layer] layer -> layer+1 link (0 at top)
    double sink_rc{0.0};
    double inv_sink_den{0.0};
  };
  AdiPlan adi_;

  obs::CounterCell* c_lanes_{nullptr};
  obs::CounterCell* c_sweeps_{nullptr};
  obs::CounterCell* c_adi_{nullptr};

  mutable std::vector<LaneLayerStat> stats_;  // [layer][lane]
  mutable bool stats_dirty_{true};
};

}  // namespace coolpim::thermal
