// Batched transient solver: N independent thermal lanes over one compiled
// stencil network, advanced together by a single sweep pass per substep.
//
// Layout (docs/PERFORMANCE.md section 7, DESIGN.md section 13): temperatures
// are stored lane-major structure-of-arrays -- T[node][lane] with the lane
// index contiguous -- so the hot loops vectorize across *lanes* instead of
// across the cells of one small grid.  Every lane carries its own power map,
// ambient and lumped-sink state; the conductance tables are shared (all
// lanes solve the same StackSpec geometry), read once per node and broadcast
// over the lane vector.
//
// Contracts:
//  - kExplicit lanes are bit-identical to a scalar StackModel driven with the
//    same spec/ambient/power via step_reference(): per lane, every substep
//    performs the same IEEE mul/add/div sequence in the same order, and the
//    batch width never enters the arithmetic.  Lane order is therefore also
//    irrelevant (permutation invariance).
//  - kAdi is an unconditionally stable alternating-direction implicit kernel
//    (Lie splitting, backward-Euler line solves via the Thomas algorithm,
//    batched across lanes) for tall-stack/fine-grid geometries where the
//    explicit stable dt collapses.  It is NOT bit-identical to the explicit
//    kernel; it matches a tight-dt explicit reference within a documented
//    tolerance (DESIGN.md section 13).
//  - step() never allocates after construction (counting-allocator pinned),
//    including the ADI refactorization when the substep length changes.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "obs/counters.hpp"
#include "thermal/stack_model.hpp"

namespace coolpim::thermal {

/// Which transient integrator a BatchStackModel runs.
enum class TransientKernel {
  kExplicit,  ///< explicit Euler at the stable substep; bit-identical per lane
  kAdi,       ///< implicit ADI line solves; unconditionally stable, tolerance-bounded
};

struct BatchOptions {
  TransientKernel kernel{TransientKernel::kExplicit};
  /// ADI substep length as a multiple of the explicit stable dt.  The ADI
  /// pass is unconditionally stable, so this trades splitting error against
  /// work; 32 keeps a 16-high HBM stack within the documented tolerance of a
  /// tight-dt explicit reference while doing ~32x fewer passes.
  double adi_dt_factor{32.0};
};

class BatchStackModel {
 public:
  BatchStackModel(StackSpec spec, std::size_t lanes, BatchOptions opt = {});

  [[nodiscard]] const StackSpec& spec() const { return spec_; }
  [[nodiscard]] const BatchOptions& options() const { return opt_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] std::size_t layer_count() const { return spec_.layers.size(); }
  [[nodiscard]] std::size_t cells_per_layer() const { return net_.n_cells; }
  [[nodiscard]] std::size_t node_count() const { return net_.n_nodes; }

  /// Replace one lane's power map for one layer (watts per cell).
  void set_layer_power(std::size_t lane, std::size_t layer, const PowerMap& power);
  /// Replace one lane's power for one layer with a uniform total.
  void set_layer_power_uniform(std::size_t lane, std::size_t layer, double total_watts);
  /// Clear all power on all lanes.
  void clear_power();

  /// Per-lane ambient (default: spec.ambient).  Models e.g. a rack thermal
  /// gradient across fleet nodes sharing one geometry.  Does not touch the
  /// current temperature field.
  void set_lane_ambient(std::size_t lane, Celsius ambient);
  [[nodiscard]] Celsius lane_ambient(std::size_t lane) const;

  /// Advance every lane by `dt` with the configured kernel.
  void step(Time dt);

  /// Substeps one step(dt) performs.  kExplicit: the stable-dt count, throwing
  /// ConfigError past kMaxTransientSubsteps (StackNetwork::substeps_for).
  /// kAdi: ceil(dt / (stable_dt * adi_dt_factor)), minimum 1.
  [[nodiscard]] std::size_t substeps_for(Time dt) const;

  /// Reset every lane (field + sink) to its own ambient.
  void reset_to_ambient();

  [[nodiscard]] Celsius cell_temp(std::size_t lane, std::size_t layer, std::size_t cell) const;
  [[nodiscard]] Celsius layer_peak(std::size_t lane, std::size_t layer) const;
  [[nodiscard]] Celsius layer_mean(std::size_t lane, std::size_t layer) const;
  /// Peak over layers [first, last] inclusive for one lane.
  [[nodiscard]] Celsius peak_over_layers(std::size_t lane, std::size_t first,
                                         std::size_t last) const;
  [[nodiscard]] Celsius sink_temp(std::size_t lane) const;

  /// Largest stable explicit-Euler step for the shared network.
  [[nodiscard]] Time stable_step() const { return net_.stable_dt; }
  [[nodiscard]] const StackNetwork& network() const { return net_; }

  /// Attach a counter registry: thermal/batch_lanes, thermal/batch_sweep_passes
  /// and thermal/batch_adi_solves (docs/OBSERVABILITY.md).  Cell references are
  /// cached here so the hot step() path stays allocation-free.
  void set_counters(obs::CounterRegistry* counters);

 private:
  struct LaneLayerStat {
    double peak_k;
    double mean_k;
  };

  [[nodiscard]] double* field() {
    return temp_.data() + static_cast<std::ptrdiff_t>(net_.n_cells * lanes_);
  }
  [[nodiscard]] const double* field() const {
    return temp_.data() + static_cast<std::ptrdiff_t>(net_.n_cells * lanes_);
  }
  void mark_temps_changed() { stats_dirty_ = true; }
  [[nodiscard]] const std::vector<LaneLayerStat>& stats() const;

  void step_explicit(double h, std::size_t n_sub);
  void step_adi(double h, std::size_t n_sub);
  /// Recompute the per-direction Thomas factorizations for substep length h.
  /// Writes into preallocated arrays; no allocation.
  void refactor_adi(double h);

  StackSpec spec_;
  BatchOptions opt_;
  std::size_t lanes_{0};
  StackNetwork net_;

  // Lane-major temperatures (Kelvin) with one n_cells*lanes ghost block of
  // per-lane ambient on either end; `scratch_` is the same-shape double-buffer
  // partner (explicit sweep) and Thomas forward-sweep store (ADI).
  std::vector<double> temp_;
  std::vector<double> scratch_;
  std::vector<double> power_w_;     // [node][lane] watts
  std::vector<double> ambient_k_;   // per lane
  std::vector<double> sink_temp_k_;  // per lane
  std::vector<double> sink_flow_;    // per-lane scratch for one substep

  // ADI factorizations, recomputed (in place) whenever the substep length
  // changes: per-layer Thomas coefficients along x and y, one shared column
  // factorization along z, per-layer cap/h, and the sink-update denominator.
  struct AdiPlan {
    double h{0.0};  // substep the plan was built for; 0 = unbuilt
    std::vector<double> cp_x, inv_x;  // [layer][x]
    std::vector<double> cp_y, inv_y;  // [layer][y]
    std::vector<double> cp_z, inv_z;  // [layer]
    std::vector<double> rc;           // [layer] cap/h
    std::vector<double> gx, gy;       // [layer] lateral link conductance
    std::vector<double> gu;           // [layer] layer -> layer+1 link (0 at top)
    double sink_rc{0.0};
    double inv_sink_den{0.0};
  };
  AdiPlan adi_;

  obs::CounterCell* c_lanes_{nullptr};
  obs::CounterCell* c_sweeps_{nullptr};
  obs::CounterCell* c_adi_{nullptr};

  mutable std::vector<LaneLayerStat> stats_;  // [layer][lane]
  mutable bool stats_dirty_{true};
};

}  // namespace coolpim::thermal
