#include "thermal/batch_stack_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/names.hpp"

namespace coolpim::thermal {

namespace {

// Same runtime-dispatch guard as stack_model.cpp: AVX2 widens the lane loop
// to four doubles without FMA, so every lane still performs the exact IEEE
// mul/add/div sequence of the default clone.
#if defined(__x86_64__) && defined(__ELF__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define COOLPIM_STENCIL_CLONES __attribute__((target_clones("default", "avx2")))
#endif
#endif
#ifndef COOLPIM_STENCIL_CLONES
#define COOLPIM_STENCIL_CLONES
#endif

/// One explicit substep over the nodes below the top layer, all lanes at
/// once.  The conductances are node-indexed (shared by every lane) and load
/// once per node; the inner loop runs over the contiguous lane dimension, so
/// the vectorizer stripes *lanes* across the vector registers.  Per lane the
/// term order is exactly StackModel::step_reference(): east, west, north,
/// south, up, down, board -- the sink term is omitted because g_sink is zero
/// below the top layer (same bit-exactness argument as the scalar fast path).
/// The substep length is per lane (hv): uniform stepping passes the same
/// value in every slot, and a coasting lane (hv[v] == 0) gets an exact
/// Ni[v] = t -- the lock-step executor's "finished early" identity round.
COOLPIM_STENCIL_CLONES
void batch_substep_lower(const double* __restrict T, double* __restrict N,
                         const double* __restrict pw, const double* __restrict amb,
                         const double* __restrict ge, const double* __restrict gn,
                         const double* __restrict gu, const double* __restrict gb,
                         const double* __restrict cap, std::ptrdiff_t begin,
                         std::ptrdiff_t end, std::ptrdiff_t nx, std::ptrdiff_t nc,
                         std::ptrdiff_t L, const double* __restrict hv) {
  for (std::ptrdiff_t i = begin; i < end; ++i) {
    const double gei = ge[i];
    const double gwi = ge[i - 1];
    const double gni = gn[i];
    const double gsi = gn[i - nx];
    const double gui = gu[i];
    const double gdi = gu[i - nc];
    const double gbi = gb[i];
    const double ci = cap[i];
    const double* Ti = T + i * L;
    const double* pwi = pw + i * L;
    double* Ni = N + i * L;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double t = Ti[v];
      double flow = pwi[v];
      flow += gei * (Ti[L + v] - t);
      flow += gwi * (Ti[v - L] - t);
      flow += gni * (Ti[nx * L + v] - t);
      flow += gsi * (Ti[v - nx * L] - t);
      flow += gui * (Ti[nc * L + v] - t);
      flow += gdi * (Ti[v - nc * L] - t);
      flow += gbi * (amb[v] - t);
      Ni[v] = t + hv[v] * flow / ci;
    }
  }
}

/// Top-layer substep: the full stencil plus the per-lane TIM->sink exchange,
/// accumulated into sink_flow[lane] in node order (the same reduction order
/// as the scalar sweep, so each lane's sink trajectory is bit-identical).
COOLPIM_STENCIL_CLONES
void batch_substep_top(const double* __restrict T, double* __restrict N,
                       const double* __restrict pw, const double* __restrict amb,
                       const double* __restrict ge, const double* __restrict gn,
                       const double* __restrict gu, const double* __restrict gsk,
                       const double* __restrict gb, const double* __restrict cap,
                       const double* __restrict sink_t, double* __restrict sink_flow,
                       std::ptrdiff_t top, std::ptrdiff_t n, std::ptrdiff_t nx,
                       std::ptrdiff_t nc, std::ptrdiff_t L, const double* __restrict hv) {
  for (std::ptrdiff_t i = top; i < n; ++i) {
    const double gei = ge[i];
    const double gwi = ge[i - 1];
    const double gni = gn[i];
    const double gsi = gn[i - nx];
    const double gui = gu[i];
    const double gdi = gu[i - nc];
    const double gski = gsk[i];
    const double gbi = gb[i];
    const double ci = cap[i];
    const double* Ti = T + i * L;
    const double* pwi = pw + i * L;
    double* Ni = N + i * L;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double t = Ti[v];
      double flow = pwi[v];
      flow += gei * (Ti[L + v] - t);
      flow += gwi * (Ti[v - L] - t);
      flow += gni * (Ti[nx * L + v] - t);
      flow += gsi * (Ti[v - nx * L] - t);
      flow += gui * (Ti[nc * L + v] - t);
      flow += gdi * (Ti[v - nc * L] - t);
      const double f = gski * (sink_t[v] - t);
      flow += f;
      sink_flow[v] -= f;
      flow += gbi * (amb[v] - t);
      Ni[v] = t + hv[v] * flow / ci;
    }
  }
}

/// Mixed-geometry variant of batch_substep_lower: every conductance and
/// capacity table is lane-major ([node][lane]) because lanes carry different
/// compiled networks.  Per lane the term order and arithmetic are unchanged,
/// so a lane whose tables equal the shared network's steps bit-identically
/// to the shared-table kernel.
COOLPIM_STENCIL_CLONES
void batch_substep_lower_mixed(const double* __restrict T, double* __restrict N,
                               const double* __restrict pw, const double* __restrict amb,
                               const double* __restrict ge, const double* __restrict gn,
                               const double* __restrict gu, const double* __restrict gb,
                               const double* __restrict cap, std::ptrdiff_t begin,
                               std::ptrdiff_t end, std::ptrdiff_t nx, std::ptrdiff_t nc,
                               std::ptrdiff_t L, const double* __restrict hv) {
  for (std::ptrdiff_t i = begin; i < end; ++i) {
    const double* gei = ge + i * L;
    const double* gwi = ge + (i - 1) * L;
    const double* gni = gn + i * L;
    const double* gsi = gn + (i - nx) * L;
    const double* gui = gu + i * L;
    const double* gdi = gu + (i - nc) * L;
    const double* gbi = gb + i * L;
    const double* ci = cap + i * L;
    const double* Ti = T + i * L;
    const double* pwi = pw + i * L;
    double* Ni = N + i * L;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double t = Ti[v];
      double flow = pwi[v];
      flow += gei[v] * (Ti[L + v] - t);
      flow += gwi[v] * (Ti[v - L] - t);
      flow += gni[v] * (Ti[nx * L + v] - t);
      flow += gsi[v] * (Ti[v - nx * L] - t);
      flow += gui[v] * (Ti[nc * L + v] - t);
      flow += gdi[v] * (Ti[v - nc * L] - t);
      flow += gbi[v] * (amb[v] - t);
      Ni[v] = t + hv[v] * flow / ci[v];
    }
  }
}

/// Mixed-geometry variant of batch_substep_top (lane-major tables, per-lane
/// TIM->sink conductance).
COOLPIM_STENCIL_CLONES
void batch_substep_top_mixed(const double* __restrict T, double* __restrict N,
                             const double* __restrict pw, const double* __restrict amb,
                             const double* __restrict ge, const double* __restrict gn,
                             const double* __restrict gu, const double* __restrict gsk,
                             const double* __restrict gb, const double* __restrict cap,
                             const double* __restrict sink_t, double* __restrict sink_flow,
                             std::ptrdiff_t top, std::ptrdiff_t n, std::ptrdiff_t nx,
                             std::ptrdiff_t nc, std::ptrdiff_t L,
                             const double* __restrict hv) {
  for (std::ptrdiff_t i = top; i < n; ++i) {
    const double* gei = ge + i * L;
    const double* gwi = ge + (i - 1) * L;
    const double* gni = gn + i * L;
    const double* gsi = gn + (i - nx) * L;
    const double* gui = gu + i * L;
    const double* gdi = gu + (i - nc) * L;
    const double* gski = gsk + i * L;
    const double* gbi = gb + i * L;
    const double* ci = cap + i * L;
    const double* Ti = T + i * L;
    const double* pwi = pw + i * L;
    double* Ni = N + i * L;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double t = Ti[v];
      double flow = pwi[v];
      flow += gei[v] * (Ti[L + v] - t);
      flow += gwi[v] * (Ti[v - L] - t);
      flow += gni[v] * (Ti[nx * L + v] - t);
      flow += gsi[v] * (Ti[v - nx * L] - t);
      flow += gui[v] * (Ti[nc * L + v] - t);
      flow += gdi[v] * (Ti[v - nc * L] - t);
      const double f = gski[v] * (sink_t[v] - t);
      flow += f;
      sink_flow[v] -= f;
      flow += gbi[v] * (amb[v] - t);
      Ni[v] = t + hv[v] * flow / ci[v];
    }
  }
}

/// Batched Thomas solve of one homogeneous implicit diffusion line (x or y
/// pass of the ADI split): (C/h) T* - g*(neighbour coupling) = (C/h) T^n.
/// `cp`/`inv` are the precomputed elimination coefficients, `stride` is the
/// lane-units distance between adjacent nodes on the line, and S is the
/// forward-sweep store (the scratch field at the same offsets as T).
COOLPIM_STENCIL_CLONES
void batch_thomas_uniform(double* __restrict T, double* __restrict S,
                          const double* __restrict cp, const double* __restrict inv,
                          double g, double rc, std::ptrdiff_t m, std::ptrdiff_t stride,
                          std::ptrdiff_t L) {
  const double i0 = inv[0];
  for (std::ptrdiff_t v = 0; v < L; ++v) S[v] = rc * T[v] * i0;
  for (std::ptrdiff_t k = 1; k < m; ++k) {
    const double* Tk = T + k * stride;
    const double* Sp = S + (k - 1) * stride;
    double* Sk = S + k * stride;
    const double ik = inv[k];
    for (std::ptrdiff_t v = 0; v < L; ++v) Sk[v] = (rc * Tk[v] + g * Sp[v]) * ik;
  }
  {
    double* Tl = T + (m - 1) * stride;
    const double* Sl = S + (m - 1) * stride;
    for (std::ptrdiff_t v = 0; v < L; ++v) Tl[v] = Sl[v];
  }
  for (std::ptrdiff_t k = m - 2; k >= 0; --k) {
    double* Tk = T + k * stride;
    const double* Sk = S + k * stride;
    const double* Tn = T + (k + 1) * stride;
    const double cpk = cp[k];
    for (std::ptrdiff_t v = 0; v < L; ++v) Tk[v] = Sk[v] - cpk * Tn[v];
  }
}

/// Batched Thomas solve of one vertical column (z pass): carries the power
/// sources, the board leak (layer 0) and the TIM coupling against the lagged
/// per-lane sink temperature (top layer).  gup[l] is the layer->layer+1 link,
/// rc[l] = cap_l/h.
COOLPIM_STENCIL_CLONES
void batch_thomas_column(double* __restrict T, double* __restrict S,
                         const double* __restrict pw, const double* __restrict amb,
                         const double* __restrict sink_t, const double* __restrict cp,
                         const double* __restrict inv, const double* __restrict gup,
                         const double* __restrict rc, double g_board, double g_sink,
                         std::ptrdiff_t m, std::ptrdiff_t stride, std::ptrdiff_t L) {
  {
    const double i0 = inv[0];
    const double rc0 = rc[0];
    const double g_top = (m == 1) ? g_sink : 0.0;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double d = rc0 * T[v] + pw[v] + g_board * amb[v] + g_top * sink_t[v];
      S[v] = d * i0;
    }
  }
  for (std::ptrdiff_t k = 1; k < m; ++k) {
    const double* Tk = T + k * stride;
    const double* pwk = pw + k * stride;
    const double* Sp = S + (k - 1) * stride;
    double* Sk = S + k * stride;
    const double gd = gup[k - 1];
    const double ik = inv[k];
    const double rck = rc[k];
    const double g_top = (k == m - 1) ? g_sink : 0.0;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double d = rck * Tk[v] + pwk[v] + g_top * sink_t[v];
      Sk[v] = (d + gd * Sp[v]) * ik;
    }
  }
  {
    double* Tl = T + (m - 1) * stride;
    const double* Sl = S + (m - 1) * stride;
    for (std::ptrdiff_t v = 0; v < L; ++v) Tl[v] = Sl[v];
  }
  for (std::ptrdiff_t k = m - 2; k >= 0; --k) {
    double* Tk = T + k * stride;
    const double* Sk = S + k * stride;
    const double* Tn = T + (k + 1) * stride;
    const double cpk = cp[k];
    for (std::ptrdiff_t v = 0; v < L; ++v) Tk[v] = Sk[v] - cpk * Tn[v];
  }
}

}  // namespace

BatchStackModel::BatchStackModel(StackSpec spec, std::size_t lanes, BatchOptions opt)
    : spec_{std::move(spec)}, opt_{opt}, lanes_{lanes} {
  spec_.validate();
  COOLPIM_REQUIRE(lanes_ >= 1, "batch model needs at least one lane");
  COOLPIM_REQUIRE(opt_.adi_dt_factor >= 1.0, "adi_dt_factor must be >= 1");
  net_ = StackNetwork::build(spec_);

  const double amb_k = spec_.ambient.as_kelvin();
  const std::size_t padded = (2 * net_.n_cells + net_.n_nodes) * lanes_;
  ambient_k_.assign(lanes_, amb_k);
  temp_.assign(padded, amb_k);
  scratch_.assign(padded, amb_k);
  power_w_.assign(net_.n_nodes * lanes_, 0.0);
  sink_temp_k_.assign(lanes_, amb_k);
  sink_flow_.assign(lanes_, 0.0);
  h_lane_.assign(lanes_, 0.0);
  lane_h_full_.assign(lanes_, 0.0);
  lane_subs_.assign(lanes_, 0);
  lane_g_sink_ambient_.assign(lanes_, net_.g_sink_ambient);
  lane_co_heater_.assign(lanes_, spec_.co_heater_watts);
  lane_sink_cap_.assign(lanes_, spec_.sink_heat_capacity);
  lane_stable_dt_s_.assign(lanes_, net_.stable_dt.as_sec());
  stats_.resize(layer_count() * lanes_);

  const std::size_t n_layers = layer_count();
  const auto& grid = spec_.floorplan.grid;
  adi_.cp_x.assign(n_layers * grid.nx, 0.0);
  adi_.inv_x.assign(n_layers * grid.nx, 0.0);
  adi_.cp_y.assign(n_layers * grid.ny, 0.0);
  adi_.inv_y.assign(n_layers * grid.ny, 0.0);
  adi_.cp_z.assign(n_layers, 0.0);
  adi_.inv_z.assign(n_layers, 0.0);
  adi_.rc.assign(n_layers, 0.0);
  adi_.gx.assign(n_layers, 0.0);
  adi_.gy.assign(n_layers, 0.0);
  adi_.gu.assign(n_layers, 0.0);
}

void BatchStackModel::set_layer_power(std::size_t lane, std::size_t layer,
                                      const PowerMap& power) {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count());
  COOLPIM_ASSERT(power.cells().size() == net_.n_cells);
  const std::size_t base = layer * net_.n_cells;
  for (std::size_t c = 0; c < net_.n_cells; ++c) {
    power_w_[(base + c) * lanes_ + lane] = power.at(c);
  }
}

void BatchStackModel::set_layer_power_uniform(std::size_t lane, std::size_t layer,
                                              double total_watts) {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count());
  const double per_cell = total_watts / static_cast<double>(net_.n_cells);
  const std::size_t base = layer * net_.n_cells;
  for (std::size_t c = 0; c < net_.n_cells; ++c) {
    power_w_[(base + c) * lanes_ + lane] = per_cell;
  }
}

void BatchStackModel::clear_power() { std::fill(power_w_.begin(), power_w_.end(), 0.0); }

void BatchStackModel::set_lane_ambient(std::size_t lane, Celsius ambient) {
  COOLPIM_ASSERT(lane < lanes_);
  const double amb_k = ambient.as_kelvin();
  ambient_k_[lane] = amb_k;
  // Keep the ghost blocks at lane ambient in both buffers.  The ghosts only
  // ever multiply zero conductances (the arithmetic cannot see them), but a
  // consistent field makes debug dumps honest.
  const std::size_t nc = net_.n_cells;
  const std::size_t tail = (nc + net_.n_nodes) * lanes_;
  for (std::size_t g = 0; g < nc; ++g) {
    temp_[g * lanes_ + lane] = amb_k;
    scratch_[g * lanes_ + lane] = amb_k;
    temp_[tail + g * lanes_ + lane] = amb_k;
    scratch_[tail + g * lanes_ + lane] = amb_k;
  }
}

Celsius BatchStackModel::lane_ambient(std::size_t lane) const {
  COOLPIM_ASSERT(lane < lanes_);
  return Celsius::from_kelvin(ambient_k_[lane]);
}

std::size_t BatchStackModel::substeps_for(Time dt) const {
  if (opt_.kernel == TransientKernel::kExplicit) return net_.substeps_for(dt);
  COOLPIM_REQUIRE(dt > Time::zero(), "transient step must be positive");
  const double n =
      std::ceil(dt.as_sec() / (net_.stable_dt.as_sec() * opt_.adi_dt_factor));
  COOLPIM_REQUIRE(n <= static_cast<double>(kMaxTransientSubsteps),
                  "transient step needs " + std::to_string(n) +
                      " ADI substeps (> kMaxTransientSubsteps); split the step");
  return n < 1.0 ? std::size_t{1} : static_cast<std::size_t>(n);
}

void BatchStackModel::step(Time dt) {
  COOLPIM_REQUIRE(!mixed_,
                  "mixed-geometry batches advance per-lane: use step_lanes()");
  const std::size_t n_sub = substeps_for(dt);
  const double h = dt.as_sec() / static_cast<double>(n_sub);
  if (opt_.kernel == TransientKernel::kExplicit) {
    step_explicit(h, n_sub);
    if (c_sweeps_ != nullptr) c_sweeps_->add(n_sub);
  } else {
    refactor_adi(h);
    step_adi(h, n_sub);
    if (c_adi_ != nullptr) c_adi_->add(n_sub);
  }
  if (c_lanes_ != nullptr) c_lanes_->add(lanes_);
  mark_temps_changed();
}

void BatchStackModel::step_explicit(double h, std::size_t n_sub) {
  std::fill(h_lane_.begin(), h_lane_.end(), h);
  for (std::size_t s = 0; s < n_sub; ++s) explicit_round();
}

void BatchStackModel::explicit_round() {
  const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(spec_.floorplan.grid.nx);
  const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(net_.n_cells);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(net_.n_nodes);
  const std::ptrdiff_t L = static_cast<std::ptrdiff_t>(lanes_);
  const std::ptrdiff_t top = n - nc;
  const double* pw = power_w_.data();
  const double* amb = ambient_k_.data();
  const double* hv = h_lane_.data();
  const double* T = temp_.data() + nc * L;
  double* N = scratch_.data() + nc * L;

  // Per-lane sink seed.  The coupling arrays hold the shared network's values
  // in every slot until a mixed-geometry load_lane, so the uniform case reads
  // the exact same doubles the scalar sweep reads.
  for (std::size_t v = 0; v < lanes_; ++v) {
    sink_flow_[v] =
        lane_g_sink_ambient_[v] * (amb[v] - sink_temp_k_[v]) + lane_co_heater_[v];
  }
  if (!mixed_) {
    const double* ge = net_.g_east_pad.data() + nc;  // ge[i-1] is the west link
    const double* gn = net_.g_north_pad.data() + nc;
    const double* gu = net_.g_up_pad.data() + nc;
    batch_substep_lower(T, N, pw, amb, ge, gn, gu, net_.g_board.data(),
                        net_.cap.data(), 0, top, nx, nc, L, hv);
    batch_substep_top(T, N, pw, amb, ge, gn, gu, net_.g_sink.data(),
                      net_.g_board.data(), net_.cap.data(), sink_temp_k_.data(),
                      sink_flow_.data(), top, n, nx, nc, L, hv);
  } else {
    const double* ge = lane_ge_pad_.data() + nc * L;
    const double* gn = lane_gn_pad_.data() + nc * L;
    const double* gu = lane_gu_pad_.data() + nc * L;
    batch_substep_lower_mixed(T, N, pw, amb, ge, gn, gu, lane_gb_.data(),
                              lane_cap_.data(), 0, top, nx, nc, L, hv);
    batch_substep_top_mixed(T, N, pw, amb, ge, gn, gu, lane_gsk_.data(),
                            lane_gb_.data(), lane_cap_.data(), sink_temp_k_.data(),
                            sink_flow_.data(), top, n, nx, nc, L, hv);
  }
  for (std::size_t v = 0; v < lanes_; ++v) {
    sink_temp_k_[v] += h_lane_[v] * sink_flow_[v] / lane_sink_cap_[v];
  }
  temp_.swap(scratch_);
}

BatchStackModel::LaneStepPlan BatchStackModel::lane_step_plan(std::size_t lane, Time dt) const {
  COOLPIM_REQUIRE(opt_.kernel == TransientKernel::kExplicit,
                  "lane_step_plan (per-lane dt) requires the explicit kernel");
  COOLPIM_ASSERT(lane < lanes_);
  COOLPIM_REQUIRE(dt > Time::zero(), "lane_step_plan needs a positive dt");
  // StackNetwork::substeps_for verbatim, per lane: same ceil arithmetic on
  // the same doubles, so a lane's substep count and h match its scalar twin.
  const double want = std::ceil(dt.as_sec() / lane_stable_dt_s_[lane]);
  COOLPIM_REQUIRE(want <= static_cast<double>(kMaxTransientSubsteps),
                  "transient step needs " + std::to_string(want) +
                      " explicit substeps (> kMaxTransientSubsteps); use the "
                      "ADI kernel (BatchOptions::kernel = kAdi) for this "
                      "geometry, or split the step");
  LaneStepPlan plan;
  plan.substeps = want < 1.0 ? std::size_t{1} : static_cast<std::size_t>(want);
  plan.h = dt.as_sec() / static_cast<double>(plan.substeps);
  return plan;
}

void BatchStackModel::substep_lanes(const double* h) {
  COOLPIM_REQUIRE(opt_.kernel == TransientKernel::kExplicit,
                  "substep_lanes (per-lane h) requires the explicit kernel");
  std::size_t active = 0;
  for (std::size_t v = 0; v < lanes_; ++v) {
    h_lane_[v] = h[v];
    if (h[v] > 0.0) ++active;
  }
  explicit_round();
  if (c_sweeps_ != nullptr) c_sweeps_->add();
  if (c_lanes_ != nullptr) c_lanes_->add(active);
  mark_temps_changed();
}

void BatchStackModel::step_lanes(const Time* dts) {
  COOLPIM_REQUIRE(opt_.kernel == TransientKernel::kExplicit,
                  "step_lanes (per-lane dt) requires the explicit kernel");
  std::size_t rounds = 0;
  std::size_t active = 0;
  for (std::size_t v = 0; v < lanes_; ++v) {
    if (!(dts[v] > Time::zero())) {
      lane_subs_[v] = 0;
      lane_h_full_[v] = 0.0;
      continue;
    }
    const LaneStepPlan plan = lane_step_plan(v, dts[v]);
    lane_subs_[v] = plan.substeps;
    lane_h_full_[v] = plan.h;
    rounds = std::max(rounds, plan.substeps);
    ++active;
  }
  if (rounds == 0) return;
  for (std::size_t s = 0; s < rounds; ++s) {
    for (std::size_t v = 0; v < lanes_; ++v) {
      h_lane_[v] = s < lane_subs_[v] ? lane_h_full_[v] : 0.0;
    }
    explicit_round();
  }
  if (c_sweeps_ != nullptr) c_sweeps_->add(rounds);
  if (c_lanes_ != nullptr) c_lanes_->add(active);
  mark_temps_changed();
}

Time BatchStackModel::lane_stable_step(std::size_t lane) const {
  COOLPIM_ASSERT(lane < lanes_);
  return Time::sec(lane_stable_dt_s_[lane]);
}

void BatchStackModel::materialize_lane_tables() {
  if (mixed_) return;
  COOLPIM_REQUIRE(opt_.kernel == TransientKernel::kExplicit,
                  "mixed-geometry batches require the explicit kernel (the ADI "
                  "factorization is shared across lanes)");
  const std::size_t nc = net_.n_cells;
  const std::size_t n = net_.n_nodes;
  const std::size_t L = lanes_;
  lane_ge_pad_.assign((nc + n) * L, 0.0);
  lane_gn_pad_.assign((nc + n) * L, 0.0);
  lane_gu_pad_.assign((nc + n) * L, 0.0);
  lane_gsk_.assign(n * L, 0.0);
  lane_gb_.assign(n * L, 0.0);
  lane_cap_.assign(n * L, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t v = 0; v < L; ++v) {
      lane_ge_pad_[(nc + i) * L + v] = net_.g_east[i];
      lane_gn_pad_[(nc + i) * L + v] = net_.g_north[i];
      lane_gu_pad_[(nc + i) * L + v] = net_.g_up[i];
      lane_gsk_[i * L + v] = net_.g_sink[i];
      lane_gb_[i * L + v] = net_.g_board[i];
      lane_cap_[i * L + v] = net_.cap[i];
    }
  }
  mixed_ = true;
}

void BatchStackModel::load_lane_network(std::size_t lane, const StackNetwork& src,
                                        const StackSpec& src_spec) {
  const std::size_t nc = net_.n_cells;
  const std::size_t L = lanes_;
  for (std::size_t i = 0; i < net_.n_nodes; ++i) {
    lane_ge_pad_[(nc + i) * L + lane] = src.g_east[i];
    lane_gn_pad_[(nc + i) * L + lane] = src.g_north[i];
    lane_gu_pad_[(nc + i) * L + lane] = src.g_up[i];
    lane_gsk_[i * L + lane] = src.g_sink[i];
    lane_gb_[i * L + lane] = src.g_board[i];
    lane_cap_[i * L + lane] = src.cap[i];
  }
  lane_g_sink_ambient_[lane] = src.g_sink_ambient;
  lane_co_heater_[lane] = src_spec.co_heater_watts;
  lane_sink_cap_[lane] = src_spec.sink_heat_capacity;
  lane_stable_dt_s_[lane] = src.stable_dt.as_sec();
}

void BatchStackModel::load_lane(std::size_t lane, const StackModel& src) {
  COOLPIM_ASSERT(lane < lanes_);
  const StackNetwork& sn = src.network();
  COOLPIM_REQUIRE(src.spec().floorplan.grid.nx == spec_.floorplan.grid.nx &&
                      src.spec().floorplan.grid.ny == spec_.floorplan.grid.ny &&
                      src.layer_count() == layer_count(),
                  "load_lane: source grid dims and layer count must match the batch");
  const bool same_network =
      sn.g_east == net_.g_east && sn.g_north == net_.g_north && sn.g_up == net_.g_up &&
      sn.g_sink == net_.g_sink && sn.g_board == net_.g_board && sn.cap == net_.cap &&
      sn.g_sink_ambient == net_.g_sink_ambient &&
      src.spec().co_heater_watts == spec_.co_heater_watts &&
      src.spec().sink_heat_capacity == spec_.sink_heat_capacity;
  if (!same_network || mixed_) {
    materialize_lane_tables();  // no-op once mixed
    load_lane_network(lane, sn, src.spec());
  }
  set_lane_ambient(lane, src.spec().ambient);
  double* T = field();
  const double* st = src.node_temps_k();
  const double* pw = src.node_power_w().data();
  for (std::size_t i = 0; i < net_.n_nodes; ++i) {
    T[i * lanes_ + lane] = st[i];
    power_w_[i * lanes_ + lane] = pw[i];
  }
  sink_temp_k_[lane] = src.sink_temp_kelvin();
  mark_temps_changed();
}

void BatchStackModel::store_lane(std::size_t lane, StackModel& dst) const {
  COOLPIM_ASSERT(lane < lanes_);
  COOLPIM_REQUIRE(dst.spec().floorplan.grid.nx == spec_.floorplan.grid.nx &&
                      dst.spec().floorplan.grid.ny == spec_.floorplan.grid.ny &&
                      dst.layer_count() == layer_count(),
                  "store_lane: destination grid dims and layer count must match");
  // Gather the strided lane into contiguous node order; copying doubles is
  // exact, so the scalar model continues from bit-identical state.  This path
  // runs on load/store boundaries (steady solves, retire), not per substep,
  // so the scratch allocation is fine.
  std::vector<double> tmp(net_.n_nodes);
  const double* T = field();
  for (std::size_t i = 0; i < net_.n_nodes; ++i) tmp[i] = T[i * lanes_ + lane];
  dst.set_node_temps_k(tmp.data());
  for (std::size_t i = 0; i < net_.n_nodes; ++i) {
    tmp[i] = power_w_[i * lanes_ + lane];
  }
  dst.set_node_power_w(tmp.data());
  dst.set_sink_temp_kelvin(sink_temp_k_[lane]);
}

void BatchStackModel::reset_lane(std::size_t lane) {
  COOLPIM_ASSERT(lane < lanes_);
  const std::size_t total = 2 * net_.n_cells + net_.n_nodes;
  const double amb_k = ambient_k_[lane];
  for (std::size_t i = 0; i < total; ++i) {
    temp_[i * lanes_ + lane] = amb_k;
    scratch_[i * lanes_ + lane] = amb_k;
  }
  sink_temp_k_[lane] = amb_k;
  mark_temps_changed();
}

void BatchStackModel::refactor_adi(double h) {
  if (adi_.h == h) return;
  const std::size_t n_layers = layer_count();
  const auto& grid = spec_.floorplan.grid;
  const std::size_t nc = net_.n_cells;

  // Per-layer uniform coefficients: cell geometry and material are uniform
  // within a layer, so one line factorization per (layer, direction) covers
  // every row, column and lane.
  for (std::size_t l = 0; l < n_layers; ++l) {
    adi_.rc[l] = net_.cap[l * nc] / h;
    adi_.gx[l] = grid.nx > 1 ? net_.g_east[l * nc] : 0.0;
    adi_.gy[l] = grid.ny > 1 ? net_.g_north[l * nc] : 0.0;
    adi_.gu[l] = net_.g_up[l * nc];  // zero at the top layer
  }

  // Uniform tridiagonal factorization: diag rc+g at the ends, rc+2g in the
  // interior, off-diagonals -g.  cp holds c'_k (negative), inv the reciprocal
  // elimination denominators.
  const auto factor_uniform = [](double rc, double g, double* cp, double* inv,
                                 std::size_t m) {
    double den = rc + (m > 1 ? g : 0.0);
    inv[0] = 1.0 / den;
    cp[0] = (m > 1 ? -g : 0.0) * inv[0];
    for (std::size_t k = 1; k < m; ++k) {
      const double b = rc + (k + 1 < m ? 2.0 * g : g);
      den = b + g * cp[k - 1];  // b - a*cp with a = -g
      inv[k] = 1.0 / den;
      cp[k] = (k + 1 < m ? -g : 0.0) * inv[k];
    }
  };
  for (std::size_t l = 0; l < n_layers; ++l) {
    factor_uniform(adi_.rc[l], adi_.gx[l], adi_.cp_x.data() + l * grid.nx,
                   adi_.inv_x.data() + l * grid.nx, grid.nx);
    factor_uniform(adi_.rc[l], adi_.gy[l], adi_.cp_y.data() + l * grid.ny,
                   adi_.inv_y.data() + l * grid.ny, grid.ny);
  }

  // Vertical column: per-layer up/down links plus the board leak at layer 0
  // and the (lagged-sink) TIM coupling at the top layer.
  const double g_board = net_.g_board[0];
  const double g_sink = net_.g_sink[(n_layers - 1) * nc];
  double den = 0.0;
  for (std::size_t l = 0; l < n_layers; ++l) {
    const double gu_l = adi_.gu[l];
    const double gd_l = l > 0 ? adi_.gu[l - 1] : 0.0;
    double b = adi_.rc[l] + gu_l + gd_l;
    if (l == 0) b += g_board;
    if (l + 1 == n_layers) b += g_sink;
    den = (l == 0) ? b : b + gd_l * adi_.cp_z[l - 1];  // b - a*cp with a = -gd
    adi_.inv_z[l] = 1.0 / den;
    adi_.cp_z[l] = -gu_l * adi_.inv_z[l];
  }

  adi_.sink_rc = spec_.sink_heat_capacity / h;
  adi_.inv_sink_den = 1.0 / (adi_.sink_rc + net_.sink_g_total);
  adi_.h = h;
}

void BatchStackModel::step_adi(double h, std::size_t n_sub) {
  (void)h;
  const auto& grid = spec_.floorplan.grid;
  const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(grid.nx);
  const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(grid.ny);
  const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(net_.n_cells);
  const std::ptrdiff_t L = static_cast<std::ptrdiff_t>(lanes_);
  const std::size_t n_layers = layer_count();
  const double g_board = net_.g_board[0];
  const double g_sink = net_.g_sink[(n_layers - 1) * net_.n_cells];

  double* T = field();
  double* S = scratch_.data() + nc * L;  // Thomas forward-sweep store
  const double* pw = power_w_.data();
  const double* amb = ambient_k_.data();

  for (std::size_t s = 0; s < n_sub; ++s) {
    // x pass: implicit lateral diffusion along rows.
    if (nx > 1) {
      for (std::size_t l = 0; l < n_layers; ++l) {
        const double* cp = adi_.cp_x.data() + l * grid.nx;
        const double* inv = adi_.inv_x.data() + l * grid.nx;
        for (std::ptrdiff_t y = 0; y < ny; ++y) {
          const std::ptrdiff_t base = (static_cast<std::ptrdiff_t>(l) * nc + y * nx) * L;
          batch_thomas_uniform(T + base, S + base, cp, inv, adi_.gx[l], adi_.rc[l], nx, L,
                               L);
        }
      }
    }
    // y pass: implicit lateral diffusion along columns.
    if (ny > 1) {
      for (std::size_t l = 0; l < n_layers; ++l) {
        const double* cp = adi_.cp_y.data() + l * grid.ny;
        const double* inv = adi_.inv_y.data() + l * grid.ny;
        for (std::ptrdiff_t x = 0; x < nx; ++x) {
          const std::ptrdiff_t base = (static_cast<std::ptrdiff_t>(l) * nc + x) * L;
          batch_thomas_uniform(T + base, S + base, cp, inv, adi_.gy[l], adi_.rc[l], ny,
                               nx * L, L);
        }
      }
    }
    // z pass: implicit vertical conduction carrying power, board leak and the
    // lagged-sink TIM coupling.
    for (std::ptrdiff_t c = 0; c < nc; ++c) {
      const std::ptrdiff_t base = c * L;
      batch_thomas_column(T + base, S + base, pw + base, amb, sink_temp_k_.data(),
                          adi_.cp_z.data(), adi_.inv_z.data(), adi_.gu.data(),
                          adi_.rc.data(), g_board, g_sink,
                          static_cast<std::ptrdiff_t>(n_layers), nc * L, L);
    }
    // Implicit sink update against the fresh top-layer field.
    std::fill(sink_flow_.begin(), sink_flow_.end(), 0.0);
    const double* Ttop = T + static_cast<std::ptrdiff_t>(n_layers - 1) * nc * L;
    for (std::ptrdiff_t c = 0; c < nc; ++c) {
      const double* Tc = Ttop + c * L;
      for (std::ptrdiff_t v = 0; v < L; ++v) sink_flow_[static_cast<std::size_t>(v)] += Tc[v];
    }
    for (std::size_t v = 0; v < lanes_; ++v) {
      sink_temp_k_[v] = (adi_.sink_rc * sink_temp_k_[v] +
                         net_.g_sink_ambient * ambient_k_[v] + spec_.co_heater_watts +
                         g_sink * sink_flow_[v]) *
                        adi_.inv_sink_den;
    }
  }
}

void BatchStackModel::reset_to_ambient() {
  const std::size_t nc = net_.n_cells;
  const std::size_t total = 2 * nc + net_.n_nodes;
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t v = 0; v < lanes_; ++v) {
      temp_[i * lanes_ + v] = ambient_k_[v];
      scratch_[i * lanes_ + v] = ambient_k_[v];
    }
  }
  for (std::size_t v = 0; v < lanes_; ++v) sink_temp_k_[v] = ambient_k_[v];
  mark_temps_changed();
}

const std::vector<BatchStackModel::LaneLayerStat>& BatchStackModel::stats() const {
  if (stats_dirty_) {
    const double* T = field();
    const std::size_t n_layers = layer_count();
    const std::size_t nc = net_.n_cells;
    // Per lane this is the scalar StackModel reduction verbatim: peak seeded
    // from cell 0, mean accumulated in cell order then divided once.
    for (std::size_t l = 0; l < n_layers; ++l) {
      const double* base = T + static_cast<std::ptrdiff_t>(l * nc * lanes_);
      LaneLayerStat* out = stats_.data() + l * lanes_;
      for (std::size_t v = 0; v < lanes_; ++v) out[v] = LaneLayerStat{base[v], 0.0};
      for (std::size_t c = 0; c < nc; ++c) {
        const double* Tc = base + c * lanes_;
        for (std::size_t v = 0; v < lanes_; ++v) {
          out[v].peak_k = std::max(out[v].peak_k, Tc[v]);
          out[v].mean_k += Tc[v];
        }
      }
      for (std::size_t v = 0; v < lanes_; ++v) {
        out[v].mean_k /= static_cast<double>(nc);
      }
    }
    stats_dirty_ = false;
  }
  return stats_;
}

Celsius BatchStackModel::cell_temp(std::size_t lane, std::size_t layer,
                                   std::size_t cell) const {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count() && cell < net_.n_cells);
  return Celsius::from_kelvin(field()[(layer * net_.n_cells + cell) * lanes_ + lane]);
}

Celsius BatchStackModel::layer_peak(std::size_t lane, std::size_t layer) const {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count());
  return Celsius::from_kelvin(stats()[layer * lanes_ + lane].peak_k);
}

Celsius BatchStackModel::layer_mean(std::size_t lane, std::size_t layer) const {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count());
  return Celsius::from_kelvin(stats()[layer * lanes_ + lane].mean_k);
}

Celsius BatchStackModel::peak_over_layers(std::size_t lane, std::size_t first,
                                          std::size_t last) const {
  COOLPIM_ASSERT(lane < lanes_ && first <= last && last < layer_count());
  const auto& st = stats();
  double peak = -1e9;
  for (std::size_t l = first; l <= last; ++l) {
    peak = std::max(peak, Celsius::from_kelvin(st[l * lanes_ + lane].peak_k).value());
  }
  return Celsius{peak};
}

Celsius BatchStackModel::sink_temp(std::size_t lane) const {
  COOLPIM_ASSERT(lane < lanes_);
  return Celsius::from_kelvin(sink_temp_k_[lane]);
}

void BatchStackModel::set_counters(obs::CounterRegistry* counters) {
  if (counters == nullptr) {
    c_lanes_ = c_sweeps_ = c_adi_ = nullptr;
    return;
  }
  c_lanes_ = &counters->counter(obs::names::kThermalBatchLanes);
  c_sweeps_ = &counters->counter(obs::names::kThermalBatchSweeps);
  c_adi_ = &counters->counter(obs::names::kThermalBatchAdiSolves);
}

}  // namespace coolpim::thermal
