#include "thermal/batch_stack_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/names.hpp"

namespace coolpim::thermal {

namespace {

// Same runtime-dispatch guard as stack_model.cpp: AVX2 widens the lane loop
// to four doubles without FMA, so every lane still performs the exact IEEE
// mul/add/div sequence of the default clone.
#if defined(__x86_64__) && defined(__ELF__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define COOLPIM_STENCIL_CLONES __attribute__((target_clones("default", "avx2")))
#endif
#endif
#ifndef COOLPIM_STENCIL_CLONES
#define COOLPIM_STENCIL_CLONES
#endif

/// One explicit substep over the nodes below the top layer, all lanes at
/// once.  The conductances are node-indexed (shared by every lane) and load
/// once per node; the inner loop runs over the contiguous lane dimension, so
/// the vectorizer stripes *lanes* across the vector registers.  Per lane the
/// term order is exactly StackModel::step_reference(): east, west, north,
/// south, up, down, board -- the sink term is omitted because g_sink is zero
/// below the top layer (same bit-exactness argument as the scalar fast path).
COOLPIM_STENCIL_CLONES
void batch_substep_lower(const double* __restrict T, double* __restrict N,
                         const double* __restrict pw, const double* __restrict amb,
                         const double* __restrict ge, const double* __restrict gn,
                         const double* __restrict gu, const double* __restrict gb,
                         const double* __restrict cap, std::ptrdiff_t begin,
                         std::ptrdiff_t end, std::ptrdiff_t nx, std::ptrdiff_t nc,
                         std::ptrdiff_t L, double h) {
  for (std::ptrdiff_t i = begin; i < end; ++i) {
    const double gei = ge[i];
    const double gwi = ge[i - 1];
    const double gni = gn[i];
    const double gsi = gn[i - nx];
    const double gui = gu[i];
    const double gdi = gu[i - nc];
    const double gbi = gb[i];
    const double ci = cap[i];
    const double* Ti = T + i * L;
    const double* pwi = pw + i * L;
    double* Ni = N + i * L;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double t = Ti[v];
      double flow = pwi[v];
      flow += gei * (Ti[L + v] - t);
      flow += gwi * (Ti[v - L] - t);
      flow += gni * (Ti[nx * L + v] - t);
      flow += gsi * (Ti[v - nx * L] - t);
      flow += gui * (Ti[nc * L + v] - t);
      flow += gdi * (Ti[v - nc * L] - t);
      flow += gbi * (amb[v] - t);
      Ni[v] = t + h * flow / ci;
    }
  }
}

/// Top-layer substep: the full stencil plus the per-lane TIM->sink exchange,
/// accumulated into sink_flow[lane] in node order (the same reduction order
/// as the scalar sweep, so each lane's sink trajectory is bit-identical).
COOLPIM_STENCIL_CLONES
void batch_substep_top(const double* __restrict T, double* __restrict N,
                       const double* __restrict pw, const double* __restrict amb,
                       const double* __restrict ge, const double* __restrict gn,
                       const double* __restrict gu, const double* __restrict gsk,
                       const double* __restrict gb, const double* __restrict cap,
                       const double* __restrict sink_t, double* __restrict sink_flow,
                       std::ptrdiff_t top, std::ptrdiff_t n, std::ptrdiff_t nx,
                       std::ptrdiff_t nc, std::ptrdiff_t L, double h) {
  for (std::ptrdiff_t i = top; i < n; ++i) {
    const double gei = ge[i];
    const double gwi = ge[i - 1];
    const double gni = gn[i];
    const double gsi = gn[i - nx];
    const double gui = gu[i];
    const double gdi = gu[i - nc];
    const double gski = gsk[i];
    const double gbi = gb[i];
    const double ci = cap[i];
    const double* Ti = T + i * L;
    const double* pwi = pw + i * L;
    double* Ni = N + i * L;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double t = Ti[v];
      double flow = pwi[v];
      flow += gei * (Ti[L + v] - t);
      flow += gwi * (Ti[v - L] - t);
      flow += gni * (Ti[nx * L + v] - t);
      flow += gsi * (Ti[v - nx * L] - t);
      flow += gui * (Ti[nc * L + v] - t);
      flow += gdi * (Ti[v - nc * L] - t);
      const double f = gski * (sink_t[v] - t);
      flow += f;
      sink_flow[v] -= f;
      flow += gbi * (amb[v] - t);
      Ni[v] = t + h * flow / ci;
    }
  }
}

/// Batched Thomas solve of one homogeneous implicit diffusion line (x or y
/// pass of the ADI split): (C/h) T* - g*(neighbour coupling) = (C/h) T^n.
/// `cp`/`inv` are the precomputed elimination coefficients, `stride` is the
/// lane-units distance between adjacent nodes on the line, and S is the
/// forward-sweep store (the scratch field at the same offsets as T).
COOLPIM_STENCIL_CLONES
void batch_thomas_uniform(double* __restrict T, double* __restrict S,
                          const double* __restrict cp, const double* __restrict inv,
                          double g, double rc, std::ptrdiff_t m, std::ptrdiff_t stride,
                          std::ptrdiff_t L) {
  const double i0 = inv[0];
  for (std::ptrdiff_t v = 0; v < L; ++v) S[v] = rc * T[v] * i0;
  for (std::ptrdiff_t k = 1; k < m; ++k) {
    const double* Tk = T + k * stride;
    const double* Sp = S + (k - 1) * stride;
    double* Sk = S + k * stride;
    const double ik = inv[k];
    for (std::ptrdiff_t v = 0; v < L; ++v) Sk[v] = (rc * Tk[v] + g * Sp[v]) * ik;
  }
  {
    double* Tl = T + (m - 1) * stride;
    const double* Sl = S + (m - 1) * stride;
    for (std::ptrdiff_t v = 0; v < L; ++v) Tl[v] = Sl[v];
  }
  for (std::ptrdiff_t k = m - 2; k >= 0; --k) {
    double* Tk = T + k * stride;
    const double* Sk = S + k * stride;
    const double* Tn = T + (k + 1) * stride;
    const double cpk = cp[k];
    for (std::ptrdiff_t v = 0; v < L; ++v) Tk[v] = Sk[v] - cpk * Tn[v];
  }
}

/// Batched Thomas solve of one vertical column (z pass): carries the power
/// sources, the board leak (layer 0) and the TIM coupling against the lagged
/// per-lane sink temperature (top layer).  gup[l] is the layer->layer+1 link,
/// rc[l] = cap_l/h.
COOLPIM_STENCIL_CLONES
void batch_thomas_column(double* __restrict T, double* __restrict S,
                         const double* __restrict pw, const double* __restrict amb,
                         const double* __restrict sink_t, const double* __restrict cp,
                         const double* __restrict inv, const double* __restrict gup,
                         const double* __restrict rc, double g_board, double g_sink,
                         std::ptrdiff_t m, std::ptrdiff_t stride, std::ptrdiff_t L) {
  {
    const double i0 = inv[0];
    const double rc0 = rc[0];
    const double g_top = (m == 1) ? g_sink : 0.0;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double d = rc0 * T[v] + pw[v] + g_board * amb[v] + g_top * sink_t[v];
      S[v] = d * i0;
    }
  }
  for (std::ptrdiff_t k = 1; k < m; ++k) {
    const double* Tk = T + k * stride;
    const double* pwk = pw + k * stride;
    const double* Sp = S + (k - 1) * stride;
    double* Sk = S + k * stride;
    const double gd = gup[k - 1];
    const double ik = inv[k];
    const double rck = rc[k];
    const double g_top = (k == m - 1) ? g_sink : 0.0;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      const double d = rck * Tk[v] + pwk[v] + g_top * sink_t[v];
      Sk[v] = (d + gd * Sp[v]) * ik;
    }
  }
  {
    double* Tl = T + (m - 1) * stride;
    const double* Sl = S + (m - 1) * stride;
    for (std::ptrdiff_t v = 0; v < L; ++v) Tl[v] = Sl[v];
  }
  for (std::ptrdiff_t k = m - 2; k >= 0; --k) {
    double* Tk = T + k * stride;
    const double* Sk = S + k * stride;
    const double* Tn = T + (k + 1) * stride;
    const double cpk = cp[k];
    for (std::ptrdiff_t v = 0; v < L; ++v) Tk[v] = Sk[v] - cpk * Tn[v];
  }
}

}  // namespace

BatchStackModel::BatchStackModel(StackSpec spec, std::size_t lanes, BatchOptions opt)
    : spec_{std::move(spec)}, opt_{opt}, lanes_{lanes} {
  spec_.validate();
  COOLPIM_REQUIRE(lanes_ >= 1, "batch model needs at least one lane");
  COOLPIM_REQUIRE(opt_.adi_dt_factor >= 1.0, "adi_dt_factor must be >= 1");
  net_ = StackNetwork::build(spec_);

  const double amb_k = spec_.ambient.as_kelvin();
  const std::size_t padded = (2 * net_.n_cells + net_.n_nodes) * lanes_;
  ambient_k_.assign(lanes_, amb_k);
  temp_.assign(padded, amb_k);
  scratch_.assign(padded, amb_k);
  power_w_.assign(net_.n_nodes * lanes_, 0.0);
  sink_temp_k_.assign(lanes_, amb_k);
  sink_flow_.assign(lanes_, 0.0);
  stats_.resize(layer_count() * lanes_);

  const std::size_t n_layers = layer_count();
  const auto& grid = spec_.floorplan.grid;
  adi_.cp_x.assign(n_layers * grid.nx, 0.0);
  adi_.inv_x.assign(n_layers * grid.nx, 0.0);
  adi_.cp_y.assign(n_layers * grid.ny, 0.0);
  adi_.inv_y.assign(n_layers * grid.ny, 0.0);
  adi_.cp_z.assign(n_layers, 0.0);
  adi_.inv_z.assign(n_layers, 0.0);
  adi_.rc.assign(n_layers, 0.0);
  adi_.gx.assign(n_layers, 0.0);
  adi_.gy.assign(n_layers, 0.0);
  adi_.gu.assign(n_layers, 0.0);
}

void BatchStackModel::set_layer_power(std::size_t lane, std::size_t layer,
                                      const PowerMap& power) {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count());
  COOLPIM_ASSERT(power.cells().size() == net_.n_cells);
  const std::size_t base = layer * net_.n_cells;
  for (std::size_t c = 0; c < net_.n_cells; ++c) {
    power_w_[(base + c) * lanes_ + lane] = power.at(c);
  }
}

void BatchStackModel::set_layer_power_uniform(std::size_t lane, std::size_t layer,
                                              double total_watts) {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count());
  const double per_cell = total_watts / static_cast<double>(net_.n_cells);
  const std::size_t base = layer * net_.n_cells;
  for (std::size_t c = 0; c < net_.n_cells; ++c) {
    power_w_[(base + c) * lanes_ + lane] = per_cell;
  }
}

void BatchStackModel::clear_power() { std::fill(power_w_.begin(), power_w_.end(), 0.0); }

void BatchStackModel::set_lane_ambient(std::size_t lane, Celsius ambient) {
  COOLPIM_ASSERT(lane < lanes_);
  const double amb_k = ambient.as_kelvin();
  ambient_k_[lane] = amb_k;
  // Keep the ghost blocks at lane ambient in both buffers.  The ghosts only
  // ever multiply zero conductances (the arithmetic cannot see them), but a
  // consistent field makes debug dumps honest.
  const std::size_t nc = net_.n_cells;
  const std::size_t tail = (nc + net_.n_nodes) * lanes_;
  for (std::size_t g = 0; g < nc; ++g) {
    temp_[g * lanes_ + lane] = amb_k;
    scratch_[g * lanes_ + lane] = amb_k;
    temp_[tail + g * lanes_ + lane] = amb_k;
    scratch_[tail + g * lanes_ + lane] = amb_k;
  }
}

Celsius BatchStackModel::lane_ambient(std::size_t lane) const {
  COOLPIM_ASSERT(lane < lanes_);
  return Celsius::from_kelvin(ambient_k_[lane]);
}

std::size_t BatchStackModel::substeps_for(Time dt) const {
  if (opt_.kernel == TransientKernel::kExplicit) return net_.substeps_for(dt);
  COOLPIM_REQUIRE(dt > Time::zero(), "transient step must be positive");
  const double n =
      std::ceil(dt.as_sec() / (net_.stable_dt.as_sec() * opt_.adi_dt_factor));
  COOLPIM_REQUIRE(n <= static_cast<double>(kMaxTransientSubsteps),
                  "transient step needs " + std::to_string(n) +
                      " ADI substeps (> kMaxTransientSubsteps); split the step");
  return n < 1.0 ? std::size_t{1} : static_cast<std::size_t>(n);
}

void BatchStackModel::step(Time dt) {
  const std::size_t n_sub = substeps_for(dt);
  const double h = dt.as_sec() / static_cast<double>(n_sub);
  if (opt_.kernel == TransientKernel::kExplicit) {
    step_explicit(h, n_sub);
    if (c_sweeps_ != nullptr) c_sweeps_->add(n_sub);
  } else {
    refactor_adi(h);
    step_adi(h, n_sub);
    if (c_adi_ != nullptr) c_adi_->add(n_sub);
  }
  if (c_lanes_ != nullptr) c_lanes_->add(lanes_);
  mark_temps_changed();
}

void BatchStackModel::step_explicit(double h, std::size_t n_sub) {
  const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(spec_.floorplan.grid.nx);
  const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(net_.n_cells);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(net_.n_nodes);
  const std::ptrdiff_t L = static_cast<std::ptrdiff_t>(lanes_);
  const std::ptrdiff_t top = n - nc;
  const double* pw = power_w_.data();
  const double* amb = ambient_k_.data();
  const double* ge = net_.g_east_pad.data() + nc;  // ge[i-1] is the west link
  const double* gn = net_.g_north_pad.data() + nc;
  const double* gu = net_.g_up_pad.data() + nc;
  const double* gsk = net_.g_sink.data();
  const double* gb = net_.g_board.data();
  const double* cap = net_.cap.data();

  for (std::size_t s = 0; s < n_sub; ++s) {
    const double* T = temp_.data() + nc * L;
    double* N = scratch_.data() + nc * L;
    for (std::ptrdiff_t v = 0; v < L; ++v) {
      sink_flow_[static_cast<std::size_t>(v)] =
          net_.g_sink_ambient * (amb[v] - sink_temp_k_[static_cast<std::size_t>(v)]) +
          spec_.co_heater_watts;
    }
    batch_substep_lower(T, N, pw, amb, ge, gn, gu, gb, cap, 0, top, nx, nc, L, h);
    batch_substep_top(T, N, pw, amb, ge, gn, gu, gsk, gb, cap, sink_temp_k_.data(),
                      sink_flow_.data(), top, n, nx, nc, L, h);
    for (std::size_t v = 0; v < lanes_; ++v) {
      sink_temp_k_[v] += h * sink_flow_[v] / spec_.sink_heat_capacity;
    }
    temp_.swap(scratch_);
  }
}

void BatchStackModel::refactor_adi(double h) {
  if (adi_.h == h) return;
  const std::size_t n_layers = layer_count();
  const auto& grid = spec_.floorplan.grid;
  const std::size_t nc = net_.n_cells;

  // Per-layer uniform coefficients: cell geometry and material are uniform
  // within a layer, so one line factorization per (layer, direction) covers
  // every row, column and lane.
  for (std::size_t l = 0; l < n_layers; ++l) {
    adi_.rc[l] = net_.cap[l * nc] / h;
    adi_.gx[l] = grid.nx > 1 ? net_.g_east[l * nc] : 0.0;
    adi_.gy[l] = grid.ny > 1 ? net_.g_north[l * nc] : 0.0;
    adi_.gu[l] = net_.g_up[l * nc];  // zero at the top layer
  }

  // Uniform tridiagonal factorization: diag rc+g at the ends, rc+2g in the
  // interior, off-diagonals -g.  cp holds c'_k (negative), inv the reciprocal
  // elimination denominators.
  const auto factor_uniform = [](double rc, double g, double* cp, double* inv,
                                 std::size_t m) {
    double den = rc + (m > 1 ? g : 0.0);
    inv[0] = 1.0 / den;
    cp[0] = (m > 1 ? -g : 0.0) * inv[0];
    for (std::size_t k = 1; k < m; ++k) {
      const double b = rc + (k + 1 < m ? 2.0 * g : g);
      den = b + g * cp[k - 1];  // b - a*cp with a = -g
      inv[k] = 1.0 / den;
      cp[k] = (k + 1 < m ? -g : 0.0) * inv[k];
    }
  };
  for (std::size_t l = 0; l < n_layers; ++l) {
    factor_uniform(adi_.rc[l], adi_.gx[l], adi_.cp_x.data() + l * grid.nx,
                   adi_.inv_x.data() + l * grid.nx, grid.nx);
    factor_uniform(adi_.rc[l], adi_.gy[l], adi_.cp_y.data() + l * grid.ny,
                   adi_.inv_y.data() + l * grid.ny, grid.ny);
  }

  // Vertical column: per-layer up/down links plus the board leak at layer 0
  // and the (lagged-sink) TIM coupling at the top layer.
  const double g_board = net_.g_board[0];
  const double g_sink = net_.g_sink[(n_layers - 1) * nc];
  double den = 0.0;
  for (std::size_t l = 0; l < n_layers; ++l) {
    const double gu_l = adi_.gu[l];
    const double gd_l = l > 0 ? adi_.gu[l - 1] : 0.0;
    double b = adi_.rc[l] + gu_l + gd_l;
    if (l == 0) b += g_board;
    if (l + 1 == n_layers) b += g_sink;
    den = (l == 0) ? b : b + gd_l * adi_.cp_z[l - 1];  // b - a*cp with a = -gd
    adi_.inv_z[l] = 1.0 / den;
    adi_.cp_z[l] = -gu_l * adi_.inv_z[l];
  }

  adi_.sink_rc = spec_.sink_heat_capacity / h;
  adi_.inv_sink_den = 1.0 / (adi_.sink_rc + net_.sink_g_total);
  adi_.h = h;
}

void BatchStackModel::step_adi(double h, std::size_t n_sub) {
  (void)h;
  const auto& grid = spec_.floorplan.grid;
  const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(grid.nx);
  const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(grid.ny);
  const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(net_.n_cells);
  const std::ptrdiff_t L = static_cast<std::ptrdiff_t>(lanes_);
  const std::size_t n_layers = layer_count();
  const double g_board = net_.g_board[0];
  const double g_sink = net_.g_sink[(n_layers - 1) * net_.n_cells];

  double* T = field();
  double* S = scratch_.data() + nc * L;  // Thomas forward-sweep store
  const double* pw = power_w_.data();
  const double* amb = ambient_k_.data();

  for (std::size_t s = 0; s < n_sub; ++s) {
    // x pass: implicit lateral diffusion along rows.
    if (nx > 1) {
      for (std::size_t l = 0; l < n_layers; ++l) {
        const double* cp = adi_.cp_x.data() + l * grid.nx;
        const double* inv = adi_.inv_x.data() + l * grid.nx;
        for (std::ptrdiff_t y = 0; y < ny; ++y) {
          const std::ptrdiff_t base = (static_cast<std::ptrdiff_t>(l) * nc + y * nx) * L;
          batch_thomas_uniform(T + base, S + base, cp, inv, adi_.gx[l], adi_.rc[l], nx, L,
                               L);
        }
      }
    }
    // y pass: implicit lateral diffusion along columns.
    if (ny > 1) {
      for (std::size_t l = 0; l < n_layers; ++l) {
        const double* cp = adi_.cp_y.data() + l * grid.ny;
        const double* inv = adi_.inv_y.data() + l * grid.ny;
        for (std::ptrdiff_t x = 0; x < nx; ++x) {
          const std::ptrdiff_t base = (static_cast<std::ptrdiff_t>(l) * nc + x) * L;
          batch_thomas_uniform(T + base, S + base, cp, inv, adi_.gy[l], adi_.rc[l], ny,
                               nx * L, L);
        }
      }
    }
    // z pass: implicit vertical conduction carrying power, board leak and the
    // lagged-sink TIM coupling.
    for (std::ptrdiff_t c = 0; c < nc; ++c) {
      const std::ptrdiff_t base = c * L;
      batch_thomas_column(T + base, S + base, pw + base, amb, sink_temp_k_.data(),
                          adi_.cp_z.data(), adi_.inv_z.data(), adi_.gu.data(),
                          adi_.rc.data(), g_board, g_sink,
                          static_cast<std::ptrdiff_t>(n_layers), nc * L, L);
    }
    // Implicit sink update against the fresh top-layer field.
    std::fill(sink_flow_.begin(), sink_flow_.end(), 0.0);
    const double* Ttop = T + static_cast<std::ptrdiff_t>(n_layers - 1) * nc * L;
    for (std::ptrdiff_t c = 0; c < nc; ++c) {
      const double* Tc = Ttop + c * L;
      for (std::ptrdiff_t v = 0; v < L; ++v) sink_flow_[static_cast<std::size_t>(v)] += Tc[v];
    }
    for (std::size_t v = 0; v < lanes_; ++v) {
      sink_temp_k_[v] = (adi_.sink_rc * sink_temp_k_[v] +
                         net_.g_sink_ambient * ambient_k_[v] + spec_.co_heater_watts +
                         g_sink * sink_flow_[v]) *
                        adi_.inv_sink_den;
    }
  }
}

void BatchStackModel::reset_to_ambient() {
  const std::size_t nc = net_.n_cells;
  const std::size_t total = 2 * nc + net_.n_nodes;
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t v = 0; v < lanes_; ++v) {
      temp_[i * lanes_ + v] = ambient_k_[v];
      scratch_[i * lanes_ + v] = ambient_k_[v];
    }
  }
  for (std::size_t v = 0; v < lanes_; ++v) sink_temp_k_[v] = ambient_k_[v];
  mark_temps_changed();
}

const std::vector<BatchStackModel::LaneLayerStat>& BatchStackModel::stats() const {
  if (stats_dirty_) {
    const double* T = field();
    const std::size_t n_layers = layer_count();
    const std::size_t nc = net_.n_cells;
    // Per lane this is the scalar StackModel reduction verbatim: peak seeded
    // from cell 0, mean accumulated in cell order then divided once.
    for (std::size_t l = 0; l < n_layers; ++l) {
      const double* base = T + static_cast<std::ptrdiff_t>(l * nc * lanes_);
      LaneLayerStat* out = stats_.data() + l * lanes_;
      for (std::size_t v = 0; v < lanes_; ++v) out[v] = LaneLayerStat{base[v], 0.0};
      for (std::size_t c = 0; c < nc; ++c) {
        const double* Tc = base + c * lanes_;
        for (std::size_t v = 0; v < lanes_; ++v) {
          out[v].peak_k = std::max(out[v].peak_k, Tc[v]);
          out[v].mean_k += Tc[v];
        }
      }
      for (std::size_t v = 0; v < lanes_; ++v) {
        out[v].mean_k /= static_cast<double>(nc);
      }
    }
    stats_dirty_ = false;
  }
  return stats_;
}

Celsius BatchStackModel::cell_temp(std::size_t lane, std::size_t layer,
                                   std::size_t cell) const {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count() && cell < net_.n_cells);
  return Celsius::from_kelvin(field()[(layer * net_.n_cells + cell) * lanes_ + lane]);
}

Celsius BatchStackModel::layer_peak(std::size_t lane, std::size_t layer) const {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count());
  return Celsius::from_kelvin(stats()[layer * lanes_ + lane].peak_k);
}

Celsius BatchStackModel::layer_mean(std::size_t lane, std::size_t layer) const {
  COOLPIM_ASSERT(lane < lanes_ && layer < layer_count());
  return Celsius::from_kelvin(stats()[layer * lanes_ + lane].mean_k);
}

Celsius BatchStackModel::peak_over_layers(std::size_t lane, std::size_t first,
                                          std::size_t last) const {
  COOLPIM_ASSERT(lane < lanes_ && first <= last && last < layer_count());
  const auto& st = stats();
  double peak = -1e9;
  for (std::size_t l = first; l <= last; ++l) {
    peak = std::max(peak, Celsius::from_kelvin(st[l * lanes_ + lane].peak_k).value());
  }
  return Celsius{peak};
}

Celsius BatchStackModel::sink_temp(std::size_t lane) const {
  COOLPIM_ASSERT(lane < lanes_);
  return Celsius::from_kelvin(sink_temp_k_[lane]);
}

void BatchStackModel::set_counters(obs::CounterRegistry* counters) {
  if (counters == nullptr) {
    c_lanes_ = c_sweeps_ = c_adi_ = nullptr;
    return;
  }
  c_lanes_ = &counters->counter(obs::names::kThermalBatchLanes);
  c_sweeps_ = &counters->counter(obs::names::kThermalBatchSweeps);
  c_adi_ = &counters->counter(obs::names::kThermalBatchAdiSolves);
}

}  // namespace coolpim::thermal
