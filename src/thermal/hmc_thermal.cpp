#include "thermal/hmc_thermal.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/names.hpp"
#include "thermal/materials.hpp"

namespace coolpim::thermal {

HmcThermalConfig hmc20_thermal_config(power::CoolingType cooling) {
  HmcThermalConfig cfg;
  cfg.cooling = power::cooling(cooling);
  return cfg;
}

HmcThermalConfig hmc11_thermal_config(power::CoolingType cooling, double fpga_watts) {
  HmcThermalConfig cfg;
  cfg.dram_dies = 4;
  cfg.floorplan.vaults_x = 4;
  cfg.floorplan.vaults_y = 4;
  cfg.cooling = power::prototype_cooling(cooling);
  cfg.co_heater_watts = fpga_watts;
  return cfg;
}

StackSpec HmcThermalModel::build_stack_spec(const HmcThermalConfig& cfg) {
  StackSpec spec;
  spec.floorplan = cfg.floorplan;
  spec.layers.reserve(cfg.dram_dies + 1);

  LayerSpec logic;
  logic.name = "logic";
  logic.thickness_m = StackGeometry::die_thickness;
  logic.conductivity = Conductivity::silicon;
  logic.volumetric_heat_capacity = HeatCapacity::silicon * cfg.heat_capacity_scale;
  logic.interface_r_above = cfg.interface_r;
  spec.layers.push_back(logic);

  for (std::size_t i = 0; i < cfg.dram_dies; ++i) {
    LayerSpec dram;
    dram.name = "dram" + std::to_string(i);
    dram.thickness_m = StackGeometry::die_thickness;
    dram.conductivity = Conductivity::silicon;
    dram.volumetric_heat_capacity = HeatCapacity::silicon * cfg.heat_capacity_scale;
    dram.interface_r_above = cfg.interface_r;
    spec.layers.push_back(dram);
  }

  spec.tim_r = cfg.tim_r;
  spec.sink_r = cfg.cooling.resistance;
  spec.sink_heat_capacity = cfg.sink_heat_capacity;
  spec.board_r = 20.0;
  spec.ambient = cfg.ambient;
  spec.co_heater_watts = cfg.co_heater_watts;
  return spec;
}

HmcThermalModel::HmcThermalModel(HmcThermalConfig cfg)
    : cfg_{std::move(cfg)}, stack_{build_stack_spec(cfg_)} {
  COOLPIM_REQUIRE(cfg_.dram_dies >= 1, "HMC needs at least one DRAM die");
}

void HmcThermalModel::apply_power(const power::PowerBreakdown& power) {
  const auto& fp = cfg_.floorplan;

  // Logic die (layer 0): SerDes/PLL background spread over the die (the PHY
  // quads occupy most of the logic-die area), switching power and PIM FUs at
  // vault centers.
  PowerMap logic = uniform_power(fp, power.logic_background.value());
  logic.add(vault_centered_power(fp, power.logic_dynamic.value(), cfg_.vault_spread_cells));
  logic.add(vault_centered_power(fp, power.fu.value(), 1));

  // DRAM dies: dynamic + background spread uniformly over all dies.
  const double per_die =
      (power.dram_dynamic.value() + power.dram_background.value()) /
      static_cast<double>(cfg_.dram_dies);
  const PowerMap dram = uniform_power(fp, per_die);

  // Bound models keep the live power in the lane; the scalar copy is synced
  // by store_lane whenever a steady solve needs it.
  if (batch_ != nullptr) {
    batch_->set_layer_power(lane_, 0, logic);
    for (std::size_t l = 1; l <= cfg_.dram_dies; ++l) {
      batch_->set_layer_power(lane_, l, dram);
    }
    return;
  }
  stack_.set_layer_power(0, logic);
  for (std::size_t l = 1; l <= cfg_.dram_dies; ++l) stack_.set_layer_power(l, dram);
}

std::size_t HmcThermalModel::solve_steady(SteadyStart start) {
  // Bound: round-trip through the scalar model so both paths run the exact
  // same SOR iteration from the exact same state (copying doubles is exact).
  if (batch_ != nullptr) batch_->store_lane(lane_, stack_);
  const std::size_t iters = stack_.solve_steady(1e-4, 200000, start);
  if (batch_ != nullptr) batch_->load_lane(lane_, stack_);
  if (counters_ != nullptr) {
    counters_->counter(obs::names::kThermalSteadySolves).add();
    counters_->counter(obs::names::kThermalSteadyIterations).add(iters);
  }
  return iters;
}

void HmcThermalModel::bind_lane(BatchStackModel* batch, std::size_t lane) {
  COOLPIM_REQUIRE(batch != nullptr && lane < batch->lanes(), "bind_lane: bad lane");
  batch_ = batch;
  lane_ = lane;
  batch_->load_lane(lane_, stack_);
}

void HmcThermalModel::unbind_lane() {
  if (batch_ == nullptr) return;
  batch_->store_lane(lane_, stack_);
  batch_ = nullptr;
  lane_ = 0;
}

void HmcThermalModel::note_stepped(Time dt) { finish_step(dt); }

void HmcThermalModel::step(Time dt) {
  COOLPIM_REQUIRE(batch_ == nullptr,
                  "lane-bound model: the batch advances the lane (step_lanes + "
                  "note_stepped), step() is scalar-only");
  stack_.step(dt);
  finish_step(dt);
}

void HmcThermalModel::finish_step(Time dt) {
  const Time began = clock_;
  clock_ = clock_ + dt;

  // One reduction pass per step: peak_dram/peak_logic are read here once and
  // the same values feed both the counter gauges and the trace sink.
  const double dram_c = peak_dram().value();
  const double logic_c = peak_logic().value();
  const bool above = dram_c >= warn_limit_.value();
  const bool crossed = above != above_limit_;
  above_limit_ = above;

  if (counters_ != nullptr) {
    counters_->counter(obs::names::kThermalSteps).add();
    if (crossed) counters_->counter(obs::names::kThermalWarningCrossings).add();
    counters_->gauge(obs::names::kThermalPeakDramC).set(dram_c);
    counters_->gauge(obs::names::kThermalPeakLogicC).set(logic_c);
  }
  if (trace_.enabled()) {
    trace_.complete(began, dt, obs::names::kCatThermal, "step", {{"peak_dram_c", dram_c}});
    trace_.counter(clock_, obs::names::kCatThermal, "peak_dram_c", dram_c);
    trace_.counter(clock_, obs::names::kCatThermal, "peak_logic_c", logic_c);
    if (crossed) {
      obs::TraceArgs args;
      args.emplace_back("direction", above ? "rising" : "falling");
      args.emplace_back("limit_c", warn_limit_.value());
      for (std::size_t l = 1; l <= cfg_.dram_dies; ++l) {
        args.emplace_back("dram" + std::to_string(l - 1) + "_c", layer_peak_at(l).value());
      }
      trace_.instant(clock_, obs::names::kCatThermal, "warning_crossing", std::move(args));
    }
  }
}

void HmcThermalModel::reset() {
  // reset_lane matches the scalar semantics: temperatures and sink back to
  // ambient, power untouched (the live power lives in the lane while bound).
  if (batch_ != nullptr) {
    batch_->reset_lane(lane_);
  } else {
    stack_.reset_to_ambient();
  }
  above_limit_ = false;
}

Celsius HmcThermalModel::peak_dram() const {
  if (batch_ != nullptr) return batch_->peak_over_layers(lane_, 1, cfg_.dram_dies);
  return stack_.peak_over_layers(1, cfg_.dram_dies);
}

Celsius HmcThermalModel::peak_logic() const { return layer_peak_at(0); }

Celsius HmcThermalModel::mean_dram() const {
  double acc = 0.0;
  for (std::size_t l = 1; l <= cfg_.dram_dies; ++l) {
    acc += (batch_ != nullptr ? batch_->layer_mean(lane_, l) : stack_.layer_mean(l)).value();
  }
  return Celsius{acc / static_cast<double>(cfg_.dram_dies)};
}

Celsius HmcThermalModel::estimate_die_from_surface(Celsius surface, Watts power) {
  // Paper Section III-A: in-package junction runs ~5-10 C above the package
  // surface given ~20 W to dissipate; scale linearly with power.
  const double rise = 7.5 * power.value() / 20.0;
  return surface + rise;
}

}  // namespace coolpim::thermal
