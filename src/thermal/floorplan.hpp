// Die floorplan: vault layout and power-map construction.
//
// An HMC die is partitioned into functionally independent vaults (16 in
// HMC 1.1, 32 in HMC 2.0).  Each vault's controller and PIM functional unit
// sit at the vault center of the logic die, which is why the measured hot
// spots appear at vault centers (paper Fig. 3).  A PowerMap assigns watts to
// grid cells; builders below produce the distributions used by the models.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace coolpim::thermal {

/// Discretization of one die into nx * ny cells.
struct GridDims {
  std::size_t nx{32};
  std::size_t ny{16};

  [[nodiscard]] std::size_t cells() const { return nx * ny; }
  [[nodiscard]] std::size_t index(std::size_t x, std::size_t y) const {
    COOLPIM_ASSERT(x < nx && y < ny);
    return y * nx + x;
  }
};

/// Physical floorplan of one die.
struct Floorplan {
  double die_width_m{9.6e-3};    // 9.6 mm x 7.1 mm ~= 68 mm^2 (paper, HMC 1.1)
  double die_height_m{7.1e-3};
  std::size_t vaults_x{8};       // vault array; 8x4 = 32 vaults for HMC 2.0
  std::size_t vaults_y{4};
  GridDims grid{};

  [[nodiscard]] std::size_t vault_count() const { return vaults_x * vaults_y; }
  [[nodiscard]] double die_area_m2() const { return die_width_m * die_height_m; }
  [[nodiscard]] double cell_width_m() const {
    return die_width_m / static_cast<double>(grid.nx);
  }
  [[nodiscard]] double cell_height_m() const {
    return die_height_m / static_cast<double>(grid.ny);
  }
  [[nodiscard]] double cell_area_m2() const { return cell_width_m() * cell_height_m(); }

  /// Grid cell containing the center of vault (vx, vy).
  [[nodiscard]] std::size_t vault_center_cell(std::size_t vx, std::size_t vy) const;

  void validate() const;
};

/// Per-cell power assignment (watts) on one die.
class PowerMap {
 public:
  explicit PowerMap(const GridDims& dims) : dims_{dims}, watts_(dims.cells(), 0.0) {}

  void add(std::size_t cell, double watts) {
    COOLPIM_ASSERT(cell < watts_.size());
    watts_[cell] += watts;
  }
  void add(const PowerMap& other);

  [[nodiscard]] double at(std::size_t cell) const { return watts_.at(cell); }
  [[nodiscard]] double total() const;
  [[nodiscard]] const std::vector<double>& cells() const { return watts_; }
  [[nodiscard]] const GridDims& dims() const { return dims_; }

  void scale(double k);
  void clear();

 private:
  GridDims dims_;
  std::vector<double> watts_;
};

/// Spread `total_watts` uniformly over the die.
[[nodiscard]] PowerMap uniform_power(const Floorplan& fp, double total_watts);

/// Concentrate `total_watts` equally at every vault center; `spread_cells`
/// controls how many neighbouring cells share each vault's power (1 = single
/// cell, 2 = 3x3 block, ...).  Vault controllers + PIM FUs produce exactly
/// this pattern on the logic die.
[[nodiscard]] PowerMap vault_centered_power(const Floorplan& fp, double total_watts,
                                            int spread_cells = 1);

/// Power along the die perimeter (SerDes/link PHYs sit at the die edge).
[[nodiscard]] PowerMap edge_power(const Floorplan& fp, double total_watts);

}  // namespace coolpim::thermal
