// Compact transient thermal model of a 3D die stack (3D-ICE stand-in).
//
// The stack is discretized into nx*ny cells per die layer.  Heat flows
// laterally within a layer (silicon conduction), vertically between layers
// (through half-die silicon plus a bond/underfill interface), from the top
// layer through the TIM into a lumped heat-sink node, and from the sink to
// ambient through the sink's rated thermal resistance.  The bottom (logic)
// layer leaks weakly into the package substrate/board.
//
//            ambient
//               |  R_sink
//          [sink node]  <- optional co-heater (e.g. FPGA sharing the sink)
//               |  TIM (per cell)
//        [layer N-1]  top DRAM die
//               |   bond interfaces
//             ...
//        [layer 1]    bottom DRAM die
//               |
//        [layer 0]    logic die
//               |  R_board (weak)
//            ambient
//
// Solvers: steady state via Gauss-Seidel/SOR; transient via explicit Euler
// with an automatically chosen stable sub-step.
//
// Hot-path layout (docs/PERFORMANCE.md): the stencil is precomputed into
// flat structure-of-arrays neighbour-conductance tables (one entry per node
// and direction, zero at boundaries), and the temperature field is stored
// with one layer of ghost cells on either end so every neighbour read is
// in-bounds.  The transient sweep is branch-free -- boundary terms multiply
// a ghost temperature by a zero conductance, which contributes an exact
// (+/-)0.0 and leaves results bit-identical to the guarded reference sweep
// retained as step_reference().  Per-layer peak/mean reductions are cached
// and recomputed in a single pass over the field when the temperatures
// change.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "thermal/floorplan.hpp"

namespace coolpim::thermal {

/// One die layer of the stack.
struct LayerSpec {
  std::string name;
  double thickness_m{50e-6};
  double conductivity{120.0};            // W/(m*K)
  double volumetric_heat_capacity{1.63e6};  // J/(m^3*K)
  /// Interface (bond/underfill) resistance between this layer and the one
  /// above it, m^2*K/W.  Ignored for the top layer (TIM is separate).
  double interface_r_above{1.0e-5};
};

/// Full stack description.  Layer 0 is the bottom (logic) die.
struct StackSpec {
  Floorplan floorplan{};
  std::vector<LayerSpec> layers;
  double tim_r{1.25e-5};                    // m^2*K/W, top die -> sink
  ThermalResistance sink_r{0.5};            // sink -> ambient, C/W
  double sink_heat_capacity{80.0};          // J/K (lumped sink mass)
  double board_r{20.0};                     // C/W bulk, bottom die -> ambient
  Celsius ambient{25.0};
  /// Extra steady heat dumped directly into the sink node, modelling a
  /// co-packaged component sharing the heat sink (the AC-510's FPGA).
  double co_heater_watts{0.0};

  void validate() const;
};

/// HBM-class stack: `dram_dies` thin DRAM dies over one logic die on an
/// nx x ny grid.  The 16-high variant with a fine grid is the multi-stack
/// geometry of the HBM thermal-vulnerability literature; its explicit-Euler
/// stable dt collapses with cell area, which is what the ADI kernel of
/// BatchStackModel exists for (docs/PERFORMANCE.md section 7).
[[nodiscard]] StackSpec hbm_stack_spec(std::size_t dram_dies, std::size_t grid_nx,
                                       std::size_t grid_ny);

/// Ceiling on the explicit-Euler substep count a single step()/step_reference()
/// call may take.  Tall stacks on fine grids shrink the stable dt quadratically
/// with cell area; silently looping tens of millions of substeps behind one
/// step() call is a hang, not a simulation.  substeps_for() throws ConfigError
/// past this bound and names the ADI kernel as the way out.
inline constexpr std::size_t kMaxTransientSubsteps = std::size_t{1} << 22;

/// The flat-stencil RC network compiled from a StackSpec: per-node
/// neighbour-conductance tables (zero where the neighbour does not exist),
/// mirrored west/south/down views, ghost-padded offset copies for the
/// branch-free sweeps, heat capacities, the lumped-sink coupling and the
/// explicit-Euler stable step.  Shared verbatim by StackModel (one grid) and
/// BatchStackModel (N lanes over one network), so the two solvers cannot
/// drift apart on stencil construction.
struct StackNetwork {
  std::size_t n_cells{0};
  std::size_t n_nodes{0};

  std::vector<double> g_east;    // node -> node+1 in x
  std::vector<double> g_west;    // node -> node-1 in x
  std::vector<double> g_north;   // node -> node+nx in y
  std::vector<double> g_south;   // node -> node-nx in y
  std::vector<double> g_up;      // node -> node one layer up
  std::vector<double> g_down;    // node -> node one layer down
  // Offset-padded sweep views: same values with n_cells leading zeros, so a
  // transient kernel reads east/west (north/south, up/down) pairs from one
  // array at offsets i and i-1 (i-nx, i-n_cells).
  std::vector<double> g_east_pad;
  std::vector<double> g_north_pad;
  std::vector<double> g_up_pad;
  std::vector<double> g_sink;    // top-layer cells -> sink node
  std::vector<double> g_board;   // bottom-layer cells -> ambient
  std::vector<double> g_diag;    // sum of incident conductances per node
  double g_sink_ambient{0.0};
  double sink_g_total{0.0};

  std::vector<double> cap;       // heat capacities (J/K)
  Time stable_dt{Time::zero()};

  [[nodiscard]] static StackNetwork build(const StackSpec& spec);

  /// Explicit-Euler substeps needed to advance `dt` stably.  Throws
  /// ConfigError when dt is non-positive or the count would exceed
  /// kMaxTransientSubsteps (the tall-stack/fine-grid collapse case).
  [[nodiscard]] std::size_t substeps_for(Time dt) const;
};

/// Initial field for a steady-state solve.
///  - kWarm (default) iterates from the current temperature field unchanged;
///    this is the historical behaviour and is what in-run re-solves (e.g. the
///    warm-up equilibrium jumps in sys::System) rely on staying bit-stable.
///  - kWarmScaled additionally extrapolates the retained field before
///    iterating: the RC network is linear in power, so the temperature rise
///    over ambient is prescaled by the ratio of the current total dissipated
///    power to the total at the previous solve.  Across a parameter sweep
///    this lands the initial guess within the distribution-shape error of
///    the true solution and cuts the iteration count by several times.
///  - kCold resets the whole stack to ambient first, reproducing a solve on
///    a freshly constructed model.
/// All starts converge to the same solution within the solver tolerance.
enum class SteadyStart { kWarm, kWarmScaled, kCold };

class StackModel {
 public:
  explicit StackModel(StackSpec spec);

  [[nodiscard]] const StackSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t layer_count() const { return spec_.layers.size(); }
  [[nodiscard]] std::size_t cells_per_layer() const { return spec_.floorplan.grid.cells(); }
  [[nodiscard]] std::size_t node_count() const { return n_nodes_; }

  /// Replace the power map of one layer (watts per cell).
  void set_layer_power(std::size_t layer, const PowerMap& power);
  /// Convenience: clear all power.
  void clear_power();

  /// Solve for the steady-state temperature field with the current power.
  /// Returns the number of solver iterations used.
  std::size_t solve_steady(double tolerance_k = 1e-4, std::size_t max_iters = 200000,
                           SteadyStart start = SteadyStart::kWarm);

  /// Advance the transient solution by `dt` with the current power.
  /// Branch-free flat-stencil sweep; no heap allocation after construction.
  void step(Time dt);

  /// Retained naive sweep (boundary branches per cell, fresh scratch vector
  /// per call).  Produces bit-identical temperatures to step(); kept as the
  /// equivalence-test oracle and the perf-bench baseline.
  void step_reference(Time dt);

  /// Sub-steps step()/step_reference() perform for a given dt.  Throws
  /// ConfigError (never silently loops) when the count would exceed
  /// kMaxTransientSubsteps -- see StackNetwork::substeps_for.
  [[nodiscard]] std::size_t substeps_for(Time dt) const;

  /// The compiled stencil network (read-only; BatchStackModel shares the
  /// same construction path).
  [[nodiscard]] const StackNetwork& network() const { return net_; }

  /// Reset all temperatures to ambient.
  void reset_to_ambient();

  [[nodiscard]] Celsius cell_temp(std::size_t layer, std::size_t cell) const;
  [[nodiscard]] Celsius layer_peak(std::size_t layer) const;
  [[nodiscard]] Celsius layer_mean(std::size_t layer) const;
  /// Peak over layers [first, last] inclusive.
  [[nodiscard]] Celsius peak_over_layers(std::size_t first, std::size_t last) const;
  [[nodiscard]] Celsius sink_temp() const;

  /// Package surface temperature estimate: what a thermal camera aimed at
  /// the package lid would read -- between the top-die and sink temperature.
  [[nodiscard]] Celsius surface_temp() const;

  /// Copy of one layer's temperature field in Celsius (row-major).
  [[nodiscard]] std::vector<double> layer_field(std::size_t layer) const;

  /// Largest stable explicit-Euler step for the current conductances.
  [[nodiscard]] Time stable_step() const { return net_.stable_dt; }

  // Lane-transfer accessors (BatchStackModel::load_lane/store_lane): raw
  // Kelvin state in node order, ghost blocks excluded.  Copying doubles is
  // exact, so a scalar model round-tripped through a batch lane -- or a lane
  // round-tripped through a scalar model for a steady solve -- continues
  // from bit-identical state.
  [[nodiscard]] const double* node_temps_k() const { return field(); }
  void set_node_temps_k(const double* src) {
    std::copy(src, src + n_nodes_, field());
    mark_temps_changed();
  }
  [[nodiscard]] double sink_temp_kelvin() const { return sink_temp_k_; }
  void set_sink_temp_kelvin(double kelvin) { sink_temp_k_ = kelvin; }
  [[nodiscard]] const std::vector<double>& node_power_w() const { return power_w_; }
  void set_node_power_w(const double* src) {
    std::copy(src, src + n_nodes_, power_w_.begin());
  }

 private:
  /// Per-layer reductions, computed lazily in one pass over the field.
  struct LayerStat {
    double peak_k;
    double mean_k;
  };

  [[nodiscard]] std::size_t node(std::size_t layer, std::size_t cell) const {
    return layer * cells_per_layer() + cell;
  }
  /// Temperature field (Kelvin), skipping the leading ghost block.
  [[nodiscard]] double* field() { return temp_.data() + static_cast<std::ptrdiff_t>(n_cells_); }
  [[nodiscard]] const double* field() const {
    return temp_.data() + static_cast<std::ptrdiff_t>(n_cells_);
  }
  [[nodiscard]] const std::vector<LayerStat>& stats() const;
  void mark_temps_changed() { stats_dirty_ = true; }

  StackSpec spec_;
  std::size_t n_cells_{0};
  std::size_t n_nodes_{0};  // layer cells; sink node handled separately

  // Temperatures in Kelvin, ghost-padded: [n_cells ghosts][n_nodes][n_cells
  // ghosts].  Ghost entries hold ambient, are never written, and are only
  // ever multiplied by zero conductances.  `scratch_` has the same shape and
  // is the persistent double-buffer partner the transient sweep swaps with.
  std::vector<double> temp_;
  std::vector<double> scratch_;
  double sink_temp_k_{0.0};

  // Power per node (watts).
  std::vector<double> power_w_;

  // The compiled stencil: conductance tables, capacities, sink coupling and
  // the stable step, shared by construction with BatchStackModel.
  StackNetwork net_;

  // Solve history for the kWarmScaled extrapolation: the converged fields
  // and total dissipated watts of the last two steady solves.  watts <= 0
  // means "slot empty".  hist1 is the most recent.
  struct SteadyHistory {
    std::vector<double> field;  // n_nodes, no ghosts
    double sink_k{0.0};
    double watts{-1.0};
  };
  SteadyHistory hist1_;
  SteadyHistory hist2_;

  mutable std::vector<LayerStat> stats_;
  mutable bool stats_dirty_{true};
};

}  // namespace coolpim::thermal
