// Compact transient thermal model of a 3D die stack (3D-ICE stand-in).
//
// The stack is discretized into nx*ny cells per die layer.  Heat flows
// laterally within a layer (silicon conduction), vertically between layers
// (through half-die silicon plus a bond/underfill interface), from the top
// layer through the TIM into a lumped heat-sink node, and from the sink to
// ambient through the sink's rated thermal resistance.  The bottom (logic)
// layer leaks weakly into the package substrate/board.
//
//            ambient
//               |  R_sink
//          [sink node]  <- optional co-heater (e.g. FPGA sharing the sink)
//               |  TIM (per cell)
//        [layer N-1]  top DRAM die
//               |   bond interfaces
//             ...
//        [layer 1]    bottom DRAM die
//               |
//        [layer 0]    logic die
//               |  R_board (weak)
//            ambient
//
// Solvers: steady state via Gauss-Seidel/SOR; transient via explicit Euler
// with an automatically chosen stable sub-step.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "thermal/floorplan.hpp"

namespace coolpim::thermal {

/// One die layer of the stack.
struct LayerSpec {
  std::string name;
  double thickness_m{50e-6};
  double conductivity{120.0};            // W/(m*K)
  double volumetric_heat_capacity{1.63e6};  // J/(m^3*K)
  /// Interface (bond/underfill) resistance between this layer and the one
  /// above it, m^2*K/W.  Ignored for the top layer (TIM is separate).
  double interface_r_above{1.0e-5};
};

/// Full stack description.  Layer 0 is the bottom (logic) die.
struct StackSpec {
  Floorplan floorplan{};
  std::vector<LayerSpec> layers;
  double tim_r{1.25e-5};                    // m^2*K/W, top die -> sink
  ThermalResistance sink_r{0.5};            // sink -> ambient, C/W
  double sink_heat_capacity{80.0};          // J/K (lumped sink mass)
  double board_r{20.0};                     // C/W bulk, bottom die -> ambient
  Celsius ambient{25.0};
  /// Extra steady heat dumped directly into the sink node, modelling a
  /// co-packaged component sharing the heat sink (the AC-510's FPGA).
  double co_heater_watts{0.0};

  void validate() const;
};

class StackModel {
 public:
  explicit StackModel(StackSpec spec);

  [[nodiscard]] const StackSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t layer_count() const { return spec_.layers.size(); }
  [[nodiscard]] std::size_t cells_per_layer() const { return spec_.floorplan.grid.cells(); }

  /// Replace the power map of one layer (watts per cell).
  void set_layer_power(std::size_t layer, const PowerMap& power);
  /// Convenience: clear all power.
  void clear_power();

  /// Solve for the steady-state temperature field with the current power.
  /// Returns the number of solver iterations used.
  std::size_t solve_steady(double tolerance_k = 1e-4, std::size_t max_iters = 200000);

  /// Advance the transient solution by `dt` with the current power.
  void step(Time dt);

  /// Reset all temperatures to ambient.
  void reset_to_ambient();

  [[nodiscard]] Celsius cell_temp(std::size_t layer, std::size_t cell) const;
  [[nodiscard]] Celsius layer_peak(std::size_t layer) const;
  [[nodiscard]] Celsius layer_mean(std::size_t layer) const;
  /// Peak over layers [first, last] inclusive.
  [[nodiscard]] Celsius peak_over_layers(std::size_t first, std::size_t last) const;
  [[nodiscard]] Celsius sink_temp() const;

  /// Package surface temperature estimate: what a thermal camera aimed at
  /// the package lid would read -- between the top-die and sink temperature.
  [[nodiscard]] Celsius surface_temp() const;

  /// Copy of one layer's temperature field in Celsius (row-major).
  [[nodiscard]] std::vector<double> layer_field(std::size_t layer) const;

  /// Largest stable explicit-Euler step for the current conductances.
  [[nodiscard]] Time stable_step() const { return stable_dt_; }

 private:
  void build_network();
  [[nodiscard]] std::size_t node(std::size_t layer, std::size_t cell) const {
    return layer * cells_per_layer() + cell;
  }

  StackSpec spec_;
  std::size_t n_cells_{0};
  std::size_t n_nodes_{0};  // layer cells; sink node handled separately

  // Temperatures in Kelvin.
  std::vector<double> temp_k_;
  double sink_temp_k_{0.0};

  // Power per node (watts).
  std::vector<double> power_w_;

  // Conductance network (W/K).
  std::vector<double> g_east_;    // node -> node+1 in x (0 if at edge)
  std::vector<double> g_north_;   // node -> node+nx in y (0 if at edge)
  std::vector<double> g_up_;      // node -> node one layer up (0 for top layer)
  std::vector<double> g_sink_;    // top-layer cells -> sink node
  std::vector<double> g_board_;   // bottom-layer cells -> ambient
  std::vector<double> g_diag_;    // sum of incident conductances per node
  double g_sink_ambient_{0.0};
  double sink_g_total_{0.0};

  // Heat capacities (J/K).
  std::vector<double> cap_;
  Time stable_dt_{Time::zero()};
};

}  // namespace coolpim::thermal
