// Vault controller: per-vault bank array plus a PIM functional unit.
//
// The vault controller decodes the incoming packet, steers it to the bank
// selected by the address, and for PIM operations drives the atomic RMW on
// the locked bank through the vault's single functional unit (FU ops to
// different banks of the same vault serialize on the FU).
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "hmc/bank.hpp"
#include "hmc/config.hpp"
#include "hmc/packet.hpp"

namespace coolpim::hmc {

class Vault {
 public:
  Vault(const HmcConfig& cfg, Time fu_latency = Time::ns(2.0))
      : ctrl_latency_{Time::ns(4.0)}, fu_latency_{fu_latency} {
    const PagePolicy policy =
        cfg.open_page ? PagePolicy::kOpenPage : PagePolicy::kClosedPage;
    banks_.reserve(cfg.banks_per_vault());
    for (std::size_t i = 0; i < cfg.banks_per_vault(); ++i) {
      banks_.emplace_back(cfg.timing, fu_latency, policy);
    }
  }

  /// Service a transaction arriving at `arrival` targeting `bank_index`,
  /// DRAM row `row`.  Returns when the vault finished it (data returned /
  /// committed).
  Time service(Time arrival, TransactionType type, std::size_t bank_index, double scale,
               std::uint64_t row = 0) {
    COOLPIM_ASSERT(bank_index < banks_.size());
    Bank& bank = banks_[bank_index];
    const Time at_bank = arrival + ctrl_latency_;

    switch (type) {
      case TransactionType::kRead64: {
        const auto s = bank.schedule(at_bank, AccessKind::kRead, scale, row);
        stats_.counter("reads").add();
        record_wait(at_bank, s.start);
        return s.complete;
      }
      case TransactionType::kWrite64: {
        const auto s = bank.schedule(at_bank, AccessKind::kWrite, scale, row);
        stats_.counter("writes").add();
        record_wait(at_bank, s.start);
        return s.complete;
      }
      case TransactionType::kPimNoReturn:
      case TransactionType::kPimWithReturn: {
        // The FU is shared by all banks of the vault; serialize on it.
        const Time fu_start = std::max(at_bank, fu_ready_at_);
        const auto s = bank.schedule(fu_start, AccessKind::kPimRmw, scale, row);
        fu_ready_at_ = s.start + fu_latency_;
        stats_.counter("pim_ops").add();
        record_wait(at_bank, s.start);
        return s.complete;
      }
    }
    COOLPIM_ASSERT_MSG(false, "unhandled transaction type");
    return arrival;
  }

  [[nodiscard]] const StatSet& stats() const { return stats_; }
  [[nodiscard]] std::size_t bank_count() const { return banks_.size(); }
  [[nodiscard]] const Bank& bank(std::size_t i) const { return banks_.at(i); }

 private:
  void record_wait(Time arrival, Time start) {
    stats_.summary("queue_wait_ns").record((start - arrival).as_ns());
  }

  Time ctrl_latency_;
  Time fu_latency_;
  Time fu_ready_at_{Time::zero()};
  std::vector<Bank> banks_;
  StatSet stats_;
};

}  // namespace coolpim::hmc
