// Functional model of the vault PIM functional unit.
//
// HMC 2.0 atomics operate on a 16-byte (128-bit) memory operand and an
// immediate: the FU reads the operand, computes, writes back, and reports an
// atomic flag (plus the original data for the returning ops).  This model
// implements the operation semantics exactly, so tests can verify that
// offloaded kernels and their CUDA shadow versions compute identical results
// through either path.
#pragma once

#include <array>
#include <cstdint>

#include "hmc/pim.hpp"

namespace coolpim::hmc {

/// 128-bit operand as two 64-bit lanes (little-endian lane order).
struct Operand128 {
  std::uint64_t lo{0};
  std::uint64_t hi{0};

  friend constexpr bool operator==(const Operand128&, const Operand128&) = default;
};

/// Result of one FU operation.
struct FuResult {
  Operand128 new_value;   // written back to DRAM
  Operand128 old_value;   // returned for the with-return ops
  bool atomic_success{true};
};

/// Execute `op` on `memory` with immediate `imm`.
///
/// Semantics (HMC 2.0 spec + GraphPIM extensions):
///  * kSignedAdd8   : low 8 bytes += low 8 bytes of imm (two's complement)
///  * kSignedAdd16  : dual add: lo += imm.lo, hi += imm.hi
///  * kSwap         : memory = imm
///  * kBitWrite     : memory = (memory & ~imm.hi) | (imm.lo & imm.hi)
///                    (imm.hi is the write mask, imm.lo the data)
///  * kAnd / kOr    : bitwise on both lanes
///  * kCasEqual     : if memory == imm.hi-compare? -- spec: compare low 8B
///                    against imm.hi, swap in imm.lo on equality
///  * kCasGreater   : swap in imm.lo when imm.lo > memory.lo (signed)
///  * kFpAdd        : lo lane as IEEE double += imm.lo as double
///  * kFpMin        : lo lane = min(lo, imm.lo) as doubles
[[nodiscard]] FuResult fu_execute(PimOpcode op, Operand128 memory, Operand128 imm);

/// Convenience for the common 8-byte integer ops.
[[nodiscard]] std::int64_t fu_add64(std::int64_t memory, std::int64_t imm);

}  // namespace coolpim::hmc
