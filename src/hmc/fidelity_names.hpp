// Exported fidelity-tier name constants -- the single source of truth for
// how the simulator's fidelity vocabulary is spelled.
//
// Three tiers exist: the HMC service backends selected by --hmc-backend /
// COOLPIM_HMC_BACKEND (hmc/backend.hpp registry), and the fleet tier's node
// thermal-integration fidelity (fleet::ThermalFidelity).  Every CLI flag,
// error message, bench JSON field and docs table spells these names from the
// constants below, obs/names.hpp-style; DESIGN.md section 15 and
// docs/ARCHITECTURE.md are pinned against them by tests/test_backends.cpp,
// so renaming a tier here without updating the docs fails the suite.
#pragma once

#include <string_view>

namespace coolpim::hmc::fidelity {

// ---- HMC service backends (--hmc-backend vocabulary) -----------------------
/// Analytic epoch-level service model (hmc::ThroughputModel): op counts per
/// ~10 us epoch, link FLIT + internal DRAM caps.  The default, and the
/// identity baseline for every golden result.
inline constexpr std::string_view kEpochThroughput = "epoch-throughput";
/// Event-detailed request path (hmc::Device): per-request link serialization,
/// crossbar, vault/bank timing.
inline constexpr std::string_view kEventDetailed = "event-detailed";
/// Instruction-level PIM vault model (pim::PimVaultBackend): CRF
/// fetch/decode with program/loop counters, per-bank operand conflicts.
inline constexpr std::string_view kPimVault = "pim-vault";

inline constexpr std::string_view kAllBackends[] = {
    kEpochThroughput, kEventDetailed, kPimVault};

// ---- Fleet node thermal fidelity (fleet::ThermalFidelity) ------------------
inline constexpr std::string_view kFleetRc = "rc";
inline constexpr std::string_view kFleetGrid = "grid";

}  // namespace coolpim::hmc::fidelity
