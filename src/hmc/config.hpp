// HMC device configuration (paper Table IV and the HMC 1.1 / 2.0 specs).
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/units.hpp"

namespace coolpim::hmc {

/// DRAM timing parameters (paper Table IV, from [Kim+, PACT'13]).
struct DramTiming {
  Time tCL{Time::ns(13.75)};
  Time tRCD{Time::ns(13.75)};
  Time tRP{Time::ns(13.75)};
  Time tRAS{Time::ns(27.5)};

  /// Closed-page random-access service time: ACT(tRCD) + CAS(tCL) with the
  /// precharge overlapped by tRAS restoration; bank is reusable after
  /// tRAS + tRP.
  [[nodiscard]] Time access_latency() const { return tRCD + tCL; }
  [[nodiscard]] Time bank_cycle() const { return tRAS + tRP; }
};

struct HmcConfig {
  std::string name{"HMC 2.0"};
  std::uint64_t capacity_bytes{8ULL << 30};
  std::size_t dram_dies{8};
  std::size_t vaults{32};
  std::size_t banks{512};  // total across the cube
  std::size_t links{4};
  Bandwidth link_raw_per_link{Bandwidth::gbps(120.0)};   // aggregate both directions
  Bandwidth link_data_per_link{Bandwidth::gbps(80.0)};   // payload after headers
  DramTiming timing{};
  bool pim_capable{true};
  /// Internal TSV/DRAM array bandwidth ceiling at nominal frequency
  /// (aggregate of 32 vaults; comfortably above the off-chip links, which is
  /// why PIM can push internal utilization past the external maximum).
  Bandwidth internal_peak{Bandwidth::gbps(1024.0)};
  /// DRAM block transferred per bank access (read or write), bytes.
  std::size_t access_granularity{64};
  /// Row-buffer management: false = closed page (HMC default), true = open
  /// page (ablation option; see hmc/bank.hpp).
  bool open_page{false};
  /// DRAM row size for row-hit detection under open page.
  std::size_t row_bytes{2048};

  [[nodiscard]] std::size_t banks_per_vault() const { return banks / vaults; }
  [[nodiscard]] Bandwidth link_raw_total() const {
    return link_raw_per_link * static_cast<double>(links);
  }
  [[nodiscard]] Bandwidth link_data_total() const {
    return link_data_per_link * static_cast<double>(links);
  }

  void validate() const {
    COOLPIM_REQUIRE(vaults > 0 && banks % vaults == 0, "banks must divide evenly into vaults");
    COOLPIM_REQUIRE(links > 0, "need at least one link");
    COOLPIM_REQUIRE(dram_dies > 0, "need at least one DRAM die");
    COOLPIM_REQUIRE(access_granularity > 0, "access granularity must be positive");
  }
};

/// HMC 2.0, 8 GB cube: 1 logic die + 8 DRAM dies, 32 vaults, 512 banks,
/// 4 links at 120 GB/s raw (80 GB/s data) each => 480/320 GB/s totals.
[[nodiscard]] inline HmcConfig hmc20_config() { return HmcConfig{}; }

/// HMC 1.1, 4 GB cube on the AC-510 module: 4 DRAM dies, 16 vaults, two
/// half-width links totalling 60 GB/s data; no PIM.
[[nodiscard]] inline HmcConfig hmc11_config() {
  HmcConfig cfg;
  cfg.name = "HMC 1.1";
  cfg.capacity_bytes = 4ULL << 30;
  cfg.dram_dies = 4;
  cfg.vaults = 16;
  cfg.banks = 256;
  cfg.links = 2;
  cfg.link_raw_per_link = Bandwidth::gbps(45.0);
  cfg.link_data_per_link = Bandwidth::gbps(30.0);
  cfg.pim_capable = false;
  cfg.internal_peak = Bandwidth::gbps(256.0);
  return cfg;
}

}  // namespace coolpim::hmc
