// Event-detailed HMC device model.
//
// Models the full request path: link serialization (request FLITs at the link
// FLIT rate), crossbar traversal, vault/bank service, and response
// serialization.  Responses carry the ERRSTAT thermal-warning bit whenever
// the device is above its warning threshold, which is the feedback signal
// CoolPIM's source throttling consumes.
//
// This is the high-fidelity model used for latency/bandwidth
// micro-experiments and tests; millisecond-scale full-system runs use
// hmc::ThroughputModel (see DESIGN.md section 5).
#pragma once

#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "hmc/config.hpp"
#include "hmc/packet.hpp"
#include "hmc/thermal_policy.hpp"
#include "hmc/vault.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

namespace coolpim::hmc {

/// Address -> (vault, bank, row) mapping.  The default interleaves 64-byte
/// blocks across vaults (HMC default: sequential traffic spreads maximally);
/// a larger `interleave_bytes` keeps more of a stream in one vault (ablation
/// option for the open-page policy).
struct AddressMap {
  std::size_t vaults;
  std::size_t banks_per_vault;
  std::size_t interleave_bytes{64};
  std::size_t row_bytes{2048};

  struct Location {
    std::size_t vault;
    std::size_t bank;
    std::uint64_t row;
  };

  [[nodiscard]] Location locate(std::uint64_t address) const {
    const std::uint64_t block = address / interleave_bytes;
    const auto vault = static_cast<std::size_t>(block % vaults);
    const auto bank = static_cast<std::size_t>((block / vaults) % banks_per_vault);
    // Row id within the bank: the address bits above the bank selection.
    const std::uint64_t row = block / (vaults * banks_per_vault) * interleave_bytes / row_bytes;
    return {vault, bank, row};
  }
};

class Device {
 public:
  using ResponseCallback = std::function<void(const Response&)>;

  Device(sim::Simulation& sim, HmcConfig cfg, ThermalPolicy policy = {});

  /// Submit a request; the callback fires when the response arrives back at
  /// the host.  Throws SimError if the device is shut down.
  void submit(const Request& req, ResponseCallback on_response);

  /// Thermal coupling: the system updates the DRAM temperature each epoch.
  void set_dram_temperature(Celsius t);
  [[nodiscard]] Celsius dram_temperature() const { return dram_temp_; }
  [[nodiscard]] ThermalPhase phase() const { return policy_.phase(dram_temp_); }
  [[nodiscard]] bool warning_active() const { return policy_.warning(dram_temp_); }
  [[nodiscard]] bool is_shut_down() const { return shut_down_; }

  [[nodiscard]] const HmcConfig& config() const { return cfg_; }
  [[nodiscard]] const ThermalPolicy& policy() const { return policy_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }
  [[nodiscard]] StatSet& stats() { return stats_; }
  [[nodiscard]] const Vault& vault(std::size_t i) const { return vaults_.at(i); }

  /// FLITs moved so far (request + response), for bandwidth accounting.
  [[nodiscard]] std::uint64_t total_flits() const { return total_flits_; }
  /// Payload bytes delivered so far.
  [[nodiscard]] std::uint64_t total_payload_bytes() const { return payload_bytes_; }

  /// Attach observability (category "hmc"): a complete-span per request
  /// (submit -> response at host) tagged with vault/bank and FLIT cost,
  /// cumulative link-FLIT counter tracks, and an `errstat_warning` instant
  /// for each response carrying the thermal-warning bit.  Read-only.
  void set_observer(obs::Trace trace, obs::CounterRegistry* counters = nullptr) {
    trace_ = trace;
    counters_ = counters;
  }

  /// Link fault hook: called once per response with its in-flight integrity
  /// outcome (fault::FaultPlan provides one).  The device still *raises* the
  /// ERRSTAT bit from its own temperature -- corruption happens on the wire,
  /// so only the host-visible copy is affected -- and a kCrcDetected /
  /// kLost response reaches the callback with integrity marked so the host
  /// side can retry or drop.  No hook installed = every packet kClean.
  using IntegrityFilter = std::function<PacketIntegrity(Time now, const Response&)>;
  void set_integrity_filter(IntegrityFilter filter) { integrity_ = std::move(filter); }

 private:
  [[nodiscard]] Time serialize_on_link(std::uint32_t flits, Time earliest);

  sim::Simulation& sim_;
  HmcConfig cfg_;
  ThermalPolicy policy_;
  AddressMap addr_map_;
  std::vector<Vault> vaults_;

  Celsius dram_temp_{25.0};
  bool shut_down_{false};

  // Link serializers: one FLIT pipe per direction, each carrying half the
  // aggregate raw link bandwidth (HMC links are full duplex).  The analytic
  // LinkModel pools both directions into a single FLIT budget, which matches
  // this model exactly for balanced read/write mixes and overestimates
  // heavily one-sided traffic; the throughput cross-check test pins the
  // balanced case.
  Time req_link_free_{Time::zero()};
  Time resp_link_free_{Time::zero()};
  Time flit_time_{Time::zero()};
  Time crossbar_latency_{Time::ns(3.0)};

  std::uint64_t total_flits_{0};
  std::uint64_t payload_bytes_{0};
  StatSet stats_;
  obs::Trace trace_;
  obs::CounterRegistry* counters_{nullptr};
  IntegrityFilter integrity_;
};

}  // namespace coolpim::hmc
