#include "hmc/link_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace coolpim::hmc {

namespace {
constexpr double flits_per_read = flit_cost(TransactionType::kRead64).total();        // 6
constexpr double flits_per_write = flit_cost(TransactionType::kWrite64).total();      // 6
constexpr double flits_per_pim = flit_cost(TransactionType::kPimNoReturn).total();    // 3
constexpr double flits_per_pim_ret = flit_cost(TransactionType::kPimWithReturn).total();  // 4
}  // namespace

Time LinkRetryPolicy::retry_delay(std::uint32_t attempt) const {
  COOLPIM_ASSERT(attempt >= 1);
  double delay_ps = static_cast<double>(backoff_base.as_ps());
  for (std::uint32_t i = 1; i < attempt; ++i) {
    delay_ps *= backoff_factor;
    if (delay_ps >= static_cast<double>(backoff_cap.as_ps())) break;
  }
  const double capped = std::min(delay_ps, static_cast<double>(backoff_cap.as_ps()));
  return Time::ps(static_cast<std::int64_t>(capped));
}

Time LinkRetryPolicy::total_delay(std::uint32_t attempts) const {
  Time total = Time::zero();
  for (std::uint32_t a = 1; a <= attempts; ++a) total += retry_delay(a);
  return total;
}

double LinkModel::flit_demand(const TransactionMix& mix) const {
  COOLPIM_ASSERT(mix.reads_per_sec >= 0 && mix.writes_per_sec >= 0 && mix.pim_per_sec >= 0);
  COOLPIM_ASSERT(mix.pim_return_fraction >= 0.0 && mix.pim_return_fraction <= 1.0);
  const double pim_flits = mix.pim_per_sec * ((1.0 - mix.pim_return_fraction) * flits_per_pim +
                                              mix.pim_return_fraction * flits_per_pim_ret);
  return mix.reads_per_sec * flits_per_read + mix.writes_per_sec * flits_per_write + pim_flits;
}

double LinkModel::admission_scale(const TransactionMix& mix) const {
  const double demand = flit_demand(mix);
  if (demand <= 0.0) return 1.0;
  return std::min(1.0, flits_per_sec() / demand);
}

Bandwidth LinkModel::data_bandwidth(const TransactionMix& mix) const {
  const double bytes =
      mix.reads_per_sec * static_cast<double>(payload_bytes(TransactionType::kRead64)) +
      mix.writes_per_sec * static_cast<double>(payload_bytes(TransactionType::kWrite64)) +
      mix.pim_per_sec * mix.pim_return_fraction *
          static_cast<double>(payload_bytes(TransactionType::kPimWithReturn));
  return Bandwidth::bytes_per_sec(bytes);
}

Bandwidth LinkModel::max_data_bandwidth() const {
  // All-read (or all-write) mix: 64 payload bytes per 6 FLITs.
  const double reads = flits_per_sec() / flits_per_read;
  return Bandwidth::bytes_per_sec(reads * 64.0);
}

Bandwidth LinkModel::regular_bandwidth_with_pim(double pim_ops_per_sec,
                                                double pim_return_fraction,
                                                double read_fraction) const {
  COOLPIM_REQUIRE(read_fraction >= 0.0 && read_fraction <= 1.0,
                  "read fraction must be in [0,1]");
  const double pim_flits =
      pim_ops_per_sec * ((1.0 - pim_return_fraction) * flits_per_pim +
                         pim_return_fraction * flits_per_pim_ret);
  const double remaining = std::max(0.0, flits_per_sec() - pim_flits);
  // Reads and writes cost the same 6 FLITs per 64 bytes.
  const double flits_per_req = read_fraction * flits_per_read + (1.0 - read_fraction) * flits_per_write;
  return Bandwidth::bytes_per_sec(remaining / flits_per_req * 64.0);
}

Bandwidth LinkModel::internal_dram_bandwidth(const TransactionMix& mix) const {
  const double gran = static_cast<double>(cfg_.access_granularity);
  const double regular = (mix.reads_per_sec + mix.writes_per_sec) * 64.0;
  const double pim = mix.pim_per_sec * 2.0 * gran;  // internal read + write
  return Bandwidth::bytes_per_sec(regular + pim);
}

}  // namespace coolpim::hmc
