// HMC packet/FLIT model (paper Table I, HMC 2.0 spec).
//
// Link traffic is packetized into 128-bit FLITs.  A 64-byte READ costs
// 1 request FLIT + 5 response FLITs (header/tail + 4 data FLITs); a WRITE the
// reverse; PIM operations carry an immediate in the request (2 FLITs) and
// return a 1-FLIT (no data) or 2-FLIT (with data) response.  Response tails
// carry a 7-bit error status; ERRSTAT = 0x01 signals a thermal warning.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/error.hpp"

namespace coolpim::hmc {

inline constexpr std::size_t kFlitBytes = 16;  // 128-bit FLIT

enum class TransactionType : std::uint8_t {
  kRead64,          // 64-byte read
  kWrite64,         // 64-byte write
  kPimNoReturn,     // PIM instruction, no data returned
  kPimWithReturn,   // PIM instruction returning the original data
};

struct FlitCost {
  std::uint32_t request;
  std::uint32_t response;

  [[nodiscard]] constexpr std::uint32_t total() const { return request + response; }
  [[nodiscard]] constexpr std::size_t total_bytes() const {
    return static_cast<std::size_t>(total()) * kFlitBytes;
  }
};

/// Table I.
[[nodiscard]] constexpr FlitCost flit_cost(TransactionType t) {
  switch (t) {
    case TransactionType::kRead64: return {1, 5};
    case TransactionType::kWrite64: return {5, 1};
    case TransactionType::kPimNoReturn: return {2, 1};
    case TransactionType::kPimWithReturn: return {2, 2};
  }
  // Unreachable; constexpr-friendly failure.
  return {0, 0};
}

/// Payload bytes moved between host and device by one transaction.
[[nodiscard]] constexpr std::size_t payload_bytes(TransactionType t) {
  switch (t) {
    case TransactionType::kRead64:
    case TransactionType::kWrite64: return 64;
    case TransactionType::kPimNoReturn: return 0;
    case TransactionType::kPimWithReturn: return 16;  // original operand data
  }
  return 0;
}

[[nodiscard]] constexpr std::string_view to_string(TransactionType t) {
  switch (t) {
    case TransactionType::kRead64: return "64-byte READ";
    case TransactionType::kWrite64: return "64-byte WRITE";
    case TransactionType::kPimNoReturn: return "PIM inst. without return";
    case TransactionType::kPimWithReturn: return "PIM inst. with return";
  }
  return "?";
}

/// Error-status field in the response tail (ERRSTAT[6:0]).
enum class ErrStat : std::uint8_t {
  kOk = 0x00,
  kThermalWarning = 0x01,  // operational temperature limit exceeded
};

/// Link-level packet integrity.  Every HMC packet tail carries a 32-bit CRC
/// over the whole packet; a receiver that detects a mismatch discards the
/// packet and the link layer replays it from the transmitter's retry buffer
/// (the spec's retry-pointer flow control).  The simulator models detection
/// *outcomes*, not the polynomial: a corrupted packet is either caught by
/// the CRC (and retried, see hmc::LinkRetryPolicy) or lost outright.
enum class PacketIntegrity : std::uint8_t {
  kClean = 0,        // CRC passes, payload intact
  kCrcDetected = 1,  // corrupted in flight, CRC catches it -> link retry
  kLost = 2,         // dropped in flight, nothing to retry from
};

/// A request as seen by the device front end.
struct Request {
  TransactionType type{TransactionType::kRead64};
  std::uint64_t address{0};
  std::uint32_t tag{0};
};

/// A response returned to the host.
struct Response {
  std::uint32_t tag{0};
  ErrStat errstat{ErrStat::kOk};
  bool atomic_success{true};  // PIM atomic-flag (always set on success)
  /// In-flight outcome as seen by the host's link master (set by the fault
  /// layer's integrity filter; always kClean on a fault-free link).
  PacketIntegrity integrity{PacketIntegrity::kClean};
};

}  // namespace coolpim::hmc
