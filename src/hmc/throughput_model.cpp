#include "hmc/throughput_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace coolpim::hmc {

EpochService ThroughputModel::serve(const EpochDemand& demand, Time epoch,
                                    Celsius dram_temp) const {
  COOLPIM_REQUIRE(epoch > Time::zero(), "epoch must be positive");
  COOLPIM_ASSERT(demand.reads >= 0 && demand.writes >= 0 && demand.pim_ops >= 0);

  EpochService out{};
  out.phase = policy_.phase(dram_temp);
  if (out.phase == ThermalPhase::kShutdown) {
    out.served_fraction = 0.0;
    out.shut_down = true;
    return out;
  }

  const double secs = epoch.as_sec();
  TransactionMix mix{demand.reads / secs, demand.writes / secs, demand.pim_ops / secs,
                     demand.pim_return_fraction};

  const double derate = policy_.service_scale(out.phase);

  // Constraint 1: link FLIT budget.  Every FLIT of payload ultimately waits
  // on a (possibly derated) DRAM bank, so the sustainable link goodput
  // scales with the thermal phase as well.
  const double link_scale = std::min(1.0, link_.admission_scale(mix) * derate);

  // Constraint 2: internal DRAM/TSV bandwidth, same derating.
  const double internal_demand = link_.internal_dram_bandwidth(mix).as_bytes_per_sec();
  const double internal_cap =
      link_.config().internal_peak.as_bytes_per_sec() * derate;
  const double dram_scale =
      internal_demand > 0.0 ? std::min(1.0, internal_cap / internal_demand) : 1.0;

  const double scale = std::min(link_scale, dram_scale);
  out.served_fraction = scale;
  out.reads = demand.reads * scale;
  out.writes = demand.writes * scale;
  out.pim_ops = demand.pim_ops * scale;

  TransactionMix served{mix.reads_per_sec * scale, mix.writes_per_sec * scale,
                        mix.pim_per_sec * scale, mix.pim_return_fraction};
  out.link_data = link_.data_bandwidth(served);
  out.link_raw = link_.raw_link_bandwidth(served);
  out.dram_internal = link_.internal_dram_bandwidth(served);
  out.pim_ops_per_sec = served.pim_per_sec;
  return out;
}

}  // namespace coolpim::hmc
