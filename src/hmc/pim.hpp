// PIM instruction set (HMC 2.0 atomics plus the GraphPIM floating-point
// extensions).  Every PIM op is an atomic read-modify-write on a single
// memory operand with an immediate; the bank is locked for the duration.
#pragma once

#include <cstdint>
#include <string_view>

#include "hmc/packet.hpp"

namespace coolpim::hmc {

enum class PimOpcode : std::uint8_t {
  // Arithmetic
  kSignedAdd8,    // 8-byte signed add immediate
  kSignedAdd16,   // 16-byte dual signed add
  // Bitwise
  kSwap,          // swap 16 bytes
  kBitWrite,      // masked bit write
  // Boolean
  kAnd,
  kOr,
  // Comparison
  kCasEqual,      // compare-and-swap if equal
  kCasGreater,    // compare-and-swap if greater
  // GraphPIM floating-point extensions [Nai+, HPCA'17]
  kFpAdd,
  kFpMin,
};

enum class PimOpClass : std::uint8_t { kArithmetic, kBitwise, kBoolean, kComparison };

[[nodiscard]] constexpr PimOpClass classify(PimOpcode op) {
  switch (op) {
    case PimOpcode::kSignedAdd8:
    case PimOpcode::kSignedAdd16:
    case PimOpcode::kFpAdd: return PimOpClass::kArithmetic;
    case PimOpcode::kSwap:
    case PimOpcode::kBitWrite: return PimOpClass::kBitwise;
    case PimOpcode::kAnd:
    case PimOpcode::kOr: return PimOpClass::kBoolean;
    case PimOpcode::kCasEqual:
    case PimOpcode::kCasGreater:
    case PimOpcode::kFpMin: return PimOpClass::kComparison;
  }
  return PimOpClass::kArithmetic;
}

/// Whether the op's response carries the original data (affects FLIT cost).
[[nodiscard]] constexpr bool returns_data(PimOpcode op) {
  switch (op) {
    case PimOpcode::kSwap:
    case PimOpcode::kCasEqual:
    case PimOpcode::kCasGreater: return true;
    default: return false;
  }
}

[[nodiscard]] constexpr TransactionType transaction_for(PimOpcode op) {
  return returns_data(op) ? TransactionType::kPimWithReturn : TransactionType::kPimNoReturn;
}

[[nodiscard]] constexpr std::string_view to_string(PimOpcode op) {
  switch (op) {
    case PimOpcode::kSignedAdd8: return "signed add (8B)";
    case PimOpcode::kSignedAdd16: return "signed add (16B)";
    case PimOpcode::kSwap: return "swap";
    case PimOpcode::kBitWrite: return "bit write";
    case PimOpcode::kAnd: return "AND";
    case PimOpcode::kOr: return "OR";
    case PimOpcode::kCasEqual: return "CAS-equal";
    case PimOpcode::kCasGreater: return "CAS-greater";
    case PimOpcode::kFpAdd: return "FP add (ext)";
    case PimOpcode::kFpMin: return "FP min (ext)";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(PimOpClass c) {
  switch (c) {
    case PimOpClass::kArithmetic: return "Arithmetic";
    case PimOpClass::kBitwise: return "Bitwise";
    case PimOpClass::kBoolean: return "Boolean";
    case PimOpClass::kComparison: return "Comparison";
  }
  return "?";
}

}  // namespace coolpim::hmc
