#include "hmc/device.hpp"

#include <utility>

#include "obs/names.hpp"

namespace coolpim::hmc {

Device::Device(sim::Simulation& sim, HmcConfig cfg, ThermalPolicy policy)
    : sim_{sim}, cfg_{std::move(cfg)}, policy_{policy},
      addr_map_{cfg_.vaults, cfg_.banks_per_vault(), 64, cfg_.row_bytes} {
  cfg_.validate();
  vaults_.reserve(cfg_.vaults);
  for (std::size_t i = 0; i < cfg_.vaults; ++i) vaults_.emplace_back(cfg_);
  // Per-direction FLIT rate: half the aggregate raw bandwidth each way.
  flit_time_ = Time::sec(static_cast<double>(kFlitBytes) /
                         (0.5 * cfg_.link_raw_total().as_bytes_per_sec()));
}

Time Device::serialize_on_link(std::uint32_t flits, Time earliest) {
  // Shared serializer: the transfer occupies the pipe for flits * flit_time.
  const Time start = std::max(earliest, req_link_free_);
  req_link_free_ = start + flit_time_ * static_cast<std::int64_t>(flits);
  return req_link_free_;
}

void Device::submit(const Request& req, ResponseCallback on_response) {
  if (shut_down_) throw SimError("HMC is shut down (thermal)");
  if (!cfg_.pim_capable && (req.type == TransactionType::kPimNoReturn ||
                            req.type == TransactionType::kPimWithReturn)) {
    throw ConfigError(cfg_.name + " does not support PIM instructions");
  }

  const FlitCost cost = flit_cost(req.type);
  const Time now = sim_.now();

  // Request serialization onto the link.
  const Time at_device = serialize_on_link(cost.request, now) + crossbar_latency_;

  // Vault/bank service.  The thermal service scale applies at dispatch time;
  // updates between dispatch and completion are coarse enough for our use.
  const auto phase = policy_.phase(dram_temp_);
  if (phase == ThermalPhase::kShutdown) {
    shut_down_ = true;
    throw SimError("HMC reached shutdown temperature while serving");
  }
  const double scale = policy_.service_scale(phase);
  const auto loc = addr_map_.locate(req.address);
  const Time done =
      vaults_[loc.vault].service(at_device, req.type, loc.bank, scale, loc.row);

  // Response serialization back to the host on the outbound pipe.
  const Time resp_start = std::max(done + crossbar_latency_, resp_link_free_);
  const Time resp_done = resp_start + flit_time_ * static_cast<std::int64_t>(cost.response);
  resp_link_free_ = resp_done;

  total_flits_ += cost.total();
  payload_bytes_ += payload_bytes(req.type);
  stats_.counter("requests").add();
  stats_.summary("latency_ns").record((resp_done - now).as_ns());
  if (counters_ != nullptr) {
    counters_->counter(obs::names::kHmcRequests).add();
    counters_->counter(obs::names::kHmcReqFlits).add(cost.request);
    counters_->counter(obs::names::kHmcRespFlits).add(cost.response);
    counters_->counter(obs::names::kHmcPayloadBytes).add(payload_bytes(req.type));
  }

  Response resp{};
  resp.tag = req.tag;
  resp.errstat = warning_active() ? ErrStat::kThermalWarning : ErrStat::kOk;
  if (resp.errstat == ErrStat::kThermalWarning) {
    stats_.counter("thermal_warnings").add();
    if (counters_ != nullptr) counters_->counter(obs::names::kHmcThermalWarnings).add();
  }
  // The wire can corrupt or lose the response on its way back; the device's
  // own state (vault timing, stats) is unaffected -- only the host-visible
  // copy carries the outcome.
  if (integrity_) resp.integrity = integrity_(resp_done, resp);

  if (trace_.enabled()) {
    trace_.complete(now, resp_done - now, obs::names::kCatHmc, "request",
                    {{"type", static_cast<int>(req.type)},
                     {"vault", static_cast<std::uint64_t>(loc.vault)},
                     {"bank", static_cast<std::uint64_t>(loc.bank)},
                     {"req_flits", cost.request},
                     {"resp_flits", cost.response}});
    trace_.counter(now, obs::names::kCatHmc, "link_flits", static_cast<double>(total_flits_));
    if (resp.errstat == ErrStat::kThermalWarning) {
      trace_.instant(resp_done, obs::names::kCatHmc, "errstat_warning",
                     {{"dram_c", dram_temp_.value()}, {"tag", req.tag}});
    }
  }

  sim_.schedule_at(resp_done, [cb = std::move(on_response), resp]() { cb(resp); });
}

void Device::set_dram_temperature(Celsius t) {
  dram_temp_ = t;
  if (policy_.phase(t) == ThermalPhase::kShutdown) shut_down_ = true;
}

}  // namespace coolpim::hmc
