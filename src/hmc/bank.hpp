// DRAM bank timing (closed-page policy).
//
// Each access activates a row (tRCD), transfers the column (tCL) and
// precharges; the bank is reusable after tRAS + tRP.  A PIM operation is an
// atomic read-modify-write: the bank stays locked through the read, the
// functional-unit operation and the write-back, so no other request to the
// same bank can be serviced meanwhile (HMC 2.0 spec behaviour).
//
// Thermal derating scales all timing by 1/scale (reduced DRAM frequency in
// the extended/critical phases).
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"
#include "hmc/config.hpp"

namespace coolpim::hmc {

enum class AccessKind { kRead, kWrite, kPimRmw };

/// Row-buffer management policy.  HMC vault controllers traditionally run
/// closed-page (random traffic dominates); the open-page option keeps the row
/// latched and pays the precharge only on a conflict -- the ablation bench
/// quantifies the difference per traffic pattern.
enum class PagePolicy : std::uint8_t { kClosedPage, kOpenPage };

/// Outcome of scheduling one access on a bank.
struct BankService {
  Time start;       // when the bank began the access
  Time complete;    // when data is available / write committed / RMW done
  Time bank_free;   // when the bank can accept the next access
};

class Bank {
 public:
  explicit Bank(DramTiming timing, Time fu_latency = Time::ns(2.0),
                PagePolicy policy = PagePolicy::kClosedPage)
      : timing_{timing}, fu_latency_{fu_latency}, policy_{policy} {}

  /// Schedule an access arriving at `arrival` to DRAM row `row`; `scale` is
  /// the thermal service-rate multiplier (1.0 nominal, <1 derated).
  BankService schedule(Time arrival, AccessKind kind, double scale = 1.0,
                       std::uint64_t row = 0) {
    COOLPIM_REQUIRE(scale > 0.0, "bank cannot serve while shut down");
    const Time start = std::max(arrival, ready_at_);
    const double stretch = 1.0 / scale;

    // Row activation cost under the page policy.  Closed page always pays the
    // full ACT and holds the bank for the row cycle (tRAS + tRP); open page
    // pays nothing on a row hit, precharge + ACT on a conflict, and releases
    // the bank right after the burst (the row stays latched).
    Time act = timing_.tRCD * stretch;
    bool hold_row_cycle = policy_ == PagePolicy::kClosedPage;
    if (policy_ == PagePolicy::kOpenPage) {
      if (row_open_ && open_row_ == row) {
        act = Time::zero();  // row hit
        ++row_hits_;
      } else if (row_open_) {
        act = (timing_.tRP + timing_.tRCD) * stretch;  // conflict: precharge first
        ++row_conflicts_;
      }
      row_open_ = true;
      open_row_ = row;
    }

    Time latency;   // request completion relative to start
    Time occupancy; // bank busy window relative to start
    switch (kind) {
      case AccessKind::kRead:
      case AccessKind::kWrite:
        latency = act + timing_.tCL * stretch;
        occupancy = hold_row_cycle ? timing_.bank_cycle() * stretch : latency;
        break;
      case AccessKind::kPimRmw:
        // Read out (ACT+CAS), operate (FU), write back (CAS), precharge.
        latency = act + timing_.tCL * stretch + fu_latency_ + timing_.tCL * stretch;
        occupancy = latency + (hold_row_cycle ? timing_.tRP * stretch : Time::zero());
        break;
    }

    ready_at_ = start + occupancy;
    ++accesses_;
    busy_time_ += occupancy;
    return BankService{start, start + latency, ready_at_};
  }

  [[nodiscard]] Time ready_at() const { return ready_at_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] Time busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t row_hits() const { return row_hits_; }
  [[nodiscard]] std::uint64_t row_conflicts() const { return row_conflicts_; }
  [[nodiscard]] PagePolicy policy() const { return policy_; }

 private:
  DramTiming timing_;
  Time fu_latency_;
  PagePolicy policy_;
  Time ready_at_{Time::zero()};
  std::uint64_t accesses_{0};
  Time busy_time_{Time::zero()};
  bool row_open_{false};
  std::uint64_t open_row_{0};
  std::uint64_t row_hits_{0};
  std::uint64_t row_conflicts_{0};
};

}  // namespace coolpim::hmc
