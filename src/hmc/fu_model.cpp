#include "hmc/fu_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace coolpim::hmc {

namespace {
double as_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t as_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
}  // namespace

FuResult fu_execute(PimOpcode op, Operand128 memory, Operand128 imm) {
  FuResult r;
  r.old_value = memory;
  r.new_value = memory;
  r.atomic_success = true;

  switch (op) {
    case PimOpcode::kSignedAdd8:
      r.new_value.lo = memory.lo + imm.lo;  // two's complement wraps
      break;
    case PimOpcode::kSignedAdd16:
      r.new_value.lo = memory.lo + imm.lo;
      r.new_value.hi = memory.hi + imm.hi;
      break;
    case PimOpcode::kSwap:
      r.new_value = imm;
      break;
    case PimOpcode::kBitWrite:
      // imm.hi selects the bits to write, imm.lo carries the data.
      r.new_value.lo = (memory.lo & ~imm.hi) | (imm.lo & imm.hi);
      break;
    case PimOpcode::kAnd:
      r.new_value.lo = memory.lo & imm.lo;
      r.new_value.hi = memory.hi & imm.hi;
      break;
    case PimOpcode::kOr:
      r.new_value.lo = memory.lo | imm.lo;
      r.new_value.hi = memory.hi | imm.hi;
      break;
    case PimOpcode::kCasEqual:
      if (memory.lo == imm.hi) {
        r.new_value.lo = imm.lo;
      } else {
        r.atomic_success = false;
      }
      break;
    case PimOpcode::kCasGreater:
      if (static_cast<std::int64_t>(imm.lo) > static_cast<std::int64_t>(memory.lo)) {
        r.new_value.lo = imm.lo;
      } else {
        r.atomic_success = false;
      }
      break;
    case PimOpcode::kFpAdd:
      r.new_value.lo = as_bits(as_double(memory.lo) + as_double(imm.lo));
      break;
    case PimOpcode::kFpMin:
      r.new_value.lo = as_bits(std::min(as_double(memory.lo), as_double(imm.lo)));
      break;
  }
  return r;
}

std::int64_t fu_add64(std::int64_t memory, std::int64_t imm) {
  Operand128 m{static_cast<std::uint64_t>(memory), 0};
  Operand128 i{static_cast<std::uint64_t>(imm), 0};
  return static_cast<std::int64_t>(fu_execute(PimOpcode::kSignedAdd8, m, i).new_value.lo);
}

}  // namespace coolpim::hmc
