// Analytic epoch-level HMC service model.
//
// The full-system simulation advances in epochs (~10 us).  Within one epoch
// the GPU offers a transaction demand; this model determines how much of it
// the cube can serve, limited by (a) the off-chip link FLIT budget and
// (b) the internal DRAM/TSV bandwidth, derated by the current thermal phase.
// All demand classes are scaled proportionally when over budget (the links
// and vault controllers are fair across requesters).
//
// Integration tests cross-check this model's saturated service rates against
// the event-detailed hmc::Device.
#pragma once

#include "common/units.hpp"
#include "hmc/config.hpp"
#include "hmc/link_model.hpp"
#include "hmc/thermal_policy.hpp"

namespace coolpim::hmc {

/// Demand offered during one epoch (transaction counts).
struct EpochDemand {
  double reads{0.0};
  double writes{0.0};
  double pim_ops{0.0};
  double pim_return_fraction{0.0};
};

/// What the device actually served in the epoch.
struct EpochService {
  double served_fraction{1.0};   // uniform admission scale applied to demand
  double reads{0.0};
  double writes{0.0};
  double pim_ops{0.0};
  Bandwidth link_data;           // payload bandwidth achieved
  Bandwidth link_raw;            // raw FLIT bandwidth achieved
  Bandwidth dram_internal;       // internal DRAM traffic
  double pim_ops_per_sec{0.0};
  ThermalPhase phase{ThermalPhase::kNormal};
  bool shut_down{false};
};

class ThroughputModel {
 public:
  ThroughputModel(HmcConfig cfg, ThermalPolicy policy = {})
      : link_{std::move(cfg)}, policy_{policy} {}

  [[nodiscard]] const HmcConfig& config() const { return link_.config(); }
  [[nodiscard]] const LinkModel& link() const { return link_; }
  [[nodiscard]] const ThermalPolicy& policy() const { return policy_; }

  /// Resolve one epoch: how much of `demand` is served in `epoch` at DRAM
  /// temperature `dram_temp`.
  [[nodiscard]] EpochService serve(const EpochDemand& demand, Time epoch,
                                   Celsius dram_temp) const;

 private:
  LinkModel link_;
  ThermalPolicy policy_;
};

}  // namespace coolpim::hmc
