// Off-chip link FLIT accounting.
//
// The serial links move 128-bit FLITs; every transaction type has a fixed
// FLIT cost (Table I).  This model converts between transaction mixes and
// link/data bandwidth, and computes the internal DRAM traffic a mix induces
// (each PIM op performs a read + a write at DRAM access granularity inside
// the cube, so internal bandwidth can exceed the external maximum).
#pragma once

#include "common/units.hpp"
#include "hmc/config.hpp"
#include "hmc/packet.hpp"

namespace coolpim::hmc {

/// Link-layer retransmission policy (HMC retry-pointer idiom).
///
/// When the receiving link master detects a CRC mismatch it discards the
/// packet and requests a replay from the transmitter's retry buffer.  Each
/// successive replay of the same packet backs off exponentially -- the link
/// re-trains between attempts -- up to a cap, and after `max_retries` failed
/// replays the packet is abandoned (the transaction layer sees a loss).
struct LinkRetryPolicy {
  std::uint32_t max_retries{4};
  Time backoff_base{Time::us(1.0)};   // delay before the first replay
  double backoff_factor{2.0};         // growth per successive replay
  Time backoff_cap{Time::us(16.0)};   // ceiling on any single replay delay
  bool operator==(const LinkRetryPolicy&) const = default;

  /// Delay before replay attempt `attempt` (1-based): capped exponential.
  [[nodiscard]] Time retry_delay(std::uint32_t attempt) const;

  /// Total added latency of a packet that succeeded on replay `attempts`
  /// (the sum of every backoff it waited through).
  [[nodiscard]] Time total_delay(std::uint32_t attempts) const;
};

/// A steady transaction mix offered to the links.
struct TransactionMix {
  double reads_per_sec{0.0};        // 64-byte reads
  double writes_per_sec{0.0};       // 64-byte writes
  double pim_per_sec{0.0};          // PIM operations
  double pim_return_fraction{0.0};  // fraction of PIM ops that return data
};

class LinkModel {
 public:
  explicit LinkModel(HmcConfig cfg) : cfg_{std::move(cfg)} { cfg_.validate(); }

  [[nodiscard]] const HmcConfig& config() const { return cfg_; }

  /// Aggregate FLIT throughput of all links (FLITs per second).
  [[nodiscard]] double flits_per_sec() const {
    return cfg_.link_raw_total().as_bytes_per_sec() / static_cast<double>(kFlitBytes);
  }

  /// FLITs per second consumed by a mix.
  [[nodiscard]] double flit_demand(const TransactionMix& mix) const;

  /// True if the links can carry the mix.
  [[nodiscard]] bool feasible(const TransactionMix& mix) const {
    return flit_demand(mix) <= flits_per_sec() * (1.0 + 1e-9);
  }

  /// Scale factor (<= 1) by which a mix must be throttled to fit the links.
  [[nodiscard]] double admission_scale(const TransactionMix& mix) const;

  /// Payload (data) bandwidth moved by a mix over the links.
  [[nodiscard]] Bandwidth data_bandwidth(const TransactionMix& mix) const;

  /// Peak data bandwidth with a pure 64-byte read/write mix (no PIM); this is
  /// the paper's 320 GB/s figure for HMC 2.0.
  [[nodiscard]] Bandwidth max_data_bandwidth() const;

  /// Largest regular-request data bandwidth that fits next to a given PIM
  /// rate (reads and writes in `read_fraction` proportion by request count).
  [[nodiscard]] Bandwidth regular_bandwidth_with_pim(double pim_ops_per_sec,
                                                     double pim_return_fraction = 0.0,
                                                     double read_fraction = 1.0) const;

  /// Internal DRAM traffic induced by a mix: every 64-byte read/write is one
  /// internal access; every PIM op is an internal read + write at access
  /// granularity.
  [[nodiscard]] Bandwidth internal_dram_bandwidth(const TransactionMix& mix) const;

  /// Raw link bandwidth consumed (FLITs * 16B), for the power model.
  [[nodiscard]] Bandwidth raw_link_bandwidth(const TransactionMix& mix) const {
    return Bandwidth::bytes_per_sec(flit_demand(mix) * static_cast<double>(kFlitBytes));
  }

 private:
  HmcConfig cfg_;
};

}  // namespace coolpim::hmc
