// DRAM thermal operating policy.
//
// The paper partitions the HMC operating range into three phases (Table IV):
// 0-85 C (normal), 85-95 C (extended: doubled refresh), 95-105 C (critical),
// with a 20% DRAM frequency reduction per phase step above normal, and a
// hard shutdown above 105 C (the HMC 1.1 prototype shuts down even earlier,
// at ~95 C die temperature, losing all data for tens of seconds).
// A thermal *warning* (ERRSTAT=0x01) is raised when the DRAM temperature
// crosses the warning threshold so the host can throttle before the device
// derates.
#pragma once

#include <cmath>
#include <string_view>

#include "common/units.hpp"

namespace coolpim::hmc {

enum class ThermalPhase : int {
  kNormal = 0,    // 0-85 C
  kExtended = 1,  // 85-95 C, refresh doubled
  kCritical = 2,  // 95-105 C
  kShutdown = 3,  // > 105 C
};

struct ThermalPolicy {
  Celsius normal_limit{85.0};
  Celsius extended_limit{95.0};
  Celsius shutdown_limit{105.0};
  /// Warning is raised slightly below the normal limit so source throttling
  /// can react before the device derates.
  Celsius warning_threshold{84.5};
  /// Sustained end-to-end service multiplier in each derated phase.  The
  /// paper applies a 20% DRAM frequency reduction per phase step; in a
  /// closed-loop GPU system the sustained throughput loss is larger than the
  /// frequency loss (longer bank occupancy compounds with queueing and the
  /// doubled refresh), which these calibrated multipliers capture.
  double extended_service_scale{0.58};
  double critical_service_scale{0.42};
  /// Conservative prototype policy: shut down instead of derating (HMC 1.1).
  bool conservative_shutdown{false};
  Celsius conservative_shutdown_temp{95.0};

  [[nodiscard]] ThermalPhase phase(Celsius dram_temp) const {
    if (dram_temp > shutdown_limit) return ThermalPhase::kShutdown;
    if (conservative_shutdown && dram_temp > conservative_shutdown_temp) {
      return ThermalPhase::kShutdown;
    }
    if (dram_temp > extended_limit) return ThermalPhase::kCritical;
    if (dram_temp > normal_limit) return ThermalPhase::kExtended;
    return ThermalPhase::kNormal;
  }

  [[nodiscard]] bool warning(Celsius dram_temp) const { return dram_temp > warning_threshold; }

  /// Effective sustained service-rate multiplier in a phase; 0 when shut
  /// down.  Applies to the whole cube: every transaction is ultimately a
  /// DRAM access, so slowed banks throttle link-side goodput too.
  [[nodiscard]] double service_scale(ThermalPhase p) const {
    switch (p) {
      case ThermalPhase::kNormal: return 1.0;
      case ThermalPhase::kExtended: return extended_service_scale;
      case ThermalPhase::kCritical: return critical_service_scale;
      case ThermalPhase::kShutdown: return 0.0;
    }
    return 1.0;
  }
};

/// Host-visible sensor conditioning: real thermal registers report in coarse
/// steps (the HMC register is 1 C-granular), so a reading quantizes down to a
/// multiple of `step_c`.  `step_c <= 0` means an exact (unquantized) sensor.
/// Used by the fault layer; the fault-free path never calls this.
[[nodiscard]] inline Celsius quantize_reading(Celsius reading, double step_c) {
  if (step_c <= 0.0) return reading;
  return Celsius{std::floor(reading.value() / step_c) * step_c};
}

[[nodiscard]] constexpr std::string_view to_string(ThermalPhase p) {
  switch (p) {
    case ThermalPhase::kNormal: return "normal (0-85C)";
    case ThermalPhase::kExtended: return "extended (85-95C)";
    case ThermalPhase::kCritical: return "critical (95-105C)";
    case ThermalPhase::kShutdown: return "shutdown";
  }
  return "?";
}

}  // namespace coolpim::hmc
