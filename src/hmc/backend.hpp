// The HMC service-backend contract: fidelity is data, selected by name.
//
// sys::SystemRun drives the epoch loop against this interface instead of a
// hard-wired model.  Three fidelity tiers register (DESIGN.md section 15):
//
//   epoch-throughput  hmc::ThroughputModel behind EpochThroughputBackend.
//                     Analytic per-epoch admission; the default, and
//                     byte-identical to the pre-contract simulator.
//   event-detailed    hmc::Device behind EventDetailedBackend.  Discrete
//                     per-request timing (link FLIT serialization, crossbar,
//                     vault/bank service) sampled per epoch.
//   pim-vault         pim::PimVaultBackend (src/pim/).  Instruction-level
//                     PIM units: CRF fetch/decode with program/loop
//                     counters, per-bank operand conflicts, DRAM timing
//                     through hmc::Vault / hmc::Bank.
//
// The contract has three hooks:
//   - serve-epoch: serve()/probe() resolve one epoch of demand at the
//     current DRAM temperature (probe is the side-effect-free what-if form
//     used by steady-state warm-up jumps and cross-validation).
//   - op-accounting: every serve() integrates exact double op totals into
//     ops(); drain_op_delta() emits integers with a residual carry so
//     counter totals are single-rounded from the exact sums -- per-run
//     pim_ops totals are backend-comparable by construction.
//   - thermal-power: thermal_power() maps a served mix to the bandwidths
//     the power model charges.
//
// The registry mirrors control::Policy (control/registry.hpp): an iterable
// kRegisteredBackends table, name lookup for --hmc-backend /
// COOLPIM_HMC_BACKEND, and one uniform build entry point.  make_backend()
// is *defined* in src/pim/backend_factory.cpp -- the pim library sits above
// hmc (it builds on vault/bank structures), so the factory lives in the top
// backend layer exactly like control:: sits above core::.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/units.hpp"
#include "hmc/config.hpp"
#include "hmc/fidelity_names.hpp"
#include "hmc/link_model.hpp"
#include "hmc/thermal_policy.hpp"
#include "hmc/throughput_model.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace coolpim::hmc {

enum class BackendKind : std::uint8_t {
  kEpochThroughput,
  kEventDetailed,
  kPimVault,
};

[[nodiscard]] constexpr std::string_view to_string(BackendKind k) {
  switch (k) {
    case BackendKind::kEpochThroughput: return fidelity::kEpochThroughput;
    case BackendKind::kEventDetailed: return fidelity::kEventDetailed;
    case BackendKind::kPimVault: return fidelity::kPimVault;
  }
  return "?";
}

struct BackendInfo {
  std::string_view cli_name;  // --hmc-backend / COOLPIM_HMC_BACKEND vocabulary
  BackendKind kind;
};

/// Every registered service backend; the conformance tests iterate this
/// array, so registering a fourth backend enrols it automatically.
inline constexpr BackendInfo kRegisteredBackends[] = {
    {fidelity::kEpochThroughput, BackendKind::kEpochThroughput},
    {fidelity::kEventDetailed, BackendKind::kEventDetailed},
    {fidelity::kPimVault, BackendKind::kPimVault},
};

/// Resolve a registered backend name; returns false (leaving `out`
/// untouched) for an unknown name.
[[nodiscard]] bool backend_from_name(std::string_view name, BackendKind& out);

/// Comma-separated registered names, for --help and error messages.
[[nodiscard]] std::string backend_names();

/// Exact (double) op totals integrated over every serve() so far.
struct OpAccounting {
  double reads{0.0};
  double writes{0.0};
  double pim_ops{0.0};
};

/// Integer counter emission since the previous drain (residual carry).
struct OpDelta {
  std::uint64_t reads{0};
  std::uint64_t writes{0};
  std::uint64_t pim_ops{0};
};

/// Bandwidths the power model charges for a served transaction mix.
struct ThermalPower {
  Bandwidth link_raw;
  Bandwidth dram_internal;
};

class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(kind()); }
  [[nodiscard]] virtual const HmcConfig& config() const = 0;
  [[nodiscard]] virtual const LinkModel& link() const = 0;
  [[nodiscard]] virtual const ThermalPolicy& policy() const = 0;

  /// Serve-epoch hook: resolve how much of `demand` the device serves in
  /// `epoch` at DRAM temperature `dram_temp`, integrating the served ops
  /// into the op-accounting totals.
  [[nodiscard]] EpochService serve(const EpochDemand& demand, Time epoch,
                                   Celsius dram_temp) {
    const EpochService s = do_serve(demand, epoch, dram_temp);
    ops_.reads += s.reads;
    ops_.writes += s.writes;
    ops_.pim_ops += s.pim_ops;
    return s;
  }

  /// Side-effect-free what-if serve: no op accounting, no internal state
  /// advanced (warm-up equilibrium probes, cross-validation sweeps).
  [[nodiscard]] virtual EpochService probe(const EpochDemand& demand, Time epoch,
                                           Celsius dram_temp) const = 0;

  /// Thermal-power hook: what the power model charges for a served mix.
  [[nodiscard]] virtual ThermalPower thermal_power(const TransactionMix& served) const {
    return {link().raw_link_bandwidth(served), link().internal_dram_bandwidth(served)};
  }

  /// Op-accounting hook: exact totals since construction.
  [[nodiscard]] const OpAccounting& ops() const { return ops_; }

  /// Integer ops since the previous drain.  Each class emits
  /// round(total) - emitted-so-far, so the sum of every drain equals the
  /// single rounding of the exact total -- no per-epoch rounding drift.
  [[nodiscard]] OpDelta drain_op_delta() {
    OpDelta d;
    d.reads = drain_one(ops_.reads, emitted_reads_);
    d.writes = drain_one(ops_.writes, emitted_writes_);
    d.pim_ops = drain_one(ops_.pim_ops, emitted_pim_ops_);
    return d;
  }

  /// Observability attach point; read-only, null by default.
  virtual void set_observer(obs::Trace /*trace*/, obs::CounterRegistry* /*counters*/) {}

 protected:
  [[nodiscard]] virtual EpochService do_serve(const EpochDemand& demand, Time epoch,
                                              Celsius dram_temp) = 0;

 private:
  static std::uint64_t drain_one(double total, std::uint64_t& emitted) {
    const auto rounded = static_cast<std::uint64_t>(total + 0.5);
    const std::uint64_t delta = rounded - emitted;
    emitted = rounded;
    return delta;
  }

  OpAccounting ops_{};
  std::uint64_t emitted_reads_{0};
  std::uint64_t emitted_writes_{0};
  std::uint64_t emitted_pim_ops_{0};
};

/// The analytic epoch model refitted under the contract.  serve() forwards
/// to ThroughputModel::serve verbatim, so runs through this member are
/// byte-identical to the pre-contract simulator.
class EpochThroughputBackend final : public Backend {
 public:
  explicit EpochThroughputBackend(HmcConfig cfg, ThermalPolicy policy = {})
      : model_{std::move(cfg), policy} {}

  [[nodiscard]] BackendKind kind() const override { return BackendKind::kEpochThroughput; }
  [[nodiscard]] const HmcConfig& config() const override { return model_.config(); }
  [[nodiscard]] const LinkModel& link() const override { return model_.link(); }
  [[nodiscard]] const ThermalPolicy& policy() const override { return model_.policy(); }

  [[nodiscard]] EpochService probe(const EpochDemand& demand, Time epoch,
                                   Celsius dram_temp) const override {
    return model_.serve(demand, epoch, dram_temp);
  }

  [[nodiscard]] const ThroughputModel& model() const { return model_; }

 protected:
  [[nodiscard]] EpochService do_serve(const EpochDemand& demand, Time epoch,
                                      Celsius dram_temp) override {
    return model_.serve(demand, epoch, dram_temp);
  }

 private:
  ThroughputModel model_;
};

/// The event-detailed hmc::Device refitted under the contract.  Each epoch a
/// deterministic sample of discrete requests (capped at
/// kMaxSampledRequests, demand proportions preserved via residual carries)
/// runs through a fresh Device -- link FLIT serialization, crossbar and
/// vault/bank timing included -- and the achieved request rate bounds the
/// served fraction.  Bandwidth reporting uses the same LinkModel arithmetic
/// as the analytic tier so EpochService semantics stay uniform.
class EventDetailedBackend final : public Backend {
 public:
  /// Per-epoch request-sample cap: enough to reach steady service on every
  /// vault (32 vaults x 16 banks), small enough to keep full runs usable.
  static constexpr std::uint64_t kMaxSampledRequests = 4096;

  explicit EventDetailedBackend(HmcConfig cfg, ThermalPolicy policy = {})
      : link_{std::move(cfg)}, policy_{policy} {}

  [[nodiscard]] BackendKind kind() const override { return BackendKind::kEventDetailed; }
  [[nodiscard]] const HmcConfig& config() const override { return link_.config(); }
  [[nodiscard]] const LinkModel& link() const override { return link_; }
  [[nodiscard]] const ThermalPolicy& policy() const override { return policy_; }

  [[nodiscard]] EpochService probe(const EpochDemand& demand, Time epoch,
                                   Celsius dram_temp) const override;

 protected:
  [[nodiscard]] EpochService do_serve(const EpochDemand& demand, Time epoch,
                                      Celsius dram_temp) override;

 private:
  struct Carry {
    double reads{0.0};
    double writes{0.0};
    double pim_ops{0.0};
    double pim_returns{0.0};
    std::uint64_t addr_cursor{0};
  };

  [[nodiscard]] EpochService run_detailed(const EpochDemand& demand, Time epoch,
                                          Celsius dram_temp, Carry& carry) const;

  LinkModel link_;
  ThermalPolicy policy_;
  Carry carry_{};
};

/// Everything any backend may need; sys:: fills it from its SystemConfig.
struct BackendBuild {
  BackendKind kind{BackendKind::kEpochThroughput};
  HmcConfig hmc{hmc20_config()};
  ThermalPolicy policy{};
  /// Operand-address stream seed for the instruction-level tier (the run
  /// seed, so CRF traces are deterministic per experiment).
  std::uint64_t seed{7};
  /// Micro-kernel the pim-vault tier lowers PIM demand to (pim/programs.hpp
  /// vocabulary); empty = the default kernel.
  std::string pim_kernel{};
};

/// Build the named backend.  Defined in src/pim/backend_factory.cpp (the
/// topmost backend library); callers link coolpim_pim.
[[nodiscard]] std::unique_ptr<Backend> make_backend(const BackendBuild& build);

}  // namespace coolpim::hmc
