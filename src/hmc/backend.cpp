#include "hmc/backend.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "hmc/device.hpp"
#include "hmc/packet.hpp"
#include "sim/simulation.hpp"

namespace coolpim::hmc {

bool backend_from_name(std::string_view name, BackendKind& out) {
  for (const BackendInfo& b : kRegisteredBackends) {
    if (b.cli_name == name) {
      out = b.kind;
      return true;
    }
  }
  return false;
}

std::string backend_names() {
  std::string names;
  for (const BackendInfo& b : kRegisteredBackends) {
    if (!names.empty()) names += ", ";
    names += b.cli_name;
  }
  return names;
}

EpochService EventDetailedBackend::do_serve(const EpochDemand& demand, Time epoch,
                                            Celsius dram_temp) {
  return run_detailed(demand, epoch, dram_temp, carry_);
}

EpochService EventDetailedBackend::probe(const EpochDemand& demand, Time epoch,
                                         Celsius dram_temp) const {
  Carry scratch = carry_;  // what-if: the persistent stream position stays put
  return run_detailed(demand, epoch, dram_temp, scratch);
}

EpochService EventDetailedBackend::run_detailed(const EpochDemand& demand, Time epoch,
                                                Celsius dram_temp, Carry& carry) const {
  COOLPIM_REQUIRE(epoch > Time::zero(), "epoch must be positive");
  COOLPIM_ASSERT(demand.reads >= 0 && demand.writes >= 0 && demand.pim_ops >= 0);

  EpochService out{};
  out.phase = policy_.phase(dram_temp);
  if (out.phase == ThermalPhase::kShutdown) {
    out.served_fraction = 0.0;
    out.shut_down = true;
    return out;
  }

  // Integerize the epoch's demand with residual carries so fractional
  // per-epoch rates still issue requests at the right long-run frequency.
  carry.reads += demand.reads;
  carry.writes += demand.writes;
  carry.pim_ops += demand.pim_ops;
  auto take = [](double& c) {
    const auto n = static_cast<std::uint64_t>(c);
    c -= static_cast<double>(n);
    return n;
  };
  std::uint64_t n_reads = take(carry.reads);
  std::uint64_t n_writes = take(carry.writes);
  std::uint64_t n_pims = take(carry.pim_ops);
  const std::uint64_t total = n_reads + n_writes + n_pims;

  const double secs = epoch.as_sec();
  const TransactionMix offered{demand.reads / secs, demand.writes / secs,
                               demand.pim_ops / secs, demand.pim_return_fraction};

  if (total == 0) {
    // Sub-request demand this epoch: nothing to time; report it fully served
    // at the offered mix (the carried residual issues in a later epoch).
    out.reads = demand.reads;
    out.writes = demand.writes;
    out.pim_ops = demand.pim_ops;
    out.link_data = link_.data_bandwidth(offered);
    out.link_raw = link_.raw_link_bandwidth(offered);
    out.dram_internal = link_.internal_dram_bandwidth(offered);
    out.pim_ops_per_sec = offered.pim_per_sec;
    return out;
  }

  // Cap the sample, preserving class proportions.  The achieved *rate* is
  // what bounds the served fraction, so a proportional sample times the same
  // steady state as the full population.
  auto sampled = [&](std::uint64_t n) {
    if (total <= kMaxSampledRequests) return n;
    const auto s = static_cast<std::uint64_t>(
        static_cast<double>(n) * static_cast<double>(kMaxSampledRequests) /
        static_cast<double>(total));
    return n > 0 ? std::max<std::uint64_t>(s, 1) : std::uint64_t{0};
  };
  const std::uint64_t s_reads = sampled(n_reads);
  const std::uint64_t s_writes = sampled(n_writes);
  const std::uint64_t s_pims = sampled(n_pims);
  const std::uint64_t s_total = s_reads + s_writes + s_pims;

  sim::Simulation sim;
  Device dev{sim, link_.config(), policy_};
  dev.set_dram_temperature(dram_temp);

  // Issue the sample interleaved (Bresenham-style) so the link sees the mix,
  // not class-sorted bursts; addresses stride the cursor so consecutive
  // requests spread across vaults first, then banks (hmc::AddressMap).
  double acc_r = 0.0, acc_w = 0.0, acc_p = 0.0, acc_ret = 0.0;
  const double tot_d = static_cast<double>(s_total);
  for (std::uint64_t i = 0; i < s_total; ++i) {
    Request req;
    acc_r += static_cast<double>(s_reads);
    acc_w += static_cast<double>(s_writes);
    acc_p += static_cast<double>(s_pims);
    if (acc_r >= acc_w && acc_r >= acc_p) {
      acc_r -= tot_d;
      req.type = TransactionType::kRead64;
    } else if (acc_w >= acc_p) {
      acc_w -= tot_d;
      req.type = TransactionType::kWrite64;
    } else {
      acc_p -= tot_d;
      acc_ret += demand.pim_return_fraction;
      if (acc_ret >= 1.0) {
        acc_ret -= 1.0;
        req.type = TransactionType::kPimWithReturn;
      } else {
        req.type = TransactionType::kPimNoReturn;
      }
    }
    req.address = carry.addr_cursor * 64;
    req.tag = static_cast<std::uint32_t>(i);
    ++carry.addr_cursor;
    dev.submit(req, [](const Response&) {});
  }
  const Time done = sim.run_to_completion();
  COOLPIM_ASSERT(done > Time::zero());

  // Achieved request rate (sample population over its completion span) vs
  // the offered rate bounds the uniform admission scale, exactly as the
  // analytic tier's link/DRAM caps do.
  const double achieved_rate = static_cast<double>(s_total) / done.as_sec();
  const double offered_rate =
      (demand.reads + demand.writes + demand.pim_ops) / secs;
  const double scale =
      offered_rate > 0.0 ? std::min(1.0, achieved_rate / offered_rate) : 1.0;

  out.served_fraction = scale;
  out.reads = demand.reads * scale;
  out.writes = demand.writes * scale;
  out.pim_ops = demand.pim_ops * scale;
  const TransactionMix served{offered.reads_per_sec * scale, offered.writes_per_sec * scale,
                              offered.pim_per_sec * scale, offered.pim_return_fraction};
  out.link_data = link_.data_bandwidth(served);
  out.link_raw = link_.raw_link_bandwidth(served);
  out.dram_internal = link_.internal_dram_bandwidth(served);
  out.pim_ops_per_sec = served.pim_per_sec;
  return out;
}

}  // namespace coolpim::hmc
