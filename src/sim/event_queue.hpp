// Discrete-event queue.
//
// A binary-heap priority queue of (time, sequence, action).  The sequence
// number makes ordering of same-time events deterministic (FIFO within a
// timestamp), which keeps whole-simulation results bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace coolpim::sim {

using EventAction = std::function<void()>;

class EventQueue {
 public:
  /// Schedule an action at absolute time t.  t must not be in the past
  /// relative to the last popped event.
  void schedule(Time t, EventAction action) {
    COOLPIM_ASSERT_MSG(t >= last_popped_, "event scheduled in the past");
    heap_.push(Entry{t, next_seq_++, std::move(action)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] Time next_time() const {
    COOLPIM_ASSERT(!heap_.empty());
    return heap_.top().time;
  }

  /// Pop and return the earliest event.
  [[nodiscard]] std::pair<Time, EventAction> pop() {
    COOLPIM_ASSERT(!heap_.empty());
    // std::priority_queue::top() returns const&; we need to move the action
    // out, which is safe because we pop immediately after.
    Entry& top = const_cast<Entry&>(heap_.top());
    Time t = top.time;
    EventAction action = std::move(top.action);
    heap_.pop();
    last_popped_ = t;
    return {t, std::move(action)};
  }

  void clear() {
    heap_ = {};
    last_popped_ = Time::zero();
    next_seq_ = 0;
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventAction action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Time last_popped_{Time::zero()};
  std::uint64_t next_seq_{0};
};

}  // namespace coolpim::sim
