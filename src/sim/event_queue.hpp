// Discrete-event queue.
//
// A flat 4-ary min-heap of (time, sequence, action).  The sequence number
// makes ordering of same-time events deterministic (FIFO within a
// timestamp), which keeps whole-simulation results bit-reproducible: the
// (time, seq) pair is a strict total order, so the pop sequence is unique
// regardless of heap layout.
//
// EventAction is a small-buffer-optimized move-only callable: captureless
// and small-capture actions (up to kInlineCapacity bytes) live inline in the
// queue's entry array with no heap allocation per event -- the std::function
// this replaces allocated for anything beyond ~2 captured words.  A 4-ary
// heap halves the tree depth of a binary heap and keeps the child scan
// inside one cache line of entries, and the hole-based sift routines move
// each entry at most once per level (the old std::priority_queue needed a
// const_cast to move the action out of top()).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace coolpim::sim {

/// Move-only type-erased void() callable with inline storage.  Callables up
/// to kInlineCapacity bytes that are nothrow-move-constructible are stored
/// in place; anything larger (or potentially-throwing on move) falls back to
/// a single heap allocation.  Unlike std::function this accepts move-only
/// callables (e.g. lambdas capturing a unique_ptr).
class EventAction {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  EventAction() = default;

  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventAction> &&
                                 std::is_invocable_r_v<void, std::decay_t<F>&>,
                             int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  EventAction(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  EventAction(EventAction&& other) noexcept { move_from(other); }
  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;
  ~EventAction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    COOLPIM_ASSERT(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  /// True when the wrapped callable lives in the inline buffer (exposed so
  /// tests can pin the no-allocation guarantee for small captures).
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct dst from src and destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& slot(void* p) { return *static_cast<Fn**>(p); }
    static void invoke(void* p) { (*slot(p))(); }
    static void relocate(void* dst, void* src) noexcept { ::new (dst) Fn*(slot(src)); }
    static void destroy(void* p) noexcept { delete slot(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  void move_from(EventAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  const Ops* ops_{nullptr};
};

class EventQueue {
 public:
  /// Schedule an action at absolute time t.  t must not be in the past
  /// relative to the last popped event.
  void schedule(Time t, EventAction action) {
    COOLPIM_ASSERT_MSG(t >= last_popped_, "event scheduled in the past");
    heap_.push_back(Entry{t, next_seq_++, std::move(action)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] Time next_time() const {
    COOLPIM_ASSERT(!heap_.empty());
    return heap_.front().time;
  }

  /// Pop and return the earliest event.
  [[nodiscard]] std::pair<Time, EventAction> pop() {
    COOLPIM_ASSERT(!heap_.empty());
    const Time t = heap_.front().time;
    EventAction action = std::move(heap_.front().action);
    Entry last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down_from_root(std::move(last));
    last_popped_ = t;
    return {t, std::move(action)};
  }

  /// Pop and run every event due at or before `t`, in (time, seq) order.
  /// Returns the number of events dispatched.  Callbacks may schedule new
  /// events at >= their own timestamp; those run too if they land within t.
  std::size_t run_until(Time t) {
    std::size_t n = 0;
    while (!heap_.empty() && heap_.front().time <= t) {
      auto [when, action] = pop();
      (void)when;
      action();
      ++n;
    }
    return n;
  }

  /// Pre-size the entry array so a steady-state schedule/pop workload runs
  /// with zero heap allocations.
  void reserve(std::size_t n) { heap_.reserve(n); }

  void clear() {
    heap_.clear();
    last_popped_ = Time::zero();
    next_seq_ = 0;
  }

 private:
  static constexpr std::size_t kArity = 4;

  struct Entry {
    Time time;
    std::uint64_t seq;
    EventAction action;
  };

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    Entry e = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(e);
  }

  /// Place `e` into the hole at the root, walking it down past any earlier
  /// children.
  void sift_down_from_root(Entry e) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = kArity * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(e);
  }

  std::vector<Entry> heap_;
  Time last_popped_{Time::zero()};
  std::uint64_t next_seq_{0};
};

}  // namespace coolpim::sim
