#include "sim/simulation.hpp"

#include <memory>
#include <utility>

#include "obs/names.hpp"

namespace coolpim::sim {

void Simulation::schedule_periodic(Time period, std::function<bool()> tick) {
  COOLPIM_REQUIRE(period > Time::zero(), "periodic tick needs a positive period");
  // Self-rescheduling closure.  The tick callable is heap-allocated once at
  // registration; each re-arm copies only {Simulation*, shared_ptr}, which
  // fits EventAction's inline buffer, so the per-tick event path stays
  // allocation-free.
  struct State {
    Time period;
    std::function<bool()> tick;
  };
  struct Rearm {
    Simulation* sim;
    std::shared_ptr<State> state;
    void operator()() const {
      if (state->tick()) sim->schedule_in(state->period, Rearm{sim, state});
    }
  };
  auto state = std::make_shared<State>(State{period, std::move(tick)});
  schedule_in(period, Rearm{this, std::move(state)});
}

Time Simulation::run_until(Time deadline) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) {
      now_ = deadline;
      return now_;
    }
    auto [t, action] = queue_.pop();
    now_ = t;
    ++events_processed_;
    if (trace_.enabled()) {
      trace_.counter(now_, obs::names::kCatSim, "queue_depth", static_cast<double>(queue_.size()));
      obs::ScopedSpan span{trace_, now_, obs::names::kCatSim, "dispatch"};
      action();
    } else {
      action();
    }
    if (counters_) counters_->counter(obs::names::kSimEventsDispatched).add();
  }
  if (queue_.empty() && deadline != Time::max() && now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace coolpim::sim
