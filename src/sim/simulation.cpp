#include "sim/simulation.hpp"

#include <memory>
#include <utility>

namespace coolpim::sim {

void Simulation::schedule_periodic(Time period, std::function<bool()> tick) {
  COOLPIM_REQUIRE(period > Time::zero(), "periodic tick needs a positive period");
  // Self-rescheduling closure; shared_ptr lets the lambda re-arm itself.
  auto fn = std::make_shared<std::function<void()>>();
  auto tick_fn = std::make_shared<std::function<bool()>>(std::move(tick));
  *fn = [this, period, fn, tick_fn]() {
    if ((*tick_fn)()) schedule_in(period, *fn);
  };
  schedule_in(period, *fn);
}

Time Simulation::run_until(Time deadline) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) {
      now_ = deadline;
      return now_;
    }
    auto [t, action] = queue_.pop();
    now_ = t;
    ++events_processed_;
    if (trace_.enabled()) {
      trace_.counter(now_, "sim", "queue_depth", static_cast<double>(queue_.size()));
      obs::ScopedSpan span{trace_, now_, "sim", "dispatch"};
      action();
    } else {
      action();
    }
    if (counters_) counters_->counter("sim/events_dispatched").add();
  }
  if (queue_.empty() && deadline != Time::max() && now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace coolpim::sim
