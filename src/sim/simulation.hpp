// Simulation kernel: owns the clock and the event queue, drives components.
//
// This is the stand-in for SST in the paper's infrastructure.  Components
// register periodic ticks or schedule one-shot events; the kernel runs the
// event loop until a stop condition.  Single-threaded and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"

namespace coolpim::sim {

class Simulation {
 public:
  Simulation() = default;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Logger& logger() { return logger_; }

  /// Attach observability (docs/OBSERVABILITY.md): a span per dispatched
  /// event plus a queue-depth counter sample, category "sim".  Both hooks are
  /// read-only and null by default (zero overhead, results unperturbed).
  void set_observer(obs::Trace trace, obs::CounterRegistry* counters = nullptr) {
    trace_ = trace;
    counters_ = counters;
  }

  /// One-shot event after a delay from now.
  void schedule_in(Time delay, EventAction action) {
    queue_.schedule(now_ + delay, std::move(action));
  }

  /// One-shot event at an absolute time.
  void schedule_at(Time t, EventAction action) { queue_.schedule(t, std::move(action)); }

  /// Periodic callback every `period`, starting at now + period.  The
  /// callback returns true to keep ticking, false to cancel.
  void schedule_periodic(Time period, std::function<bool()> tick);

  /// Run until the queue drains or `deadline` passes, whichever is first.
  /// Returns the simulated time reached.
  Time run_until(Time deadline);

  /// Run until the queue drains completely.
  Time run_to_completion() { return run_until(Time::max()); }

  /// Request the event loop to stop after the current event.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] bool pending() const { return !queue_.empty(); }

 private:
  EventQueue queue_;
  Time now_{Time::zero()};
  bool stop_requested_{false};
  std::uint64_t events_processed_{0};
  Logger logger_;
  obs::Trace trace_;
  obs::CounterRegistry* counters_{nullptr};
};

}  // namespace coolpim::sim
