// Alternative policy for comparison: blanket bandwidth throttling.
//
// Instead of selectively reducing PIM offloads (CoolPIM), this controller
// slows *all* GPU memory traffic on a thermal warning -- the obvious
// baseline a designer might try first (equivalent to host-side rate limiting
// or memory-clock DVFS on the GPU side).  It cools the cube just as well but
// gives up throughput on regular requests too, which is exactly the
// trade-off the paper's source-side approach avoids: the heat comes
// disproportionately from PIM's internal read-modify-write traffic, so
// trimming PIM first buys more cooling per lost byte.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/units.hpp"
#include "control/degrade.hpp"
#include "control/policy.hpp"
#include "obs/names.hpp"

namespace coolpim::core {

struct BwThrottleConfig {
  /// Multiplicative reduction of the admitted demand per accepted warning.
  double reduction_step{0.10};
  /// Smallest admitted fraction (never stall completely).
  double floor{0.20};
  Time settle_window{Time::ms(2.5)};
  Time throttle_delay{Time::us(1.0)};
};

/// Offloads everything (like naive) but clamps the total demand the GPU
/// issues when warnings arrive.  The engine consumes `admit_fraction()`.
class BwThrottleController final : public control::Policy {
 public:
  explicit BwThrottleController(const BwThrottleConfig& cfg = {})
      : cfg_{cfg}, coalesce_{cfg.settle_window} {}

  using control::Policy::on_thermal_warning;
  void on_thermal_warning(Time now, Time raised_at) override {
    ++warnings_;
    // Coalesce on the raise time so delayed duplicates stay one step.
    if (coalesce_.stale(raised_at)) return;
    const double before = admit_;
    admit_ = std::max(cfg_.floor, admit_ * (1.0 - cfg_.reduction_step));
    coalesce_.mark(raised_at);
    ++reductions_;
    if (trace_.enabled()) {
      trace_.instant(now, obs::names::kCatCore, "bw_admit_reduce", {{"from", before}, {"to", admit_}});
    }
  }

  void on_watchdog_engage(Time now) override {
    // Fail-safe degrade: the shared halving contract on the admitted demand,
    // bypassing the settle window (the warning channel is silent, so nothing
    // to over-count).
    const double before = admit_;
    admit_ = control::halved_fraction(admit_, cfg_.floor);
    coalesce_.mark(now);
    ++reductions_;
    if (trace_.enabled()) {
      trace_.instant(now, obs::names::kCatCore, "watchdog_bw_reduce", {{"from", before}, {"to", admit_}});
    }
  }

  bool acquire_block(Time) override { return true; }
  void release_block(Time) override {}
  [[nodiscard]] double pim_warp_fraction(Time) const override { return 1.0; }
  [[nodiscard]] std::string_view name() const override { return "BW-Throttle"; }
  [[nodiscard]] Time throttle_delay() const override { return cfg_.throttle_delay; }
  [[nodiscard]] std::uint64_t adjustments() const override { return reductions_; }

  /// Level = denied fraction of total demand in milli-units; the admittance
  /// floor saturates the degrade paths short of the maximum.
  [[nodiscard]] std::uint32_t throttle_level() const override {
    return static_cast<std::uint32_t>(std::lround((1.0 - admit_) * 1000.0));
  }
  [[nodiscard]] std::uint32_t max_throttle_level() const override { return 1000; }
  [[nodiscard]] std::uint32_t saturation_level() const override {
    return static_cast<std::uint32_t>(std::lround((1.0 - cfg_.floor) * 1000.0));
  }

  [[nodiscard]] double demand_scale(Time) const override { return admit_; }

  /// Fraction of total GPU demand currently admitted, consumed by the engine.
  [[nodiscard]] double admit_fraction() const { return admit_; }

 private:
  BwThrottleConfig cfg_;
  double admit_{1.0};
  control::WarningCoalescer coalesce_;
  std::uint64_t warnings_{0};
  std::uint64_t reductions_{0};
};

}  // namespace coolpim::core
