// Software-based dynamic throttling (SW-DynT, paper IV-B).
//
// GPU-runtime mechanism: a PIM token pool bounds the number of PIM-enabled
// CUDA blocks.  Thermal warnings raise a host interrupt; the handler shrinks
// the pool by the control factor.  Reaction is slow (T_throttle ~ 0.1 ms of
// interrupt plus block-drain latency) and repeated warnings within the
// thermal response window are coalesced so one temperature excursion causes
// one reduction step.
#pragma once

#include "common/units.hpp"
#include "control/degrade.hpp"
#include "control/policy.hpp"
#include "core/eq1.hpp"
#include "core/token_pool.hpp"

namespace coolpim::core {

struct SwDynTConfig {
  std::uint32_t control_factor{4};       // blocks removed per warning
  Time throttle_delay{Time::us(100.0)};  // interrupt + runtime reaction
  /// Minimum spacing between pool reductions: one step per thermal response
  /// window, so a single excursion is not counted many times.
  Time update_interval{Time::ms(2.5)};
  Eq1Inputs eq1{};                       // static initialization inputs
  bool use_static_init{true};
};

class SwDynT final : public control::Policy {
 public:
  explicit SwDynT(const SwDynTConfig& cfg);

  using control::Policy::on_thermal_warning;
  void on_thermal_warning(Time now, Time raised_at) override;
  void on_watchdog_engage(Time now) override;
  bool acquire_block(Time now) override;
  void release_block(Time now) override;
  [[nodiscard]] double pim_warp_fraction(Time) const override { return 1.0; }
  [[nodiscard]] std::string_view name() const override { return "CoolPIM (SW)"; }
  [[nodiscard]] Time throttle_delay() const override { return cfg_.throttle_delay; }
  [[nodiscard]] std::uint64_t adjustments() const override { return pool_.shrink_count(); }

  /// Level = tokens removed from the statically initialized pool.
  [[nodiscard]] std::uint32_t throttle_level() const override {
    return initial_size_ - pool_.size();
  }
  [[nodiscard]] std::uint32_t max_throttle_level() const override { return initial_size_; }

  [[nodiscard]] const TokenPool& pool() const { return pool_; }
  [[nodiscard]] std::uint32_t initial_pool_size() const { return initial_size_; }
  [[nodiscard]] std::uint64_t warnings_received() const { return warnings_; }
  [[nodiscard]] std::uint64_t reductions_applied() const { return pool_.shrink_count(); }
  [[nodiscard]] std::uint64_t shadow_launches() const { return shadow_launches_; }

 private:
  void apply_pending_shrink(Time now);

  SwDynTConfig cfg_;
  std::uint32_t initial_size_;
  TokenPool pool_;
  Time pending_until_{Time::zero()};   // pending interrupt completion
  bool has_pending_{false};
  control::WarningCoalescer coalesce_;
  std::uint64_t warnings_{0};
  std::uint64_t shadow_launches_{0};
};

}  // namespace coolpim::core
