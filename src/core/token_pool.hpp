// PIM token pool (PTP) for software-based dynamic throttling (paper IV-B).
//
// The pool size bounds the number of concurrently running PIM-enabled CUDA
// blocks.  The thread-block manager requests a token before each launch
// (first-come-first-serve); on failure the block runs the non-PIM shadow
// kernel.  The thermal interrupt handler shrinks the pool:
//     PTP_Size = min(PTP_Size - CF, #issuedTokens)
// so the new bound takes effect as running blocks retire their tokens.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace coolpim::core {

class TokenPool {
 public:
  explicit TokenPool(std::uint32_t initial_size) : size_{initial_size} {}

  /// Try to take a token for a launching PIM-enabled block.
  [[nodiscard]] bool try_acquire() {
    if (issued_ >= size_) return false;
    ++issued_;
    ++total_grants_;
    return true;
  }

  /// Return a token when a PIM-enabled block completes.
  void release() {
    COOLPIM_ASSERT_MSG(issued_ > 0, "token released that was never issued");
    --issued_;
  }

  /// Thermal-interrupt reduction by the control factor.
  void shrink(std::uint32_t control_factor) {
    const std::uint32_t reduced = size_ > control_factor ? size_ - control_factor : 0;
    size_ = std::min(reduced, issued_);
    ++shrink_count_;
  }

  /// Manual resize (used by PTP initialization, Eq. 1).
  void resize(std::uint32_t new_size) { size_ = new_size; }

  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] std::uint32_t issued() const { return issued_; }
  [[nodiscard]] std::uint32_t available() const { return issued_ < size_ ? size_ - issued_ : 0; }
  [[nodiscard]] std::uint64_t total_grants() const { return total_grants_; }
  [[nodiscard]] std::uint32_t shrink_count() const { return shrink_count_; }

 private:
  std::uint32_t size_;
  std::uint32_t issued_{0};
  std::uint64_t total_grants_{0};
  std::uint32_t shrink_count_{0};
};

}  // namespace coolpim::core
