#include "core/eq1.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace coolpim::core {

double estimate_pim_rate(const Eq1Inputs& in, std::uint32_t ptp_size) {
  COOLPIM_REQUIRE(in.max_blocks > 0, "max_blocks must be positive");
  const double block_fraction =
      static_cast<double>(std::min(ptp_size, in.max_blocks)) / static_cast<double>(in.max_blocks);
  return in.pim_peak_rate_op_per_ns * in.pim_intensity * block_fraction *
         (1.0 - in.divergent_warp_ratio);
}

std::uint32_t initial_ptp_size(const Eq1Inputs& in) {
  COOLPIM_REQUIRE(in.max_blocks > 0, "max_blocks must be positive");
  COOLPIM_REQUIRE(in.target_rate_op_per_ns > 0, "target rate must be positive");
  if (in.estimated_naive_rate_op_per_ns > 0.0) {
    const double blocks = in.target_rate_op_per_ns / in.estimated_naive_rate_op_per_ns *
                          static_cast<double>(in.max_blocks);
    const std::uint64_t with_margin =
        static_cast<std::uint64_t>(std::ceil(blocks)) + in.margin_blocks;
    return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(with_margin, 1, in.max_blocks));
  }
  const double per_block =
      in.pim_peak_rate_op_per_ns * in.pim_intensity * (1.0 - in.divergent_warp_ratio) /
      static_cast<double>(in.max_blocks);
  if (per_block <= 0.0) {
    // Workload offloads nothing measurable: allow everything.
    return in.max_blocks;
  }
  const double blocks = in.target_rate_op_per_ns / per_block;
  const auto computed = static_cast<std::uint32_t>(std::ceil(blocks));
  const std::uint64_t with_margin = static_cast<std::uint64_t>(computed) + in.margin_blocks;
  return static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(with_margin, 1, in.max_blocks));
}

}  // namespace coolpim::core
