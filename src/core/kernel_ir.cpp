#include "core/kernel_ir.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace coolpim::core {

std::size_t KernelIr::count(OpKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(), [kind](const Op& op) { return op.kind == kind; }));
}

KernelIr offload_pass(const KernelIr& kernel) {
  KernelIr out;
  out.name = kernel.name;
  out.ops.reserve(kernel.ops.size());
  for (const Op& op : kernel.ops) {
    if (op.kind == OpKind::kCudaAtomic && op.space == MemSpace::kPimRegion) {
      Op rewritten = op;
      rewritten.kind = OpKind::kPimAtomic;
      rewritten.pim = to_pim(op.cuda);
      out.ops.push_back(rewritten);
    } else {
      out.ops.push_back(op);
    }
  }
  return out;
}

KernelIr shadow_pass(const KernelIr& kernel) {
  KernelIr out;
  out.name = kernel.name + "_np";
  out.ops.reserve(kernel.ops.size());
  for (const Op& op : kernel.ops) {
    if (op.kind == OpKind::kPimAtomic) {
      Op rewritten = op;
      rewritten.kind = OpKind::kCudaAtomic;
      rewritten.cuda = to_cuda(op.pim);
      out.ops.push_back(rewritten);
    } else {
      out.ops.push_back(op);
    }
  }
  COOLPIM_ASSERT(out.is_pim_free());
  return out;
}

bool equivalent(const KernelIr& a, const KernelIr& b) {
  if (a.ops.size() != b.ops.size()) return false;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    const Op& x = a.ops[i];
    const Op& y = b.ops[i];
    if (x.space != y.space) return false;
    auto is_atomic = [](const Op& op) {
      return op.kind == OpKind::kCudaAtomic || op.kind == OpKind::kPimAtomic;
    };
    if (is_atomic(x) != is_atomic(y)) return false;
    if (!is_atomic(x)) {
      if (x.kind != y.kind) return false;
      continue;
    }
    // Both atomics: compare the CUDA-level semantics.
    const CudaAtomic cx = x.kind == OpKind::kPimAtomic ? to_cuda(x.pim) : x.cuda;
    const CudaAtomic cy = y.kind == OpKind::kPimAtomic ? to_cuda(y.pim) : y.cuda;
    if (!same_family(cx, cy)) return false;
  }
  return true;
}

std::size_t offloadable_atomics(const KernelIr& kernel) {
  return static_cast<std::size_t>(
      std::count_if(kernel.ops.begin(), kernel.ops.end(), [](const Op& op) {
        return (op.kind == OpKind::kCudaAtomic && op.space == MemSpace::kPimRegion) ||
               op.kind == OpKind::kPimAtomic;
      }));
}

}  // namespace coolpim::core
