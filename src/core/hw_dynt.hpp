// Hardware-based dynamic throttling (HW-DynT, paper IV-C).
//
// A PIM Control Unit (PCU) in each GPU core tracks how many warps may emit
// PIM instructions.  On a thermal warning the PCU reduces the PIM-enabled
// warp count by the control factor; PIM-disabled warps have their PIM
// instructions translated back to CUDA atomics at decode, so the effect is
// immediate (T_throttle ~ 0.1 us).  Updates are deliberately *delayed*: the
// PCU ignores further warnings until the HMC temperature has had time to
// settle (~1 ms), preventing over-reduction during the thermal transient.
// No static initialization is needed -- the count starts at maximum.
#pragma once

#include "common/units.hpp"
#include "control/degrade.hpp"
#include "control/policy.hpp"

namespace coolpim::core {

struct HwDynTConfig {
  std::uint32_t max_warps_per_sm{64};
  std::uint32_t control_factor{4};       // warps disabled per accepted warning
  Time throttle_delay{Time::us(0.1)};    // PCU update latency
  Time settle_window{Time::ms(2.5)};     // delayed-update window (sensor delay + ~2 thermal taus)
};

class HwDynT final : public control::Policy {
 public:
  explicit HwDynT(const HwDynTConfig& cfg)
      : cfg_{cfg}, enabled_warps_{cfg.max_warps_per_sm}, coalesce_{cfg.settle_window} {}

  using control::Policy::on_thermal_warning;
  void on_thermal_warning(Time now, Time raised_at) override;
  void on_watchdog_engage(Time now) override;
  bool acquire_block(Time) override { return true; }  // block granularity unused
  void release_block(Time) override {}
  [[nodiscard]] double pim_warp_fraction(Time now) const override;
  [[nodiscard]] std::string_view name() const override { return "CoolPIM (HW)"; }
  [[nodiscard]] Time throttle_delay() const override { return cfg_.throttle_delay; }
  [[nodiscard]] std::uint64_t adjustments() const override { return reductions_; }

  /// Level = warps disabled below the per-SM maximum.
  [[nodiscard]] std::uint32_t throttle_level() const override {
    return cfg_.max_warps_per_sm - enabled_warps_;
  }
  [[nodiscard]] std::uint32_t max_throttle_level() const override {
    return cfg_.max_warps_per_sm;
  }

  [[nodiscard]] std::uint32_t enabled_warps() const { return enabled_warps_; }
  [[nodiscard]] std::uint64_t warnings_received() const { return warnings_; }
  [[nodiscard]] std::uint32_t reductions_applied() const { return reductions_; }

 private:
  HwDynTConfig cfg_;
  std::uint32_t enabled_warps_;
  Time effective_at_{Time::zero()};   // when the latest reduction takes effect
  std::uint32_t previous_warps_{0};   // value before the pending reduction
  bool has_pending_{false};
  control::WarningCoalescer coalesce_;
  std::uint64_t warnings_{0};
  std::uint32_t reductions_{0};
};

}  // namespace coolpim::core
