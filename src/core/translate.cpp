#include "core/translate.hpp"

#include "common/error.hpp"

namespace coolpim::core {

CudaAtomic to_cuda(hmc::PimOpcode op) {
  using hmc::PimOpcode;
  switch (op) {
    case PimOpcode::kSignedAdd8:
    case PimOpcode::kSignedAdd16:
    case PimOpcode::kFpAdd: return CudaAtomic::kAtomicAdd;
    case PimOpcode::kSwap:
    case PimOpcode::kBitWrite: return CudaAtomic::kAtomicExch;
    case PimOpcode::kAnd: return CudaAtomic::kAtomicAnd;
    case PimOpcode::kOr: return CudaAtomic::kAtomicOr;
    case PimOpcode::kCasEqual: return CudaAtomic::kAtomicCAS;
    case PimOpcode::kCasGreater: return CudaAtomic::kAtomicMax;
    case PimOpcode::kFpMin: return CudaAtomic::kAtomicMin;
  }
  throw ConfigError("unknown PIM opcode");
}

hmc::PimOpcode to_pim(CudaAtomic op) {
  using hmc::PimOpcode;
  switch (op) {
    case CudaAtomic::kAtomicAdd: return PimOpcode::kSignedAdd8;
    case CudaAtomic::kAtomicExch: return PimOpcode::kSwap;
    case CudaAtomic::kAtomicAnd: return PimOpcode::kAnd;
    case CudaAtomic::kAtomicOr: return PimOpcode::kOr;
    case CudaAtomic::kAtomicCAS: return PimOpcode::kCasEqual;
    case CudaAtomic::kAtomicMax: return PimOpcode::kCasGreater;
    case CudaAtomic::kAtomicMin: return PimOpcode::kFpMin;
  }
  throw ConfigError("unknown CUDA atomic");
}

std::string_view to_string(CudaAtomic op) {
  switch (op) {
    case CudaAtomic::kAtomicAdd: return "atomicAdd";
    case CudaAtomic::kAtomicExch: return "atomicExch";
    case CudaAtomic::kAtomicAnd: return "atomicAnd";
    case CudaAtomic::kAtomicOr: return "atomicOr";
    case CudaAtomic::kAtomicCAS: return "atomicCAS";
    case CudaAtomic::kAtomicMax: return "atomicMax";
    case CudaAtomic::kAtomicMin: return "atomicMin";
  }
  return "?";
}

bool same_family(CudaAtomic a, CudaAtomic b) {
  auto family = [](CudaAtomic op) {
    switch (op) {
      case CudaAtomic::kAtomicAdd: return 0;
      case CudaAtomic::kAtomicExch: return 1;
      case CudaAtomic::kAtomicAnd:
      case CudaAtomic::kAtomicOr: return 2;
      case CudaAtomic::kAtomicCAS:
      case CudaAtomic::kAtomicMax:
      case CudaAtomic::kAtomicMin: return 3;
    }
    return -1;
  };
  return family(a) == family(b);
}

}  // namespace coolpim::core
