// Kernel IR and the offload/shadow compilation passes (paper Section IV-B).
//
// SW-DynT launches each CUDA block with either the PIM-enabled kernel or a
// pre-generated non-PIM *shadow* kernel.  The compiler produces both from
// one source: the offload pass rewrites CUDA atomics that target the PIM
// memory region into PIM instructions, and the shadow pass maps PIM
// instructions back to atomics.  The paper notes these are simple
// source-to-source translations at the AST/IR level; this module models the
// IR level: a kernel is a sequence of operations over abstract operands.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/translate.hpp"
#include "hmc/pim.hpp"

namespace coolpim::core {

/// Memory space an operand lives in.  Only atomics to the PIM region are
/// offloadable (GraphPIM identifies the region; atomics elsewhere keep the
/// host path).
enum class MemSpace : std::uint8_t { kGlobal, kPimRegion, kShared };

enum class OpKind : std::uint8_t {
  kCompute,      // ALU work, no memory operand
  kLoad,
  kStore,
  kCudaAtomic,   // host atomic RMW
  kPimAtomic,    // offloaded PIM instruction
};

/// One IR operation.
struct Op {
  OpKind kind{OpKind::kCompute};
  MemSpace space{MemSpace::kGlobal};
  CudaAtomic cuda{CudaAtomic::kAtomicAdd};      // valid for kCudaAtomic
  hmc::PimOpcode pim{hmc::PimOpcode::kSignedAdd8};  // valid for kPimAtomic
};

/// A compiled kernel: name + operation sequence.
struct KernelIr {
  std::string name;
  std::vector<Op> ops;

  [[nodiscard]] std::size_t count(OpKind kind) const;
  /// True if no operation is a PIM instruction (safe to run when throttled).
  [[nodiscard]] bool is_pim_free() const { return count(OpKind::kPimAtomic) == 0; }
};

/// Offload pass: rewrite CUDA atomics on the PIM region into PIM
/// instructions; everything else is untouched.  Returns the PIM-enabled
/// kernel (entry point `<name>` in the paper's naming).
[[nodiscard]] KernelIr offload_pass(const KernelIr& kernel);

/// Shadow pass: rewrite PIM instructions back into CUDA atomics (entry point
/// `<name>_np`).  The result is PIM-free.
[[nodiscard]] KernelIr shadow_pass(const KernelIr& kernel);

/// Semantic equivalence check used by tests and the runtime's debug mode:
/// two kernels are equivalent when they perform the same per-slot work up to
/// the PIM <-> CUDA translation (same kinds modulo atomic flavour, same
/// spaces, same semantic family of each atomic).
[[nodiscard]] bool equivalent(const KernelIr& a, const KernelIr& b);

/// Count the offloadable atomics of a kernel (static-analysis input to the
/// Eq. 1 PIM-intensity estimate).
[[nodiscard]] std::size_t offloadable_atomics(const KernelIr& kernel);

}  // namespace coolpim::core
