#include "core/sw_dynt.hpp"
#include "obs/names.hpp"

#include <algorithm>

namespace coolpim::core {

SwDynT::SwDynT(const SwDynTConfig& cfg)
    : cfg_{cfg},
      initial_size_{cfg.use_static_init ? initial_ptp_size(cfg.eq1) : cfg.eq1.max_blocks},
      pool_{initial_size_},
      coalesce_{cfg.update_interval} {}

void SwDynT::on_thermal_warning(Time now, Time raised_at) {
  ++warnings_;
  // Coalesce warnings within the thermal response window, keyed on the time
  // the device *raised* the warning: a delayed or out-of-order duplicate of
  // an already-handled excursion is stale and must not shrink the pool again.
  if (coalesce_.stale(raised_at)) return;
  // The interrupt handler runs after T_throttle; model by making the shrink
  // visible only from `now + throttle_delay` (blocks launched before that
  // still see the old pool).
  if (has_pending_) return;
  has_pending_ = true;
  pending_until_ = now + cfg_.throttle_delay;
  coalesce_.mark(raised_at);
  // The accepted warning's interrupt-to-effect latency as a span.
  trace_.complete(now, cfg_.throttle_delay, obs::names::kCatCore, "sw_dynt_interrupt");
}

void SwDynT::on_watchdog_engage(Time now) {
  // Fail-safe degrade with the warning channel silent: the shared halving
  // contract on the PTP pool, applied immediately.  Halving converges in a
  // few steps even when every warning is lost.
  if (has_pending_ && now >= pending_until_) apply_pending_shrink(now);
  const std::uint32_t before = pool_.size();
  pool_.shrink(control::halving_step(before, cfg_.control_factor));
  coalesce_.mark(now);
  if (trace_.enabled()) {
    trace_.instant(now, obs::names::kCatCore, "watchdog_ptp_shrink",
                   {{"from", before}, {"to", pool_.size()}});
  }
}

void SwDynT::apply_pending_shrink(Time now) {
  const std::uint32_t before = pool_.size();
  pool_.shrink(cfg_.control_factor);
  has_pending_ = false;
  if (trace_.enabled()) {
    trace_.instant(now, obs::names::kCatCore, "ptp_shrink",
                   {{"from", before}, {"to", pool_.size()}, {"issued", pool_.issued()}});
  }
}

bool SwDynT::acquire_block(Time now) {
  if (has_pending_ && now >= pending_until_) apply_pending_shrink(now);
  if (pool_.try_acquire()) return true;
  ++shadow_launches_;
  return false;
}

void SwDynT::release_block(Time now) {
  if (has_pending_ && now >= pending_until_) apply_pending_shrink(now);
  pool_.release();
}

}  // namespace coolpim::core
