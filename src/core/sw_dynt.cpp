#include "core/sw_dynt.hpp"

namespace coolpim::core {

SwDynT::SwDynT(const SwDynTConfig& cfg)
    : cfg_{cfg},
      initial_size_{cfg.use_static_init ? initial_ptp_size(cfg.eq1) : cfg.eq1.max_blocks},
      pool_{initial_size_} {}

void SwDynT::on_thermal_warning(Time now) {
  ++warnings_;
  // Coalesce warnings within the thermal response window.
  if (updated_once_ && now - last_update_ < cfg_.update_interval) return;
  // The interrupt handler runs after T_throttle; model by making the shrink
  // visible only from `now + throttle_delay` (blocks launched before that
  // still see the old pool).
  if (has_pending_) return;
  has_pending_ = true;
  pending_until_ = now + cfg_.throttle_delay;
  last_update_ = now;
  updated_once_ = true;
  // The accepted warning's interrupt-to-effect latency as a span.
  trace_.complete(now, cfg_.throttle_delay, "core", "sw_dynt_interrupt");
}

void SwDynT::apply_pending_shrink(Time now) {
  const std::uint32_t before = pool_.size();
  pool_.shrink(cfg_.control_factor);
  has_pending_ = false;
  if (trace_.enabled()) {
    trace_.instant(now, "core", "ptp_shrink",
                   {{"from", before}, {"to", pool_.size()}, {"issued", pool_.issued()}});
  }
}

bool SwDynT::acquire_block(Time now) {
  if (has_pending_ && now >= pending_until_) apply_pending_shrink(now);
  if (pool_.try_acquire()) return true;
  ++shadow_launches_;
  return false;
}

void SwDynT::release_block(Time now) {
  if (has_pending_ && now >= pending_until_) apply_pending_shrink(now);
  pool_.release();
}

}  // namespace coolpim::core
