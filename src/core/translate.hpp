// PIM <-> CUDA atomic instruction translation (paper Table III).
//
// Every PIM instruction in HMC 2.0 (and the GraphPIM extensions) has a
// corresponding CUDA atomic, so code can be translated in both directions:
// the compiler generates a non-PIM shadow kernel for SW-DynT by mapping PIM
// instructions back to atomics, and HW-DynT performs the same translation
// dynamically at decode for PIM-disabled warps.
#pragma once

#include <cstdint>
#include <string_view>

#include "hmc/pim.hpp"

namespace coolpim::core {

enum class CudaAtomic : std::uint8_t {
  kAtomicAdd,
  kAtomicExch,
  kAtomicAnd,
  kAtomicOr,
  kAtomicCAS,
  kAtomicMax,
  kAtomicMin,
};

/// PIM -> CUDA (shadow-kernel generation / dynamic decode translation).
[[nodiscard]] CudaAtomic to_cuda(hmc::PimOpcode op);

/// CUDA -> PIM (compiler offload pass).  Every CUDA atomic used by the
/// workloads maps to a PIM instruction.
[[nodiscard]] hmc::PimOpcode to_pim(CudaAtomic op);

[[nodiscard]] std::string_view to_string(CudaAtomic op);

/// Round-trip property used by tests: to_cuda(to_pim(a)) lands in the same
/// semantic family for every CUDA atomic.
[[nodiscard]] bool same_family(CudaAtomic a, CudaAtomic b);

}  // namespace coolpim::core
