// Static PTP initialization (paper Equation 1).
//
//   PIMRate = PIMPeakRate * PIMIntensity * (PTP_Size / MaxBlk#)
//             * (1 - Ratio_DivergentWarp)
//
// Solved for PTP_Size at the target PIM rate (the thermal budget, 1.3 op/ns
// for the commodity-cooled HMC 2.0), plus a small margin because the runtime
// feedback only ever *down*-tunes the pool.
#pragma once

#include <cstdint>

namespace coolpim::core {

struct Eq1Inputs {
  /// Hardware peak PIM offloading rate in op/ns, measured by a trial run or
  /// taken from the link budget (HMC 2.0 links carry at most
  /// 30 GFLIT/s / 3 FLIT = 10 op/ns of PIM traffic).
  double pim_peak_rate_op_per_ns{10.0};
  /// Atomic (PIM) instructions per warp instruction, from static analysis of
  /// the kernel (WorkloadProfile::pim_intensity()).
  double pim_intensity{0.0};
  /// Maximum concurrently resident thread blocks on the GPU.
  std::uint32_t max_blocks{128};
  /// Estimated divergent-warp ratio (high for topology-driven graph kernels,
  /// near zero for warp-centric ones).
  double divergent_warp_ratio{0.0};
  /// Thermal PIM-rate budget, op/ns.
  double target_rate_op_per_ns{1.3};
  /// Safety margin in blocks (paper uses 4).
  std::uint32_t margin_blocks{4};
  /// If > 0, the static analysis' estimate of the un-throttled offloading
  /// rate (the "simple trial run" the paper describes); the pool is then
  /// sized directly as target/estimate * max_blocks instead of through the
  /// peak-rate * intensity * divergence decomposition.
  double estimated_naive_rate_op_per_ns{0.0};
};

/// Initial PTP size: blocks allowed to use PIM so the estimated offloading
/// rate stays at the target.  Clamped to [1, max_blocks].
[[nodiscard]] std::uint32_t initial_ptp_size(const Eq1Inputs& in);

/// Forward evaluation of Equation 1: estimated PIM rate for a pool size.
[[nodiscard]] double estimate_pim_rate(const Eq1Inputs& in, std::uint32_t ptp_size);

}  // namespace coolpim::core
