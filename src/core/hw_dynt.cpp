#include "core/hw_dynt.hpp"

namespace coolpim::core {

void HwDynT::on_thermal_warning(Time now) {
  ++warnings_;
  // Delayed control updates: accept at most one reduction per settle window.
  if (accepted_once_ && now - last_accepted_ < cfg_.settle_window) return;

  previous_warps_ = enabled_warps_;
  enabled_warps_ = enabled_warps_ > cfg_.control_factor
                       ? enabled_warps_ - cfg_.control_factor
                       : 0;
  has_pending_ = true;
  effective_at_ = now + cfg_.throttle_delay;
  last_accepted_ = now;
  accepted_once_ = true;
  ++reductions_;
  if (trace_.enabled()) {
    // PCU update latency as a span, the warp-disable step as an instant.
    trace_.complete(now, cfg_.throttle_delay, "core", "hw_dynt_pcu_update");
    trace_.instant(now, "core", "warp_disable",
                   {{"from", previous_warps_}, {"to", enabled_warps_}});
  }
}

double HwDynT::pim_warp_fraction(Time now) const {
  const std::uint32_t current =
      (has_pending_ && now < effective_at_) ? previous_warps_ : enabled_warps_;
  return static_cast<double>(current) / static_cast<double>(cfg_.max_warps_per_sm);
}

}  // namespace coolpim::core
