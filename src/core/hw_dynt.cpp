#include "core/hw_dynt.hpp"
#include "obs/names.hpp"

#include <algorithm>

namespace coolpim::core {

void HwDynT::on_thermal_warning(Time now, Time raised_at) {
  ++warnings_;
  // Delayed control updates: accept at most one reduction per settle window,
  // keyed on the time the warning was *raised* so delayed or out-of-order
  // duplicates of an already-handled excursion stay coalesced.
  if (coalesce_.stale(raised_at)) return;

  previous_warps_ = enabled_warps_;
  enabled_warps_ = enabled_warps_ > cfg_.control_factor
                       ? enabled_warps_ - cfg_.control_factor
                       : 0;
  has_pending_ = true;
  effective_at_ = now + cfg_.throttle_delay;
  coalesce_.mark(raised_at);
  ++reductions_;
  if (trace_.enabled()) {
    // PCU update latency as a span, the warp-disable step as an instant.
    trace_.complete(now, cfg_.throttle_delay, obs::names::kCatCore, "hw_dynt_pcu_update");
    trace_.instant(now, obs::names::kCatCore, "warp_disable",
                   {{"from", previous_warps_}, {"to", enabled_warps_}});
  }
}

void HwDynT::on_watchdog_engage(Time now) {
  // Fail-safe degrade with the warning channel silent: the shared halving
  // contract on the enabled warps, bypassing the settle window -- there is
  // no feedback to over-count.
  previous_warps_ = enabled_warps_;
  const std::uint32_t step = control::halving_step(enabled_warps_, cfg_.control_factor);
  enabled_warps_ = enabled_warps_ > step ? enabled_warps_ - step : 0;
  has_pending_ = true;
  effective_at_ = now + cfg_.throttle_delay;
  coalesce_.mark(now);
  ++reductions_;
  if (trace_.enabled()) {
    trace_.instant(now, obs::names::kCatCore, "watchdog_warp_disable",
                   {{"from", previous_warps_}, {"to", enabled_warps_}});
  }
}

double HwDynT::pim_warp_fraction(Time now) const {
  const std::uint32_t current =
      (has_pending_ && now < effective_at_) ? previous_warps_ : enabled_warps_;
  return static_cast<double>(current) / static_cast<double>(cfg_.max_warps_per_sm);
}

}  // namespace coolpim::core
