// Source-throttling controller interface (paper Fig. 6 feedback loop).
//
// The GPU runtime / hardware consults the controller at two points:
//   * block launch -- may this CUDA block run the PIM-enabled kernel?
//     (SW-DynT's token-pool granularity)
//   * warp issue -- what fraction of warps may emit PIM instructions?
//     (HW-DynT's PCU granularity)
// and feeds it thermal-warning messages extracted from HMC response packets.
// Warnings propagate with a mechanism-specific source-throttling delay
// T_throttle, and the HMC temperature itself responds with T_thermal ~ 1 ms
// (paper Fig. 8); the system model applies those delays.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.hpp"
#include "obs/trace.hpp"

namespace coolpim::core {

class ThrottleController {
 public:
  virtual ~ThrottleController() = default;

  /// Attach a trace sink (category "core"): controllers emit instant events
  /// for every control action -- PTP pool shrinks, warp disables, blanket
  /// admission changes -- and complete-spans for their reaction latencies.
  /// Observation only; never changes throttling decisions.
  void set_trace(obs::Trace trace) { trace_ = trace; }

  /// Thermal warning received by the host at `now` (already includes the
  /// thermal sensing delay).  Implementations apply their own T_throttle.
  ///
  /// `raised_at` is when the device raised the warning; on an undisturbed
  /// link it equals `now`, but link retries and delivery delays (the fault
  /// layer) can push `now` past the epoch that triggered the warning -- even
  /// out of order.  Implementations must coalesce on the *raise* time, so a
  /// late duplicate of an already-handled excursion is stale and causes no
  /// extra reduction step (see DESIGN.md section 10).
  virtual void on_thermal_warning(Time now, Time raised_at) = 0;

  /// Undisturbed-link convenience: the warning arrives the moment it was
  /// raised (the fault-free system path and most tests).
  void on_thermal_warning(Time now) { on_thermal_warning(now, now); }

  /// Fail-safe degradation (fault::Watchdog): warning feedback has gone
  /// silent while the device runs hot, so take one conservative throttle
  /// step *now*, bypassing warning coalescing.  Default: treat it as a
  /// fresh warning.  Never called on the fault-free path.
  virtual void on_watchdog_engage(Time now) { on_thermal_warning(now, now); }

  /// Block launch: may the block run the PIM-enabled kernel?  The runtime
  /// must later call release_block() for every true return.
  [[nodiscard]] virtual bool acquire_block(Time now) = 0;
  virtual void release_block(Time now) = 0;

  /// Fraction of warps allowed to emit PIM instructions inside PIM-enabled
  /// blocks (HW-DynT's warp-granular control; 1.0 when unused).
  [[nodiscard]] virtual double pim_warp_fraction(Time now) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Source-throttling reaction delay of this mechanism.
  [[nodiscard]] virtual Time throttle_delay() const = 0;

  /// Number of throttling adjustments applied so far (0 for static
  /// controllers); used to detect feedback-loop convergence.
  [[nodiscard]] virtual std::uint64_t adjustments() const { return 0; }

  /// Fraction of the GPU's *total* demand admitted (blanket bandwidth
  /// throttling; 1.0 for source-selective mechanisms).
  [[nodiscard]] virtual double demand_scale(Time) const { return 1.0; }

 protected:
  obs::Trace trace_;
};

}  // namespace coolpim::core
