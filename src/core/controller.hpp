// Source-throttling controller interface (paper Fig. 6 feedback loop).
//
// The GPU runtime / hardware consults the controller at two points:
//   * block launch -- may this CUDA block run the PIM-enabled kernel?
//     (SW-DynT's token-pool granularity)
//   * warp issue -- what fraction of warps may emit PIM instructions?
//     (HW-DynT's PCU granularity)
// and feeds it thermal-warning messages extracted from HMC response packets.
// Warnings propagate with a mechanism-specific source-throttling delay
// T_throttle, and the HMC temperature itself responds with T_thermal ~ 1 ms
// (paper Fig. 8); the system model applies those delays.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.hpp"
#include "obs/trace.hpp"

namespace coolpim::core {

class ThrottleController {
 public:
  virtual ~ThrottleController() = default;

  /// Attach a trace sink (category "core"): controllers emit instant events
  /// for every control action -- PTP pool shrinks, warp disables, blanket
  /// admission changes -- and complete-spans for their reaction latencies.
  /// Observation only; never changes throttling decisions.
  void set_trace(obs::Trace trace) { trace_ = trace; }

  /// Thermal warning received by the host at `now` (already includes the
  /// thermal sensing delay).  Implementations apply their own T_throttle.
  virtual void on_thermal_warning(Time now) = 0;

  /// Block launch: may the block run the PIM-enabled kernel?  The runtime
  /// must later call release_block() for every true return.
  [[nodiscard]] virtual bool acquire_block(Time now) = 0;
  virtual void release_block(Time now) = 0;

  /// Fraction of warps allowed to emit PIM instructions inside PIM-enabled
  /// blocks (HW-DynT's warp-granular control; 1.0 when unused).
  [[nodiscard]] virtual double pim_warp_fraction(Time now) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Source-throttling reaction delay of this mechanism.
  [[nodiscard]] virtual Time throttle_delay() const = 0;

  /// Number of throttling adjustments applied so far (0 for static
  /// controllers); used to detect feedback-loop convergence.
  [[nodiscard]] virtual std::uint64_t adjustments() const { return 0; }

  /// Fraction of the GPU's *total* demand admitted (blanket bandwidth
  /// throttling; 1.0 for source-selective mechanisms).
  [[nodiscard]] virtual double demand_scale(Time) const { return 1.0; }

 protected:
  obs::Trace trace_;
};

/// Offloads everything, ignores warnings: the paper's naive-offloading
/// configuration (PEI-style, no source control).
class NaiveController final : public ThrottleController {
 public:
  void on_thermal_warning(Time now) override {
    ++warnings_;
    trace_.instant(now, "core", "warning_ignored");
  }
  bool acquire_block(Time) override { return true; }
  void release_block(Time) override {}
  [[nodiscard]] double pim_warp_fraction(Time) const override { return 1.0; }
  [[nodiscard]] std::string_view name() const override { return "naive-offloading"; }
  [[nodiscard]] Time throttle_delay() const override { return Time::zero(); }
  [[nodiscard]] std::uint64_t warnings_seen() const { return warnings_; }

 private:
  std::uint64_t warnings_{0};
};

/// Never offloads: the non-offloading baseline.
class NonOffloadingController final : public ThrottleController {
 public:
  void on_thermal_warning(Time) override {}
  bool acquire_block(Time) override { return false; }
  void release_block(Time) override {}
  [[nodiscard]] double pim_warp_fraction(Time) const override { return 0.0; }
  [[nodiscard]] std::string_view name() const override { return "non-offloading"; }
  [[nodiscard]] Time throttle_delay() const override { return Time::zero(); }
};

}  // namespace coolpim::core
