#include "gpu/detailed.hpp"

#include <algorithm>

namespace coolpim::gpu {

DetailedGpu::DetailedGpu(sim::Simulation& sim, GpuConfig cfg, hmc::Device& device)
    : sim_{sim}, cfg_{std::move(cfg)}, device_{device} {
  cfg_.validate();
  sms_.resize(cfg_.num_sms);
  for (auto& sm : sms_) {
    sm.l1 = std::make_unique<Cache>(cfg_.l1_bytes, cfg_.l1_ways, cfg_.line_bytes);
  }
}

void DetailedGpu::launch(const std::vector<WarpTrace>& traces) {
  COOLPIM_REQUIRE(!traces.empty(), "launch needs at least one warp");
  std::uint64_t warp_id = warps_.size();
  for (const auto& trace : traces) {
    auto warp = std::make_unique<Warp>();
    warp->sm = warp_id % sms_.size();
    warp->trace = trace;
    warp->rng = Rng{0x5eed ^ warp_id};
    warp->next_addr = warp_id * 4096;
    total_ops_ += trace.memory_ops;
    Warp* raw = warp.get();
    warps_.push_back(std::move(warp));
    sim_.schedule_in(Time::zero(), [this, raw] { step_warp(*raw); });
    ++warp_id;
  }
}

void DetailedGpu::step_warp(Warp& warp) {
  if (warp.ops_done >= warp.trace.memory_ops) return;

  // Compute burst: the warp occupies its SM's issue pipeline for one cycle
  // per warp instruction; bursts from co-resident warps serialize.
  Sm& sm = sms_[warp.sm];
  const Time cycle = cfg_.clock.period();
  const Time start = std::max(sim_.now(), sm.issue_free_at);
  const Time burst =
      cycle * static_cast<double>(warp.trace.compute_per_memop + 1);  // +1: the memop issue
  sm.issue_free_at = start + burst;
  stats_.counter("warp_instructions").add(warp.trace.compute_per_memop + 1);

  sim_.schedule_at(sm.issue_free_at, [this, &warp] { issue_memop(warp); });
}

void DetailedGpu::issue_memop(Warp& warp) {
  Sm& sm = sms_[warp.sm];

  // Generate the address.
  std::uint64_t addr;
  if (warp.trace.pattern == AddressPattern::kStreaming) {
    addr = warp.next_addr;
    warp.next_addr += cfg_.line_bytes;
  } else {
    addr = warp.rng.next_below(warp.trace.footprint_bytes) & ~std::uint64_t{63};
  }

  // PIM transactions bypass the caches (uncacheable region); regular ones
  // check the L1 first.
  const bool is_pim = warp.trace.type == hmc::TransactionType::kPimNoReturn ||
                      warp.trace.type == hmc::TransactionType::kPimWithReturn;
  if (!is_pim && sm.l1->access(addr)) {
    stats_.counter("l1_hits").add();
    ++warp.ops_done;
    // Hit latency is hidden by the pipeline; continue immediately.
    sim_.schedule_in(cfg_.clock.period(), [this, &warp] { step_warp(warp); });
    return;
  }

  ++outstanding_;
  stats_.summary("outstanding").record(static_cast<double>(outstanding_));
  const Time issued = sim_.now();
  device_.submit({warp.trace.type, addr, 0}, [this, &warp, issued](const hmc::Response&) {
    --outstanding_;
    ++warp.ops_done;
    payload_bytes_ += 64;  // one line's worth of useful data per miss
    last_completion_ = sim_.now();
    stats_.summary("latency_ns").record((sim_.now() - issued).as_ns());
    step_warp(warp);
  });
}

DetailedResult DetailedGpu::result() const {
  DetailedResult out;
  out.completion = last_completion_;
  out.memory_ops = total_ops_;
  out.l1_hits = stats_.counter_value("l1_hits");
  const double secs = last_completion_.as_sec();
  out.achieved_gbps = secs > 0.0 ? static_cast<double>(payload_bytes_) / secs * 1e-9 : 0.0;
  const auto& lat = stats_.summaries();
  const auto it = lat.find("latency_ns");
  out.avg_latency_ns = it != lat.end() ? it->second.mean() : 0.0;
  return out;
}

}  // namespace coolpim::gpu
