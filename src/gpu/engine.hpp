// GPU epoch execution engine.
//
// Replays a workload's kernel launches on the modelled GPU.  Each kernel
// launch is a pool of thread blocks scheduled FIFO onto the SMs; per epoch
// the engine computes how much of the current launch the GPU could advance
// (bounded by warp-instruction issue bandwidth and, at low occupancy, by the
// latency-bound request rate), offers the implied memory-transaction demand
// to the HMC, and commits the progress the HMC actually served.
//
// CoolPIM integration: PIM-capable atomics execute as PIM operations for the
// fraction of work the throttle controller currently allows -- block-granular
// through the token pool (SW-DynT: blocks acquire tokens at launch, shadow
// kernels otherwise) and warp-granular through the PCU fraction (HW-DynT).
// Non-offloaded atomics run as host RMWs: one 64-byte read plus one 64-byte
// write at the memory.
#pragma once

#include <deque>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/controller.hpp"
#include "gpu/characterize.hpp"
#include "gpu/config.hpp"
#include "graph/profile.hpp"
#include "hmc/throughput_model.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace coolpim::gpu {

/// One kernel launch, pre-characterized.
struct LaunchSpec {
  double warp_instructions{0.0};  // total, incl. atomic issue slots
  MemoryDemand mem{};             // total transactions for the launch
  std::uint64_t blocks{1};
  std::uint64_t warps{1};
  double divergence{0.0};
};

/// Build launch specs from a workload profile (applies the cache model and
/// block-size arithmetic).
[[nodiscard]] std::vector<LaunchSpec> build_launches(const graph::WorkloadProfile& profile,
                                                     const GpuConfig& cfg,
                                                     const CacheHitModel& cache);

class ExecutionEngine {
 public:
  ExecutionEngine(GpuConfig cfg, std::vector<LaunchSpec> launches,
                  core::ThrottleController& controller);

  /// Demand the GPU would like served during the next `window` of time.
  /// Returns zero demand while in kernel-launch overhead or when finished.
  [[nodiscard]] hmc::EpochDemand plan(Time now, Time window);

  /// Commit what the HMC served; advances internal progress.  Returns the
  /// simulated time actually consumed (== window except at launch ends).
  Time commit(Time now, Time window, const hmc::EpochService& service);

  [[nodiscard]] bool finished() const { return launch_idx_ >= launches_.size(); }
  [[nodiscard]] std::size_t current_launch() const { return launch_idx_; }
  [[nodiscard]] std::size_t launch_count() const { return launches_.size(); }

  /// Fraction of atomic work currently allowed to offload (token-holding
  /// block share times the PCU warp fraction).
  [[nodiscard]] double pim_fraction(Time now) const;

  /// Reset progress (for warm-up repetitions).
  void restart();

  [[nodiscard]] const StatSet& stats() const { return stats_; }
  [[nodiscard]] StatSet& stats() { return stats_; }

  /// Attach observability (category "gpu"): a complete-span per kernel
  /// launch (queued -> retired) and hierarchical counters mirroring the
  /// engine's StatSet.  Read-only; execution is identical with or without.
  void set_observer(obs::Trace trace, obs::CounterRegistry* counters = nullptr) {
    trace_ = trace;
    counters_ = counters;
  }

  /// Per-launch kernel dispatch overhead (driver + runtime).
  Time launch_overhead{Time::us(5.0)};

 private:
  struct Progress {
    double fraction_done{0.0};      // of the current launch
    double blocks_retired{0.0};     // fractional retire carry
    Time overhead_left{Time::zero()};
  };

  void begin_launch(Time now);
  void refill_residency(Time now);
  void retire_blocks(Time now, double count);
  [[nodiscard]] double gpu_bound_fraction(Time window) const;

  GpuConfig cfg_;
  std::vector<LaunchSpec> launches_;
  core::ThrottleController& controller_;

  std::size_t launch_idx_{0};
  Progress prog_{};
  // Exact running sums of the fractional per-epoch op streams and how much
  // of each has been emitted to the integer counters (commit() adds the
  // delta, so totals never drift from the true sum by more than one op).
  double pim_ops_accum_{0.0};
  double host_atomics_accum_{0.0};
  std::uint64_t pim_ops_emitted_{0};
  std::uint64_t host_atomics_emitted_{0};
  Time launch_began_{Time::zero()};
  // Residency: flags for resident blocks, true = holds a PIM token.
  std::deque<bool> resident_;
  std::uint64_t blocks_launched_{0};
  std::uint64_t resident_pim_{0};

  StatSet stats_;
  obs::Trace trace_;
  obs::CounterRegistry* counters_{nullptr};
};

}  // namespace coolpim::gpu
