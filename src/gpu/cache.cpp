#include "gpu/cache.hpp"

namespace coolpim::gpu {

Cache::Cache(std::size_t capacity_bytes, std::size_t ways, std::size_t line_bytes)
    : sets_{0}, ways_{ways}, line_{line_bytes} {
  COOLPIM_REQUIRE(ways > 0 && line_bytes > 0, "cache geometry must be positive");
  COOLPIM_REQUIRE(capacity_bytes % (ways * line_bytes) == 0,
                  "capacity must be a whole number of sets");
  sets_ = capacity_bytes / (ways * line_bytes);
  COOLPIM_REQUIRE(sets_ > 0, "cache must hold at least one set");
  COOLPIM_REQUIRE((sets_ & (sets_ - 1)) == 0, "set count must be a power of two");
  lines_.assign(sets_ * ways_, Line{});
}

bool Cache::access(std::uint64_t address) {
  const std::uint64_t block = address / line_;
  const std::size_t set = static_cast<std::size_t>(block) & (sets_ - 1);
  const std::uint64_t tag = block / sets_;
  Line* base = &lines_[set * ways_];
  ++tick_;

  Line* victim = base;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

bool Cache::contains(std::uint64_t address) const {
  const std::uint64_t block = address / line_;
  const std::size_t set = static_cast<std::size_t>(block) & (sets_ - 1);
  const std::uint64_t tag = block / sets_;
  const Line* base = &lines_[set * ways_];
  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) line.valid = false;
}

}  // namespace coolpim::gpu
