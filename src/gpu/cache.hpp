// Set-associative cache model with LRU replacement.
//
// Used functionally: the workload characterizer replays representative
// address streams through an L2 instance to measure hit rates per access
// class (streaming scans vs. random property accesses), and the detailed GPU
// micro-model uses L1 instances directly.  PIM-target data is allocated in an
// uncacheable region (GraphPIM policy), so atomics never enter these caches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace coolpim::gpu {

class Cache {
 public:
  Cache(std::size_t capacity_bytes, std::size_t ways, std::size_t line_bytes);

  /// Access a byte address; returns true on hit.  Allocate-on-miss.
  bool access(std::uint64_t address);

  /// Probe without updating state.
  [[nodiscard]] bool contains(std::uint64_t address) const;

  void flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }
  void reset_stats() { hits_ = misses_ = 0; }

  [[nodiscard]] std::size_t num_sets() const { return sets_; }
  [[nodiscard]] std::size_t ways() const { return ways_; }
  [[nodiscard]] std::size_t line_bytes() const { return line_; }

 private:
  struct Line {
    std::uint64_t tag{0};
    std::uint64_t lru{0};
    bool valid{false};
  };

  std::size_t sets_;
  std::size_t ways_;
  std::size_t line_;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
  std::uint64_t tick_{0};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
};

}  // namespace coolpim::gpu
