// GPU configuration (paper Table IV host side).
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"

namespace coolpim::gpu {

/// How offloaded PIM data is kept coherent with the caches (paper II-B).
enum class OffloadPolicy : std::uint8_t {
  /// GraphPIM: the PIM target region is uncacheable, so offloads carry no
  /// coherence traffic (the policy the paper adopts).
  kUncacheableRegion,
  /// PEI: cache blocks touched by PIM instructions are invalidated or
  /// written back, adding coherence traffic per offload.
  kCoherentWriteback,
};

struct GpuConfig {
  std::size_t num_sms{16};
  std::size_t threads_per_warp{32};
  std::size_t threads_per_block{256};
  std::size_t max_blocks_per_sm{8};
  std::size_t max_warps_per_sm{64};
  Frequency clock{Frequency::ghz(1.4)};

  // Cache hierarchy (Table IV: 16 KB private L1D, 1 MB 16-way L2).
  std::size_t l1_bytes{16 * 1024};
  std::size_t l1_ways{4};
  std::size_t l2_bytes{1024 * 1024};
  std::size_t l2_ways{16};
  std::size_t line_bytes{64};

  /// Memory-level parallelism per warp: outstanding memory requests a warp
  /// sustains while blocked (MSHR-limited).
  double mlp_per_warp{2.0};
  /// Loaded round-trip latency to the HMC seen by an SM (link + queue +
  /// bank), used for the latency-bound throughput cap at low occupancy.
  Time mem_latency{Time::ns(280.0)};

  /// Host (non-offloaded) atomics perform a read-modify-write at the L2
  /// atomic units; updates to hot vertices hit the same 64-byte line and
  /// coalesce, so each atomic costs fewer than a full read + write pair of
  /// memory transactions on average.  PIM offloads cannot coalesce (each op
  /// is its own packet) -- one of the trade-offs the evaluation captures.
  double host_atomic_coalescing{0.7};

  /// Coherence policy for offloaded atomics.
  OffloadPolicy offload_policy{OffloadPolicy::kUncacheableRegion};
  /// PEI only: average writeback/invalidate transactions added per offload
  /// (fraction of touched blocks found dirty or cached).
  double pei_coherence_txns{0.35};

  [[nodiscard]] std::size_t warps_per_block() const {
    return threads_per_block / threads_per_warp;
  }
  /// Peak warp-instruction issue rate, all SMs (1 IPC per SM).
  [[nodiscard]] double issue_rate_per_sec() const {
    return static_cast<double>(num_sms) * clock.as_hz();
  }
  [[nodiscard]] std::size_t max_resident_blocks() const {
    return num_sms * max_blocks_per_sm;
  }
  [[nodiscard]] std::size_t max_resident_warps() const { return num_sms * max_warps_per_sm; }

  void validate() const {
    COOLPIM_REQUIRE(num_sms > 0, "need at least one SM");
    COOLPIM_REQUIRE(threads_per_block % threads_per_warp == 0,
                    "block size must be a whole number of warps");
    COOLPIM_REQUIRE(l1_bytes % (l1_ways * line_bytes) == 0, "L1 geometry invalid");
    COOLPIM_REQUIRE(l2_bytes % (l2_ways * line_bytes) == 0, "L2 geometry invalid");
  }
};

}  // namespace coolpim::gpu
