// Workload characterization: logical access counts -> memory transactions.
//
// Graph workloads touch memory in three ways: streaming scans of the CSR
// arrays (perfectly coalesced, one 64-byte transaction per line, near-zero
// reuse), random 4-8 byte property accesses (one transaction each unless the
// L2 retains the line), and atomic RMWs (allocated in an uncacheable region
// per the GraphPIM policy the paper adopts, so they always go to memory).
// The random-access hit rate is *measured* by replaying a representative
// stream through the L2 cache model rather than assumed.
#pragma once

#include <cstdint>

#include "gpu/cache.hpp"
#include "gpu/config.hpp"
#include "graph/profile.hpp"

namespace coolpim::gpu {

/// Measured cache behaviour for a given property-array footprint.
class CacheHitModel {
 public:
  /// `property_bytes`: total footprint of the randomly-accessed property
  /// arrays.  The hit rate is measured by replaying `sample_accesses`
  /// uniform-random accesses through the configured L2.
  CacheHitModel(const GpuConfig& cfg, std::uint64_t property_bytes,
                std::uint64_t sample_accesses = 1 << 20, std::uint64_t seed = 7);

  [[nodiscard]] double random_hit_rate() const { return random_hit_rate_; }
  /// Streaming scans miss essentially always (no reuse within an iteration).
  [[nodiscard]] double stream_hit_rate() const { return 0.0; }

 private:
  double random_hit_rate_{0.0};
};

/// Memory transactions one kernel iteration sends to the HMC.
struct MemoryDemand {
  double read_txns{0.0};    // 64-byte reads
  double write_txns{0.0};   // 64-byte writes
  double atomic_ops{0.0};   // PIM-offloadable RMWs (uncacheable)
};

/// Convert an iteration profile into memory-transaction demand.
[[nodiscard]] MemoryDemand characterize(const graph::IterationProfile& it,
                                        const CacheHitModel& cache);

}  // namespace coolpim::gpu
