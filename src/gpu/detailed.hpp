// Event-detailed GPU micro-model (MacSim stand-in).
//
// Warps are in-order agents: each alternates compute bursts (occupying its
// SM's single-issue pipeline) with memory operations (L1 lookup, then an HMC
// transaction on a miss).  Latency hiding comes from multi-warp occupancy,
// exactly the mechanism behind the epoch model's latency-bound throughput
// cap -- the micro-benches and tests cross-validate that cap against this
// model (DESIGN.md section 5).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "gpu/cache.hpp"
#include "gpu/config.hpp"
#include "hmc/device.hpp"
#include "sim/simulation.hpp"

namespace coolpim::gpu {

/// Address pattern a warp's memory operations follow.
enum class AddressPattern : std::uint8_t { kStreaming, kRandom };

/// Synthetic per-warp trace: `memory_ops` operations, each preceded by a
/// compute burst of `compute_per_memop` warp instructions.
struct WarpTrace {
  std::uint64_t memory_ops{100};
  std::uint64_t compute_per_memop{4};
  hmc::TransactionType type{hmc::TransactionType::kRead64};
  AddressPattern pattern{AddressPattern::kRandom};
  /// Footprint the random pattern draws from (bytes).
  std::uint64_t footprint_bytes{256ull << 20};
};

/// Results of a detailed run.
struct DetailedResult {
  Time completion{Time::zero()};
  std::uint64_t memory_ops{0};
  std::uint64_t l1_hits{0};
  double achieved_gbps{0.0};
  double avg_latency_ns{0.0};
};

class DetailedGpu {
 public:
  DetailedGpu(sim::Simulation& sim, GpuConfig cfg, hmc::Device& device);

  /// Launch one warp per trace, assigned round-robin to SMs, and return a
  /// handle for collecting results after sim.run_to_completion().
  void launch(const std::vector<WarpTrace>& traces);

  /// Collect results; valid once the simulation has drained.
  [[nodiscard]] DetailedResult result() const;

  [[nodiscard]] const StatSet& stats() const { return stats_; }

 private:
  struct Warp;
  void step_warp(Warp& warp);
  void issue_memop(Warp& warp);

  sim::Simulation& sim_;
  GpuConfig cfg_;
  hmc::Device& device_;

  struct Sm {
    Time issue_free_at{Time::zero()};
    std::unique_ptr<Cache> l1;
  };
  std::vector<Sm> sms_;

  struct Warp {
    std::size_t sm{0};
    WarpTrace trace;
    std::uint64_t ops_done{0};
    std::uint64_t next_addr{0};
    Rng rng{0};
  };
  std::vector<std::unique_ptr<Warp>> warps_;

  std::uint64_t outstanding_{0};
  std::uint64_t total_ops_{0};
  std::uint64_t payload_bytes_{0};
  Time last_completion_{Time::zero()};
  StatSet stats_;
};

}  // namespace coolpim::gpu
