#include "gpu/characterize.hpp"

#include "common/rng.hpp"

namespace coolpim::gpu {

CacheHitModel::CacheHitModel(const GpuConfig& cfg, std::uint64_t property_bytes,
                             std::uint64_t sample_accesses, std::uint64_t seed) {
  COOLPIM_REQUIRE(property_bytes > 0, "property footprint must be positive");
  Cache l2{cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes};
  Rng rng{seed};
  // Warm the cache with one capacity's worth of accesses before measuring.
  const std::uint64_t warm = cfg.l2_bytes / cfg.line_bytes * 4;
  for (std::uint64_t i = 0; i < warm; ++i) {
    l2.access(rng.next_below(property_bytes));
  }
  l2.reset_stats();
  for (std::uint64_t i = 0; i < sample_accesses; ++i) {
    l2.access(rng.next_below(property_bytes));
  }
  random_hit_rate_ = l2.hit_rate();
}

MemoryDemand characterize(const graph::IterationProfile& it, const CacheHitModel& cache) {
  MemoryDemand d;
  // Streaming scans: one 64-byte read per line, no reuse.
  d.read_txns += static_cast<double>(it.struct_scan_bytes) / 64.0 *
                 (1.0 - cache.stream_hit_rate());
  // Random property reads: one transaction per access on a miss.
  d.read_txns += static_cast<double>(it.property_reads) * (1.0 - cache.random_hit_rate());
  // Random property writes: write-allocate then eventual writeback; count the
  // writeback transaction (the allocate read is covered by the hit model).
  d.write_txns += static_cast<double>(it.property_writes) * (1.0 - cache.random_hit_rate());
  // Atomics bypass the cache (uncacheable PIM region).
  d.atomic_ops = static_cast<double>(it.atomic_ops);
  return d;
}

}  // namespace coolpim::gpu
