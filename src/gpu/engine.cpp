#include "gpu/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/names.hpp"

namespace coolpim::gpu {

std::vector<LaunchSpec> build_launches(const graph::WorkloadProfile& profile,
                                       const GpuConfig& cfg, const CacheHitModel& cache) {
  std::vector<LaunchSpec> out;
  out.reserve(profile.iterations.size());
  for (const auto& it : profile.iterations) {
    LaunchSpec spec;
    spec.mem = characterize(it, cache);
    // Atomic issue occupies the pipeline like any other warp instruction.
    spec.warp_instructions = static_cast<double>(it.compute_warp_instructions) +
                             static_cast<double>(it.atomic_ops) /
                                 static_cast<double>(cfg.threads_per_warp);
    const std::uint64_t threads = std::max<std::uint64_t>(it.work_threads, 1);
    spec.blocks = (threads + cfg.threads_per_block - 1) / cfg.threads_per_block;
    spec.warps = (threads + cfg.threads_per_warp - 1) / cfg.threads_per_warp;
    spec.divergence = it.divergent_warp_ratio;
    out.push_back(spec);
  }
  return out;
}

ExecutionEngine::ExecutionEngine(GpuConfig cfg, std::vector<LaunchSpec> launches,
                                 core::ThrottleController& controller)
    : cfg_{std::move(cfg)}, launches_{std::move(launches)}, controller_{controller} {
  cfg_.validate();
  COOLPIM_REQUIRE(!launches_.empty(), "workload has no kernel launches");
  begin_launch(Time::zero());
}

void ExecutionEngine::begin_launch(Time now) {
  prog_ = Progress{};
  prog_.overhead_left = launch_overhead;
  resident_.clear();
  blocks_launched_ = 0;
  resident_pim_ = 0;
  launch_began_ = now;
  if (launch_idx_ < launches_.size()) {
    refill_residency(now);
    stats_.counter("kernel_launches").add();
    if (counters_) counters_->counter(obs::names::kGpuKernelLaunches).add();
  }
}

void ExecutionEngine::refill_residency(Time now) {
  const auto& launch = launches_[launch_idx_];
  const std::uint64_t cap = std::min<std::uint64_t>(cfg_.max_resident_blocks(), launch.blocks);
  while (resident_.size() < cap && blocks_launched_ < launch.blocks) {
    const bool has_token = controller_.acquire_block(now);
    resident_.push_back(has_token);
    if (has_token) ++resident_pim_;
    ++blocks_launched_;
  }
}

void ExecutionEngine::retire_blocks(Time now, double count) {
  prog_.blocks_retired += count;
  while (prog_.blocks_retired >= 1.0 && !resident_.empty()) {
    prog_.blocks_retired -= 1.0;
    const bool had_token = resident_.front();
    resident_.pop_front();
    if (had_token) {
      --resident_pim_;
      controller_.release_block(now);
    }
    stats_.counter("blocks_retired").add();
    if (counters_) counters_->counter(obs::names::kGpuBlocksRetired).add();
  }
  refill_residency(now);
}

double ExecutionEngine::pim_fraction(Time now) const {
  if (resident_.empty()) return 0.0;
  const double block_frac =
      static_cast<double>(resident_pim_) / static_cast<double>(resident_.size());
  return block_frac * controller_.pim_warp_fraction(now);
}

double ExecutionEngine::gpu_bound_fraction(Time window) const {
  const auto& launch = launches_[launch_idx_];
  const double remaining = 1.0 - prog_.fraction_done;
  if (remaining <= 0.0) return 0.0;

  // Resident warps: blocks resident * warps per block, capped by what the
  // launch actually has left.
  const double resident_warps = std::min(
      static_cast<double>(resident_.size()) * static_cast<double>(cfg_.warps_per_block()),
      static_cast<double>(launch.warps));

  // Constraint 1: warp-instruction issue.  SM front ends saturate once
  // enough warps are resident; below that, issue scales with occupancy.
  const double warps_to_saturate = static_cast<double>(cfg_.num_sms) * 8.0;
  const double issue_eff = std::min(1.0, resident_warps / warps_to_saturate);
  const double instr_capacity = cfg_.issue_rate_per_sec() * issue_eff * window.as_sec();
  const double instr_remaining = launch.warp_instructions * remaining;
  const double f_issue = instr_remaining > 0.0 ? instr_capacity / instr_remaining : 1.0;

  // Constraint 2: latency-bound memory request rate at low occupancy.
  const double total_mem_ops =
      launch.mem.read_txns + launch.mem.write_txns + launch.mem.atomic_ops;
  const double mem_remaining = total_mem_ops * remaining;
  double f_latency = 1.0;
  if (mem_remaining > 0.0) {
    const double req_rate = resident_warps * cfg_.mlp_per_warp *
                            static_cast<double>(cfg_.threads_per_warp) /
                            cfg_.mem_latency.as_sec();
    f_latency = req_rate * window.as_sec() / mem_remaining;
  }

  return std::clamp(std::min(f_issue, f_latency), 0.0, remaining > 0 ? 1.0 : 0.0);
}

hmc::EpochDemand ExecutionEngine::plan(Time now, Time window) {
  hmc::EpochDemand demand{};
  if (finished()) return demand;
  if (prog_.overhead_left > Time::zero()) return demand;  // dispatch overhead

  const auto& launch = launches_[launch_idx_];
  const double remaining = 1.0 - prog_.fraction_done;
  // Fraction of the whole launch the GPU could advance this window, bounded
  // by what is left and by any blanket demand throttle.
  const double advance = std::min(
      gpu_bound_fraction(window) * controller_.demand_scale(now) * remaining, remaining);

  const double p = pim_fraction(now);
  const double atomics = launch.mem.atomic_ops * advance;
  const double host_rmw = atomics * (1.0 - p) * cfg_.host_atomic_coalescing;
  demand.reads = launch.mem.read_txns * advance + host_rmw;
  demand.writes = launch.mem.write_txns * advance + host_rmw;
  demand.pim_ops = atomics * p;
  if (cfg_.offload_policy == OffloadPolicy::kCoherentWriteback) {
    // PEI-style coherence: each offload may write back / invalidate the
    // cached copy of its block before the PIM op may proceed.
    demand.writes += demand.pim_ops * cfg_.pei_coherence_txns;
  }
  demand.pim_return_fraction = 0.0;  // atomicMin/Add offloads need no return
  return demand;
}

Time ExecutionEngine::commit(Time now, Time window, const hmc::EpochService& service) {
  if (finished()) return window;

  if (prog_.overhead_left > Time::zero()) {
    const Time used = std::min(window, prog_.overhead_left);
    prog_.overhead_left -= used;
    return used;
  }

  const auto& launch = launches_[launch_idx_];
  const double remaining = 1.0 - prog_.fraction_done;
  const double gpu_advance = std::min(
      gpu_bound_fraction(window) * controller_.demand_scale(now) * remaining, remaining);
  const double advance = gpu_advance * service.served_fraction;

  prog_.fraction_done += advance;
  // Both op streams are fractional per epoch; rounding each epoch
  // independently (the old `+ 0.5` cast) drifts by up to half an op per
  // epoch over long runs.  Instead accumulate the exact running sum and
  // emit the integer delta, so the counter total is always floor(sum).
  pim_ops_accum_ += service.pim_ops;
  host_atomics_accum_ += launch.mem.atomic_ops * advance * (1.0 - pim_fraction(now));
  const auto pim_total = static_cast<std::uint64_t>(pim_ops_accum_);
  const auto host_total = static_cast<std::uint64_t>(host_atomics_accum_);
  const std::uint64_t pim_inc = pim_total - pim_ops_emitted_;
  const std::uint64_t host_inc = host_total - host_atomics_emitted_;
  pim_ops_emitted_ = pim_total;
  host_atomics_emitted_ = host_total;
  stats_.counter("pim_ops").add(pim_inc);
  stats_.counter("host_atomics").add(host_inc);
  stats_.summary("pim_fraction").record(pim_fraction(now));
  if (counters_) {
    counters_->counter(obs::names::kGpuPimOps).add(pim_inc);
    counters_->counter(obs::names::kGpuHostAtomics).add(host_inc);
    counters_->gauge(obs::names::kGpuPimFraction).set(pim_fraction(now));
  }

  retire_blocks(now, advance * static_cast<double>(launch.blocks));

  if (prog_.fraction_done >= 1.0 - 1e-9) {
    if (trace_.enabled()) {
      trace_.complete(launch_began_, now - launch_began_, obs::names::kCatGpu, "kernel_launch",
                      {{"launch", static_cast<std::uint64_t>(launch_idx_)},
                       {"blocks", launch.blocks},
                       {"warps", launch.warps}});
    }
    // Launch complete: release any tokens still held and move on.  Consume
    // the full window (the tail fraction is sub-epoch noise).
    while (!resident_.empty()) {
      if (resident_.front()) {
        --resident_pim_;
        controller_.release_block(now);
      }
      resident_.pop_front();
    }
    ++launch_idx_;
    begin_launch(now);
  }
  return window;
}

void ExecutionEngine::restart() {
  launch_idx_ = 0;
  // Release tokens held across the restart boundary.
  while (!resident_.empty()) {
    if (resident_.front()) controller_.release_block(Time::zero());
    resident_.pop_front();
  }
  resident_pim_ = 0;
  begin_launch(Time::zero());
}

}  // namespace coolpim::gpu
