// Console table rendering shared by every bench binary, so reproduced paper
// tables/figures print with one consistent format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace coolpim {

/// Column-aligned text table with a title, header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_{std::move(title)} {}

  Table& header(std::vector<std::string> cols);
  Table& row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render an ASCII sparkline-style bar chart row: value scaled to width.
std::string ascii_bar(double value, double max_value, int width = 40);

}  // namespace coolpim
