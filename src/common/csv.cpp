#include "common/csv.hpp"

#include <ostream>
#include <sstream>

namespace coolpim {

namespace {
bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os_ << ',';
    os_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace coolpim
