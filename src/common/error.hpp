// Error handling for the CoolPIM library.
//
// Model/configuration violations throw coolpim::Error (callers can recover or
// report); internal invariant violations use COOLPIM_ASSERT, which is active
// in all build types -- a simulator that silently continues past a broken
// invariant produces plausible-looking garbage, the worst failure mode.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace coolpim {

/// Base exception for all user-recoverable library errors (bad configuration,
/// out-of-range experiment parameters, malformed workloads).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Configuration that cannot describe a buildable system.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// Simulation reached a state the model cannot represent (e.g. event in the
/// past, negative power).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error("sim: " + what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw SimError(os.str());
}
}  // namespace detail

}  // namespace coolpim

/// Always-on invariant check.  Throws SimError (so tests can verify failure
/// paths) rather than aborting.
#define COOLPIM_ASSERT(expr)                                                     \
  do {                                                                           \
    if (!(expr)) ::coolpim::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define COOLPIM_ASSERT_MSG(expr, msg)                                            \
  do {                                                                           \
    if (!(expr)) ::coolpim::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Configuration validation helper: throws ConfigError with the failed
/// condition when a user-supplied config is unusable.
#define COOLPIM_REQUIRE(expr, msg)                                               \
  do {                                                                           \
    if (!(expr)) throw ::coolpim::ConfigError(std::string(msg) + " (" #expr ")"); \
  } while (false)
