// Lightweight statistics collection.
//
// Components expose named counters and distributions through a StatSet so
// that experiment harnesses can dump everything a run produced without each
// bench knowing component internals.  No global registry: each component owns
// its StatSet and parents aggregate explicitly (Core Guidelines I.2 -- avoid
// non-const global variables).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace coolpim {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

/// Streaming summary of a sampled quantity: count / mean / min / max /
/// variance via Welford's algorithm (numerically stable for long runs).
class Summary {
 public:
  void record(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    last_ = x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double last() const { return last_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Summary{}; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
  double last_{0.0};
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets) : lo_{lo}, hi_{hi}, counts_(buckets, 0) {
    COOLPIM_REQUIRE(hi > lo, "histogram range must be non-empty");
    COOLPIM_REQUIRE(buckets > 0, "histogram needs at least one bucket");
  }

  void record(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }

  /// Linear-interpolated percentile (q in [0,1]).
  [[nodiscard]] double percentile(double q) const {
    COOLPIM_ASSERT(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cum += static_cast<double>(counts_[i]);
      if (cum >= target) return bucket_lo(i);
    }
    return hi_;
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

/// Named bag of counters/summaries; the dump format is consumed by benches.
class StatSet {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Summary& summary(const std::string& name) { return summaries_[name]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Summary>& summaries() const { return summaries_; }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  void reset() {
    for (auto& [_, c] : counters_) c.reset();
    for (auto& [_, s] : summaries_) s.reset();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace coolpim
