// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (graph generation, address
// hashing jitter, workload sampling) draws from an explicitly seeded Xoshiro
// generator so that runs are bit-reproducible across platforms -- std::mt19937
// distributions are not guaranteed identical across standard libraries, so we
// implement the distributions we need ourselves.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace coolpim {

/// SplitMix64: used to expand a single user seed into the four words of
/// Xoshiro state.  Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** -- fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'c001'91a1'0000ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm{seed};
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    COOLPIM_ASSERT(bound > 0);
    // 128-bit multiply-shift rejection sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    COOLPIM_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Bernoulli trial.
  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double next_normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * mul;
    have_cached_ = true;
    return u * mul;
  }

  /// Fork a statistically independent child stream, e.g. one per SM.
  Rng fork(std::uint64_t stream_id) {
    Rng child{next_u64() ^ (stream_id * 0x9e3779b97f4a7c15ULL)};
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_{0.0};
  bool have_cached_{false};
};

}  // namespace coolpim
