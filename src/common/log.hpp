// Minimal leveled logger.
//
// The simulator is library-first: logging goes through an injectable sink so
// tests can capture it and benches can silence it.  Default sink writes to
// stderr.  Not thread-safe by design -- the simulation kernel is single
// threaded; parallel sweeps run one Simulation per thread with its own
// Logger.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace coolpim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] const char* to_string(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  Logger() = default;
  explicit Logger(LogLevel threshold) : threshold_{threshold} {}

  void set_threshold(LogLevel level) { threshold_ = level; }
  [[nodiscard]] LogLevel threshold() const { return threshold_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= threshold_; }

  void log(LogLevel level, const std::string& msg) const;

  template <typename... Args>
  void debug(Args&&... args) const { logf(LogLevel::kDebug, std::forward<Args>(args)...); }
  template <typename... Args>
  void info(Args&&... args) const { logf(LogLevel::kInfo, std::forward<Args>(args)...); }
  template <typename... Args>
  void warn(Args&&... args) const { logf(LogLevel::kWarn, std::forward<Args>(args)...); }
  template <typename... Args>
  void error(Args&&... args) const { logf(LogLevel::kError, std::forward<Args>(args)...); }

 private:
  template <typename... Args>
  void logf(LogLevel level, Args&&... args) const {
    if (!enabled(level)) return;
    std::ostringstream os;
    (os << ... << args);
    log(level, os.str());
  }

  LogLevel threshold_{LogLevel::kWarn};
  Sink sink_;  // empty -> default stderr sink
};

}  // namespace coolpim
