#include "common/log.hpp"

#include <iostream>

namespace coolpim {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, const std::string& msg) const {
  if (!enabled(level)) return;
  if (sink_) {
    sink_(level, msg);
  } else {
    std::cerr << "[coolpim " << to_string(level) << "] " << msg << '\n';
  }
}

}  // namespace coolpim
