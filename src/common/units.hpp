// Strongly-typed physical quantities used throughout the CoolPIM stack.
//
// The simulator couples four domains -- timing (picoseconds), energy/power
// (joules/watts), temperature (degrees Celsius) and bandwidth (bytes per
// second).  Mixing these up is the classic source of silent modelling bugs,
// so each domain gets its own vocabulary type.  All types are trivially
// copyable value types with constexpr arithmetic; there is no runtime cost
// over raw doubles/int64s.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace coolpim {

/// Simulated time.  Integer picoseconds: at 1.4 GHz one cycle is ~714 ps, so
/// picosecond resolution represents every clock in the system exactly enough,
/// and int64 gives ~106 days of range -- far beyond any run we do.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time ps(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time ns(double v) {
    return Time{static_cast<std::int64_t>(v * 1e3)};
  }
  [[nodiscard]] static constexpr Time us(double v) {
    return Time{static_cast<std::int64_t>(v * 1e6)};
  }
  [[nodiscard]] static constexpr Time ms(double v) {
    return Time{static_cast<std::int64_t>(v * 1e9)};
  }
  [[nodiscard]] static constexpr Time sec(double v) {
    return Time{static_cast<std::int64_t>(v * 1e12)};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_ps() const { return ps_; }
  [[nodiscard]] constexpr double as_ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double as_us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double as_ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double as_sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
  constexpr Time& operator-=(Time o) { ps_ -= o.ps_; return *this; }
  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, double k) {
    return Time{static_cast<std::int64_t>(static_cast<double>(a.ps_) * k)};
  }
  friend constexpr Time operator*(double k, Time a) { return a * k; }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ps_ / k}; }
  friend constexpr auto operator<=>(Time a, Time b) = default;

 private:
  constexpr explicit Time(std::int64_t v) : ps_{v} {}
  std::int64_t ps_{0};
};

/// Frequency in hertz; converts to/from a per-tick period.
class Frequency {
 public:
  constexpr Frequency() = default;
  [[nodiscard]] static constexpr Frequency hz(double v) { return Frequency{v}; }
  [[nodiscard]] static constexpr Frequency mhz(double v) { return Frequency{v * 1e6}; }
  [[nodiscard]] static constexpr Frequency ghz(double v) { return Frequency{v * 1e9}; }

  [[nodiscard]] constexpr double as_hz() const { return hz_; }
  [[nodiscard]] constexpr double as_ghz() const { return hz_ * 1e-9; }
  [[nodiscard]] constexpr Time period() const { return Time::sec(1.0 / hz_); }

  friend constexpr Frequency operator*(Frequency f, double k) { return Frequency{f.hz_ * k}; }
  friend constexpr auto operator<=>(Frequency a, Frequency b) = default;

 private:
  constexpr explicit Frequency(double v) : hz_{v} {}
  double hz_{0.0};
};

/// Temperature in degrees Celsius.  Plain double wrapper; the thermal solver
/// works in Kelvin internally but every interface speaks Celsius, matching
/// the paper's figures.
class Celsius {
 public:
  constexpr Celsius() = default;
  constexpr explicit Celsius(double deg_c) : c_{deg_c} {}
  [[nodiscard]] static constexpr Celsius from_kelvin(double k) { return Celsius{k - 273.15}; }

  [[nodiscard]] constexpr double value() const { return c_; }
  [[nodiscard]] constexpr double as_kelvin() const { return c_ + 273.15; }

  friend constexpr Celsius operator+(Celsius a, double dt) { return Celsius{a.c_ + dt}; }
  friend constexpr Celsius operator-(Celsius a, double dt) { return Celsius{a.c_ - dt}; }
  friend constexpr double operator-(Celsius a, Celsius b) { return a.c_ - b.c_; }
  friend constexpr auto operator<=>(Celsius a, Celsius b) = default;

 private:
  double c_{0.0};
};

/// Power in watts.
class Watts {
 public:
  constexpr Watts() = default;
  constexpr explicit Watts(double w) : w_{w} {}
  [[nodiscard]] constexpr double value() const { return w_; }

  constexpr Watts& operator+=(Watts o) { w_ += o.w_; return *this; }
  friend constexpr Watts operator+(Watts a, Watts b) { return Watts{a.w_ + b.w_}; }
  friend constexpr Watts operator-(Watts a, Watts b) { return Watts{a.w_ - b.w_}; }
  friend constexpr Watts operator*(Watts a, double k) { return Watts{a.w_ * k}; }
  friend constexpr Watts operator*(double k, Watts a) { return Watts{a.w_ * k}; }
  friend constexpr double operator/(Watts a, Watts b) { return a.w_ / b.w_; }
  friend constexpr auto operator<=>(Watts a, Watts b) = default;

 private:
  double w_{0.0};
};

/// Energy in joules.  Energy = Power * Time and Power = Energy / Time are the
/// only cross-domain operations, defined below.
class Joules {
 public:
  constexpr Joules() = default;
  constexpr explicit Joules(double j) : j_{j} {}
  [[nodiscard]] static constexpr Joules pj(double v) { return Joules{v * 1e-12}; }

  [[nodiscard]] constexpr double value() const { return j_; }
  [[nodiscard]] constexpr double as_pj() const { return j_ * 1e12; }

  constexpr Joules& operator+=(Joules o) { j_ += o.j_; return *this; }
  friend constexpr Joules operator+(Joules a, Joules b) { return Joules{a.j_ + b.j_}; }
  friend constexpr Joules operator*(Joules a, double k) { return Joules{a.j_ * k}; }
  friend constexpr auto operator<=>(Joules a, Joules b) = default;

 private:
  double j_{0.0};
};

[[nodiscard]] constexpr Joules operator*(Watts p, Time t) {
  return Joules{p.value() * t.as_sec()};
}
[[nodiscard]] constexpr Joules operator*(Time t, Watts p) { return p * t; }
[[nodiscard]] constexpr Watts operator/(Joules e, Time t) {
  return Watts{e.value() / t.as_sec()};
}

/// Bandwidth in bytes per second.  The paper quotes GB/s as 10^9 bytes/s.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  [[nodiscard]] static constexpr Bandwidth bytes_per_sec(double v) { return Bandwidth{v}; }
  [[nodiscard]] static constexpr Bandwidth gbps(double v) { return Bandwidth{v * 1e9}; }

  [[nodiscard]] constexpr double as_bytes_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double as_gbps() const { return bps_ * 1e-9; }
  [[nodiscard]] constexpr double bits_per_sec() const { return bps_ * 8.0; }

  /// Bytes transferable in an interval.
  [[nodiscard]] constexpr double bytes_in(Time t) const { return bps_ * t.as_sec(); }

  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ + b.bps_}; }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ - b.bps_}; }
  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth{a.bps_ * k}; }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.bps_ / b.bps_; }
  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) = default;

 private:
  constexpr explicit Bandwidth(double v) : bps_{v} {}
  double bps_{0.0};
};

/// Thermal resistance in degrees Celsius per watt (heat-sink characteristic).
class ThermalResistance {
 public:
  constexpr ThermalResistance() = default;
  constexpr explicit ThermalResistance(double c_per_w) : r_{c_per_w} {}
  [[nodiscard]] constexpr double value() const { return r_; }

  /// Temperature rise produced by a heat flow.
  [[nodiscard]] constexpr double rise(Watts p) const { return r_ * p.value(); }

  friend constexpr auto operator<=>(ThermalResistance a, ThermalResistance b) = default;

 private:
  double r_{0.0};
};

}  // namespace coolpim
