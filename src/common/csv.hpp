// Minimal CSV writer (RFC-4180 quoting) for exporting experiment results to
// plotting pipelines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace coolpim {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_{os} {}

  /// Write one row; fields containing commas, quotes or newlines are quoted.
  void row(const std::vector<std::string>& fields);

  /// Convenience for numeric cells.
  static std::string num(double v);

 private:
  std::ostream& os_;
};

}  // namespace coolpim
