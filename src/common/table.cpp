#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace coolpim {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  COOLPIM_REQUIRE(header_.empty() || cells.size() == header_.size(),
                  "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  // Column widths from header and all rows.
  const std::size_t ncols = header_.empty() ? (rows_.empty() ? 0 : rows_.front().size())
                                            : header_.size();
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < ncols && c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < ncols && c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  std::size_t total = 1;
  for (const auto w : width) total += w + 3;
  const std::string rule(std::max<std::size_t>(total, title_.size()), '-');

  os << '\n' << title_ << '\n' << rule << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << s << " |";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << rule << '\n';
  }
  for (const auto& r : rows_) emit(r);
  os << rule << '\n';
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || width <= 0) return {};
  const double frac = std::clamp(value / max_value, 0.0, 1.0);
  const int n = static_cast<int>(std::lround(frac * width));
  std::string bar(static_cast<std::size_t>(n), '#');
  bar.append(static_cast<std::size_t>(width - n), ' ');
  return bar;
}

}  // namespace coolpim
