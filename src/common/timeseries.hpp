// Time-series recording for transient experiments (Fig. 14-style plots).
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace coolpim {

/// A named sequence of (time, value) samples.  Samples must arrive in
/// non-decreasing time order, which every epoch-driven producer satisfies.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_{std::move(name)} {}

  void record(Time t, double value) {
    COOLPIM_ASSERT_MSG(times_.empty() || t >= times_.back(),
                       "time series samples must be ordered");
    times_.push_back(t);
    values_.push_back(value);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] Time time_at(std::size_t i) const { return times_.at(i); }
  [[nodiscard]] double value_at(std::size_t i) const { return values_.at(i); }
  [[nodiscard]] const std::vector<Time>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Value at time t by zero-order hold (last sample at or before t).
  [[nodiscard]] double sample_at(Time t) const {
    COOLPIM_ASSERT(!times_.empty());
    if (t < times_.front()) return values_.front();
    // Binary search for the last index with times_[i] <= t.
    std::size_t lo = 0, hi = times_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi + 1) / 2;
      if (times_[mid] <= t) lo = mid; else hi = mid - 1;
    }
    return values_[lo];
  }

  /// Time-weighted mean over the recorded span (zero-order hold).
  [[nodiscard]] double time_weighted_mean() const {
    if (times_.size() < 2) return values_.empty() ? 0.0 : values_.front();
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < times_.size(); ++i) {
      acc += values_[i] * (times_[i + 1] - times_[i]).as_sec();
    }
    const double span = (times_.back() - times_.front()).as_sec();
    return span > 0.0 ? acc / span : values_.back();
  }

  /// Resample onto a fixed grid (for printing aligned columns).
  [[nodiscard]] std::vector<double> resample(Time start, Time step, std::size_t n) const {
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(sample_at(start + step * static_cast<std::int64_t>(i)));
    return out;
  }

 private:
  std::string name_;
  std::vector<Time> times_;
  std::vector<double> values_;
};

}  // namespace coolpim
