// Stable 64-bit hashing for experiment identity.
//
// The parallel runner keys its result cache and derives per-task RNG seeds
// from a hash of (workload, scenario, config).  That hash must be stable
// across processes, platforms and standard libraries -- std::hash makes no
// such promise -- so we use FNV-1a over an explicitly serialized byte
// stream.  Doubles are hashed by bit pattern (the configs only ever hold
// finite literals, so -0.0/NaN aliasing is not a concern in practice).
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace coolpim {

/// Incremental FNV-1a 64-bit hasher with typed field feeds.
class HashStream {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr HashStream& bytes(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      state_ ^= static_cast<std::uint8_t>(data[i]);
      state_ *= kPrime;
    }
    return *this;
  }

  constexpr HashStream& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (v >> (8 * i)) & 0xffU;
      state_ *= kPrime;
    }
    return *this;
  }

  template <typename T>
  constexpr HashStream& add(T v) {
    if constexpr (std::is_same_v<T, bool>) {
      return u64(v ? 1 : 0);
    } else if constexpr (std::is_enum_v<T>) {
      return u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    } else if constexpr (std::is_floating_point_v<T>) {
      return u64(std::bit_cast<std::uint64_t>(static_cast<double>(v)));
    } else {
      static_assert(std::is_integral_v<T>);
      return u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    }
  }

  HashStream& add(std::string_view s) {
    u64(s.size());  // length prefix: "ab"+"c" must differ from "a"+"bc"
    return bytes(s.data(), s.size());
  }

  [[nodiscard]] constexpr std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_{kOffsetBasis};
};

/// Mix a 64-bit hash into a well-distributed RNG seed (SplitMix64 finalizer).
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace coolpim
