// HMC power estimation from bandwidth utilization and PIM rate.
//
// Follows the paper's methodology (Section V-A): average energy per bit of
// 3.7 pJ for the DRAM layers and 6.78 pJ for the logic layer (Micron
// numbers), power = energy/bit * bandwidth.  PIM functional-unit power uses
// the paper's formula Power(FU) = E * FU_width * PIM_rate with a 128-bit FU;
// E comes from the gate-level synthesis the paper ran -- we use a calibrated
// value that reproduces the Fig. 5 temperature/PIM-rate anchors.
#pragma once

#include "common/units.hpp"

namespace coolpim::power {

/// Energy/power constants of one HMC cube.
struct EnergyParams {
  Joules dram_energy_per_bit{Joules::pj(3.7)};
  Joules logic_energy_per_bit{Joules::pj(6.78)};
  /// Per-bit energy of one PIM functional-unit operation (incl. vault command
  /// handling); calibrated against Fig. 5 (see DESIGN.md section 6).
  Joules fu_energy_per_bit{Joules::pj(7.0)};
  double fu_width_bits{128.0};

  /// Static/background power: SerDes links, PLLs, refresh.  HMC idle power is
  /// dominated by the always-on link PHYs on the logic die.
  Watts background_logic{Watts{8.0}};
  Watts background_dram{Watts{2.0}};

  /// Hot-phase energy penalties (paper Section I / [RAIDR], [Lee+ HPCA'15]):
  /// above 85 C the refresh rate doubles and cell leakage grows, so energy
  /// per bit RISES while throughput falls -- derating does not cool the
  /// device.  Index 0 = normal, 1 = extended (85-95 C), 2 = critical.
  double dram_energy_mult[3]{1.0, 2.10, 2.40};
  double logic_energy_mult[3]{1.0, 1.30, 1.45};
  double refresh_extra_watts[3]{0.0, 3.0, 5.0};
};

/// One operating point of the cube.
struct OperatingPoint {
  /// Raw off-chip link traffic (payload + headers), both directions summed.
  Bandwidth link_raw;
  /// Internal DRAM traffic: external data plus PIM read-modify-write traffic.
  Bandwidth dram_internal;
  /// PIM operations per second (paper plots op/ns = Gop/s).
  double pim_ops_per_sec{0.0};
};

/// Power split by physical location, ready for the thermal power maps.
struct PowerBreakdown {
  Watts logic_dynamic;     // link/switch/vault-controller switching
  Watts logic_background;  // SerDes static etc.
  Watts fu;                // PIM functional units (logic die, vault centers)
  Watts dram_dynamic;      // DRAM array access energy (spread over 8 dies)
  Watts dram_background;   // refresh & leakage

  [[nodiscard]] Watts logic_total() const { return logic_dynamic + logic_background + fu; }
  [[nodiscard]] Watts dram_total() const { return dram_dynamic + dram_background; }
  [[nodiscard]] Watts total() const { return logic_total() + dram_total(); }
};

/// Evaluate the power model at an operating point.  `derate_level` selects
/// the hot-phase energy multipliers (0 normal, 1 extended, 2 critical).
[[nodiscard]] PowerBreakdown compute_power(const EnergyParams& params, const OperatingPoint& op,
                                           int derate_level = 0);

/// Energy of a single PIM FU operation.
[[nodiscard]] Joules fu_op_energy(const EnergyParams& params);

}  // namespace coolpim::power
