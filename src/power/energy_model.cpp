#include "power/energy_model.hpp"

#include "common/error.hpp"

namespace coolpim::power {

PowerBreakdown compute_power(const EnergyParams& params, const OperatingPoint& op,
                             int derate_level) {
  COOLPIM_REQUIRE(op.pim_ops_per_sec >= 0.0, "PIM rate cannot be negative");
  COOLPIM_REQUIRE(derate_level >= 0 && derate_level <= 2, "derate level out of range");
  const double dm = params.dram_energy_mult[derate_level];
  const double lm = params.logic_energy_mult[derate_level];
  PowerBreakdown out{};
  out.logic_dynamic =
      Watts{params.logic_energy_per_bit.value() * op.link_raw.bits_per_sec() * lm};
  out.dram_dynamic =
      Watts{params.dram_energy_per_bit.value() * op.dram_internal.bits_per_sec() * dm};
  out.fu = Watts{fu_op_energy(params).value() * op.pim_ops_per_sec};
  out.logic_background = params.background_logic;
  out.dram_background =
      params.background_dram + Watts{params.refresh_extra_watts[derate_level]};
  return out;
}

Joules fu_op_energy(const EnergyParams& params) {
  return Joules{params.fu_energy_per_bit.value() * params.fu_width_bits};
}

}  // namespace coolpim::power
