// Cooling solutions (paper Table II) and the fan-power curve.
//
// The paper characterizes four plate-fin heat sinks by thermal resistance and
// relative fan power (passive = 0, low-end = 1x, commodity = 104x, high-end =
// 380x, with the high-end fan measured at ~13 W).  The fan-curve model lets
// ablation benches ask "what would a sink of resistance R cost?".
#pragma once

#include <array>
#include <string>

#include "common/units.hpp"

namespace coolpim::power {

enum class CoolingType { kPassive, kLowEndActive, kCommodityServer, kHighEndActive };

struct CoolingSolution {
  CoolingType type;
  std::string name;
  ThermalResistance resistance;  // sink-to-ambient, C/W
  double fan_power_rel;          // relative to the low-end active fan (1x)
  double fan_power_watts;        // absolute fan power

  [[nodiscard]] bool is_active() const { return fan_power_watts > 0.0; }
};

/// The paper's Table II presets.  High-end fan power is ~13 W; the other
/// active sinks scale by the published relative factors.
[[nodiscard]] const CoolingSolution& cooling(CoolingType type);

/// All four presets in Table II order.
[[nodiscard]] const std::array<CoolingSolution, 4>& all_cooling_solutions();

/// Module-level cooling of the HMC 1.1 prototype (Pico AC-510, paper Fig. 1).
/// The compute module's small heat sinks plus chassis airflow behave very
/// differently from the Table II server sinks; these effective resistances
/// are calibrated so the modeled package-surface temperatures match the
/// published thermal-camera readings.  There is no commodity-server variant
/// on the module.
[[nodiscard]] const CoolingSolution& prototype_cooling(CoolingType type);

/// Fan power (watts) needed to reach a given sink resistance, interpolated on
/// the paper's three active data points with a log-log piecewise fit.
/// Resistances at or above the passive sink cost nothing.
[[nodiscard]] double fan_power_for_resistance(ThermalResistance r);

/// Minimum sink resistance for which `peak_power` watts stay below
/// `limit` given `ambient`, using a pure lumped R model (the paper's
/// "R <= 0.27 C/W for full-loaded PIM" estimate style).  The full grid model
/// refines this; this is the first-order screening tool.
[[nodiscard]] ThermalResistance required_resistance(Watts peak_power, Celsius ambient,
                                                    Celsius limit);

}  // namespace coolpim::power
