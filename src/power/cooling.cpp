#include "power/cooling.hpp"

#include <cmath>

#include "common/error.hpp"

namespace coolpim::power {

namespace {
// High-end fan measured at ~13 W == 380x => 1x (low-end) ~= 34 mW.
constexpr double kWattsPerRel = 13.0 / 380.0;

const std::array<CoolingSolution, 4> kSolutions{{
    {CoolingType::kPassive, "passive", ThermalResistance{4.0}, 0.0, 0.0},
    {CoolingType::kLowEndActive, "low-end active", ThermalResistance{2.0}, 1.0,
     1.0 * kWattsPerRel},
    {CoolingType::kCommodityServer, "commodity-server active", ThermalResistance{0.5}, 104.0,
     104.0 * kWattsPerRel},
    {CoolingType::kHighEndActive, "high-end active", ThermalResistance{0.2}, 380.0,
     380.0 * kWattsPerRel},
}};
}  // namespace

const CoolingSolution& cooling(CoolingType type) {
  for (const auto& s : kSolutions) {
    if (s.type == type) return s;
  }
  throw ConfigError("unknown cooling type");
}

const std::array<CoolingSolution, 4>& all_cooling_solutions() { return kSolutions; }

const CoolingSolution& prototype_cooling(CoolingType type) {
  static const std::array<CoolingSolution, 3> kModule{{
      {CoolingType::kPassive, "passive (module)", ThermalResistance{1.45}, 0.0, 0.0},
      {CoolingType::kLowEndActive, "low-end active (module)", ThermalResistance{0.70}, 1.0,
       1.0 * kWattsPerRel},
      {CoolingType::kHighEndActive, "high-end active (module)", ThermalResistance{0.49}, 12.0,
       12.0 * kWattsPerRel},
  }};
  for (const auto& s : kModule) {
    if (s.type == type) return s;
  }
  throw ConfigError("prototype module has no such cooling option");
}

double fan_power_for_resistance(ThermalResistance r) {
  COOLPIM_REQUIRE(r.value() > 0.0, "thermal resistance must be positive");
  const double passive_r = kSolutions[0].resistance.value();
  if (r.value() >= passive_r) return 0.0;

  // Piecewise power law through the three active points (log-log linear):
  // (2.0, 1x), (0.5, 104x), (0.2, 380x).
  struct Point {
    double r, rel;
  };
  constexpr Point p1{2.0, 1.0}, p2{0.5, 104.0}, p3{0.2, 380.0};

  auto fit = [](Point a, Point b, double rv) {
    const double slope = std::log(b.rel / a.rel) / std::log(b.r / a.r);
    return a.rel * std::pow(rv / a.r, slope);
  };

  double rel;
  if (r.value() >= p2.r) {
    // Between passive knee and commodity: also covers extrapolation toward
    // the passive sink -- clamp to >= 0.
    rel = fit(p1, p2, std::min(r.value(), p1.r));
    if (r.value() > p1.r) rel = 0.0;
  } else {
    rel = fit(p2, p3, r.value());
  }
  return rel * kWattsPerRel;
}

ThermalResistance required_resistance(Watts peak_power, Celsius ambient, Celsius limit) {
  COOLPIM_REQUIRE(peak_power.value() > 0.0, "power must be positive");
  COOLPIM_REQUIRE(limit > ambient, "limit must exceed ambient");
  return ThermalResistance{(limit - ambient) / peak_power.value()};
}

}  // namespace coolpim::power
