#include "control/mpc.hpp"

#include <algorithm>
#include <cmath>

#include "obs/names.hpp"

namespace coolpim::control {

double rc_predict_peak(double t0_c, double t_ss_c, double alpha, unsigned horizon) {
  double t = t0_c;
  double peak = t0_c;
  for (unsigned k = 0; k < horizon; ++k) {
    t = t_ss_c + (t - t_ss_c) * alpha;
    peak = std::max(peak, t);
  }
  return peak;
}

double rc_infer_steady(double t_prev_c, double t_now_c, double alpha) {
  return (t_now_c - alpha * t_prev_c) / (1.0 - alpha);
}

MpcPolicy::MpcPolicy(const MpcConfig& cfg) : cfg_{cfg}, coalesce_{cfg.settle_window} {}

void MpcPolicy::set_level(std::uint32_t level, Time now, const char* why) {
  if (level == level_) return;
  const std::uint32_t before = level_;
  level_ = level;
  ++adjustments_;
  if (counters_ != nullptr) {
    counters_->counter(obs::names::kControlLevelChanges).add();
    counters_->gauge(obs::names::kControlThrottleLevel)
        .set(static_cast<double>(level_));
  }
  if (trace_.enabled()) {
    trace_.instant(now, obs::names::kCatControl, why, {{"from", before}, {"to", level_}});
  }
}

void MpcPolicy::on_epoch(const Reading& reading, Time now) {
  const double t_now = reading.sensed.value();
  if (!has_prev_ || now <= prev_time_) {
    prev_reading_c_ = t_now;
    prev_time_ = now;
    has_prev_ = true;
    return;
  }
  const double dt_ms = (now - prev_time_).as_ms();
  const double alpha = std::exp(-dt_ms / cfg_.rc.tau_ms);
  // alpha -> 1 means the interval carries no steady-state information.
  if (1.0 - alpha > 1e-9) {
    const double raw = rc_infer_steady(prev_reading_c_, t_now, alpha);
    t_ss_est_ = has_estimate_ ? t_ss_est_ + cfg_.smoothing * (raw - t_ss_est_) : raw;
    has_estimate_ = true;
  }
  prev_reading_c_ = t_now;
  prev_time_ = now;
  if (!has_estimate_) return;
  if (counters_ != nullptr) counters_->counter(obs::names::kControlMpcRollouts).add();

  // The estimate reflects heating at the level currently in force; divide its
  // heat multiplier out to recover the unthrottled steady rise, then score
  // every candidate level's predicted peak over the horizon.
  const double rise_now = std::max(0.0, t_ss_est_ - cfg_.rc.ambient_c);
  const double rise_full = rise_now / heat_scale(level_);
  const double limit = cfg_.threshold_c - cfg_.guard_c;
  std::uint32_t chosen = cfg_.levels;  // deepest level if nothing passes
  for (std::uint32_t l = 0; l <= cfg_.levels; ++l) {
    const double t_ss_l = cfg_.rc.ambient_c + rise_full * heat_scale(l);
    if (rc_predict_peak(t_now, t_ss_l, alpha, cfg_.horizon) <= limit) {
      chosen = l;
      break;
    }
  }
  // A reactive warning step pins its floor for the settle window: the model
  // was just proven optimistic, so do not relax below it immediately.
  if (now < hold_until_) chosen = std::max(chosen, level_);
  set_level(chosen, now, "mpc_level");
}

void MpcPolicy::on_thermal_warning(Time now, Time raised_at) {
  ++warnings_;
  if (coalesce_.stale(raised_at)) return;
  coalesce_.mark(raised_at);
  const std::uint32_t step = std::max(1u, cfg_.levels / 8);
  set_level(std::min(cfg_.levels, level_ + step), now, "mpc_warning_step");
  hold_until_ = now + cfg_.settle_window;
}

void MpcPolicy::on_watchdog_engage(Time now) {
  // Shared fail-safe contract: remove at least half the remaining levels,
  // bypassing coalescing (the warning channel is silent).
  const std::uint32_t remaining = cfg_.levels - level_;
  const std::uint32_t step = halving_step(remaining, std::max(1u, cfg_.levels / 8));
  set_level(std::min(cfg_.levels, level_ + std::min(remaining, step)), now,
            "mpc_watchdog_step");
  coalesce_.mark(now);
  hold_until_ = now + cfg_.settle_window;
}

}  // namespace coolpim::control
