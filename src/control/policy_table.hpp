// Offline-fitted policy-table controller.
//
// The imitation-learning shortcut to a predictive controller: instead of
// solving a model online (MPC), sweep the simulator offline, fit a
// temperature -> admitted-PIM-fraction table (tools/fit_policy.py), check the
// table in, and replay it at run time with a clamped bin lookup.  The table
// maps the *sensed* peak DRAM temperature to the fraction of warps allowed
// to emit PIM instructions each epoch; warnings ratchet a multiplicative cap
// below the table's target when the fitted curve proves optimistic, and the
// watchdog applies the shared halving contract to the effective allowance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/degrade.hpp"
#include "control/policy.hpp"

namespace coolpim::control {

/// Uniform-bin lookup table: bin i covers
/// [t_min_c + i*bin_width_c, t_min_c + (i+1)*bin_width_c); readings outside
/// the covered range clamp to the boundary bins.
struct PolicyTable {
  double t_min_c{79.0};
  double bin_width_c{1.0};
  /// Admitted PIM fraction per bin, fitted offline (tools/fit_policy.py and
  /// the checked-in tools/policy_table_default.csv carry the same curve).
  std::vector<double> allow{1.0, 0.9, 0.8, 0.65, 0.5, 0.35, 0.2, 0.1};

  /// Clamped bin lookup; sets `*clamped` when the reading fell outside the
  /// covered range (boundary-bin behaviour, pinned by tests).
  [[nodiscard]] double lookup(double temp_c, bool* clamped = nullptr) const;

  /// Throws ConfigError unless bins are non-empty, the width positive, and
  /// every entry in (0, 1].
  void validate() const;

  bool operator==(const PolicyTable&) const = default;
};

/// The compiled-in default curve (same values as the struct initializers).
[[nodiscard]] PolicyTable default_policy_table();

/// Load a fitted table from CSV ("temp_c,allow" rows, uniformly spaced
/// ascending temperatures, '#' comments); throws ConfigError on malformed
/// input.  The format is what tools/fit_policy.py emits.
[[nodiscard]] PolicyTable load_policy_table(const std::string& path);

struct PolicyTableConfig {
  PolicyTable table{};
  /// Multiplicative cap reduction per accepted (non-stale) warning.
  double reduction_step{0.25};
  /// Smallest effective allowance (never stall PIM completely).
  double floor{0.05};
  Time settle_window{Time::ms(2.5)};
  Time throttle_delay{Time::us(1.0)};
};

class TablePolicy final : public Policy {
 public:
  explicit TablePolicy(const PolicyTableConfig& cfg);

  void on_epoch(const Reading& reading, Time now) override;
  using Policy::on_thermal_warning;
  void on_thermal_warning(Time now, Time raised_at) override;
  void on_watchdog_engage(Time now) override;

  bool acquire_block(Time) override { return true; }
  void release_block(Time) override {}
  [[nodiscard]] double pim_warp_fraction(Time) const override { return effective_allow(); }
  [[nodiscard]] std::string_view name() const override { return "Policy-Table"; }
  [[nodiscard]] Time throttle_delay() const override { return cfg_.throttle_delay; }
  [[nodiscard]] std::uint64_t adjustments() const override { return adjustments_; }

  /// Level is the denied fraction in milli-units so one warning step is
  /// always visible in the integer contract metric.
  [[nodiscard]] std::uint32_t throttle_level() const override;
  [[nodiscard]] std::uint32_t max_throttle_level() const override { return 1000; }
  [[nodiscard]] std::uint32_t saturation_level() const override;

  /// min(table target, warning-ratcheted cap) -- what the engine sees.
  [[nodiscard]] double effective_allow() const { return std::min(target_, cap_); }
  [[nodiscard]] double warning_cap() const { return cap_; }

 private:
  PolicyTableConfig cfg_;
  double target_{1.0};  // table lookup of the latest reading
  double cap_{1.0};     // reactive ratchet, only ever lowered
  WarningCoalescer coalesce_;
  std::uint64_t adjustments_{0};
  std::uint64_t warnings_{0};
};

}  // namespace coolpim::control
