#include "control/registry.hpp"

#include "common/error.hpp"
#include "control/baselines.hpp"

namespace coolpim::control {

bool policy_from_name(std::string_view name, sys::Scenario& out) {
  for (const PolicyInfo& p : kRegisteredPolicies) {
    if (p.cli_name == name) {
      out = p.scenario;
      return true;
    }
  }
  return false;
}

std::string policy_names() {
  std::string names;
  for (const PolicyInfo& p : kRegisteredPolicies) {
    if (!names.empty()) names += ", ";
    names += p.cli_name;
  }
  return names;
}

std::unique_ptr<Policy> make_policy(const PolicyBuild& build) {
  switch (build.scenario) {
    case sys::Scenario::kNonOffloading:
      return std::make_unique<NonOffloadingPolicy>();
    case sys::Scenario::kNaiveOffloading:
    case sys::Scenario::kIdealThermal:
      return std::make_unique<NaivePolicy>();
    case sys::Scenario::kCoolPimSw:
      return std::make_unique<core::SwDynT>(build.sw);
    case sys::Scenario::kCoolPimHw:
      return std::make_unique<core::HwDynT>(build.hw);
    case sys::Scenario::kBwThrottle:
      return std::make_unique<core::BwThrottleController>(build.bw);
    case sys::Scenario::kMpc:
      return std::make_unique<MpcPolicy>(build.mpc);
    case sys::Scenario::kPolicyTable:
      return std::make_unique<TablePolicy>(build.table);
  }
  throw ConfigError("unknown scenario");
}

}  // namespace coolpim::control
