// The controller-zoo registry: a policy is data -- a named, registrable
// factory keyed by scenario, with one uniform build entry point.
//
// The system layer populates a PolicyBuild from its SystemConfig plus the
// workload analysis (Eq. 1 inputs) and asks make_policy() for the scenario's
// controller; apps and RunConfig translate the --policy / COOLPIM_POLICY
// vocabulary through policy_from_name().  kRegisteredPolicies is iterable so
// the contract suite (tests/test_policy_contract.cpp) covers every throttling
// policy automatically -- registering a sixth policy here enrolls it in the
// conformance tests without touching them.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "control/mpc.hpp"
#include "control/policy.hpp"
#include "control/policy_table.hpp"
#include "core/bw_throttle.hpp"
#include "core/hw_dynt.hpp"
#include "core/sw_dynt.hpp"
#include "sys/scenario.hpp"

namespace coolpim::control {

/// Everything any zoo member may need; the system layer fills in the slices
/// its scenario uses and make_policy() picks the right one.
struct PolicyBuild {
  sys::Scenario scenario{sys::Scenario::kCoolPimHw};
  core::SwDynTConfig sw{};
  core::HwDynTConfig hw{};
  core::BwThrottleConfig bw{};
  MpcConfig mpc{};
  PolicyTableConfig table{};
};

struct PolicyInfo {
  std::string_view cli_name;  // --policy / COOLPIM_POLICY vocabulary
  sys::Scenario scenario;
};

/// Every registered *throttling* policy (baselines are scenarios, not
/// selectable policies).  The contract suite iterates this array.
inline constexpr PolicyInfo kRegisteredPolicies[] = {
    {"sw-dynt", sys::Scenario::kCoolPimSw},
    {"hw-dynt", sys::Scenario::kCoolPimHw},
    {"bw-throttle", sys::Scenario::kBwThrottle},
    {"mpc", sys::Scenario::kMpc},
    {"policy-table", sys::Scenario::kPolicyTable},
};

/// Resolve a registered policy name; returns false (leaving `out` untouched)
/// for an unknown name.
[[nodiscard]] bool policy_from_name(std::string_view name, sys::Scenario& out);

/// Comma-separated registered names, for --help and error messages.
[[nodiscard]] std::string policy_names();

/// Build the scenario's policy (baseline scenarios included).
[[nodiscard]] std::unique_ptr<Policy> make_policy(const PolicyBuild& build);

}  // namespace coolpim::control
