#include "control/policy_table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/names.hpp"

namespace coolpim::control {

double PolicyTable::lookup(double temp_c, bool* clamped) const {
  const double offset = (temp_c - t_min_c) / bin_width_c;
  if (clamped != nullptr) {
    *clamped = offset < 0.0 || offset >= static_cast<double>(allow.size());
  }
  if (offset < 0.0) return allow.front();
  const auto bin = static_cast<std::size_t>(offset);
  if (bin >= allow.size()) return allow.back();
  return allow[bin];
}

void PolicyTable::validate() const {
  COOLPIM_REQUIRE(!allow.empty(), "policy table must have at least one bin");
  COOLPIM_REQUIRE(bin_width_c > 0.0, "policy table bin width must be positive");
  for (const double a : allow) {
    COOLPIM_REQUIRE(a > 0.0 && a <= 1.0, "policy table entries must be in (0, 1]");
  }
}

PolicyTable default_policy_table() { return PolicyTable{}; }

PolicyTable load_policy_table(const std::string& path) {
  std::ifstream in{path};
  COOLPIM_REQUIRE(in.good(), "cannot open policy table '" + path + "'");
  PolicyTable table;
  table.allow.clear();
  std::vector<double> temps;
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream ls{line.substr(start)};
    std::string temp_field, allow_field;
    COOLPIM_REQUIRE(std::getline(ls, temp_field, ',') && std::getline(ls, allow_field),
                    "policy table '" + path + "': expected 'temp_c,allow' rows");
    try {
      temps.push_back(std::stod(temp_field));
      table.allow.push_back(std::stod(allow_field));
    } catch (const std::exception&) {
      throw ConfigError("policy table '" + path + "': malformed number in '" + line + "'");
    }
  }
  COOLPIM_REQUIRE(!temps.empty(), "policy table '" + path + "' has no data rows");
  table.t_min_c = temps.front();
  if (temps.size() > 1) {
    table.bin_width_c = temps[1] - temps[0];
    for (std::size_t i = 1; i < temps.size(); ++i) {
      const double width = temps[i] - temps[i - 1];
      COOLPIM_REQUIRE(std::abs(width - table.bin_width_c) < 1e-9 * std::max(1.0, table.bin_width_c),
                      "policy table '" + path + "': temperatures must be uniformly spaced");
    }
  }
  table.validate();
  return table;
}

TablePolicy::TablePolicy(const PolicyTableConfig& cfg)
    : cfg_{cfg}, coalesce_{cfg.settle_window} {
  cfg_.table.validate();
  COOLPIM_REQUIRE(cfg_.floor > 0.0 && cfg_.floor <= 1.0, "table floor must be in (0, 1]");
  COOLPIM_REQUIRE(cfg_.reduction_step > 0.0 && cfg_.reduction_step < 1.0,
                  "table reduction step must be in (0, 1)");
}

std::uint32_t TablePolicy::throttle_level() const {
  return static_cast<std::uint32_t>(std::lround((1.0 - effective_allow()) * 1000.0));
}

std::uint32_t TablePolicy::saturation_level() const {
  return static_cast<std::uint32_t>(std::lround((1.0 - cfg_.floor) * 1000.0));
}

void TablePolicy::on_epoch(const Reading& reading, Time now) {
  const std::uint32_t before = throttle_level();
  bool clamped = false;
  target_ = cfg_.table.lookup(reading.sensed.value(), &clamped);
  if (counters_ != nullptr && clamped) {
    counters_->counter(obs::names::kControlTableClamps).add();
  }
  const std::uint32_t after = throttle_level();
  if (after != before) {
    ++adjustments_;
    if (counters_ != nullptr) {
      counters_->counter(obs::names::kControlLevelChanges).add();
      counters_->gauge(obs::names::kControlThrottleLevel).set(static_cast<double>(after));
    }
    if (trace_.enabled()) {
      trace_.instant(now, obs::names::kCatControl, "table_level",
                     {{"from", before}, {"to", after}});
    }
  }
}

void TablePolicy::on_thermal_warning(Time now, Time raised_at) {
  ++warnings_;
  if (coalesce_.stale(raised_at)) return;
  coalesce_.mark(raised_at);
  const double before = effective_allow();
  cap_ = std::max(cfg_.floor, before * (1.0 - cfg_.reduction_step));
  ++adjustments_;
  if (trace_.enabled()) {
    trace_.instant(now, obs::names::kCatControl, "table_warning_cap",
                   {{"from", before}, {"to", effective_allow()}});
  }
}

void TablePolicy::on_watchdog_engage(Time now) {
  // Shared fail-safe contract: halve the effective allowance (not just the
  // cap -- the table target may already sit below it), bypassing coalescing.
  const double before = effective_allow();
  cap_ = halved_fraction(before, cfg_.floor);
  coalesce_.mark(now);
  ++adjustments_;
  if (trace_.enabled()) {
    trace_.instant(now, obs::names::kCatControl, "table_watchdog_cap",
                   {{"from", before}, {"to", effective_allow()}});
  }
}

}  // namespace coolpim::control
