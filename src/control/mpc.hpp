// MPC-style predictive throttling policy.
//
// The reactive CoolPIM controllers wait for an ERRSTAT warning, which is why
// measured temperature rides the 85 C ceiling (paper Fig. 13).  This policy
// instead rolls the stack's calibrated first-order RC thermal response
// forward K epochs every epoch and picks the *least* throttled of its
// discrete offload levels whose predicted peak stays under the ceiling:
//
//   T_{k+1} = T_ss(level) + (T_k - T_ss(level)) * alpha,   alpha = e^(-dt/tau)
//
// The steady-state target T_ss is estimated online from consecutive sensor
// readings (two points of an exponential determine its asymptote) and EMA
// smoothed; throttling scales the PIM-attributable share of the rise above
// ambient.  Warnings still work as a reactive fallback (model mismatch), and
// the watchdog contract is the shared halving step on the remaining levels.
// The policy is draw-free and deterministic: runner results are bit-identical
// at any --jobs value.
#pragma once

#include <cstdint>

#include "control/degrade.hpp"
#include "control/policy.hpp"

namespace coolpim::control {

/// First-order RC model of the HMC stack (thermal/hmc_thermal.hpp's
/// calibrated response: tau ~ 1.5 ms with the default heat-capacity scale).
struct RcParams {
  double tau_ms{1.5};
  double ambient_c{25.0};
  /// Share of the steady-state rise above ambient attributable to PIM
  /// traffic, i.e. removable by throttling to the deepest level.
  double pim_heat_fraction{0.6};
};

struct MpcConfig {
  std::uint32_t levels{16};   // discrete offload levels (0 = unthrottled)
  std::uint32_t horizon{100}; // epochs rolled forward (~1 ms at 10 us epochs,
                              // covering the sensing delay)
  double threshold_c{85.0};   // the ceiling the prediction must respect
  double guard_c{1.0};        // margin under the ceiling (sensor lag slack)
  double smoothing{0.25};     // EMA weight for the online T_ss estimate
  Time settle_window{Time::ms(2.5)};  // reactive-fallback coalescing window
  Time throttle_delay{Time::us(1.0)};
  RcParams rc{};
};

/// Forward solve of the RC recurrence: peak temperature over `horizon` steps
/// starting from `t0_c` and approaching `t_ss_c` with per-step factor
/// `alpha`.  Exposed so tests can pin the rollout against a hand computation.
[[nodiscard]] double rc_predict_peak(double t0_c, double t_ss_c, double alpha,
                                     unsigned horizon);

/// Online steady-state estimate from two consecutive readings of an
/// exponential approach: T_now = T_ss + (T_prev - T_ss) * alpha.
[[nodiscard]] double rc_infer_steady(double t_prev_c, double t_now_c, double alpha);

class MpcPolicy final : public Policy {
 public:
  explicit MpcPolicy(const MpcConfig& cfg);

  void on_epoch(const Reading& reading, Time now) override;
  using Policy::on_thermal_warning;
  void on_thermal_warning(Time now, Time raised_at) override;
  void on_watchdog_engage(Time now) override;

  bool acquire_block(Time) override { return true; }
  void release_block(Time) override {}
  [[nodiscard]] double pim_warp_fraction(Time) const override { return allow(level_); }
  [[nodiscard]] std::string_view name() const override { return "CoolPIM (MPC)"; }
  [[nodiscard]] Time throttle_delay() const override { return cfg_.throttle_delay; }
  [[nodiscard]] std::uint64_t adjustments() const override { return adjustments_; }

  [[nodiscard]] std::uint32_t throttle_level() const override { return level_; }
  [[nodiscard]] std::uint32_t max_throttle_level() const override { return cfg_.levels; }

  /// Steady-state estimate currently driving the rollout (C above which the
  /// model believes the unthrottled device would settle).
  [[nodiscard]] double steady_estimate_c() const { return t_ss_est_; }

 private:
  [[nodiscard]] double allow(std::uint32_t level) const {
    return static_cast<double>(cfg_.levels - level) / static_cast<double>(cfg_.levels);
  }
  /// Heating multiplier of a level: 1 at level 0, (1 - pim_heat_fraction)
  /// at the deepest level.
  [[nodiscard]] double heat_scale(std::uint32_t level) const {
    return 1.0 - cfg_.rc.pim_heat_fraction * (1.0 - allow(level));
  }
  void set_level(std::uint32_t level, Time now, const char* why);

  MpcConfig cfg_;
  std::uint32_t level_{0};
  WarningCoalescer coalesce_;
  Time hold_until_{Time::zero()};  // reactive steps pin the level this long
  double t_ss_est_{0.0};
  bool has_estimate_{false};
  double prev_reading_c_{0.0};
  Time prev_time_{Time::zero()};
  bool has_prev_{false};
  std::uint64_t adjustments_{0};
  std::uint64_t warnings_{0};
};

}  // namespace coolpim::control
