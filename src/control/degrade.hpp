// Shared degrade mechanics for the controller zoo.
//
// Every reactive policy coalesces thermal warnings on the device's *raise*
// time (one excursion -> one reduction step, even when the fault layer
// delivers delayed or out-of-order duplicates) and implements the watchdog's
// fail-safe contract as a halving step.  Before the zoo these three lines
// were duplicated across SW-DynT, HW-DynT and BW-Throttle; the contract is
// now implemented once and pinned by tests/test_policy_contract.cpp.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.hpp"

namespace coolpim::control {

/// Warning coalescing keyed on the raise time.  `stale()` and `mark()` are
/// deliberately separate (not one mutating accept()) because SW-DynT checks
/// staleness before its pending-interrupt guard and only commits the window
/// start when the step is actually scheduled.
class WarningCoalescer {
 public:
  explicit WarningCoalescer(Time window) : window_{window} {}

  /// True when `raised_at` falls inside the window opened by the last
  /// marked warning: a duplicate of an already-handled excursion.
  [[nodiscard]] bool stale(Time raised_at) const {
    return marked_once_ && raised_at - last_marked_ < window_;
  }

  /// Open a new coalescing window at `raised_at` (the accepted warning).
  void mark(Time raised_at) {
    last_marked_ = raised_at;
    marked_once_ = true;
  }

  [[nodiscard]] Time window() const { return window_; }

 private:
  Time window_;
  Time last_marked_{Time::ps(-1)};
  bool marked_once_{false};
};

/// Watchdog fail-safe step on an integer allowance (token-pool size, enabled
/// warps, remaining MPC levels): remove at least half of what is left, and
/// never less than one regular control step.  Halving converges in a few
/// engagements even when every warning is lost.
[[nodiscard]] constexpr std::uint32_t halving_step(std::uint32_t current,
                                                   std::uint32_t min_step) {
  return std::max(min_step, current / 2);
}

/// The same fail-safe on a fractional allowance (admitted demand, table
/// target), clamped to the policy's floor.
[[nodiscard]] constexpr double halved_fraction(double current, double floor) {
  return std::max(floor, current * 0.5);
}

}  // namespace coolpim::control
