// The controller zoo's uniform contract: a throttling policy is data.
//
// `control::Policy` extends the engine-facing core::ThrottleController with
// the hooks the full-system loop drives every epoch, plus a queryable
// throttle level so benches, tests and observability can compare policies
// without knowing their mechanism (token pool, warp count, admitted
// fraction, MPC level...).  Concrete policies register by name in
// control/registry.hpp; tests/test_policy_contract.cpp pins the invariants
// every registered policy must keep (DESIGN.md section 11):
//
//  * throttle_level() stays in [0, max_throttle_level()] at all times;
//  * consecutive thermal warnings never *decrease* the level, and a stale
//    delayed duplicate (same raise time) never applies a second step;
//  * on_watchdog_engage() degrades the remaining allowance by at least half
//    (or to the policy's saturation level, whichever binds first);
//  * results are bit-identical at any --jobs value (policies draw no RNG).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "core/controller.hpp"
#include "obs/counters.hpp"

namespace coolpim::control {

/// Host-visible state handed to the policy once per simulation epoch: the
/// *sensed* peak DRAM temperature (thermal delay applied, fault conditioning
/// included when the fault layer is active).  Reactive policies ignore it;
/// predictive policies act on it before any warning fires.
struct Reading {
  Celsius sensed{0.0};
};

class Policy : public core::ThrottleController {
 public:
  /// Per-epoch observation hook, called by the system loop right before
  /// warning delivery.  Default: no-op (purely reactive policy), so the
  /// pre-zoo scenarios stay bit-identical to their goldens.
  virtual void on_epoch(const Reading& /*reading*/, Time /*now*/) {}

  /// Current throttle depth: 0 = unthrottled, max_throttle_level() = the
  /// policy's strongest setting.  Units are policy-specific (blocks removed,
  /// warps disabled, admittance millis...); only the ordering is contractual.
  [[nodiscard]] virtual std::uint32_t throttle_level() const = 0;
  [[nodiscard]] virtual std::uint32_t max_throttle_level() const = 0;

  /// Highest level the degrade paths (warnings, watchdog) can actually reach;
  /// policies with an admittance floor saturate short of max_throttle_level().
  [[nodiscard]] virtual std::uint32_t saturation_level() const {
    return max_throttle_level();
  }

  /// Attach the counter registry (observation only, like set_trace()).
  void set_counters(obs::CounterRegistry* counters) { counters_ = counters; }

 protected:
  obs::CounterRegistry* counters_{nullptr};
};

}  // namespace coolpim::control
