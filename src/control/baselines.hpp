// Baseline (non-throttling) policies: the paper's naive-offloading and
// non-offloading configurations, expressed as zoo members so the registry
// can build every scenario through one factory.  Neither ever throttles, so
// their level is fixed at 0 of 0.
#pragma once

#include "control/policy.hpp"
#include "obs/names.hpp"

namespace coolpim::control {

/// Offloads everything, ignores warnings: the paper's naive-offloading
/// configuration (PEI-style, no source control).
class NaivePolicy final : public Policy {
 public:
  using Policy::on_thermal_warning;
  void on_thermal_warning(Time now, Time /*raised_at*/) override {
    ++warnings_;
    trace_.instant(now, obs::names::kCatCore, "warning_ignored");
  }
  bool acquire_block(Time) override { return true; }
  void release_block(Time) override {}
  [[nodiscard]] double pim_warp_fraction(Time) const override { return 1.0; }
  [[nodiscard]] std::string_view name() const override { return "naive-offloading"; }
  [[nodiscard]] Time throttle_delay() const override { return Time::zero(); }
  [[nodiscard]] std::uint32_t throttle_level() const override { return 0; }
  [[nodiscard]] std::uint32_t max_throttle_level() const override { return 0; }
  [[nodiscard]] std::uint64_t warnings_seen() const { return warnings_; }

 private:
  std::uint64_t warnings_{0};
};

/// Never offloads: the non-offloading baseline.
class NonOffloadingPolicy final : public Policy {
 public:
  using Policy::on_thermal_warning;
  void on_thermal_warning(Time, Time) override {}
  bool acquire_block(Time) override { return false; }
  void release_block(Time) override {}
  [[nodiscard]] double pim_warp_fraction(Time) const override { return 0.0; }
  [[nodiscard]] std::string_view name() const override { return "non-offloading"; }
  [[nodiscard]] Time throttle_delay() const override { return Time::zero(); }
  [[nodiscard]] std::uint32_t throttle_level() const override { return 0; }
  [[nodiscard]] std::uint32_t max_throttle_level() const override { return 0; }
};

}  // namespace coolpim::control
