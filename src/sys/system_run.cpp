#include "sys/system_run.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "control/registry.hpp"
#include "hmc/link_model.hpp"
#include "hmc/packet.hpp"
#include "obs/names.hpp"

namespace coolpim::sys {

namespace {

std::unique_ptr<control::Policy> make_controller(const SystemConfig& cfg,
                                                 const graph::WorkloadProfile& workload,
                                                 const hmc::LinkModel& link,
                                                 double naive_rate_estimate) {
  control::PolicyBuild build;
  build.scenario = cfg.scenario;
  build.sw.control_factor = cfg.sw_control_factor;
  build.sw.eq1.max_blocks = static_cast<std::uint32_t>(cfg.gpu.max_resident_blocks());
  build.sw.eq1.pim_intensity = workload.pim_intensity();
  build.sw.eq1.divergent_warp_ratio = workload.divergence_ratio();
  build.sw.eq1.target_rate_op_per_ns = cfg.target_rate_op_per_ns;
  build.sw.eq1.margin_blocks = cfg.eq1_margin_blocks;
  // Peak PIM rate: the link FLIT budget divided by 3 FLITs per op.
  build.sw.eq1.pim_peak_rate_op_per_ns =
      link.flits_per_sec() / hmc::flit_cost(hmc::TransactionType::kPimNoReturn).total() * 1e-9;
  build.sw.eq1.estimated_naive_rate_op_per_ns = naive_rate_estimate;
  build.hw.max_warps_per_sm = static_cast<std::uint32_t>(cfg.gpu.max_warps_per_sm);
  build.hw.control_factor = cfg.hw_control_factor;
  build.mpc = cfg.mpc;
  build.table = cfg.policy_table;
  return control::make_policy(build);
}

}  // namespace

SystemRun::SystemRun(SystemConfig cfg, const graph::WorkloadProfile& workload)
    : cfg_{std::move(cfg)},
      backend_{hmc::make_backend(
          hmc::BackendBuild{cfg_.backend, cfg_.hmc, cfg_.policy, cfg_.run_seed, {}})},
      therm_{thermal::hmc20_thermal_config(cfg_.cooling)} {
  COOLPIM_REQUIRE(workload.graph_vertices > 0, "workload missing graph metadata");

  // Observability: null handles when no observer is attached; every record
  // call below degenerates to one predictable branch.
  if (cfg_.observer != nullptr) {
    tr_ = cfg_.observer->trace();
    ctr_ = &cfg_.observer->counters;
  }
  backend_->set_observer(tr_, ctr_);

  const hmc::LinkModel& link = backend_->link();
  ideal_ = cfg_.scenario == Scenario::kIdealThermal;

  // Property footprint: two 4-byte property arrays (e.g. level + frontier
  // flags) over the vertices is representative of the workloads here.
  gpu::CacheHitModel cache{cfg_.gpu,
                           static_cast<std::uint64_t>(workload.graph_vertices) * 8,
                           1 << 20, cfg_.run_seed};
  auto launches = gpu::build_launches(workload, cfg_.gpu, cache);

  // Static analysis for Eq. 1's PTP initialization: estimate the
  // un-throttled offloading rate from the launch totals and the link budget
  // (the "simple trial run" of the paper).
  double est_flits = 0.0, est_instr = 0.0, est_atomics = 0.0;
  for (const auto& l : launches) {
    est_flits += 6.0 * (l.mem.read_txns + l.mem.write_txns) + 3.0 * l.mem.atomic_ops;
    est_instr += l.warp_instructions;
    est_atomics += l.mem.atomic_ops;
  }
  const double est_time =
      std::max(est_flits / link.flits_per_sec(), est_instr / cfg_.gpu.issue_rate_per_sec());
  const double naive_rate_estimate =
      est_time > 0.0 ? est_atomics / est_time * 1e-9 : 0.0;

  controller_ = make_controller(cfg_, workload, link, naive_rate_estimate);
  controller_->set_trace(tr_);
  controller_->set_counters(ctr_);
  engine_.emplace(cfg_.gpu, std::move(launches), *controller_);
  engine_->set_observer(tr_, ctr_);

  therm_.set_observer(tr_, ctr_, cfg_.policy.warning_threshold);
  // Initial thermal state: the device has been serving the surrounding
  // application's regular (non-PIM) traffic at full link bandwidth, so start
  // from that steady state (~81 C with commodity cooling) unless overridden.
  if (cfg_.start_temp_override > 0.0) {
    power::OperatingPoint warm{};
    warm.link_raw = link.config().link_raw_total();
    warm.dram_internal = link.max_data_bandwidth();
    // Scale the warm operating point so the steady peak matches the override
    // (used by transient experiments that start just below the warning).
    therm_.apply_power(power::compute_power(cfg_.energy, warm));
    therm_.solve_steady();
    double lo = 0.0, hi = 4.0;
    for (int i = 0; i < 24; ++i) {
      const double k = 0.5 * (lo + hi);
      power::OperatingPoint scaled{};
      scaled.link_raw = warm.link_raw * k;
      scaled.dram_internal = warm.dram_internal * k;
      therm_.apply_power(power::compute_power(cfg_.energy, scaled));
      therm_.solve_steady();
      if (therm_.peak_dram().value() < cfg_.start_temp_override) lo = k; else hi = k;
    }
  } else {
    power::OperatingPoint warm{};
    warm.link_raw = link.config().link_raw_total();
    warm.dram_internal = link.max_data_bandwidth();
    therm_.apply_power(power::compute_power(cfg_.energy, warm));
    therm_.solve_steady();
  }

  sensor_.emplace(cfg_.thermal_delay, therm_.peak_dram());

  // Fault layer: instantiated only when the config enables it, so fault-free
  // runs execute the exact pre-fault code path -- no extra RNG draws, no
  // behavioural drift from the pre-fault-layer simulator (DESIGN.md sect 10).
  faulty_ = cfg_.fault.enabled() && !ideal_;
  if (faulty_) {
    faults_.emplace(cfg_.fault, cfg_.run_seed);
    faults_->set_observer(tr_, ctr_);
    if (cfg_.fault.watchdog.enabled) {
      wdog_.emplace(cfg_.fault.watchdog, cfg_.policy.warning_threshold);
      wdog_->set_observer(tr_, ctr_);
    }
  }

  result_.workload = workload.name;
  result_.scenario = std::string(to_string(cfg_.scenario));

  if (cfg_.warm_start) {
    phase_ = Phase::kWarmupPass;
    prev_peak_ = therm_.peak_dram();
    prev_adjustments_ = controller_->adjustments();
    rep_ = 0;
  } else {
    phase_ = Phase::kMeasuredBegin;
  }
}

bool SystemRun::advance() {
  if (awaiting_step_) {
    awaiting_step_ = false;
    post_step();
  }
  for (;;) {
    if (in_pass_) {
      if (pass_epoch()) {
        awaiting_step_ = true;
        return true;
      }
      end_pass();
      continue;
    }
    switch (phase_) {
      case Phase::kWarmupPass:
        // Warm-up: the application executes the workload's kernels
        // back-to-back, so the measured pass should start from the
        // quasi-steady thermal and controller state of sustained execution.
        // The stack's thermal time constant (~1.5 ms) is short relative to a
        // pass, so transient warm-up passes converge within a few
        // repetitions.  Skipped when warm_start is off (transient
        // experiments).
        begin_pass(cfg_.warmup_epoch, /*measure=*/false);
        phase_ = Phase::kWarmupJump;
        continue;
      case Phase::kWarmupJump: {
        warmup_jump();
        const bool thermally_stable =
            std::abs(pass_out_.peak - prev_peak_) < cfg_.warmup_tolerance_c;
        const bool controller_quiet = controller_->adjustments() == prev_adjustments_;
        if (rep_ > 0 && thermally_stable && controller_quiet) {
          phase_ = Phase::kMeasuredBegin;
          continue;
        }
        prev_peak_ = pass_out_.peak;
        prev_adjustments_ = controller_->adjustments();
        ++rep_;
        phase_ = rep_ < cfg_.max_warmup_reps ? Phase::kWarmupPass : Phase::kMeasuredBegin;
        continue;
      }
      case Phase::kMeasuredBegin:
        result_.start_dram_temp = therm_.peak_dram();
        engine_->stats().reset();  // warm-up traffic is not part of the measurement
        measured_start_ = now_;
        begin_pass(cfg_.epoch, /*measure=*/true);
        phase_ = Phase::kFinalize;
        continue;
      case Phase::kFinalize:
        finalize();
        phase_ = Phase::kDone;
        return false;
      case Phase::kDone:
        return false;
    }
  }
}

void SystemRun::begin_pass(Time epoch, bool measure) {
  engine_->restart();
  pass_ = PassState{};
  pass_.epoch = epoch;
  pass_.measure = measure;
  pass_.start = now_;
  tr_.begin(now_, obs::names::kCatSim, measure ? "measured_pass" : "warmup_pass",
            {{"epoch_us", epoch.as_us()}});
  pass_.peak = therm_.peak_dram();
  in_pass_ = true;
}

bool SystemRun::pass_epoch() {
  while (!engine_->finished()) {
    COOLPIM_REQUIRE(now_ - pass_.start < cfg_.max_time, "run exceeded max_time");
    Time left = pass_.epoch;
    double pim_ops = 0.0, reads = 0.0, writes = 0.0;
    // Inner loop: launch overheads can split an epoch.
    int spins = 0;
    while (left > Time::zero() && !engine_->finished()) {
      COOLPIM_ASSERT_MSG(++spins < 10000, "epoch failed to make progress");
      const Celsius temp = ideal_ ? therm_.config().ambient : therm_.peak_dram();
      const auto demand = engine_->plan(now_, left);
      pass_.dem_reads += demand.reads;
      pass_.dem_writes += demand.writes;
      pass_.dem_pims += demand.pim_ops;
      const auto service = backend_->serve(demand, left, temp);
      if (service.shut_down) {
        // Conservative device behaviour: stop, cool, lose data (paper
        // III-A.2); account the recovery and restart the pass cold.
        result_.shut_down = true;
        tr_.instant(now_, obs::names::kCatSys, "thermal_shutdown",
                    {{"recovery_ms", cfg_.shutdown_recovery.as_ms()}});
        if (ctr_ != nullptr) ctr_->counter(obs::names::kSysShutdowns).add();
        now_ += cfg_.shutdown_recovery;
        therm_.reset();
        engine_->restart();
        left = pass_.epoch;
        continue;
      }
      const Time used = engine_->commit(now_, left, service);
      pim_ops += service.pim_ops;
      reads += service.reads;
      writes += service.writes;
      now_ += used;
      left -= used;
    }

    const Time step = pass_.epoch - left;
    if (step <= Time::zero()) continue;
    const double secs = step.as_sec();

    // Power from the epoch's served traffic, through the backend's
    // thermal-power hook (the default maps the mix via its LinkModel,
    // matching the pre-contract arithmetic exactly).
    hmc::TransactionMix mix{reads / secs, writes / secs, pim_ops / secs, 0.0};
    const hmc::ThermalPower tp = backend_->thermal_power(mix);
    power::OperatingPoint op;
    op.link_raw = tp.link_raw;
    op.dram_internal = tp.dram_internal;
    op.pim_ops_per_sec = mix.pim_per_sec;
    const int level =
        ideal_ ? 0 : std::min(2, static_cast<int>(cfg_.policy.phase(therm_.peak_dram())));
    const auto pb = power::compute_power(cfg_.energy, op, level);
    therm_.apply_power(pb);
    if (tr_.enabled()) {
      // The epoch ran [now - step, now): the HMC serve span covers it, and
      // the thermal model's internal trace clock is re-anchored so its
      // step() span lands on the same interval.
      tr_.complete(now_ - step, step, obs::names::kCatHmc, "serve",
                   {{"reads", reads},
                    {"writes", writes},
                    {"pim_ops", pim_ops},
                    {"derate_level", level}});
    }
    therm_.sync_trace_clock(now_ - step);
    // Yield: the caller advances the thermal model by `step`, then resumes
    // with post_step().
    ep_ = EpochState{};
    ep_.step = step;
    ep_.secs = secs;
    ep_.reads = reads;
    ep_.writes = writes;
    ep_.pim_ops = pim_ops;
    ep_.mix = mix;
    ep_.op = op;
    ep_.pb = pb;
    return true;
  }
  return false;
}

void SystemRun::post_step() {
  const hmc::LinkModel& link = backend_->link();
  const Time step = ep_.step;
  const double secs = ep_.secs;
  // Served-op counters come from the backend's op-accounting hook: every
  // drain emits round(exact total) - emitted-so-far, so totals are a single
  // rounding of the exact sums and backend-comparable by construction.
  const hmc::OpDelta op_delta = backend_->drain_op_delta();
  if (ctr_ != nullptr) {
    ctr_->counter(obs::names::kSysEpochs).add();
    ctr_->counter(obs::names::kHmcServedReads).add(op_delta.reads);
    ctr_->counter(obs::names::kHmcServedWrites).add(op_delta.writes);
    ctr_->counter(obs::names::kHmcServedPimOps).add(op_delta.pim_ops);
  }
  if (pass_.measure) {
    result_.cube_energy_j += ep_.pb.total().value() * secs;
    result_.fan_energy_j += power::cooling(cfg_.cooling).fan_power_watts * secs;
  }
  pass_.tot_raw += ep_.op.link_raw.as_bytes_per_sec() * secs;
  pass_.tot_internal += ep_.op.dram_internal.as_bytes_per_sec() * secs;
  pass_.tot_pim += ep_.pim_ops;

  const Celsius dram = therm_.peak_dram();
  pass_.peak = std::max(pass_.peak, dram);
  sensor_->record(now_, dram);

  // Thermal warnings ride on response packets; the host sees the sensed
  // (delayed) temperature.  With the fault layer active the reading is
  // conditioned (noise / quantization / stuck-at), raised warnings roll
  // their in-flight fate, and the watchdog closes the fail-safe loop.
  if (faulty_) {
    faults_->begin_epoch(now_);
    const Celsius seen = faults_->condition_reading(now_, sensor_->sensed(now_));
    // Per-epoch policy hook: predictive policies act on the (conditioned)
    // sensed reading before any warning fires; a no-op for reactive ones.
    controller_->on_epoch(control::Reading{seen}, now_);
    if (cfg_.policy.warning(seen)) faults_->offer_warning(now_);
    faults_->maybe_spurious(now_);
    for (const auto& d : faults_->collect_due(now_)) {
      if (ctr_ != nullptr) ctr_->counter(obs::names::kSysThermalWarningsDelivered).add();
      controller_->on_thermal_warning(d.at, d.raised_at);
      if (wdog_) wdog_->on_delivery(d.at);
      if (pass_.measure) ++result_.thermal_warnings;
    }
    if (wdog_ && wdog_->tick(now_, seen)) controller_->on_watchdog_engage(now_);
  } else if (!ideal_) {
    const Celsius seen = sensor_->sensed(now_);
    controller_->on_epoch(control::Reading{seen}, now_);
    if (cfg_.policy.warning(seen)) {
      if (ctr_ != nullptr) ctr_->counter(obs::names::kSysThermalWarningsDelivered).add();
      controller_->on_thermal_warning(now_);
      if (pass_.measure) ++result_.thermal_warnings;
    }
  }

  if (pass_.measure) {
    result_.link_data_bytes += link.data_bandwidth(ep_.mix).as_bytes_per_sec() * secs;
    result_.link_raw_bytes += ep_.op.link_raw.as_bytes_per_sec() * secs;
    result_.dram_internal_bytes += ep_.op.dram_internal.as_bytes_per_sec() * secs;
    result_.pim_ops += op_delta.pim_ops;
    if (!ideal_ && cfg_.policy.phase(dram) != hmc::ThermalPhase::kNormal) {
      result_.time_above_normal += step;
    }
    result_.pim_rate.record(now_, ep_.mix.pim_per_sec * 1e-9);
    result_.dram_temp.record(now_, dram.value());
    result_.link_bw.record(now_, link.data_bandwidth(ep_.mix).as_gbps());
    tr_.counter(now_, obs::names::kCatSys, "pim_rate_gops", ep_.mix.pim_per_sec * 1e-9);
    tr_.counter(now_, obs::names::kCatSys, "link_data_gbps",
                link.data_bandwidth(ep_.mix).as_gbps());
    if (ctr_ != nullptr) {
      ctr_->gauge(obs::names::kSysPimRateGops).set(ep_.mix.pim_per_sec * 1e-9);
      ctr_->gauge(obs::names::kSysLinkDataGbps).set(link.data_bandwidth(ep_.mix).as_gbps());
      ctr_->mark(now_);
    }
  }
}

void SystemRun::end_pass() {
  if (pass_.measure) result_.exec_time = now_ - pass_.start;
  pass_out_ = PassOutcome{};
  pass_out_.peak = pass_.peak;
  const double pass_secs = (now_ - pass_.start).as_sec();
  if (pass_secs > 0.0) {
    pass_out_.avg.link_raw = Bandwidth::bytes_per_sec(pass_.tot_raw / pass_secs);
    pass_out_.avg.dram_internal = Bandwidth::bytes_per_sec(pass_.tot_internal / pass_secs);
    pass_out_.avg.pim_ops_per_sec = pass_.tot_pim / pass_secs;
    pass_out_.demand_per_sec.reads = pass_.dem_reads / pass_secs;
    pass_out_.demand_per_sec.writes = pass_.dem_writes / pass_secs;
    pass_out_.demand_per_sec.pim_ops = pass_.dem_pims / pass_secs;
  }
  tr_.end(now_);
  in_pass_ = false;
}

void SystemRun::warmup_jump() {
  // Fast-forward to the sustained equilibrium: the heat sink's own time
  // constant is tens of seconds, far beyond what a pass can move, so solve
  // for the steady state of the pass's average served traffic at the
  // corresponding derate level.  The average is smoothed across repetitions
  // (EMA) to damp the bistable hot/cool ping-pong a single pass average can
  // induce near the derating boundary.
  ema_ = pass_out_.demand_per_sec;
  // Sustained-equilibrium jump: at each candidate derate level, serve the
  // pass's offered demand at that level and solve for the steady state of
  // the *served* traffic under that level's hot-energy penalty.  Accept the
  // coolest self-consistent level (a device whose full-speed steady state is
  // below 85 C never enters the extended range); if no level is consistent
  // the equilibrium straddles the 85 C boundary, which the extended-level
  // solution represents best.
  auto solve_at = [&](int level) {
    const Celsius probe{level == 0 ? 80.0 : (level == 1 ? 90.0 : 100.0)};
    // probe(): what-if serve with no op accounting and no backend state
    // advanced -- the jump is a fast-forward, not served traffic.
    const auto svc = backend_->probe(ema_, Time::sec(1.0), probe);
    power::OperatingPoint op;
    op.link_raw = svc.link_raw;
    op.dram_internal = svc.dram_internal;
    op.pim_ops_per_sec = svc.pim_ops_per_sec;
    therm_.apply_power(power::compute_power(cfg_.energy, op, level));
    therm_.solve_steady();
    return std::min(2, static_cast<int>(cfg_.policy.phase(therm_.peak_dram())));
  };
  bool consistent = false;
  for (int level = 0; level <= 2 && !consistent; ++level) {
    consistent = solve_at(level) == level;
  }
  if (!consistent) (void)solve_at(1);
  // The jump is a fast-forward, not a physical excursion: re-anchor the
  // thermal sensor so stale pre-jump samples cannot trigger warnings.
  sensor_.emplace(cfg_.thermal_delay, therm_.peak_dram());
  sensor_->record(now_, therm_.peak_dram());
}

void SystemRun::finalize() {
  result_.peak_dram_temp = ideal_ ? therm_.config().ambient : pass_out_.peak;
  result_.host_atomics = engine_->stats().counter_value("host_atomics");
  if (tr_.enabled()) {
    // One span per controller over the measured pass so the throttle policy
    // in force is readable directly off the "core" track.
    tr_.complete(measured_start_, now_ - measured_start_, obs::names::kCatCore,
                 controller_->name(),
                 {{"adjustments", controller_->adjustments()},
                  {"warnings_delivered", result_.thermal_warnings}});
  }
  if (faulty_) {
    result_.faults.active = true;
    const auto& fs = faults_->stats();
    result_.faults.warnings_offered = fs.warnings_offered;
    result_.faults.warnings_delivered = fs.warnings_delivered;
    result_.faults.warnings_dropped = fs.warnings_dropped;
    result_.faults.warnings_corrupted = fs.warnings_corrupted;
    result_.faults.retries = fs.retries;
    result_.faults.retry_giveups = fs.retry_giveups;
    result_.faults.spurious_warnings = fs.spurious_warnings;
    result_.faults.link_outages = fs.link_outages;
    if (wdog_) {
      result_.faults.watchdog_engagements = wdog_->engagements();
      result_.faults.watchdog_disengagements = wdog_->disengagements();
    }
  }
  therm_.unbind_lane();  // no-op for scalar runs
}

RunResult SystemRun::take_result() {
  COOLPIM_REQUIRE(phase_ == Phase::kDone, "take_result before the run completed");
  return std::move(result_);
}

}  // namespace coolpim::sys
