// Run-level metrics collected by the full-system model.
#pragma once

#include <cstdint>
#include <string>

#include "common/timeseries.hpp"
#include "common/units.hpp"
#include "hmc/thermal_policy.hpp"

namespace coolpim::sys {

/// Fault-layer accounting for one run.  All-zero (active == false) unless the
/// run's FaultConfig was enabled; deliberately not part of the CSV report
/// schema -- resilience experiments consume it through bench_resilience.
struct FaultSummary {
  bool active{false};
  std::uint64_t warnings_offered{0};
  std::uint64_t warnings_delivered{0};
  std::uint64_t warnings_dropped{0};
  std::uint64_t warnings_corrupted{0};
  std::uint64_t retries{0};
  std::uint64_t retry_giveups{0};
  std::uint64_t spurious_warnings{0};
  std::uint64_t link_outages{0};
  std::uint64_t watchdog_engagements{0};
  std::uint64_t watchdog_disengagements{0};
};

struct RunResult {
  std::string workload;
  std::string scenario;

  Time exec_time{Time::zero()};

  // Traffic totals over the measured pass.
  double link_data_bytes{0.0};
  double link_raw_bytes{0.0};
  double dram_internal_bytes{0.0};
  std::uint64_t pim_ops{0};
  std::uint64_t host_atomics{0};

  // Energy over the measured pass (cube dynamic+background plus cooling fan).
  double cube_energy_j{0.0};
  double fan_energy_j{0.0};

  // Thermal.
  Celsius peak_dram_temp{0.0};
  Celsius start_dram_temp{0.0};
  std::uint64_t thermal_warnings{0};
  bool shut_down{false};
  Time time_above_normal{Time::zero()};  // time spent derated (> 85 C)

  // Fault injection / resilience (inactive on the fault-free path).
  FaultSummary faults{};

  // Sampled traces (Fig. 14-style).
  TimeSeries pim_rate{"pim_rate_op_per_ns"};
  TimeSeries dram_temp{"peak_dram_temp_c"};
  TimeSeries link_bw{"link_data_gbps"};

  [[nodiscard]] double avg_pim_rate_op_per_ns() const {
    const double secs = exec_time.as_sec();
    return secs > 0.0 ? static_cast<double>(pim_ops) / secs * 1e-9 : 0.0;
  }
  [[nodiscard]] double avg_link_data_gbps() const {
    const double secs = exec_time.as_sec();
    return secs > 0.0 ? link_data_bytes / secs * 1e-9 : 0.0;
  }
  /// Total data moved over the links -- Fig. 11's "bandwidth consumption".
  [[nodiscard]] double consumption_bytes() const { return link_raw_bytes; }
  [[nodiscard]] double total_energy_j() const { return cube_energy_j + fan_energy_j; }
};

}  // namespace coolpim::sys
