// Unified run configuration for every CoolPIM entry point.
//
// Apps, benches and examples used to each parse their own slice of the
// COOLPIM_* environment; RunConfig is the one place that vocabulary lives.
// Values resolve with precedence CLI > environment > default:
//
//   RunConfig rc = RunConfig::from_args(&argc, argv, RunConfig::from_env());
//
// from_args() consumes (removes from argv) exactly the flags it recognizes,
// so binaries with their own argument parsing -- google-benchmark included --
// can run it first and hand the remainder on.  Malformed values throw
// ConfigError with the offending name, never silently default.
//
// The fault sub-config (--fault-* / COOLPIM_FAULT_*) is carried whole and
// applied to a SystemConfig with apply_to(); with no fault knob set it is the
// disabled default and apply_to() is a no-op, keeping experiment keys and
// golden results unchanged (see fault/fault_config.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault_config.hpp"
#include "sys/workloads.hpp"

namespace coolpim::sys {

struct SystemConfig;

struct RunConfig {
  /// Runner parallelism; 0 = all hardware threads (COOLPIM_JOBS / --jobs).
  unsigned jobs{0};
  /// Graph scale, 2^scale vertices (COOLPIM_SCALE / --scale, range [8, 24]).
  unsigned scale{18};
  /// Graph-generation seed (COOLPIM_GRAPH_SEED / --graph-seed).
  std::uint64_t graph_seed{1};
  /// Observability sinks (COOLPIM_TRACE|COUNTERS / --trace|--counters).
  std::string trace_path;
  std::string counters_path;
  /// Persistent workload-profile cache dir (COOLPIM_PROFILE_CACHE /
  /// --profile-cache); empty = off.
  std::string profile_cache_dir;
  /// Throttling-policy selection by registered name (COOLPIM_POLICY /
  /// --policy, see control/registry.hpp); empty = keep the scenario the
  /// entry point configured.
  std::string policy;
  /// Fitted policy-table CSV for the policy-table controller
  /// (COOLPIM_POLICY_TABLE / --policy-table); empty = compiled-in default.
  std::string policy_table_path;
  /// HMC service-backend fidelity tier by registered name
  /// (COOLPIM_HMC_BACKEND / --hmc-backend, see hmc/backend.hpp); empty =
  /// keep the entry point's default (epoch-throughput).
  std::string hmc_backend;
  /// Fleet-tier knobs (docs/FLEET.md), consumed by fleet entry points only.
  /// Node count (COOLPIM_FLEET_NODES / --fleet-nodes, range [1, 4096]).
  unsigned fleet_nodes{8};
  /// Open-loop Poisson arrival rate in requests/s (COOLPIM_ARRIVAL_RATE /
  /// --arrival-rate, must be positive).
  double arrival_rate{4000.0};
  /// Fleet balancer by registered name (COOLPIM_BALANCER / --balancer).
  /// Validated against the fleet registry by the fleet layer itself --
  /// sys:: sits below fleet:: and must not link it.
  std::string balancer{"thermal-aware"};
  /// Batched-thermal-solver lane width (COOLPIM_THERMAL_BATCH /
  /// --thermal-batch, range [1, 4096]); how many independent thermal grids a
  /// BatchStackModel advances per SoA sweep pass (docs/PERFORMANCE.md
  /// section 7).
  unsigned thermal_batch{8};
  /// Sweep lane-batching width (COOLPIM_SWEEP_BATCH / --sweep-batch, range
  /// [1, 4096]); > 1 routes runner sweeps through the lock-step executor,
  /// co-advancing that many experiments per worker through one SoA thermal
  /// sweep per epoch (runner/sweep_batch.hpp).  Results are bit-identical to
  /// the scalar path at any width; only wall-clock changes.
  unsigned sweep_batch{1};
  /// DRAM die count for the stack geometry (COOLPIM_STACK_LAYERS /
  /// --stack-layers, range [0, 64]); 0 keeps the entry point's default
  /// geometry, >0 selects an hbm_stack_spec-style stack that tall (16-high
  /// is the HBM-class geometry where the ADI kernel earns its keep).
  unsigned stack_layers{0};
  /// Fault environment (COOLPIM_FAULT_* / --fault-*); default = fault-free.
  fault::FaultConfig fault{};

  bool operator==(const RunConfig&) const = default;

  /// Throws ConfigError on out-of-range values (also run by from_env /
  /// from_args after overlaying).
  void validate() const;

  /// Overlay the COOLPIM_* environment onto `base` (default: defaults).
  [[nodiscard]] static RunConfig from_env(RunConfig base);
  [[nodiscard]] static RunConfig from_env();

  /// Overlay recognized --flags onto `base`, removing them from argv.
  [[nodiscard]] static RunConfig from_args(int* argc, char** argv, RunConfig base);
  [[nodiscard]] static RunConfig from_args(int* argc, char** argv);

  /// The full precedence chain: defaults, then environment, then CLI.
  [[nodiscard]] static RunConfig resolve(int* argc, char** argv) {
    return from_args(argc, argv, from_env());
  }

  /// Copy the RunConfig-owned SystemConfig fields: the fault environment,
  /// the selected policy's scenario, and a loaded policy table.  A no-op
  /// relative to defaults when none of those knobs are set.
  void apply_to(SystemConfig& cfg) const;

  /// WorkloadSet build options implied by this config (jobs + cache dir).
  [[nodiscard]] WorkloadSet::BuildOptions build_options() const;

  /// One-line usage text for the flags from_args() consumes (for --help).
  [[nodiscard]] static std::string flags_help();
};

}  // namespace coolpim::sys
