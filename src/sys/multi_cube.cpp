#include "sys/multi_cube.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "control/registry.hpp"
#include "gpu/engine.hpp"
#include "hmc/link_model.hpp"
#include "hmc/throughput_model.hpp"
#include "thermal/hmc_thermal.hpp"

namespace coolpim::sys {

void MultiCubeConfig::validate() const {
  COOLPIM_REQUIRE(cubes >= 1 && cubes <= 8, "1..8 cubes supported");
  COOLPIM_REQUIRE(atomic_skew >= 0.0 && atomic_skew <= 1.0, "skew must be a fraction");
}

MultiCubeSystem::MultiCubeSystem(MultiCubeConfig cfg) : cfg_{std::move(cfg)} {
  cfg_.validate();
  cfg_.base.gpu.validate();
}

namespace {

/// Per-cube state: its own throughput model and thermal stack.
struct Cube {
  std::unique_ptr<hmc::ThroughputModel> hmc;
  std::unique_ptr<thermal::HmcThermalModel> therm;
  double regular_share{0.0};
  double atomic_share{0.0};
  double served_pim{0.0};
  Celsius peak{0.0};
};

std::unique_ptr<control::Policy> make_controller(const SystemConfig& cfg,
                                                 double naive_rate_estimate) {
  control::PolicyBuild build;
  build.scenario = cfg.scenario;
  build.sw.control_factor = cfg.sw_control_factor;
  build.sw.eq1.max_blocks = static_cast<std::uint32_t>(cfg.gpu.max_resident_blocks());
  build.sw.eq1.target_rate_op_per_ns = cfg.target_rate_op_per_ns;
  build.sw.eq1.margin_blocks = cfg.eq1_margin_blocks;
  build.sw.eq1.estimated_naive_rate_op_per_ns = naive_rate_estimate;
  build.hw.max_warps_per_sm = static_cast<std::uint32_t>(cfg.gpu.max_warps_per_sm);
  build.hw.control_factor = cfg.hw_control_factor;
  build.mpc = cfg.mpc;
  build.table = cfg.policy_table;
  return control::make_policy(build);
}

}  // namespace

MultiCubeResult MultiCubeSystem::run(const graph::WorkloadProfile& workload) {
  COOLPIM_REQUIRE(workload.graph_vertices > 0, "workload missing graph metadata");
  const SystemConfig& base = cfg_.base;
  const bool ideal = base.scenario == Scenario::kIdealThermal;
  const std::size_t n = cfg_.cubes;

  gpu::CacheHitModel cache{base.gpu, static_cast<std::uint64_t>(workload.graph_vertices) * 8};
  auto launches = gpu::build_launches(workload, base.gpu, cache);

  // Eq. 1 trial-run estimate (single aggregate link budget of all cubes).
  const hmc::LinkModel link{base.hmc};
  double est_flits = 0.0, est_instr = 0.0, est_atomics = 0.0;
  double est_reads = 0.0, est_writes = 0.0;
  for (const auto& l : launches) {
    est_flits += 6.0 * (l.mem.read_txns + l.mem.write_txns) + 3.0 * l.mem.atomic_ops;
    est_instr += l.warp_instructions;
    est_atomics += l.mem.atomic_ops;
    est_reads += l.mem.read_txns;
    est_writes += l.mem.write_txns;
  }
  const double est_time = std::max(est_flits / (link.flits_per_sec() * static_cast<double>(n)),
                                   est_instr / base.gpu.issue_rate_per_sec());
  const double naive_rate = est_time > 0.0 ? est_atomics / est_time * 1e-9 : 0.0;

  auto controller = make_controller(base, naive_rate);
  gpu::ExecutionEngine engine{base.gpu, std::move(launches), *controller};

  // Build the cubes.  Regular traffic stripes evenly; atomics follow the
  // skew (cube 0 gets `atomic_skew`, the rest split the remainder).
  std::vector<Cube> cubes(n);
  for (std::size_t i = 0; i < n; ++i) {
    cubes[i].hmc = std::make_unique<hmc::ThroughputModel>(base.hmc, base.policy);
    cubes[i].therm =
        std::make_unique<thermal::HmcThermalModel>(thermal::hmc20_thermal_config(base.cooling));
    cubes[i].regular_share = 1.0 / static_cast<double>(n);
    cubes[i].atomic_share = n == 1 ? 1.0
                            : (i == 0 ? cfg_.atomic_skew
                                      : (1.0 - cfg_.atomic_skew) / static_cast<double>(n - 1));
    // Warm start: each cube at the sustained steady state of ITS share of
    // the workload's un-throttled demand (naive sustained execution of the
    // surrounding application).  Peaks are recorded from measured epochs
    // only, so throttled scenarios can show cooler peaks.
    if (est_time > 0.0) {
      hmc::EpochDemand share;
      share.reads = est_reads / est_time * cubes[i].regular_share;
      share.writes = est_writes / est_time * cubes[i].regular_share;
      share.pim_ops = est_atomics / est_time * cubes[i].atomic_share;
      const auto svc = cubes[i].hmc->serve(share, Time::sec(1.0), Celsius{80.0});
      power::OperatingPoint warm;
      warm.link_raw = svc.link_raw;
      warm.dram_internal = svc.dram_internal;
      warm.pim_ops_per_sec = svc.pim_ops_per_sec;
      cubes[i].therm->apply_power(power::compute_power(base.energy, warm));
      cubes[i].therm->solve_steady();
    }
    cubes[i].peak = Celsius{0.0};
  }

  MultiCubeResult result;
  result.aggregate.workload = workload.name;
  result.aggregate.scenario = std::string(to_string(base.scenario));

  Time now = Time::zero();
  const Time epoch = base.epoch;
  double total_pim = 0.0;

  while (!engine.finished()) {
    COOLPIM_REQUIRE(now < base.max_time, "multi-cube run exceeded max_time");
    const auto demand = engine.plan(now, epoch);

    // Each cube serves its share; the GPU proceeds at the slowest cube.
    double served_fraction = 1.0;
    bool any_warning = false;
    std::vector<hmc::EpochService> services(n);
    for (std::size_t i = 0; i < n; ++i) {
      hmc::EpochDemand share;
      share.reads = demand.reads * cubes[i].regular_share;
      share.writes = demand.writes * cubes[i].regular_share;
      share.pim_ops = demand.pim_ops * cubes[i].atomic_share;
      const Celsius temp = ideal ? Celsius{25.0} : cubes[i].therm->peak_dram();
      services[i] = cubes[i].hmc->serve(share, epoch, temp);
      COOLPIM_REQUIRE(!services[i].shut_down, "cube shut down; sustained load infeasible");
      served_fraction = std::min(served_fraction, services[i].served_fraction);
    }

    // Commit at the slowest cube's pace.
    hmc::EpochService agg{};
    agg.served_fraction = served_fraction;
    agg.pim_ops = demand.pim_ops * served_fraction;
    agg.reads = demand.reads * served_fraction;
    agg.writes = demand.writes * served_fraction;
    const Time used = engine.commit(now, epoch, agg);
    now += used;
    total_pim += agg.pim_ops;

    // Thermal update per cube from its own served share (re-scaled to the
    // committed pace so energy matches the work actually done).
    const double secs = used.as_sec();
    Celsius hottest_now{0.0};
    if (secs > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        hmc::TransactionMix mix{demand.reads * cubes[i].regular_share * served_fraction / secs,
                                demand.writes * cubes[i].regular_share * served_fraction / secs,
                                demand.pim_ops * cubes[i].atomic_share * served_fraction / secs,
                                0.0};
        const hmc::LinkModel& lm = cubes[i].hmc->link();
        power::OperatingPoint op;
        op.link_raw = lm.raw_link_bandwidth(mix);
        op.dram_internal = lm.internal_dram_bandwidth(mix);
        op.pim_ops_per_sec = mix.pim_per_sec;
        const int level = ideal ? 0
                                : std::min(2, static_cast<int>(base.policy.phase(
                                                  cubes[i].therm->peak_dram())));
        cubes[i].therm->apply_power(power::compute_power(base.energy, op, level));
        cubes[i].therm->step(used);
        cubes[i].served_pim += demand.pim_ops * cubes[i].atomic_share * served_fraction;
        const Celsius t = cubes[i].therm->peak_dram();
        cubes[i].peak = std::max(cubes[i].peak, t);
        hottest_now = std::max(hottest_now, t);
        if (!ideal && base.policy.warning(t)) any_warning = true;
      }
    }
    // Per-epoch policy hook on the hottest cube (no-op for reactive policies).
    if (!ideal && secs > 0.0) controller->on_epoch(control::Reading{hottest_now}, now);
    if (any_warning) {
      controller->on_thermal_warning(now);
      ++result.aggregate.thermal_warnings;
    }
  }

  result.aggregate.exec_time = now;
  result.aggregate.pim_ops = static_cast<std::uint64_t>(total_pim + 0.5);
  Celsius hottest{0.0};
  for (auto& cube : cubes) {
    result.peak_dram_temps.push_back(cube.peak);
    result.final_dram_temps.push_back(cube.therm->peak_dram());
    hottest = std::max(hottest, cube.peak);
    result.pim_share.push_back(total_pim > 0.0 ? cube.served_pim / total_pim : 0.0);
  }
  result.aggregate.peak_dram_temp = ideal ? Celsius{25.0} : hottest;
  return result;
}

}  // namespace coolpim::sys
