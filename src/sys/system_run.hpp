// Resumable single-experiment run: System::run's epoch loop split into
// serve / thermal-step / control phases around an externally driven thermal
// stepper (DESIGN.md section 14).
//
// The epoch-coupled loop has exactly one point where the transient thermal
// solver advances -- `therm.step(step)` after the epoch's served traffic has
// been converted to power.  SystemRun inverts control at that point:
// advance() executes everything up to the next required thermal step and
// returns true with pending_dt() set; the caller performs the step however
// it likes and calls advance() again, which resumes with the post-step
// bookkeeping (counters, sensor, warning delivery, measurement).  advance()
// returns false when the run is complete.
//
// Two drivers exist:
//  - System::run (scalar): `while (run.advance()) run.thermal().step(dt)` --
//    executes the exact statement sequence of the pre-split monolithic loop,
//    so results, counters and traces are byte-identical to it.
//  - runner's batched sweep executor: binds each run's HmcThermalModel to a
//    lane of a shared thermal::BatchStackModel, advances all pending lanes
//    with one SoA sweep (step_lanes), then calls note_stepped() per run.
//    Per lane the arithmetic is the scalar solver's IEEE sequence verbatim,
//    so this driver's results are bit-identical to the scalar one.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "common/units.hpp"
#include "control/policy.hpp"
#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "gpu/engine.hpp"
#include "hmc/backend.hpp"
#include "obs/trace.hpp"
#include "sys/system.hpp"
#include "thermal/hmc_thermal.hpp"

namespace coolpim::sys {

namespace detail {

/// Delayed temperature sensor: reports the DRAM temperature `delay` ago.
class DelayedSensor {
 public:
  explicit DelayedSensor(Time delay, Celsius initial) : delay_{delay} {
    samples_.push_back({Time::zero(), initial});
  }

  void record(Time now, Celsius temp) {
    samples_.push_back({now, temp});
    // Drop everything older than we will ever need again.
    while (samples_.size() > 2 && samples_[1].when + delay_ <= now) samples_.pop_front();
  }

  [[nodiscard]] Celsius sensed(Time now) const {
    const Time target = now - delay_;
    Celsius best = samples_.front().temp;
    for (const auto& s : samples_) {
      if (s.when <= target) best = s.temp;
      else break;
    }
    return best;
  }

 private:
  struct Sample {
    Time when;
    Celsius temp;
  };
  Time delay_;
  std::deque<Sample> samples_;
};

}  // namespace detail

class SystemRun {
 public:
  /// Constructs the full run state -- engine, controller, thermal model --
  /// and performs the initial steady-state solve (no transient steps).
  SystemRun(SystemConfig cfg, const graph::WorkloadProfile& workload);

  /// Advance until the next thermal step is needed.  Returns true when the
  /// caller must advance the thermal model by pending_dt() (scalar:
  /// thermal().step(dt); batched: step the bound lane, then
  /// thermal().note_stepped(dt)) before calling advance() again; false when
  /// the run is complete and take_result() may be called.
  [[nodiscard]] bool advance();

  /// The epoch length the pending thermal step must cover (valid after
  /// advance() returned true).
  [[nodiscard]] Time pending_dt() const { return ep_.step; }

  [[nodiscard]] thermal::HmcThermalModel& thermal() { return therm_; }
  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] bool done() const { return phase_ == Phase::kDone; }
  [[nodiscard]] RunResult take_result();

 private:
  enum class Phase { kWarmupPass, kWarmupJump, kMeasuredBegin, kFinalize, kDone };

  struct PassOutcome {
    Celsius peak{0.0};
    power::OperatingPoint avg{};
    hmc::EpochDemand demand_per_sec{};  // average offered demand rate
  };

  /// Per-pass accumulation state (one workload execution).
  struct PassState {
    Time epoch{Time::zero()};
    bool measure{false};
    Time start{Time::zero()};
    Celsius peak{0.0};
    double tot_raw{0.0}, tot_internal{0.0}, tot_pim{0.0};
    double dem_reads{0.0}, dem_writes{0.0}, dem_pims{0.0};
  };

  /// Epoch state carried across the thermal-step yield.
  struct EpochState {
    Time step{Time::zero()};
    double secs{0.0};
    double reads{0.0}, writes{0.0}, pim_ops{0.0};
    hmc::TransactionMix mix{};
    power::OperatingPoint op{};
    power::PowerBreakdown pb{};
  };

  void begin_pass(Time epoch, bool measure);
  /// Serve phase: runs epochs until one needs a thermal step (true) or the
  /// engine finishes the pass (false).
  [[nodiscard]] bool pass_epoch();
  /// Control phase: post-step bookkeeping for the epoch stashed in ep_.
  void post_step();
  void end_pass();
  void warmup_jump();
  void finalize();

  SystemConfig cfg_;
  obs::Trace tr_;
  obs::CounterRegistry* ctr_{nullptr};
  /// HMC service backend behind the fidelity contract (hmc/backend.hpp);
  /// built from cfg_.backend by hmc::make_backend.
  std::unique_ptr<hmc::Backend> backend_;
  bool ideal_{false};
  bool faulty_{false};

  std::unique_ptr<control::Policy> controller_;
  std::optional<gpu::ExecutionEngine> engine_;
  thermal::HmcThermalModel therm_;
  std::optional<detail::DelayedSensor> sensor_;
  std::optional<fault::FaultPlan> faults_;
  std::optional<fault::Watchdog> wdog_;

  RunResult result_;
  Time now_{Time::zero()};

  Phase phase_{Phase::kMeasuredBegin};
  bool in_pass_{false};
  bool awaiting_step_{false};
  PassState pass_;
  EpochState ep_;
  PassOutcome pass_out_;
  Time measured_start_{Time::zero()};

  // Warm-up repetition state.
  unsigned rep_{0};
  Celsius prev_peak_{0.0};
  std::uint64_t prev_adjustments_{0};
  hmc::EpochDemand ema_{};
};

}  // namespace coolpim::sys
