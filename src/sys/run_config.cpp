#include "sys/run_config.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/error.hpp"
#include "control/registry.hpp"
#include "hmc/backend.hpp"
#include "sys/system.hpp"

namespace coolpim::sys {

namespace {

double parse_double(std::string_view name, const char* text) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  COOLPIM_REQUIRE(end != text && *end == '\0',
                  std::string{name} + ": expected a number, got '" + text + "'");
  return v;
}

std::uint64_t parse_u64(std::string_view name, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  COOLPIM_REQUIRE(end != text && *end == '\0',
                  std::string{name} + ": expected a non-negative integer, got '" + text + "'");
  return v;
}

bool parse_bool(std::string_view name, const char* text) {
  const std::string_view t{text};
  if (t == "1" || t == "true" || t == "on") return true;
  if (t == "0" || t == "false" || t == "off") return false;
  throw ConfigError(std::string{name} + ": expected 0/1, got '" + text + "'");
}

/// One overlay routine serves both sources: every knob is (name, setter), the
/// env path looks the name up as COOLPIM_<NAME>, the CLI path as --<name>.
struct Knob {
  const char* env;   // e.g. "COOLPIM_SCALE"
  const char* flag;  // e.g. "--scale"
  void (*set)(RunConfig&, std::string_view source, const char* value);
};

const Knob kKnobs[] = {
    {"COOLPIM_JOBS", "--jobs",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.jobs = static_cast<unsigned>(parse_u64(n, v));
     }},
    {"COOLPIM_SCALE", "--scale",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.scale = static_cast<unsigned>(parse_u64(n, v));
     }},
    {"COOLPIM_GRAPH_SEED", "--graph-seed",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.graph_seed = parse_u64(n, v);
     }},
    {"COOLPIM_TRACE", "--trace",
     [](RunConfig& rc, std::string_view, const char* v) { rc.trace_path = v; }},
    {"COOLPIM_COUNTERS", "--counters",
     [](RunConfig& rc, std::string_view, const char* v) { rc.counters_path = v; }},
    {"COOLPIM_PROFILE_CACHE", "--profile-cache",
     [](RunConfig& rc, std::string_view, const char* v) { rc.profile_cache_dir = v; }},
    {"COOLPIM_POLICY", "--policy",
     [](RunConfig& rc, std::string_view, const char* v) { rc.policy = v; }},
    {"COOLPIM_POLICY_TABLE", "--policy-table",
     [](RunConfig& rc, std::string_view, const char* v) { rc.policy_table_path = v; }},
    {"COOLPIM_HMC_BACKEND", "--hmc-backend",
     [](RunConfig& rc, std::string_view, const char* v) { rc.hmc_backend = v; }},
    {"COOLPIM_FLEET_NODES", "--fleet-nodes",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fleet_nodes = static_cast<unsigned>(parse_u64(n, v));
     }},
    {"COOLPIM_ARRIVAL_RATE", "--arrival-rate",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.arrival_rate = parse_double(n, v);
     }},
    {"COOLPIM_BALANCER", "--balancer",
     [](RunConfig& rc, std::string_view, const char* v) { rc.balancer = v; }},
    {"COOLPIM_THERMAL_BATCH", "--thermal-batch",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.thermal_batch = static_cast<unsigned>(parse_u64(n, v));
     }},
    {"COOLPIM_SWEEP_BATCH", "--sweep-batch",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.sweep_batch = static_cast<unsigned>(parse_u64(n, v));
     }},
    {"COOLPIM_STACK_LAYERS", "--stack-layers",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.stack_layers = static_cast<unsigned>(parse_u64(n, v));
     }},
    {"COOLPIM_FAULT_DROP", "--fault-drop",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.warning_drop_rate = parse_double(n, v);
     }},
    {"COOLPIM_FAULT_CORRUPT", "--fault-corrupt",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.errstat_corrupt_rate = parse_double(n, v);
     }},
    {"COOLPIM_FAULT_SPURIOUS", "--fault-spurious",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.spurious_warning_rate = parse_double(n, v);
     }},
    {"COOLPIM_FAULT_DELAY_US", "--fault-delay-us",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.warning_delay_max = Time::us(parse_double(n, v));
     }},
    {"COOLPIM_FAULT_NOISE_C", "--fault-noise-c",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.sensor_noise_sigma_c = parse_double(n, v);
     }},
    {"COOLPIM_FAULT_QUANT_C", "--fault-quant-c",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.sensor_quantization_c = parse_double(n, v);
     }},
    {"COOLPIM_FAULT_STUCK", "--fault-stuck",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.sensor_stuck_rate = parse_double(n, v);
     }},
    {"COOLPIM_FAULT_OUTAGE", "--fault-outage",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.link_outage_rate = parse_double(n, v);
     }},
    {"COOLPIM_FAULT_WATCHDOG", "--fault-watchdog",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.watchdog.enabled = parse_bool(n, v);
     }},
    {"COOLPIM_FAULT_ENABLE", "--fault-enable",
     [](RunConfig& rc, std::string_view n, const char* v) {
       rc.fault.force_enable = parse_bool(n, v);
     }},
};

}  // namespace

void RunConfig::validate() const {
  COOLPIM_REQUIRE(scale >= 8 && scale <= 24, "scale must be in [8, 24]");
  COOLPIM_REQUIRE(fleet_nodes >= 1 && fleet_nodes <= 4096,
                  "fleet-nodes must be in [1, 4096]");
  COOLPIM_REQUIRE(arrival_rate > 0.0, "arrival-rate must be positive");
  COOLPIM_REQUIRE(!balancer.empty(), "balancer must not be empty");
  COOLPIM_REQUIRE(thermal_batch >= 1 && thermal_batch <= 4096,
                  "thermal-batch must be in [1, 4096]");
  COOLPIM_REQUIRE(sweep_batch >= 1 && sweep_batch <= 4096,
                  "sweep-batch must be in [1, 4096]");
  COOLPIM_REQUIRE(stack_layers <= 64, "stack-layers must be in [0, 64]");
  if (!policy.empty()) {
    Scenario unused;
    COOLPIM_REQUIRE(control::policy_from_name(policy, unused),
                    "unknown policy '" + policy + "' (registered: " +
                        control::policy_names() + ")");
  }
  if (!hmc_backend.empty()) {
    hmc::BackendKind unused;
    COOLPIM_REQUIRE(hmc::backend_from_name(hmc_backend, unused),
                    "unknown hmc backend '" + hmc_backend + "' (registered: " +
                        hmc::backend_names() + ")");
  }
  fault.validate();
}

RunConfig RunConfig::from_env() { return from_env(RunConfig{}); }

RunConfig RunConfig::from_args(int* argc, char** argv) {
  return from_args(argc, argv, RunConfig{});
}

RunConfig RunConfig::from_env(RunConfig base) {
  for (const Knob& k : kKnobs) {
    if (const char* v = std::getenv(k.env); v != nullptr && *v != '\0') {
      k.set(base, k.env, v);
    }
  }
  base.validate();
  return base;
}

RunConfig RunConfig::from_args(int* argc, char** argv, RunConfig base) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const Knob* hit = nullptr;
    const char* inline_value = nullptr;
    for (const Knob& k : kKnobs) {
      const std::size_t flen = std::strlen(k.flag);
      if (std::strcmp(argv[i], k.flag) == 0) {
        hit = &k;
        break;
      }
      // --flag=value form.
      if (std::strncmp(argv[i], k.flag, flen) == 0 && argv[i][flen] == '=') {
        hit = &k;
        inline_value = argv[i] + flen + 1;
        break;
      }
    }
    if (hit == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    const char* value = inline_value;
    if (value == nullptr) {
      COOLPIM_REQUIRE(i + 1 < *argc, std::string{hit->flag} + ": missing value");
      value = argv[++i];
    }
    hit->set(base, hit->flag, value);
  }
  *argc = out;
  argv[*argc] = nullptr;
  base.validate();
  return base;
}

void RunConfig::apply_to(SystemConfig& cfg) const {
  cfg.fault = fault;
  if (!policy.empty()) {
    Scenario s;
    COOLPIM_REQUIRE(control::policy_from_name(policy, s),
                    "unknown policy '" + policy + "'");
    cfg.scenario = s;
  }
  if (!policy_table_path.empty()) {
    cfg.policy_table.table = control::load_policy_table(policy_table_path);
  }
  if (!hmc_backend.empty()) {
    COOLPIM_REQUIRE(hmc::backend_from_name(hmc_backend, cfg.backend),
                    "unknown hmc backend '" + hmc_backend + "'");
  }
}

WorkloadSet::BuildOptions RunConfig::build_options() const {
  WorkloadSet::BuildOptions opt;
  opt.jobs = jobs;
  opt.cache_dir = profile_cache_dir;
  return opt;
}

std::string RunConfig::flags_help() {
  return "  --jobs N             runner parallelism (0 = all cores)\n"
         "  --scale N            graph scale, 2^N vertices (8..24)\n"
         "  --graph-seed N       graph-generation seed\n"
         "  --trace FILE         write a Chrome trace of the run(s)\n"
         "  --counters FILE      write a counter CSV of the run(s)\n"
         "  --profile-cache DIR  persistent workload-profile cache\n"
         "  --policy NAME        throttling policy (" +
         control::policy_names() +
         ")\n"
         "  --policy-table FILE  fitted policy-table CSV (policy-table only)\n"
         "  --hmc-backend NAME   HMC service fidelity tier (" +
         hmc::backend_names() +
         ")\n"
         "  --fleet-nodes N      fleet tier: GPU+HMC node count (1..4096)\n"
         "  --arrival-rate R     fleet tier: open-loop arrivals per second\n"
         "  --balancer NAME      fleet tier: round-robin, join-shortest-queue,\n"
         "                       thermal-aware\n"
         "  --thermal-batch N    batched-solver lanes per SoA sweep (1..4096)\n"
         "  --sweep-batch N      co-advance N experiments per worker through\n"
         "                       one SoA thermal sweep (1 = scalar runner)\n"
         "  --stack-layers N     DRAM dies in the stack geometry (0 = entry\n"
         "                       point default, up to 64; 16 = HBM-class tall)\n"
         "  --fault-drop R       warning drop probability [0,1]\n"
         "  --fault-corrupt R    ERRSTAT corruption probability [0,1]\n"
         "  --fault-spurious R   per-epoch spurious-warning probability [0,1]\n"
         "  --fault-delay-us X   max extra warning delivery delay (us)\n"
         "  --fault-noise-c X    sensor Gaussian noise sigma (C)\n"
         "  --fault-quant-c X    sensor quantization step (C)\n"
         "  --fault-stuck R      per-epoch stuck-sensor probability [0,1]\n"
         "  --fault-outage R     per-epoch link-outage probability [0,1]\n"
         "  --fault-watchdog B   fail-safe watchdog on/off (default on)\n"
         "  --fault-enable B     force the fault layer on at zero rates\n";
}

}  // namespace coolpim::sys
