#include "sys/profile_cache.hpp"

#include <bit>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "common/hash.hpp"

namespace coolpim::sys {

namespace {

constexpr char kMagic[8] = {'C', 'P', 'P', 'R', 'O', 'F', '0', '1'};

std::uint64_t payload_hash(std::string_view payload) {
  HashStream h;
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

// Little-endian byte serialization.  The cache is a local artifact (one
// machine, one build), but a fixed byte order keeps the payload hash and
// file layout well-defined rather than memcpy-of-struct dependent.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }

  [[nodiscard]] const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_{data} {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len) || pos_ + len > data_.size()) return false;
    s.assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_{0};
};

void write_profile(Writer& w, const graph::WorkloadProfile& p) {
  w.str(p.name);
  w.u8(static_cast<std::uint8_t>(p.driver));
  w.u8(static_cast<std::uint8_t>(p.parallelism));
  w.u8(static_cast<std::uint8_t>(p.atomic_kind));
  w.u32(p.graph_vertices);
  w.u64(p.graph_edges);
  w.u64(p.result_checksum);
  w.u64(p.iterations.size());
  for (const auto& it : p.iterations) {
    w.u64(it.scanned_vertices);
    w.u64(it.active_vertices);
    w.u64(it.edges_processed);
    w.u64(it.work_threads);
    w.u64(it.struct_scan_bytes);
    w.u64(it.property_reads);
    w.u64(it.property_writes);
    w.u64(it.atomic_ops);
    w.u64(it.compute_warp_instructions);
    w.f64(it.divergent_warp_ratio);
  }
}

bool read_profile(Reader& r, graph::WorkloadProfile& p) {
  std::uint8_t driver = 0, parallelism = 0, atomic = 0;
  std::uint64_t iters = 0;
  if (!r.str(p.name) || !r.u8(driver) || !r.u8(parallelism) || !r.u8(atomic) ||
      !r.u32(p.graph_vertices) || !r.u64(p.graph_edges) || !r.u64(p.result_checksum) ||
      !r.u64(iters)) {
    return false;
  }
  if (driver > 1 || parallelism > 1) return false;
  p.driver = static_cast<graph::Driver>(driver);
  p.parallelism = static_cast<graph::Parallelism>(parallelism);
  p.atomic_kind = static_cast<hmc::PimOpcode>(atomic);
  // An iteration record is 10 fixed 8-byte fields; reject counts the
  // remaining bytes cannot possibly hold before resizing.
  if (iters > (1ull << 32)) return false;
  p.iterations.resize(iters);
  for (auto& it : p.iterations) {
    if (!r.u64(it.scanned_vertices) || !r.u64(it.active_vertices) ||
        !r.u64(it.edges_processed) || !r.u64(it.work_threads) ||
        !r.u64(it.struct_scan_bytes) || !r.u64(it.property_reads) ||
        !r.u64(it.property_writes) || !r.u64(it.atomic_ops) ||
        !r.u64(it.compute_warp_instructions) || !r.f64(it.divergent_warp_ratio)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::uint64_t profile_cache_key(unsigned scale, std::uint64_t seed, bool include_extended) {
  HashStream h;
  h.add(std::string_view{"coolpim-profile-cache"});
  h.add(kProfileFormatVersion);
  h.add(scale);
  h.add(seed);
  h.add(include_extended);
  return h.digest();
}

std::string profile_cache_file(const std::string& dir, std::uint64_t key) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(key));
  return (std::filesystem::path{dir} / ("profiles-" + std::string{hex} + ".bin")).string();
}

bool save_profiles(const std::string& dir, std::uint64_t key,
                   const std::vector<graph::WorkloadProfile>& profiles) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  Writer w;
  w.u32(kProfileFormatVersion);
  w.u64(key);
  w.u32(static_cast<std::uint32_t>(profiles.size()));
  for (const auto& p : profiles) write_profile(w, p);
  const std::uint64_t hash = payload_hash(w.buffer());

  const std::string path = profile_cache_file(dir, key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kMagic, sizeof(kMagic));
    out.write(w.buffer().data(), static_cast<std::streamsize>(w.buffer().size()));
    char trailer[8];
    for (int i = 0; i < 8; ++i) trailer[i] = static_cast<char>((hash >> (8 * i)) & 0xff);
    out.write(trailer, sizeof(trailer));
    if (!out) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool load_profiles(const std::string& dir, std::uint64_t key,
                   std::vector<graph::WorkloadProfile>& out) {
  out.clear();
  std::ifstream in(profile_cache_file(dir, key), std::ios::binary);
  if (!in) return false;
  std::string data{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  if (data.size() < sizeof(kMagic) + 8) return false;
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) return false;

  const std::string_view payload{data.data() + sizeof(kMagic),
                                 data.size() - sizeof(kMagic) - 8};
  std::uint64_t stored_hash = 0;
  for (int i = 0; i < 8; ++i) {
    stored_hash |= static_cast<std::uint64_t>(
                       static_cast<std::uint8_t>(data[data.size() - 8 + i]))
                   << (8 * i);
  }
  if (payload_hash(payload) != stored_hash) return false;

  Reader r{payload};
  std::uint32_t version = 0, count = 0;
  std::uint64_t stored_key = 0;
  if (!r.u32(version) || !r.u64(stored_key) || !r.u32(count)) return false;
  if (version != kProfileFormatVersion || stored_key != key) return false;

  out.resize(count);
  for (auto& p : out) {
    if (!read_profile(r, p)) {
      out.clear();
      return false;
    }
  }
  if (!r.exhausted()) {
    out.clear();
    return false;
  }
  return true;
}

}  // namespace coolpim::sys
