// Persistent, content-addressed cache of workload profiles.
//
// Profiling the full GraphBIG matrix is the dominant startup cost of every
// bench and app invocation, and the profiles are a pure function of
// (scale, graph seed, workload list, profile format).  This module
// serializes a WorkloadSet's profiles to one binary file per identity hash
// so repeated invocations skip the functional kernels entirely.  Opt-in:
// WorkloadSet consults it only when COOLPIM_PROFILE_CACHE=<dir> is set (or a
// cache dir is passed explicitly).
//
// Safety over speed: the file carries its format version and identity key,
// an FNV-1a hash of the entire payload as a trailer, and the graph
// dimensions each profile was captured on.  Any mismatch -- truncation, bit
// rot, a stale entry from an older format, a key collision -- makes
// load_profiles() return false and the caller recomputes (then rewrites the
// entry).  A cache can never change results, only skip work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/profile.hpp"

namespace coolpim::sys {

/// Bump whenever WorkloadProfile/IterationProfile fields or the kernel cost
/// accounting change meaning; old cache entries then miss instead of
/// resurrecting stale numbers.
inline constexpr std::uint32_t kProfileFormatVersion = 1;

/// Identity hash of a WorkloadSet's profile contents: FNV-1a over
/// (format version, scale, seed, extended-workloads flag).
[[nodiscard]] std::uint64_t profile_cache_key(unsigned scale, std::uint64_t seed,
                                              bool include_extended);

/// File the entry for `key` lives in under `dir`.
[[nodiscard]] std::string profile_cache_file(const std::string& dir, std::uint64_t key);

/// Serialize `profiles` for `key` into `dir` (created if missing).  Writes to
/// a temp file and renames, so readers never observe a half-written entry.
/// Returns false (without throwing) if the directory or file cannot be
/// written -- an unusable cache must not fail the run.
bool save_profiles(const std::string& dir, std::uint64_t key,
                   const std::vector<graph::WorkloadProfile>& profiles);

/// Load the entry for `key` from `dir` into `out`.  Returns false on any
/// integrity failure (missing file, bad magic/version/key, payload hash
/// mismatch, truncation); `out` is left empty in that case.
bool load_profiles(const std::string& dir, std::uint64_t key,
                   std::vector<graph::WorkloadProfile>& out);

}  // namespace coolpim::sys
