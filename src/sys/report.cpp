#include "sys/report.hpp"

#include <ostream>

#include "common/csv.hpp"

namespace coolpim::sys {

const std::vector<std::string_view>& summary_csv_columns() {
  static const std::vector<std::string_view> cols{
      "workload",      "scenario",     "exec_ms",          "link_data_gbps",
      "pim_rate_op_per_ns", "consumption_bytes", "peak_dram_c", "start_dram_c",
      "thermal_warnings",   "time_derated_ms",   "cube_energy_j", "fan_energy_j",
      "shut_down"};
  return cols;
}

const std::vector<std::string_view>& timeseries_csv_columns() {
  static const std::vector<std::string_view> cols{
      "workload", "scenario", "t_ms", "pim_rate_op_per_ns", "peak_dram_c", "link_data_gbps"};
  return cols;
}

namespace {

void header_row(CsvWriter& csv, const std::vector<std::string_view>& cols) {
  std::vector<std::string> cells{cols.begin(), cols.end()};
  csv.row(cells);
}

}  // namespace

void write_summary_csv(std::ostream& os, const std::vector<RunResult>& runs) {
  CsvWriter csv{os};
  header_row(csv, summary_csv_columns());
  for (const auto& r : runs) {
    csv.row({r.workload, r.scenario, CsvWriter::num(r.exec_time.as_ms()),
             CsvWriter::num(r.avg_link_data_gbps()),
             CsvWriter::num(r.avg_pim_rate_op_per_ns()),
             CsvWriter::num(r.consumption_bytes()), CsvWriter::num(r.peak_dram_temp.value()),
             CsvWriter::num(r.start_dram_temp.value()), std::to_string(r.thermal_warnings),
             CsvWriter::num(r.time_above_normal.as_ms()), CsvWriter::num(r.cube_energy_j),
             CsvWriter::num(r.fan_energy_j), r.shut_down ? "1" : "0"});
  }
}

void write_timeseries_csv(std::ostream& os, const std::vector<RunResult>& runs) {
  CsvWriter csv{os};
  header_row(csv, timeseries_csv_columns());
  for (const auto& r : runs) {
    for (std::size_t i = 0; i < r.pim_rate.size(); ++i) {
      csv.row({r.workload, r.scenario, CsvWriter::num(r.pim_rate.time_at(i).as_ms()),
               CsvWriter::num(r.pim_rate.value_at(i)), CsvWriter::num(r.dram_temp.value_at(i)),
               CsvWriter::num(r.link_bw.value_at(i))});
    }
  }
}

}  // namespace coolpim::sys
