// Full-system epoch-coupled model: GPU <-> HMC <-> power <-> thermal <->
// CoolPIM feedback loop (paper Fig. 6 and Section V-A infrastructure).
//
// The simulation advances in ~10 us epochs.  Each epoch the GPU engine
// offers transaction demand, the HMC throughput model resolves what it can
// serve at the current (derated) temperature, the served traffic is turned
// into power and integrated by the transient thermal model, and thermal
// warnings -- sensed with the ~1 ms thermal delay of Fig. 8 -- drive the
// scenario's throttle controller.
//
// Runs start warm: graph applications launch kernels back-to-back, so the
// measured pass begins from the quasi-steady thermal state reached by
// repeated warm-up executions of the same workload.
#pragma once

#include <deque>
#include <memory>

#include "common/units.hpp"
#include "control/mpc.hpp"
#include "control/policy_table.hpp"
#include "fault/fault_config.hpp"
#include "gpu/config.hpp"
#include "hmc/backend.hpp"
#include "hmc/config.hpp"
#include "hmc/thermal_policy.hpp"
#include "obs/observer.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "sys/metrics.hpp"
#include "sys/scenario.hpp"
#include "sys/workloads.hpp"

namespace coolpim::sys {

struct SystemConfig {
  gpu::GpuConfig gpu{};
  hmc::HmcConfig hmc{hmc::hmc20_config()};
  hmc::ThermalPolicy policy{};
  /// HMC service-backend fidelity tier (hmc/backend.hpp registry; selected
  /// by --hmc-backend / COOLPIM_HMC_BACKEND).  The default tier reproduces
  /// the pre-contract simulator byte for byte, and -- like `fault` and the
  /// predictive-policy configs -- is hashed into the experiment key only
  /// when it differs from the default, so every existing key and golden
  /// result is preserved.
  hmc::BackendKind backend{hmc::BackendKind::kEpochThroughput};
  power::EnergyParams energy{};
  power::CoolingType cooling{power::CoolingType::kCommodityServer};
  Scenario scenario{Scenario::kCoolPimHw};

  /// Deterministic fault environment for the warning loop (fault::FaultPlan).
  /// Default-constructed == fault-free: the fault path is not instantiated
  /// and the run is bit-identical to the pre-fault-layer simulator.
  fault::FaultConfig fault{};

  /// Predictive-policy configs, consumed only by their own scenario (and
  /// hashed into the experiment key only then, so every pre-zoo experiment
  /// keeps its key and golden results).
  control::MpcConfig mpc{};
  control::PolicyTableConfig policy_table{};

  Time epoch{Time::us(10.0)};
  Time warmup_epoch{Time::us(50.0)};
  /// Thermal sensing delay (T_thermal, Fig. 8): warnings reflect the DRAM
  /// temperature this long ago.
  Time thermal_delay{Time::ms(1.0)};

  // CoolPIM knobs.
  std::uint32_t sw_control_factor{4};
  std::uint32_t hw_control_factor{8};
  double target_rate_op_per_ns{1.3};
  std::uint32_t eq1_margin_blocks{4};

  // Run control.
  bool warm_start{true};
  /// Seed for the run's stochastic sampling (cache-characterization replay).
  /// The parallel runner (runner/experiment.hpp) overwrites this with a seed
  /// derived from the task's stable hash so sweep results are independent of
  /// thread count and scheduling order.
  std::uint64_t run_seed{7};
  /// If > 0: bisect the pre-run background load so the starting peak DRAM
  /// temperature equals this value (transient experiments, Fig. 14).
  double start_temp_override{-1.0};
  unsigned max_warmup_reps{8};
  double warmup_tolerance_c{0.5};
  Time max_time{Time::sec(5.0)};
  /// Thermal-shutdown recovery penalty (prototype measured tens of seconds).
  Time shutdown_recovery{Time::sec(10.0)};

  /// Observability sink for this run (nullptr = no recording).  Like
  /// run_seed, this is deliberately excluded from runner::config_hash: it is
  /// not part of the experiment's identity, and recording is strictly
  /// read-only, so results are bit-identical with or without it.
  obs::RunObserver* observer{nullptr};
};

class System {
 public:
  explicit System(SystemConfig cfg);

  /// Run one workload under the configured scenario and return its metrics.
  [[nodiscard]] RunResult run(const graph::WorkloadProfile& workload);

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }

 private:
  SystemConfig cfg_;
};

}  // namespace coolpim::sys
