#include "sys/system.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "control/registry.hpp"
#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "gpu/engine.hpp"
#include "hmc/link_model.hpp"
#include "hmc/packet.hpp"
#include "hmc/throughput_model.hpp"
#include "obs/names.hpp"
#include "thermal/hmc_thermal.hpp"

namespace coolpim::sys {

namespace {

/// Delayed temperature sensor: reports the DRAM temperature `delay` ago.
class DelayedSensor {
 public:
  explicit DelayedSensor(Time delay, Celsius initial) : delay_{delay} {
    samples_.push_back({Time::zero(), initial});
  }

  void record(Time now, Celsius temp) {
    samples_.push_back({now, temp});
    // Drop everything older than we will ever need again.
    while (samples_.size() > 2 && samples_[1].when + delay_ <= now) samples_.pop_front();
  }

  [[nodiscard]] Celsius sensed(Time now) const {
    const Time target = now - delay_;
    Celsius best = samples_.front().temp;
    for (const auto& s : samples_) {
      if (s.when <= target) best = s.temp;
      else break;
    }
    return best;
  }

 private:
  struct Sample {
    Time when;
    Celsius temp;
  };
  Time delay_;
  std::deque<Sample> samples_;
};

std::unique_ptr<control::Policy> make_controller(const SystemConfig& cfg,
                                                 const graph::WorkloadProfile& workload,
                                                 const hmc::LinkModel& link,
                                                 double naive_rate_estimate) {
  control::PolicyBuild build;
  build.scenario = cfg.scenario;
  build.sw.control_factor = cfg.sw_control_factor;
  build.sw.eq1.max_blocks = static_cast<std::uint32_t>(cfg.gpu.max_resident_blocks());
  build.sw.eq1.pim_intensity = workload.pim_intensity();
  build.sw.eq1.divergent_warp_ratio = workload.divergence_ratio();
  build.sw.eq1.target_rate_op_per_ns = cfg.target_rate_op_per_ns;
  build.sw.eq1.margin_blocks = cfg.eq1_margin_blocks;
  // Peak PIM rate: the link FLIT budget divided by 3 FLITs per op.
  build.sw.eq1.pim_peak_rate_op_per_ns =
      link.flits_per_sec() / hmc::flit_cost(hmc::TransactionType::kPimNoReturn).total() * 1e-9;
  build.sw.eq1.estimated_naive_rate_op_per_ns = naive_rate_estimate;
  build.hw.max_warps_per_sm = static_cast<std::uint32_t>(cfg.gpu.max_warps_per_sm);
  build.hw.control_factor = cfg.hw_control_factor;
  build.mpc = cfg.mpc;
  build.table = cfg.policy_table;
  return control::make_policy(build);
}

}  // namespace

System::System(SystemConfig cfg) : cfg_{std::move(cfg)} {
  cfg_.gpu.validate();
  cfg_.hmc.validate();
}

RunResult System::run(const graph::WorkloadProfile& workload) {
  COOLPIM_REQUIRE(workload.graph_vertices > 0, "workload missing graph metadata");

  // Observability: null handles when no observer is attached; every record
  // call below degenerates to one predictable branch.
  obs::Trace tr;
  obs::CounterRegistry* ctr = nullptr;
  if (cfg_.observer != nullptr) {
    tr = cfg_.observer->trace();
    ctr = &cfg_.observer->counters;
  }

  const hmc::ThroughputModel hmc_model{cfg_.hmc, cfg_.policy};
  const hmc::LinkModel& link = hmc_model.link();
  const bool ideal = cfg_.scenario == Scenario::kIdealThermal;

  // Property footprint: two 4-byte property arrays (e.g. level + frontier
  // flags) over the vertices is representative of the workloads here.
  gpu::CacheHitModel cache{cfg_.gpu,
                           static_cast<std::uint64_t>(workload.graph_vertices) * 8,
                           1 << 20, cfg_.run_seed};
  auto launches = gpu::build_launches(workload, cfg_.gpu, cache);

  // Static analysis for Eq. 1's PTP initialization: estimate the
  // un-throttled offloading rate from the launch totals and the link budget
  // (the "simple trial run" of the paper).
  double est_flits = 0.0, est_instr = 0.0, est_atomics = 0.0;
  for (const auto& l : launches) {
    est_flits += 6.0 * (l.mem.read_txns + l.mem.write_txns) + 3.0 * l.mem.atomic_ops;
    est_instr += l.warp_instructions;
    est_atomics += l.mem.atomic_ops;
  }
  const double est_time =
      std::max(est_flits / link.flits_per_sec(), est_instr / cfg_.gpu.issue_rate_per_sec());
  const double naive_rate_estimate =
      est_time > 0.0 ? est_atomics / est_time * 1e-9 : 0.0;

  auto controller = make_controller(cfg_, workload, link, naive_rate_estimate);
  controller->set_trace(tr);
  controller->set_counters(ctr);
  gpu::ExecutionEngine engine{cfg_.gpu, std::move(launches), *controller};
  engine.set_observer(tr, ctr);

  thermal::HmcThermalModel therm{thermal::hmc20_thermal_config(cfg_.cooling)};
  therm.set_observer(tr, ctr, cfg_.policy.warning_threshold);
  // Initial thermal state: the device has been serving the surrounding
  // application's regular (non-PIM) traffic at full link bandwidth, so start
  // from that steady state (~81 C with commodity cooling) unless overridden.
  if (cfg_.start_temp_override > 0.0) {
    power::OperatingPoint warm{};
    warm.link_raw = link.config().link_raw_total();
    warm.dram_internal = link.max_data_bandwidth();
    // Scale the warm operating point so the steady peak matches the override
    // (used by transient experiments that start just below the warning).
    therm.apply_power(power::compute_power(cfg_.energy, warm));
    therm.solve_steady();
    double lo = 0.0, hi = 4.0;
    for (int i = 0; i < 24; ++i) {
      const double k = 0.5 * (lo + hi);
      power::OperatingPoint scaled{};
      scaled.link_raw = warm.link_raw * k;
      scaled.dram_internal = warm.dram_internal * k;
      therm.apply_power(power::compute_power(cfg_.energy, scaled));
      therm.solve_steady();
      if (therm.peak_dram().value() < cfg_.start_temp_override) lo = k; else hi = k;
    }
  } else {
    power::OperatingPoint warm{};
    warm.link_raw = link.config().link_raw_total();
    warm.dram_internal = link.max_data_bandwidth();
    therm.apply_power(power::compute_power(cfg_.energy, warm));
    therm.solve_steady();
  }

  DelayedSensor sensor{cfg_.thermal_delay, therm.peak_dram()};

  // Fault layer: instantiated only when the config enables it, so fault-free
  // runs execute the exact pre-fault code path -- no extra RNG draws, no
  // behavioural drift from the pre-fault-layer simulator (DESIGN.md sect 10).
  const bool faulty = cfg_.fault.enabled() && !ideal;
  std::optional<fault::FaultPlan> faults;
  std::optional<fault::Watchdog> wdog;
  if (faulty) {
    faults.emplace(cfg_.fault, cfg_.run_seed);
    faults->set_observer(tr, ctr);
    if (cfg_.fault.watchdog.enabled) {
      wdog.emplace(cfg_.fault.watchdog, cfg_.policy.warning_threshold);
      wdog->set_observer(tr, ctr);
    }
  }

  RunResult result;
  result.workload = workload.name;
  result.scenario = std::string(to_string(cfg_.scenario));

  Time now = Time::zero();

  struct PassOutcome {
    Celsius peak{0.0};
    power::OperatingPoint avg{};
    hmc::EpochDemand demand_per_sec{};  // average offered demand rate
  };


  // One execution of the full workload; records into `result` when `measure`.
  auto run_pass = [&](Time epoch, bool measure) -> PassOutcome {
    engine.restart();
    const Time pass_start = now;
    obs::ScopedSpan pass_span{tr, now, obs::names::kCatSim, measure ? "measured_pass" : "warmup_pass",
                              {{"epoch_us", epoch.as_us()}}};
    Celsius pass_peak = therm.peak_dram();
    double tot_raw = 0.0, tot_internal = 0.0, tot_pim = 0.0;
    double dem_reads = 0.0, dem_writes = 0.0, dem_pims = 0.0;

    while (!engine.finished()) {
      COOLPIM_REQUIRE(now - pass_start < cfg_.max_time, "run exceeded max_time");
      Time left = epoch;
      double pim_ops = 0.0, reads = 0.0, writes = 0.0;
      // Inner loop: launch overheads can split an epoch.
      int spins = 0;
      while (left > Time::zero() && !engine.finished()) {
        COOLPIM_ASSERT_MSG(++spins < 10000, "epoch failed to make progress");
        const Celsius temp = ideal ? therm.config().ambient : therm.peak_dram();
        const auto demand = engine.plan(now, left);
        dem_reads += demand.reads;
        dem_writes += demand.writes;
        dem_pims += demand.pim_ops;
        const auto service = hmc_model.serve(demand, left, temp);
        if (service.shut_down) {
          // Conservative device behaviour: stop, cool, lose data (paper
          // III-A.2); account the recovery and restart the pass cold.
          result.shut_down = true;
          tr.instant(now, obs::names::kCatSys, "thermal_shutdown",
                     {{"recovery_ms", cfg_.shutdown_recovery.as_ms()}});
          if (ctr != nullptr) ctr->counter(obs::names::kSysShutdowns).add();
          now += cfg_.shutdown_recovery;
          therm.reset();
          engine.restart();
          left = epoch;
          continue;
        }
        const Time used = engine.commit(now, left, service);
        pim_ops += service.pim_ops;
        reads += service.reads;
        writes += service.writes;
        now += used;
        left -= used;
      }

      const Time step = epoch - left;
      if (step <= Time::zero()) continue;
      const double secs = step.as_sec();

      // Power from the epoch's served traffic.
      hmc::TransactionMix mix{reads / secs, writes / secs, pim_ops / secs, 0.0};
      power::OperatingPoint op;
      op.link_raw = link.raw_link_bandwidth(mix);
      op.dram_internal = link.internal_dram_bandwidth(mix);
      op.pim_ops_per_sec = mix.pim_per_sec;
      const int level =
          ideal ? 0 : std::min(2, static_cast<int>(cfg_.policy.phase(therm.peak_dram())));
      const auto pb = power::compute_power(cfg_.energy, op, level);
      therm.apply_power(pb);
      if (tr.enabled()) {
        // The epoch ran [now - step, now): the HMC serve span covers it, and
        // the thermal model's internal trace clock is re-anchored so its
        // step() span lands on the same interval.
        tr.complete(now - step, step, obs::names::kCatHmc, "serve",
                    {{"reads", reads},
                     {"writes", writes},
                     {"pim_ops", pim_ops},
                     {"derate_level", level}});
      }
      therm.sync_trace_clock(now - step);
      therm.step(step);
      if (ctr != nullptr) {
        ctr->counter(obs::names::kSysEpochs).add();
        ctr->counter(obs::names::kHmcServedReads).add(static_cast<std::uint64_t>(reads + 0.5));
        ctr->counter(obs::names::kHmcServedWrites)
            .add(static_cast<std::uint64_t>(writes + 0.5));
        ctr->counter(obs::names::kHmcServedPimOps)
            .add(static_cast<std::uint64_t>(pim_ops + 0.5));
      }
      if (measure) {
        result.cube_energy_j += pb.total().value() * secs;
        result.fan_energy_j += power::cooling(cfg_.cooling).fan_power_watts * secs;
      }
      tot_raw += op.link_raw.as_bytes_per_sec() * secs;
      tot_internal += op.dram_internal.as_bytes_per_sec() * secs;
      tot_pim += pim_ops;

      const Celsius dram = therm.peak_dram();
      pass_peak = std::max(pass_peak, dram);
      sensor.record(now, dram);

      // Thermal warnings ride on response packets; the host sees the sensed
      // (delayed) temperature.  With the fault layer active the reading is
      // conditioned (noise / quantization / stuck-at), raised warnings roll
      // their in-flight fate, and the watchdog closes the fail-safe loop.
      if (faulty) {
        faults->begin_epoch(now);
        const Celsius seen = faults->condition_reading(now, sensor.sensed(now));
        // Per-epoch policy hook: predictive policies act on the (conditioned)
        // sensed reading before any warning fires; a no-op for reactive ones.
        controller->on_epoch(control::Reading{seen}, now);
        if (cfg_.policy.warning(seen)) faults->offer_warning(now);
        faults->maybe_spurious(now);
        for (const auto& d : faults->collect_due(now)) {
          if (ctr != nullptr) ctr->counter(obs::names::kSysThermalWarningsDelivered).add();
          controller->on_thermal_warning(d.at, d.raised_at);
          if (wdog) wdog->on_delivery(d.at);
          if (measure) ++result.thermal_warnings;
        }
        if (wdog && wdog->tick(now, seen)) controller->on_watchdog_engage(now);
      } else if (!ideal) {
        const Celsius seen = sensor.sensed(now);
        controller->on_epoch(control::Reading{seen}, now);
        if (cfg_.policy.warning(seen)) {
          if (ctr != nullptr) ctr->counter(obs::names::kSysThermalWarningsDelivered).add();
          controller->on_thermal_warning(now);
          if (measure) ++result.thermal_warnings;
        }
      }

      if (measure) {
        result.link_data_bytes += link.data_bandwidth(mix).as_bytes_per_sec() * secs;
        result.link_raw_bytes += op.link_raw.as_bytes_per_sec() * secs;
        result.dram_internal_bytes += op.dram_internal.as_bytes_per_sec() * secs;
        result.pim_ops += static_cast<std::uint64_t>(pim_ops + 0.5);
        if (!ideal && cfg_.policy.phase(dram) != hmc::ThermalPhase::kNormal) {
          result.time_above_normal += step;
        }
        result.pim_rate.record(now, mix.pim_per_sec * 1e-9);
        result.dram_temp.record(now, dram.value());
        result.link_bw.record(now, link.data_bandwidth(mix).as_gbps());
        tr.counter(now, obs::names::kCatSys, "pim_rate_gops", mix.pim_per_sec * 1e-9);
        tr.counter(now, obs::names::kCatSys, "link_data_gbps", link.data_bandwidth(mix).as_gbps());
        if (ctr != nullptr) {
          ctr->gauge(obs::names::kSysPimRateGops).set(mix.pim_per_sec * 1e-9);
          ctr->gauge(obs::names::kSysLinkDataGbps).set(link.data_bandwidth(mix).as_gbps());
          ctr->mark(now);
        }
      }
    }
    if (measure) result.exec_time = now - pass_start;
    PassOutcome out;
    out.peak = pass_peak;
    const double pass_secs = (now - pass_start).as_sec();
    if (pass_secs > 0.0) {
      out.avg.link_raw = Bandwidth::bytes_per_sec(tot_raw / pass_secs);
      out.avg.dram_internal = Bandwidth::bytes_per_sec(tot_internal / pass_secs);
      out.avg.pim_ops_per_sec = tot_pim / pass_secs;
      out.demand_per_sec.reads = dem_reads / pass_secs;
      out.demand_per_sec.writes = dem_writes / pass_secs;
      out.demand_per_sec.pim_ops = dem_pims / pass_secs;
    }
    return out;
  };

  // Warm-up: the application executes the workload's kernels back-to-back,
  // so the measured pass should start from the quasi-steady thermal and
  // controller state of sustained execution.  The stack's thermal time
  // constant (~1.5 ms) is short relative to a pass, so transient warm-up
  // passes converge within a few repetitions.  Skipped when warm_start is
  // off (transient experiments).
  if (cfg_.warm_start) {
    Celsius prev_peak = therm.peak_dram();
    std::uint64_t prev_adjustments = controller->adjustments();
    hmc::EpochDemand ema{};
    for (unsigned rep = 0; rep < cfg_.max_warmup_reps; ++rep) {
      const auto pass = run_pass(cfg_.warmup_epoch, /*measure=*/false);
      // Fast-forward to the sustained equilibrium: the heat sink's own time
      // constant is tens of seconds, far beyond what a pass can move, so
      // solve for the steady state of the pass's average served traffic at
      // the corresponding derate level.  The average is smoothed across
      // repetitions (EMA) to damp the bistable hot/cool ping-pong a single
      // pass average can induce near the derating boundary.
      ema = pass.demand_per_sec;
      // Sustained-equilibrium jump: at each candidate derate level, serve
      // the pass's offered demand at that level and solve for the
      // steady state of the *served* traffic under that level's hot-energy
      // penalty.  Accept the coolest self-consistent level (a device whose
      // full-speed steady state is below 85 C never enters the extended
      // range); if no level is consistent the equilibrium straddles the
      // 85 C boundary, which the extended-level solution represents best.
      auto solve_at = [&](int level) {
        const Celsius probe{level == 0 ? 80.0 : (level == 1 ? 90.0 : 100.0)};
        const auto svc = hmc_model.serve(ema, Time::sec(1.0), probe);
        power::OperatingPoint op;
        op.link_raw = svc.link_raw;
        op.dram_internal = svc.dram_internal;
        op.pim_ops_per_sec = svc.pim_ops_per_sec;
        therm.apply_power(power::compute_power(cfg_.energy, op, level));
        therm.solve_steady();
        return std::min(2, static_cast<int>(cfg_.policy.phase(therm.peak_dram())));
      };
      bool consistent = false;
      for (int level = 0; level <= 2 && !consistent; ++level) {
        consistent = solve_at(level) == level;
      }
      if (!consistent) (void)solve_at(1);
      // The jump is a fast-forward, not a physical excursion: re-anchor the
      // thermal sensor so stale pre-jump samples cannot trigger warnings.
      sensor = DelayedSensor{cfg_.thermal_delay, therm.peak_dram()};
      sensor.record(now, therm.peak_dram());

      const bool thermally_stable = std::abs(pass.peak - prev_peak) < cfg_.warmup_tolerance_c;
      const bool controller_quiet = controller->adjustments() == prev_adjustments;
      if (rep > 0 && thermally_stable && controller_quiet) break;
      prev_peak = pass.peak;
      prev_adjustments = controller->adjustments();
    }
  }

  result.start_dram_temp = therm.peak_dram();
  engine.stats().reset();  // warm-up traffic is not part of the measurement
  const Time measured_start = now;
  const auto measured = run_pass(cfg_.epoch, /*measure=*/true);
  result.peak_dram_temp = ideal ? therm.config().ambient : measured.peak;
  result.host_atomics = engine.stats().counter_value("host_atomics");
  if (tr.enabled()) {
    // One span per controller over the measured pass so the throttle policy
    // in force is readable directly off the "core" track.
    tr.complete(measured_start, now - measured_start, obs::names::kCatCore, controller->name(),
                {{"adjustments", controller->adjustments()},
                 {"warnings_delivered", result.thermal_warnings}});
  }
  if (faulty) {
    result.faults.active = true;
    const auto& fs = faults->stats();
    result.faults.warnings_offered = fs.warnings_offered;
    result.faults.warnings_delivered = fs.warnings_delivered;
    result.faults.warnings_dropped = fs.warnings_dropped;
    result.faults.warnings_corrupted = fs.warnings_corrupted;
    result.faults.retries = fs.retries;
    result.faults.retry_giveups = fs.retry_giveups;
    result.faults.spurious_warnings = fs.spurious_warnings;
    result.faults.link_outages = fs.link_outages;
    if (wdog) {
      result.faults.watchdog_engagements = wdog->engagements();
      result.faults.watchdog_disengagements = wdog->disengagements();
    }
  }
  return result;
}

}  // namespace coolpim::sys
