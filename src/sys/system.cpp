#include "sys/system.hpp"

#include "sys/system_run.hpp"

namespace coolpim::sys {

System::System(SystemConfig cfg) : cfg_{std::move(cfg)} {
  cfg_.gpu.validate();
  cfg_.hmc.validate();
}

RunResult System::run(const graph::WorkloadProfile& workload) {
  // Scalar driver of the resumable run (sys/system_run.hpp): every yield is
  // answered with an immediate scalar thermal step, which executes the exact
  // statement sequence of the pre-split monolithic epoch loop.  The batched
  // sweep executor (runner/sweep_batch.hpp) is the other driver.
  SystemRun run{cfg_, workload};
  while (run.advance()) run.thermal().step(run.pending_dt());
  return run.take_result();
}

}  // namespace coolpim::sys
