// Result export: RunResults as CSV tables (summary and time series).
//
// The exact column sets are exposed as summary_csv_columns() /
// timeseries_csv_columns() so tests can assert the writers, this header and
// docs/OBSERVABILITY.md never drift apart (tests/test_report.cpp,
// DocsHeaderColumnSync).
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "sys/metrics.hpp"

namespace coolpim::sys {

/// Header row of write_summary_csv, in emission order.
[[nodiscard]] const std::vector<std::string_view>& summary_csv_columns();

/// Header row of write_timeseries_csv, in emission order.
[[nodiscard]] const std::vector<std::string_view>& timeseries_csv_columns();

/// One summary row per run: workload, scenario, timing, traffic, thermal and
/// energy columns (header: summary_csv_columns()).
void write_summary_csv(std::ostream& os, const std::vector<RunResult>& runs);

/// Long-format time series: one row per sample per run with columns
/// (workload, scenario, t_ms, pim_rate_op_per_ns, peak_dram_c,
/// link_data_gbps) -- the header row is exactly timeseries_csv_columns().
void write_timeseries_csv(std::ostream& os, const std::vector<RunResult>& runs);

}  // namespace coolpim::sys
