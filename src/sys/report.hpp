// Result export: RunResults as CSV tables (summary and time series).
#pragma once

#include <iosfwd>
#include <vector>

#include "sys/metrics.hpp"

namespace coolpim::sys {

/// One summary row per run: workload, scenario, timing, traffic, thermal and
/// energy columns.
void write_summary_csv(std::ostream& os, const std::vector<RunResult>& runs);

/// Long-format time series: one row per sample per run
/// (workload, scenario, t_ms, pim_rate, dram_temp, link_gbps).
void write_timeseries_csv(std::ostream& os, const std::vector<RunResult>& runs);

}  // namespace coolpim::sys
