// Multi-cube extension: a GPU driving several HMC cubes.
//
// The paper's prototype platform carries up to six HMC modules (Pico SC-6);
// the evaluation uses one.  This extension scales the full-system model to N
// cubes with the graph data striped across them.  Power-law graphs
// concentrate atomic updates on hub vertices, so one cube can receive a
// disproportionate share of the PIM traffic (`atomic_skew`); that cube
// overheats first and -- because kernels proceed at the pace of their
// slowest memory channel -- throttles the whole GPU.  CoolPIM's feedback
// loop reacts to the *hottest* cube's warnings, which is exactly what the
// per-response ERRSTAT transport provides for free.
#pragma once

#include <vector>

#include "sys/metrics.hpp"
#include "sys/system.hpp"

namespace coolpim::sys {

struct MultiCubeConfig {
  SystemConfig base{};
  std::size_t cubes{2};
  /// Fraction of all atomic (PIM-able) traffic landing on cube 0; the rest
  /// spreads evenly.  1/cubes = perfectly balanced.
  double atomic_skew{0.5};

  void validate() const;
};

struct MultiCubeResult {
  RunResult aggregate;                    // GPU-level timing and totals
  std::vector<Celsius> peak_dram_temps;   // per cube, measured epochs only
  std::vector<Celsius> final_dram_temps;  // per cube at run end (post-throttle)
  std::vector<double> pim_share;          // fraction of PIM ops served per cube
};

class MultiCubeSystem {
 public:
  explicit MultiCubeSystem(MultiCubeConfig cfg);

  [[nodiscard]] MultiCubeResult run(const graph::WorkloadProfile& workload);

  [[nodiscard]] const MultiCubeConfig& config() const { return cfg_; }

 private:
  MultiCubeConfig cfg_;
};

}  // namespace coolpim::sys
