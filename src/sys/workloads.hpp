// Workload registry: the paper's ten GraphBIG workloads on the LDBC-like
// graph, generated and profiled once and shared across scenario runs.
//
// Construction is the profiling fast path: the CSR build fans out over a
// runner::Pool, the traversal source comes from the cached degree table, and
// the independent workload profiling runs execute in parallel into fixed
// output slots -- bit-identical to the serial reference path at any jobs
// count.  With COOLPIM_PROFILE_CACHE=<dir> set (or BuildOptions::cache_dir),
// profiles are loaded from / saved to a persistent content-addressed cache
// (sys/profile_cache.hpp) and warm runs skip the functional kernels
// entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "graph/profile.hpp"

namespace coolpim::obs {
class CounterRegistry;
}  // namespace coolpim::obs

namespace coolpim::sys {

/// The Fig. 10 workload order.
[[nodiscard]] const std::vector<std::string>& workload_names();

/// Extension workloads available beyond the paper's evaluation set.
[[nodiscard]] const std::vector<std::string>& extended_workload_names();

class WorkloadSet {
 public:
  struct BuildOptions {
    /// Profiling/CSR-build parallelism; 0 = runner::Pool::default_jobs()
    /// (COOLPIM_JOBS, else hardware concurrency).
    unsigned jobs{0};
    /// Run the original single-threaded construction with no pool and no
    /// cache -- the equivalence oracle the parallel path is tested against
    /// (same contract as the thermal solver's step_reference()).
    bool serial_reference{false};
    /// Consult the persistent profile cache.  The directory comes from
    /// `cache_dir` if non-empty, else the COOLPIM_PROFILE_CACHE environment
    /// variable; if neither is set the cache is silently off.
    bool use_cache{true};
    std::string cache_dir{};
    /// Optional sink for graph/profile_cache_hits, graph/profile_cache_misses
    /// and graph/profiles_computed counters.
    obs::CounterRegistry* counters{nullptr};
  };

  /// What construction actually did (cache behaviour, kernel work).
  struct BuildStats {
    std::uint64_t cache_hits{0};        // profiles served from the cache
    std::uint64_t cache_misses{0};      // cache consulted but unusable
    std::uint64_t profiles_computed{0}; // functional kernel runs executed
    bool cache_stored{false};           // a fresh entry was written
    unsigned jobs{1};                   // pool width used
  };

  /// Build the LDBC-like graph at `scale` (2^scale vertices, edge factor 16)
  /// and profile all ten paper workloads on it; `include_extended` adds the
  /// cc/tc extension workloads.
  explicit WorkloadSet(unsigned scale = 19, std::uint64_t seed = 1,
                       bool include_extended = false);
  WorkloadSet(unsigned scale, std::uint64_t seed, bool include_extended,
              const BuildOptions& options);

  [[nodiscard]] const graph::CsrGraph& graph() const { return graph_; }
  [[nodiscard]] const graph::WorkloadProfile& profile(const std::string& name) const;
  [[nodiscard]] const std::vector<graph::WorkloadProfile>& all() const { return profiles_; }
  [[nodiscard]] unsigned scale() const { return scale_; }
  /// Graph-generation seed; part of the identity the parallel runner hashes.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const BuildStats& build_stats() const { return stats_; }

 private:
  unsigned scale_;
  std::uint64_t seed_;
  graph::CsrGraph graph_;
  std::vector<graph::WorkloadProfile> profiles_;
  std::unordered_map<std::string, std::size_t> index_;
  BuildStats stats_;
};

}  // namespace coolpim::sys
