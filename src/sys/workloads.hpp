// Workload registry: the paper's ten GraphBIG workloads on the LDBC-like
// graph, generated and profiled once and shared across scenario runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/profile.hpp"

namespace coolpim::sys {

/// The Fig. 10 workload order.
[[nodiscard]] const std::vector<std::string>& workload_names();

/// Extension workloads available beyond the paper's evaluation set.
[[nodiscard]] const std::vector<std::string>& extended_workload_names();

class WorkloadSet {
 public:
  /// Build the LDBC-like graph at `scale` (2^scale vertices, edge factor 16)
  /// and profile all ten paper workloads on it; `include_extended` adds the
  /// cc/tc extension workloads.
  explicit WorkloadSet(unsigned scale = 19, std::uint64_t seed = 1,
                       bool include_extended = false);

  [[nodiscard]] const graph::CsrGraph& graph() const { return graph_; }
  [[nodiscard]] const graph::WorkloadProfile& profile(const std::string& name) const;
  [[nodiscard]] const std::vector<graph::WorkloadProfile>& all() const { return profiles_; }
  [[nodiscard]] unsigned scale() const { return scale_; }
  /// Graph-generation seed; part of the identity the parallel runner hashes.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  unsigned scale_;
  std::uint64_t seed_;
  graph::CsrGraph graph_;
  std::vector<graph::WorkloadProfile> profiles_;
};

}  // namespace coolpim::sys
