#include "sys/workloads.hpp"

#include "common/error.hpp"
#include "graph/generator.hpp"
#include "graph/workloads.hpp"

namespace coolpim::sys {

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names{
      "dc",       "kcore",    "pagerank", "bfs-ta",   "bfs-dwc",
      "bfs-ttc",  "bfs-twc",  "sssp-dtc", "sssp-dwc", "sssp-twc",
  };
  return names;
}

const std::vector<std::string>& extended_workload_names() {
  static const std::vector<std::string> names{"cc", "tc"};
  return names;
}

WorkloadSet::WorkloadSet(unsigned scale, std::uint64_t seed, bool include_extended)
    : scale_{scale}, seed_{seed}, graph_{graph::make_ldbc_like(scale, seed)} {
  using graph::BfsVariant;
  using graph::SsspVariant;
  // Traverse from the highest-degree vertex (standard practice for RMAT
  // graphs, where random vertices are often isolated).
  graph::VertexId source = 0;
  std::uint32_t best_degree = 0;
  for (graph::VertexId v = 0; v < graph_.num_vertices(); ++v) {
    if (graph_.out_degree(v) > best_degree) {
      best_degree = graph_.out_degree(v);
      source = v;
    }
  }

  profiles_.push_back(graph::run_degree_centrality(graph_));
  profiles_.push_back(graph::run_kcore(graph_));
  profiles_.push_back(graph::run_pagerank(graph_));
  profiles_.push_back(graph::run_bfs(graph_, source, BfsVariant::kTopologyAtomic));
  profiles_.push_back(graph::run_bfs(graph_, source, BfsVariant::kDataWarpCentric));
  profiles_.push_back(graph::run_bfs(graph_, source, BfsVariant::kTopologyThreadCentric));
  profiles_.push_back(graph::run_bfs(graph_, source, BfsVariant::kTopologyWarpCentric));
  profiles_.push_back(graph::run_sssp(graph_, source, SsspVariant::kDataThreadCentric));
  profiles_.push_back(graph::run_sssp(graph_, source, SsspVariant::kDataWarpCentric));
  profiles_.push_back(graph::run_sssp(graph_, source, SsspVariant::kTopologyWarpCentric));

  if (include_extended) {
    profiles_.push_back(graph::run_connected_components(graph_));
    profiles_.push_back(graph::run_triangle_count(graph_));
  }
}

const graph::WorkloadProfile& WorkloadSet::profile(const std::string& name) const {
  for (const auto& p : profiles_) {
    if (p.name == name) return p;
  }
  throw ConfigError("unknown workload: " + name);
}

}  // namespace coolpim::sys
