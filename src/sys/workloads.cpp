#include "sys/workloads.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "graph/generator.hpp"
#include "graph/workloads.hpp"
#include "obs/counters.hpp"
#include "obs/names.hpp"
#include "runner/pool.hpp"
#include "sys/profile_cache.hpp"

namespace coolpim::sys {

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names{
      "dc",       "kcore",    "pagerank", "bfs-ta",   "bfs-dwc",
      "bfs-ttc",  "bfs-twc",  "sssp-dtc", "sssp-dwc", "sssp-twc",
  };
  return names;
}

const std::vector<std::string>& extended_workload_names() {
  static const std::vector<std::string> names{"cc", "tc"};
  return names;
}

namespace {

graph::WorkloadProfile compute_profile(const graph::CsrGraph& g, graph::VertexId source,
                                       const std::string& name) {
  using graph::BfsVariant;
  using graph::SsspVariant;
  if (name == "dc") return graph::run_degree_centrality(g);
  if (name == "kcore") return graph::run_kcore(g);
  if (name == "pagerank") return graph::run_pagerank(g);
  if (name == "bfs-ta") return graph::run_bfs(g, source, BfsVariant::kTopologyAtomic);
  if (name == "bfs-dwc") return graph::run_bfs(g, source, BfsVariant::kDataWarpCentric);
  if (name == "bfs-ttc") return graph::run_bfs(g, source, BfsVariant::kTopologyThreadCentric);
  if (name == "bfs-twc") return graph::run_bfs(g, source, BfsVariant::kTopologyWarpCentric);
  if (name == "sssp-dtc") return graph::run_sssp(g, source, SsspVariant::kDataThreadCentric);
  if (name == "sssp-dwc") return graph::run_sssp(g, source, SsspVariant::kDataWarpCentric);
  if (name == "sssp-twc") return graph::run_sssp(g, source, SsspVariant::kTopologyWarpCentric);
  if (name == "cc") return graph::run_connected_components(g);
  if (name == "tc") return graph::run_triangle_count(g);
  throw ConfigError("unknown workload: " + name);
}

/// A cache entry is only trusted if it describes exactly this set: same
/// workload names in the same order, captured on a graph of the same
/// dimensions.  (Payload corruption is already rejected by the file's hash
/// trailer; this guards semantic staleness, e.g. a key collision or an entry
/// from a differently-shaped build.)
bool cached_profiles_usable(const std::vector<graph::WorkloadProfile>& cached,
                            const std::vector<std::string>& names,
                            const graph::CsrGraph& g) {
  if (cached.size() != names.size()) return false;
  for (std::size_t i = 0; i < cached.size(); ++i) {
    if (cached[i].name != names[i]) return false;
    if (cached[i].graph_vertices != g.num_vertices()) return false;
    if (cached[i].graph_edges != g.num_edges()) return false;
  }
  return true;
}

std::string resolve_cache_dir(const WorkloadSet::BuildOptions& options) {
  if (!options.use_cache || options.serial_reference) return {};
  if (!options.cache_dir.empty()) return options.cache_dir;
  if (const char* env = std::getenv("COOLPIM_PROFILE_CACHE"); env && *env) return env;
  return {};
}

}  // namespace

WorkloadSet::WorkloadSet(unsigned scale, std::uint64_t seed, bool include_extended)
    : WorkloadSet{scale, seed, include_extended, BuildOptions{}} {}

WorkloadSet::WorkloadSet(unsigned scale, std::uint64_t seed, bool include_extended,
                         const BuildOptions& options)
    : scale_{scale}, seed_{seed} {
  std::vector<std::string> names = workload_names();
  if (include_extended) {
    const auto& ext = extended_workload_names();
    names.insert(names.end(), ext.begin(), ext.end());
  }

  // The serial reference path runs with no pool at all; otherwise the CSR
  // build and the profiling runs share one pool.
  std::unique_ptr<runner::Pool> pool;
  if (!options.serial_reference) pool = std::make_unique<runner::Pool>(options.jobs);
  stats_.jobs = pool ? pool->size() : 1;

  graph_ = graph::make_ldbc_like(scale, seed, pool.get());

  // Traverse from the highest-degree vertex (standard practice for RMAT
  // graphs, where random vertices are often isolated).
  const graph::VertexId source = graph_.max_degree_vertex();

  const std::string cache_dir = resolve_cache_dir(options);
  const std::uint64_t key = profile_cache_key(scale, seed, include_extended);

  bool loaded = false;
  if (!cache_dir.empty()) {
    std::vector<graph::WorkloadProfile> cached;
    if (load_profiles(cache_dir, key, cached) &&
        cached_profiles_usable(cached, names, graph_)) {
      profiles_ = std::move(cached);
      stats_.cache_hits = profiles_.size();
      loaded = true;
    } else {
      stats_.cache_misses = 1;
    }
  }

  if (!loaded) {
    // Each run writes its own pre-sized slot: output order is the name-list
    // order regardless of completion order, and every run is a pure function
    // of the shared const graph, so the profiles (checksums included) are
    // bit-identical to the serial path at any jobs count.
    profiles_.resize(names.size());
    const auto run_one = [&](std::size_t i) {
      profiles_[i] = compute_profile(graph_, source, names[i]);
    };
    if (pool) {
      pool->parallel_for(names.size(), run_one);
    } else {
      for (std::size_t i = 0; i < names.size(); ++i) run_one(i);
    }
    stats_.profiles_computed = names.size();
    if (!cache_dir.empty()) stats_.cache_stored = save_profiles(cache_dir, key, profiles_);
  }

  index_.reserve(profiles_.size());
  for (std::size_t i = 0; i < profiles_.size(); ++i) index_.emplace(profiles_[i].name, i);

  if (options.counters) {
    options.counters->counter(obs::names::kGraphProfileCacheHits).add(stats_.cache_hits);
    options.counters->counter(obs::names::kGraphProfileCacheMisses).add(stats_.cache_misses);
    options.counters->counter(obs::names::kGraphProfilesComputed).add(stats_.profiles_computed);
  }
}

const graph::WorkloadProfile& WorkloadSet::profile(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) throw ConfigError("unknown workload: " + name);
  return profiles_[it->second];
}

}  // namespace coolpim::sys
