// Evaluation scenarios (paper Section V-B).
#pragma once

#include <string_view>

namespace coolpim::sys {

enum class Scenario {
  kNonOffloading,   // baseline: HMC as plain GPU memory
  kNaiveOffloading, // PEI-style: offload everything, no source control
  kCoolPimSw,       // SW-DynT token pool
  kCoolPimHw,       // HW-DynT PCU
  kIdealThermal,    // naive offloading with unlimited cooling
  kBwThrottle,      // comparison policy: blanket bandwidth throttling
  // Predictive members of the controller zoo (control/registry.hpp).  New
  // scenarios append here so existing enum values -- and therefore existing
  // experiment keys and golden results -- stay stable.
  kMpc,             // MPC-style RC-model rollout (control/mpc.hpp)
  kPolicyTable,     // offline-fitted lookup table (control/policy_table.hpp)
};

[[nodiscard]] constexpr std::string_view to_string(Scenario s) {
  switch (s) {
    case Scenario::kNonOffloading: return "Non-Offloading";
    case Scenario::kNaiveOffloading: return "Naive-Offloading";
    case Scenario::kCoolPimSw: return "CoolPIM (SW)";
    case Scenario::kCoolPimHw: return "CoolPIM (HW)";
    case Scenario::kIdealThermal: return "Ideal Thermal";
    case Scenario::kBwThrottle: return "BW-Throttle";
    case Scenario::kMpc: return "CoolPIM (MPC)";
    case Scenario::kPolicyTable: return "Policy-Table";
  }
  return "?";
}

inline constexpr Scenario kAllScenarios[] = {
    Scenario::kNonOffloading, Scenario::kNaiveOffloading, Scenario::kCoolPimSw,
    Scenario::kCoolPimHw,     Scenario::kIdealThermal,    Scenario::kBwThrottle,
    Scenario::kMpc,           Scenario::kPolicyTable,
};

/// Inverse of to_string(); returns false (leaving `out` untouched) for an
/// unknown name.
[[nodiscard]] constexpr bool scenario_from_string(std::string_view name, Scenario& out) {
  for (const Scenario s : kAllScenarios) {
    if (to_string(s) == name) {
      out = s;
      return true;
    }
  }
  return false;
}

}  // namespace coolpim::sys
