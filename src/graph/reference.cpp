#include "graph/reference.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <queue>

#include "graph/workloads.hpp"

namespace coolpim::graph::reference {

std::vector<std::uint32_t> bfs_levels(const CsrGraph& g, VertexId source) {
  std::vector<std::uint32_t> level(g.num_vertices(), kUnreached);
  level[source] = 0;
  std::deque<VertexId> queue{source};
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const VertexId dst : g.neighbors(v)) {
      if (level[dst] == kUnreached) {
        level[dst] = level[v] + 1;
        queue.push_back(dst);
      }
    }
  }
  return level;
}

std::vector<std::uint32_t> sssp_distances(const CsrGraph& g, VertexId source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  dist[source] = 0;
  using Entry = std::pair<std::uint32_t, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const std::uint32_t cand = d + wts[e];
      if (cand < dist[nbrs[e]]) {
        dist[nbrs[e]] = cand;
        heap.emplace(cand, nbrs[e]);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> in_degrees(const CsrGraph& g) {
  std::vector<std::uint32_t> deg(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId dst : g.neighbors(v)) ++deg[dst];
  }
  return deg;
}

std::vector<std::uint8_t> kcore_removed(const CsrGraph& g, unsigned k) {
  const VertexId n = g.num_vertices();
  std::vector<std::int64_t> degree(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    degree[v] += g.out_degree(v);
    for (const VertexId dst : g.neighbors(v)) ++degree[dst];
  }
  std::vector<std::uint8_t> removed(n, 0);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (degree[v] < static_cast<std::int64_t>(k)) queue.push_back(v);
  }
  // Round-synchronous peeling to match the kernel's semantics: a vertex's
  // decrements only take effect for later rounds.
  while (!queue.empty()) {
    std::deque<VertexId> next;
    for (const VertexId v : queue) {
      if (removed[v]) continue;
      removed[v] = 1;
      for (const VertexId dst : g.neighbors(v)) {
        if (!removed[dst]) {
          --degree[dst];
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (!removed[v] && degree[v] < static_cast<std::int64_t>(k)) next.push_back(v);
    }
    queue = std::move(next);
  }
  return removed;
}

std::vector<double> pagerank_scores(const CsrGraph& g, unsigned iterations, double damping) {
  const VertexId n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (unsigned i = 0; i < iterations; ++i) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / static_cast<double>(n));
    for (VertexId v = 0; v < n; ++v) {
      const auto deg = g.out_degree(v);
      if (deg == 0) continue;
      const double share = damping * rank[v] / static_cast<double>(deg);
      for (const VertexId dst : g.neighbors(v)) next[dst] += share;
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<VertexId> component_labels(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId dst : g.neighbors(v)) {
      const VertexId a = find(v), b = find(dst);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

std::uint64_t triangle_count(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::vector<VertexId>> sorted(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    sorted[v].assign(nbrs.begin(), nbrs.end());
    std::sort(sorted[v].begin(), sorted[v].end());
    sorted[v].erase(std::unique(sorted[v].begin(), sorted[v].end()), sorted[v].end());
  }
  std::uint64_t triangles = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : sorted[v]) {
      if (u <= v) continue;  // ordered pairs only, matching run_triangle_count
      // set intersection |N(v) & N(u)| via std::set_intersection-like count
      std::size_t i = 0, j = 0;
      while (i < sorted[v].size() && j < sorted[u].size()) {
        if (sorted[v][i] == sorted[u][j]) {
          ++triangles;
          ++i;
          ++j;
        } else if (sorted[v][i] < sorted[u][j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return triangles;
}

}  // namespace coolpim::graph::reference
