#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>

#include "runner/pool.hpp"

namespace coolpim::graph {

namespace {

/// Edge chunking for the parallel counting sort: enough chunks to feed the
/// pool, but never so many that the per-chunk count tables dominate.
std::size_t chunk_count(std::size_t edges, unsigned jobs) {
  constexpr std::size_t kMinEdgesPerChunk = 1u << 15;
  const std::size_t by_size = std::max<std::size_t>(1, edges / kMinEdgesPerChunk);
  return std::max<std::size_t>(1, std::min<std::size_t>(jobs, by_size));
}

}  // namespace

CsrGraph CsrGraph::from_edges(VertexId num_vertices,
                              std::vector<std::pair<VertexId, VertexId>> edges,
                              std::vector<std::uint32_t> weights, runner::Pool* pool) {
  COOLPIM_REQUIRE(weights.empty() || weights.size() == edges.size(),
                  "weights must match edge count");
  CsrGraph g;
  g.n_ = num_vertices;
  g.row_ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);

  const std::size_t chunks =
      pool != nullptr ? chunk_count(edges.size(), pool->size()) : 1;
  if (chunks <= 1) {
    for (const auto& [src, dst] : edges) {
      COOLPIM_REQUIRE(src < num_vertices && dst < num_vertices, "edge endpoint out of range");
      ++g.row_ptr_[src + 1];
    }
    std::partial_sum(g.row_ptr_.begin(), g.row_ptr_.end(), g.row_ptr_.begin());

    g.col_idx_.resize(edges.size());
    if (!weights.empty()) g.weights_.resize(edges.size());
    std::vector<EdgeId> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto [src, dst] = edges[i];
      const EdgeId pos = cursor[src]++;
      g.col_idx_[pos] = dst;
      if (!weights.empty()) g.weights_[pos] = weights[i];
    }
  } else {
    // Chunked counting sort.  Each chunk counts its own contiguous edge
    // range; a serial pass turns the per-chunk counts into per-chunk write
    // cursors (chunk c's cursor for vertex v starts where chunk c-1's edges
    // of v end), and the scatter then runs chunk-parallel.  Because an edge's
    // final position depends only on (source, input rank within source), the
    // output is identical to the serial build for any chunking.
    const std::size_t per_chunk = (edges.size() + chunks - 1) / chunks;
    std::vector<std::vector<EdgeId>> counts(chunks);
    pool->parallel_for(chunks, [&](std::size_t c) {
      auto& count = counts[c];
      count.assign(static_cast<std::size_t>(num_vertices), 0);
      const std::size_t lo = c * per_chunk;
      const std::size_t hi = std::min(edges.size(), lo + per_chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        const auto [src, dst] = edges[i];
        COOLPIM_REQUIRE(src < num_vertices && dst < num_vertices,
                        "edge endpoint out of range");
        ++count[src];
      }
    });

    std::vector<std::vector<EdgeId>> starts(chunks);
    for (auto& s : starts) s.resize(static_cast<std::size_t>(num_vertices));
    EdgeId running = 0;
    for (VertexId v = 0; v < num_vertices; ++v) {
      g.row_ptr_[v] = running;
      for (std::size_t c = 0; c < chunks; ++c) {
        starts[c][v] = running;
        running += counts[c][v];
      }
    }
    g.row_ptr_[num_vertices] = running;

    g.col_idx_.resize(edges.size());
    if (!weights.empty()) g.weights_.resize(edges.size());
    const bool weighted = !weights.empty();
    pool->parallel_for(chunks, [&](std::size_t c) {
      auto& cursor = starts[c];
      const std::size_t lo = c * per_chunk;
      const std::size_t hi = std::min(edges.size(), lo + per_chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        const auto [src, dst] = edges[i];
        const EdgeId pos = cursor[src]++;
        g.col_idx_[pos] = dst;
        if (weighted) g.weights_[pos] = weights[i];
      }
    });
  }

  g.degrees_.resize(static_cast<std::size_t>(num_vertices));
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.degrees_[v] = static_cast<std::uint32_t>(g.row_ptr_[v + 1] - g.row_ptr_[v]);
  }
  return g;
}

std::uint32_t CsrGraph::max_degree() const {
  std::uint32_t best = 0;
  for (const auto d : degrees_) best = std::max(best, d);
  return best;
}

VertexId CsrGraph::max_degree_vertex() const {
  VertexId best = 0;
  std::uint32_t best_degree = 0;
  for (VertexId v = 0; v < n_; ++v) {
    if (degrees_[v] > best_degree) {
      best_degree = degrees_[v];
      best = v;
    }
  }
  return best;
}

}  // namespace coolpim::graph
