#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>

namespace coolpim::graph {

CsrGraph CsrGraph::from_edges(VertexId num_vertices,
                              std::vector<std::pair<VertexId, VertexId>> edges,
                              std::vector<std::uint32_t> weights) {
  COOLPIM_REQUIRE(weights.empty() || weights.size() == edges.size(),
                  "weights must match edge count");
  CsrGraph g;
  g.n_ = num_vertices;
  g.row_ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);

  for (const auto& [src, dst] : edges) {
    COOLPIM_REQUIRE(src < num_vertices && dst < num_vertices, "edge endpoint out of range");
    ++g.row_ptr_[src + 1];
  }
  std::partial_sum(g.row_ptr_.begin(), g.row_ptr_.end(), g.row_ptr_.begin());

  g.col_idx_.resize(edges.size());
  if (!weights.empty()) g.weights_.resize(edges.size());
  std::vector<EdgeId> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [src, dst] = edges[i];
    const EdgeId pos = cursor[src]++;
    g.col_idx_[pos] = dst;
    if (!weights.empty()) g.weights_[pos] = weights[i];
  }
  return g;
}

std::uint32_t CsrGraph::max_degree() const {
  std::uint32_t best = 0;
  for (VertexId v = 0; v < n_; ++v) best = std::max(best, out_degree(v));
  return best;
}

}  // namespace coolpim::graph
