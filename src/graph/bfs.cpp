// Breadth-first search variants (GraphBIG GPU kernels, functional model).
#include <algorithm>
#include <bit>

#include "graph/simt.hpp"
#include "graph/workloads.hpp"

namespace coolpim::graph {

std::uint64_t checksum_bytes(const void* data, std::size_t bytes) {
  // FNV-1a, 64-bit.
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// Instruction-cost constants (warp instructions).  The absolute scale only
// shifts the compute/memory balance; graph kernels stay memory-bound across
// a wide range, matching the paper's bandwidth-saturated setting.
constexpr double kInstrPerEdge = 8.0;
constexpr double kWarpBase = 16.0;

struct BfsTraits {
  Driver driver;
  Parallelism parallelism;
  bool atomic_frontier;  // bfs-ta: frontier bitmap maintained with atomics
};

// Every GraphBIG GPU BFS variant updates the discovered level with an
// unconditional atomicMin per traversed edge (the frontier state is shared
// and racy, so a pre-check cannot be trusted); GraphPIM maps each of those
// atomics to a PIM instruction.  The variants differ in how work is found
// (topology scan vs. frontier queue) and mapped (thread vs. warp).
BfsTraits traits_for(BfsVariant v) {
  switch (v) {
    case BfsVariant::kTopologyAtomic:
      return {Driver::kTopology, Parallelism::kThreadCentric, true};
    case BfsVariant::kTopologyThreadCentric:
      return {Driver::kTopology, Parallelism::kThreadCentric, false};
    case BfsVariant::kTopologyWarpCentric:
      return {Driver::kTopology, Parallelism::kWarpCentric, false};
    case BfsVariant::kDataWarpCentric:
      return {Driver::kData, Parallelism::kWarpCentric, false};
  }
  throw ConfigError("unknown BFS variant");
}

const char* name_for(BfsVariant v) {
  switch (v) {
    case BfsVariant::kTopologyAtomic: return "bfs-ta";
    case BfsVariant::kTopologyThreadCentric: return "bfs-ttc";
    case BfsVariant::kTopologyWarpCentric: return "bfs-twc";
    case BfsVariant::kDataWarpCentric: return "bfs-dwc";
  }
  return "bfs-?";
}

}  // namespace

WorkloadProfile run_bfs(const CsrGraph& g, VertexId source, BfsVariant variant) {
  COOLPIM_REQUIRE(source < g.num_vertices(), "BFS source out of range");
  const auto t = traits_for(variant);
  const VertexId n = g.num_vertices();
  const std::vector<std::uint32_t>& degree = g.degrees();

  WorkloadProfile profile;
  profile.name = name_for(variant);
  profile.driver = t.driver;
  profile.parallelism = t.parallelism;
  profile.atomic_kind = hmc::PimOpcode::kCasGreater;  // atomicMin on the level
  profile.graph_vertices = n;
  profile.graph_edges = g.num_edges();

  std::vector<std::uint32_t> level(n, kUnreached);
  level[source] = 0;

  // All iteration state is hoisted out of the level loop and reused: the
  // frontier queue, the next-frontier bitmap it is rebuilt from, the SIMT
  // work buffer and (thread-centric) the active-warp index list.  Every
  // IterationProfile field is a sum over the frontier *set*, so rebuilding
  // the frontier in ascending id order from the bitmap leaves the profile
  // bit-identical to the push-in-discovery-order path (the only
  // order-sensitive costing, thread-centric warp grouping, is indexed by
  // vertex id, not queue position).
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  std::vector<std::uint64_t> next_bits((static_cast<std::size_t>(n) + 63) / 64, 0);
  std::vector<std::uint32_t> work;   // per-lane trip counts for SIMT costing
  std::vector<std::uint32_t> warp_ids;
  const bool thread_centric = t.parallelism == Parallelism::kThreadCentric;
  if (thread_centric) work.assign(n, 0);  // sparse-maintained dense lane vector

  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    IterationProfile it{};

    // Determine the scan set.
    if (t.driver == Driver::kTopology) {
      it.scanned_vertices = n;
      // Topology scan streams row_ptr and the level array.
      it.struct_scan_bytes += static_cast<std::uint64_t>(n) * (8 + 4);
    } else {
      it.scanned_vertices = frontier.size();
      // Frontier queue read + random row_ptr pair per frontier vertex.
      it.struct_scan_bytes += frontier.size() * 4;
      it.property_reads += 2 * frontier.size();
    }
    it.active_vertices = frontier.size();

    // Edge processing; discoveries go to the next-frontier bitmap.
    std::uint64_t discovered = 0;
    for (const VertexId v : frontier) {
      for (const VertexId dst : g.neighbors(v)) {
        ++it.edges_processed;
        // Reading the destination's vertex-property record is part of the
        // traversal, followed by the unconditional update atomic.
        ++it.property_reads;
        ++it.atomic_ops;  // atomicMin(level[dst], depth+1)
        if (level[dst] == kUnreached) {
          level[dst] = depth + 1;
          next_bits[dst >> 6] |= 1ULL << (dst & 63);
          ++discovered;
        }
      }
    }
    // col_idx traffic: warp-centric kernels read 32 consecutive edges per
    // load (fully coalesced, 4 B/edge); thread-centric lanes each walk their
    // own edge list, so a 64-byte line is only partially consumed before
    // eviction (~16 effective bytes per 4-byte element).
    it.struct_scan_bytes += it.edges_processed *
        (t.parallelism == Parallelism::kWarpCentric ? 4 : 24);

    if (t.driver == Driver::kData) {
      // Enqueue discovered vertices: atomicAdd on the queue tail + store.
      it.atomic_ops += discovered;
      it.property_writes += discovered;
    } else if (t.atomic_frontier) {
      // bfs-ta maintains the next-frontier bitmap with atomic bit writes and
      // scans it alongside the level array every iteration.
      it.atomic_ops += discovered;
      it.struct_scan_bytes += n / 8;
    }

    // SIMT execution cost: only warps (thread-centric) or lanes
    // (warp-centric) that carry frontier work are visited; the idle rest is
    // folded in closed form (bit-identical to the dense reference costing).
    SimtCost cost;
    if (thread_centric) {
      warp_ids.clear();
      for (const VertexId v : frontier) {
        work[v] = degree[v];
        warp_ids.push_back(v / kWarpSize);
      }
      std::sort(warp_ids.begin(), warp_ids.end());
      warp_ids.erase(std::unique(warp_ids.begin(), warp_ids.end()), warp_ids.end());
      cost = thread_centric_cost_sparse(work, warp_ids, n, kInstrPerEdge, kWarpBase);
      for (const VertexId v : frontier) work[v] = 0;
    } else if (t.driver == Driver::kTopology) {
      work.clear();
      for (const VertexId v : frontier) work.push_back(degree[v]);
      cost = warp_centric_cost_sparse(work, n, kInstrPerEdge, kWarpBase);
    } else {
      work.clear();
      for (const VertexId v : frontier) work.push_back(degree[v]);
      cost = warp_centric_cost(work, kInstrPerEdge, kWarpBase);
    }
    it.compute_warp_instructions = cost.warp_instructions;
    it.divergent_warp_ratio = t.parallelism == Parallelism::kWarpCentric
                                  ? 0.02  // residual tail divergence only
                                  : cost.divergent_ratio();
    it.work_threads = thread_centric ? it.scanned_vertices
                                     : it.scanned_vertices * kWarpSize;

    profile.iterations.push_back(it);

    // Rebuild the frontier from the bitmap (ascending ids), clearing as we go.
    next.clear();
    for (std::size_t w = 0; w < next_bits.size(); ++w) {
      std::uint64_t bits = next_bits[w];
      if (bits == 0) continue;
      next_bits[w] = 0;
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        next.push_back(static_cast<VertexId>((w << 6) | b));
        bits &= bits - 1;
      }
    }
    frontier.swap(next);
    ++depth;
  }

  profile.result_checksum = checksum_vector(level);
  return profile;
}

}  // namespace coolpim::graph
