// Compressed sparse row graph, the storage format all workloads run on.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace coolpim::runner {
class Pool;
}  // namespace coolpim::runner

namespace coolpim::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Directed graph in CSR form, with optional 32-bit edge weights.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an edge list.  Self-loops are kept; duplicate edges are kept
  /// (graph generators may produce multi-edges, as real datasets do).
  ///
  /// With a pool of more than one job the counting sort runs chunked in
  /// parallel; the chunked scatter preserves the input order of every
  /// source's edges, so the resulting arrays are bit-identical to the serial
  /// build at any jobs count (tested in test_csr).
  static CsrGraph from_edges(VertexId num_vertices,
                             std::vector<std::pair<VertexId, VertexId>> edges,
                             std::vector<std::uint32_t> weights = {},
                             runner::Pool* pool = nullptr);

  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] EdgeId num_edges() const { return static_cast<EdgeId>(col_idx_.size()); }
  [[nodiscard]] bool has_weights() const { return !weights_.empty(); }

  [[nodiscard]] std::uint32_t out_degree(VertexId v) const {
    COOLPIM_ASSERT(v < n_);
    return degrees_[v];
  }

  /// Cached per-vertex out-degree table, built once with the CSR arrays.
  /// Kernels index this instead of differencing row_ptr per lookup, and the
  /// all-lanes-active workloads (dc, pagerank, cc) feed it straight into the
  /// SIMT cost model as their per-lane work vector.
  [[nodiscard]] const std::vector<std::uint32_t>& degrees() const { return degrees_; }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    COOLPIM_ASSERT(v < n_);
    return {col_idx_.data() + row_ptr_[v], col_idx_.data() + row_ptr_[v + 1]};
  }

  [[nodiscard]] std::span<const std::uint32_t> edge_weights(VertexId v) const {
    COOLPIM_ASSERT(v < n_ && has_weights());
    return {weights_.data() + row_ptr_[v], weights_.data() + row_ptr_[v + 1]};
  }

  [[nodiscard]] const std::vector<EdgeId>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<VertexId>& col_idx() const { return col_idx_; }

  /// Maximum out-degree (used by divergence estimation and Eq. 1 inputs).
  [[nodiscard]] std::uint32_t max_degree() const;
  /// Lowest-id vertex of maximum out-degree -- the traversal source every
  /// BFS/SSSP profiling run starts from (RMAT graphs have isolated vertices,
  /// so random sources are useless).
  [[nodiscard]] VertexId max_degree_vertex() const;
  [[nodiscard]] double mean_degree() const {
    return n_ ? static_cast<double>(num_edges()) / static_cast<double>(n_) : 0.0;
  }

  /// Byte footprint of the CSR arrays (what streams from memory on scans).
  [[nodiscard]] std::uint64_t structure_bytes() const {
    return row_ptr_.size() * sizeof(EdgeId) + col_idx_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(std::uint32_t);
  }

 private:
  VertexId n_{0};
  std::vector<EdgeId> row_ptr_;
  std::vector<VertexId> col_idx_;
  std::vector<std::uint32_t> weights_;
  std::vector<std::uint32_t> degrees_;
};

}  // namespace coolpim::graph
