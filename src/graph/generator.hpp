// Synthetic graph generators.
//
// The paper evaluates on the LDBC social-network dataset; we stand in with an
// RMAT/Kronecker generator parameterized to produce the same skewed,
// power-law degree structure LDBC graphs exhibit (DESIGN.md section 2).
// Uniform and grid generators provide contrast cases for tests and examples.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace coolpim::graph {

struct RmatParams {
  double a{0.57};
  double b{0.19};
  double c{0.19};
  // d = 1 - a - b - c
  bool scramble_ids{true};  // avoid degree locality artifacts
  bool weighted{true};
  std::uint32_t max_weight{64};
};

/// RMAT graph with 2^scale vertices and edge_factor * 2^scale edges.
/// Edge sampling is a sequential RNG walk; the CSR build fans out over
/// `pool` when given (bit-identical output at any jobs count).
[[nodiscard]] CsrGraph make_rmat(unsigned scale, unsigned edge_factor, std::uint64_t seed,
                                 const RmatParams& params = {},
                                 runner::Pool* pool = nullptr);

/// "LDBC-like" social network: RMAT with LDBC-interactive-like skew.
[[nodiscard]] CsrGraph make_ldbc_like(unsigned scale, std::uint64_t seed,
                                      runner::Pool* pool = nullptr);

/// Erdos-Renyi style uniform random graph (by edge sampling).
[[nodiscard]] CsrGraph make_uniform(VertexId num_vertices, EdgeId num_edges,
                                    std::uint64_t seed, bool weighted = true);

/// 2D grid (4-neighbour torus): regular degrees, zero divergence contrast.
[[nodiscard]] CsrGraph make_grid(VertexId width, VertexId height, bool weighted = true);

}  // namespace coolpim::graph
