// Extension workloads beyond the paper's ten: connected components (label
// propagation with atomicMin, as in GraphBIG's CC) and triangle counting
// (per-edge intersection with atomicAdd accumulation).
#include <algorithm>

#include "graph/simt.hpp"
#include "graph/workloads.hpp"

namespace coolpim::graph {

namespace {
constexpr double kInstrPerEdge = 9.0;
constexpr double kWarpBase = 16.0;
}  // namespace

WorkloadProfile run_connected_components(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  COOLPIM_REQUIRE(n > 0, "cc needs a non-empty graph");

  WorkloadProfile profile;
  profile.name = "cc";
  profile.driver = Driver::kTopology;
  profile.parallelism = Parallelism::kThreadCentric;
  profile.atomic_kind = hmc::PimOpcode::kCasGreater;  // atomicMin on labels
  profile.graph_vertices = n;
  profile.graph_edges = g.num_edges();

  // Label propagation over the *undirected-ized* edge relation: propagate
  // along out-edges in both directions each round until no label changes.
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  const SimtCost cost = thread_centric_cost(g.degrees(), kInstrPerEdge, kWarpBase);

  bool changed = true;
  while (changed) {
    changed = false;
    IterationProfile it{};
    it.scanned_vertices = n;
    it.active_vertices = n;
    it.work_threads = n;

    for (VertexId v = 0; v < n; ++v) {
      for (const VertexId dst : g.neighbors(v)) {
        ++it.edges_processed;
        ++it.property_reads;  // neighbour's label
        // Symmetric relaxation: both endpoints adopt the smaller label; the
        // kernel issues an atomicMin for each direction.
        it.atomic_ops += 2;
        const VertexId lo = std::min(label[v], label[dst]);
        if (label[v] != lo) {
          label[v] = lo;
          changed = true;
        }
        if (label[dst] != lo) {
          label[dst] = lo;
          changed = true;
        }
      }
    }
    it.struct_scan_bytes =
        static_cast<std::uint64_t>(n) * (8 + 4) + it.edges_processed * 24;
    it.compute_warp_instructions = cost.warp_instructions;
    it.divergent_warp_ratio = cost.divergent_ratio();
    profile.iterations.push_back(it);
  }

  profile.result_checksum = checksum_vector(label);
  return profile;
}

WorkloadProfile run_triangle_count(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  COOLPIM_REQUIRE(n > 0, "tc needs a non-empty graph");

  WorkloadProfile profile;
  profile.name = "tc";
  profile.driver = Driver::kTopology;
  profile.parallelism = Parallelism::kThreadCentric;
  profile.atomic_kind = hmc::PimOpcode::kSignedAdd8;
  profile.graph_vertices = n;
  profile.graph_edges = g.num_edges();

  // Sorted adjacency copies for merge-based intersection.
  std::vector<std::vector<VertexId>> sorted(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    sorted[v].assign(nbrs.begin(), nbrs.end());
    std::sort(sorted[v].begin(), sorted[v].end());
    sorted[v].erase(std::unique(sorted[v].begin(), sorted[v].end()), sorted[v].end());
  }

  IterationProfile it{};
  it.scanned_vertices = n;
  it.active_vertices = n;
  it.work_threads = n;

  std::uint64_t triangles = 0;
  std::vector<std::uint32_t> work(n);
  for (VertexId v = 0; v < n; ++v) {
    work[v] = static_cast<std::uint32_t>(sorted[v].size());
    for (const VertexId u : sorted[v]) {
      if (u <= v) continue;  // ordered pairs only (standard TC convention)
      ++it.edges_processed;
      // Merge-intersect N(v) and N(u): every comparison touches both lists.
      std::size_t i = 0, j = 0;
      while (i < sorted[v].size() && j < sorted[u].size()) {
        ++it.property_reads;
        if (sorted[v][i] == sorted[u][j]) {
          ++triangles;
          ++i;
          ++j;
        } else if (sorted[v][i] < sorted[u][j]) {
          ++i;
        } else {
          ++j;
        }
      }
      ++it.atomic_ops;  // atomicAdd of the per-edge count into the total
    }
  }
  it.struct_scan_bytes = static_cast<std::uint64_t>(n) * 8 + it.edges_processed * 24;
  const SimtCost cost = thread_centric_cost(work, kInstrPerEdge * 3.0, kWarpBase);
  it.compute_warp_instructions = cost.warp_instructions;
  it.divergent_warp_ratio = cost.divergent_ratio();
  profile.iterations.push_back(it);

  profile.result_checksum = checksum_bytes(&triangles, sizeof(triangles));
  return profile;
}

}  // namespace coolpim::graph
