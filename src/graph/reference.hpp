// Reference algorithm implementations, used only by tests to cross-validate
// the instrumented workloads (different algorithmic strategy, same answer).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace coolpim::graph::reference {

/// BFS levels via a plain FIFO queue.
[[nodiscard]] std::vector<std::uint32_t> bfs_levels(const CsrGraph& g, VertexId source);

/// Shortest-path distances via Dijkstra (binary heap).
[[nodiscard]] std::vector<std::uint32_t> sssp_distances(const CsrGraph& g, VertexId source);

/// In-degree of every vertex.
[[nodiscard]] std::vector<std::uint32_t> in_degrees(const CsrGraph& g);

/// k-core removal flags via bucket peeling on undirected-ized degree.
[[nodiscard]] std::vector<std::uint8_t> kcore_removed(const CsrGraph& g, unsigned k);

/// Power-iteration PageRank (pull style -- different accumulation order).
[[nodiscard]] std::vector<double> pagerank_scores(const CsrGraph& g, unsigned iterations,
                                                  double damping = 0.85);

/// Connected-component labels via union-find over the undirected-ized edges
/// (min vertex id per component).
[[nodiscard]] std::vector<VertexId> component_labels(const CsrGraph& g);

/// Triangle count over the de-duplicated undirected-ized adjacency (counts
/// ordered wedges closed by an edge, same convention as run_triangle_count).
[[nodiscard]] std::uint64_t triangle_count(const CsrGraph& g);

}  // namespace coolpim::graph::reference
