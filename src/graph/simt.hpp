// SIMT cost accounting shared by the workload implementations.
//
// Thread-centric kernels map one vertex to one thread: a warp of 32
// consecutive vertices executes in lock-step, so its edge loop runs for the
// *maximum* trip count in the warp and the warp diverges when lanes have
// unequal work (the paper's Ratio_DivergentWarp in Eq. 1).  Warp-centric
// kernels give a whole warp to one vertex and stride its edge list 32-wide,
// which keeps control flow uniform (low divergence) at the cost of extra
// per-vertex instructions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

namespace coolpim::graph {

inline constexpr std::uint32_t kWarpSize = 32;

struct SimtCost {
  std::uint64_t warp_instructions{0};
  std::uint64_t warps{0};
  /// Sum over active warps of (1 - mean_work/max_work): the fraction of
  /// lock-step loop trips in which lanes sit idle.  divergent_ratio() is the
  /// average -- a continuous version of the paper's Ratio_DivergentWarp that
  /// does not saturate at 1 the moment any two lanes differ.
  double divergence_accum{0.0};
  std::uint64_t active_warps{0};

  [[nodiscard]] double divergent_ratio() const {
    return active_warps ? divergence_accum / static_cast<double>(active_warps) : 0.0;
  }
};

/// Thread-centric cost over a per-lane work vector (work[i] = loop trips of
/// lane i, 0 for inactive lanes).  `instr_per_item` models the loop body and
/// `base_instr` the per-warp prologue.
inline SimtCost thread_centric_cost(std::span<const std::uint32_t> work, double instr_per_item,
                                    double base_instr) {
  SimtCost cost;
  for (std::size_t i = 0; i < work.size(); i += kWarpSize) {
    const std::size_t end = std::min(work.size(), i + kWarpSize);
    std::uint32_t max_w = 0;
    std::uint64_t sum_w = 0;
    for (std::size_t j = i; j < end; ++j) {
      max_w = std::max(max_w, work[j]);
      sum_w += work[j];
    }
    ++cost.warps;
    cost.warp_instructions += static_cast<std::uint64_t>(
        base_instr + instr_per_item * static_cast<double>(max_w));
    if (max_w > 0) {
      ++cost.active_warps;
      const double mean = static_cast<double>(sum_w) /
                          static_cast<double>(std::min<std::size_t>(kWarpSize, end - i));
      cost.divergence_accum += 1.0 - mean / static_cast<double>(max_w);
    }
  }
  return cost;
}

/// Sparse-frontier thread-centric cost: bit-identical to thread_centric_cost
/// over a dense `work` vector of `total_lanes` entries that is zero outside
/// the active lanes, but only visits warps that contain at least one active
/// lane.  `active_warps` must hold the sorted, deduplicated warp indices
/// (lane / 32) of every lane with nonzero work; the remaining warps each
/// contribute exactly the empty-warp cost of the dense reference (`warps`
/// counted, base instructions issued, no divergence), folded in closed form.
/// The dense function is retained as the equivalence oracle (tested on
/// adversarial frontiers in test_profile_fastpath).
inline SimtCost thread_centric_cost_sparse(std::span<const std::uint32_t> work,
                                           std::span<const std::uint32_t> active_warps,
                                           std::size_t total_lanes, double instr_per_item,
                                           double base_instr) {
  SimtCost cost;
  const std::uint64_t total_warps = (total_lanes + kWarpSize - 1) / kWarpSize;
  cost.warps = total_warps;
  cost.warp_instructions = (total_warps - active_warps.size()) *
                           static_cast<std::uint64_t>(base_instr);
  for (const std::uint32_t w : active_warps) {
    const std::size_t i = static_cast<std::size_t>(w) * kWarpSize;
    const std::size_t end = std::min(total_lanes, i + kWarpSize);
    std::uint32_t max_w = 0;
    std::uint64_t sum_w = 0;
    for (std::size_t j = i; j < end; ++j) {
      max_w = std::max(max_w, work[j]);
      sum_w += work[j];
    }
    cost.warp_instructions += static_cast<std::uint64_t>(
        base_instr + instr_per_item * static_cast<double>(max_w));
    if (max_w > 0) {
      ++cost.active_warps;
      const double mean = static_cast<double>(sum_w) /
                          static_cast<double>(std::min<std::size_t>(kWarpSize, end - i));
      cost.divergence_accum += 1.0 - mean / static_cast<double>(max_w);
    }
  }
  return cost;
}

/// Warp-centric cost: one warp per work item, edge list strided 32-wide.
/// Control flow is uniform across the warp; only the tail chunk predicates
/// lanes off, which we do not count as divergence (matching the low ratio
/// the paper attributes to warp-centric kernels).
inline SimtCost warp_centric_cost(std::span<const std::uint32_t> work, double instr_per_item,
                                  double base_instr) {
  SimtCost cost;
  for (const auto w : work) {
    // ceil(w / 32) strided loop iterations, at least one pass for the check.
    const std::uint64_t chunks = std::max<std::uint64_t>(1, (w + kWarpSize - 1) / kWarpSize);
    ++cost.warps;
    cost.warp_instructions += static_cast<std::uint64_t>(
        base_instr + instr_per_item * static_cast<double>(chunks));
  }
  return cost;
}

/// Sparse-frontier warp-centric cost: bit-identical to warp_centric_cost over
/// a dense vector of `total_items` entries that is zero outside the
/// `active_work` values (any order -- per-item costs are order-independent).
/// Each idle item still runs one strided pass for the work check, folded in
/// closed form instead of being scanned.
inline SimtCost warp_centric_cost_sparse(std::span<const std::uint32_t> active_work,
                                         std::size_t total_items, double instr_per_item,
                                         double base_instr) {
  SimtCost cost = warp_centric_cost(active_work, instr_per_item, base_instr);
  const std::uint64_t idle = total_items - active_work.size();
  cost.warps += idle;
  cost.warp_instructions += idle * static_cast<std::uint64_t>(base_instr + instr_per_item);
  return cost;
}

}  // namespace coolpim::graph
