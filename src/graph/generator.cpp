#include "graph/generator.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"

namespace coolpim::graph {

namespace {
std::vector<std::uint32_t> random_weights(Rng& rng, std::size_t n, std::uint32_t max_weight) {
  std::vector<std::uint32_t> w(n);
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.next_in(1, max_weight));
  return w;
}
}  // namespace

CsrGraph make_rmat(unsigned scale, unsigned edge_factor, std::uint64_t seed,
                   const RmatParams& params, runner::Pool* pool) {
  COOLPIM_REQUIRE(scale >= 1 && scale <= 30, "rmat scale out of range");
  const double d = 1.0 - params.a - params.b - params.c;
  COOLPIM_REQUIRE(d >= 0.0, "rmat probabilities must sum to <= 1");

  const auto n = static_cast<VertexId>(1u << scale);
  const auto m = static_cast<EdgeId>(edge_factor) * n;
  Rng rng{seed};

  // Optional ID scramble so high-degree vertices are not clustered at 0.
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  if (params.scramble_ids) {
    for (VertexId i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[static_cast<VertexId>(rng.next_below(i + 1))]);
    }
  }

  // Quadrant selection in the integer domain.  next_double() is exactly
  // (next_u64() >> 11) * 2^-53 and multiplying a double threshold by 2^53 is
  // exact (pure exponent shift), so `r < t` over doubles is equivalent to
  // `u < ceil(t * 2^53)` over the raw 53-bit draw -- same RNG stream, same
  // edges, no int->double conversion and no branch chain per bit.
  const auto tab = static_cast<std::uint64_t>(std::ceil((params.a + params.b) * 0x1p53));
  const std::uint64_t quadrant_lo[2] = {
      static_cast<std::uint64_t>(std::ceil(params.a * 0x1p53)),
      static_cast<std::uint64_t>(std::ceil((params.a + params.b + params.c) * 0x1p53))};
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    VertexId src = 0, dst = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const std::uint64_t u = rng.next_u64() >> 11;
      const unsigned sx = u >= tab;          // right half (quadrants c/d)
      const unsigned sy = u >= quadrant_lo[sx];  // bottom half within it
      src = (src << 1) | sx;
      dst = (dst << 1) | sy;
    }
    edges.emplace_back(perm[src], perm[dst]);
  }

  std::vector<std::uint32_t> weights;
  if (params.weighted) weights = random_weights(rng, edges.size(), params.max_weight);
  return CsrGraph::from_edges(n, std::move(edges), std::move(weights), pool);
}

CsrGraph make_ldbc_like(unsigned scale, std::uint64_t seed, runner::Pool* pool) {
  // LDBC interactive "knows" graphs average ~16-30 neighbours with a strongly
  // skewed tail; RMAT at edge factor 16 with the Graph500 parameters matches
  // the degree skew graph workloads are sensitive to.
  return make_rmat(scale, 16, seed, {}, pool);
}

CsrGraph make_uniform(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed,
                      bool weighted) {
  COOLPIM_REQUIRE(num_vertices > 0, "graph needs vertices");
  Rng rng{seed};
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    edges.emplace_back(static_cast<VertexId>(rng.next_below(num_vertices)),
                       static_cast<VertexId>(rng.next_below(num_vertices)));
  }
  std::vector<std::uint32_t> weights;
  if (weighted) weights = random_weights(rng, edges.size(), 64);
  return CsrGraph::from_edges(num_vertices, std::move(edges), std::move(weights));
}

CsrGraph make_grid(VertexId width, VertexId height, bool weighted) {
  COOLPIM_REQUIRE(width > 0 && height > 0, "grid needs positive dimensions");
  const VertexId n = width * height;
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * 4);
  auto id = [width](VertexId x, VertexId y) { return y * width + x; };
  for (VertexId y = 0; y < height; ++y) {
    for (VertexId x = 0; x < width; ++x) {
      edges.emplace_back(id(x, y), id((x + 1) % width, y));
      edges.emplace_back(id(x, y), id((x + width - 1) % width, y));
      edges.emplace_back(id(x, y), id(x, (y + 1) % height));
      edges.emplace_back(id(x, y), id(x, (y + height - 1) % height));
    }
  }
  std::vector<std::uint32_t> weights;
  if (weighted) {
    Rng rng{42};
    weights = random_weights(rng, edges.size(), 64);
  }
  return CsrGraph::from_edges(n, std::move(edges), std::move(weights));
}

}  // namespace coolpim::graph
