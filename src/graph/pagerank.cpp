// Push-style PageRank power iteration with floating-point atomic adds
// (mapped to the GraphPIM FP-add PIM extension).
#include <cmath>

#include "graph/simt.hpp"
#include "graph/workloads.hpp"

namespace coolpim::graph {

namespace {
constexpr double kInstrPerEdge = 7.0;
constexpr double kWarpBase = 14.0;
constexpr double kDamping = 0.85;
}  // namespace

WorkloadProfile run_pagerank(const CsrGraph& g, unsigned iterations) {
  COOLPIM_REQUIRE(iterations > 0, "pagerank needs at least one iteration");
  const VertexId n = g.num_vertices();
  COOLPIM_REQUIRE(n > 0, "pagerank needs a non-empty graph");

  WorkloadProfile profile;
  profile.name = "pagerank";
  profile.driver = Driver::kTopology;
  profile.parallelism = Parallelism::kThreadCentric;
  profile.atomic_kind = hmc::PimOpcode::kFpAdd;
  profile.graph_vertices = n;
  profile.graph_edges = g.num_edges();

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  // The per-lane work vector never changes: every iteration pushes along all
  // edges, so the SIMT cost is identical across iterations -- and equals the
  // cached degree table, no copy needed.
  const SimtCost cost = thread_centric_cost(g.degrees(), kInstrPerEdge, kWarpBase);

  for (unsigned i = 0; i < iterations; ++i) {
    IterationProfile it{};
    it.scanned_vertices = n;
    it.active_vertices = n;
    it.work_threads = n;

    std::fill(next.begin(), next.end(), (1.0 - kDamping) / static_cast<double>(n));
    for (VertexId v = 0; v < n; ++v) {
      const auto deg = g.out_degree(v);
      if (deg == 0) continue;
      const double share = kDamping * rank[v] / static_cast<double>(deg);
      for (const VertexId dst : g.neighbors(v)) {
        next[dst] += share;       // atomicAdd in the GPU kernel
        ++it.edges_processed;
        ++it.atomic_ops;
        ++it.property_reads;      // destination vertex-property record
      }
    }
    rank.swap(next);

    // Streams: row_ptr + own rank (sequential), col_idx per edge.
    // Thread-centric CSR walk: ~24 effective bytes per 4-byte col_idx entry.
    it.struct_scan_bytes = static_cast<std::uint64_t>(n) * (8 + 8) + it.edges_processed * 24;
    // Normalization/swap pass writes every rank.
    it.property_writes = n;
    it.compute_warp_instructions = cost.warp_instructions;
    it.divergent_warp_ratio = cost.divergent_ratio();
    profile.iterations.push_back(it);
  }

  // Quantize for a stable checksum across FP reassociation in tests.
  std::vector<std::uint64_t> quantized(n);
  for (VertexId v = 0; v < n; ++v) {
    quantized[v] = static_cast<std::uint64_t>(std::llround(rank[v] * 1e9));
  }
  profile.result_checksum = checksum_vector(quantized);
  return profile;
}

}  // namespace coolpim::graph
