// Degree centrality (single atomic-heavy pass) and k-core decomposition
// (iterative peel with low sustained PIM intensity -- the paper's example of
// a workload that never triggers the thermal issue).
#include <algorithm>

#include "graph/simt.hpp"
#include "graph/workloads.hpp"

namespace coolpim::graph {

namespace {
constexpr double kInstrPerEdge = 6.0;
constexpr double kWarpBase = 14.0;
}  // namespace

WorkloadProfile run_degree_centrality(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  COOLPIM_REQUIRE(n > 0, "dc needs a non-empty graph");

  WorkloadProfile profile;
  profile.name = "dc";
  profile.driver = Driver::kTopology;
  profile.parallelism = Parallelism::kThreadCentric;
  profile.atomic_kind = hmc::PimOpcode::kSignedAdd8;
  profile.graph_vertices = n;
  profile.graph_edges = g.num_edges();

  std::vector<std::uint32_t> in_degree(n, 0);

  IterationProfile it{};
  it.scanned_vertices = n;
  it.active_vertices = n;
  it.work_threads = n;
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId dst : g.neighbors(v)) {
      ++in_degree[dst];  // atomicAdd in the kernel
      ++it.edges_processed;
      ++it.atomic_ops;
      ++it.property_reads;  // destination vertex-property record
    }
  }
  // Out-degree comes free from row_ptr; one sequential write per vertex.
  // Thread-centric CSR walk: ~24 effective bytes per col_idx entry.
  it.struct_scan_bytes = static_cast<std::uint64_t>(n) * 8 + it.edges_processed * 24;
  it.property_writes = n;

  // Every lane carries its out-degree; the cached degree table is that work
  // vector already.
  const SimtCost cost = thread_centric_cost(g.degrees(), kInstrPerEdge, kWarpBase);
  it.compute_warp_instructions = cost.warp_instructions;
  it.divergent_warp_ratio = cost.divergent_ratio();
  profile.iterations.push_back(it);

  profile.result_checksum = checksum_vector(in_degree);
  return profile;
}

WorkloadProfile run_kcore(const CsrGraph& g, unsigned k) {
  const VertexId n = g.num_vertices();
  COOLPIM_REQUIRE(n > 0, "kcore needs a non-empty graph");
  COOLPIM_REQUIRE(k > 0, "kcore needs k >= 1");

  WorkloadProfile profile;
  profile.name = "kcore";
  profile.driver = Driver::kTopology;
  profile.parallelism = Parallelism::kThreadCentric;
  profile.atomic_kind = hmc::PimOpcode::kSignedAdd8;  // atomicSub on degrees
  profile.graph_vertices = n;
  profile.graph_edges = g.num_edges();

  // Effective degree starts at out-degree + in-degree to approximate the
  // undirected degree k-core uses; we compute in-degree first (that pass is
  // part of dc, not re-counted here).
  const std::vector<std::uint32_t>& out_deg = g.degrees();
  std::vector<std::int64_t> degree(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    degree[v] += out_deg[v];
    for (const VertexId dst : g.neighbors(v)) ++degree[dst];
  }

  std::vector<std::uint8_t> removed(n, 0);
  // Dense lane-work vector maintained sparsely: only peel entries are ever
  // nonzero, and they are reset after each round's costing.
  std::vector<std::uint32_t> work(n, 0);
  std::vector<VertexId> peel;
  std::vector<std::uint32_t> warp_ids;

  bool changed = true;
  while (changed) {
    changed = false;
    IterationProfile it{};
    it.scanned_vertices = n;
    it.work_threads = n;

    // Mark pass: every thread checks its vertex state (streaming reads).
    peel.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (!removed[v] && degree[v] < static_cast<std::int64_t>(k)) {
        peel.push_back(v);
        work[v] = out_deg[v];
      }
    }
    it.active_vertices = peel.size();

    for (const VertexId v : peel) {
      removed[v] = 1;
      changed = true;
      for (const VertexId dst : g.neighbors(v)) {
        ++it.edges_processed;
        if (!removed[dst]) {
          --degree[dst];  // atomicSub in the kernel
          ++it.atomic_ops;
        }
        ++it.property_reads;  // removed[dst] check
      }
    }

    it.struct_scan_bytes =
        static_cast<std::uint64_t>(n) * (8 + 8 + 1) + it.edges_processed * 24;
    // Peel rounds activate few lanes; cost only their warps and fold the idle
    // rest in closed form.  Peel is collected in ascending id order, so the
    // warp index list is already sorted and only needs deduplication.
    warp_ids.clear();
    for (const VertexId v : peel) warp_ids.push_back(v / kWarpSize);
    warp_ids.erase(std::unique(warp_ids.begin(), warp_ids.end()), warp_ids.end());
    const SimtCost cost =
        thread_centric_cost_sparse(work, warp_ids, n, kInstrPerEdge, kWarpBase);
    for (const VertexId v : peel) work[v] = 0;
    it.compute_warp_instructions = cost.warp_instructions;
    it.divergent_warp_ratio = cost.divergent_ratio();
    profile.iterations.push_back(it);

    if (!changed) break;
  }

  std::vector<std::uint8_t> result(removed);
  profile.result_checksum = checksum_vector(result);
  return profile;
}

}  // namespace coolpim::graph
