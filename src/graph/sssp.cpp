// Single-source shortest paths (Bellman-Ford rounds, GraphBIG style).
#include <algorithm>

#include "graph/simt.hpp"
#include "graph/workloads.hpp"

namespace coolpim::graph {

namespace {
constexpr double kInstrPerEdge = 10.0;  // weight load + add + min
constexpr double kWarpBase = 16.0;

struct SsspTraits {
  Driver driver;
  Parallelism parallelism;
};

SsspTraits traits_for(SsspVariant v) {
  switch (v) {
    case SsspVariant::kDataThreadCentric: return {Driver::kData, Parallelism::kThreadCentric};
    case SsspVariant::kDataWarpCentric: return {Driver::kData, Parallelism::kWarpCentric};
    case SsspVariant::kTopologyWarpCentric: return {Driver::kTopology, Parallelism::kWarpCentric};
  }
  throw ConfigError("unknown SSSP variant");
}

const char* name_for(SsspVariant v) {
  switch (v) {
    case SsspVariant::kDataThreadCentric: return "sssp-dtc";
    case SsspVariant::kDataWarpCentric: return "sssp-dwc";
    case SsspVariant::kTopologyWarpCentric: return "sssp-twc";
  }
  return "sssp-?";
}

}  // namespace

WorkloadProfile run_sssp(const CsrGraph& g, VertexId source, SsspVariant variant) {
  COOLPIM_REQUIRE(source < g.num_vertices(), "SSSP source out of range");
  COOLPIM_REQUIRE(g.has_weights(), "SSSP needs edge weights");
  const auto t = traits_for(variant);
  const VertexId n = g.num_vertices();
  const std::vector<std::uint32_t>& degree = g.degrees();

  WorkloadProfile profile;
  profile.name = name_for(variant);
  profile.driver = t.driver;
  profile.parallelism = t.parallelism;
  profile.atomic_kind = hmc::PimOpcode::kCasGreater;  // atomicMin on the distance
  profile.graph_vertices = n;
  profile.graph_edges = g.num_edges();

  std::vector<std::uint32_t> dist(n, kUnreached);
  dist[source] = 0;

  // Unlike BFS, the next frontier stays a push queue: the data-driven
  // thread-centric variant (sssp-dtc) groups frontier entries into warps by
  // *queue position*, so discovery order is part of the profile and a
  // bitmap rebuild (which sorts by vertex id) would change the warp
  // grouping.  The queue, the dedup bitmap and the SIMT work buffer are all
  // hoisted and reused across rounds instead.
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  std::vector<std::uint8_t> in_next(n, 0);
  std::vector<std::uint32_t> work;

  while (!frontier.empty()) {
    IterationProfile it{};

    if (t.driver == Driver::kTopology) {
      it.scanned_vertices = n;
      it.struct_scan_bytes += static_cast<std::uint64_t>(n) * (8 + 4 + 1);  // row_ptr/dist/flag
    } else {
      it.scanned_vertices = frontier.size();
      it.struct_scan_bytes += frontier.size() * 4;
      it.property_reads += 2 * frontier.size();
    }
    it.active_vertices = frontier.size();

    for (const VertexId v : frontier) {
      const auto nbrs = g.neighbors(v);
      const auto wts = g.edge_weights(v);
      const std::uint32_t dv = dist[v];
      ++it.property_reads;  // own distance
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        ++it.edges_processed;
        const VertexId dst = nbrs[e];
        const std::uint32_t cand = dv + wts[e];
        ++it.property_reads;  // destination vertex-property record
        // GraphBIG relaxes with an unconditional atomicMin per edge.
        ++it.atomic_ops;
        if (cand < dist[dst]) {
          dist[dst] = cand;
          if (!in_next[dst]) {
            in_next[dst] = 1;
            next.push_back(dst);
          }
        }
      }
    }
    // col_idx + weight traffic, with the thread-centric coalescing penalty
    // (see bfs.cpp): 4+4 B/edge coalesced, ~4x that when lanes walk
    // independent edge lists.
    it.struct_scan_bytes += it.edges_processed *
        (t.parallelism == Parallelism::kWarpCentric ? (4 + 4) : (24 + 24));

    if (t.driver == Driver::kData) {
      it.atomic_ops += next.size();     // queue tail atomicAdd
      it.property_writes += next.size();
    }

    // SIMT cost.  Topology rounds visit only frontier lanes and fold the
    // idle remainder in closed form; data-driven rounds cost the
    // queue-ordered frontier directly (it is already sparse).
    work.clear();
    for (const VertexId v : frontier) work.push_back(degree[v]);
    SimtCost cost;
    if (t.driver == Driver::kTopology) {
      cost = warp_centric_cost_sparse(work, n, kInstrPerEdge, kWarpBase);
    } else {
      cost = t.parallelism == Parallelism::kThreadCentric
                 ? thread_centric_cost(work, kInstrPerEdge, kWarpBase)
                 : warp_centric_cost(work, kInstrPerEdge, kWarpBase);
    }
    it.compute_warp_instructions = cost.warp_instructions;
    it.divergent_warp_ratio =
        t.parallelism == Parallelism::kWarpCentric ? 0.02 : cost.divergent_ratio();
    it.work_threads = t.parallelism == Parallelism::kThreadCentric
                          ? it.scanned_vertices
                          : it.scanned_vertices * kWarpSize;

    profile.iterations.push_back(it);
    for (const VertexId v : next) in_next[v] = 0;
    frontier.swap(next);
    next.clear();
  }

  profile.result_checksum = checksum_vector(dist);
  return profile;
}

}  // namespace coolpim::graph
