// Workload instrumentation: what a GPU kernel iteration *does*, counted by
// the functional graph algorithms.
//
// The GPU timing model consumes these logical counts -- it converts property
// accesses into memory transactions through its cache model, schedules the
// work threads onto SMs, and turns atomic operations into PIM offloads or
// host atomics depending on the scenario.  Keeping the counts logical (not
// pre-baked into bytes) keeps the cache model in one place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hmc/pim.hpp"

namespace coolpim::graph {

enum class Driver : std::uint8_t { kTopology, kData };
enum class Parallelism : std::uint8_t { kThreadCentric, kWarpCentric };

/// One kernel launch (= one algorithm iteration / level / round).
struct IterationProfile {
  std::uint64_t scanned_vertices{0};   // vertices examined by the kernel
  std::uint64_t active_vertices{0};    // vertices that had work
  std::uint64_t edges_processed{0};
  std::uint64_t work_threads{0};       // CUDA threads the launch needs

  // Memory behaviour (logical counts; cache model applied downstream).
  std::uint64_t struct_scan_bytes{0};  // streaming CSR reads (row_ptr/col_idx/weights)
  std::uint64_t property_reads{0};     // random 4-8 byte property loads
  std::uint64_t property_writes{0};    // random non-atomic property stores
  std::uint64_t atomic_ops{0};         // PIM-offloadable atomic RMWs

  // Execution behaviour.
  std::uint64_t compute_warp_instructions{0};  // non-memory warp instructions
  double divergent_warp_ratio{0.0};            // fraction of warps that diverge
};

/// A complete workload: sequence of kernel launches plus identity metadata.
struct WorkloadProfile {
  std::string name;
  Driver driver{Driver::kTopology};
  Parallelism parallelism{Parallelism::kThreadCentric};
  hmc::PimOpcode atomic_kind{hmc::PimOpcode::kSignedAdd8};
  /// Size of the graph the profile was captured on (cache-footprint input
  /// for the GPU characterizer).
  std::uint32_t graph_vertices{0};
  std::uint64_t graph_edges{0};
  std::vector<IterationProfile> iterations;
  /// Checksum of the functional result (levels/distances/ranks), so tests can
  /// verify every variant computes the same answer.
  std::uint64_t result_checksum{0};

  [[nodiscard]] std::uint64_t total_edges() const {
    std::uint64_t s = 0;
    for (const auto& it : iterations) s += it.edges_processed;
    return s;
  }
  [[nodiscard]] std::uint64_t total_atomics() const {
    std::uint64_t s = 0;
    for (const auto& it : iterations) s += it.atomic_ops;
    return s;
  }
  [[nodiscard]] std::uint64_t total_warp_instructions() const {
    std::uint64_t s = 0;
    for (const auto& it : iterations) s += it.compute_warp_instructions;
    return s;
  }

  /// PIM instruction intensity: atomics per warp instruction (Eq. 1 input).
  [[nodiscard]] double pim_intensity() const {
    const auto instr = total_warp_instructions();
    return instr ? static_cast<double>(total_atomics()) / static_cast<double>(instr) : 0.0;
  }

  /// Work-weighted average divergent-warp ratio (Eq. 1 input).
  [[nodiscard]] double divergence_ratio() const {
    double num = 0.0, den = 0.0;
    for (const auto& it : iterations) {
      const auto w = static_cast<double>(it.work_threads);
      num += it.divergent_warp_ratio * w;
      den += w;
    }
    return den > 0.0 ? num / den : 0.0;
  }
};

}  // namespace coolpim::graph
