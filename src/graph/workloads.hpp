// GraphBIG-style GPU graph workloads, implemented functionally with full
// instrumentation (paper Section V: GraphBIG benchmark suite on LDBC data).
//
// Each run_* function executes the algorithm and returns a WorkloadProfile:
// the functional result checksum plus per-kernel-launch instruction/memory/
// atomic counts that the GPU timing model replays.  Variant naming follows
// the paper's Fig. 10 labels:
//   bfs-ta   topology-driven, thread-centric, blind atomic per edge
//   bfs-ttc  topology-driven, thread-centric, check-then-atomic
//   bfs-twc  topology-driven, warp-centric
//   bfs-dwc  data-driven (frontier), warp-centric
//   sssp-dtc data-driven, thread-centric
//   sssp-dwc data-driven, warp-centric
//   sssp-twc topology-driven, warp-centric
//   dc       degree centrality (single atomic-heavy pass)
//   kcore    iterative k-core decomposition (low PIM intensity)
//   pagerank push-style power iteration with FP atomic adds
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/profile.hpp"

namespace coolpim::graph {

enum class BfsVariant { kTopologyAtomic, kTopologyThreadCentric, kTopologyWarpCentric,
                        kDataWarpCentric };
enum class SsspVariant { kDataThreadCentric, kDataWarpCentric, kTopologyWarpCentric };

[[nodiscard]] WorkloadProfile run_bfs(const CsrGraph& g, VertexId source, BfsVariant variant);
[[nodiscard]] WorkloadProfile run_sssp(const CsrGraph& g, VertexId source, SsspVariant variant);
[[nodiscard]] WorkloadProfile run_pagerank(const CsrGraph& g, unsigned iterations = 10);
[[nodiscard]] WorkloadProfile run_degree_centrality(const CsrGraph& g);
[[nodiscard]] WorkloadProfile run_kcore(const CsrGraph& g, unsigned k = 16);

// Extension workloads (GraphBIG members beyond the paper's evaluation set).
[[nodiscard]] WorkloadProfile run_connected_components(const CsrGraph& g);
[[nodiscard]] WorkloadProfile run_triangle_count(const CsrGraph& g);

/// Checksum helper shared by workloads and tests (FNV-1a over raw bytes).
[[nodiscard]] std::uint64_t checksum_bytes(const void* data, std::size_t bytes);

template <typename T>
[[nodiscard]] std::uint64_t checksum_vector(const std::vector<T>& v) {
  return checksum_bytes(v.data(), v.size() * sizeof(T));
}

inline constexpr std::uint32_t kUnreached = 0xffffffffu;

}  // namespace coolpim::graph
