// Fault-injection configuration for the thermal-warning control loop.
//
// CoolPIM's controllers close their loop over a real serial link: ERRSTAT
// warning bits ride response-packet tails, the host's temperature view is a
// coarse delayed register, and links drop, corrupt and re-train.  This
// config describes a *deterministic* fault environment: every rate below is
// sampled from an Rng stream derived from the run's seed (fault::FaultPlan),
// so a given (experiment key, fault config) produces bit-identical faults at
// any --jobs count.
//
// The default-constructed config is the fault-free environment and is
// behaviour-neutral by construction: SystemConfig carries a FaultConfig
// unconditionally, but the simulator only instantiates the fault path -- and
// runner::config_hash only hashes these fields -- when enabled() is true, so
// pre-existing experiment keys, seeds and golden results are unchanged.
#pragma once

#include "common/error.hpp"
#include "common/units.hpp"
#include "hmc/link_model.hpp"

namespace coolpim::fault {

/// Fail-safe watchdog (graceful degradation, consuming side).  If no warning
/// feedback arrives within `window` while the host-visible temperature is
/// near the warning threshold and not falling, the controller is forced into
/// a conservative degrade step (ThrottleController::on_watchdog_engage)
/// rather than running open-loop hot.  Active only when the fault layer as a
/// whole is enabled.
struct WatchdogConfig {
  bool enabled{true};
  /// Warning silence tolerated while armed before the first degrade step.
  Time window{Time::ms(3.0)};
  /// Arm when the host-visible temperature exceeds warning_threshold - margin.
  double arm_margin_c{2.5};
  /// Minimum spacing between successive forced degrade steps.
  Time min_interval{Time::ms(1.5)};
  /// Low-pass time constant for the temperature the watchdog reasons about.
  /// The raw per-epoch reading swings several degrees with the engine's
  /// serve bursts; un-smoothed, a single cool sample disarms the watchdog
  /// and the silence window never completes.  Zero disables smoothing.
  Time smoothing{Time::us(500.0)};
  bool operator==(const WatchdogConfig&) const = default;
};

struct FaultConfig {
  // --- Warning-channel faults (response-packet tail ERRSTAT) ---
  /// Probability that a raised warning is lost in flight with nothing for
  /// the CRC to catch (silent response drop).
  double warning_drop_rate{0.0};
  /// Probability that a raised warning's packet is corrupted in flight.
  /// The CRC detects it and the link replays the packet (LinkRetryPolicy
  /// backoff per attempt); each replay re-rolls this rate, and exhausting
  /// max_retries loses the warning.
  double errstat_corrupt_rate{0.0};
  /// Per-epoch probability of a *false* warning reaching the host (an
  /// escaped ERRSTAT bit flip on a clean response).
  double spurious_warning_rate{0.0};
  /// Extra uniform [0, max] delivery delay on every surviving warning.
  Time warning_delay_max{Time::zero()};

  // --- Sensor faults (host-visible temperature conditioning) ---
  double sensor_noise_sigma_c{0.0};   // Gaussian read noise
  double sensor_quantization_c{0.0};  // register granularity (0 = exact)
  double sensor_stuck_rate{0.0};      // per-epoch stuck-at entry probability
  Time sensor_stuck_duration{Time::ms(2.0)};

  // --- Transient link outages (no warnings delivered at all while down) ---
  double link_outage_rate{0.0};       // per-epoch outage-start probability
  Time link_outage_duration{Time::us(200.0)};

  hmc::LinkRetryPolicy retry{};
  WatchdogConfig watchdog{};

  /// Turn the resilience layer (watchdog, fault accounting) on even with
  /// every injection rate at zero.
  bool force_enable{false};

  bool operator==(const FaultConfig&) const = default;

  /// True when any fault path must be instantiated.  The zero-rate default
  /// returns false, which is what keeps fault-free runs bit-identical to the
  /// pre-fault-layer simulator.
  [[nodiscard]] bool enabled() const {
    return force_enable || warning_drop_rate > 0.0 || errstat_corrupt_rate > 0.0 ||
           spurious_warning_rate > 0.0 || warning_delay_max > Time::zero() ||
           sensor_noise_sigma_c > 0.0 || sensor_quantization_c > 0.0 ||
           sensor_stuck_rate > 0.0 || link_outage_rate > 0.0;
  }

  void validate() const {
    auto rate = [](double r, const char* what) {
      COOLPIM_REQUIRE(r >= 0.0 && r <= 1.0, std::string{what} + " must be in [0, 1]");
    };
    rate(warning_drop_rate, "warning_drop_rate");
    rate(errstat_corrupt_rate, "errstat_corrupt_rate");
    rate(spurious_warning_rate, "spurious_warning_rate");
    rate(sensor_stuck_rate, "sensor_stuck_rate");
    rate(link_outage_rate, "link_outage_rate");
    COOLPIM_REQUIRE(sensor_noise_sigma_c >= 0.0, "sensor_noise_sigma_c must be >= 0");
    COOLPIM_REQUIRE(sensor_quantization_c >= 0.0, "sensor_quantization_c must be >= 0");
    COOLPIM_REQUIRE(warning_delay_max >= Time::zero(), "warning_delay_max must be >= 0");
    COOLPIM_REQUIRE(sensor_stuck_duration > Time::zero(),
                    "sensor_stuck_duration must be positive");
    COOLPIM_REQUIRE(link_outage_duration > Time::zero(),
                    "link_outage_duration must be positive");
    COOLPIM_REQUIRE(retry.backoff_factor >= 1.0, "retry backoff_factor must be >= 1");
    COOLPIM_REQUIRE(retry.backoff_base > Time::zero(), "retry backoff_base must be positive");
    COOLPIM_REQUIRE(retry.backoff_cap >= retry.backoff_base,
                    "retry backoff_cap must be >= backoff_base");
    COOLPIM_REQUIRE(watchdog.window > Time::zero(), "watchdog window must be positive");
    COOLPIM_REQUIRE(watchdog.min_interval > Time::zero(),
                    "watchdog min_interval must be positive");
    COOLPIM_REQUIRE(watchdog.arm_margin_c >= 0.0, "watchdog arm_margin_c must be >= 0");
    COOLPIM_REQUIRE(watchdog.smoothing >= Time::zero(), "watchdog smoothing must be >= 0");
  }
};

}  // namespace coolpim::fault
