#include "fault/fault_plan.hpp"

#include <utility>

#include "common/hash.hpp"
#include "hmc/thermal_policy.hpp"
#include "obs/names.hpp"

namespace coolpim::fault {

namespace {
/// Salt decoupling the fault stream from every other consumer of run_seed
/// (cache characterization forks the seed directly).
constexpr std::uint64_t kFaultStreamSalt = 0xfa17'0a1a'c0de'0001ULL;
}  // namespace

FaultPlan::FaultPlan(const FaultConfig& cfg, std::uint64_t run_seed)
    : cfg_{cfg}, rng_{mix_seed(run_seed ^ kFaultStreamSalt)} {
  cfg_.validate();
}

void FaultPlan::set_observer(obs::Trace trace, obs::CounterRegistry* counters) {
  trace_ = trace;
  counters_ = counters;
}

void FaultPlan::begin_epoch(Time now) {
  if (in_outage_ && now >= outage_until_) in_outage_ = false;
  if (!in_outage_ && cfg_.link_outage_rate > 0.0 && rng_.next_bool(cfg_.link_outage_rate)) {
    in_outage_ = true;
    outage_until_ = now + cfg_.link_outage_duration;
    ++stats_.link_outages;
    if (counters_ != nullptr) counters_->counter(obs::names::kFaultLinkOutages).add();
    trace_.complete(now, cfg_.link_outage_duration, obs::names::kCatFault, "link_outage");
  }
  if (sensor_stuck_ && now >= stuck_until_) sensor_stuck_ = false;
  if (!sensor_stuck_ && cfg_.sensor_stuck_rate > 0.0 &&
      rng_.next_bool(cfg_.sensor_stuck_rate)) {
    sensor_stuck_ = true;
    stuck_until_ = now + cfg_.sensor_stuck_duration;
    have_stuck_value_ = false;  // freeze at the next reading
    trace_.complete(now, cfg_.sensor_stuck_duration, obs::names::kCatFault, "sensor_stuck");
  }
}

Celsius FaultPlan::condition_reading(Time now, Celsius actual) {
  if (sensor_stuck_ && have_stuck_value_) {
    ++stats_.sensor_stuck_epochs;
    if (counters_ != nullptr) counters_->counter(obs::names::kFaultSensorStuckEpochs).add();
    return stuck_value_;
  }
  double v = actual.value();
  if (cfg_.sensor_noise_sigma_c > 0.0) v += rng_.next_normal() * cfg_.sensor_noise_sigma_c;
  const Celsius conditioned = hmc::quantize_reading(Celsius{v}, cfg_.sensor_quantization_c);
  if (sensor_stuck_) {
    // First reading inside the stuck window: freeze it.
    stuck_value_ = conditioned;
    have_stuck_value_ = true;
    ++stats_.sensor_stuck_epochs;
    if (counters_ != nullptr) counters_->counter(obs::names::kFaultSensorStuckEpochs).add();
    trace_.instant(now, obs::names::kCatFault, "sensor_frozen",
                   {{"held_c", conditioned.value()}});
  }
  return conditioned;
}

void FaultPlan::offer_warning(Time now) {
  ++stats_.warnings_offered;
  if (counters_ != nullptr) counters_->counter(obs::names::kFaultWarningsOffered).add();

  if (in_outage_) {
    ++stats_.warnings_lost_outage;
    if (counters_ != nullptr) counters_->counter(obs::names::kFaultWarningsLostOutage).add();
    trace_.instant(now, obs::names::kCatFault, "warning_lost_outage");
    return;
  }
  if (cfg_.warning_drop_rate > 0.0 && rng_.next_bool(cfg_.warning_drop_rate)) {
    ++stats_.warnings_dropped;
    if (counters_ != nullptr) counters_->counter(obs::names::kFaultWarningsDropped).add();
    trace_.instant(now, obs::names::kCatFault, "warning_dropped");
    return;
  }

  Time deliver = now;
  std::uint32_t replays = 0;
  if (cfg_.errstat_corrupt_rate > 0.0) {
    // Each transmission attempt re-rolls the corruption rate; a detected
    // corruption costs one replay with the policy's per-attempt backoff.
    bool lost = false;
    while (rng_.next_bool(cfg_.errstat_corrupt_rate)) {
      if (replays == cfg_.retry.max_retries) {
        lost = true;
        break;
      }
      ++replays;
      ++stats_.retries;
      if (counters_ != nullptr) counters_->counter(obs::names::kFaultRetries).add();
      deliver += cfg_.retry.retry_delay(replays);
    }
    if (lost) {
      ++stats_.retry_giveups;
      if (counters_ != nullptr) counters_->counter(obs::names::kFaultRetryGiveups).add();
      trace_.instant(now, obs::names::kCatFault, "retry_giveup",
                     {{"replays", cfg_.retry.max_retries}});
      return;
    }
    if (replays > 0) {
      ++stats_.warnings_corrupted;
      if (counters_ != nullptr) counters_->counter(obs::names::kFaultWarningsCorrupted).add();
      if (trace_.enabled()) {
        trace_.complete(now, deliver - now, obs::names::kCatFault, "warning_retried",
                        {{"replays", replays}});
      }
    }
  }
  if (cfg_.warning_delay_max > Time::zero()) {
    deliver += Time::ps(static_cast<std::int64_t>(
        rng_.next_below(static_cast<std::uint64_t>(cfg_.warning_delay_max.as_ps()) + 1)));
  }
  if (deliver > now) {
    ++stats_.warnings_delayed;
    if (counters_ != nullptr) counters_->counter(obs::names::kFaultWarningsDelayed).add();
  }
  enqueue_delivery(now, deliver, /*spurious=*/false);
}

void FaultPlan::maybe_spurious(Time now) {
  if (cfg_.spurious_warning_rate <= 0.0 || in_outage_) return;
  if (!rng_.next_bool(cfg_.spurious_warning_rate)) return;
  ++stats_.spurious_warnings;
  if (counters_ != nullptr) counters_->counter(obs::names::kFaultSpuriousWarnings).add();
  trace_.instant(now, obs::names::kCatFault, "spurious_warning");
  enqueue_delivery(now, now, /*spurious=*/true);
}

std::vector<FaultPlan::Delivery> FaultPlan::collect_due(Time now) {
  due_.clear();
  pending_.run_until(now);
  stats_.warnings_delivered += due_.size();
  std::vector<Delivery> out;
  out.swap(due_);
  return out;
}

hmc::PacketIntegrity FaultPlan::roll_integrity(Time /*now*/) {
  if (in_outage_) return hmc::PacketIntegrity::kLost;
  if (cfg_.warning_drop_rate > 0.0 && rng_.next_bool(cfg_.warning_drop_rate)) {
    return hmc::PacketIntegrity::kLost;
  }
  if (cfg_.errstat_corrupt_rate > 0.0 && rng_.next_bool(cfg_.errstat_corrupt_rate)) {
    return hmc::PacketIntegrity::kCrcDetected;
  }
  return hmc::PacketIntegrity::kClean;
}

void FaultPlan::enqueue_delivery(Time raised_at, Time deliver_at, bool spurious) {
  const Delivery d{deliver_at, raised_at, spurious};
  pending_.schedule(deliver_at, [this, d] { due_.push_back(d); });
}

}  // namespace coolpim::fault
