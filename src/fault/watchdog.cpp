#include "fault/watchdog.hpp"

#include <cmath>

#include "obs/names.hpp"

namespace coolpim::fault {

void Watchdog::on_delivery(Time now) {
  last_delivery_ = now;
  saw_delivery_ = true;
  if (engaged_) disengage(now, "feedback_restored");
}

bool Watchdog::tick(Time now, Celsius seen) {
  if (!cfg_.enabled) return false;

  // Low-pass the reading: the per-epoch sensed temperature swings several
  // degrees with the engine's serve bursts, and a single cool sample must
  // not disarm the watchdog (the silence window would never complete).
  double level = seen.value();
  if (have_level_ && cfg_.smoothing > Time::zero()) {
    const double alpha =
        1.0 - std::exp(-(now - last_tick_).as_sec() / cfg_.smoothing.as_sec());
    level = level_ + alpha * (seen.value() - level_);
  }
  // Non-falling trend, tolerant of quantized sensors reporting flat steps.
  const bool rising = !have_level_ || level >= level_ - 1e-9;
  level_ = level;
  have_level_ = true;
  last_tick_ = now;

  const bool hot = level > threshold_.value() - cfg_.arm_margin_c;
  if (!hot) {
    if (engaged_) disengage(now, "cooled");
    armed_ = false;
    return false;
  }
  if (!armed_) {
    armed_ = true;
    armed_since_ = now;
  }
  if (!rising && level <= threshold_.value()) return false;

  // Silence clock: time since the last sign of life on the warning channel,
  // never earlier than when we armed (a cold start is not silence).
  Time quiet_since = armed_since_;
  if (saw_delivery_ && last_delivery_ > quiet_since) quiet_since = last_delivery_;
  if (engaged_ && last_engage_ > quiet_since) quiet_since = last_engage_;

  const Time window = engaged_ ? cfg_.min_interval : cfg_.window;
  if (now - quiet_since < window) return false;

  engaged_ = true;
  last_engage_ = now;
  ++engagements_;
  if (counters_ != nullptr) counters_->counter(obs::names::kFaultWatchdogEngagements).add();
  trace_.instant(now, obs::names::kCatFault, "watchdog_engage",
                 {{"seen_c", seen.value()},
                  {"smoothed_c", level},
                  {"quiet_us", (now - quiet_since).as_us()}});
  return true;
}

void Watchdog::disengage(Time now, const char* why) {
  engaged_ = false;
  ++disengagements_;
  if (counters_ != nullptr) {
    counters_->counter(obs::names::kFaultWatchdogDisengagements).add();
  }
  trace_.instant(now, obs::names::kCatFault, "watchdog_disengage", {{"reason", why}});
}

}  // namespace coolpim::fault
