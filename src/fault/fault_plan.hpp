// Deterministic, seeded fault injection for the warning feedback loop.
//
// A FaultPlan owns one Rng stream forked from the run's seed and drives every
// injection point the fault layer models:
//
//  * warning-channel faults on the device -> host path: silent drops,
//    CRC-detected ERRSTAT corruption replayed with capped exponential backoff
//    (hmc::LinkRetryPolicy), bounded extra delivery delay, and spurious
//    (false-positive) warnings;
//  * sensor conditioning of the host-visible temperature: quantization,
//    Gaussian noise, stuck-at intervals;
//  * transient link outages during which nothing is delivered.
//
// Delayed deliveries ride a sim::EventQueue, so ordering is the queue's
// deterministic (time, seq) total order.  Every decision is a pure function
// of (config, seed, call sequence): the system model calls the hooks in a
// fixed per-epoch order, which is what makes fault patterns bit-identical
// across --jobs counts (the runner derives the seed from the experiment key,
// fault config included).
//
// Observability: every injected and detected fault is a `fault/*` counter
// and a category-"fault" trace instant (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "fault/fault_config.hpp"
#include "hmc/packet.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"

namespace coolpim::fault {

class FaultPlan {
 public:
  FaultPlan(const FaultConfig& cfg, std::uint64_t run_seed);

  void set_observer(obs::Trace trace, obs::CounterRegistry* counters);

  /// Advance outage / stuck-sensor state to the start of the epoch ending at
  /// `now`.  Must be called once per epoch, before the other hooks.
  void begin_epoch(Time now);

  /// Host-visible temperature: the true sensed value passed through the
  /// sensor fault chain (stuck-at, then noise, then quantization).
  [[nodiscard]] Celsius condition_reading(Time now, Celsius actual);

  /// The device raised a thermal warning at `now`.  Rolls the warning's
  /// in-flight fate; survivors are enqueued for delivery (possibly delayed
  /// by retries and/or the uniform extra delay).
  void offer_warning(Time now);

  /// Roll the epoch's spurious-warning injection (an escaped ERRSTAT bit
  /// flip on an otherwise clean response).
  void maybe_spurious(Time now);

  /// A delivered warning: when it arrived and when the device raised it
  /// (raised_at == at on an undisturbed channel; controllers coalesce on the
  /// raise time).
  struct Delivery {
    Time at;
    Time raised_at;
    bool spurious{false};
  };

  /// Drain and return every delivery due at or before `now`, in delivery
  /// order.  Call after offer_warning()/maybe_spurious() for the epoch.
  [[nodiscard]] std::vector<Delivery> collect_due(Time now);

  /// Device-model hook (event-detailed path): in-flight integrity outcome
  /// for one response packet, same fate distribution as offer_warning.
  [[nodiscard]] hmc::PacketIntegrity roll_integrity(Time now);

  struct Stats {
    std::uint64_t warnings_offered{0};
    std::uint64_t warnings_delivered{0};
    std::uint64_t warnings_dropped{0};
    std::uint64_t warnings_corrupted{0};  // CRC-detected at least once
    std::uint64_t warnings_delayed{0};
    std::uint64_t warnings_lost_outage{0};
    std::uint64_t retries{0};
    std::uint64_t retry_giveups{0};
    std::uint64_t spurious_warnings{0};
    std::uint64_t link_outages{0};
    std::uint64_t sensor_stuck_epochs{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] bool in_outage() const { return in_outage_; }
  [[nodiscard]] bool sensor_stuck() const { return sensor_stuck_; }
  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

 private:
  /// Route one surviving warning (possibly after retries) into the queue.
  void enqueue_delivery(Time raised_at, Time deliver_at, bool spurious);

  FaultConfig cfg_;
  Rng rng_;
  sim::EventQueue pending_;
  std::vector<Delivery> due_;

  bool in_outage_{false};
  Time outage_until_{Time::zero()};
  bool sensor_stuck_{false};
  Time stuck_until_{Time::zero()};
  Celsius stuck_value_{0.0};
  bool have_stuck_value_{false};

  Stats stats_;
  obs::Trace trace_;
  obs::CounterRegistry* counters_{nullptr};
};

}  // namespace coolpim::fault
