// Fail-safe watchdog for the warning feedback loop (graceful degradation).
//
// The controllers are purely reactive: no warning, no throttling.  On a
// faulty link that is exactly the failure mode that cooks the stack -- the
// device is hot, its warnings are being dropped, and the source runs
// open-loop at full rate.  The watchdog closes a slow local loop over the
// host-visible (possibly degraded) temperature: when that reading is near
// the warning threshold and not falling, and no warning has arrived within
// the configured window, it forces the controller into a conservative
// degrade step (ThrottleController::on_watchdog_engage), repeating every
// min_interval until feedback resumes or the stack cools.
//
// Deterministic and draw-free: engagement is a pure function of the delivery
// and temperature sequence, so it perturbs no RNG stream.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "fault/fault_config.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace coolpim::fault {

class Watchdog {
 public:
  Watchdog(const WatchdogConfig& cfg, Celsius warning_threshold)
      : cfg_{cfg}, threshold_{warning_threshold} {}

  void set_observer(obs::Trace trace, obs::CounterRegistry* counters) {
    trace_ = trace;
    counters_ = counters;
  }

  /// A genuine warning delivery reached the controller: feedback is alive.
  void on_delivery(Time now);

  /// Epoch tick with the host-visible temperature.  Returns true when the
  /// controller must take a conservative degrade step now.
  [[nodiscard]] bool tick(Time now, Celsius seen);

  [[nodiscard]] bool engaged() const { return engaged_; }
  /// Low-passed temperature the arm/engage decisions are made on.
  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] std::uint64_t engagements() const { return engagements_; }
  [[nodiscard]] std::uint64_t disengagements() const { return disengagements_; }
  [[nodiscard]] const WatchdogConfig& config() const { return cfg_; }

 private:
  void disengage(Time now, const char* why);

  WatchdogConfig cfg_;
  Celsius threshold_;

  bool armed_{false};
  Time armed_since_{Time::zero()};
  bool engaged_{false};
  Time last_delivery_{Time::ps(-1)};
  bool saw_delivery_{false};
  Time last_engage_{Time::ps(-1)};
  double level_{0.0};  // low-passed host-visible temperature (deg C)
  bool have_level_{false};
  Time last_tick_{Time::zero()};

  std::uint64_t engagements_{0};
  std::uint64_t disengagements_{0};

  obs::Trace trace_;
  obs::CounterRegistry* counters_{nullptr};
};

}  // namespace coolpim::fault
