#include "pim/vault_backend.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "obs/names.hpp"

namespace coolpim::pim {

PimVaultBackend::PimVaultBackend(hmc::HmcConfig cfg, hmc::ThermalPolicy policy,
                                 std::uint64_t seed, std::string_view kernel)
    : analytic_{std::move(cfg), policy},
      program_{micro_kernel(kernel.empty() ? kDefaultKernel : kernel)},
      seed_{seed} {
  COOLPIM_REQUIRE(analytic_.config().pim_capable,
                  "the pim-vault backend requires a PIM-capable cube ('" +
                      analytic_.config().name + "' is not)");
}

hmc::EpochService PimVaultBackend::probe(const hmc::EpochDemand& demand, Time epoch,
                                         Celsius dram_temp) const {
  Carry scratch = carry_;  // what-if: residuals and stream position stay put
  return run_vaults(demand, epoch, dram_temp, scratch, nullptr);
}

hmc::EpochService PimVaultBackend::do_serve(const hmc::EpochDemand& demand, Time epoch,
                                            Celsius dram_temp) {
  last_crf_trace_.clear();
  return run_vaults(demand, epoch, dram_temp, carry_, &last_crf_trace_);
}

hmc::EpochService PimVaultBackend::run_vaults(const hmc::EpochDemand& demand, Time epoch,
                                              Celsius dram_temp, Carry& carry,
                                              std::vector<CrfTraceEntry>* crf_trace) const {
  // The analytic tier supplies the shutdown check, the link/DRAM caps (reads
  // and writes execute no CRF instructions) and the bandwidth arithmetic.
  hmc::EpochService out = analytic_.serve(demand, epoch, dram_temp);
  if (out.shut_down) return out;

  carry.pim_ops += demand.pim_ops;
  const auto n_pim = static_cast<std::uint64_t>(carry.pim_ops);
  carry.pim_ops -= static_cast<double>(n_pim);
  const std::uint64_t stream = carry.epoch_index++;
  if (n_pim == 0) return out;

  const std::uint64_t ops_per_exec = program_.pim_ops_per_execution();
  const std::uint64_t wanted = (n_pim + ops_per_exec - 1) / ops_per_exec;
  const std::uint64_t cap = std::max<std::uint64_t>(1, kMaxSampledOps / ops_per_exec);
  const std::uint64_t executions = std::min(wanted, cap);

  const double derate = analytic_.policy().service_scale(out.phase);
  const hmc::HmcConfig& cfg = analytic_.config();

  // Fresh vault state per epoch (banks drain between epochs at these time
  // scales); operand streams decorrelate per epoch through the stream index
  // so the same banks are not re-walked every epoch.
  std::vector<hmc::Vault> vaults;
  vaults.reserve(cfg.vaults);
  for (std::size_t v = 0; v < cfg.vaults; ++v) vaults.emplace_back(cfg);
  const std::uint64_t stream_seed = seed_ ^ (stream * 0x9e3779b97f4a7c15ULL);
  std::vector<PimUnit> units;
  units.reserve(cfg.vaults);
  for (std::size_t v = 0; v < cfg.vaults; ++v) {
    units.emplace_back(static_cast<std::uint32_t>(v), program_, vaults[v], stream_seed);
  }

  // Round-robin executions across the vaults (the host triggers spread work
  // cube-wide); each unit chains executions back to back, so the makespan
  // measures the cube's steady instruction-level PIM rate.
  ExecStats totals;
  Time makespan = Time::zero();
  for (std::uint64_t e = 0; e < executions; ++e) {
    PimUnit& unit = units[e % units.size()];
    const ExecStats s = unit.execute(Time::zero(), derate);
    totals.pim_ops += s.pim_ops;
    totals.instructions += s.instructions;
    totals.bank_conflicts += s.bank_conflicts;
    makespan = std::max(makespan, s.done);
  }
  COOLPIM_ASSERT(makespan > Time::zero() && totals.pim_ops > 0);

  if (crf_trace != nullptr) {
    for (const PimUnit& unit : units) {
      crf_trace->insert(crf_trace->end(), unit.trace().begin(), unit.trace().end());
    }
  }
  if (counters_ != nullptr) {
    counters_->counter(obs::names::kPimProgramExecutions).add(executions);
    counters_->counter(obs::names::kPimCrfInstructions).add(totals.instructions);
    counters_->counter(obs::names::kPimBankConflicts).add(totals.bank_conflicts);
  }

  // The replayed sample's achieved op rate bounds PIM admission exactly as
  // the analytic internal-bandwidth cap does; the tighter of the two wins
  // and the uniform scale is re-applied to the whole mix.
  const double secs = epoch.as_sec();
  const double pim_rate = static_cast<double>(totals.pim_ops) / makespan.as_sec();
  const double offered_pim_rate = demand.pim_ops / secs;
  const double pim_scale = std::min(1.0, pim_rate / offered_pim_rate);
  const double scale = std::min(out.served_fraction, pim_scale);

  out.served_fraction = scale;
  out.reads = demand.reads * scale;
  out.writes = demand.writes * scale;
  out.pim_ops = demand.pim_ops * scale;
  const hmc::TransactionMix served{demand.reads / secs * scale, demand.writes / secs * scale,
                                   demand.pim_ops / secs * scale,
                                   demand.pim_return_fraction};
  out.link_data = link().data_bandwidth(served);
  out.link_raw = link().raw_link_bandwidth(served);
  out.dram_internal = link().internal_dram_bandwidth(served);
  out.pim_ops_per_sec = served.pim_per_sec;
  return out;
}

}  // namespace coolpim::pim
