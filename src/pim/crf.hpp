// CRF (Command Register File) instruction format for the in-vault PIM unit.
//
// The related PIM-DRAM microarchitectures (hiepik pim_project's PimUnit,
// youngsukpp DRAMsim3's decode-cycle model -- SNIPPETS.md) expose PIM
// execution as a tiny stored program: the host writes a short instruction
// sequence into the vault's CRF, then each triggering command steps a
// program counter (PPC) through it, with a loop counter (LC) implementing
// counted JUMP loops.  This header is the in-simulator ISA: PIM operand ops
// reuse hmc::PimOpcode (HMC 2.0 atomics + GraphPIM FP extensions), control
// flow is JUMP/EXIT, and programs are validated at load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "hmc/pim.hpp"

namespace coolpim::pim {

enum class CrfOpcode : std::uint8_t {
  kNop,   // fetch/decode only
  kPim,   // one hmc::PimOpcode RMW on a bank operand
  kJump,  // counted loop: displacement imm0, trip count imm1
  kExit,  // program done; PPC resets
};

[[nodiscard]] constexpr std::string_view to_string(CrfOpcode op) {
  switch (op) {
    case CrfOpcode::kNop: return "NOP";
    case CrfOpcode::kPim: return "PIM";
    case CrfOpcode::kJump: return "JUMP";
    case CrfOpcode::kExit: return "EXIT";
  }
  return "?";
}

struct CrfInstr {
  CrfOpcode op{CrfOpcode::kNop};
  /// Operand opcode; meaningful for kPim only.
  hmc::PimOpcode pim{hmc::PimOpcode::kSignedAdd8};
  /// kJump: signed PPC displacement (negative = loop backwards).
  std::int32_t imm0{0};
  /// kJump: loop trip count loaded into LC on first encounter; the body
  /// executes imm1 + 1 times total (hiepik LC semantics).
  std::uint32_t imm1{0};

  bool operator==(const CrfInstr&) const = default;
};

[[nodiscard]] constexpr CrfInstr crf_pim(hmc::PimOpcode op) {
  CrfInstr i;
  i.op = CrfOpcode::kPim;
  i.pim = op;
  return i;
}

[[nodiscard]] constexpr CrfInstr crf_jump(std::int32_t displacement, std::uint32_t trips) {
  CrfInstr i;
  i.op = CrfOpcode::kJump;
  i.imm0 = displacement;
  i.imm1 = trips;
  return i;
}

[[nodiscard]] constexpr CrfInstr crf_exit() {
  CrfInstr i;
  i.op = CrfOpcode::kExit;
  return i;
}

/// A validated CRF program: must end in EXIT, every JUMP must land inside
/// the program, and at least one PIM op must be reachable (a program that
/// never touches memory is a host bug, not a workload).
struct CrfProgram {
  std::string name;
  std::vector<CrfInstr> instrs;

  void validate() const {
    COOLPIM_REQUIRE(!instrs.empty(), "CRF program '" + name + "' is empty");
    COOLPIM_REQUIRE(instrs.back().op == CrfOpcode::kExit,
                    "CRF program '" + name + "' must end in EXIT");
    bool has_pim = false;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const CrfInstr& ins = instrs[i];
      if (ins.op == CrfOpcode::kPim) has_pim = true;
      if (ins.op == CrfOpcode::kJump) {
        const auto target = static_cast<std::int64_t>(i) + ins.imm0;
        COOLPIM_REQUIRE(target >= 0 && target < static_cast<std::int64_t>(instrs.size()),
                        "CRF program '" + name + "': JUMP at " + std::to_string(i) +
                            " leaves the program");
      }
    }
    COOLPIM_REQUIRE(has_pim, "CRF program '" + name + "' performs no PIM op");
  }

  /// PIM operand ops one full execution performs (loops unrolled).
  [[nodiscard]] std::uint64_t pim_ops_per_execution() const;

  /// Fraction of the executed PIM ops whose opcode returns data (FLIT-cost
  /// relevant; hmc::returns_data).
  [[nodiscard]] double return_fraction() const;
};

}  // namespace coolpim::pim
