#include "pim/programs.hpp"

#include "common/error.hpp"

namespace coolpim::pim {

std::uint64_t CrfProgram::pim_ops_per_execution() const {
  // Walk the program exactly as PimUnit does (loops included); bounded by
  // validate()'s structural checks plus a generous step cap.
  std::uint64_t ops = 0;
  std::uint32_t lc = 0;
  std::size_t ppc = 0;
  for (std::uint64_t steps = 0; steps < 1u << 20; ++steps) {
    const CrfInstr& ins = instrs[ppc];
    switch (ins.op) {
      case CrfOpcode::kNop:
        ++ppc;
        break;
      case CrfOpcode::kPim:
        ++ops;
        ++ppc;
        break;
      case CrfOpcode::kJump:
        if (lc == 0) {
          lc = ins.imm1;
          if (lc == 0) {
            ++ppc;  // zero-trip loop: fall through
          } else {
            ppc = static_cast<std::size_t>(static_cast<std::int64_t>(ppc) + ins.imm0);
          }
        } else if (lc > 1) {
          --lc;
          ppc = static_cast<std::size_t>(static_cast<std::int64_t>(ppc) + ins.imm0);
        } else {
          lc = 0;
          ++ppc;
        }
        break;
      case CrfOpcode::kExit:
        return ops;
    }
  }
  throw ConfigError("CRF program '" + name + "' did not reach EXIT");
}

double CrfProgram::return_fraction() const {
  // Same walk, counting returning opcodes.
  std::uint64_t ops = 0, returning = 0;
  std::uint32_t lc = 0;
  std::size_t ppc = 0;
  for (std::uint64_t steps = 0; steps < 1u << 20; ++steps) {
    const CrfInstr& ins = instrs[ppc];
    switch (ins.op) {
      case CrfOpcode::kNop:
        ++ppc;
        break;
      case CrfOpcode::kPim:
        ++ops;
        if (hmc::returns_data(ins.pim)) ++returning;
        ++ppc;
        break;
      case CrfOpcode::kJump:
        if (lc == 0) {
          lc = ins.imm1;
          if (lc == 0) {
            ++ppc;
          } else {
            ppc = static_cast<std::size_t>(static_cast<std::int64_t>(ppc) + ins.imm0);
          }
        } else if (lc > 1) {
          --lc;
          ppc = static_cast<std::size_t>(static_cast<std::int64_t>(ppc) + ins.imm0);
        } else {
          lc = 0;
          ++ppc;
        }
        break;
      case CrfOpcode::kExit:
        return ops > 0 ? static_cast<double>(returning) / static_cast<double>(ops) : 0.0;
    }
  }
  throw ConfigError("CRF program '" + name + "' did not reach EXIT");
}

CrfProgram micro_kernel(std::string_view name) {
  CrfProgram p;
  p.name = std::string{name};
  if (name == kKernelBfs) {
    // BFS frontier expansion: conditionally claim the neighbour's level
    // (CAS-greater on the level word) then mark it visited in the bitmap,
    // over a 16-neighbour segment.
    p.instrs = {
        crf_pim(hmc::PimOpcode::kCasGreater),
        crf_pim(hmc::PimOpcode::kOr),
        crf_jump(-2, 15),
        crf_exit(),
    };
  } else if (name == kKernelPagerank) {
    // PageRank push phase: accumulate the source's contribution into each
    // neighbour's rank (GraphPIM FP-add extension), 16-neighbour segment.
    p.instrs = {
        crf_pim(hmc::PimOpcode::kFpAdd),
        crf_jump(-1, 15),
        crf_exit(),
    };
  } else if (name == kKernelSssp) {
    // SSSP relaxation: FP-min the tentative distance, then CAS the parent
    // pointer when the distance improved, over an 8-edge segment.
    p.instrs = {
        crf_pim(hmc::PimOpcode::kFpMin),
        crf_pim(hmc::PimOpcode::kCasGreater),
        crf_jump(-2, 7),
        crf_exit(),
    };
  } else if (name == kKernelCc) {
    // Connected components label propagation: CAS the smaller component id
    // into the neighbour, count converged lanes in a shared accumulator.
    p.instrs = {
        crf_pim(hmc::PimOpcode::kCasGreater),
        crf_jump(-1, 14),
        crf_pim(hmc::PimOpcode::kSignedAdd8),
        crf_exit(),
    };
  } else {
    throw ConfigError("unknown pim micro-kernel '" + std::string{name} +
                      "' (registered: " + micro_kernel_names() + ")");
  }
  p.validate();
  return p;
}

std::string micro_kernel_names() {
  std::string names;
  for (const std::string_view k : kMicroKernels) {
    if (!names.empty()) names += ", ";
    names += k;
  }
  return names;
}

}  // namespace coolpim::pim
