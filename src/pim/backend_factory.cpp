// hmc::make_backend lives here, in the topmost backend library: pim:: builds
// on hmc::Vault/Bank, so only this layer can name every registered tier
// (exactly how control:: hosts the policy factory above core::).
#include <memory>

#include "common/error.hpp"
#include "hmc/backend.hpp"
#include "pim/vault_backend.hpp"

namespace coolpim::hmc {

std::unique_ptr<Backend> make_backend(const BackendBuild& build) {
  switch (build.kind) {
    case BackendKind::kEpochThroughput:
      return std::make_unique<EpochThroughputBackend>(build.hmc, build.policy);
    case BackendKind::kEventDetailed:
      return std::make_unique<EventDetailedBackend>(build.hmc, build.policy);
    case BackendKind::kPimVault:
      return std::make_unique<pim::PimVaultBackend>(build.hmc, build.policy, build.seed,
                                                    build.pim_kernel);
  }
  throw ConfigError("unregistered backend kind");
}

}  // namespace coolpim::hmc
