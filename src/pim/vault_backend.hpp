// Instruction-level PIM service backend (--hmc-backend pim-vault).
//
// The third fidelity tier of the hmc::Backend contract.  Each epoch's PIM
// demand is lowered to executions of one CRF micro-kernel (pim/programs.hpp)
// and replayed on per-vault PimUnits: CRF fetch/decode with program/loop
// counters, per-bank operand conflicts and DRAM timing through hmc::Vault /
// hmc::Bank.  The measured steady PIM rate bounds the epoch's admission
// scale alongside the analytic link/DRAM constraints (reads and writes do
// not execute instructions, so their caps stay analytic); the final scale is
// applied uniformly, keeping EpochService semantics identical across tiers.
//
// Determinism: operand streams derive from the build seed only, so a rerun
// with the same seed produces bit-identical CRF traces (tested in
// tests/test_backends.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hmc/backend.hpp"
#include "pim/pim_unit.hpp"
#include "pim/programs.hpp"

namespace coolpim::pim {

class PimVaultBackend final : public hmc::Backend {
 public:
  /// Per-epoch cap on replayed PIM operand ops: two full passes over the
  /// cube's 512 banks at 8 ops each -- enough to reach the steady conflict
  /// rate, small enough to keep full runs usable.
  static constexpr std::uint64_t kMaxSampledOps = 8192;

  PimVaultBackend(hmc::HmcConfig cfg, hmc::ThermalPolicy policy, std::uint64_t seed,
                  std::string_view kernel);

  [[nodiscard]] hmc::BackendKind kind() const override {
    return hmc::BackendKind::kPimVault;
  }
  [[nodiscard]] const hmc::HmcConfig& config() const override {
    return analytic_.config();
  }
  [[nodiscard]] const hmc::LinkModel& link() const override { return analytic_.link(); }
  [[nodiscard]] const hmc::ThermalPolicy& policy() const override {
    return analytic_.policy();
  }

  [[nodiscard]] hmc::EpochService probe(const hmc::EpochDemand& demand, Time epoch,
                                        Celsius dram_temp) const override;

  void set_observer(obs::Trace trace, obs::CounterRegistry* counters) override {
    trace_ = trace;
    counters_ = counters;
  }

  [[nodiscard]] const CrfProgram& program() const { return program_; }

  /// CRF instruction trace of the most recent serve() (probe never records).
  [[nodiscard]] const std::vector<CrfTraceEntry>& last_crf_trace() const {
    return last_crf_trace_;
  }

 protected:
  [[nodiscard]] hmc::EpochService do_serve(const hmc::EpochDemand& demand, Time epoch,
                                           Celsius dram_temp) override;

 private:
  struct Carry {
    double pim_ops{0.0};   // residual sub-op demand across epochs
    std::uint64_t epoch_index{0};  // decorrelates operand streams per epoch
  };

  [[nodiscard]] hmc::EpochService run_vaults(const hmc::EpochDemand& demand, Time epoch,
                                             Celsius dram_temp, Carry& carry,
                                             std::vector<CrfTraceEntry>* crf_trace) const;

  hmc::ThroughputModel analytic_;  // link/DRAM caps + bandwidth reporting
  CrfProgram program_;
  std::uint64_t seed_;
  Carry carry_{};
  obs::Trace trace_{};
  obs::CounterRegistry* counters_{nullptr};
  std::vector<CrfTraceEntry> last_crf_trace_;
};

}  // namespace coolpim::pim
