// In-vault PIM unit: a CRF interpreter driving one hmc::Vault.
//
// The unit models the vault-side instruction sequencer of the PIM-DRAM
// designs referenced in crf.hpp: it fetches and decodes one CRF instruction
// per decode cycle (PPC/LC state machine), and for each PIM instruction
// issues an atomic RMW to a bank operand through the owning vault -- so FU
// serialization, bank occupancy and thermal derating all come from the same
// hmc::Vault/Bank timing the event-detailed backend uses.  Operand addresses
// follow a deterministic per-vault splitmix64 stream (graph-property
// accesses are effectively random across banks); a bank conflict is counted
// whenever the selected bank is still busy at issue time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "hmc/vault.hpp"
#include "pim/crf.hpp"

namespace coolpim::pim {

/// One executed CRF instruction, for determinism checks (same seed ==> the
/// byte-identical sequence).  Times are picoseconds to keep equality exact.
struct CrfTraceEntry {
  std::uint32_t vault{0};
  std::uint32_t ppc{0};
  CrfOpcode op{CrfOpcode::kNop};
  hmc::PimOpcode pim{hmc::PimOpcode::kSignedAdd8};
  std::uint32_t bank{0};
  std::uint64_t issue_ps{0};
  std::uint64_t complete_ps{0};

  bool operator==(const CrfTraceEntry&) const = default;
};

/// Outcome of one program execution.
struct ExecStats {
  std::uint64_t pim_ops{0};        // operand RMWs issued
  std::uint64_t instructions{0};   // CRF instructions decoded (incl. control)
  std::uint64_t bank_conflicts{0}; // RMWs that found their bank busy
  Time done{Time::zero()};         // when the last RMW completed
};

class PimUnit {
 public:
  /// `vault` must outlive the unit.  `seed` fixes the operand stream.
  PimUnit(std::uint32_t vault_index, CrfProgram program, hmc::Vault& vault,
          std::uint64_t seed);

  /// Run one full program execution (trigger to EXIT) starting no earlier
  /// than `start`, with thermal service scale `scale` (1.0 nominal).
  ExecStats execute(Time start, double scale);

  /// When the unit's decode stage frees (next execution can trigger).
  [[nodiscard]] Time ready_at() const { return decode_ready_; }

  [[nodiscard]] const CrfProgram& program() const { return program_; }
  [[nodiscard]] const std::vector<CrfTraceEntry>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  /// Decode-stage cost per CRF instruction (one sequencer cycle).
  static constexpr Time kDecodeLatency = Time::ns(1.0);

 private:
  std::uint64_t next_random();

  std::uint32_t vault_index_;
  CrfProgram program_;
  hmc::Vault* vault_;
  std::uint64_t rng_state_;
  Time decode_ready_{Time::zero()};
  std::vector<CrfTraceEntry> trace_;
};

}  // namespace coolpim::pim
