#include "pim/xval.hpp"

#include "common/error.hpp"
#include "hmc/backend.hpp"
#include "pim/programs.hpp"

namespace coolpim::pim {

XvalPoint cross_validate(std::string_view kernel, Celsius temp, unsigned epochs) {
  COOLPIM_REQUIRE(epochs > 0, "cross-validation needs at least one epoch");
  const CrfProgram program = micro_kernel(kernel);

  hmc::BackendBuild build;
  build.hmc = hmc::hmc20_config();
  build.seed = 7;
  build.pim_kernel = std::string{kernel};
  build.kind = hmc::BackendKind::kEpochThroughput;
  const auto epoch_backend = hmc::make_backend(build);
  build.kind = hmc::BackendKind::kPimVault;
  const auto pim_backend = hmc::make_backend(build);

  // Saturating pure-PIM demand: 20 G op/s offered is well past both tiers'
  // caps (analytic internal-bandwidth cap ~8 op/ns), so each epoch serves at
  // the tier's saturated rate and the comparison is cap vs cap, not
  // demand-following.
  const Time epoch = Time::us(10.0);
  hmc::EpochDemand demand;
  demand.pim_ops = 20e9 * epoch.as_sec();
  demand.pim_return_fraction = program.return_fraction();

  XvalPoint p;
  double epoch_ops = 0.0, pim_ops = 0.0;
  for (unsigned i = 0; i < epochs; ++i) {
    epoch_ops += epoch_backend->serve(demand, epoch, temp).pim_ops;
    pim_ops += pim_backend->serve(demand, epoch, temp).pim_ops;
  }
  const double total_ns = epoch.as_ns() * epochs;
  p.epoch_op_per_ns = epoch_ops / total_ns;
  p.pim_op_per_ns = pim_ops / total_ns;
  p.ratio = p.epoch_op_per_ns > 0.0 ? p.pim_op_per_ns / p.epoch_op_per_ns : 0.0;
  return p;
}

}  // namespace coolpim::pim
