#include "pim/pim_unit.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "hmc/pim.hpp"

namespace coolpim::pim {

namespace {

// splitmix64: tiny, deterministic, and well-distributed enough to spread
// operands across banks; the unit only needs an uncorrelated index stream.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

PimUnit::PimUnit(std::uint32_t vault_index, CrfProgram program, hmc::Vault& vault,
                 std::uint64_t seed)
    : vault_index_{vault_index}, program_{std::move(program)}, vault_{&vault} {
  program_.validate();
  // Decorrelate vault streams from one common seed.
  rng_state_ = seed ^ (0x632be59bd9b4e019ULL * (vault_index + 1));
}

std::uint64_t PimUnit::next_random() { return splitmix64(rng_state_); }

ExecStats PimUnit::execute(Time start, double scale) {
  COOLPIM_REQUIRE(scale > 0.0, "PIM unit cannot execute while shut down");

  ExecStats stats;
  Time clock = std::max(start, decode_ready_);
  stats.done = clock;

  std::uint32_t lc = 0;
  std::size_t ppc = 0;
  const std::size_t bank_count = vault_->bank_count();
  // One execution updates one neighbour segment: consecutive destination
  // properties are address-interleaved across the vault's banks (the same
  // spreading hmc::AddressMap applies to regular traffic), so operands walk
  // the banks from a per-execution random base.  Conflicts arise when
  // successive executions' segments collide on a still-busy bank.
  const std::uint64_t segment = next_random();
  std::uint64_t op_idx = 0;
  bool running = true;
  while (running) {
    const CrfInstr& ins = program_.instrs[ppc];
    const std::uint32_t this_ppc = static_cast<std::uint32_t>(ppc);
    clock += kDecodeLatency;  // one sequencer cycle per fetched instruction
    ++stats.instructions;

    CrfTraceEntry entry;
    entry.vault = vault_index_;
    entry.ppc = this_ppc;
    entry.op = ins.op;
    entry.issue_ps = static_cast<std::uint64_t>(clock.as_ps());
    entry.complete_ps = entry.issue_ps;

    switch (ins.op) {
      case CrfOpcode::kNop:
        ++ppc;
        break;
      case CrfOpcode::kPim: {
        const auto bank = static_cast<std::size_t>((segment + op_idx) % bank_count);
        const std::uint64_t row = ((segment >> 8) + op_idx) % 64;
        ++op_idx;
        if (vault_->bank(bank).ready_at() > clock) ++stats.bank_conflicts;
        const Time complete =
            vault_->service(clock, hmc::transaction_for(ins.pim), bank, scale, row);
        stats.done = std::max(stats.done, complete);
        ++stats.pim_ops;
        entry.pim = ins.pim;
        entry.bank = static_cast<std::uint32_t>(bank);
        entry.complete_ps = static_cast<std::uint64_t>(complete.as_ps());
        ++ppc;
        break;
      }
      case CrfOpcode::kJump:
        if (lc == 0) {
          lc = ins.imm1;
          if (lc == 0) {
            ++ppc;  // zero-trip loop
          } else {
            ppc = static_cast<std::size_t>(static_cast<std::int64_t>(ppc) + ins.imm0);
          }
        } else if (lc > 1) {
          --lc;
          ppc = static_cast<std::size_t>(static_cast<std::int64_t>(ppc) + ins.imm0);
        } else {
          lc = 0;
          ++ppc;
        }
        break;
      case CrfOpcode::kExit:
        running = false;  // PPC resets; the unit is ready for the next trigger
        break;
    }
    trace_.push_back(entry);
  }

  decode_ready_ = clock;
  stats.done = std::max(stats.done, clock);
  return stats;
}

}  // namespace coolpim::pim
