// GraphBIG micro-kernels lowered to CRF programs.
//
// Each micro-kernel is one destination-vertex update loop of the GraphBIG
// kernel it is named after, expressed as the short CRF program the host
// would stage before triggering PIM execution over a neighbour list
// (GraphPIM's offload unit: the graph-property atomic in the inner loop).
// The loop trip counts model a typical neighbour-list segment; what matters
// for timing is the instruction mix and the per-iteration operand pattern,
// not the absolute count.
//
// The exported kMicroKernels vocabulary is shared by --hmc-backend's
// pim-vault tier, tools/xval_backends, bench/perf_sim's backend section and
// EXPERIMENTS.md's cross-validation table.
#pragma once

#include <string_view>

#include "pim/crf.hpp"

namespace coolpim::pim {

inline constexpr std::string_view kKernelBfs = "bfs";
inline constexpr std::string_view kKernelPagerank = "pagerank";
inline constexpr std::string_view kKernelSssp = "sssp";
inline constexpr std::string_view kKernelCc = "cc";

inline constexpr std::string_view kMicroKernels[] = {
    kKernelBfs, kKernelPagerank, kKernelSssp, kKernelCc};

/// The default micro-kernel the pim-vault backend lowers PIM demand to when
/// the build does not name one (the arithmetic-heaviest of the set).
inline constexpr std::string_view kDefaultKernel = kKernelPagerank;

/// Build the named micro-kernel's CRF program; throws ConfigError for an
/// unknown name (message lists the registered kernels).
[[nodiscard]] CrfProgram micro_kernel(std::string_view name);

/// Comma-separated registered kernel names, for error messages and --help.
[[nodiscard]] std::string micro_kernel_names();

}  // namespace coolpim::pim
