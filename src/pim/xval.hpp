// Cross-validation of the backend fidelity tiers (one shared implementation
// for tools/xval_backends and tests/test_backends.cpp).
//
// Drives the epoch-throughput and pim-vault backends with the same
// saturating pure-PIM demand and reports the served op/ns of each.  The
// tolerance below is the documented contract (EXPERIMENTS.md section
// "Backend cross-validation"): the tiers agree on the cube's saturated PIM
// service rate within |ratio - 1| <= kXvalTolerance at nominal and derated
// temperatures.  CI gates on it through the xval_backends binary.
#pragma once

#include <string_view>

#include "common/units.hpp"

namespace coolpim::pim {

/// Documented agreement bound between the analytic and instruction-level
/// saturated PIM rates.  The analytic tier budgets the aggregate internal
/// bandwidth (~8 op/ns); the instruction-level tier is bank-occupancy
/// limited (512 banks / ~57 ns RMW occupancy ~ 9 op/ns) with decode overhead
/// and operand conflicts pulling it back -- they land within ~15% of each
/// other, and 0.25 leaves headroom for timing-parameter drift without
/// letting the models diverge silently.
inline constexpr double kXvalTolerance = 0.25;

struct XvalPoint {
  double epoch_op_per_ns{0.0};  // analytic tier's served PIM rate
  double pim_op_per_ns{0.0};    // instruction-level tier's served PIM rate
  double ratio{0.0};            // pim / epoch
};

/// Serve `epochs` saturating pure-PIM epochs (10 us each) through both tiers
/// at DRAM temperature `temp` and compare the served rates.
[[nodiscard]] XvalPoint cross_validate(std::string_view kernel, Celsius temp,
                                       unsigned epochs);

}  // namespace coolpim::pim
