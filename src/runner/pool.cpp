#include "runner/pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace coolpim::runner {

unsigned Pool::default_jobs() {
  if (const char* env = std::getenv("COOLPIM_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Pool::Pool(unsigned jobs) : jobs_{jobs > 0 ? jobs : default_jobs()} {
  queues_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  // The calling thread is participant jobs_-1 (it drains queues in wait()),
  // so only jobs_-1 dedicated workers are spawned; jobs=1 spawns none and
  // runs everything on the caller.
  workers_.reserve(jobs_ - 1);
  for (unsigned i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk{state_mu_};
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Pool::submit(std::function<void()> task) {
  std::size_t target;
  {
    // Counters go up before the push: a worker that observes queued_ > 0 and
    // finds nothing yet simply retries; the reverse order could let a worker
    // claim the task before it is accounted for and underflow queued_.
    std::lock_guard<std::mutex> lk{state_mu_};
    target = next_queue_++ % jobs_;
    ++pending_;
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> qlk{queues_[target]->mu};
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool Pool::pop_or_steal(std::size_t self, std::function<void()>& out) {
  // Own queue first, newest task (LIFO keeps caches warm) ...
  {
    auto& q = *queues_[self];
    std::lock_guard<std::mutex> qlk{q.mu};
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // ... then steal the oldest task from the first non-empty victim.
  for (std::size_t d = 1; d < jobs_; ++d) {
    auto& q = *queues_[(self + d) % jobs_];
    std::lock_guard<std::mutex> qlk{q.mu};
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void Pool::run_task(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lk{state_mu_};
    if (!first_error_) first_error_ = std::current_exception();
  }
  bool drained = false;
  {
    std::lock_guard<std::mutex> lk{state_mu_};
    drained = --pending_ == 0;
  }
  if (drained) idle_cv_.notify_all();
}

bool Pool::try_run_one(std::size_t self) {
  std::function<void()> task;
  if (!pop_or_steal(self, task)) return false;
  {
    std::lock_guard<std::mutex> lk{state_mu_};
    --queued_;
  }
  run_task(task);
  return true;
}

void Pool::worker_loop(std::size_t self) {
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock<std::mutex> lk{state_mu_};
    work_cv_.wait(lk, [this] { return shutdown_ || queued_ > 0; });
    if (shutdown_ && queued_ == 0) return;
  }
}

void Pool::wait() {
  const std::size_t self = jobs_ - 1;
  for (;;) {
    while (try_run_one(self)) {
    }
    std::unique_lock<std::mutex> lk{state_mu_};
    if (queued_ > 0) continue;  // a task was submitted between drain and lock
    idle_cv_.wait(lk, [this] { return pending_ == 0 || queued_ > 0; });
    if (pending_ == 0) {
      std::exception_ptr err;
      std::swap(err, first_error_);
      lk.unlock();
      if (err) std::rethrow_exception(err);
      return;
    }
  }
}

void Pool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                        std::size_t grain) {
  if (grain == 0) grain = std::max<std::size_t>(1, n / (std::size_t{4} * jobs_));
  if (grain <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      submit([&fn, i] { fn(i); });
    }
  } else {
    for (std::size_t start = 0; start < n; start += grain) {
      const std::size_t stop = std::min(n, start + grain);
      submit([&fn, start, stop] {
        for (std::size_t i = start; i < stop; ++i) fn(i);
      });
    }
  }
  wait();
}

}  // namespace coolpim::runner
