// Lock-step batched sweep executor: co-advance concurrent experiments
// through one SoA thermal sweep (DESIGN.md section 14).
//
// The scalar runner executes experiments one System::run at a time, so every
// 10 us epoch pays a full scalar transient solve over a small (9 x 512 node)
// grid -- too little arithmetic per node to vectorize across cells.  This
// executor instead groups same-geometry experiments into the lanes of a
// shared thermal::BatchStackModel and drives each run through the resumable
// sys::SystemRun interface.  Scheduling is asynchronous at substep
// granularity: each lane's pending epoch is split into its scalar-verbatim
// (substeps, h) plan (BatchStackModel::lane_step_plan), every round advances
// all lanes by one substep of their OWN h in one lane-vectorized sweep
// (substep_lanes, the round-level building block of step_lanes), and a lane
// that completes its epoch runs its serve/control phase and re-plans
// immediately -- lanes never idle waiting for the round's longest epoch, so
// batch utilization stays full until the task range runs dry.
//
// Bit-identity contract: per lane the batch performs the scalar solver's IEEE
// operation sequence verbatim, a lane with no work in a round coasts on an
// exact h = 0 substep, and retire/refill touches only the affected lane's
// strided slots -- so every RunResult is bit-identical to sys::System::run,
// at any batch width, any fill order and any jobs count (pinned by
// tests/test_sweep_batch.cpp and the in-run gate in bench/perf_sim.cpp).
//
// Scheduling: tasks are split into at most one contiguous chunk per worker
// (chunks never share thermal state, so no locking), each chunk owning one
// BatchStackModel of up to `batch` lanes that it refills from its own range
// as runs retire.  Chunk boundaries depend on the jobs count, but chunk
// membership never enters any run's arithmetic, so results stay
// jobs-invariant.
#pragma once

#include <cstdint>
#include <vector>

#include "sys/system.hpp"

namespace coolpim::runner {

/// One pre-resolved unit of work for the lock-step executor: the profiled
/// workload plus a finalized SystemConfig (run_seed derived from the
/// experiment key and observer attached by the caller -- this layer never
/// rewrites either).
struct SweepBatchTask {
  const graph::WorkloadProfile* profile{nullptr};
  sys::SystemConfig config{};
};

/// Aggregate executor timing, filled when a caller passes a stats sink to
/// run_lockstep (bench/perf_sim's sweep_batch gate).  Timing is collected
/// only when requested -- the hot loop carries no clock reads otherwise --
/// and never feeds back into any run's arithmetic, so results stay
/// bit-identical with or without it.
struct SweepBatchStats {
  /// Wall time spent inside BatchStackModel::substep_lanes, summed over
  /// chunks (with jobs > 1 chunks overlap, so this is solver work, not
  /// elapsed time).
  double sweep_wall_ms{0.0};
  /// Lock-step sweep rounds (substep_lanes calls) across all chunks.
  std::uint64_t rounds{0};
  /// Thermal yields answered (lane-epochs) across all tasks.
  std::uint64_t epochs{0};
};

/// Run every task to completion, co-advancing up to `batch` concurrent runs
/// per worker in thermal lock-step.  `jobs` = 0 selects Pool::default_jobs().
/// Results come back in task order, bit-identical to running each task
/// through sys::System::run.
[[nodiscard]] std::vector<sys::RunResult> run_lockstep(const std::vector<SweepBatchTask>& tasks,
                                                       unsigned batch, unsigned jobs = 0,
                                                       SweepBatchStats* stats = nullptr);

}  // namespace coolpim::runner
