// Work-stealing thread pool for independent simulation tasks.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (hot
// caches) and steals FIFO from the other end of a victim's deque when it
// runs dry (oldest tasks first, the classic Blumofe/Leiserson discipline).
// The pool is built for coarse tasks -- a full-system simulation run takes
// milliseconds to seconds -- so the deques are mutex-guarded rather than
// lock-free; contention is negligible at this granularity and the simple
// implementation is easy to prove race-free under TSan.
//
// Determinism contract: the pool schedules *which thread* runs a task, never
// what the task computes.  Tasks must not share mutable state; the runner
// layer (experiment.hpp) gives each task its own System and a seed derived
// from the task's identity, so results are independent of thread count and
// scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coolpim::runner {

class Pool {
 public:
  /// `jobs` = 0 selects default_jobs().  A pool of 1 runs every task on the
  /// caller's thread (no workers are spawned), which makes jobs=1 runs
  /// bit-for-bit comparable to never having had a pool at all.
  explicit Pool(unsigned jobs = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// COOLPIM_JOBS environment override, else std::thread::hardware_concurrency.
  [[nodiscard]] static unsigned default_jobs();

  [[nodiscard]] unsigned size() const { return jobs_; }

  /// Enqueue one task.  Must not be called concurrently with wait().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished; the calling thread helps
  /// drain the queues.  Rethrows the first exception a task threw.
  void wait();

  /// Run fn(0..n-1) across the pool and wait.  Convenience for fixed-size
  /// sweeps (per-sink tables, per-scenario rows).  `grain` batches that many
  /// consecutive indices into one task -- the fleet tier's per-epoch node
  /// stepping submits thousands of sub-millisecond tasks per run, where
  /// per-task submission overhead would dominate at grain 1.  Each task runs
  /// its indices in order, so any grain is observationally identical for
  /// independent iterations.  grain 0 = auto (roughly 4 tasks per worker).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_run_one(std::size_t self);
  [[nodiscard]] bool pop_or_steal(std::size_t self, std::function<void()>& out);
  void run_task(std::function<void()>& task);

  unsigned jobs_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mu_;
  std::condition_variable work_cv_;   // workers: new work or shutdown
  std::condition_variable idle_cv_;   // wait(): everything drained
  std::size_t pending_{0};            // submitted but not yet finished
  std::size_t queued_{0};             // sitting in a deque, not yet claimed
  std::size_t next_queue_{0};         // round-robin submit target
  bool shutdown_{false};
  std::exception_ptr first_error_;
};

}  // namespace coolpim::runner
