#include "runner/thermal_batch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "runner/pool.hpp"

namespace coolpim::runner {

std::vector<ThermalLaneResult> run_batch_thermal(const thermal::StackSpec& spec,
                                                 const std::vector<ThermalLane>& lanes,
                                                 Time dt, std::size_t steps,
                                                 const ThermalBatchOptions& opt) {
  COOLPIM_REQUIRE(opt.batch >= 1, "thermal batch width must be >= 1");
  std::vector<ThermalLaneResult> results(lanes.size());
  if (lanes.empty()) return results;

  const std::size_t n_groups = (lanes.size() + opt.batch - 1) / opt.batch;
  Pool pool{opt.jobs};
  pool.parallel_for(n_groups, [&](std::size_t group) {
    const std::size_t first = group * opt.batch;
    const std::size_t count = std::min(opt.batch, lanes.size() - first);
    thermal::BatchStackModel model{spec, count, opt.kernel};
    for (std::size_t v = 0; v < count; ++v) {
      const ThermalLane& lane = lanes[first + v];
      model.set_lane_ambient(v, lane.ambient);
      for (std::size_t l = 0; l < lane.layer_power.size(); ++l) {
        model.set_layer_power(v, l, lane.layer_power[l]);
      }
    }
    model.reset_to_ambient();
    for (std::size_t s = 0; s < steps; ++s) model.step(dt);
    for (std::size_t v = 0; v < count; ++v) {
      ThermalLaneResult& out = results[first + v];
      out.layer_peak_c.resize(model.layer_count());
      out.layer_mean_c.resize(model.layer_count());
      for (std::size_t l = 0; l < model.layer_count(); ++l) {
        out.layer_peak_c[l] = model.layer_peak(v, l).value();
        out.layer_mean_c[l] = model.layer_mean(v, l).value();
      }
      out.sink_c = model.sink_temp(v).value();
    }
  });
  return results;
}

}  // namespace coolpim::runner
