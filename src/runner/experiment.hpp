// Parallel experiment API: run independent full-system simulations across a
// work-stealing pool with deterministic, schedule-independent results.
//
// Every task is identified by a stable 64-bit key -- an FNV-1a hash of the
// workload-set identity (scale, graph seed), the workload name and every
// field of its SystemConfig.  The key serves two purposes:
//
//  * Seeding: the task's RNG seed (SystemConfig::run_seed) is derived from
//    the key, so a task draws the same random stream no matter which thread
//    runs it, in what order, or at what jobs count.  jobs=1 and jobs=N
//    sweeps are bit-identical (property-tested in test_runner).
//  * Caching: results are memoized process-wide under the key, so a bench
//    binary that runs the scenario matrix for its table phase and then
//    re-runs (workload, scenario) pairs in its google-benchmark micro phase
//    reuses the finished runs instead of recomputing them.
//
// Because run_seed is derived from the key, it is excluded from the hash
// itself; the runner overwrites whatever value the caller left there.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "sys/system.hpp"

namespace coolpim::runner {

/// One unit of work: a workload name resolved against the sweep's
/// WorkloadSet, plus the full system configuration (scenario included).
struct Experiment {
  std::string workload;
  sys::SystemConfig config{};
};

struct RunOptions {
  /// Worker count; 0 = Pool::default_jobs() (COOLPIM_JOBS env or all cores).
  unsigned jobs{0};
  /// Thermal lane-batching width: > 1 routes the sweep through the lock-step
  /// executor (runner/sweep_batch.hpp), co-advancing up to this many
  /// experiments per worker through one SoA thermal sweep per epoch.  Results
  /// are bit-identical to the scalar path at any width (and any jobs count);
  /// only wall-clock changes.  1 = classic one-task-per-pool-slot execution.
  unsigned sweep_batch{1};
  /// Consult/populate the process-wide result cache.
  bool use_cache{true};
  /// Sweep-level observability collector (nullptr = no recording).  Each
  /// task gets its own RunObserver, allocated on the submitting thread in
  /// submission order, so the merged trace/counter files are byte-identical
  /// at any jobs count.  An observed task always executes the simulation --
  /// the result cache is only *populated*, never short-circuited, because a
  /// cached RunResult carries no trace.
  obs::SweepObserver* obs{nullptr};
};

/// Stable hash of every behaviour-affecting SystemConfig field (run_seed
/// excluded -- see file comment).
[[nodiscard]] std::uint64_t config_hash(const sys::SystemConfig& cfg);

/// Task identity: workload-set identity + workload name + config.
[[nodiscard]] std::uint64_t experiment_key(const sys::WorkloadSet& set,
                                           const std::string& workload,
                                           const sys::SystemConfig& cfg);

/// Per-task RNG seed from a task key (SplitMix64 finalizer over the key).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t key);

/// Run all experiments concurrently; results come back in experiment order.
[[nodiscard]] std::vector<sys::RunResult> run_sweep(const sys::WorkloadSet& set,
                                                    const std::vector<Experiment>& experiments,
                                                    const RunOptions& opt = {});

/// One row of a (workload x scenario) matrix.
struct MatrixRow {
  std::string workload;
  std::map<sys::Scenario, sys::RunResult> runs;
};

/// Cross-product sweep: every workload under every scenario on a shared base
/// config (the Fig. 10-13 evaluation shape).
[[nodiscard]] std::vector<MatrixRow> run_matrix(const sys::WorkloadSet& set,
                                                const std::vector<std::string>& workloads,
                                                const std::vector<sys::Scenario>& scenarios,
                                                const sys::SystemConfig& base = {},
                                                const RunOptions& opt = {});

/// Single (workload, scenario) run through the same key/seed/cache path.
[[nodiscard]] sys::RunResult run_one(const sys::WorkloadSet& set, const std::string& workload,
                                     sys::Scenario scenario,
                                     const sys::SystemConfig& base = {},
                                     const RunOptions& opt = {});

/// Process-wide result-cache introspection (tests, diagnostics).
struct CacheStats {
  std::size_t entries{0};
  std::uint64_t hits{0};
  std::uint64_t misses{0};
};
[[nodiscard]] CacheStats cache_stats();
void clear_result_cache();

}  // namespace coolpim::runner
