#include "obs/names.hpp"
#include "runner/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/hash.hpp"
#include "runner/pool.hpp"
#include "runner/sweep_batch.hpp"

namespace coolpim::runner {

namespace {

void hash_gpu(HashStream& h, const gpu::GpuConfig& g) {
  h.add(g.num_sms).add(g.threads_per_warp).add(g.threads_per_block);
  h.add(g.max_blocks_per_sm).add(g.max_warps_per_sm).add(g.clock.as_hz());
  h.add(g.l1_bytes).add(g.l1_ways).add(g.l2_bytes).add(g.l2_ways).add(g.line_bytes);
  h.add(g.mlp_per_warp).add(g.mem_latency.as_ps()).add(g.host_atomic_coalescing);
  h.add(g.offload_policy).add(g.pei_coherence_txns);
}

void hash_hmc(HashStream& h, const hmc::HmcConfig& c) {
  h.add(std::string_view{c.name}).add(c.capacity_bytes).add(c.dram_dies);
  h.add(c.vaults).add(c.banks).add(c.links);
  h.add(c.link_raw_per_link.as_bytes_per_sec()).add(c.link_data_per_link.as_bytes_per_sec());
  h.add(c.timing.tCL.as_ps()).add(c.timing.tRCD.as_ps());
  h.add(c.timing.tRP.as_ps()).add(c.timing.tRAS.as_ps());
  h.add(c.pim_capable).add(c.internal_peak.as_bytes_per_sec());
  h.add(c.access_granularity).add(c.open_page).add(c.row_bytes);
}

void hash_policy(HashStream& h, const hmc::ThermalPolicy& p) {
  h.add(p.normal_limit.value()).add(p.extended_limit.value()).add(p.shutdown_limit.value());
  h.add(p.warning_threshold.value());
  h.add(p.extended_service_scale).add(p.critical_service_scale);
  h.add(p.conservative_shutdown).add(p.conservative_shutdown_temp.value());
}

void hash_fault(HashStream& h, const fault::FaultConfig& f) {
  h.add(f.warning_drop_rate).add(f.errstat_corrupt_rate).add(f.spurious_warning_rate);
  h.add(f.warning_delay_max.as_ps());
  h.add(f.sensor_noise_sigma_c).add(f.sensor_quantization_c);
  h.add(f.sensor_stuck_rate).add(f.sensor_stuck_duration.as_ps());
  h.add(f.link_outage_rate).add(f.link_outage_duration.as_ps());
  h.add(f.retry.max_retries).add(f.retry.backoff_base.as_ps());
  h.add(f.retry.backoff_factor).add(f.retry.backoff_cap.as_ps());
  h.add(f.watchdog.enabled).add(f.watchdog.window.as_ps());
  h.add(f.watchdog.arm_margin_c).add(f.watchdog.min_interval.as_ps());
  h.add(f.watchdog.smoothing.as_ps());
  h.add(f.force_enable);
}

void hash_mpc(HashStream& h, const control::MpcConfig& m) {
  h.add(m.levels).add(m.horizon).add(m.threshold_c).add(m.guard_c).add(m.smoothing);
  h.add(m.settle_window.as_ps()).add(m.throttle_delay.as_ps());
  h.add(m.rc.tau_ms).add(m.rc.ambient_c).add(m.rc.pim_heat_fraction);
}

void hash_policy_table(HashStream& h, const control::PolicyTableConfig& t) {
  h.add(t.table.t_min_c).add(t.table.bin_width_c);
  for (const double a : t.table.allow) h.add(a);
  h.add(t.reduction_step).add(t.floor);
  h.add(t.settle_window.as_ps()).add(t.throttle_delay.as_ps());
}

void hash_energy(HashStream& h, const power::EnergyParams& e) {
  h.add(e.dram_energy_per_bit.value()).add(e.logic_energy_per_bit.value());
  h.add(e.fu_energy_per_bit.value()).add(e.fu_width_bits);
  h.add(e.background_logic.value()).add(e.background_dram.value());
  for (int i = 0; i < 3; ++i) {
    h.add(e.dram_energy_mult[i]).add(e.logic_energy_mult[i]).add(e.refresh_extra_watts[i]);
  }
}

struct ResultCache {
  std::mutex mu;
  std::unordered_map<std::uint64_t, sys::RunResult> entries;
  std::uint64_t hits{0};
  std::uint64_t misses{0};
};

ResultCache& cache() {
  static ResultCache c;
  return c;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// Shared tail of the scalar and batched execution paths: stamp the record's
// exec time and emit the top-level "runner" span over everything the task
// recorded (warm-up included), tagged with the stable key and derived seed.
void finish_task_record(obs::SweepObserver::TaskRecord* rec, const std::string& workload,
                        const sys::RunResult& result, std::uint64_t key, std::uint64_t seed) {
  rec->exec_time = result.exec_time;
  Time span_end = result.exec_time;
  for (const auto& ev : rec->obs.trace_buffer.events()) {
    span_end = std::max(span_end, ev.ts + ev.dur);
  }
  rec->obs.trace_buffer.complete(Time::zero(), span_end, obs::names::kCatRunner, "task",
                                 {{"workload", workload},
                                  {"scenario", result.scenario},
                                  {"key", hex64(key)},
                                  {"seed", hex64(seed)},
                                  {"cache_hit", rec->cache_hit}});
}

sys::RunResult run_task(const sys::WorkloadSet& set, const Experiment& e, bool use_cache,
                        obs::SweepObserver::TaskRecord* rec = nullptr) {
  const std::uint64_t key = experiment_key(set, e.workload, e.config);
  if (use_cache && rec == nullptr) {
    auto& c = cache();
    std::lock_guard<std::mutex> lk{c.mu};
    if (auto it = c.entries.find(key); it != c.entries.end()) {
      ++c.hits;
      return it->second;
    }
    ++c.misses;
  }
  sys::SystemConfig cfg = e.config;
  cfg.run_seed = derive_seed(key);
  if (rec != nullptr) {
    // Observed tasks never take the cache shortcut (a cached RunResult
    // carries no trace); note whether the result was already cached.
    rec->key = key;
    rec->seed = cfg.run_seed;
    {
      auto& c = cache();
      std::lock_guard<std::mutex> lk{c.mu};
      rec->cache_hit = c.entries.find(key) != c.entries.end();
    }
    cfg.observer = &rec->obs;
  }
  sys::System system{cfg};
  sys::RunResult result = system.run(set.profile(e.workload));
  if (rec != nullptr) finish_task_record(rec, e.workload, result, key, cfg.run_seed);
  if (use_cache) {
    auto& c = cache();
    std::lock_guard<std::mutex> lk{c.mu};
    // Two threads racing on the same key compute identical results (that is
    // the determinism contract), so last-writer-wins insertion is benign.
    c.entries.insert_or_assign(key, result);
  }
  return result;
}

// Batched dispatch of run_sweep (opt.sweep_batch > 1): the key/seed/cache/
// observer protocol of run_task, run in submission order on the submitting
// thread, with the actual simulations handed to the lock-step executor.
// Unlike the scalar path -- which consults the cache lazily when a task is
// scheduled -- cache hits are resolved up front, so only misses enter the
// batch; observed tasks still always execute (a cached RunResult carries no
// trace), exactly as in run_task.
std::vector<sys::RunResult> run_sweep_batched(const sys::WorkloadSet& set,
                                              const std::vector<Experiment>& experiments,
                                              const RunOptions& opt) {
  std::vector<sys::RunResult> results(experiments.size());

  struct Meta {
    std::size_t index{0};  // position in `experiments` / `results`
    std::uint64_t key{0};
    obs::SweepObserver::TaskRecord* rec{nullptr};
  };
  std::vector<SweepBatchTask> tasks;
  std::vector<Meta> metas;
  tasks.reserve(experiments.size());
  metas.reserve(experiments.size());

  for (std::size_t i = 0; i < experiments.size(); ++i) {
    const Experiment& e = experiments[i];
    obs::SweepObserver::TaskRecord* rec = nullptr;
    if (opt.obs != nullptr) {
      rec = opt.obs->add_task(e.workload, std::string{sys::to_string(e.config.scenario)});
    }
    const std::uint64_t key = experiment_key(set, e.workload, e.config);
    if (opt.use_cache && rec == nullptr) {
      auto& c = cache();
      std::lock_guard<std::mutex> lk{c.mu};
      if (auto it = c.entries.find(key); it != c.entries.end()) {
        ++c.hits;
        results[i] = it->second;
        continue;
      }
      ++c.misses;
    }
    SweepBatchTask t;
    t.profile = &set.profile(e.workload);
    t.config = e.config;
    t.config.run_seed = derive_seed(key);
    if (rec != nullptr) {
      rec->key = key;
      rec->seed = t.config.run_seed;
      {
        auto& c = cache();
        std::lock_guard<std::mutex> lk{c.mu};
        rec->cache_hit = c.entries.find(key) != c.entries.end();
      }
      t.config.observer = &rec->obs;
    }
    metas.push_back(Meta{i, key, rec});
    tasks.push_back(std::move(t));
  }

  std::vector<sys::RunResult> ran = run_lockstep(tasks, opt.sweep_batch, opt.jobs);

  for (std::size_t k = 0; k < tasks.size(); ++k) {
    const Meta& m = metas[k];
    sys::RunResult& result = ran[k];
    if (m.rec != nullptr) {
      finish_task_record(m.rec, experiments[m.index].workload, result, m.key,
                         tasks[k].config.run_seed);
    }
    if (opt.use_cache) {
      auto& c = cache();
      std::lock_guard<std::mutex> lk{c.mu};
      c.entries.insert_or_assign(m.key, result);
    }
    results[m.index] = std::move(result);
  }
  return results;
}

}  // namespace

std::uint64_t config_hash(const sys::SystemConfig& cfg) {
  HashStream h;
  hash_gpu(h, cfg.gpu);
  hash_hmc(h, cfg.hmc);
  hash_policy(h, cfg.policy);
  hash_energy(h, cfg.energy);
  h.add(cfg.cooling).add(cfg.scenario);
  h.add(cfg.epoch.as_ps()).add(cfg.warmup_epoch.as_ps()).add(cfg.thermal_delay.as_ps());
  h.add(cfg.sw_control_factor).add(cfg.hw_control_factor);
  h.add(cfg.target_rate_op_per_ns).add(cfg.eq1_margin_blocks);
  h.add(cfg.warm_start).add(cfg.start_temp_override).add(cfg.max_warmup_reps);
  h.add(cfg.warmup_tolerance_c).add(cfg.max_time.as_ps()).add(cfg.shutdown_recovery.as_ps());
  // Fault environment: hashed only when enabled, so every pre-existing
  // fault-free experiment keeps its key (and therefore its derived seed and
  // golden results) byte-for-byte.
  if (cfg.fault.enabled()) {
    h.add(true);
    hash_fault(h, cfg.fault);
  }
  // Predictive-policy configs: hashed only under their own scenario, same
  // key-stability reasoning as the fault gating above.
  if (cfg.scenario == sys::Scenario::kMpc) {
    h.add(true);
    hash_mpc(h, cfg.mpc);
  }
  if (cfg.scenario == sys::Scenario::kPolicyTable) {
    h.add(true);
    hash_policy_table(h, cfg.policy_table);
  }
  // Backend fidelity tier: hashed only off the default tier, same
  // key-stability reasoning again (the default tier is byte-identical to the
  // pre-contract simulator, so pre-contract keys stay valid for it).
  if (cfg.backend != hmc::BackendKind::kEpochThroughput) {
    h.add(true);
    h.add(cfg.backend);
  }
  return h.digest();
}

std::uint64_t experiment_key(const sys::WorkloadSet& set, const std::string& workload,
                             const sys::SystemConfig& cfg) {
  HashStream h;
  h.add(set.scale()).add(set.seed());
  h.add(std::string_view{workload});
  h.u64(config_hash(cfg));
  return h.digest();
}

std::uint64_t derive_seed(std::uint64_t key) {
  // Salted so the seed stream is decoupled from the cache-key stream.
  return mix_seed(key ^ 0xc001'0a1a'5eed'0001ULL);
}

std::vector<sys::RunResult> run_sweep(const sys::WorkloadSet& set,
                                      const std::vector<Experiment>& experiments,
                                      const RunOptions& opt) {
  if (opt.sweep_batch > 1) return run_sweep_batched(set, experiments, opt);
  std::vector<sys::RunResult> results(experiments.size());
  Pool pool{opt.jobs};
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    // Observer slots are allocated here, on the submitting thread, so the
    // record order (and the merged output files) match submission order no
    // matter how the pool schedules the tasks.
    obs::SweepObserver::TaskRecord* rec = nullptr;
    if (opt.obs != nullptr) {
      rec = opt.obs->add_task(experiments[i].workload,
                              std::string{sys::to_string(experiments[i].config.scenario)});
    }
    pool.submit([&set, &experiments, &results, &opt, i, rec] {
      results[i] = run_task(set, experiments[i], opt.use_cache, rec);
    });
  }
  pool.wait();
  return results;
}

std::vector<MatrixRow> run_matrix(const sys::WorkloadSet& set,
                                  const std::vector<std::string>& workloads,
                                  const std::vector<sys::Scenario>& scenarios,
                                  const sys::SystemConfig& base, const RunOptions& opt) {
  std::vector<Experiment> experiments;
  experiments.reserve(workloads.size() * scenarios.size());
  for (const auto& w : workloads) {
    for (const auto s : scenarios) {
      Experiment e;
      e.workload = w;
      e.config = base;
      e.config.scenario = s;
      experiments.push_back(std::move(e));
    }
  }
  auto results = run_sweep(set, experiments, opt);

  std::vector<MatrixRow> rows;
  rows.reserve(workloads.size());
  std::size_t idx = 0;
  for (const auto& w : workloads) {
    MatrixRow row;
    row.workload = w;
    for (const auto s : scenarios) row.runs.emplace(s, std::move(results[idx++]));
    rows.push_back(std::move(row));
  }
  return rows;
}

sys::RunResult run_one(const sys::WorkloadSet& set, const std::string& workload,
                       sys::Scenario scenario, const sys::SystemConfig& base,
                       const RunOptions& opt) {
  Experiment e;
  e.workload = workload;
  e.config = base;
  e.config.scenario = scenario;
  obs::SweepObserver::TaskRecord* rec = nullptr;
  if (opt.obs != nullptr) {
    rec = opt.obs->add_task(e.workload, std::string{sys::to_string(scenario)});
  }
  return run_task(set, e, opt.use_cache, rec);
}

CacheStats cache_stats() {
  auto& c = cache();
  std::lock_guard<std::mutex> lk{c.mu};
  return CacheStats{c.entries.size(), c.hits, c.misses};
}

void clear_result_cache() {
  auto& c = cache();
  std::lock_guard<std::mutex> lk{c.mu};
  c.entries.clear();
  c.hits = 0;
  c.misses = 0;
}

}  // namespace coolpim::runner
