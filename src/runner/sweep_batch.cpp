#include "runner/sweep_batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/error.hpp"
#include "obs/names.hpp"
#include "runner/pool.hpp"
#include "sys/system_run.hpp"
#include "thermal/batch_stack_model.hpp"
#include "thermal/hmc_thermal.hpp"

namespace coolpim::runner {

namespace {

// Per-task executor counters.  Only per-run-invariant values are recorded
// (this run's own epoch-yield count, the configured batch width), never
// chunk- or lane-dependent ones, so the observed counter files stay
// byte-identical at any --jobs value.
void record_task_counters(const SweepBatchTask& task, std::uint64_t epochs, unsigned batch) {
  obs::RunObserver* ob = task.config.observer;
  if (ob == nullptr) return;
  ob->counters.counter(obs::names::kRunnerSweepBatchTasks).add();
  ob->counters.counter(obs::names::kRunnerSweepBatchEpochs).add(epochs);
  ob->counters.gauge(obs::names::kRunnerSweepBatchLanes).set(static_cast<double>(batch));
}

/// Execute tasks [begin, end) on one thread through a private BatchStackModel
/// of up to `batch` lanes, refilling retired lanes from the range in order.
/// `stats`, when non-null, receives this chunk's solver timing; the clock is
/// never read otherwise.
void run_chunk(const std::vector<SweepBatchTask>& tasks, std::vector<sys::RunResult>& results,
               std::size_t begin, std::size_t end, unsigned batch, SweepBatchStats* stats) {
  const std::size_t width = std::min<std::size_t>(batch, end - begin);

  // All SystemRun thermal models compile hmc20 geometry; only the cooling
  // solution (sink_r) varies across experiments.  Seed the shared network
  // from the first task -- a later load_lane with different cooling flips the
  // batch into per-lane conductance tables automatically.
  const thermal::StackSpec spec = thermal::HmcThermalModel::build_stack_spec(
      thermal::hmc20_thermal_config(tasks[begin].config.cooling));
  thermal::BatchStackModel bat{spec, width};

  struct Lane {
    std::unique_ptr<sys::SystemRun> run;  // null = lane empty (h forced to 0)
    std::size_t task{0};
    std::uint64_t epochs{0};
    Time dt{Time::zero()};       // the pending epoch being substepped
    std::size_t remaining{0};    // substeps left in that epoch
    double h{0.0};               // this epoch's exact substep, dt / substeps
  };
  std::vector<Lane> lanes(width);
  std::vector<double> hs(width, 0.0);
  std::size_t next = begin;

  // Split lane v's pending dt into its scalar-verbatim (substeps, h) plan.
  auto plan = [&](std::size_t v, Lane& ln) {
    ln.dt = ln.run->pending_dt();
    const auto p = bat.lane_step_plan(v, ln.dt);
    ln.remaining = p.substeps;
    ln.h = p.h;
  };

  // Load the next unstarted task into lane v and advance it to its first
  // thermal yield before binding (construction + initial steady solve run on
  // the scalar model; bind_lane then imports that state into the lane).  A
  // degenerate run that completes without ever yielding retires immediately
  // and the lane tries the next task.
  auto fill = [&](std::size_t v) {
    while (next < end) {
      const std::size_t t = next++;
      auto run = std::make_unique<sys::SystemRun>(tasks[t].config, *tasks[t].profile);
      if (!run->advance()) {
        results[t] = run->take_result();
        record_task_counters(tasks[t], 0, batch);
        continue;
      }
      run->thermal().bind_lane(&bat, v);
      lanes[v] = Lane{std::move(run), t, 0};
      plan(v, lanes[v]);
      return;
    }
    lanes[v].run.reset();  // range exhausted: lane coasts until the chunk ends
  };

  for (std::size_t v = 0; v < width; ++v) fill(v);

  // Asynchronous lock-step: every round advances each lane by one substep of
  // ITS OWN current epoch -- lanes never wait for the round's longest epoch.
  // A lane that completes its epoch runs the serve/control phase immediately
  // and re-plans (or retires and refills), so a lane only coasts (h = 0,
  // bit-exact) once the chunk's task range is exhausted.  Per lane the
  // substep sequence is exactly the scalar solver's, so scheduling slack
  // never enters the arithmetic.
  for (;;) {
    bool any_live = false;
    for (std::size_t v = 0; v < width; ++v) {
      Lane& ln = lanes[v];
      if (ln.run != nullptr && ln.remaining == 0) {
        // Epoch complete: bookkeeping + serve/control phase up to the next
        // thermal yield, retiring and refilling on completion.
        ln.run->thermal().note_stepped(ln.dt);
        ++ln.epochs;
        if (stats != nullptr) ++stats->epochs;
        if (ln.run->advance()) {
          plan(v, ln);
        } else {
          // finalize() already unbound the lane (exporting the final state
          // back to the scalar stack), so the slot is free; the replacement
          // joins the rounds immediately.
          results[ln.task] = ln.run->take_result();
          record_task_counters(tasks[ln.task], ln.epochs, batch);
          ln.run.reset();
          fill(v);
        }
      }
      any_live |= (lanes[v].run != nullptr);
    }
    if (!any_live) break;

    for (std::size_t v = 0; v < width; ++v) {
      hs[v] = lanes[v].run != nullptr ? lanes[v].h : 0.0;
    }
    if (stats == nullptr) {
      bat.substep_lanes(hs.data());
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      bat.substep_lanes(hs.data());
      stats->sweep_wall_ms +=
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      ++stats->rounds;
    }
    for (std::size_t v = 0; v < width; ++v) {
      if (lanes[v].run != nullptr) --lanes[v].remaining;
    }
  }
}

}  // namespace

std::vector<sys::RunResult> run_lockstep(const std::vector<SweepBatchTask>& tasks,
                                         unsigned batch, unsigned jobs, SweepBatchStats* stats) {
  COOLPIM_REQUIRE(batch >= 1, "run_lockstep: batch width must be >= 1");
  std::vector<sys::RunResult> results(tasks.size());
  if (tasks.empty()) return results;
  for (const SweepBatchTask& t : tasks) {
    COOLPIM_REQUIRE(t.profile != nullptr, "run_lockstep: task without a workload profile");
  }

  // One contiguous chunk per worker, never more chunks than full-ish batches:
  // each chunk is single-threaded over its own BatchStackModel, so fewer,
  // fuller batches beat many starved ones.
  const std::size_t n = tasks.size();
  const unsigned resolved = jobs == 0 ? Pool::default_jobs() : jobs;
  const std::size_t n_chunks =
      std::max<std::size_t>(1, std::min<std::size_t>(resolved, (n + batch - 1) / batch));
  if (n_chunks == 1) {
    run_chunk(tasks, results, 0, n, batch, stats);
    return results;
  }

  // Per-chunk stats slots keep the accumulation lock-free; summed below.
  std::vector<SweepBatchStats> chunk_stats(stats != nullptr ? n_chunks : 0);
  Pool pool{jobs};
  pool.parallel_for(
      n_chunks,
      [&](std::size_t c) {
        const std::size_t b = n * c / n_chunks;
        const std::size_t e = n * (c + 1) / n_chunks;
        if (b < e) {
          run_chunk(tasks, results, b, e, batch,
                    stats != nullptr ? &chunk_stats[c] : nullptr);
        }
      },
      1);
  if (stats != nullptr) {
    for (const SweepBatchStats& cs : chunk_stats) {
      stats->sweep_wall_ms += cs.sweep_wall_ms;
      stats->rounds += cs.rounds;
      stats->epochs += cs.epochs;
    }
  }
  return results;
}

}  // namespace coolpim::runner
