// Sweep-scale batched thermal solving: group independent same-geometry
// thermal tasks into thermal::BatchStackModel lanes and advance each group
// with one SoA sweep per substep, sharded over the work-stealing pool.
//
// This is the runner-side wiring of the batched solver (docs/PERFORMANCE.md
// section 7): a sweep that needs N transient settles no longer pays N scalar
// solves -- lanes are packed `opt.batch` at a time and each batch model is
// one pool task.  Per-lane results are independent of both the batch width
// and the job count: the explicit kernel's arithmetic never mixes lanes
// (bit-identity contract, DESIGN.md section 13), and the pool only decides
// which thread runs which group.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "thermal/batch_stack_model.hpp"

namespace coolpim::runner {

/// One independent thermal task: per-layer power maps (missing layers mean
/// zero power) and the lane's ambient.
struct ThermalLane {
  std::vector<thermal::PowerMap> layer_power;
  Celsius ambient{25.0};
};

/// Per-lane transient result after `steps` steps of `dt`.
struct ThermalLaneResult {
  std::vector<double> layer_peak_c;
  std::vector<double> layer_mean_c;
  double sink_c{0.0};
};

struct ThermalBatchOptions {
  /// Lanes per BatchStackModel (the SoA vector width).  8 doubles = one
  /// cache line per node; 64 amortizes the conductance broadcast further.
  std::size_t batch{8};
  /// Pool width; 0 = Pool::default_jobs() (COOLPIM_JOBS env or all cores,
  /// the same resolution every other runner entry point uses), 1 = caller's
  /// thread.  Per-lane results are jobs-invariant either way.
  unsigned jobs{0};
  thermal::BatchOptions kernel{};
};

/// Settle every lane over `steps` transient steps of `dt` against the shared
/// `spec` geometry and return per-lane reductions, in input order.  Results
/// are identical for any `opt.batch` and `opt.jobs`.
[[nodiscard]] std::vector<ThermalLaneResult> run_batch_thermal(
    const thermal::StackSpec& spec, const std::vector<ThermalLane>& lanes, Time dt,
    std::size_t steps, const ThermalBatchOptions& opt = {});

}  // namespace coolpim::runner
