// Tests for the hmc::Backend fidelity contract (DESIGN.md section 15): the
// named registry behind --hmc-backend, the op-accounting drain semantics,
// byte-identity of the default tier against the bare ThroughputModel, CRF
// trace determinism of the instruction-level pim-vault tier, experiment-key
// stability, cross-validation within the documented tolerance, and the
// docs-sync pin on the exported fidelity vocabulary.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fleet/fleet.hpp"
#include "hmc/backend.hpp"
#include "pim/programs.hpp"
#include "pim/vault_backend.hpp"
#include "pim/xval.hpp"
#include "runner/experiment.hpp"
#include "sys/run_config.hpp"
#include "sys/system.hpp"

namespace coolpim {
namespace {

constexpr Time kEpoch = Time::us(10.0);
constexpr Celsius kCool{60.0};

/// A saturating mixed epoch: enough of everything that every tier scales.
hmc::EpochDemand mixed_demand() {
  hmc::EpochDemand d;
  d.reads = 4e9 * kEpoch.as_sec();
  d.writes = 2e9 * kEpoch.as_sec();
  d.pim_ops = 6e9 * kEpoch.as_sec();
  d.pim_return_fraction = 0.25;
  return d;
}

hmc::BackendBuild build_for(hmc::BackendKind kind) {
  hmc::BackendBuild b;
  b.kind = kind;
  b.seed = 11;
  return b;
}

TEST(BackendRegistryTest, EveryRegisteredBackendRoundTrips) {
  for (const auto& info : hmc::kRegisteredBackends) {
    SCOPED_TRACE(std::string{info.cli_name});
    hmc::BackendKind kind{};
    ASSERT_TRUE(hmc::backend_from_name(info.cli_name, kind));
    EXPECT_EQ(kind, info.kind);

    const auto backend = hmc::make_backend(build_for(info.kind));
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), info.kind);
    EXPECT_EQ(backend->name(), info.cli_name);

    // One served epoch flows through the op-accounting hook.
    const hmc::EpochService s = backend->serve(mixed_demand(), kEpoch, kCool);
    EXPECT_GT(s.pim_ops, 0.0);
    EXPECT_GT(s.reads, 0.0);
    EXPECT_FALSE(s.shut_down);
    EXPECT_DOUBLE_EQ(backend->ops().pim_ops, s.pim_ops);
    EXPECT_DOUBLE_EQ(backend->ops().reads, s.reads);
    EXPECT_DOUBLE_EQ(backend->ops().writes, s.writes);
  }
}

TEST(BackendRegistryTest, UnknownNameIsRejectedAndNamesListEveryTier) {
  hmc::BackendKind kind{};
  EXPECT_FALSE(hmc::backend_from_name("warp-speed", kind));
  EXPECT_FALSE(hmc::backend_from_name("", kind));
  const std::string names = hmc::backend_names();
  for (const auto& info : hmc::kRegisteredBackends) {
    EXPECT_NE(names.find(std::string{info.cli_name}), std::string::npos)
        << info.cli_name << " missing from backend_names()";
  }
}

TEST(BackendRegistryTest, UnknownRunConfigBackendFailsLoudly) {
  sys::RunConfig rc;
  rc.hmc_backend = "warp-speed";
  try {
    rc.validate();
    FAIL() << "validate() accepted an unregistered backend";
  } catch (const ConfigError& e) {
    // The error must teach the vocabulary: every registered name listed.
    const std::string what = e.what();
    for (const auto& info : hmc::kRegisteredBackends) {
      EXPECT_NE(what.find(std::string{info.cli_name}), std::string::npos)
          << info.cli_name << " missing from: " << what;
    }
  }
}

TEST(BackendContractTest, EpochThroughputTierIsTheBareModelVerbatim) {
  // The default tier must be byte-identical to the pre-contract simulator:
  // same config, same arithmetic, bitwise-equal service on a demand sweep.
  hmc::EpochThroughputBackend backend{hmc::hmc20_config()};
  const hmc::ThroughputModel model{hmc::hmc20_config()};
  for (const double temp : {40.0, 60.0, 87.0, 96.0, 104.0}) {
    for (double pim_rate = 0.0; pim_rate <= 12e9; pim_rate += 3e9) {
      hmc::EpochDemand d = mixed_demand();
      d.pim_ops = pim_rate * kEpoch.as_sec();
      const auto got = backend.serve(d, kEpoch, Celsius{temp});
      const auto want = model.serve(d, kEpoch, Celsius{temp});
      EXPECT_EQ(got.served_fraction, want.served_fraction);
      EXPECT_EQ(got.reads, want.reads);
      EXPECT_EQ(got.writes, want.writes);
      EXPECT_EQ(got.pim_ops, want.pim_ops);
      EXPECT_EQ(got.link_raw.as_bytes_per_sec(), want.link_raw.as_bytes_per_sec());
      EXPECT_EQ(got.dram_internal.as_bytes_per_sec(), want.dram_internal.as_bytes_per_sec());
      EXPECT_EQ(got.phase, want.phase);
    }
  }
}

TEST(BackendContractTest, ProbeIsSideEffectFree) {
  for (const auto& info : hmc::kRegisteredBackends) {
    SCOPED_TRACE(std::string{info.cli_name});
    const auto backend = hmc::make_backend(build_for(info.kind));
    const auto probed = backend->probe(mixed_demand(), kEpoch, kCool);
    EXPECT_GT(probed.pim_ops, 0.0);
    // No accounting, no drained delta: probe never serves.
    EXPECT_DOUBLE_EQ(backend->ops().pim_ops, 0.0);
    const hmc::OpDelta d = backend->drain_op_delta();
    EXPECT_EQ(d.reads + d.writes + d.pim_ops, 0u);
    // A serve after the probe sees the same state a fresh backend would.
    const auto fresh = hmc::make_backend(build_for(info.kind));
    const auto after_probe = backend->serve(mixed_demand(), kEpoch, kCool);
    const auto no_probe = fresh->serve(mixed_demand(), kEpoch, kCool);
    EXPECT_EQ(after_probe.pim_ops, no_probe.pim_ops);
    EXPECT_EQ(after_probe.reads, no_probe.reads);
  }
}

TEST(BackendContractTest, DrainEmitsSingleRoundedTotals) {
  // Fractional per-epoch ops must never drift: the sum of all integer
  // drains equals the single rounding of the exact total.
  hmc::EpochThroughputBackend backend{hmc::hmc20_config()};
  hmc::EpochDemand d;
  d.reads = 1000.3;
  d.writes = 0.4;
  d.pim_ops = 10.7;
  std::uint64_t reads = 0, writes = 0, pim = 0;
  for (int i = 0; i < 1000; ++i) {
    (void)backend.serve(d, kEpoch, kCool);
    const hmc::OpDelta delta = backend.drain_op_delta();
    reads += delta.reads;
    writes += delta.writes;
    pim += delta.pim_ops;
  }
  EXPECT_EQ(reads, static_cast<std::uint64_t>(backend.ops().reads + 0.5));
  EXPECT_EQ(writes, static_cast<std::uint64_t>(backend.ops().writes + 0.5));
  EXPECT_EQ(pim, static_cast<std::uint64_t>(backend.ops().pim_ops + 0.5));
  // Zero demand drains zero.
  (void)backend.serve(hmc::EpochDemand{}, kEpoch, kCool);
  const hmc::OpDelta delta = backend.drain_op_delta();
  EXPECT_EQ(delta.reads + delta.writes + delta.pim_ops, 0u);
}

TEST(PimVaultBackendTest, SameSeedGivesBitIdenticalCrfTraces) {
  const auto run = [](std::uint64_t seed) {
    pim::PimVaultBackend backend{hmc::hmc20_config(), {}, seed, pim::kKernelBfs};
    std::vector<pim::CrfTraceEntry> trace;
    for (int i = 0; i < 3; ++i) {
      (void)backend.serve(mixed_demand(), kEpoch, kCool);
      trace.insert(trace.end(), backend.last_crf_trace().begin(),
                   backend.last_crf_trace().end());
    }
    return trace;
  };
  const auto a = run(42);
  const auto b = run(42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // A different seed lands operands on different banks.
  const auto c = run(43);
  EXPECT_NE(a, c);
}

TEST(PimVaultBackendTest, ServesEveryRegisteredMicroKernel) {
  for (const auto kernel : pim::kMicroKernels) {
    SCOPED_TRACE(std::string{kernel});
    pim::PimVaultBackend backend{hmc::hmc20_config(), {}, 7, kernel};
    EXPECT_EQ(backend.program().name, kernel);
    const auto s = backend.serve(mixed_demand(), kEpoch, kCool);
    EXPECT_GT(s.pim_ops, 0.0);
    EXPECT_FALSE(backend.last_crf_trace().empty());
  }
  EXPECT_THROW(pim::micro_kernel("not-a-kernel"), ConfigError);
}

TEST(PimVaultBackendTest, CrossValidatesAgainstAnalyticTierWithinTolerance) {
  // The xval_backends CI gate, mirrored in-suite at reduced epoch count.
  for (const auto kernel : pim::kMicroKernels) {
    for (const double temp : {60.0, 90.0}) {
      SCOPED_TRACE(std::string{kernel} + " @ " + std::to_string(temp));
      const pim::XvalPoint p = pim::cross_validate(kernel, Celsius{temp}, 10);
      EXPECT_GT(p.epoch_op_per_ns, 0.0);
      EXPECT_GT(p.pim_op_per_ns, 0.0);
      EXPECT_LE(std::abs(p.ratio - 1.0), pim::kXvalTolerance)
          << "epoch " << p.epoch_op_per_ns << " vs pim " << p.pim_op_per_ns;
    }
  }
}

TEST(BackendKeyStabilityTest, DefaultBackendLeavesExperimentKeysUntouched) {
  // config_hash mixes the backend only when it differs from the default, so
  // pre-contract experiment keys, seeds, caches and goldens are unchanged.
  const sys::SystemConfig base;
  sys::SystemConfig explicit_default;
  explicit_default.backend = hmc::BackendKind::kEpochThroughput;
  EXPECT_EQ(runner::config_hash(base), runner::config_hash(explicit_default));

  sys::SystemConfig event = base;
  event.backend = hmc::BackendKind::kEventDetailed;
  sys::SystemConfig vault = base;
  vault.backend = hmc::BackendKind::kPimVault;
  EXPECT_NE(runner::config_hash(base), runner::config_hash(event));
  EXPECT_NE(runner::config_hash(base), runner::config_hash(vault));
  EXPECT_NE(runner::config_hash(event), runner::config_hash(vault));
}

TEST(BackendSystemTest, FullRunsCompleteOnEveryTierWithComparableOpTotals) {
  const sys::WorkloadSet set{14, 1};
  std::vector<std::uint64_t> pim_totals;
  for (const auto& info : hmc::kRegisteredBackends) {
    SCOPED_TRACE(std::string{info.cli_name});
    sys::SystemConfig cfg;
    cfg.scenario = sys::Scenario::kCoolPimSw;
    cfg.backend = info.kind;
    sys::System system{cfg};
    const sys::RunResult r = system.run(set.profile("dc"));
    EXPECT_GT(r.exec_time, Time::zero());
    EXPECT_GT(r.pim_ops, 0u);
    pim_totals.push_back(r.pim_ops);
  }
  // The op-accounting hook makes per-run pim_ops totals backend-comparable
  // by construction: same workload, same single-rounded counting.
  for (const std::uint64_t total : pim_totals) {
    const double ratio = static_cast<double>(total) / static_cast<double>(pim_totals[0]);
    EXPECT_NEAR(ratio, 1.0, pim::kXvalTolerance);
  }
}

void expect_identical_run(const sys::RunResult& a, const sys::RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.exec_time, b.exec_time);
  // Doubles compared bit-for-bit: the determinism contract is *bit*-identical
  // results at any job count, for every fidelity tier.
  EXPECT_EQ(a.link_data_bytes, b.link_data_bytes);
  EXPECT_EQ(a.link_raw_bytes, b.link_raw_bytes);
  EXPECT_EQ(a.dram_internal_bytes, b.dram_internal_bytes);
  EXPECT_EQ(a.pim_ops, b.pim_ops);
  EXPECT_EQ(a.host_atomics, b.host_atomics);
  EXPECT_EQ(a.cube_energy_j, b.cube_energy_j);
  EXPECT_EQ(a.fan_energy_j, b.fan_energy_j);
  EXPECT_EQ(a.peak_dram_temp.value(), b.peak_dram_temp.value());
  EXPECT_EQ(a.start_dram_temp.value(), b.start_dram_temp.value());
  EXPECT_EQ(a.thermal_warnings, b.thermal_warnings);
  EXPECT_EQ(a.shut_down, b.shut_down);
  EXPECT_EQ(a.time_above_normal, b.time_above_normal);
}

TEST(BackendSystemTest, SweepsAreBitIdenticalAcrossJobCountsOnEveryTier) {
  // The jobs=1-vs-jobs=8 determinism property the default tier has always
  // had (test_runner) must survive the Backend refit on the non-default
  // tiers too: the refitted event-detailed member and the new pim-vault
  // tier give field-for-field identical sweep results at any job count.
  const sys::WorkloadSet set{14, 1};
  std::vector<runner::Experiment> tasks;
  for (const auto& info : hmc::kRegisteredBackends) {
    for (const auto s : {sys::Scenario::kCoolPimSw, sys::Scenario::kNaiveOffloading}) {
      runner::Experiment e;
      e.workload = "dc";
      e.config.scenario = s;
      e.config.backend = info.kind;
      tasks.push_back(e);
    }
  }
  runner::RunOptions serial;
  serial.jobs = 1;
  serial.use_cache = false;
  runner::RunOptions wide;
  wide.jobs = 8;
  wide.use_cache = false;

  const auto a = runner::run_sweep(set, tasks, serial);
  const auto b = runner::run_sweep(set, tasks, wide);
  ASSERT_EQ(a.size(), tasks.size());
  ASSERT_EQ(b.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    SCOPED_TRACE(std::string{
        hmc::to_string(tasks[i].config.backend)} +
        " / " + std::string{sys::to_string(tasks[i].config.scenario)});
    expect_identical_run(a[i], b[i]);
  }
}

std::string read_doc(const std::string& path) {
  std::ifstream doc{path};
  EXPECT_TRUE(doc.is_open()) << path << " missing";
  std::ostringstream ss;
  ss << doc.rdbuf();
  return ss.str();
}

TEST(BackendDocsSyncTest, FidelityVocabularyIsPinnedToTheDocs) {
  // fidelity_names.hpp is the single spelling of every tier; the docs must
  // quote it verbatim (backticked) wherever the contract is described.
  const std::string design = read_doc(std::string{COOLPIM_REPO_DIR} + "/DESIGN.md");
  const std::string arch = read_doc(std::string{COOLPIM_DOCS_DIR} + "/ARCHITECTURE.md");
  const std::string experiments =
      read_doc(std::string{COOLPIM_REPO_DIR} + "/EXPERIMENTS.md");

  for (const auto name : hmc::fidelity::kAllBackends) {
    const std::string quoted = "`" + std::string{name} + "`";
    EXPECT_NE(design.find(quoted), std::string::npos)
        << quoted << " not documented in DESIGN.md section 15";
    EXPECT_NE(experiments.find(quoted), std::string::npos)
        << quoted << " not documented in EXPERIMENTS.md";
  }
  for (const char* needle : {"## 15.", "--hmc-backend", "drain_op_delta",
                             "pim-vault", "cross-validation"}) {
    EXPECT_NE(design.find(needle), std::string::npos)
        << needle << " not documented in DESIGN.md";
  }
  // The fleet fidelity levels share the header (fleet::to_string).
  for (const auto name : {hmc::fidelity::kFleetRc, hmc::fidelity::kFleetGrid}) {
    EXPECT_NE(design.find("`" + std::string{name} + "`"), std::string::npos)
        << name << " not documented in DESIGN.md section 15";
  }
  EXPECT_EQ(fleet::to_string(fleet::ThermalFidelity::kRc), hmc::fidelity::kFleetRc);
  EXPECT_EQ(fleet::to_string(fleet::ThermalFidelity::kGrid), hmc::fidelity::kFleetGrid);

  // ARCHITECTURE.md carries the pim/ layer row and contract paragraph.
  for (const char* needle : {"pim/", "PimUnit", "xval_backends"}) {
    EXPECT_NE(arch.find(needle), std::string::npos)
        << needle << " not documented in docs/ARCHITECTURE.md";
  }

  // EXPERIMENTS.md documents the tolerance the CI gate enforces, the gate
  // binary, and every micro-kernel row of the measured table.
  std::ostringstream tol;
  tol << pim::kXvalTolerance;
  EXPECT_NE(experiments.find("|ratio − 1| ≤ " + tol.str()), std::string::npos)
      << "cross-validation tolerance " << tol.str()
      << " not documented in EXPERIMENTS.md";
  EXPECT_NE(experiments.find("xval_backends"), std::string::npos);
  for (const auto kernel : pim::kMicroKernels) {
    EXPECT_NE(experiments.find("`" + std::string{kernel} + "`"), std::string::npos)
        << kernel << " missing from the EXPERIMENTS.md cross-validation table";
  }
}

}  // namespace
}  // namespace coolpim
