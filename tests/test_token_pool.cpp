// Tests for the PIM token pool (PTP).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "core/token_pool.hpp"

namespace coolpim::core {
namespace {

TEST(TokenPoolTest, AcquireUpToSize) {
  TokenPool pool{2};
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_FALSE(pool.try_acquire());
  EXPECT_EQ(pool.issued(), 2u);
  EXPECT_EQ(pool.available(), 0u);
}

TEST(TokenPoolTest, ReleaseRecyclesTokens) {
  TokenPool pool{1};
  ASSERT_TRUE(pool.try_acquire());
  pool.release();
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_EQ(pool.total_grants(), 2u);
}

TEST(TokenPoolTest, ReleaseWithoutAcquireAsserts) {
  TokenPool pool{1};
  EXPECT_THROW(pool.release(), SimError);
}

TEST(TokenPoolTest, ShrinkFormulaFromPaper) {
  // PTP_Size = min(PTP_Size - CF, #issuedTokens)  (paper Section IV-B).
  TokenPool pool{10};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(pool.try_acquire());
  pool.shrink(2);
  // min(10-2, 4) = 4.
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_FALSE(pool.try_acquire());  // issued == size
}

TEST(TokenPoolTest, ShrinkTakesEffectAsBlocksRetire) {
  TokenPool pool{8};
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(pool.try_acquire());
  pool.shrink(3);  // min(5, 8) = 5
  EXPECT_EQ(pool.size(), 5u);
  // Three blocks retire before a new one can take a token.
  pool.release();
  EXPECT_FALSE(pool.try_acquire());
  pool.release();
  pool.release();
  EXPECT_FALSE(pool.try_acquire());  // issued 5 == size 5
  pool.release();
  EXPECT_TRUE(pool.try_acquire());
}

TEST(TokenPoolTest, ShrinkFloorsAtZero) {
  TokenPool pool{3};
  pool.shrink(100);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.try_acquire());
  EXPECT_EQ(pool.shrink_count(), 1u);
}

TEST(TokenPoolTest, ResizeForInitialization) {
  TokenPool pool{4};
  pool.resize(64);
  EXPECT_EQ(pool.size(), 64u);
}

TEST(TokenPoolTest, ShrinkCounterTracksReductions) {
  TokenPool pool{100};
  pool.shrink(4);
  pool.shrink(4);
  EXPECT_EQ(pool.shrink_count(), 2u);
}

}  // namespace
}  // namespace coolpim::core
